// Quickstart: decompose a sparse matrix for parallel y = Ax with the
// fine-grain 2D hypergraph model, inspect the communication cost, and run
// the simulated distributed multiplication.
//
//   ./quickstart [--matrix ken-11] [--k 16] [--scale 0.25] [--seed 1]
#include <cmath>
#include <cstdio>

#include "comm/volume.hpp"
#include "models/finegrain.hpp"
#include "partition/hg/partitioner.hpp"
#include "spmv/executor.hpp"
#include "spmv/plan.hpp"
#include "spmv/reference.hpp"
#include "sparse/stats.hpp"
#include "sparse/testsuite.hpp"
#include "util/error.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) try {
  using namespace fghp;
  const ArgParser args(argc, argv);
  const std::string name = args.flag("matrix").value_or("ken-11");
  const auto k = static_cast<idx_t>(args.flag_long("k", 16));
  const double scale = std::stod(args.flag("scale").value_or("0.25"));
  const auto seed = static_cast<std::uint64_t>(args.flag_long("seed", 1));

  // 1. Get a matrix (a synthetic analog of the paper's test suite; swap in
  //    sparse::read_matrix_market_file for your own .mtx).
  const sparse::Csr a = sparse::make_matrix(name, seed, scale);
  std::printf("matrix %s: %s\n", name.c_str(),
              sparse::to_string(sparse::compute_stats(a)).c_str());

  // 2. Build the fine-grain hypergraph: one vertex per nonzero, one net per
  //    row (fold of y_i) and per column (expand of x_j).
  const model::FineGrainModel m = model::build_finegrain(a);
  std::printf("fine-grain hypergraph: %d vertices, %d nets, %d pins\n",
              m.h.num_vertices(), m.h.num_nets(), m.h.num_pins());

  // 3. Partition it K ways under the connectivity-1 objective.
  part::PartitionConfig cfg;
  cfg.seed = seed;
  const part::HgResult r = part::partition_hypergraph(m.h, k, cfg);
  std::printf("partitioned %d ways in %.2fs: cutsize %lld, imbalance %.2f%%\n",
              static_cast<int>(k), r.seconds, static_cast<long long>(r.cutsize),
              100.0 * r.imbalance);

  // 4. Decode into a decomposition (nonzero owners + conformal x/y owners)
  //    and check the paper's theorem: cutsize == exact total volume.
  const model::Decomposition d = model::decode_finegrain(a, m, r.partition);
  const comm::CommStats s = comm::analyze(a, d);
  std::printf("communication: %lld words (expand %lld + fold %lld) — cutsize %s volume\n",
              static_cast<long long>(s.totalWords), static_cast<long long>(s.expandWords),
              static_cast<long long>(s.foldWords),
              s.totalWords == r.cutsize ? "==" : "!=");
  std::printf("avg messages handled per processor: %.2f (bound 2*2*(K-1) = %d)\n",
              s.avgMessagesPerProc, 4 * (static_cast<int>(k) - 1));

  // 5. Execute the distributed SpMV and verify against the serial kernel.
  const spmv::SpmvPlan plan = spmv::build_plan(a, d);
  Rng rng(42);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.uniform01();
  const auto y = spmv::execute(plan, x);
  const auto yRef = spmv::multiply(a, x);
  double maxErr = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i)
    maxErr = std::max(maxErr, std::abs(y[i] - yRef[i]));
  std::printf("distributed SpMV max |error| vs serial: %.3e\n", maxErr);
  return 0;
} catch (const std::exception& e) {
  for (const auto& w : fghp::drain_warnings())
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  std::fprintf(stderr, "error: %s\n", e.what());
  return fghp::exit_code(e);
}
