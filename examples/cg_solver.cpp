// Conjugate-gradient solver on a 2D Poisson problem whose SpMV runs through
// the fine-grain decomposition and the distributed executor — the iterative-
// solver setting the paper's introduction motivates. The symmetric
// (conformal) x/y partition is what lets every vector operation of CG stay
// local: only the SpMV communicates.
//
//   ./cg_solver [--n 64] [--k 8] [--tol 1e-8] [--max-iters 500]
//               [--timeout-ms MS]
//               [--trace-out trace.json] [--metrics-out metrics.json|-]
//               [--report-out report.json|-] [--perf]
//
// --timeout-ms (or FGHP_TIMEOUT_MS; the flag wins) covers the whole solve:
// the partitioner degrades gracefully if the budget runs short during setup,
// and a CG iteration that starts past the deadline exits 9 — with the trace
// and metrics still written, so an expired run can be diagnosed.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "comm/volume.hpp"
#include "models/finegrain.hpp"
#include "partition/hg/partitioner.hpp"
#include "spmv/compiled.hpp"
#include "spmv/plan.hpp"
#include "sparse/generators.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/options.hpp"
#include "util/perf_counters.hpp"
#include "util/report.hpp"
#include "util/trace.hpp"

namespace {

using namespace fghp;

long resolve_timeout_ms(const ArgParser& args) {
  if (const auto flag = args.flag("timeout-ms")) return std::stol(*flag);
  if (const char* env = std::getenv("FGHP_TIMEOUT_MS")) return std::stol(env);
  return -1;
}

int run(const ArgParser& args, report::Builder& rep) {
  const auto n = static_cast<idx_t>(args.flag_long("n", 64));
  const auto k = static_cast<idx_t>(args.flag_long("k", 8));
  const double tol = std::stod(args.flag("tol").value_or("1e-8"));
  const long maxIters = args.flag_long("max-iters", 500);
  const cancel::CancelToken token =
      cancel::CancelToken::with_deadline_ms(resolve_timeout_ms(args));

  // SPD system: 5-point Laplacian on an n x n grid.
  const sparse::Csr a = sparse::stencil2d(n, n);
  const auto dim = static_cast<std::size_t>(a.num_rows());
  std::printf("CG on %dx%d Poisson grid (%zu unknowns, %d nonzeros), K = %d\n",
              static_cast<int>(n), static_cast<int>(n), dim, static_cast<int>(a.nnz()),
              static_cast<int>(k));

  // Decompose once; every CG iteration reuses the plan. The partitioner
  // shares the solver's deadline and degrades rather than fails when it
  // expires during setup.
  const model::FineGrainModel m = model::build_finegrain(a);
  part::PartitionConfig cfg;
  cfg.cancel = token;
  const part::HgResult r = part::partition_hypergraph(m.h, k, cfg);
  const model::Decomposition d = model::decode_finegrain(a, m, r.partition);
  const comm::CommStats cs = comm::analyze(a, d);
  rep.info("n", static_cast<long long>(n));
  rep.info("k", static_cast<long long>(k));
  rep.set_proc_comm({cs.sendWords.begin(), cs.sendWords.end()},
                    {cs.recvWords.begin(), cs.recvWords.end()});
  rep.expect_volume("spmv", cs.expandWords, cs.foldWords,
                    static_cast<long long>(cs.expandMessages) + cs.foldMessages);
  std::printf("decomposition: %lld words per SpMV (%.2f scaled), imbalance %.2f%%\n",
              static_cast<long long>(cs.totalWords), cs.scaledTotal(a.num_rows()),
              100.0 * r.imbalance);
  if (r.numDegraded > 0)
    std::printf("  (deadline pressure: %d subproblem(s) demoted during setup)\n",
                static_cast<int>(r.numDegraded));
  // Compile the plan once into a reusable session: every CG iteration's
  // SpMV then runs local-indexed and allocation-free.
  spmv::CompileOptions copts;
  copts.cancel = token;
  spmv::ExecSession spmvSession(spmv::build_plan(a, d, token), copts);
  spmvSession.set_cancel(token);

  // b = A * ones, so the exact solution is ones.
  std::vector<double> ones(dim, 1.0);
  std::vector<double> b;
  spmvSession.run(ones, b);

  // Conjugate gradients. The dot products and axpys operate on conformal
  // vectors: with owner(x_j) == owner(y_j) they would be communication-free
  // on a real machine (each processor reduces its own slice).
  std::vector<double> x(dim, 0.0), rres(b), p(b), ap(dim);
  auto dot = [](const std::vector<double>& u, const std::vector<double>& v) {
    double s = 0.0;
    for (std::size_t i = 0; i < u.size(); ++i) s += u[i] * v[i];
    return s;
  };
  perf::CounterScope perfScope("cg.iterations");
  double rr = dot(rres, rres);
  const double bnorm = std::sqrt(dot(b, b));
  long iters = 0;
  while (iters < maxIters && std::sqrt(rr) > tol * bnorm) {
    spmvSession.run(p, ap);  // the only communicating step; reuses scratch
    const double alpha = rr / dot(p, ap);
    for (std::size_t i = 0; i < dim; ++i) {
      x[i] += alpha * p[i];
      rres[i] -= alpha * ap[i];
    }
    const double rrNew = dot(rres, rres);
    const double beta = rrNew / rr;
    rr = rrNew;
    for (std::size_t i = 0; i < dim; ++i) p[i] = rres[i] + beta * p[i];
    ++iters;
    if (iters % 50 == 0)
      std::printf("  iter %4ld  relative residual %.3e\n", iters, std::sqrt(rr) / bnorm);
  }

  double maxErr = 0.0;
  for (double xi : x) maxErr = std::max(maxErr, std::abs(xi - 1.0));
  std::printf("converged in %ld iterations; relative residual %.3e; max |x - 1| = %.3e\n",
              iters, std::sqrt(rr) / bnorm, maxErr);
  std::printf("total SpMV communication: %lld words over %ld iterations\n",
              static_cast<long long>(cs.totalWords) * (iters + 1), iters + 1);
  rep.info("cg_iterations", iters);
  return maxErr < 1e-6 ? 0 : 1;
}

void print_warnings() {
  for (const auto& w : fghp::drain_warnings())
    std::fprintf(stderr, "warning: %s\n", w.c_str());
}

/// Best-effort exports; returns the io exit code on failure so a successful
/// run can still report it (a failing run's typed code wins instead).
int write_observability(const std::string& traceOut, const std::string& metricsOut,
                        const std::string& reportOut, const report::Builder& rep) {
  int rc = 0;
  if (!traceOut.empty()) {
    try {
      trace::write_chrome_trace_file(traceOut);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      rc = static_cast<int>(ErrorCode::kIo);
    }
  }
  if (!metricsOut.empty()) {
    try {
      metrics::write_global_json(metricsOut);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      rc = static_cast<int>(ErrorCode::kIo);
    }
  }
  if (!reportOut.empty()) {
    try {
      report::write_file(rep.build(), reportOut);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      rc = static_cast<int>(ErrorCode::kIo);
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const std::string traceOut = args.flag("trace-out").value_or("");
  const std::string metricsOut = args.flag("metrics-out").value_or("");
  const std::string reportOut = args.flag("report-out").value_or("");
  if (!traceOut.empty() || !reportOut.empty()) trace::enable();
  if (args.has_switch("perf")) fghp::perf::set_enabled(true);
  fghp::report::Builder rep("cg_solver", "solve");

  int rc;
  try {
    rc = run(args, rep);
  } catch (const std::exception& e) {
    print_warnings();
    std::fprintf(stderr, "error: %s\n", e.what());
    rep.set_error(e.what());
    write_observability(traceOut, metricsOut, reportOut, rep);  // typed error wins
    return fghp::exit_code(e);
  }
  print_warnings();
  const int obsRc = write_observability(traceOut, metricsOut, reportOut, rep);
  return rc == 0 && obsRc != 0 ? obsRc : rc;
}
