// The paper's §3 generalization: decomposing a parallel *reduction* problem
// whose input elements are pre-assigned to processors.
//
// Scenario: K data-collection sites each own a set of input measurements
// x_j (they physically produce them, so owner(x_j) is not ours to choose).
// A sparse mapping matrix A aggregates inputs into output statistics
// y = A x; outputs are free to place. Following the paper: build the
// fine-grain hypergraph, add K zero-weight "part vertices", connect part
// vertex p to the column nets of the inputs pre-assigned to processor p,
// and fix those vertices to their parts during partitioning. The lambda-1
// cutsize then prices the expand from the *mandated* owners exactly, and no
// consistency condition is needed because the reduction has no symmetric-
// partitioning requirement.
//
//   ./reduction_preassigned [--n 4000] [--k 8] [--avg-deg 6]
#include <algorithm>
#include <cstdio>

#include "hypergraph/builder.hpp"
#include "hypergraph/metrics.hpp"
#include "partition/hg/partitioner.hpp"
#include "sparse/generators.hpp"
#include "util/error.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) try {
  using namespace fghp;
  const ArgParser args(argc, argv);
  const auto n = static_cast<idx_t>(args.flag_long("n", 4000));
  const auto k = static_cast<idx_t>(args.flag_long("k", 8));
  const auto avgDeg = static_cast<idx_t>(args.flag_long("avg-deg", 6));

  // The mapping matrix: y_i aggregates avg-deg random inputs.
  const sparse::Csr a = sparse::random_square(n, avgDeg, 2024, /*withDiagonal=*/false);
  std::printf("reduction: %d outputs over %d pre-assigned inputs, %d nonzeros, K = %d\n",
              a.num_rows(), a.num_cols(), a.nnz(), static_cast<int>(k));

  // Inputs are pre-assigned in contiguous site ranges (site p owns columns
  // [p*n/K, (p+1)*n/K)), as if each site recorded its own sensor block.
  Rng rng(7);
  std::vector<idx_t> xOwner(static_cast<std::size_t>(n));
  for (idx_t j = 0; j < n; ++j)
    xOwner[static_cast<std::size_t>(j)] = std::min<idx_t>(k - 1, j / ((n + k - 1) / k));

  // Fine-grain hypergraph: one vertex per nonzero; row nets (fold of y_i)
  // and column nets (expand of x_j); no dummy diagonals needed since there
  // is no symmetric-partitioning requirement. Then the paper's part
  // vertices: zero weight, fixed, pinned into their inputs' column nets.
  hg::HypergraphBuilder b(a.nnz());
  std::vector<idx_t> rowNet(static_cast<std::size_t>(n));
  std::vector<idx_t> colNet(static_cast<std::size_t>(n));
  for (idx_t i = 0; i < n; ++i) rowNet[static_cast<std::size_t>(i)] = b.add_empty_net();
  for (idx_t j = 0; j < n; ++j) colNet[static_cast<std::size_t>(j)] = b.add_empty_net();
  {
    idx_t e = 0;
    for (idx_t i = 0; i < a.num_rows(); ++i) {
      for (idx_t j : a.row_cols(i)) {
        b.add_pin(rowNet[static_cast<std::size_t>(i)], e);
        b.add_pin(colNet[static_cast<std::size_t>(j)], e);
        ++e;
      }
    }
  }
  std::vector<idx_t> partVertex(static_cast<std::size_t>(k));
  for (idx_t p = 0; p < k; ++p) partVertex[static_cast<std::size_t>(p)] = b.add_vertex(0);
  for (idx_t j = 0; j < n; ++j) {
    if (a.nnz() == 0) break;
    // Pin the owner's part vertex into the column net (skip empty nets).
    b.add_pin(colNet[static_cast<std::size_t>(j)],
              partVertex[static_cast<std::size_t>(xOwner[static_cast<std::size_t>(j)])]);
  }
  const hg::Hypergraph h = std::move(b).build();

  std::vector<idx_t> fixedPart(static_cast<std::size_t>(h.num_vertices()), kInvalidIdx);
  for (idx_t p = 0; p < k; ++p)
    fixedPart[static_cast<std::size_t>(partVertex[static_cast<std::size_t>(p)])] = p;

  part::PartitionConfig cfg;
  const part::HgResult r = part::partition_hypergraph(h, k, cfg, fixedPart);
  std::printf("partitioned: cutsize %lld (= exact words moved), imbalance %.2f%%, %.2fs\n",
              static_cast<long long>(r.cutsize), 100.0 * r.imbalance, r.seconds);

  // Decode + verify by direct counting: expand words (owner -> every other
  // processor computing with x_j) plus fold words (every remote contributor
  // of y_i -> y_i's owner, chosen as any connected part of its row net).
  weight_t expand = 0, fold = 0;
  {
    idx_t e = 0;
    std::vector<std::vector<idx_t>> colProcs(static_cast<std::size_t>(n));
    std::vector<std::vector<idx_t>> rowProcs(static_cast<std::size_t>(n));
    for (idx_t i = 0; i < a.num_rows(); ++i) {
      for (idx_t j : a.row_cols(i)) {
        const idx_t p = r.partition.part_of(e++);
        colProcs[static_cast<std::size_t>(j)].push_back(p);
        rowProcs[static_cast<std::size_t>(i)].push_back(p);
      }
    }
    auto unique_count = [](std::vector<idx_t>& v, idx_t exclude) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
      weight_t c = 0;
      for (idx_t p : v) c += p != exclude ? 1 : 0;
      return c;
    };
    for (idx_t j = 0; j < n; ++j)
      expand += unique_count(colProcs[static_cast<std::size_t>(j)],
                             xOwner[static_cast<std::size_t>(j)]);
    for (idx_t i = 0; i < n; ++i) {
      auto& procs = rowProcs[static_cast<std::size_t>(i)];
      if (procs.empty()) continue;
      // Free output: place y_i on any contributing processor.
      fold += unique_count(procs, procs.front());
    }
  }
  std::printf("measured volume: %lld words (expand %lld + fold %lld) — cutsize %s volume\n",
              static_cast<long long>(expand + fold), static_cast<long long>(expand),
              static_cast<long long>(fold),
              expand + fold == r.cutsize ? "==" : "!=");

  // Contrast: ignoring the pre-assignment optimizes a different problem —
  // its cutsize assumes input placements that the sites cannot honor.
  part::PartitionConfig cfg2;
  const part::HgResult rFree = part::partition_hypergraph(h, k, cfg2);
  std::printf("for contrast, pretending inputs were free: cutsize %lld "
              "(not realizable with the mandated owners)\n",
              static_cast<long long>(rFree.cutsize));
  return expand + fold == r.cutsize ? 0 : 1;
} catch (const std::exception& e) {
  for (const auto& w : fghp::drain_warnings())
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  std::fprintf(stderr, "error: %s\n", e.what());
  return fghp::exit_code(e);
}
