// Regenerates the paper's Figure 1 as text: the dependency-relation view of
// the fine-grain hypergraph model on a small matrix. Shows, for a chosen
// column j and row i, how column net n_j collects the scalar multiplications
// that need x_j (the expand) and row net m_i collects the partial results
// folded into y_i, and walks through a 2-way partition to show how the
// lambda-1 cutsize counts exactly the words communicated.
//
//   ./anatomy_finegrain
#include <cstdio>

#include "comm/volume.hpp"
#include "hypergraph/metrics.hpp"
#include "models/finegrain.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "util/error.hpp"

int main() try {
  using namespace fghp;

  // The matrix sketched in Figure 1: row i = 1 has nonzeros in columns
  // h = 0, i = 1, k = 2, j = 3; column j = 3 has nonzeros in rows i = 1,
  // j = 3, l = 4. Diagonal present everywhere.
  sparse::Coo coo(5, 5);
  const char* label[5] = {"h", "i", "k", "j", "l"};
  coo.add(0, 0, 1);
  coo.add(1, 0, 1);  // a_ih
  coo.add(1, 1, 1);  // a_ii
  coo.add(1, 2, 1);  // a_ik
  coo.add(1, 3, 1);  // a_ij
  coo.add(2, 2, 1);
  coo.add(3, 3, 1);  // a_jj
  coo.add(4, 3, 1);  // a_lj
  coo.add(4, 4, 1);
  const sparse::Csr a = sparse::to_csr(std::move(coo));

  std::printf("Figure 1 — dependency relation of the 2D fine-grain hypergraph model\n\n");
  std::printf("matrix (5x5, %d nonzeros), indices named h,i,k,j,l as in the paper:\n\n   ",
              static_cast<int>(a.nnz()));
  for (int c = 0; c < 5; ++c) std::printf(" %s", label[c]);
  std::printf("\n");
  for (idx_t r = 0; r < 5; ++r) {
    std::printf("  %s ", label[r]);
    for (idx_t c = 0; c < 5; ++c) std::printf(" %c", a.has_entry(r, c) ? 'x' : '.');
    std::printf("\n");
  }

  const model::FineGrainModel m = model::build_finegrain(a);
  std::printf("\nfine-grain hypergraph: %d vertices (one per nonzero), %d nets (M row nets"
              " + M column nets)\n", m.h.num_vertices(), m.h.num_nets());

  auto entry_name = [&](idx_t v) {
    // Recover (row, col) of CSR entry v.
    idx_t e = 0;
    for (idx_t r = 0; r < a.num_rows(); ++r) {
      for (idx_t c : a.row_cols(r)) {
        if (e == v) {
          static char buf[32];
          std::snprintf(buf, sizeof buf, "v_%s%s", label[r], label[c]);
          return std::string(buf);
        }
        ++e;
      }
    }
    return std::string("dummy");
  };

  // Column net n_j (j = 3): the expand dependency of x_j.
  const idx_t nj = m.col_net(3);
  std::printf("\ncolumn net n_j (x_j expand), %d pins:", m.h.net_size(nj));
  for (idx_t v : m.h.pins(nj)) std::printf("  %s", entry_name(v).c_str());
  std::printf("\n  -> the multiplications y_i^j = a_ij*x_j, y_j^j = a_jj*x_j, y_l^j = a_lj*x_j"
              " all need x_j.\n");

  // Row net m_i (i = 1): the fold dependency of y_i.
  const idx_t mi = m.row_net(1);
  std::printf("\nrow net m_i (y_i fold), %d pins:", m.h.net_size(mi));
  for (idx_t v : m.h.pins(mi)) std::printf("  %s", entry_name(v).c_str());
  std::printf("\n  -> y_i = y_i^h + y_i^i + y_i^k + y_i^j accumulates the four partials.\n");

  // A 2-way partition: put v_ih, v_ii, v_ik on P0 and the rest on P1.
  std::vector<idx_t> assign(static_cast<std::size_t>(m.h.num_vertices()), 1);
  assign[1] = assign[2] = assign[3] = 0;  // entries (i,h), (i,i), (i,k)
  assign[0] = 0;                          // (h,h)
  const hg::Partition p(m.h, 2, assign);
  const model::Decomposition d = model::decode_finegrain(a, m, p);
  const comm::CommStats s = comm::analyze(a, d);
  const weight_t cut = hg::cutsize(m.h, p, hg::CutMetric::kConnectivity);

  std::printf("\nexample 2-way partition: P0 = {v_hh, v_ih, v_ii, v_ik}, P1 = rest\n");
  std::printf("  row net m_i connects {P0, P1} (v_ij on P1): lambda-1 = 1 -> one partial"
              " y_i word folded\n");
  std::printf("  cutsize (eq. 3) = %lld, measured volume = %lld words"
              " (expand %lld, fold %lld) — identical by the paper's theorem\n",
              static_cast<long long>(cut), static_cast<long long>(s.totalWords),
              static_cast<long long>(s.expandWords), static_cast<long long>(s.foldWords));
  std::printf("\nvector ownership decodes from the diagonal vertices: owner(x_j) ="
              " owner(y_j) = part[v_jj],\nwhich keeps the x/y partition symmetric"
              " for iterative solvers.\n");
  return 0;
} catch (const std::exception& e) {
  for (const auto& w : fghp::drain_warnings())
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  std::fprintf(stderr, "error: %s\n", e.what());
  return fghp::exit_code(e);
}
