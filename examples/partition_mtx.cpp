// Command-line decomposition tool for real matrices: reads a Matrix Market
// file, decomposes it with the chosen model, prints the Table 2-style
// metrics, and optionally writes the per-nonzero / per-vector owner maps.
// This is the bridge from the bundled synthetic suite to the actual UF /
// netlib matrices the paper used, when you have them on disk.
//
//   ./partition_mtx matrix.mtx [--model finegrain|hyper1d|graph|checkerboard]
//                   [--method multilevel|geometric|geometric-fm|streaming]
//                   [--k 16] [--eps 0.03] [--seed 1] [--out owners.txt]
//                   [--timeout-ms MS] [--no-degrade]
//                   [--trace-out trace.json] [--metrics-out metrics.json|-]
//                   [--report-out report.json|-] [--perf]
//
// --method selects the fine-grain partitioning engine (DESIGN.md §15):
// the paper's multilevel stack, the geometric fast path, geometric + one
// FM sweep, or one-pass streaming. Only --model finegrain dispatches on it.
//
// --timeout-ms (or FGHP_TIMEOUT_MS; the flag wins) puts a deadline on the
// partitioning work. By default an expiring deadline degrades gracefully —
// the tool still returns a valid, balanced decomposition and reports how
// many subproblems were demoted; with --no-degrade it exits 9 instead.
// Observability files are written even when the run fails, and the typed
// error exit code always wins over any export failure.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "comm/volume.hpp"
#include "models/checkerboard.hpp"
#include "models/decomp_io.hpp"
#include "models/finegrain.hpp"
#include "models/graph_model.hpp"
#include "models/hypergraph1d.hpp"
#include "sparse/mmio.hpp"
#include "sparse/stats.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/options.hpp"
#include "util/perf_counters.hpp"
#include "util/report.hpp"
#include "util/trace.hpp"

namespace {

using namespace fghp;

long resolve_timeout_ms(const ArgParser& args) {
  if (const auto flag = args.flag("timeout-ms")) return std::stol(*flag);
  if (const char* env = std::getenv("FGHP_TIMEOUT_MS")) return std::stol(env);
  return -1;
}

int run(const ArgParser& args, report::Builder& rep) {
  const std::string path = args.positional().front();
  const std::string modelName = args.flag("model").value_or("finegrain");
  const auto k = static_cast<idx_t>(args.flag_long("k", 16));
  const auto seed = static_cast<std::uint64_t>(args.flag_long("seed", 1));

  const sparse::Csr a = sparse::read_matrix_market_file(path);
  if (!a.is_square()) {
    std::fprintf(stderr, "error: the decomposition models require a square matrix "
                         "(got %dx%d)\n", a.num_rows(), a.num_cols());
    return 1;
  }
  std::printf("%s: %s\n", path.c_str(), sparse::to_string(sparse::compute_stats(a)).c_str());

  part::PartitionConfig cfg;
  cfg.seed = seed;
  if (const auto eps = args.flag("eps")) cfg.epsilon = std::stod(*eps);
  cfg.cancel = cancel::CancelToken::with_deadline_ms(resolve_timeout_ms(args));
  if (args.has_switch("no-degrade")) cfg.degradeOnDeadline = false;
  const std::string methodName = args.flag("method").value_or("multilevel");
  if (!part::parse_method(methodName, cfg.method)) {
    std::fprintf(stderr, "error: unknown method '%s'\n", methodName.c_str());
    return 2;
  }
  if (cfg.method != part::PartitionMethod::kMultilevel && modelName != "finegrain") {
    std::fprintf(stderr, "error: --method %s requires --model finegrain\n",
                 methodName.c_str());
    return 2;
  }

  rep.info("matrix", path);
  rep.info("model", modelName);
  rep.info("method", methodName);
  rep.info("k", static_cast<long long>(k));

  perf::CounterScope perfScope("partition");
  model::ModelRun mrun;
  if (modelName == "finegrain") {
    mrun = model::run_finegrain(a, k, cfg);
  } else if (modelName == "hyper1d") {
    mrun = model::run_hypergraph1d(a, k, cfg);
  } else if (modelName == "graph") {
    mrun = model::run_graph_model(a, k, cfg);
  } else if (modelName == "checkerboard") {
    mrun.decomp = model::checkerboard_decompose_k(a, k);
  } else {
    std::fprintf(stderr, "error: unknown model '%s'\n", modelName.c_str());
    return 2;
  }

  const comm::CommStats s = comm::analyze(a, mrun.decomp);
  const model::LoadStats loads = model::compute_loads(a, mrun.decomp);
  rep.set_proc_comm({s.sendWords.begin(), s.sendWords.end()},
                    {s.recvWords.begin(), s.recvWords.end()});
  rep.expect_volume("spmv", s.expandWords, s.foldWords,
                    static_cast<long long>(s.expandMessages) + s.foldMessages);
  std::printf("model=%s method=%s K=%d\n", modelName.c_str(), methodName.c_str(),
              static_cast<int>(k));
  std::printf("  partition time      : %.3f s\n", mrun.partitionSeconds);
  std::printf("  total volume        : %lld words (%.3f scaled by M)\n",
              static_cast<long long>(s.totalWords), s.scaledTotal(a.num_rows()));
  std::printf("    expand / fold     : %lld / %lld words\n",
              static_cast<long long>(s.expandWords), static_cast<long long>(s.foldWords));
  std::printf("  max per-proc volume : %lld words (%.3f scaled)\n",
              static_cast<long long>(s.maxProcWords), s.scaledMax(a.num_rows()));
  std::printf("  avg msgs / proc     : %.2f (max %d)\n", s.avgMessagesPerProc,
              static_cast<int>(s.maxMessagesPerProc));
  std::printf("  load imbalance      : %.2f%%\n", loads.percentImbalance);
  if (mrun.numDegraded > 0)
    std::printf("  deadline degradation: %d subproblem(s) demoted\n",
                static_cast<int>(mrun.numDegraded));

  if (const auto out = args.flag("out")) {
    model::write_decomposition_file(*out, mrun.decomp);
    std::printf("owner maps written to %s (readable by fghp_tool simulate)\n",
                out->c_str());
  }
  return 0;
}

void print_warnings() {
  for (const auto& w : fghp::drain_warnings())
    std::fprintf(stderr, "warning: %s\n", w.c_str());
}

/// Best-effort exports; returns the io exit code on failure so a successful
/// run can still report it (a failing run's typed code wins instead).
int write_observability(const std::string& traceOut, const std::string& metricsOut,
                        const std::string& reportOut, const report::Builder& rep) {
  int rc = 0;
  if (!traceOut.empty()) {
    try {
      trace::write_chrome_trace_file(traceOut);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      rc = static_cast<int>(ErrorCode::kIo);
    }
  }
  if (!metricsOut.empty()) {
    try {
      metrics::write_global_json(metricsOut);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      rc = static_cast<int>(ErrorCode::kIo);
    }
  }
  if (!reportOut.empty()) {
    try {
      report::write_file(rep.build(), reportOut);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      rc = static_cast<int>(ErrorCode::kIo);
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: partition_mtx <matrix.mtx> [--model finegrain|hyper1d|graph|"
                 "checkerboard] [--k 16] [--eps 0.03] [--seed 1] [--out owners.txt]\n"
                 "       [--method multilevel|geometric|geometric-fm|streaming]\n"
                 "       [--timeout-ms MS] [--no-degrade]\n"
                 "       [--trace-out trace.json] [--metrics-out metrics.json|-]\n"
                 "       [--report-out report.json|-] [--perf]\n");
    return 2;
  }
  const std::string traceOut = args.flag("trace-out").value_or("");
  const std::string metricsOut = args.flag("metrics-out").value_or("");
  const std::string reportOut = args.flag("report-out").value_or("");
  if (!traceOut.empty() || !reportOut.empty()) trace::enable();
  if (args.has_switch("perf")) fghp::perf::set_enabled(true);
  fghp::report::Builder rep("partition_mtx", "partition");

  int rc;
  try {
    rc = run(args, rep);
  } catch (const std::exception& e) {
    print_warnings();
    std::fprintf(stderr, "error: %s\n", e.what());
    rep.set_error(e.what());
    write_observability(traceOut, metricsOut, reportOut, rep);  // typed error wins
    return fghp::exit_code(e);
  }
  print_warnings();
  const int obsRc = write_observability(traceOut, metricsOut, reportOut, rep);
  return rc == 0 && obsRc != 0 ? obsRc : rc;
}
