// Umbrella command-line tool:
//
//   fghp_tool gen <suite-name> --out m.mtx [--scale 1.0] [--seed 1]
//       materialize a synthetic suite analog as a Matrix Market file
//   fghp_tool stats <m.mtx>
//       Table 1-style statistics plus bandwidth before/after RCM
//   fghp_tool partition <m.mtx> --model <finegrain|hyper1d|rownet|graph|
//       checkerboard|jagged|orthogonal> --k 16 [--eps 0.03] [--seed 1]
//       [--method multilevel|geometric|geometric-fm|streaming] [--threads 0]
//       [--balance-vectors] [--json] [--out d.decomp]
//       decompose and report the Table 2 metrics (one JSON object with
//       --json); the fast-path methods require --model finegrain
//   fghp_tool simulate <m.mtx> <d.decomp> [--reps 10] [--threads 0]
//       load a saved decomposition, verify it, execute repeated distributed
//       SpMVs (threaded) and report traffic + timing
//   fghp_tool spgemm <a.mtx> [b.mtx | --b-matrix b.mtx] --k 16 [--eps 0.03]
//       [--seed 1] [--threads 0] [--reps 10]
//       fine-grain partition of C = A*B (A*A when b.mtx is omitted),
//       report cutsize == communication volume, then execute repeated
//       distributed multiplies through the generic core and verify the
//       result against the reference multiply
//   fghp_tool report <report.json>
//       render a saved RunReport (written by --report-out) as tables
//   fghp_tool faults
//       list every fault-injection site (see FGHP_FAULT_SPEC)
//
// Every command also takes --trace-out FILE (Chrome trace-event JSON of the
// whole invocation; FGHP_TRACE=FILE is the no-flag equivalent),
// --metrics-out FILE|- (flat metrics JSON; "-" = stdout), --report-out
// FILE|- (structured RunReport JSON — phase timings, parallel efficiency,
// modeled-vs-measured volume audit; implies tracing so the report has
// phases), and --perf (hardware counters via perf_event_open; degrades to
// zeroed counters with one warning where the kernel refuses).
//
// Exit codes follow fghp::ErrorCode: 0 success, 1 unknown error, 2 usage,
// 3 io, 4 format, 5 invariant, 6 infeasible, 7 injected fault. Errors and
// recovery warnings go to stderr; results go to stdout. Observability files
// are written even when the command fails, and the command's typed-error
// exit code always wins: a trace of a failing run is exactly what you want
// to look at, and an export failure on top of it only adds a stderr line.
// Only on an otherwise successful run does a failed export turn into exit
// code 3 (io).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "comm/volume.hpp"
#include "models/checkerboard.hpp"
#include "models/decomp_io.hpp"
#include "models/finegrain.hpp"
#include "models/graph_model.hpp"
#include "models/hypergraph1d.hpp"
#include "models/jagged.hpp"
#include "models/orthogonal.hpp"
#include "models/rownet.hpp"
#include "models/vector_assign.hpp"
#include "partition/hg/partitioner.hpp"
#include "spgemm/finegrain.hpp"
#include "spgemm/plan.hpp"
#include "spgemm/tasks.hpp"
#include "spgemm/volume.hpp"
#include "spmv/compiled.hpp"
#include "spmv/executor.hpp"
#include "spmv/plan.hpp"
#include "spmv/reference.hpp"
#include "sparse/mmio.hpp"
#include "sparse/reorder.hpp"
#include "sparse/stats.hpp"
#include "sparse/testsuite.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/options.hpp"
#include "util/perf_counters.hpp"
#include "util/report.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace {

using namespace fghp;

int usage() {
  std::fprintf(stderr,
               "usage: fghp_tool <gen|stats|partition|simulate|spgemm|report|faults> ...\n"
               "  gen <suite-name> --out m.mtx [--scale S] [--seed N]\n"
               "  stats <m.mtx>\n"
               "  partition <m.mtx> --model M --k K [--eps E] [--seed N]\n"
               "            [--method multilevel|geometric|geometric-fm|streaming]\n"
               "            [--threads T] [--balance-vectors] [--strict] [--json]\n"
               "            [--fault-spec SPEC] [--timeout-ms MS] [--no-degrade]\n"
               "            [--out d.decomp]\n"
               "            (--method other than multilevel needs --model finegrain)\n"
               "  simulate <m.mtx> <d.decomp> [--reps R] [--threads T]\n"
               "            [--timeout-ms MS]\n"
               "  spgemm <a.mtx> [b.mtx | --b-matrix b.mtx] --k K [--eps E] [--seed N]\n"
               "            [--threads T] [--reps R] [--timeout-ms MS]\n"
               "  report <report.json>   (render a saved --report-out file)\n"
               "  faults\n"
               "every command also accepts:\n"
               "  --trace-out FILE    Chrome trace-event JSON (or FGHP_TRACE=FILE)\n"
               "  --metrics-out FILE  flat metrics JSON; '-' writes to stdout\n"
               "  --report-out FILE   structured RunReport JSON ('-' = stdout):\n"
               "                      phase wall/busy/critical-path times, parallel\n"
               "                      efficiency, modeled-vs-measured volume audit\n"
               "  --perf              hardware counters (cycles, instructions,\n"
               "                      LLC misses, branch misses) where the kernel\n"
               "                      allows; FGHP_PERF=1 is the no-flag equivalent\n"
               "  --timeout-ms MS     deadline on the whole command's work\n"
               "                      (or FGHP_TIMEOUT_MS=MS; flag wins)\n"
               "partition degrades gracefully on an expiring deadline (still a\n"
               "valid, balanced decomposition; --no-degrade turns the deadline\n"
               "into a hard exit-9 error); simulate always errors on expiry.\n"
               "exit codes: 0 ok, 1 error, 2 usage, 3 io, 4 format,\n"
               "            5 invariant, 6 infeasible, 7 injected fault,\n"
               "            8 cancelled, 9 deadline exceeded\n"
               "(observability files are written even on failure; the typed\n"
               " error code wins over any export failure)\n");
  return static_cast<int>(ErrorCode::kUsage);
}

/// Resolves the command's deadline: --timeout-ms beats FGHP_TIMEOUT_MS beats
/// none (-1, which with_deadline_ms maps to an inactive token).
long resolve_timeout_ms(const ArgParser& args) {
  if (const auto flag = args.flag("timeout-ms")) return std::stol(*flag);
  if (const char* env = std::getenv("FGHP_TIMEOUT_MS")) return std::stol(env);
  return -1;
}

int cmd_faults() {
  for (const auto& site : fault::known_sites()) std::printf("%s\n", site.c_str());
  return 0;
}

int cmd_report(const ArgParser& args) {
  if (args.positional().size() < 2) return usage();
  report::render_file(args.positional()[1], std::cout);
  return 0;
}

std::vector<long long> to_ll(const std::vector<weight_t>& v) {
  return {v.begin(), v.end()};
}

int cmd_gen(const ArgParser& args) {
  if (args.positional().size() < 2) return usage();
  const std::string name = args.positional()[1];
  const auto out = args.flag("out");
  if (!out) {
    std::fprintf(stderr, "gen: --out required\n");
    return 2;
  }
  const double scale = std::stod(args.flag("scale").value_or("1.0"));
  const auto seed = static_cast<std::uint64_t>(args.flag_long("seed", 1));
  const sparse::Csr a = sparse::make_matrix(name, seed, scale);
  sparse::write_matrix_market_file(*out, a);
  std::printf("wrote %s: %s\n", out->c_str(),
              sparse::to_string(sparse::compute_stats(a)).c_str());
  return 0;
}

int cmd_stats(const ArgParser& args) {
  if (args.positional().size() < 2) return usage();
  const sparse::Csr a = sparse::read_matrix_market_file(args.positional()[1]);
  const sparse::MatrixStats s = sparse::compute_stats(a);
  std::printf("%s\n", sparse::to_string(s).c_str());
  std::printf("  rows %d, cols %d, nnz %d\n", s.numRows, s.numCols, s.nnz);
  std::printf("  per-row    min %d max %d avg %.2f\n", s.minPerRow, s.maxPerRow, s.avgPerRow);
  std::printf("  per-col    min %d max %d avg %.2f\n", s.minPerCol, s.maxPerCol, s.avgPerCol);
  std::printf("  diagonal entries %d / %d\n", s.numDiagEntries, std::min(s.numRows, s.numCols));
  if (a.is_square()) {
    const idx_t bw = sparse::bandwidth(a);
    const sparse::Csr r = sparse::permute_symmetric(a, sparse::rcm_ordering(a));
    std::printf("  bandwidth %d (RCM: %d)\n", bw, sparse::bandwidth(r));
  }
  return 0;
}

int cmd_partition(const ArgParser& args, report::Builder& rep) {
  if (args.positional().size() < 2) return usage();
  WallTimer totalTimer;  // whole command: read + model build + partition + analysis
  const sparse::Csr a = sparse::read_matrix_market_file(args.positional()[1]);
  if (!a.is_square()) {
    std::fprintf(stderr, "partition: matrix must be square\n");
    return 1;
  }
  const std::string modelName = args.flag("model").value_or("finegrain");
  const auto k = static_cast<idx_t>(args.flag_long("k", 16));
  part::PartitionConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.flag_long("seed", 1));
  if (const auto eps = args.flag("eps")) cfg.epsilon = std::stod(*eps);
  // 0 = auto (FGHP_THREADS / hardware); the partition is identical at any
  // thread count, so --threads only trades wall time for cores.
  cfg.numThreads = static_cast<idx_t>(args.flag_long("threads", 0));
  if (args.has_switch("strict")) cfg.validateLevel = part::ValidateLevel::kStrict;
  cfg.faultSpec = args.flag("fault-spec").value_or("");
  cfg.cancel = cancel::CancelToken::with_deadline_ms(resolve_timeout_ms(args));
  if (args.has_switch("no-degrade")) cfg.degradeOnDeadline = false;
  const std::string methodName = args.flag("method").value_or("multilevel");
  if (!part::parse_method(methodName, cfg.method)) {
    std::fprintf(stderr, "partition: unknown method '%s'\n", methodName.c_str());
    return 2;
  }
  if (cfg.method != part::PartitionMethod::kMultilevel && modelName != "finegrain") {
    std::fprintf(stderr, "partition: --method %s requires --model finegrain\n",
                 methodName.c_str());
    return 2;
  }
  const bool json = args.has_switch("json");
  rep.info("matrix", args.positional()[1]);
  rep.info("model", modelName);
  rep.info("method", methodName);
  rep.info("k", static_cast<long long>(k));

  perf::CounterScope perfScope("partition");
  model::ModelRun run;
  if (modelName == "finegrain") {
    run = model::run_finegrain(a, k, cfg);
  } else if (modelName == "hyper1d") {
    run = model::run_hypergraph1d(a, k, cfg);
  } else if (modelName == "rownet") {
    run = model::run_rownet(a, k, cfg);
  } else if (modelName == "graph") {
    run = model::run_graph_model(a, k, cfg);
  } else if (modelName == "checkerboard") {
    run.decomp = model::checkerboard_decompose_k(a, k);
  } else if (modelName == "jagged") {
    run = model::run_jagged_k(a, k, cfg);
  } else if (modelName == "orthogonal") {
    run = model::run_orthogonal_k(a, k, cfg);
  } else {
    std::fprintf(stderr, "partition: unknown model '%s'\n", modelName.c_str());
    return 2;
  }

  if (args.has_switch("balance-vectors")) {
    const model::VectorAssignResult r = model::balance_vector_owners(a, run.decomp);
    if (!json)
      std::printf("vector balancing: max per-proc words %lld -> %lld\n",
                  static_cast<long long>(r.maxProcWordsBefore),
                  static_cast<long long>(r.maxProcWordsAfter));
    run.decomp = r.decomp;
  }

  const comm::CommStats s = comm::analyze(a, run.decomp);
  const model::LoadStats loads = model::compute_loads(a, run.decomp);
  // Modeled side of the report's volume audit: no SpMV runs here, so the
  // measured deltas stay zero and the audit holds trivially (0 iterations);
  // the per-processor matrix and imbalance stats still land in the report.
  rep.set_proc_comm(to_ll(s.sendWords), to_ll(s.recvWords));
  rep.expect_volume("spmv", s.expandWords, s.foldWords,
                    static_cast<long long>(s.expandMessages) + s.foldMessages);
  if (json) {
    std::printf("{\"model\":\"%s\",\"method\":\"%s\",\"k\":%d,"
                "\"partition_seconds\":%.6f,\"total_seconds\":%.6f,"
                "\"objective\":%lld,\"recoveries\":%d,\"degraded\":%d,"
                "\"total_volume_words\":%lld,\"max_proc_words\":%lld,"
                "\"expand_words\":%lld,\"fold_words\":%lld,"
                "\"avg_messages_per_proc\":%.3f,\"load_imbalance_percent\":%.3f}\n",
                modelName.c_str(), methodName.c_str(), static_cast<int>(k),
                run.partitionSeconds, totalTimer.seconds(),
                static_cast<long long>(run.objective),
                static_cast<int>(run.numRecoveries), static_cast<int>(run.numDegraded),
                static_cast<long long>(s.totalWords),
                static_cast<long long>(s.maxProcWords),
                static_cast<long long>(s.expandWords),
                static_cast<long long>(s.foldWords), s.avgMessagesPerProc,
                loads.percentImbalance);
  } else {
    std::printf("model=%s method=%s K=%d time=%.3fs total=%.3fs recoveries=%d degraded=%d\n",
                modelName.c_str(), methodName.c_str(), static_cast<int>(k),
                run.partitionSeconds, totalTimer.seconds(),
                static_cast<int>(run.numRecoveries), static_cast<int>(run.numDegraded));
    std::printf("  total volume %lld words (%.3f scaled); max/proc %lld (%.3f)\n",
                static_cast<long long>(s.totalWords), s.scaledTotal(a.num_rows()),
                static_cast<long long>(s.maxProcWords), s.scaledMax(a.num_rows()));
    std::printf("  expand/fold %lld / %lld; avg msgs/proc %.2f; load imbalance %.2f%%\n",
                static_cast<long long>(s.expandWords), static_cast<long long>(s.foldWords),
                s.avgMessagesPerProc, loads.percentImbalance);
  }

  if (const auto out = args.flag("out")) {
    model::write_decomposition_file(*out, run.decomp);
    if (!json) std::printf("decomposition written to %s\n", out->c_str());
  }
  return 0;
}

int cmd_simulate(const ArgParser& args, report::Builder& rep) {
  if (args.positional().size() < 3) return usage();
  const sparse::Csr a = sparse::read_matrix_market_file(args.positional()[1]);
  const model::Decomposition d = model::read_decomposition_file(args.positional()[2]);
  model::validate(a, d);  // throws if shapes disagree with the matrix
  const auto reps = static_cast<int>(args.flag_long("reps", 10));
  const auto threads = static_cast<idx_t>(args.flag_long("threads", 0));
  rep.info("matrix", args.positional()[1]);
  rep.info("decomp", args.positional()[2]);
  rep.info("k", static_cast<long long>(d.numProcs));
  rep.info("reps", static_cast<long long>(reps));

  // Arm the modeled-vs-measured audit before any iteration runs: the
  // executor's spmv.* metric deltas must equal these comm::analyze totals
  // times the iteration count on every clean path.
  const comm::CommStats cs = comm::analyze(a, d);
  rep.set_proc_comm(to_ll(cs.sendWords), to_ll(cs.recvWords));
  rep.expect_volume("spmv", cs.expandWords, cs.foldWords,
                    static_cast<long long>(cs.expandMessages) + cs.foldMessages);

  // One deadline covers plan build, compile, and every iteration; expiry
  // surfaces as a typed exit-9 error (no degradation ladder on this path).
  const cancel::CancelToken token =
      cancel::CancelToken::with_deadline_ms(resolve_timeout_ms(args));

  const spmv::SpmvPlan plan = spmv::build_plan(a, d, token);
  spmv::validate_plan_or_throw(plan);  // d came from a file: distrust it
  Rng rng(123);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.uniform01();

  // Compile once, iterate allocation-free: the repeated-multiply loop an
  // iterative solver would run.
  spmv::CompileOptions copts;
  copts.cancel = token;
  spmv::ExecSession session(plan, copts);
  session.set_cancel(token);
  spmv::ExecStats stats;
  WallTimer timer;
  std::vector<double> y;
  {
    perf::CounterScope perfScope("simulate");
    for (int r = 0; r < reps; ++r) session.run_mt(x, y, threads, &stats);
  }
  const double wall = timer.millis() / reps;

  const auto yRef = spmv::multiply(a, x);
  double maxErr = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i)
    maxErr = std::max(maxErr, std::abs(y[i] - yRef[i]));

  std::printf("simulate: K=%d, %d reps, %.2f ms per multiply (threaded)\n", d.numProcs,
              reps, wall);
  std::printf("  traffic per multiply: %lld words, %d messages\n",
              static_cast<long long>(stats.wordsSent), stats.messagesSent);
  if (stats.taskRetries > 0 || stats.serialFallback) {
    std::printf("  recovery: %d task retries%s\n", stats.taskRetries,
                stats.serialFallback ? ", fell back to the serial executor" : "");
  }
  std::printf("  max |y - y_ref| = %.3e\n", maxErr);
  return maxErr < 1e-8 ? 0 : 1;
}

int cmd_spgemm(const ArgParser& args, report::Builder& rep) {
  if (args.positional().size() < 2) return usage();
  const sparse::Csr a = sparse::read_matrix_market_file(args.positional()[1]);
  // B != A enters either positionally or via --b-matrix (the flag wins);
  // omitted = the classic A*A squaring.
  std::string bPath;
  if (const auto bf = args.flag("b-matrix")) bPath = *bf;
  else if (args.positional().size() >= 3) bPath = args.positional()[2];
  const sparse::Csr b = bPath.empty() ? a : sparse::read_matrix_market_file(bPath);
  const auto k = static_cast<idx_t>(args.flag_long("k", 16));
  const auto reps = static_cast<int>(args.flag_long("reps", 10));
  const auto threads = static_cast<idx_t>(args.flag_long("threads", 0));
  part::PartitionConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.flag_long("seed", 1));
  if (const auto eps = args.flag("eps")) cfg.epsilon = std::stod(*eps);
  cfg.numThreads = static_cast<idx_t>(args.flag_long("threads", 0));
  const cancel::CancelToken token =
      cancel::CancelToken::with_deadline_ms(resolve_timeout_ms(args));
  cfg.cancel = token;

  const spgemm::TaskGraph t = spgemm::build_tasks(a, b);
  std::printf("spgemm: %dx%d * %dx%d -> %d result entries, %d scalar tasks\n",
              a.num_rows(), a.num_cols(), b.num_rows(), b.num_cols(), t.num_c(),
              t.num_tasks());

  rep.info("matrix", args.positional()[1]);
  if (!bPath.empty()) rep.info("b_matrix", bPath);
  rep.info("k", static_cast<long long>(k));
  rep.info("reps", static_cast<long long>(reps));

  const spgemm::SpgemmRun run = spgemm::run_spgemm_finegrain(t, k, cfg);
  const spgemm::SpgemmCommStats s = spgemm::analyze(t, run.decomp);
  rep.set_proc_comm(to_ll(s.sendWords), to_ll(s.recvWords));
  rep.expect_volume("spgemm",
                    static_cast<long long>(s.expandAWords) + s.expandBWords,
                    s.foldCWords, static_cast<long long>(s.totalMessages));
  std::printf("model=finegrain-spgemm K=%d time=%.3fs recoveries=%d degraded=%d\n",
              static_cast<int>(k), run.partitionSeconds,
              static_cast<int>(run.numRecoveries), static_cast<int>(run.numDegraded));
  std::printf("  cutsize %lld == volume %lld words (expand-A %lld, expand-B %lld, "
              "fold-C %lld); max/proc %lld\n",
              static_cast<long long>(run.cutsize), static_cast<long long>(s.totalWords),
              static_cast<long long>(s.expandAWords),
              static_cast<long long>(s.expandBWords),
              static_cast<long long>(s.foldCWords),
              static_cast<long long>(s.maxProcWords));
  if (run.cutsize != s.totalWords) {
    std::fprintf(stderr, "spgemm: cutsize does not price the volume exactly\n");
    return static_cast<int>(ErrorCode::kInvariant);
  }

  spgemm::CompileOptions copts;
  copts.cancel = token;
  spgemm::SpgemmSession session(t, run.decomp, copts);
  session.set_cancel(token);
  spgemm::ExecStats stats;
  WallTimer timer;
  std::vector<double> c;
  {
    perf::CounterScope perfScope("spgemm");
    for (int r = 0; r < reps; ++r)
      session.run_mt(a.values(), b.values(), c, threads, &stats);
  }
  const double wall = timer.millis() / reps;

  const std::vector<double> cRef = spgemm::reference_multiply(a, b, t);
  double maxErr = 0.0;
  for (std::size_t g = 0; g < c.size(); ++g)
    maxErr = std::max(maxErr, std::abs(c[g] - cRef[g]));

  std::printf("  %d reps, %.2f ms per multiply (threaded)\n", reps, wall);
  std::printf("  traffic per multiply: %lld words, %d messages\n",
              static_cast<long long>(stats.wordsSent), stats.messagesSent);
  if (stats.taskRetries > 0 || stats.serialFallback) {
    std::printf("  recovery: %d task retries%s\n", stats.taskRetries,
                stats.serialFallback ? ", fell back to the serial executor" : "");
  }
  std::printf("  max |C - C_ref| = %.3e\n", maxErr);
  return maxErr < 1e-8 ? 0 : 1;
}

void print_warnings() {
  for (const auto& w : fghp::drain_warnings())
    std::fprintf(stderr, "warning: %s\n", w.c_str());
}

/// Writes the requested trace / metrics / report outputs. Returns 0, or the
/// io exit code if an export failed (reported to stderr either way); callers
/// on a failing command path ignore it so the typed error code wins.
int write_observability(const std::string& traceOut, const std::string& metricsOut,
                        const std::string& reportOut, const report::Builder& rep) {
  int rc = 0;
  if (!traceOut.empty()) {
    try {
      trace::write_chrome_trace_file(traceOut);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      rc = static_cast<int>(ErrorCode::kIo);
    }
  }
  if (!metricsOut.empty()) {
    try {
      metrics::write_global_json(metricsOut);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      rc = static_cast<int>(ErrorCode::kIo);
    }
  }
  if (!reportOut.empty()) {
    try {
      report::write_file(rep.build(), reportOut);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      rc = static_cast<int>(ErrorCode::kIo);
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.positional().empty()) return usage();
  const std::string traceOut = args.flag("trace-out").value_or("");
  const std::string metricsOut = args.flag("metrics-out").value_or("");
  const std::string reportOut = args.flag("report-out").value_or("");
  // A report without phases is useless, so --report-out implies tracing.
  if (!traceOut.empty() || !reportOut.empty()) trace::enable();
  if (args.has_switch("perf")) perf::set_enabled(true);
  const std::string& cmd = args.positional().front();
  // Constructed before any work: the builder baselines the metrics registry
  // and the clocks, so the report covers exactly this command.
  report::Builder rep("fghp_tool", cmd);
  int rc = -1;
  try {
    if (cmd == "gen") rc = cmd_gen(args);
    if (cmd == "stats") rc = cmd_stats(args);
    if (cmd == "partition") rc = cmd_partition(args, rep);
    if (cmd == "simulate") rc = cmd_simulate(args, rep);
    if (cmd == "spgemm") rc = cmd_spgemm(args, rep);
    if (cmd == "report") rc = cmd_report(args);
    if (cmd == "faults") rc = cmd_faults();
  } catch (const std::exception& e) {
    print_warnings();
    std::fprintf(stderr, "error: %s\n", e.what());
    rep.set_error(e.what());
    write_observability(traceOut, metricsOut, reportOut, rep);  // typed error wins
    return fghp::exit_code(e);
  }
  print_warnings();
  const int obsRc = write_observability(traceOut, metricsOut, reportOut, rep);
  if (rc == -1) return usage();
  return rc == 0 && obsRc != 0 ? obsRc : rc;
}
