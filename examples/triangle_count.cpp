// Triangle counting through distributed SpGEMM — a non-trivial client of the
// workload-agnostic execution core.
//
// For a simple undirected graph with 0/1 adjacency matrix A (no self loops),
// the number of triangles is
//
//     #triangles = (1/6) * sum_{(i,j) : a_ij = 1} (A^2)_ij
//
// i.e. trace(A^3) / 6, computed without ever forming A^3: partition the
// fine-grain SpGEMM task graph of A*A, execute the distributed multiply
// through the generic engine, then mask the result with A's own pattern.
// A serial merge-count cross-checks the total.
#include <cstdio>
#include <vector>

#include "spgemm/finegrain.hpp"
#include "spgemm/plan.hpp"
#include "spgemm/tasks.hpp"
#include "spgemm/volume.hpp"
#include "sparse/generators.hpp"

using namespace fghp;

namespace {

/// Serial reference: triangles via sorted-adjacency intersection counting.
long long count_triangles_reference(const sparse::Csr& a) {
  long long paths = 0;  // closed wedges counted 6x (ordered, both directions)
  for (idx_t i = 0; i < a.num_rows(); ++i) {
    for (idx_t j : a.row_cols(i)) {
      // |N(i) intersect N(j)| by merging the two sorted rows.
      const auto ni = a.row_cols(i);
      const auto nj = a.row_cols(j);
      std::size_t p = 0, q = 0;
      while (p < ni.size() && q < nj.size()) {
        if (ni[p] < nj[q]) {
          ++p;
        } else if (ni[p] > nj[q]) {
          ++q;
        } else {
          ++paths;
          ++p;
          ++q;
        }
      }
    }
  }
  return paths / 6;
}

}  // namespace

int main() {
  // A random geometric graph: symmetric, no diagonal, unit values — a plain
  // undirected adjacency matrix with plenty of triangles.
  sparse::GeometricParams gp;
  gp.n = 600;
  gp.avgOffDiagDeg = 8.0;
  gp.includeDiagonal = false;
  const sparse::Csr pattern = sparse::geometric_matrix(gp, /*seed=*/7);
  // The generator draws random values; triangle counting needs the 0/1
  // adjacency, so rebuild on the same pattern with unit entries.
  const sparse::Csr a(pattern.num_rows(), pattern.num_cols(),
                      {pattern.row_ptr().begin(), pattern.row_ptr().end()},
                      {pattern.col_ind().begin(), pattern.col_ind().end()},
                      std::vector<double>(static_cast<std::size_t>(pattern.nnz()), 1.0));

  const spgemm::TaskGraph t = spgemm::build_tasks(a, a);
  std::printf("adjacency: %d vertices, %d edges; A*A has %d entries via %d tasks\n",
              a.num_rows(), a.nnz() / 2, t.num_c(), t.num_tasks());

  // Partition the fine-grain SpGEMM hypergraph for 8 processors and report
  // the exact communication volume the cutsize promises.
  part::PartitionConfig cfg;
  cfg.seed = 1;
  const spgemm::SpgemmRun run = spgemm::run_spgemm_finegrain(t, 8, cfg);
  const spgemm::SpgemmCommStats s = spgemm::analyze(t, run.decomp);
  std::printf("K=8 fine-grain partition: cutsize %lld, measured volume %lld words\n",
              static_cast<long long>(run.cutsize),
              static_cast<long long>(s.totalWords));

  // Distributed multiply, then mask (A^2)_ij with A's pattern. A is 0/1 so
  // the masked sum is exactly 6x the triangle count.
  spgemm::SpgemmSession session(t, run.decomp);
  std::vector<double> c;
  session.run_mt(a.values(), a.values(), c);

  double masked = 0.0;
  std::size_t g = 0;
  for (idx_t i = 0; i < a.num_rows(); ++i) {
    for (idx_t j : a.row_cols(i)) {
      while (g < c.size() && (t.cRow[g] < i || (t.cRow[g] == i && t.cCol[g] < j))) ++g;
      if (g < c.size() && t.cRow[g] == i && t.cCol[g] == j) masked += c[g];
    }
  }
  const long long triangles = static_cast<long long>(masked + 0.5) / 6;
  const long long reference = count_triangles_reference(a);
  std::printf("triangles: %lld distributed, %lld reference\n", triangles, reference);
  return triangles == reference ? 0 : 1;
}
