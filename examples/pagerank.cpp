// PageRank via distributed transpose products: the power iteration
// r <- d * A^T r + (1 - d)/n needs z = A^T r each step, where A is the
// row-stochastic link matrix. The fine-grain decomposition is computed once
// for A and reused for every transpose product through
// spmv::build_transpose_plan — the same data placement serves both product
// directions at identical communication volume (see spmv/transpose.hpp).
//
//   ./pagerank [--n 3000] [--k 8] [--damping 0.85] [--tol 1e-10]
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "comm/volume.hpp"
#include "models/finegrain.hpp"
#include "partition/hg/partitioner.hpp"
#include "spmv/compiled.hpp"
#include "spmv/plan.hpp"
#include "spmv/transpose.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "util/error.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) try {
  using namespace fghp;
  const ArgParser args(argc, argv);
  const auto n = static_cast<idx_t>(args.flag_long("n", 3000));
  const auto k = static_cast<idx_t>(args.flag_long("k", 8));
  const double damping = std::stod(args.flag("damping").value_or("0.85"));
  const double tol = std::stod(args.flag("tol").value_or("1e-10"));

  // A synthetic web graph: preferential-attachment-ish out-links, row-
  // stochastic (each row sums to 1 over its out-links).
  Rng rng(7);
  sparse::Coo coo(n, n);
  for (idx_t i = 0; i < n; ++i) {
    const idx_t outDeg = 2 + static_cast<idx_t>(rng.uniform(0, 6));
    std::vector<idx_t> targets;
    for (idx_t e = 0; e < outDeg; ++e) {
      // Preferential-ish: half the links go to low ids (the "popular" pages).
      const idx_t t = rng.bernoulli(0.5) ? rng.uniform(0, std::max<idx_t>(1, n / 20) - 1)
                                         : rng.uniform(0, n - 1);
      if (t != i) targets.push_back(t);
    }
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    if (targets.empty()) targets.push_back((i + 1) % n);  // no dangling rows
    for (idx_t t : targets)
      coo.add(i, t, 1.0 / static_cast<double>(targets.size()));
  }
  const sparse::Csr a = sparse::to_csr(std::move(coo));
  std::printf("web graph: %d pages, %d links, K = %d\n", a.num_rows(), a.nnz(),
              static_cast<int>(k));

  // Decompose once for A; the transpose plan reuses the same placement.
  const model::FineGrainModel m = model::build_finegrain(a);
  part::PartitionConfig cfg;
  const part::HgResult pr = part::partition_hypergraph(m.h, k, cfg);
  const model::Decomposition d = model::decode_finegrain(a, m, pr.partition);
  // Compile the transpose plan once; every power iteration reuses the
  // session's local-indexed image and scratch.
  spmv::ExecSession sessionT(spmv::build_transpose_plan(a, d));
  const comm::CommStats fwd = comm::analyze(a, d);
  const comm::CommStats bwd =
      comm::analyze(sparse::transpose(a), spmv::transpose_decomposition(a, d));
  std::printf("decomposition: %lld words per A^T r (forward product: %lld — equal totals)\n",
              static_cast<long long>(bwd.totalWords), static_cast<long long>(fwd.totalWords));

  // Power iteration.
  std::vector<double> r(static_cast<std::size_t>(n), 1.0 / static_cast<double>(n));
  const double teleport = (1.0 - damping) / static_cast<double>(n);
  long iters = 0;
  double delta = 1.0;
  std::vector<double> z;
  while (delta > tol && iters < 200) {
    sessionT.run(r, z);  // z = A^T r
    delta = 0.0;
    for (std::size_t i = 0; i < r.size(); ++i) {
      const double next = damping * z[i] + teleport;
      delta += std::abs(next - r[i]);
      r[i] = next;
    }
    ++iters;
  }

  double sum = 0.0;
  for (double v : r) sum += v;
  idx_t top = 0;
  for (idx_t i = 1; i < n; ++i)
    if (r[static_cast<std::size_t>(i)] > r[static_cast<std::size_t>(top)]) top = i;
  std::printf("converged in %ld iterations; |r|_1 = %.6f (should be ~1)\n", iters, sum);
  std::printf("top page: %d with rank %.3e (popular pages are the low ids by"
              " construction)\n", static_cast<int>(top), r[static_cast<std::size_t>(top)]);
  std::printf("total communication across the run: %lld words\n",
              static_cast<long long>(bwd.totalWords) * iters);
  return std::abs(sum - 1.0) < 1e-6 && top < n / 20 ? 0 : 1;
} catch (const std::exception& e) {
  for (const auto& w : fghp::drain_warnings())
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  std::fprintf(stderr, "error: %s\n", e.what());
  return fghp::exit_code(e);
}
