// Ablation A7 — vector-ownership balancing on top of the fine-grain model:
// the paper decodes owner(x_j) = owner(y_j) = part[v_jj]; any owner inside
// Λ(n_j) ∩ Λ(m_j) gives the same total volume, so the slack can reduce the
// *maximum* per-processor volume (Table 2's "max" column) — the direction
// Uçar & Aykanat later formalized. Reports max volume before/after.
//
// Knobs: FGHP_SCALE, FGHP_MATRICES, FGHP_K (first value used).
#include <cstdio>

#include "bench_common.hpp"
#include "models/vector_assign.hpp"

int main() {
  using namespace fghp;
  bench::BenchEnv env = bench::load_env();
  if (!env_str("FGHP_MATRICES")) {
    env.matrices = {"sherman3", "ken-11", "cq9", "cre-b", "finan512"};
  }
  const idx_t K = env.kValues.empty() ? 16 : env.kValues.front();

  std::printf("Ablation A7 — balancing vector ownership within the connectivity sets"
              " (fine-grain, K=%d, scale=%.2f)\n\n", static_cast<int>(K), env.scale);
  Table t({"matrix", "tot (unchanged)", "max before", "max after", "improvement"});
  for (const auto& name : env.matrices) {
    const sparse::Csr a = sparse::make_matrix(name, 1, env.scale);
    part::PartitionConfig cfg;
    const model::ModelRun run = model::run_finegrain(a, K, cfg);
    const comm::CommStats before = comm::analyze(a, run.decomp);
    const model::VectorAssignResult r = model::balance_vector_owners(a, run.decomp);
    const comm::CommStats after = comm::analyze(a, r.decomp);
    const double imp =
        before.maxProcWords > 0
            ? 100.0 * (1.0 - static_cast<double>(after.maxProcWords) /
                                 static_cast<double>(before.maxProcWords))
            : 0.0;
    t.add_row({name, Table::num(before.scaledTotal(a.num_rows())),
               Table::num(before.scaledMax(a.num_rows())),
               Table::num(after.scaledMax(a.num_rows())), Table::num(imp, 1) + "%"});
  }
  t.print();
  return 0;
}
