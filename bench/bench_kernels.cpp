// Ablation A6 — google-benchmark microbenchmarks of the hot kernels:
// model construction, one coarsening level, one FM refinement, the
// communication analyzer and the local SpMV. These are the building blocks
// whose costs explain the Table 2 'time' column.
//
// Flags: --json <path> (ours, stripped before google-benchmark sees argv)
// writes per-benchmark timings via the shared JsonWriter, same document
// shape as the table benches.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/volume.hpp"
#include "models/finegrain.hpp"
#include "models/hypergraph1d.hpp"
#include "partition/hg/coarsen.hpp"
#include "partition/hg/partitioner.hpp"
#include "partition/hg/refine.hpp"
#include "spmv/compiled.hpp"
#include "spmv/executor.hpp"
#include "spmv/plan.hpp"
#include "spmv/reference.hpp"
#include "sparse/testsuite.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace {

using namespace fghp;

const sparse::Csr& matrix() {
  static const sparse::Csr a = sparse::make_matrix("ken-11", 1, 0.5);
  return a;
}

void BM_BuildFineGrain(benchmark::State& state) {
  const sparse::Csr& a = matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::build_finegrain(a));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_BuildFineGrain)->Unit(benchmark::kMillisecond);

void BM_BuildColnet(benchmark::State& state) {
  const sparse::Csr& a = matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::build_colnet_hypergraph(a));
  }
}
BENCHMARK(BM_BuildColnet)->Unit(benchmark::kMillisecond);

void BM_CoarsenOneLevel(benchmark::State& state) {
  const model::FineGrainModel m = model::build_finegrain(matrix());
  part::PartitionConfig cfg;
  for (auto _ : state) {
    Rng rng(1);
    benchmark::DoNotOptimize(part::hgc::coarsen_one_level(m.h, cfg, rng));
  }
  state.SetItemsProcessed(state.iterations() * m.h.num_pins());
}
BENCHMARK(BM_CoarsenOneLevel)->Unit(benchmark::kMillisecond);

void BM_FmRefineBisection(benchmark::State& state) {
  const model::FineGrainModel m = model::build_finegrain(matrix());
  part::PartitionConfig cfg;
  Rng seedRng(2);
  std::vector<idx_t> assign(static_cast<std::size_t>(m.h.num_vertices()));
  for (auto& p : assign) p = seedRng.uniform(0, 1);
  const weight_t cap = m.h.total_vertex_weight();
  for (auto _ : state) {
    hg::Partition p(m.h, 2, assign);
    part::hgr::BisectionFM fm(cfg);
    Rng rng(3);
    benchmark::DoNotOptimize(fm.refine(m.h, p, {cap, cap}, rng));
  }
}
BENCHMARK(BM_FmRefineBisection)->Unit(benchmark::kMillisecond);

void BM_PartitionFineGrainK16(benchmark::State& state) {
  const model::FineGrainModel m = model::build_finegrain(matrix());
  part::PartitionConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(part::partition_hypergraph(m.h, 16, cfg));
  }
}
BENCHMARK(BM_PartitionFineGrainK16)->Unit(benchmark::kMillisecond);

void BM_CommAnalyze(benchmark::State& state) {
  const sparse::Csr& a = matrix();
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_finegrain(a, 16, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(comm::analyze(a, run.decomp));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_CommAnalyze)->Unit(benchmark::kMillisecond);

void BM_ReferenceSpmv(benchmark::State& state) {
  const sparse::Csr& a = matrix();
  Rng rng(4);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.uniform01();
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
  for (auto _ : state) {
    spmv::multiply_into(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_ReferenceSpmv)->Unit(benchmark::kMicrosecond);

const spmv::SpmvPlan& finegrain_plan() {
  static const spmv::SpmvPlan plan = [] {
    part::PartitionConfig cfg;
    const model::ModelRun run = model::run_finegrain(matrix(), 16, cfg);
    return spmv::build_plan(matrix(), run.decomp);
  }();
  return plan;
}

void BM_DistributedSpmvPlanWalk(benchmark::State& state) {
  const sparse::Csr& a = matrix();
  const spmv::SpmvPlan& plan = finegrain_plan();
  Rng rng(5);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.uniform01();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spmv::execute_plan_walk(plan, x));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_DistributedSpmvPlanWalk)->Unit(benchmark::kMillisecond);

void BM_CompilePlan(benchmark::State& state) {
  const spmv::SpmvPlan& plan = finegrain_plan();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spmv::compile_plan(plan));
  }
  state.SetItemsProcessed(state.iterations() * matrix().nnz());
}
BENCHMARK(BM_CompilePlan)->Unit(benchmark::kMillisecond);

void BM_CompiledSpmvSession(benchmark::State& state) {
  const sparse::Csr& a = matrix();
  spmv::ExecSession session(finegrain_plan());
  Rng rng(5);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.uniform01();
  std::vector<double> y;
  for (auto _ : state) {
    session.run(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_CompiledSpmvSession)->Unit(benchmark::kMicrosecond);

// The per-site cost of an instrumentation point while tracing is disabled
// (the default): one relaxed atomic load and a branch. Compare against
// BM_CompiledSpmvSession to see that the budget holds in context, and
// against the enabled variant for the recording cost.
void BM_DisabledTraceScope(benchmark::State& state) {
  trace::disable();
  for (auto _ : state) {
    trace::TraceScope span("bench", "disabled.site", "arg", 1);
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DisabledTraceScope);

void BM_EnabledTraceScope(benchmark::State& state) {
  trace::enable();
  for (auto _ : state) {
    trace::TraceScope span("bench", "enabled.site", "arg", 1);
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
  trace::disable();
  trace::reset();
}
BENCHMARK(BM_EnabledTraceScope);

// Captures every finished run for the --json flag while still printing the
// normal console table.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<Run> captured;

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& r : report)
      if (!r.error_occurred) captured.push_back(r);
    ConsoleReporter::ReportRuns(report);
  }
};

}  // namespace

int main(int argc, char** argv) {
  // Peel off our --json flag; google-benchmark rejects flags it doesn't know.
  std::string jsonPath;
  std::vector<char*> filtered;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      jsonPath = argv[i] + 7;
    } else {
      filtered.push_back(argv[i]);
    }
  }
  int filteredArgc = static_cast<int>(filtered.size());
  benchmark::Initialize(&filteredArgc, filtered.data());
  if (benchmark::ReportUnrecognizedArguments(filteredArgc, filtered.data())) return 1;

  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!jsonPath.empty()) {
    fghp::bench::JsonWriter json;
    json.scalar("bench", std::string("kernels"));
    for (const auto& r : reporter.captured) {
      const double iters = r.iterations > 0 ? static_cast<double>(r.iterations) : 1.0;
      auto& rec = json.add("benchmarks");
      rec.field("name", r.benchmark_name())
          .field("iterations", static_cast<long long>(r.iterations))
          .field("real_ns_per_iter", r.real_accumulated_time / iters * 1e9)
          .field("cpu_ns_per_iter", r.cpu_accumulated_time / iters * 1e9);
      const auto it = r.counters.find("items_per_second");
      if (it != r.counters.end()) rec.field("items_per_second", double(it->second));
    }
    if (!json.write(jsonPath)) return 1;
  }
  return 0;
}
