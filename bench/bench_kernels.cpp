// Ablation A6 — google-benchmark microbenchmarks of the hot kernels:
// model construction, one coarsening level, one FM refinement, the
// communication analyzer and the local SpMV. These are the building blocks
// whose costs explain the Table 2 'time' column.
#include <benchmark/benchmark.h>

#include "comm/volume.hpp"
#include "models/finegrain.hpp"
#include "models/hypergraph1d.hpp"
#include "partition/hg/coarsen.hpp"
#include "partition/hg/partitioner.hpp"
#include "partition/hg/refine.hpp"
#include "spmv/executor.hpp"
#include "spmv/plan.hpp"
#include "spmv/reference.hpp"
#include "sparse/testsuite.hpp"
#include "util/rng.hpp"

namespace {

using namespace fghp;

const sparse::Csr& matrix() {
  static const sparse::Csr a = sparse::make_matrix("ken-11", 1, 0.5);
  return a;
}

void BM_BuildFineGrain(benchmark::State& state) {
  const sparse::Csr& a = matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::build_finegrain(a));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_BuildFineGrain)->Unit(benchmark::kMillisecond);

void BM_BuildColnet(benchmark::State& state) {
  const sparse::Csr& a = matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::build_colnet_hypergraph(a));
  }
}
BENCHMARK(BM_BuildColnet)->Unit(benchmark::kMillisecond);

void BM_CoarsenOneLevel(benchmark::State& state) {
  const model::FineGrainModel m = model::build_finegrain(matrix());
  part::PartitionConfig cfg;
  for (auto _ : state) {
    Rng rng(1);
    benchmark::DoNotOptimize(part::hgc::coarsen_one_level(m.h, cfg, rng));
  }
  state.SetItemsProcessed(state.iterations() * m.h.num_pins());
}
BENCHMARK(BM_CoarsenOneLevel)->Unit(benchmark::kMillisecond);

void BM_FmRefineBisection(benchmark::State& state) {
  const model::FineGrainModel m = model::build_finegrain(matrix());
  part::PartitionConfig cfg;
  Rng seedRng(2);
  std::vector<idx_t> assign(static_cast<std::size_t>(m.h.num_vertices()));
  for (auto& p : assign) p = seedRng.uniform(0, 1);
  const weight_t cap = m.h.total_vertex_weight();
  for (auto _ : state) {
    hg::Partition p(m.h, 2, assign);
    part::hgr::BisectionFM fm(cfg);
    Rng rng(3);
    benchmark::DoNotOptimize(fm.refine(m.h, p, {cap, cap}, rng));
  }
}
BENCHMARK(BM_FmRefineBisection)->Unit(benchmark::kMillisecond);

void BM_PartitionFineGrainK16(benchmark::State& state) {
  const model::FineGrainModel m = model::build_finegrain(matrix());
  part::PartitionConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(part::partition_hypergraph(m.h, 16, cfg));
  }
}
BENCHMARK(BM_PartitionFineGrainK16)->Unit(benchmark::kMillisecond);

void BM_CommAnalyze(benchmark::State& state) {
  const sparse::Csr& a = matrix();
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_finegrain(a, 16, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(comm::analyze(a, run.decomp));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_CommAnalyze)->Unit(benchmark::kMillisecond);

void BM_ReferenceSpmv(benchmark::State& state) {
  const sparse::Csr& a = matrix();
  Rng rng(4);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.uniform01();
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
  for (auto _ : state) {
    spmv::multiply_into(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_ReferenceSpmv)->Unit(benchmark::kMicrosecond);

void BM_DistributedSpmvSerialSim(benchmark::State& state) {
  const sparse::Csr& a = matrix();
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_finegrain(a, 16, cfg);
  const spmv::SpmvPlan plan = spmv::build_plan(a, run.decomp);
  Rng rng(5);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.uniform01();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spmv::execute(plan, x));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_DistributedSpmvSerialSim)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
