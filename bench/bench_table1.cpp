// Regenerates the paper's Table 1: properties of the test matrices
// (number of rows/cols; total, min, max and average nonzeros per row/col),
// printing the synthetic analog's statistics next to the paper's reported
// values so the substitution fidelity is visible at a glance.
//
// Knobs: FGHP_SCALE, FGHP_MATRICES (see bench_common.hpp).
// Flags: --json <path> writes the per-matrix statistics as JSON.
#include <cstdio>

#include "bench_common.hpp"
#include "sparse/stats.hpp"

int main(int argc, char** argv) {
  using namespace fghp;
  const bench::BenchEnv env = bench::load_env();
  const ArgParser args(argc, argv);
  bench::Observability obs(args, "bench_table1");
  bench::JsonWriter json;
  json.scalar("table", std::string("table1"));
  json.scalar("scale", env.scale);

  std::printf("Table 1 — properties of the test matrices (synthetic analogs vs paper)\n");
  std::printf("scale = %.2f\n\n", env.scale);

  Table t({"name", "rows/cols", "paper", "nnz total", "paper", "min", "paper", "max",
           "paper", "avg", "paper"});
  for (const auto& name : env.matrices) {
    const auto& entry = sparse::suite_entry(name);
    const sparse::Csr a = sparse::make_matrix(name, 1, env.scale);
    const sparse::MatrixStats s = sparse::compute_stats(a);
    t.add_row({name, Table::num(static_cast<long long>(s.numRows)),
               Table::num(static_cast<long long>(entry.paper.rows)),
               Table::num(static_cast<long long>(s.nnz)),
               Table::num(static_cast<long long>(entry.paper.nnz)),
               Table::num(static_cast<long long>(s.minPerRowCol)),
               Table::num(static_cast<long long>(entry.paper.minPerRowCol)),
               Table::num(static_cast<long long>(s.maxPerRowCol)),
               Table::num(static_cast<long long>(entry.paper.maxPerRowCol)),
               Table::num(s.avgPerRowCol), Table::num(entry.paper.avgPerRowCol)});
    json.add("matrices")
        .field("name", name)
        .field("rows", static_cast<long long>(s.numRows))
        .field("nnz", static_cast<long long>(s.nnz))
        .field("min_per_rowcol", static_cast<long long>(s.minPerRowCol))
        .field("max_per_rowcol", static_cast<long long>(s.maxPerRowCol))
        .field("avg_per_rowcol", s.avgPerRowCol)
        .field("paper_rows", static_cast<long long>(entry.paper.rows))
        .field("paper_nnz", static_cast<long long>(entry.paper.nnz));
  }
  t.print();
  if (const auto path = args.flag("json"); path && !json.write(*path)) return 1;
  std::printf(
      "\nNotes: analogs are generated (see sparse/testsuite.cpp); 'paper' columns are\n"
      "Table 1 of Catalyurek & Aykanat, IPPS 2001. Row counts match exactly at scale 1;\n"
      "nonzero totals within a few percent; min/max/avg match the generator targets.\n");
  return obs.finish() != 0 ? 1 : 0;
}
