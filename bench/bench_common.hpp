// Shared plumbing for the benchmark harnesses: environment knobs, the
// model-sweep runner, and per-run record keeping.
//
// Knobs (environment variables):
//   FGHP_SCALE     matrix scale in (0, 1]        (default 1.0 = paper size)
//   FGHP_SEEDS     partitioner seeds per instance (default 1; paper used 50)
//   FGHP_K         comma list of K values         (default "16,32,64")
//   FGHP_MATRICES  comma list of suite names      (default: all 14)
//   FGHP_FULL=1    shorthand for FGHP_SCALE=1.0, FGHP_SEEDS=3
//   FGHP_THREADS   worker threads for the seed sweep and the task-parallel
//                  recursive bisection (default: hardware concurrency)
#pragma once

#include <string>
#include <vector>

#include "comm/volume.hpp"
#include "models/finegrain.hpp"
#include "models/graph_model.hpp"
#include "models/hypergraph1d.hpp"
#include "partition/config.hpp"
#include "sparse/testsuite.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace fghp::bench {

struct BenchEnv {
  double scale = 0.3;
  idx_t seeds = 1;
  std::vector<idx_t> kValues = {16, 32, 64};
  std::vector<std::string> matrices;  // paper order
};

inline BenchEnv load_env() {
  BenchEnv env;
  const bool full = env_flag("FGHP_FULL");
  env.scale = 1.0;
  env.seeds = full ? 3 : 1;
  if (const auto s = env_str("FGHP_SCALE")) env.scale = std::stod(*s);
  env.seeds = static_cast<idx_t>(env_long("FGHP_SEEDS", env.seeds));
  if (const auto ks = env_str("FGHP_K"); ks) {
    env.kValues.clear();
    for (const auto& item : env_list("FGHP_K")) env.kValues.push_back(std::stoi(item));
  }
  env.matrices = env_list("FGHP_MATRICES");
  if (env.matrices.empty()) env.matrices = sparse::suite_names();
  return env;
}

/// One (matrix, K, model, seed) measurement.
struct RunRecord {
  double scaledTotal = 0.0;  ///< total comm volume / M
  double scaledMax = 0.0;    ///< max per-proc volume / M
  double avgMsgs = 0.0;      ///< avg messages handled per proc
  double seconds = 0.0;      ///< partitioning time
  double pctImbalance = 0.0;
};

enum class Model { kGraph1d, kHypergraph1d, kFineGrain2d };

inline const char* model_name(Model m) {
  switch (m) {
    case Model::kGraph1d: return "graph-1d";
    case Model::kHypergraph1d: return "hyper-1d";
    case Model::kFineGrain2d: return "finegrain-2d";
  }
  return "?";
}

/// Runs one model once and measures everything Table 2 reports.
inline RunRecord run_once(const sparse::Csr& a, Model which, idx_t K, std::uint64_t seed) {
  part::PartitionConfig cfg;
  cfg.seed = seed;
  model::ModelRun run;
  switch (which) {
    case Model::kGraph1d: run = model::run_graph_model(a, K, cfg); break;
    case Model::kHypergraph1d: run = model::run_hypergraph1d(a, K, cfg); break;
    case Model::kFineGrain2d: run = model::run_finegrain(a, K, cfg); break;
  }
  const comm::CommStats s = comm::analyze(a, run.decomp);
  const model::LoadStats loads = model::compute_loads(a, run.decomp);
  RunRecord rec;
  rec.scaledTotal = s.scaledTotal(a.num_rows());
  rec.scaledMax = s.scaledMax(a.num_rows());
  rec.avgMsgs = s.avgMessagesPerProc;
  rec.seconds = run.partitionSeconds;
  rec.pctImbalance = loads.percentImbalance;
  return rec;
}

/// Averages run_once over `seeds` seeds (the paper averages over 50).
/// Seeds are independent partitioner runs (each gets its own Rng from its
/// seed), so they sweep in parallel on the shared pool; the reduction stays
/// in seed order, making the averages identical to the serial sweep.
inline RunRecord run_avg(const sparse::Csr& a, Model which, idx_t K, idx_t seeds) {
  std::vector<RunRecord> recs(static_cast<std::size_t>(seeds));
  parallel_for(ThreadPool::global(), seeds, [&](long s) {
    recs[static_cast<std::size_t>(s)] =
        run_once(a, which, K, static_cast<std::uint64_t>(s) + 1);
  });
  RunRecord avg;
  for (const RunRecord& r : recs) {
    avg.scaledTotal += r.scaledTotal;
    avg.scaledMax += r.scaledMax;
    avg.avgMsgs += r.avgMsgs;
    avg.seconds += r.seconds;
    avg.pctImbalance += r.pctImbalance;
  }
  const double n = static_cast<double>(seeds);
  avg.scaledTotal /= n;
  avg.scaledMax /= n;
  avg.avgMsgs /= n;
  avg.seconds /= n;
  avg.pctImbalance /= n;
  return avg;
}

}  // namespace fghp::bench
