// Shared plumbing for the benchmark harnesses: environment knobs, the
// model-sweep runner, and per-run record keeping.
//
// Knobs (environment variables):
//   FGHP_SCALE     matrix scale in (0, 1]        (default 1.0 = paper size)
//   FGHP_SEEDS     partitioner seeds per instance (default 1; paper used 50)
//   FGHP_K         comma list of K values         (default "16,32,64")
//   FGHP_MATRICES  comma list of suite names      (default: all 14)
//   FGHP_FULL=1    shorthand for FGHP_SCALE=1.0, FGHP_SEEDS=3
//   FGHP_THREADS   worker threads for the seed sweep and the task-parallel
//                  recursive bisection (default: hardware concurrency)
#pragma once

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "comm/volume.hpp"
#include "models/finegrain.hpp"
#include "models/graph_model.hpp"
#include "models/hypergraph1d.hpp"
#include "partition/config.hpp"
#include "sparse/testsuite.hpp"
#include "exec/kernels.hpp"
#include "util/assert.hpp"
#include "util/metrics.hpp"
#include "util/options.hpp"
#include "util/perf_counters.hpp"
#include "util/report.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace fghp::bench {

struct BenchEnv {
  double scale = 0.3;
  idx_t seeds = 1;
  std::vector<idx_t> kValues = {16, 32, 64};
  std::vector<std::string> matrices;  // paper order
};

inline BenchEnv load_env() {
  BenchEnv env;
  const bool full = env_flag("FGHP_FULL");
  env.scale = 1.0;
  env.seeds = full ? 3 : 1;
  if (const auto s = env_str("FGHP_SCALE")) env.scale = std::stod(*s);
  env.seeds = static_cast<idx_t>(env_long("FGHP_SEEDS", env.seeds));
  if (const auto ks = env_str("FGHP_K"); ks) {
    env.kValues.clear();
    for (const auto& item : env_list("FGHP_K")) env.kValues.push_back(std::stoi(item));
  }
  env.matrices = env_list("FGHP_MATRICES");
  if (env.matrices.empty()) env.matrices = sparse::suite_names();
  return env;
}

/// The CLIs' standard observability flags, for the bench mains: --trace-out
/// FILE (Chrome trace JSON), --metrics-out FILE|- (flat metrics JSON),
/// --report-out FILE|- (structured RunReport; implies tracing so the report
/// has phases) and --perf (hardware counters where the kernel allows).
/// Construct before the measured work — the RunReport builder baselines the
/// metrics registry and the clocks — and call finish() once at the end.
/// Exports are best-effort: finish() reports failures to stderr and returns
/// 1, which the bench mains fold into their exit code.
class Observability {
 public:
  Observability(const ArgParser& args, const std::string& benchName)
      : traceOut_(args.flag("trace-out").value_or("")),
        metricsOut_(args.flag("metrics-out").value_or("")),
        reportOut_(args.flag("report-out").value_or("")) {
    if (!traceOut_.empty() || !reportOut_.empty()) trace::enable();
    if (args.has_switch("perf")) perf::set_enabled(true);
    rep_ = std::make_unique<fghp::report::Builder>(benchName, "bench");
  }

  /// The run's RunReport builder, for info() / expect_volume() context.
  fghp::report::Builder& report() { return *rep_; }

  int finish() const {
    int rc = 0;
    const auto attempt = [&rc](const auto& fn) {
      try {
        fn();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        rc = 1;
      }
    };
    if (!traceOut_.empty()) attempt([&] { trace::write_chrome_trace_file(traceOut_); });
    if (!metricsOut_.empty()) attempt([&] { metrics::write_global_json(metricsOut_); });
    if (!reportOut_.empty())
      attempt([&] { fghp::report::write_file(rep_->build(), reportOut_); });
    return rc;
  }

 private:
  std::string traceOut_, metricsOut_, reportOut_;
  std::unique_ptr<fghp::report::Builder> rep_;
};

/// Median of a sample vector (throughput benches report median-of-N so one
/// descheduled iteration cannot skew the result): middle element for odd
/// sizes, the average of the two middle elements for even sizes. Copies:
/// samples are tiny. Throws std::invalid_argument on an empty sample — a
/// silent 0.0 here once let a bench that measured nothing report a plausible
/// "0 ms" row instead of failing.
inline double median(std::vector<double> v) {
  FGHP_REQUIRE(!v.empty(), "median of an empty sample");
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

/// Measured STREAM-triad bandwidth (a[i] = b[i] + s * c[i]) in GB/s: the
/// machine's practical memory-bandwidth ceiling, reported by bench_spmv's
/// roofline section as the denominator of "achieved / peak". Three arrays
/// of nDoubles each (pick nDoubles well past the last-level cache), one
/// warmup pass, median of `reps` timed passes, 24 bytes counted per element
/// (two reads + one write — the classic STREAM accounting).
inline double stream_triad_gbps(std::size_t nDoubles, int reps) {
  std::vector<double> a(nDoubles, 0.0), b(nDoubles, 1.0), c(nDoubles, 2.0);
  const double s = 3.0;
  auto pass = [&] {
    FGHP_SIMD_LOOP
    for (std::size_t i = 0; i < nDoubles; ++i) a[i] = b[i] + s * c[i];
  };
  pass();
  std::vector<double> ms;
  ms.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    pass();
    ms.push_back(t.millis());
  }
  const double bytes = 24.0 * static_cast<double>(nDoubles);
  return bytes / (median(std::move(ms)) * 1e6);
}

// ------------------------------------------------------------- JSON ----
// Minimal JSON emission for the benches' --json flag: a top-level object of
// scalar fields plus named arrays of flat records. Covers exactly what the
// table benches write; strings in this codebase (suite names, model names)
// never need escaping beyond quotes/backslashes.

class JsonWriter {
 public:
  void scalar(const std::string& key, double v) { scalars_.push_back({key, num(v)}); }
  void scalar(const std::string& key, long long v) {
    scalars_.push_back({key, std::to_string(v)});
  }
  void scalar(const std::string& key, const std::string& v) {
    scalars_.push_back({key, quote(v)});
  }

  class Record {
   public:
    Record& field(const std::string& key, const std::string& v) { return raw(key, quote(v)); }
    Record& field(const std::string& key, double v) { return raw(key, num(v)); }
    Record& field(const std::string& key, long long v) {
      return raw(key, std::to_string(v));
    }
    Record& field(const std::string& key, idx_t v) {
      return raw(key, std::to_string(static_cast<long long>(v)));
    }

   private:
    friend class JsonWriter;
    Record& raw(const std::string& key, std::string v) {
      fields_.push_back({key, std::move(v)});
      return *this;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  /// Appends a record to the array named `key` (arrays keep insertion order).
  Record& add(const std::string& key) {
    if (arrays_.empty() || arrays_.back().first != key) arrays_.push_back({key, {}});
    arrays_.back().second.emplace_back();
    return arrays_.back().second.back();
  }

  /// Writes the document; returns false (after a stderr note) on I/O failure.
  bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
      return false;
    }
    out << "{\n";
    bool first = true;
    for (const auto& [key, v] : scalars_) {
      out << (first ? "" : ",\n") << "  " << quote(key) << ": " << v;
      first = false;
    }
    for (const auto& [key, records] : arrays_) {
      out << (first ? "" : ",\n") << "  " << quote(key) << ": [\n";
      first = false;
      for (std::size_t i = 0; i < records.size(); ++i) {
        out << "    {";
        for (std::size_t f = 0; f < records[i].fields_.size(); ++f) {
          out << (f ? ", " : "") << quote(records[i].fields_[f].first) << ": "
              << records[i].fields_[f].second;
        }
        out << (i + 1 < records.size() ? "},\n" : "}\n");
      }
      out << "  ]";
    }
    out << "\n}\n";
    return static_cast<bool>(out);
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }
  static std::string num(double v) {
    std::ostringstream os;
    os << v;  // default precision; NaN/Inf never reach here
    return os.str();
  }

  std::vector<std::pair<std::string, std::string>> scalars_;
  std::vector<std::pair<std::string, std::vector<Record>>> arrays_;
};

/// One (matrix, K, model, seed) measurement.
struct RunRecord {
  double scaledTotal = 0.0;  ///< total comm volume / M
  double scaledMax = 0.0;    ///< max per-proc volume / M
  double avgMsgs = 0.0;      ///< avg messages handled per proc
  double seconds = 0.0;      ///< partitioning time
  double pctImbalance = 0.0;
};

enum class Model { kGraph1d, kHypergraph1d, kFineGrain2d };

inline const char* model_name(Model m) {
  switch (m) {
    case Model::kGraph1d: return "graph-1d";
    case Model::kHypergraph1d: return "hyper-1d";
    case Model::kFineGrain2d: return "finegrain-2d";
  }
  return "?";
}

/// Runs one model once and measures everything Table 2 reports.
inline RunRecord run_once(const sparse::Csr& a, Model which, idx_t K, std::uint64_t seed) {
  part::PartitionConfig cfg;
  cfg.seed = seed;
  model::ModelRun run;
  switch (which) {
    case Model::kGraph1d: run = model::run_graph_model(a, K, cfg); break;
    case Model::kHypergraph1d: run = model::run_hypergraph1d(a, K, cfg); break;
    case Model::kFineGrain2d: run = model::run_finegrain(a, K, cfg); break;
  }
  const comm::CommStats s = comm::analyze(a, run.decomp);
  const model::LoadStats loads = model::compute_loads(a, run.decomp);
  RunRecord rec;
  rec.scaledTotal = s.scaledTotal(a.num_rows());
  rec.scaledMax = s.scaledMax(a.num_rows());
  rec.avgMsgs = s.avgMessagesPerProc;
  rec.seconds = run.partitionSeconds;
  rec.pctImbalance = loads.percentImbalance;
  return rec;
}

/// Averages run_once over `seeds` seeds (the paper averages over 50).
/// Seeds are independent partitioner runs (each gets its own Rng from its
/// seed), so they sweep in parallel on the shared pool; the reduction stays
/// in seed order, making the averages identical to the serial sweep.
inline RunRecord run_avg(const sparse::Csr& a, Model which, idx_t K, idx_t seeds) {
  std::vector<RunRecord> recs(static_cast<std::size_t>(seeds));
  parallel_for(ThreadPool::global(), seeds, [&](long s) {
    recs[static_cast<std::size_t>(s)] =
        run_once(a, which, K, static_cast<std::uint64_t>(s) + 1);
  });
  RunRecord avg;
  for (const RunRecord& r : recs) {
    avg.scaledTotal += r.scaledTotal;
    avg.scaledMax += r.scaledMax;
    avg.avgMsgs += r.avgMsgs;
    avg.seconds += r.seconds;
    avg.pctImbalance += r.pctImbalance;
  }
  const double n = static_cast<double>(seeds);
  avg.scaledTotal /= n;
  avg.scaledMax /= n;
  avg.avgMsgs /= n;
  avg.seconds /= n;
  avg.pctImbalance /= n;
  return avg;
}

}  // namespace fghp::bench
