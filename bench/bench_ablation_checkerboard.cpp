// Ablation A3 — the 2D scheme spectrum. The paper's introduction dismisses
// checkerboard schemes for making "no explicit effort towards reducing
// communication volume"; this bench quantifies the whole ladder:
//   cartesian checkerboard  (contiguous blocks, volume-oblivious)
//   orthogonal (hypergraph) (grid structure, 1D-optimized stripes)
//   jagged                  (grid structure, per-stripe column splits)
//   fine-grain 2D           (the paper: fully general per-nonzero)
// reporting total volume, max per-proc volume and message counts.
//
// Knobs: FGHP_SCALE, FGHP_MATRICES, FGHP_K.
#include <cstdio>

#include "bench_common.hpp"
#include "models/checkerboard.hpp"
#include "models/jagged.hpp"
#include "models/orthogonal.hpp"

int main() {
  using namespace fghp;
  bench::BenchEnv env = bench::load_env();
  if (!env_str("FGHP_MATRICES")) {
    env.matrices = {"sherman3", "bcspwr10", "ken-11", "cq9", "finan512"};
  }
  if (!env_str("FGHP_K")) env.kValues = {16, 64};

  std::printf("Ablation A3 — 2D schemes: checkerboard vs orthogonal vs jagged vs fine-grain"
              " (scale=%.2f)\n\n", env.scale);
  Table t({"matrix", "K", "scheme", "tot", "max", "#msgs", "time[s]"});
  for (const auto& name : env.matrices) {
    const sparse::Csr a = sparse::make_matrix(name, 1, env.scale);
    for (idx_t K : env.kValues) {
      auto report = [&](const char* label, const model::Decomposition& d, double secs) {
        const comm::CommStats s = comm::analyze(a, d);
        t.add_row({name, Table::num(static_cast<long long>(K)), label,
                   Table::num(s.scaledTotal(a.num_rows())),
                   Table::num(s.scaledMax(a.num_rows())),
                   Table::num(s.avgMessagesPerProc), Table::num(secs)});
      };

      part::PartitionConfig cfg;
      WallTimer timer;
      const model::Decomposition cb = model::checkerboard_decompose_k(a, K);
      report("checkerboard", cb, timer.seconds());

      const model::ModelRun ort = model::run_orthogonal_k(a, K, cfg);
      report("orthogonal-hg", ort.decomp, ort.partitionSeconds);

      const model::ModelRun jag = model::run_jagged_k(a, K, cfg);
      report("jagged-hg", jag.decomp, jag.partitionSeconds);

      const bench::RunRecord fg = bench::run_once(a, bench::Model::kFineGrain2d, K, 1);
      t.add_row({name, Table::num(static_cast<long long>(K)), "finegrain-2d",
                 Table::num(fg.scaledTotal), Table::num(fg.scaledMax),
                 Table::num(fg.avgMsgs), Table::num(fg.seconds)});
      t.add_separator();
    }
  }
  t.print();
  std::printf(
      "\nThe ladder trades structure for volume: checkerboard bounds messages but\n"
      "ignores volume; orthogonal/jagged optimize within a grid; the fine-grain\n"
      "model optimizes volume with no structural constraint at all.\n");
  return 0;
}
