// Ablation A1 — coarsening policy. Partitions the fine-grain hypergraphs of
// a few suite matrices with each clustering algorithm (agglomerative HCC,
// heavy-connectivity matching, random matching, and no multilevel at all)
// and reports cutsize (= exact communication volume) and time. Shows why
// the multilevel scheme, and connectivity-aware clustering in particular,
// matters.
//
// Knobs: FGHP_SCALE, FGHP_MATRICES, FGHP_K (first value used).
#include <cstdio>

#include "bench_common.hpp"
#include "models/finegrain.hpp"
#include "partition/hg/partitioner.hpp"

int main() {
  using namespace fghp;
  bench::BenchEnv env = bench::load_env();
  if (!env_str("FGHP_MATRICES")) {
    env.matrices = {"sherman3", "ken-11", "vibrobox"};
  }
  // The no-multilevel baseline is quadratic-ish; default to reduced scale.
  if (!env_str("FGHP_SCALE")) env.scale = 0.3;
  const idx_t K = env.kValues.empty() ? 16 : env.kValues.front();

  struct Policy {
    const char* name;
    part::Coarsening value;
  };
  const Policy policies[] = {
      {"agglomerative", part::Coarsening::kAgglomerative},
      {"heavy-conn", part::Coarsening::kHeavyConnectivity},
      {"random-match", part::Coarsening::kRandomMatching},
      {"none(flat)", part::Coarsening::kNone},
  };

  std::printf("Ablation A1 — coarsening policy (fine-grain model, K=%d, scale=%.2f)\n\n",
              static_cast<int>(K), env.scale);
  Table t({"matrix", "policy", "cutsize(=volume)", "vs agglo", "time[s]", "imbal%"});
  for (const auto& name : env.matrices) {
    const sparse::Csr a = sparse::make_matrix(name, 1, env.scale);
    const model::FineGrainModel m = model::build_finegrain(a);
    double baseline = 0.0;
    for (const Policy& pol : policies) {
      part::PartitionConfig cfg;
      cfg.coarsening = pol.value;
      const part::HgResult r = part::partition_hypergraph(m.h, K, cfg);
      if (pol.value == part::Coarsening::kAgglomerative)
        baseline = static_cast<double>(r.cutsize);
      const double rel = baseline > 0.0 ? static_cast<double>(r.cutsize) / baseline : 0.0;
      t.add_row({name, pol.name, Table::num(static_cast<long long>(r.cutsize)),
                 Table::num(rel, 2) + "x", Table::num(r.seconds),
                 Table::num(100.0 * r.imbalance, 1)});
    }
    t.add_separator();
  }
  t.print();
  return 0;
}
