// SpGEMM through the workload-agnostic execution core: the second workload's
// seed perf datapoint.
//
// For each suite matrix, the fine-grain task graph of C = A * A is built,
// partitioned with the fine-grain SpGEMM hypergraph model, and executed as a
// repeated distributed multiply through the compiled generic engine (the
// iterative-kernel view: triangle counting, Markov clustering and AMG setup
// all run the same product many times). Reported per (matrix, K):
//
//   * cutsize and the independently-measured communication volume — equal by
//     the paper's theorem, asserted here (exit 1 on any mismatch),
//   * median serial and threaded per-multiply wall time over FGHP_REPS
//     samples (2 flops per scalar task -> GFLOP/s),
//   * max |C - C_ref| against the dense-accumulator reference multiply.
//
// Flags: --json <path> (the perf-trajectory artifact BENCH_spgemm.json is
// seeded from this). Knobs: FGHP_SCALE, FGHP_MATRICES, FGHP_K, FGHP_REPS.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "spgemm/finegrain.hpp"
#include "spgemm/plan.hpp"
#include "spgemm/tasks.hpp"
#include "spgemm/volume.hpp"
#include "util/timer.hpp"

namespace {

using namespace fghp;

/// Median per-iteration milliseconds after warmup (same batching scheme as
/// bench_spmv: each sample runs enough iterations to outlast clock jitter).
template <typename Fn>
double time_iteration_ms(int reps, Fn&& iterate) {
  iterate();
  WallTimer est;
  iterate();
  const double estMs = est.millis();
  const int inner = estMs >= 0.5 ? 1 : static_cast<int>(0.5 / (estMs > 1e-6 ? estMs : 1e-6)) + 1;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    for (int i = 0; i < inner; ++i) iterate();
    samples.push_back(t.millis() / inner);
  }
  return bench::median(std::move(samples));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fghp;
  const ArgParser args(argc, argv);
  bench::Observability obs(args, "bench_spgemm");
  bench::BenchEnv env = bench::load_env();
  // A*A squares the nonzero count, so the default set stays on the suite's
  // small end; FGHP_MATRICES overrides.
  if (!env_str("FGHP_MATRICES")) env.matrices = {"sherman3", "ken-11"};
  const auto reps = static_cast<int>(env_long("FGHP_REPS", 20));

  bench::JsonWriter json;
  json.scalar("bench", std::string("spgemm"));
  json.scalar("scale", env.scale);
  json.scalar("reps", static_cast<long long>(reps));

  std::printf(
      "Fine-grain SpGEMM (C = A*A) through the generic execution core\n"
      "(scale=%.2f, %d repetitions; cutsize == measured volume is asserted)\n\n",
      env.scale, reps);

  Table table({"matrix", "K", "tasks", "nnz(C)", "volume[w]", "partition[s]",
               "serial[ms]", "mt[ms]", "GFLOP/s", "max err"});
  bool ok = true;
  for (const auto& name : env.matrices) {
    const sparse::Csr a = sparse::make_matrix(name, 1, env.scale);
    const spgemm::TaskGraph t = spgemm::build_tasks(a, a);
    const std::vector<double> cRef = spgemm::reference_multiply(a, a, t);

    for (idx_t k : env.kValues) {
      part::PartitionConfig cfg;
      cfg.seed = 42;
      const spgemm::SpgemmRun run = spgemm::run_spgemm_finegrain(t, k, cfg);
      const spgemm::SpgemmCommStats s = spgemm::analyze(t, run.decomp);
      if (run.cutsize != s.totalWords) {
        std::fprintf(stderr, "%s K=%d: cutsize %lld != volume %lld\n", name.c_str(),
                     static_cast<int>(k), static_cast<long long>(run.cutsize),
                     static_cast<long long>(s.totalWords));
        ok = false;
      }

      spgemm::SpgemmSession session(t, run.decomp);
      std::vector<double> c;
      const double serialMs =
          time_iteration_ms(reps, [&] { session.run(a.values(), a.values(), c); });
      const double mtMs =
          time_iteration_ms(reps, [&] { session.run_mt(a.values(), a.values(), c); });

      double maxErr = 0.0;
      for (std::size_t g = 0; g < c.size(); ++g)
        maxErr = std::max(maxErr, std::abs(c[g] - cRef[g]));
      const double gflops =
          2.0 * static_cast<double>(t.num_tasks()) / (std::min(serialMs, mtMs) * 1e6);

      table.add_row({name, Table::num(static_cast<long long>(k)),
                     Table::num(static_cast<long long>(t.num_tasks())),
                     Table::num(static_cast<long long>(t.num_c())),
                     Table::num(static_cast<long long>(s.totalWords)),
                     Table::num(run.partitionSeconds, 3), Table::num(serialMs, 4),
                     Table::num(mtMs, 4), Table::num(gflops, 3),
                     Table::num(maxErr, 10)});
      json.add("runs")
          .field("matrix", name)
          .field("k", k)
          .field("tasks", t.num_tasks())
          .field("nnz_c", t.num_c())
          .field("cutsize", static_cast<long long>(run.cutsize))
          .field("volume_words", static_cast<long long>(s.totalWords))
          .field("partition_s", run.partitionSeconds)
          .field("serial_ms", serialMs)
          .field("mt_ms", mtMs)
          .field("gflops", gflops)
          .field("max_err", maxErr);
      if (maxErr > 1e-8 || !(gflops > 0.0)) ok = false;
    }
  }
  table.print();

  if (const auto out = args.flag("json")) {
    if (!json.write(*out)) return 1;
    std::printf("\nJSON written to %s\n", out->c_str());
  }
  if (obs.finish() != 0) ok = false;
  return ok ? 0 : 1;
}
