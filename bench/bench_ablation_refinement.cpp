// Ablation A2 — refinement. Sweeps the FM pass budget (0/1/3 passes), the
// greedy direct K-way polish (on/off), and the initial-partitioning
// algorithm, on the fine-grain hypergraphs of a few suite matrices.
//
// Knobs: FGHP_SCALE, FGHP_MATRICES, FGHP_K (first value used).
#include <cstdio>

#include "bench_common.hpp"
#include "models/finegrain.hpp"
#include "partition/hg/partitioner.hpp"

int main() {
  using namespace fghp;
  bench::BenchEnv env = bench::load_env();
  if (!env_str("FGHP_MATRICES")) {
    env.matrices = {"sherman3", "ken-11", "vibrobox"};
  }
  if (!env_str("FGHP_SCALE")) env.scale = 0.5;  // six variants per matrix
  const idx_t K = env.kValues.empty() ? 16 : env.kValues.front();

  struct Variant {
    const char* name;
    idx_t fmPasses;
    bool kway;
    part::InitialAlgo initial;
  };
  const Variant variants[] = {
      {"full (3 FM + kway)", 3, true, part::InitialAlgo::kMixed},
      {"no kway polish", 3, false, part::InitialAlgo::kMixed},
      {"1 FM pass", 1, true, part::InitialAlgo::kMixed},
      {"no FM at all", 0, false, part::InitialAlgo::kMixed},
      {"random initial only", 3, true, part::InitialAlgo::kRandom},
      {"GHG initial only", 3, true, part::InitialAlgo::kGreedyGrowing},
  };

  std::printf("Ablation A2 — refinement & initial partitioning (fine-grain, K=%d, scale=%.2f)\n\n",
              static_cast<int>(K), env.scale);
  Table t({"matrix", "variant", "cutsize(=volume)", "vs full", "time[s]"});
  for (const auto& name : env.matrices) {
    const sparse::Csr a = sparse::make_matrix(name, 1, env.scale);
    const model::FineGrainModel m = model::build_finegrain(a);
    double baseline = 0.0;
    for (const Variant& v : variants) {
      part::PartitionConfig cfg;
      cfg.maxFmPasses = v.fmPasses;
      cfg.kwayRefine = v.kway;
      cfg.initial = v.initial;
      const part::HgResult r = part::partition_hypergraph(m.h, K, cfg);
      if (baseline == 0.0) baseline = static_cast<double>(r.cutsize);
      t.add_row({name, v.name, Table::num(static_cast<long long>(r.cutsize)),
                 Table::num(static_cast<double>(r.cutsize) / baseline, 2) + "x",
                 Table::num(r.seconds)});
    }
    t.add_separator();
  }
  t.print();
  return 0;
}
