// Partitioner Pareto front: wall-time vs lambda-1 cutsize for every
// fine-grain partitioning method (DESIGN.md §15) across the full suite.
//
// For each (matrix, K, method) the fine-grain model is decomposed once and
// the partition wall-time, connectivity cutsize, imbalance, and recovery /
// degradation counters are reported. The committed artifact BENCH_pareto.json
// is regenerated from this bench; README's "choosing a partitioner" table
// cites it.
//
// Two extra sections:
//   * headline — the acceptance datapoint: on the largest suite matrix at
//     K=16, geometric speedup over multilevel and the cut ratio geometric /
//     multilevel (the fast path trades cut quality for time; the headline
//     quantifies the trade where it matters most).
//   * spgemm_scale — the RB engine at scale on the second workload: the
//     fine-grain SpGEMM hypergraph of C = A*A for a ~1k-row operand (40k+
//     task vertices), multilevel vs geometric. Geometric embeds task
//     s = (a_ik, b_kj) at the C-entry coordinate (cRow[taskC[s]],
//     cCol[taskC[s]]) — same vertex ids as the hypergraph — and its cut is
//     measured on the REAL SpGEMM hypergraph, not the point proxy.
//
// The bench exits 1 if any run reports a non-finite or non-positive time or
// a negative cutsize (a zero-filled row must fail, not look plausible).
// Knobs: FGHP_SCALE, FGHP_MATRICES, FGHP_K (default here: 4,16,64),
// FGHP_SPGEMM_SCALE (operand scale for the spgemm section, default 0.15).
// Flags: --json <path>, --skip-spgemm.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "hypergraph/metrics.hpp"
#include "partition/geo/geometric.hpp"
#include "partition/hg/partitioner.hpp"
#include "spgemm/finegrain.hpp"
#include "spgemm/tasks.hpp"

namespace {

using namespace fghp;

const std::vector<part::PartitionMethod> kMethods = {
    part::PartitionMethod::kMultilevel,
    part::PartitionMethod::kGeometric,
    part::PartitionMethod::kGeometricFm,
    part::PartitionMethod::kStreaming,
};

struct ParetoPoint {
  weight_t cutsize = -1;
  double seconds = 0.0;
  double imbalancePct = 0.0;
  int recoveries = 0;
  int degraded = 0;
};

bool sane(const ParetoPoint& p) {
  return p.cutsize >= 0 && std::isfinite(p.seconds) && p.seconds > 0.0 &&
         std::isfinite(p.imbalancePct);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fghp;
  const ArgParser args(argc, argv);
  bench::Observability obs(args, "bench_pareto");
  bench::BenchEnv env = bench::load_env();
  if (!env_str("FGHP_K")) env.kValues = {4, 16, 64};
  const double spgemmScale = [&] {
    if (const auto s = env_str("FGHP_SPGEMM_SCALE")) return std::stod(*s);
    return 0.15;
  }();

  bench::JsonWriter json;
  json.scalar("bench", std::string("pareto"));
  json.scalar("scale", env.scale);

  std::printf(
      "Partitioner Pareto front: wall-time vs lambda-1 cutsize, fine-grain model\n"
      "(scale=%.2f; methods: multilevel, geometric, geometric-fm, streaming)\n\n",
      env.scale);

  Table table({"matrix", "nnz", "K", "method", "cutsize", "time[s]", "imb%", "rec", "deg"});
  bool ok = true;

  // Pareto sweep over the suite. The headline compares geometric against
  // multilevel on the largest (by nnz) matrix that ran at K=16.
  std::string largestName;
  idx_t largestNnz = -1;
  ParetoPoint headlineMl, headlineGeo;
  for (const auto& name : env.matrices) {
    const sparse::Csr a = sparse::make_matrix(name, 1, env.scale);
    const bool isLargest = a.nnz() > largestNnz;
    if (isLargest) {
      largestNnz = a.nnz();
      largestName = name;
    }
    for (idx_t k : env.kValues) {
      for (part::PartitionMethod method : kMethods) {
        part::PartitionConfig cfg;
        cfg.seed = 1;
        cfg.method = method;
        const model::ModelRun run = model::run_finegrain(a, k, cfg);
        ParetoPoint p;
        p.cutsize = run.objective;
        p.seconds = run.partitionSeconds;
        p.imbalancePct = 100.0 * run.imbalance;
        p.recoveries = run.numRecoveries;
        p.degraded = run.numDegraded;
        if (!sane(p)) {
          std::fprintf(stderr, "%s K=%d %s: insane datapoint (cut %lld, %.6f s)\n",
                       name.c_str(), static_cast<int>(k), part::method_name(method),
                       static_cast<long long>(p.cutsize), p.seconds);
          ok = false;
        }
        if (k == 16 && isLargest) {
          if (method == part::PartitionMethod::kMultilevel) headlineMl = p;
          if (method == part::PartitionMethod::kGeometric) headlineGeo = p;
        }
        table.add_row({name, Table::num(static_cast<long long>(a.nnz())),
                       Table::num(static_cast<long long>(k)), part::method_name(method),
                       Table::num(static_cast<long long>(p.cutsize)),
                       Table::num(p.seconds, 4), Table::num(p.imbalancePct, 2),
                       Table::num(static_cast<long long>(p.recoveries)),
                       Table::num(static_cast<long long>(p.degraded))});
        json.add("runs")
            .field("matrix", name)
            .field("n", a.num_rows())
            .field("nnz", a.nnz())
            .field("k", k)
            .field("method", std::string(part::method_name(method)))
            .field("cutsize", static_cast<long long>(p.cutsize))
            .field("seconds", p.seconds)
            .field("imbalance_pct", p.imbalancePct)
            .field("recoveries", static_cast<long long>(p.recoveries))
            .field("degraded", static_cast<long long>(p.degraded));
      }
    }
  }
  table.print();

  const bool haveHeadline = headlineMl.cutsize >= 0 && headlineGeo.cutsize >= 0;
  if (haveHeadline) {
    const double speedup = headlineMl.seconds / headlineGeo.seconds;
    const double cutRatio = headlineGeo.cutsize > 0 && headlineMl.cutsize > 0
                                ? static_cast<double>(headlineGeo.cutsize) /
                                      static_cast<double>(headlineMl.cutsize)
                                : 1.0;
    std::printf("\nheadline (%s, K=16): geometric %.1fx faster than multilevel, "
                "cut ratio %.2fx\n", largestName.c_str(), speedup, cutRatio);
    json.scalar("headline_matrix", largestName);
    json.scalar("headline_speedup", speedup);
    json.scalar("headline_cut_ratio", cutRatio);
  }

  // SpGEMM scale section: the RB engine on a 40k+-vertex second-workload
  // hypergraph. Both methods are measured on the same hypergraph; geometric
  // partitions the C-coordinate point cloud and lifts the assignment (task
  // ids are shared), so its cutsize below is the true lambda-1 on m.h.
  if (!args.has_switch("skip-spgemm")) {
    const std::string spName = "nl";
    const sparse::Csr a = sparse::make_matrix(spName, 1, spgemmScale);
    const spgemm::TaskGraph t = spgemm::build_tasks(a, a);
    const spgemm::SpgemmModel m = spgemm::build_spgemm_finegrain(t);
    const idx_t k = 16;
    std::printf("\nSpGEMM scale (C = A*A, %s scale %.2f): %d rows -> %lld task vertices\n",
                spName.c_str(), spgemmScale, static_cast<int>(a.num_rows()),
                static_cast<long long>(t.num_tasks()));

    part::PartitionConfig cfg;
    cfg.seed = 1;
    const part::HgResult ml = part::partition_hypergraph(m.h, k, cfg);
    ParetoPoint pMl;
    pMl.cutsize = ml.cutsize;
    pMl.seconds = ml.seconds;
    pMl.imbalancePct = 100.0 * ml.imbalance;

    part::geo::GeoPoints pts;
    pts.numRows = t.aRows;
    pts.numCols = t.bCols;
    pts.totalWeight = t.num_tasks();
    for (idx_t s = 0; s < t.num_tasks(); ++s) {
      const idx_t g = t.taskC[static_cast<std::size_t>(s)];
      pts.row.push_back(t.cRow[static_cast<std::size_t>(g)]);
      pts.col.push_back(t.cCol[static_cast<std::size_t>(g)]);
      pts.wgt.push_back(1);
    }
    const part::geo::GeoResult geo = part::geo::partition_points_geometric(pts, k, cfg);
    hg::Partition lifted(m.h, k, std::vector<idx_t>(geo.partition.assignment()));
    ParetoPoint pGeo;
    pGeo.cutsize = hg::cutsize(m.h, lifted, hg::CutMetric::kConnectivity);
    pGeo.seconds = geo.seconds;
    pGeo.imbalancePct = 100.0 * hg::imbalance(m.h, lifted);

    for (const auto& [method, p] : {std::pair<const char*, ParetoPoint>{"multilevel", pMl},
                                    {"geometric", pGeo}}) {
      if (!sane(p)) {
        std::fprintf(stderr, "spgemm %s: insane datapoint\n", method);
        ok = false;
      }
      std::printf("  %-11s cut %-10lld time %.4f s  imb %.2f%%\n", method,
                  static_cast<long long>(p.cutsize), p.seconds, p.imbalancePct);
      json.add("spgemm_scale")
          .field("matrix", spName)
          .field("rows", a.num_rows())
          .field("tasks", t.num_tasks())
          .field("k", k)
          .field("method", std::string(method))
          .field("cutsize", static_cast<long long>(p.cutsize))
          .field("seconds", p.seconds)
          .field("imbalance_pct", p.imbalancePct);
    }
  }

  if (const auto out = args.flag("json")) {
    if (!json.write(*out)) return 1;
    std::printf("\nJSON written to %s\n", out->c_str());
  }
  if (obs.finish() != 0) ok = false;
  return ok ? 0 : 1;
}
