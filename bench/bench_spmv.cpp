// Ablation A5 — does lower communication volume buy SpMV time? For each
// model decomposition this bench (a) runs the multi-threaded BSP executor
// and times real repeated SpMVs, and (b) evaluates the alpha-beta-gamma
// cost model, which reflects a classic distributed-memory machine where
// the paper's volumes dominate.
//
// Knobs: FGHP_SCALE, FGHP_MATRICES, FGHP_K (first value used), FGHP_REPS.
#include <cstdio>

#include "bench_common.hpp"
#include "models/checkerboard.hpp"
#include "spmv/costmodel.hpp"
#include "spmv/executor_mt.hpp"
#include "spmv/plan.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main() {
  using namespace fghp;
  bench::BenchEnv env = bench::load_env();
  if (!env_str("FGHP_MATRICES")) env.matrices = {"sherman3", "ken-11", "cq9"};
  const idx_t K = env.kValues.empty() ? 16 : env.kValues.front();
  const auto reps = static_cast<int>(env_long("FGHP_REPS", 20));

  std::printf(
      "Ablation A5 — simulated SpMV by model (K=%d, scale=%.2f, %d repetitions)\n"
      "'est par' is the alpha-beta-gamma BSP estimate; 'mt wall' is measured wall time\n"
      "of the threaded executor (shared-memory, so communication is cheap here —\n"
      "the cost model is what reflects the paper's distributed setting).\n\n",
      static_cast<int>(K), env.scale, reps);

  Table t({"matrix", "model", "volume[w]", "est par[ms]", "est speedup", "mt wall[ms]"});
  for (const auto& name : env.matrices) {
    const sparse::Csr a = sparse::make_matrix(name, 1, env.scale);
    Rng rng(7);
    std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
    for (auto& v : x) v = rng.uniform01();

    auto eval = [&](const char* label, const model::Decomposition& d) {
      const comm::CommStats s = comm::analyze(a, d);
      const spmv::CostEstimate est = spmv::estimate_cost(a, d, s);
      const spmv::SpmvPlan plan = spmv::build_plan(a, d);
      WallTimer timer;
      std::vector<double> y;
      for (int r = 0; r < reps; ++r) y = spmv::execute_mt(plan, x);
      const double wall = timer.millis() / reps;
      t.add_row({name, label, Table::num(static_cast<long long>(s.totalWords)),
                 Table::num(est.totalSeconds * 1e3, 3), Table::num(est.speedup, 1),
                 Table::num(wall, 2)});
    };

    part::PartitionConfig cfg;
    eval("graph-1d", model::run_graph_model(a, K, cfg).decomp);
    eval("hyper-1d", model::run_hypergraph1d(a, K, cfg).decomp);
    eval("finegrain-2d", model::run_finegrain(a, K, cfg).decomp);
    eval("checkerboard", model::checkerboard_decompose_k(a, K));
    t.add_separator();
  }
  t.print();
  return 0;
}
