// Ablation A5 — does lower communication volume buy SpMV time? — plus the
// per-iteration throughput of the compiled execution image.
//
// Section (a): for each model decomposition, run the threaded BSP executor
// and evaluate the alpha-beta-gamma cost model (a classic distributed-memory
// machine where the paper's volumes dominate).
//
// Section (b): the iterative-solver view. For each matrix and K, a finegrain
// decomposition is lowered once (spmv::compile_plan) and the repeated
// y = A x iteration is timed three ways: the legacy plan-walking executor
// (global coordinates, hash lookup per nonzero), the compiled serial
// session and the compiled threaded session. Medians over FGHP_REPS
// iterations after warmup. GFLOP/s counts 2 nnz flops per iteration;
// effective GB/s models the iteration's memory traffic as 12 B per nonzero
// (value + local column index) + 8 B per scratch/vector element touched
// (x gather, partials, y) + 16 B per communicated word (flat-buffer write
// and read).
//
// Section (c): the roofline view. A measured STREAM-triad baseline gives
// the machine's practical bandwidth ceiling; large generated matrices
// (checkerboard-decomposed — setup cost, not execution, is what the
// multilevel partitioner would add) are then run through the compiled
// session twice, with and without the second-level cache reordering, and
// each run reports achieved GB/s and its fraction of the STREAM ceiling.
// `gbps_speedup` is the reorder-on / reorder-off bandwidth ratio — the
// quantity the perf-smoke gate in scripts/check.sh tracks.
//
// Flags: --json <path> writes all sections machine-readably (the perf-
// trajectory artifact BENCH_spmv.json is seeded from this).
// Knobs: FGHP_SCALE, FGHP_MATRICES, FGHP_K, FGHP_REPS, FGHP_STREAM_MB.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "models/checkerboard.hpp"
#include "sparse/generators.hpp"
#include "sparse/reorder.hpp"
#include "spmv/compiled.hpp"
#include "spmv/costmodel.hpp"
#include "spmv/executor.hpp"
#include "spmv/plan.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace fghp;

std::vector<double> random_x(idx_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform01();
  return x;
}

/// Median per-iteration milliseconds of `iterate`, over `reps` samples after
/// two warmup calls. Each sample batches enough iterations to outlast clock
/// jitter on small matrices.
template <typename Fn>
double time_iteration_ms(int reps, Fn&& iterate) {
  iterate();
  WallTimer est;
  iterate();
  const double estMs = est.millis();
  const int inner = estMs >= 0.5 ? 1 : static_cast<int>(0.5 / (estMs > 1e-6 ? estMs : 1e-6)) + 1;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    for (int i = 0; i < inner; ++i) iterate();
    samples.push_back(t.millis() / inner);
  }
  return bench::median(std::move(samples));
}

/// Measured last-level-cache read misses per nonzero over `reps` serial
/// iterations, or negative when hardware counters are disabled (--perf not
/// given) or unavailable — the roofline section then says so and moves on.
template <typename Fn>
double llc_misses_per_nnz(int reps, idx_t nnz, Fn&& iterate) {
  const perf::Sample begin = perf::read_thread();
  if (!begin.valid) return -1.0;
  for (int r = 0; r < reps; ++r) iterate();
  const perf::Sample d = perf::delta(begin, perf::read_thread());
  if (!d.valid) return -1.0;
  return static_cast<double>(d.llcMisses) / reps / static_cast<double>(nnz);
}

/// Roofline workloads: large generated matrices where the iteration is
/// memory-bound. stencil2d arrives in its natural (near-optimal) order and
/// checks the reorder never regresses a good ordering; the shuffled stencil
/// and the geometric matrix arrive in orders with no locality at all — the
/// state a real matrix is in after partitioning scatters its rows — and the
/// cache reorder has to win the locality back; skewed-lp is the paper's
/// LP-matrix class.
sparse::Csr roofline_matrix(const std::string& name, double scale) {
  if (name == "stencil2d" || name == "stencil2d-shuffled") {
    // ~90M nnz at scale 1/2 — the x vector alone (144 MB) overflows even a
    // large server L3, so the baseline's scattered accesses go to DRAM.
    const auto side = std::max<idx_t>(static_cast<idx_t>(6000.0 * std::sqrt(scale)), 64);
    sparse::Csr a = sparse::stencil2d(side, side);
    if (name == "stencil2d") return a;
    Rng rng(99);
    return sparse::permute_symmetric(a, rng.permutation(a.num_rows()));
  }
  if (name == "geometric") {
    sparse::GeometricParams g;
    g.n = std::max<idx_t>(static_cast<idx_t>(16000000.0 * scale), 4096);
    g.avgOffDiagDeg = 8.0;
    return sparse::geometric_matrix(g, 5);
  }
  sparse::SkewedParams p;
  p.n = std::max<idx_t>(static_cast<idx_t>(2000000.0 * scale), 4096);
  p.targetNnz = p.n * 10;
  p.numBlocks = 16;
  p.couplingWidth = 64;
  return sparse::skewed_square(p, 17);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fghp;
  const ArgParser args(argc, argv);
  bench::Observability obs(args, "bench_spmv");
  bench::BenchEnv env = bench::load_env();
  if (!env_str("FGHP_MATRICES")) env.matrices = {"sherman3", "ken-11", "cq9"};
  const auto reps = static_cast<int>(env_long("FGHP_REPS", 20));
  const idx_t K0 = env.kValues.empty() ? 16 : env.kValues.front();

  bench::JsonWriter json;
  json.scalar("bench", std::string("spmv"));
  json.scalar("scale", env.scale);
  json.scalar("reps", static_cast<long long>(reps));

  std::printf(
      "Ablation A5 — simulated SpMV by model (K=%d, scale=%.2f, %d repetitions)\n"
      "'est par' is the alpha-beta-gamma BSP estimate; 'mt wall' is measured wall time\n"
      "of the threaded compiled session (shared-memory, so communication is cheap here —\n"
      "the cost model is what reflects the paper's distributed setting).\n\n",
      static_cast<int>(K0), env.scale, reps);

  Table t({"matrix", "model", "volume[w]", "est par[ms]", "est speedup", "mt wall[ms]"});
  for (const auto& name : env.matrices) {
    const sparse::Csr a = sparse::make_matrix(name, 1, env.scale);
    const std::vector<double> x = random_x(a.num_cols(), 7);

    auto eval = [&](const char* label, const model::Decomposition& d) {
      const comm::CommStats s = comm::analyze(a, d);
      const spmv::CostEstimate est = spmv::estimate_cost(a, d, s);
      spmv::ExecSession session(spmv::build_plan(a, d));
      std::vector<double> y;
      WallTimer timer;
      for (int r = 0; r < reps; ++r) session.run_mt(x, y);
      const double wall = timer.millis() / reps;
      t.add_row({name, label, Table::num(static_cast<long long>(s.totalWords)),
                 Table::num(est.totalSeconds * 1e3, 3), Table::num(est.speedup, 1),
                 Table::num(wall, 2)});
      json.add("models")
          .field("matrix", name)
          .field("model", std::string(label))
          .field("k", K0)
          .field("volume_words", static_cast<long long>(s.totalWords))
          .field("est_par_ms", est.totalSeconds * 1e3)
          .field("mt_wall_ms", wall);
    };

    part::PartitionConfig cfg;
    eval("graph-1d", model::run_graph_model(a, K0, cfg).decomp);
    eval("hyper-1d", model::run_hypergraph1d(a, K0, cfg).decomp);
    eval("finegrain-2d", model::run_finegrain(a, K0, cfg).decomp);
    eval("checkerboard", model::checkerboard_decompose_k(a, K0));
    t.add_separator();
  }
  t.print();

  std::printf(
      "\nPer-iteration y = A x throughput, finegrain decomposition (median of %d)\n"
      "'plan walk' is the legacy global-coordinate executor; 'compiled' is the\n"
      "local-indexed ExecSession (serial / threaded).\n\n",
      reps);

  Table tp({"matrix", "K", "nnz", "words", "plan walk[ms]", "compiled[ms]", "mt[ms]",
            "speedup", "GFLOP/s", "GB/s"});
  for (const auto& name : env.matrices) {
    const sparse::Csr a = sparse::make_matrix(name, 1, env.scale);
    const std::vector<double> x = random_x(a.num_cols(), 11);
    for (idx_t K : env.kValues) {
      part::PartitionConfig cfg;
      const model::ModelRun mrun = model::run_finegrain(a, K, cfg);
      const spmv::SpmvPlan plan = spmv::build_plan(a, mrun.decomp);
      const weight_t words = plan.total_words();

      std::vector<double> sink;
      const double planMs = time_iteration_ms(
          reps, [&] { sink = spmv::execute_plan_walk(plan, x); });

      spmv::ExecSession session(plan);
      std::vector<double> y;
      const double compiledMs = time_iteration_ms(reps, [&] { session.run(x, y); });
      const double mtMs = time_iteration_ms(reps, [&] { session.run_mt(x, y); });

      const auto& c = session.compiled();
      const double flops = 2.0 * static_cast<double>(a.nnz());
      const double bytes =
          12.0 * static_cast<double>(a.nnz()) +
          8.0 * static_cast<double>(c.in[0].off.back() + c.out.off.back() + c.out.size) +
          16.0 * static_cast<double>(words);
      const double gflops = flops / (compiledMs * 1e6);
      const double gbps = bytes / (compiledMs * 1e6);
      const double speedup = compiledMs > 0.0 ? planMs / compiledMs : 0.0;

      tp.add_row({name, Table::num(static_cast<long long>(K)),
                  Table::num(static_cast<long long>(a.nnz())),
                  Table::num(static_cast<long long>(words)), Table::num(planMs, 3),
                  Table::num(compiledMs, 3), Table::num(mtMs, 3),
                  Table::num(speedup, 1), Table::num(gflops, 2), Table::num(gbps, 2)});
      json.add("runs")
          .field("matrix", name)
          .field("k", K)
          .field("nnz", static_cast<long long>(a.nnz()))
          .field("words", static_cast<long long>(words))
          .field("plan_walk_ms", planMs)
          .field("compiled_ms", compiledMs)
          .field("compiled_mt_ms", mtMs)
          .field("speedup", speedup)
          .field("compiled_gflops", gflops)
          .field("compiled_gbps", gbps);
    }
    tp.add_separator();
  }
  tp.print();

  // --- section (c): roofline ------------------------------------------------
  const auto streamMb = env_long("FGHP_STREAM_MB", 32);
  const std::size_t streamDoubles =
      static_cast<std::size_t>(streamMb) * 1024 * 1024 / sizeof(double);
  const double streamGbps = bench::stream_triad_gbps(streamDoubles, 10);
  json.scalar("stream_gbps", streamGbps);

  std::printf(
      "\nRoofline — compiled serial session vs STREAM triad (%lld MB/array: %.2f GB/s)\n"
      "Large generated matrices, checkerboard K=16. 'no-reorder' disables the\n"
      "second-level cache reordering (CompileOptions::cacheReorder = false);\n"
      "outputs of the two images are verified bit-identical before timing.\n\n",
      static_cast<long long>(streamMb), streamGbps);

  const int rooflineReps = std::min(reps, 5);
  // Per-matrix K lists. stencil2d arrives well ordered (the reorder must
  // back off); the shuffled stencil at K=1 is the DRAM-bound headline while
  // at K=16 the checkerboard blocks of a scrambled matrix are sub-
  // percolation fragments with nothing to recover; geometric is the classic
  // RCM case; skewed-lp is the paper's LP class (cache-resident here).
  struct RooflineCase { const char* matrix; std::vector<idx_t> ks; };
  const std::vector<RooflineCase> cases = {
      {"stencil2d", {16}},
      {"stencil2d-shuffled", {1, 16}},
      {"geometric", {1}},
      {"skewed-lp", {16}},
  };
  Table tr({"matrix", "rows", "nnz", "no-reorder[ms]", "reorder[ms]", "mt[ms]",
            "GB/s base", "GB/s reord", "speedup", "% of STREAM"});
  std::vector<std::string> llcLines;
  for (const RooflineCase& rc : cases) {
    const char* mname = rc.matrix;
    const sparse::Csr a = roofline_matrix(mname, env.scale);
    for (idx_t kRoof : rc.ks) {
    const model::Decomposition d = model::checkerboard_decompose_k(a, kRoof);
    const spmv::SpmvPlan plan = spmv::build_plan(a, d);
    spmv::validate_plan_or_throw(plan);
    const std::vector<double> x = random_x(a.num_cols(), 23);

    spmv::CompileOptions noReorder;
    noReorder.cacheReorder = false;
    spmv::ExecSession reordered(plan);
    spmv::ExecSession baseline(plan, noReorder);
    std::vector<double> y, yBase;
    reordered.run(x, y);
    baseline.run(x, yBase);
    if (y != yBase) {
      std::fprintf(stderr, "roofline: %s reordered image diverged from baseline\n", mname);
      return 1;
    }

    const double baseMs = time_iteration_ms(rooflineReps, [&] { baseline.run(x, yBase); });
    const double reordMs = time_iteration_ms(rooflineReps, [&] { reordered.run(x, y); });
    const double mtMs = time_iteration_ms(rooflineReps, [&] { reordered.run_mt(x, y); });

    // The direct evidence for the cache reorder that the GB/s proxy only
    // implies: measured LLC read misses per nonzero, both images.
    const double missBase =
        llc_misses_per_nnz(rooflineReps, a.nnz(), [&] { baseline.run(x, yBase); });
    const double missReord =
        llc_misses_per_nnz(rooflineReps, a.nnz(), [&] { reordered.run(x, y); });
    if (missBase >= 0.0 && missReord >= 0.0) {
      llcLines.push_back("  " + std::string(mname) + "/K" + std::to_string(kRoof) +
                         ": " + Table::num(missBase, 4) + " no-reorder -> " +
                         Table::num(missReord, 4) + " reordered");
    }

    const auto& c = reordered.compiled();
    const double bytes =
        12.0 * static_cast<double>(a.nnz()) +
        8.0 * static_cast<double>(c.in[0].off.back() + c.out.off.back() + c.out.size) +
        16.0 * static_cast<double>(plan.total_words());
    const double gbpsBase = bytes / (baseMs * 1e6);
    const double gbps = bytes / (reordMs * 1e6);
    const double gflops = 2.0 * static_cast<double>(a.nnz()) / (reordMs * 1e6);
    const double speedup = reordMs > 0.0 ? baseMs / reordMs : 0.0;

    tr.add_row({std::string(mname) + "/K" + std::to_string(kRoof),
                Table::num(static_cast<long long>(a.num_rows())),
                Table::num(static_cast<long long>(a.nnz())), Table::num(baseMs, 3),
                Table::num(reordMs, 3), Table::num(mtMs, 3), Table::num(gbpsBase, 2),
                Table::num(gbps, 2), Table::num(speedup, 2),
                Table::num(100.0 * gbps / streamGbps, 1)});
    auto& rec = json.add("roofline")
        .field("matrix", std::string(mname))
        .field("k", kRoof)
        .field("rows", static_cast<long long>(a.num_rows()))
        .field("nnz", static_cast<long long>(a.nnz()))
        .field("noreorder_ms", baseMs)
        .field("compiled_ms", reordMs)
        .field("compiled_mt_ms", mtMs)
        .field("gflops", gflops)
        .field("gbps_noreorder", gbpsBase)
        .field("gbps", gbps)
        .field("gbps_speedup", speedup)
        .field("stream_fraction", gbps / streamGbps)
        .field("reordered_procs", c.reorderedProcs);
    if (missBase >= 0.0 && missReord >= 0.0)
      rec.field("llc_miss_per_nnz_noreorder", missBase).field("llc_miss_per_nnz", missReord);
    }
    tr.add_separator();
  }
  tr.print();
  if (!llcLines.empty()) {
    std::printf("\nMeasured LLC read misses per nonzero (hardware counters):\n");
    for (const std::string& line : llcLines) std::printf("%s\n", line.c_str());
  } else {
    std::printf("\n(measured LLC-miss datapoints skipped: hardware counters %s)\n",
                !perf::compiled_in()        ? "compiled out"
                : !perf::enabled()          ? "not enabled — pass --perf"
                                            : "unavailable on this kernel/container");
  }

  int rc = 0;
  if (const auto path = args.flag("json"); path && !json.write(*path)) rc = 1;
  if (obs.finish() != 0) rc = 1;
  return rc;
}
