// Ablation A4 — partitioner runtime scaling: time versus matrix size (via
// the suite's scale knob) and versus K, for all three models, plus thread
// scaling of the task-parallel recursive bisection with the per-phase
// wall-clock breakdown. The paper's §4 expectation: the fine-grain model
// costs ~2.4x the 1D hypergraph model and ~7.3x the graph model, because it
// has Z vertices and 2x the pins/nets.
//
// Knobs: FGHP_MATRICES (first entry used; default ken-11), FGHP_K,
// FGHP_SCALE, FGHP_THREADS (upper bound of the thread sweep in (c)).
#include <cstdio>

#include "bench_common.hpp"
#include "partition/phase_timers.hpp"

int main() {
  using namespace fghp;
  bench::BenchEnv env = bench::load_env();
  const std::string name = env.matrices.empty() ? "ken-11" : env.matrices.front();
  constexpr bench::Model kModels[] = {bench::Model::kGraph1d, bench::Model::kHypergraph1d,
                                      bench::Model::kFineGrain2d};

  std::printf("Ablation A4 — partitioner runtime scaling on '%s'\n\n", name.c_str());

  std::printf("(a) time vs matrix scale (K = 16)\n");
  Table ta({"scale", "rows", "nnz", "graph-1d[s]", "hyper-1d[s]", "finegrain[s]", "fg/graph"});
  for (double scale : {0.125, 0.25, 0.5, 1.0}) {
    const sparse::Csr a = sparse::make_matrix(name, 1, scale);
    double secs[3] = {0, 0, 0};
    for (int m = 0; m < 3; ++m) secs[m] = bench::run_once(a, kModels[m], 16, 1).seconds;
    ta.add_row({Table::num(scale, 3), Table::num(static_cast<long long>(a.num_rows())),
                Table::num(static_cast<long long>(a.nnz())), Table::num(secs[0], 3),
                Table::num(secs[1], 3), Table::num(secs[2], 3),
                Table::num(secs[0] > 0 ? secs[2] / secs[0] : 0.0, 1) + "x"});
  }
  ta.print();

  std::printf("\n(b) time vs K (scale = %.2f)\n", env.scale);
  Table tb({"K", "graph-1d[s]", "hyper-1d[s]", "finegrain[s]", "hg/graph", "fg/graph"});
  const sparse::Csr a = sparse::make_matrix(name, 1, env.scale);
  for (idx_t K : {2, 4, 8, 16, 32, 64}) {
    double secs[3] = {0, 0, 0};
    for (int m = 0; m < 3; ++m) secs[m] = bench::run_once(a, kModels[m], K, 1).seconds;
    tb.add_row({Table::num(static_cast<long long>(K)), Table::num(secs[0], 3),
                Table::num(secs[1], 3), Table::num(secs[2], 3),
                Table::num(secs[0] > 0 ? secs[1] / secs[0] : 0.0, 1) + "x",
                Table::num(secs[0] > 0 ? secs[2] / secs[0] : 0.0, 1) + "x"});
  }
  tb.print();

  // (c) Thread scaling of the fine-grain partitioner — the dominant cost of
  // the whole reproduction. Deterministic across thread counts: the 'cut'
  // column must be identical in every row (DESIGN.md invariant 7). Phase
  // columns are CPU time summed over threads (they exceed wall time once the
  // recursion tree forks).
  const int maxThreads = ThreadPool::default_num_threads();
  std::printf("\n(c) fine-grain thread scaling (K = 64, scale = %.2f, up to %d threads)\n",
              env.scale, maxThreads);
  std::vector<idx_t> threadCounts{1};
  for (idx_t t = 2; t < static_cast<idx_t>(maxThreads); t *= 2) threadCounts.push_back(t);
  if (maxThreads > 1) threadCounts.push_back(static_cast<idx_t>(maxThreads));
  Table tc({"threads", "time[s]", "speedup", "cut", "coarsen[s]", "initial[s]", "refine[s]",
            "extract[s]"});
  double serialSecs = 0.0;
  for (idx_t t : threadCounts) {
    part::PartitionConfig cfg;
    cfg.seed = 1;
    cfg.numThreads = t;
    const part::PhaseSnapshot before = part::phase_timers().snapshot();
    const model::ModelRun run = model::run_finegrain(a, 64, cfg);
    const part::PhaseSnapshot ph = part::phase_timers().snapshot() - before;
    if (t == 1) serialSecs = run.partitionSeconds;
    tc.add_row({Table::num(static_cast<long long>(t)), Table::num(run.partitionSeconds, 3),
                Table::num(run.partitionSeconds > 0 ? serialSecs / run.partitionSeconds : 0.0,
                           2) +
                    "x",
                Table::num(static_cast<long long>(run.objective)),
                Table::num(ph[part::Phase::kCoarsen], 3),
                Table::num(ph[part::Phase::kInitial], 3),
                Table::num(ph[part::Phase::kRefine], 3),
                Table::num(ph[part::Phase::kExtract], 3)});
  }
  tc.print();
  return 0;
}
