// Regenerates the paper's Table 2: average communication requirements of the
// 2D fine-grain hypergraph model versus the 1D standard-graph and 1D
// column-net hypergraph models, for K in {16, 32, 64} on the 14-matrix
// suite. For each (matrix, K, model) it reports
//   tot    — total communication volume / M        (paper's "tot")
//   max    — max per-processor volume / M          (paper's "max")
//   #msgs  — average messages handled per processor
//   time   — partitioning seconds, with the value normalized to the
//            graph-model partitioner in parentheses (as the paper prints)
// and closes with the per-K and overall averages plus the paper's headline
// percentages recomputed from our data.
//
// Knobs: FGHP_SCALE, FGHP_SEEDS, FGHP_K, FGHP_MATRICES, FGHP_FULL
// (see bench_common.hpp). Defaults run every matrix at paper scale, 1 seed.
// Flags: --json <path> writes the per-run records and the per-K / overall
// averages as JSON.
#include <cstdio>
#include <map>

#include "bench_common.hpp"

namespace {

using fghp::bench::Model;

/// Paper Table 2 "tot" reference values: (matrix, K) -> {graph, hyper1d, fg2d}.
const std::map<std::pair<std::string, fghp::idx_t>, std::array<double, 3>> kPaperTot = {
    {{"sherman3", 16}, {0.31, 0.25, 0.25}},   {{"sherman3", 32}, {0.46, 0.37, 0.36}},
    {{"sherman3", 64}, {0.64, 0.53, 0.50}},   {{"bcspwr10", 16}, {0.09, 0.08, 0.07}},
    {{"bcspwr10", 32}, {0.15, 0.13, 0.12}},   {{"bcspwr10", 64}, {0.23, 0.22, 0.19}},
    {{"ken-11", 16}, {0.93, 0.60, 0.14}},     {{"ken-11", 32}, {1.17, 0.74, 0.29}},
    {{"ken-11", 64}, {1.45, 0.93, 0.48}},     {{"nl", 16}, {1.70, 1.06, 0.74}},
    {{"nl", 32}, {2.25, 1.49, 1.05}},         {{"nl", 64}, {3.04, 2.20, 1.38}},
    {{"ken-13", 16}, {0.94, 0.55, 0.08}},     {{"ken-13", 32}, {1.17, 0.63, 0.17}},
    {{"ken-13", 64}, {1.40, 0.79, 0.39}},     {{"cq9", 16}, {1.70, 0.99, 0.50}},
    {{"cq9", 32}, {2.43, 1.45, 0.79}},        {{"cq9", 64}, {3.73, 2.33, 1.22}},
    {{"co9", 16}, {1.50, 0.94, 0.47}},        {{"co9", 32}, {2.07, 1.36, 0.74}},
    {{"co9", 64}, {3.10, 2.17, 1.09}},        {{"pltexpA4-6", 16}, {0.34, 0.30, 0.20}},
    {{"pltexpA4-6", 32}, {0.55, 0.51, 0.29}}, {{"pltexpA4-6", 64}, {0.98, 0.86, 0.51}},
    {{"vibrobox", 16}, {1.24, 1.06, 0.79}},   {{"vibrobox", 32}, {1.73, 1.53, 1.06}},
    {{"vibrobox", 64}, {2.28, 2.08, 1.43}},   {{"cre-d", 16}, {2.82, 2.00, 1.15}},
    {{"cre-d", 32}, {4.12, 2.90, 1.77}},      {{"cre-d", 64}, {5.95, 4.14, 2.55}},
    {{"cre-b", 16}, {2.62, 2.02, 1.01}},      {{"cre-b", 32}, {3.90, 2.88, 1.55}},
    {{"cre-b", 64}, {5.73, 4.08, 2.26}},      {{"world", 16}, {0.59, 0.54, 0.23}},
    {{"world", 32}, {0.84, 0.76, 0.41}},      {{"world", 64}, {1.19, 1.06, 0.62}},
    {{"mod2", 16}, {0.57, 0.52, 0.24}},       {{"mod2", 32}, {0.79, 0.72, 0.41}},
    {{"mod2", 64}, {1.14, 1.02, 0.62}},       {{"finan512", 16}, {0.20, 0.16, 0.07}},
    {{"finan512", 32}, {0.27, 0.21, 0.10}},   {{"finan512", 64}, {0.38, 0.31, 0.20}},
};

double paper_tot(const std::string& name, fghp::idx_t k, Model m) {
  const auto it = kPaperTot.find({name, k});
  if (it == kPaperTot.end()) return 0.0;
  return it->second[static_cast<std::size_t>(m)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fghp;
  const bench::BenchEnv env = bench::load_env();
  constexpr Model kModels[] = {Model::kGraph1d, Model::kHypergraph1d, Model::kFineGrain2d};
  const ArgParser args(argc, argv);
  bench::Observability obs(args, "bench_table2");
  bench::JsonWriter json;
  json.scalar("table", std::string("table2"));
  json.scalar("scale", env.scale);
  json.scalar("seeds", static_cast<long long>(env.seeds));

  std::printf(
      "Table 2 — average communication requirements of the 2D fine-grain model vs the\n"
      "1D graph and 1D hypergraph models (scale=%.2f, seeds=%d, threads=%d)\n"
      "'tot' and 'max' are word counts scaled by the number of rows; '(paper)' is the\n"
      "corresponding Table 2 value; 'time' normalization is vs the graph model.\n"
      "Seeds sweep in parallel (FGHP_THREADS=1 for a serial sweep); averages are\n"
      "identical at any thread count.\n\n",
      env.scale, static_cast<int>(env.seeds), ThreadPool::default_num_threads());

  Table t({"name", "K", "model", "tot", "(paper)", "max", "#msgs", "time[s]", "(norm)",
           "imbal%"});

  // Accumulators for the averages section, per (kIndex, model).
  struct Acc {
    double tot = 0, max = 0, msgs = 0, time = 0, norm = 0;
    int n = 0;
  };
  std::map<std::pair<idx_t, int>, Acc> acc;

  for (const auto& name : env.matrices) {
    const sparse::Csr a = sparse::make_matrix(name, 1, env.scale);
    for (idx_t K : env.kValues) {
      double graphTime = 0.0;
      for (const Model m : kModels) {
        const bench::RunRecord r = bench::run_avg(a, m, K, env.seeds);
        if (m == Model::kGraph1d) graphTime = r.seconds;
        const double norm = graphTime > 0.0 ? r.seconds / graphTime : 0.0;
        t.add_row({name, Table::num(static_cast<long long>(K)), bench::model_name(m),
                   Table::num(r.scaledTotal), Table::num(paper_tot(name, K, m)),
                   Table::num(r.scaledMax), Table::num(r.avgMsgs), Table::num(r.seconds),
                   "(" + Table::num(norm, 1) + ")", Table::num(r.pctImbalance, 1)});
        json.add("runs")
            .field("matrix", name)
            .field("k", K)
            .field("model", std::string(bench::model_name(m)))
            .field("scaled_total_volume", r.scaledTotal)
            .field("scaled_max_volume", r.scaledMax)
            .field("avg_msgs_per_proc", r.avgMsgs)
            .field("partition_seconds", r.seconds)
            .field("time_vs_graph", norm)
            .field("pct_imbalance", r.pctImbalance)
            .field("paper_total_volume", paper_tot(name, K, m));
        Acc& ac = acc[{K, static_cast<int>(m)}];
        ac.tot += r.scaledTotal;
        ac.max += r.scaledMax;
        ac.msgs += r.avgMsgs;
        ac.time += r.seconds;
        ac.norm += norm;
        ++ac.n;
      }
      t.add_separator();
    }
  }

  // Averages block (the bottom of the paper's Table 2).
  std::array<Acc, 3> overall;
  for (idx_t K : env.kValues) {
    for (const Model m : kModels) {
      const Acc& ac = acc[{K, static_cast<int>(m)}];
      if (ac.n == 0) continue;
      const double n = ac.n;
      t.add_row({"average", Table::num(static_cast<long long>(K)), bench::model_name(m),
                 Table::num(ac.tot / n), "", Table::num(ac.max / n), Table::num(ac.msgs / n),
                 Table::num(ac.time / n), "(" + Table::num(ac.norm / n, 1) + ")", ""});
      json.add("averages")
          .field("k", K)
          .field("model", std::string(bench::model_name(m)))
          .field("scaled_total_volume", ac.tot / n)
          .field("scaled_max_volume", ac.max / n)
          .field("avg_msgs_per_proc", ac.msgs / n)
          .field("partition_seconds", ac.time / n)
          .field("time_vs_graph", ac.norm / n);
      Acc& ov = overall[static_cast<std::size_t>(m)];
      ov.tot += ac.tot / n;
      ov.max += ac.max / n;
      ov.msgs += ac.msgs / n;
      ov.time += ac.time / n;
      ov.norm += ac.norm / n;
      ++ov.n;
    }
  }
  t.add_separator();
  for (const Model m : kModels) {
    const Acc& ov = overall[static_cast<std::size_t>(m)];
    if (ov.n == 0) continue;
    const double n = ov.n;
    t.add_row({"overall", "", bench::model_name(m), Table::num(ov.tot / n), "",
               Table::num(ov.max / n), Table::num(ov.msgs / n), Table::num(ov.time / n),
               "(" + Table::num(ov.norm / n, 1) + ")", ""});
    json.add("overall")
        .field("model", std::string(bench::model_name(m)))
        .field("scaled_total_volume", ov.tot / n)
        .field("scaled_max_volume", ov.max / n)
        .field("avg_msgs_per_proc", ov.msgs / n)
        .field("partition_seconds", ov.time / n)
        .field("time_vs_graph", ov.norm / n);
  }
  t.print();

  // Headline claims of §4, recomputed from our runs.
  const double g = overall[0].n ? overall[0].tot / overall[0].n : 0.0;
  const double h = overall[1].n ? overall[1].tot / overall[1].n : 0.0;
  const double f = overall[2].n ? overall[2].tot / overall[2].n : 0.0;
  if (g > 0 && h > 0 && f > 0) {
    std::printf(
        "\nHeadline claims (paper: fine-grain beats graph by 59%%, hypergraph-1d by 43%%;\n"
        "fine-grain ~7.3x and hypergraph-1d ~2.4x the graph partitioning time):\n"
        "  fine-grain vs graph-1d   : %.0f%% lower total volume\n"
        "  fine-grain vs hyper-1d   : %.0f%% lower total volume\n"
        "  hyper-1d  vs graph-1d    : %.0f%% lower total volume\n"
        "  normalized time hyper-1d : %.1fx   fine-grain: %.1fx\n",
        100.0 * (1.0 - f / g), 100.0 * (1.0 - f / h), 100.0 * (1.0 - h / g),
        overall[1].norm / overall[1].n, overall[2].norm / overall[2].n);
    json.scalar("pct_volume_saved_fg_vs_graph", 100.0 * (1.0 - f / g));
    json.scalar("pct_volume_saved_fg_vs_hyper1d", 100.0 * (1.0 - f / h));
    json.scalar("pct_volume_saved_hyper1d_vs_graph", 100.0 * (1.0 - h / g));
  }
  if (const auto path = args.flag("json"); path && !json.write(*path)) return 1;
  return obs.finish() != 0 ? 1 : 0;
}
