#include "sparse/mmio.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sparse/convert.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace fghp::sparse {

namespace {

[[noreturn]] void fail(const std::string& path, long line, const std::string& what) {
  ErrorContext ctx;
  ctx.path = path;
  ctx.line = line;
  throw FormatError("MatrixMarket parse error at line " + std::to_string(line) + ": " + what,
                    std::move(ctx));
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// getline that strips a trailing '\r', so CRLF (Windows-saved) files parse
/// identically to LF files — otherwise the last token of every line keeps
/// the '\r' (e.g. symmetry "general\r") and valid files are rejected.
bool getline_clean(std::istream& in, std::string& line) {
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

bool blank_or_comment(const std::string& line) {
  if (line.empty() || line[0] == '%') return true;
  return line.find_first_not_of(" \t") == std::string::npos;
}

}  // namespace

Csr read_matrix_market(std::istream& in, const std::string& path) {
  trace::TraceScope span("io", "mmio.parse");
  std::string line;
  long lineNo = 0;

  if (!getline_clean(in, line)) fail(path, 1, "empty input");
  ++lineNo;

  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (tag != "%%MatrixMarket") fail(path, lineNo, "missing %%MatrixMarket banner");
  object = lower(object);
  format = lower(format);
  field = lower(field);
  symmetry = lower(symmetry);
  if (object != "matrix") fail(path, lineNo, "unsupported object '" + object + "'");
  if (format != "coordinate") fail(path, lineNo, "only coordinate format is supported");
  const bool pattern = field == "pattern";
  if (field != "real" && field != "integer" && field != "pattern")
    fail(path, lineNo, "unsupported field '" + field + "'");
  const bool symmetric = symmetry == "symmetric";
  const bool skew = symmetry == "skew-symmetric";
  if (!symmetric && !skew && symmetry != "general")
    fail(path, lineNo, "unsupported symmetry '" + symmetry + "'");

  // Skip comments / blank lines until the size line.
  long rows = -1, cols = -1, declared = -1;
  bool haveSize = false;
  while (getline_clean(in, line)) {
    ++lineNo;
    if (blank_or_comment(line)) continue;
    std::istringstream sz(line);
    if (!(sz >> rows >> cols >> declared)) fail(path, lineNo, "malformed size line");
    haveSize = true;
    break;
  }
  if (!haveSize) fail(path, lineNo, "missing size line");
  if (rows < 0 || cols < 0 || declared < 0)
    fail(path, lineNo, "size line entries must be non-negative");
  if (rows == 0 || cols == 0) {
    if (declared != 0) fail(path, lineNo, "empty matrix cannot declare nonzeros");
    return to_csr(Coo(static_cast<idx_t>(rows), static_cast<idx_t>(cols)));
  }

  Coo coo(static_cast<idx_t>(rows), static_cast<idx_t>(cols));
  long seen = 0;
  while (seen < declared && getline_clean(in, line)) {
    ++lineNo;
    if (blank_or_comment(line)) continue;
    fault::check("mmio.read", seen + 1);
    std::istringstream es(line);
    long r, c;
    double v = 1.0;
    if (!(es >> r >> c)) fail(path, lineNo, "malformed entry");
    if (!pattern) {
      // strtod, not operator>>: the latter refuses "nan" / "inf" spellings
      // outright, which would misreport them as missing instead of rejecting
      // them as non-finite.
      std::string vtok;
      if (!(es >> vtok)) fail(path, lineNo, "missing value");
      char* end = nullptr;
      v = std::strtod(vtok.c_str(), &end);
      if (end != vtok.c_str() + vtok.size())
        fail(path, lineNo, "malformed value '" + vtok + "'");
      if (!std::isfinite(v)) fail(path, lineNo, "non-finite value (NaN or Inf)");
    }
    if (r < 1 || c < 1) fail(path, lineNo, "indices must be positive (1-based)");
    if (r > rows || c > cols) fail(path, lineNo, "index out of range");
    const auto ri = static_cast<idx_t>(r - 1);
    const auto ci = static_cast<idx_t>(c - 1);
    if ((symmetric || skew) && ci > ri)
      fail(path, lineNo, "upper-triangle entry in symmetric storage");
    if (skew && ci == ri) fail(path, lineNo, "diagonal entry in skew-symmetric storage");
    coo.add(ri, ci, v);
    if ((symmetric || skew) && ri != ci) coo.add(ci, ri, skew ? -v : v);
    ++seen;
  }
  if (seen != declared) {
    std::ostringstream os;
    os << "fewer entries than declared (got " << seen << " of " << declared
       << " before end of input)";
    fail(path, lineNo, os.str());
  }
  // Duplicate (r, c) entries accumulate — the Matrix Market convention for
  // assembled files — so the CSR below never carries duplicate columns in a
  // row. Pattern files carry structure only: duplicates collapse to a single
  // unit entry instead of summing past 1 (sign kept for skew mirrors).
  coo.normalize();
  if (pattern) {
    for (auto& t : coo.entries()) t.value = t.value < 0.0 ? -1.0 : 1.0;
  }
  span.set_args("rows", rows, "entries", seen);
  static metrics::Counter& filesRead = metrics::counter("mmio.files_read");
  static metrics::Counter& entriesRead = metrics::counter("mmio.entries_read");
  filesRead.add();
  entriesRead.add(seen);
  return to_csr(std::move(coo));
}

Csr read_matrix_market_file(const std::string& path) {
  fault::check("mmio.open");
  std::ifstream in(path);
  if (!in) throw IoError("cannot open for reading: " + path, at_path(path));
  return read_matrix_market(in, path);
}

void write_matrix_market(std::ostream& out, const Csr& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by fghp\n";
  out << a.num_rows() << ' ' << a.num_cols() << ' ' << a.nnz() << '\n';
  std::ostringstream body;
  body.precision(17);
  for (idx_t r = 0; r < a.num_rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      body << (r + 1) << ' ' << (cols[k] + 1) << ' ' << vals[k] << '\n';
    }
  }
  out << body.str();
}

void write_matrix_market_file(const std::string& path, const Csr& a) {
  trace::TraceScope span("io", "mmio.write", "rows", a.num_rows(), "nnz", a.nnz());
  std::ofstream out(path);
  if (!out) throw IoError("cannot open for writing: " + path, at_path(path));
  write_matrix_market(out, a);
  out.flush();
  if (!out) throw IoError("write failed: " + path, at_path(path));
}

}  // namespace fghp::sparse
