#include "sparse/mmio.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sparse/convert.hpp"

namespace fghp::sparse {

namespace {

[[noreturn]] void fail(long line, const std::string& what) {
  std::ostringstream os;
  os << "MatrixMarket parse error at line " << line << ": " << what;
  throw std::runtime_error(os.str());
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// getline that strips a trailing '\r', so CRLF (Windows-saved) files parse
/// identically to LF files — otherwise the last token of every line keeps
/// the '\r' (e.g. symmetry "general\r") and valid files are rejected.
bool getline_clean(std::istream& in, std::string& line) {
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

bool blank_or_comment(const std::string& line) {
  if (line.empty() || line[0] == '%') return true;
  return line.find_first_not_of(" \t") == std::string::npos;
}

}  // namespace

Csr read_matrix_market(std::istream& in) {
  std::string line;
  long lineNo = 0;

  if (!getline_clean(in, line)) fail(1, "empty input");
  ++lineNo;

  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (tag != "%%MatrixMarket") fail(lineNo, "missing %%MatrixMarket banner");
  object = lower(object);
  format = lower(format);
  field = lower(field);
  symmetry = lower(symmetry);
  if (object != "matrix") fail(lineNo, "unsupported object '" + object + "'");
  if (format != "coordinate") fail(lineNo, "only coordinate format is supported");
  const bool pattern = field == "pattern";
  if (field != "real" && field != "integer" && field != "pattern")
    fail(lineNo, "unsupported field '" + field + "'");
  const bool symmetric = symmetry == "symmetric";
  const bool skew = symmetry == "skew-symmetric";
  if (!symmetric && !skew && symmetry != "general")
    fail(lineNo, "unsupported symmetry '" + symmetry + "'");

  // Skip comments / blank lines until the size line.
  long rows = -1, cols = -1, declared = -1;
  while (getline_clean(in, line)) {
    ++lineNo;
    if (blank_or_comment(line)) continue;
    std::istringstream sz(line);
    if (!(sz >> rows >> cols >> declared)) fail(lineNo, "malformed size line");
    break;
  }
  if (rows < 0) fail(lineNo, "missing size line");
  if (rows == 0 || cols == 0) {
    if (declared != 0) fail(lineNo, "empty matrix cannot declare nonzeros");
    return to_csr(Coo(static_cast<idx_t>(rows), static_cast<idx_t>(cols)));
  }

  Coo coo(static_cast<idx_t>(rows), static_cast<idx_t>(cols));
  long seen = 0;
  while (seen < declared && getline_clean(in, line)) {
    ++lineNo;
    if (blank_or_comment(line)) continue;
    std::istringstream es(line);
    long r, c;
    double v = 1.0;
    if (!(es >> r >> c)) fail(lineNo, "malformed entry");
    if (!pattern && !(es >> v)) fail(lineNo, "missing value");
    if (r < 1 || r > rows || c < 1 || c > cols) fail(lineNo, "index out of range");
    const auto ri = static_cast<idx_t>(r - 1);
    const auto ci = static_cast<idx_t>(c - 1);
    if ((symmetric || skew) && ci > ri)
      fail(lineNo, "upper-triangle entry in symmetric storage");
    if (skew && ci == ri) fail(lineNo, "diagonal entry in skew-symmetric storage");
    coo.add(ri, ci, v);
    if ((symmetric || skew) && ri != ci) coo.add(ci, ri, skew ? -v : v);
    ++seen;
  }
  if (seen != declared) {
    std::ostringstream os;
    os << "fewer entries than declared (got " << seen << " of " << declared
       << " before end of input)";
    fail(lineNo, os.str());
  }
  // Duplicate (r, c) entries accumulate — the Matrix Market convention for
  // assembled files — so the CSR below never carries duplicate columns in a
  // row. Pattern files carry structure only: duplicates collapse to a single
  // unit entry instead of summing past 1 (sign kept for skew mirrors).
  coo.normalize();
  if (pattern) {
    for (auto& t : coo.entries()) t.value = t.value < 0.0 ? -1.0 : 1.0;
  }
  return to_csr(std::move(coo));
}

Csr read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Csr& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by fghp\n";
  out << a.num_rows() << ' ' << a.num_cols() << ' ' << a.nnz() << '\n';
  std::ostringstream body;
  body.precision(17);
  for (idx_t r = 0; r < a.num_rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      body << (r + 1) << ' ' << (cols[k] + 1) << ' ' << vals[k] << '\n';
    }
  }
  out << body.str();
}

void write_matrix_market_file(const std::string& path, const Csr& a) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_matrix_market(out, a);
}

}  // namespace fghp::sparse
