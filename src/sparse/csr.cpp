#include "sparse/csr.hpp"

#include <algorithm>

namespace fghp::sparse {

Csr::Csr(idx_t numRows, idx_t numCols, std::vector<idx_t> rowPtr,
         std::vector<idx_t> colInd, std::vector<double> values)
    : numRows_(numRows),
      numCols_(numCols),
      rowPtr_(std::move(rowPtr)),
      colInd_(std::move(colInd)),
      values_(std::move(values)) {
  FGHP_REQUIRE(numRows_ >= 0 && numCols_ >= 0, "dimensions must be non-negative");
  FGHP_REQUIRE(rowPtr_.size() == static_cast<std::size_t>(numRows_) + 1,
               "rowPtr must have numRows+1 entries");
  FGHP_REQUIRE(rowPtr_.front() == 0, "rowPtr[0] must be 0");
  for (std::size_t r = 0; r < static_cast<std::size_t>(numRows_); ++r) {
    FGHP_REQUIRE(rowPtr_[r] <= rowPtr_[r + 1], "rowPtr must be monotone");
  }
  const auto total = static_cast<std::size_t>(rowPtr_.back());
  FGHP_REQUIRE(colInd_.size() == total, "colInd size must equal rowPtr.back()");
  FGHP_REQUIRE(values_.size() == total, "values size must equal rowPtr.back()");
  for (idx_t r = 0; r < numRows_; ++r) {
    const auto cols = row_cols(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      FGHP_REQUIRE(cols[k] >= 0 && cols[k] < numCols_, "column index out of range");
      if (k > 0) FGHP_REQUIRE(cols[k - 1] < cols[k], "columns must be strictly increasing per row");
    }
  }
}

bool Csr::has_entry(idx_t row, idx_t col) const {
  const auto cols = row_cols(row);
  return std::binary_search(cols.begin(), cols.end(), col);
}

idx_t Csr::num_diag_entries() const {
  idx_t count = 0;
  const idx_t n = std::min(numRows_, numCols_);
  for (idx_t i = 0; i < n; ++i) count += has_entry(i, i) ? 1 : 0;
  return count;
}

}  // namespace fghp::sparse
