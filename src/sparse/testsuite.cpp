#include "sparse/testsuite.hpp"

#include <cmath>
#include <stdexcept>

#include "sparse/generators.hpp"
#include "util/assert.hpp"

namespace fghp::sparse {

namespace {

idx_t scaled(idx_t v, double scale, idx_t floor_) {
  return std::max<idx_t>(floor_, static_cast<idx_t>(std::lround(static_cast<double>(v) * scale)));
}

std::uint64_t stream_seed(const std::string& name, std::uint64_t seed) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the name
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  std::uint64_t s = h ^ (seed * 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

/// LP-like matrices share the skewed_square generator; this bundles the
/// per-matrix tuning (see DESIGN.md §3).
Csr make_lp(idx_t n, idx_t nnz, idx_t minRow, idx_t maxCol, idx_t nDense, double alpha,
            double bandFrac, idx_t bandWidth, bool diag, std::uint64_t seed, double scale,
            idx_t minCol = 0, idx_t numBlocks = 1, double localFrac = 0.9,
            idx_t couplingWidth = 0, double uniformCross = 0.1) {
  SkewedParams p;
  p.n = scaled(n, scale, 64);
  p.targetNnz = std::max<idx_t>(p.n * 2, scaled(nnz, scale, 128));
  p.minPerRow = minRow;
  p.minPerCol = minCol;
  p.maxColDegree = std::min<idx_t>(p.n - 1, scaled(maxCol, scale, 8));
  p.numDenseCols = std::max<idx_t>(2, scaled(nDense, scale, 2));
  p.alpha = alpha;
  p.bandFraction = bandFrac;
  p.bandWidth = std::min<idx_t>(p.n / 2, std::max<idx_t>(8, scaled(bandWidth, scale, 8)));
  p.numBlocks = std::max<idx_t>(1, scaled(numBlocks, scale, 1));
  p.localFraction = localFrac;
  p.couplingWidth = couplingWidth;
  p.uniformCrossFraction = uniformCross;
  p.includeDiagonal = diag;
  return skewed_square(p, seed);
}

}  // namespace

const std::vector<SuiteEntry>& suite() {
  static const std::vector<SuiteEntry> kSuite = {
      {"sherman3", "oil reservoir simulation (3D stencil)", {5005, 20033, 1, 7, 4.00}, true},
      {"bcspwr10", "power network", {5300, 21842, 2, 14, 4.12}, true},
      {"ken-11", "linear programming (multicommodity network)", {14694, 82454, 2, 243, 5.61}, false},
      {"nl", "linear programming", {7039, 105089, 1, 361, 14.93}, false},
      {"ken-13", "linear programming (multicommodity network)", {28632, 161804, 2, 339, 5.65}, false},
      {"cq9", "linear programming", {9278, 221590, 1, 702, 23.88}, false},
      {"co9", "linear programming", {10789, 249205, 1, 707, 23.10}, false},
      {"pltexpA4-6", "stochastic LP (plant expansion)", {26894, 269736, 5, 204, 10.03}, false},
      {"vibrobox", "structural engineering (vibroacoustics FEM)", {12328, 342828, 9, 121, 27.81}, true},
      {"cre-d", "linear programming (airline crew)", {8926, 372266, 1, 845, 41.71}, false},
      {"cre-b", "linear programming (airline crew)", {9648, 398806, 1, 904, 41.34}, false},
      {"world", "linear programming (economic model)", {34506, 582064, 1, 972, 16.87}, false},
      {"mod2", "linear programming (economic model)", {34774, 604910, 1, 941, 17.40}, false},
      {"finan512", "portfolio optimization (block structure)", {74752, 615774, 3, 1449, 8.24}, true},
  };
  return kSuite;
}

const SuiteEntry& suite_entry(const std::string& name) {
  for (const auto& e : suite())
    if (e.name == name) return e;
  throw std::invalid_argument("unknown suite matrix: " + name);
}

std::vector<std::string> suite_names() {
  std::vector<std::string> names;
  names.reserve(suite().size());
  for (const auto& e : suite()) names.push_back(e.name);
  return names;
}

Csr make_matrix(const std::string& name, std::uint64_t seed, double scale) {
  FGHP_REQUIRE(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  const std::uint64_t s = stream_seed(name, seed);

  if (name == "sherman3") {
    // 35 x 11 x 13 grid = 5005 unknowns; the keep probability thins the
    // 7-point stencil to Table 1's 20033 nonzeros (avg 4.0/row, max 7).
    const idx_t nz = scaled(13, scale, 2);
    return stencil3d(35, 11, nz, 0.5355, s);
  }
  if (name == "bcspwr10") {
    GeometricParams p;
    p.n = scaled(5300, scale, 64);
    p.avgOffDiagDeg = 3.12;
    p.minOffDiagDeg = 1;
    p.maxOffDiagDeg = 13;
    return geometric_matrix(p, s);
  }
  if (name == "vibrobox") {
    GeometricParams p;
    p.n = scaled(12328, scale, 64);
    p.avgOffDiagDeg = 26.2;
    p.minOffDiagDeg = 8;
    p.maxOffDiagDeg = 60;
    p.numHubs = std::max<idx_t>(1, scaled(6, scale, 1));  // the dense FEM rows behind max=121
    p.hubDegree = std::min<idx_t>(p.n - 1, 118);
    return geometric_matrix(p, s);
  }
  if (name == "finan512") {
    BlockRingParams p;
    p.numBlocks = scaled(512, scale, 4);
    p.blockSize = 146;
    p.intraPicksPerNode = 3;
    p.ringPicksPerNode = 0;
    p.numHubs = std::max<idx_t>(2, scaled(32, scale, 2));
    p.hubDegree = std::min<idx_t>(p.numBlocks * p.blockSize - 1, 1420);
    return block_ring(p, s);
  }
  // Block counts / locality reflect the originals' structure: the ken
  // matrices are multicommodity network LPs (many nearly-independent
  // commodity blocks), pltexpA4-6 is a staircase stochastic LP, the cre /
  // cq9 / co9 / nl / world / mod2 LPs are block-angular with denser
  // coupling.
  if (name == "ken-11")
    return make_lp(14694, 82454, 2, 243, 12, 2.2, 0.40, 96, true, s, scale,
                   /*minCol=*/0, /*numBlocks=*/96, /*localFrac=*/0.94,
                   /*couplingWidth=*/8, /*uniformCross=*/0.10);
  if (name == "nl")
    return make_lp(7039, 105089, 1, 361, 24, 1.9, 0.30, 96, false, s, scale,
                   /*minCol=*/0, /*numBlocks=*/24, /*localFrac=*/0.85,
                   /*couplingWidth=*/16, /*uniformCross=*/0.15);
  if (name == "ken-13")
    return make_lp(28632, 161804, 2, 339, 14, 2.2, 0.40, 96, true, s, scale,
                   /*minCol=*/0, /*numBlocks=*/192, /*localFrac=*/0.94,
                   /*couplingWidth=*/8, /*uniformCross=*/0.10);
  if (name == "cq9")
    return make_lp(9278, 221590, 1, 702, 40, 1.8, 0.30, 96, false, s, scale,
                   /*minCol=*/0, /*numBlocks=*/32, /*localFrac=*/0.85,
                   /*couplingWidth=*/16, /*uniformCross=*/0.10);
  if (name == "co9")
    return make_lp(10789, 249205, 1, 707, 44, 1.8, 0.30, 96, false, s, scale,
                   /*minCol=*/0, /*numBlocks=*/36, /*localFrac=*/0.85,
                   /*couplingWidth=*/16, /*uniformCross=*/0.10);
  if (name == "pltexpA4-6")
    return make_lp(26894, 269736, 5, 204, 30, 2.0, 0.50, 64, true, s, scale,
                   /*minCol=*/5, /*numBlocks=*/128, /*localFrac=*/0.92,
                   /*couplingWidth=*/8, /*uniformCross=*/0.05);
  if (name == "cre-d")
    return make_lp(8926, 372266, 1, 845, 72, 1.7, 0.30, 128, false, s, scale,
                   /*minCol=*/0, /*numBlocks=*/24, /*localFrac=*/0.75,
                   /*couplingWidth=*/32, /*uniformCross=*/0.04);
  if (name == "cre-b")
    return make_lp(9648, 398806, 1, 904, 74, 1.7, 0.30, 128, false, s, scale,
                   /*minCol=*/0, /*numBlocks=*/24, /*localFrac=*/0.75,
                   /*couplingWidth=*/32, /*uniformCross=*/0.04);
  if (name == "world")
    return make_lp(34506, 582064, 1, 972, 90, 1.8, 0.35, 256, true, s, scale,
                   /*minCol=*/0, /*numBlocks=*/48, /*localFrac=*/0.85,
                   /*couplingWidth=*/24, /*uniformCross=*/0.10);
  if (name == "mod2")
    return make_lp(34774, 604910, 1, 941, 92, 1.8, 0.35, 256, true, s, scale,
                   /*minCol=*/0, /*numBlocks=*/48, /*localFrac=*/0.85,
                   /*couplingWidth=*/24, /*uniformCross=*/0.10);

  throw std::invalid_argument("unknown suite matrix: " + name);
}

}  // namespace fghp::sparse
