#include "sparse/convert.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace fghp::sparse {

Csr to_csr(Coo coo) {
  coo.normalize();
  const idx_t numRows = coo.num_rows();
  const idx_t numCols = coo.num_cols();
  const auto& ents = coo.entries();

  std::vector<idx_t> rowPtr(static_cast<std::size_t>(numRows) + 1, 0);
  for (const auto& t : ents) ++rowPtr[static_cast<std::size_t>(t.row) + 1];
  for (std::size_t r = 0; r < static_cast<std::size_t>(numRows); ++r)
    rowPtr[r + 1] += rowPtr[r];

  std::vector<idx_t> colInd(ents.size());
  std::vector<double> values(ents.size());
  for (std::size_t i = 0; i < ents.size(); ++i) {
    colInd[i] = ents[i].col;
    values[i] = ents[i].value;
  }
  return Csr(numRows, numCols, std::move(rowPtr), std::move(colInd), std::move(values));
}

Coo to_coo(const Csr& a) {
  Coo coo(a.num_rows(), a.num_cols());
  for (idx_t r = 0; r < a.num_rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) coo.add(r, cols[k], vals[k]);
  }
  return coo;
}

Csr transpose(const Csr& a) {
  const idx_t m = a.num_rows();
  const idx_t n = a.num_cols();
  const idx_t z = a.nnz();

  std::vector<idx_t> rowPtr(static_cast<std::size_t>(n) + 1, 0);
  for (idx_t c : a.col_ind()) ++rowPtr[static_cast<std::size_t>(c) + 1];
  for (std::size_t c = 0; c < static_cast<std::size_t>(n); ++c) rowPtr[c + 1] += rowPtr[c];

  std::vector<idx_t> colInd(static_cast<std::size_t>(z));
  std::vector<double> values(static_cast<std::size_t>(z));
  std::vector<idx_t> cursor(rowPtr.begin(), rowPtr.end() - 1);
  // Row-major traversal emits each transposed row (= column of A) with
  // strictly increasing column indices, so no per-row sort is needed.
  for (idx_t r = 0; r < m; ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const auto slot = static_cast<std::size_t>(cursor[static_cast<std::size_t>(cols[k])]++);
      colInd[slot] = r;
      values[slot] = vals[k];
    }
  }
  return Csr(n, m, std::move(rowPtr), std::move(colInd), std::move(values));
}

Csr symmetrized_pattern(const Csr& a) {
  FGHP_REQUIRE(a.is_square(), "symmetrized_pattern requires a square matrix");
  Coo coo = to_coo(a);
  for (idx_t r = 0; r < a.num_rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] != r) coo.add(cols[k], r, vals[k]);
    }
  }
  return to_csr(std::move(coo));
}

Csr with_full_diagonal(const Csr& a, double diagValue) {
  FGHP_REQUIRE(a.is_square(), "with_full_diagonal requires a square matrix");
  Coo coo = to_coo(a);
  for (idx_t i = 0; i < a.num_rows(); ++i) {
    if (!a.has_entry(i, i)) coo.add(i, i, diagValue);
  }
  return to_csr(std::move(coo));
}

}  // namespace fghp::sparse
