#include "sparse/stats.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "sparse/convert.hpp"

namespace fghp::sparse {

MatrixStats compute_stats(const Csr& a) {
  MatrixStats s;
  s.numRows = a.num_rows();
  s.numCols = a.num_cols();
  s.nnz = a.nnz();

  auto degree_stats = [](const Csr& m, idx_t& mn, idx_t& mx, double& avg) {
    mn = m.num_rows() == 0 ? 0 : std::numeric_limits<idx_t>::max();
    mx = 0;
    for (idx_t r = 0; r < m.num_rows(); ++r) {
      const idx_t d = m.row_size(r);
      mn = std::min(mn, d);
      mx = std::max(mx, d);
    }
    avg = m.num_rows() == 0 ? 0.0
                            : static_cast<double>(m.nnz()) / static_cast<double>(m.num_rows());
  };

  degree_stats(a, s.minPerRow, s.maxPerRow, s.avgPerRow);
  const Csr at = transpose(a);
  degree_stats(at, s.minPerCol, s.maxPerCol, s.avgPerCol);

  s.minPerRowCol = std::min(s.minPerRow, s.minPerCol);
  s.maxPerRowCol = std::max(s.maxPerRow, s.maxPerCol);
  const auto denom = static_cast<double>(s.numRows) + static_cast<double>(s.numCols);
  s.avgPerRowCol = denom == 0.0 ? 0.0 : 2.0 * static_cast<double>(s.nnz) / denom;

  if (a.is_square()) {
    s.numDiagEntries = a.num_diag_entries();
    s.structurallySymmetric = (a.row_ptr() == at.row_ptr() && a.col_ind() == at.col_ind());
  }
  return s;
}

std::string to_string(const MatrixStats& s) {
  std::ostringstream os;
  os << s.numRows << 'x' << s.numCols << ", nnz=" << s.nnz << ", per-row/col min="
     << s.minPerRowCol << " max=" << s.maxPerRowCol << " avg=" << s.avgPerRowCol
     << (s.structurallySymmetric ? ", symmetric" : ", nonsymmetric");
  return os.str();
}

}  // namespace fghp::sparse
