// Format conversions: COO <-> CSR, transposition, and pattern helpers.
#pragma once

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace fghp::sparse {

/// COO -> CSR. The input is normalized (sorted, duplicates summed) as a side
/// effect of the conversion; the COO argument is consumed.
Csr to_csr(Coo coo);

/// CSR -> COO (already normalized).
Coo to_coo(const Csr& a);

/// Structural+numeric transpose. transpose(A) is also the CSC view of A.
Csr transpose(const Csr& a);

/// Pattern of A + A^T (square matrices): the symmetrized structure used by
/// the standard graph model. Values are summed where both entries exist.
Csr symmetrized_pattern(const Csr& a);

/// Ensures every diagonal position is structurally present (missing ones are
/// inserted with the given value). Used by tests and generators.
Csr with_full_diagonal(const Csr& a, double diagValue = 1.0);

}  // namespace fghp::sparse
