#include "sparse/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "sparse/coo.hpp"
#include "sparse/convert.hpp"
#include "util/assert.hpp"

namespace fghp::sparse {

namespace {

/// Random off-diagonal value in [-1, 1] \ {0}-ish; keeps SpMV numerically
/// nontrivial without blowing up iterative-solver examples.
double rand_val(Rng& rng) { return rng.uniform01() * 2.0 - 1.0 + 1e-3; }

}  // namespace

Csr stencil2d(idx_t nx, idx_t ny) {
  FGHP_REQUIRE(nx > 0 && ny > 0, "grid dimensions must be positive");
  const idx_t n = nx * ny;
  Coo coo(n, n);
  auto id = [nx](idx_t x, idx_t y) { return y * nx + x; };
  for (idx_t y = 0; y < ny; ++y) {
    for (idx_t x = 0; x < nx; ++x) {
      const idx_t v = id(x, y);
      coo.add(v, v, 4.0);
      if (x > 0) coo.add(v, id(x - 1, y), -1.0);
      if (x + 1 < nx) coo.add(v, id(x + 1, y), -1.0);
      if (y > 0) coo.add(v, id(x, y - 1), -1.0);
      if (y + 1 < ny) coo.add(v, id(x, y + 1), -1.0);
    }
  }
  return to_csr(std::move(coo));
}

Csr stencil3d(idx_t nx, idx_t ny, idx_t nz, double keepProb, std::uint64_t seed) {
  FGHP_REQUIRE(nx > 0 && ny > 0 && nz > 0, "grid dimensions must be positive");
  FGHP_REQUIRE(keepProb >= 0.0 && keepProb <= 1.0, "keepProb must be in [0,1]");
  Rng rng(seed);
  const idx_t n = nx * ny * nz;
  Coo coo(n, n);
  auto id = [nx, ny](idx_t x, idx_t y, idx_t z) { return (z * ny + y) * nx + x; };
  for (idx_t z = 0; z < nz; ++z) {
    for (idx_t y = 0; y < ny; ++y) {
      for (idx_t x = 0; x < nx; ++x) {
        const idx_t v = id(x, y, z);
        coo.add(v, v, 6.0);
        // Each symmetric pair is decided once, at its lexicographically
        // smaller endpoint, so kept pairs stay structurally symmetric.
        auto maybe = [&](idx_t u) {
          if (rng.bernoulli(keepProb)) {
            const double w = rand_val(rng);
            coo.add(v, u, w);
            coo.add(u, v, w);
          }
        };
        if (x + 1 < nx) maybe(id(x + 1, y, z));
        if (y + 1 < ny) maybe(id(x, y + 1, z));
        if (z + 1 < nz) maybe(id(x, y, z + 1));
      }
    }
  }
  return to_csr(std::move(coo));
}

Csr geometric_matrix(const GeometricParams& p, std::uint64_t seed) {
  FGHP_REQUIRE(p.n > 0, "n must be positive");
  FGHP_REQUIRE(p.avgOffDiagDeg > 0.0, "avgOffDiagDeg must be positive");
  FGHP_REQUIRE(p.minOffDiagDeg <= p.maxOffDiagDeg, "degree floor exceeds cap");
  Rng rng(seed);
  const idx_t n = p.n;

  std::vector<double> px(static_cast<std::size_t>(n)), py(static_cast<std::size_t>(n));
  for (idx_t i = 0; i < n; ++i) {
    px[static_cast<std::size_t>(i)] = rng.uniform01();
    py[static_cast<std::size_t>(i)] = rng.uniform01();
  }

  // Expected degree of a radius-r geometric graph with density n is n*pi*r^2.
  const double r = std::sqrt(p.avgOffDiagDeg / (M_PI * static_cast<double>(n)));
  const double r2 = r * r;
  const idx_t cells = std::max<idx_t>(1, static_cast<idx_t>(1.0 / r));
  const double cellSize = 1.0 / static_cast<double>(cells);

  // Grid hash: cell -> points, for O(n * avgDeg) neighbor search.
  std::vector<std::vector<idx_t>> grid(static_cast<std::size_t>(cells) *
                                       static_cast<std::size_t>(cells));
  auto cell_of = [&](double x) {
    return std::min<idx_t>(cells - 1, static_cast<idx_t>(x / cellSize));
  };
  for (idx_t i = 0; i < n; ++i) {
    const auto cx = cell_of(px[static_cast<std::size_t>(i)]);
    const auto cy = cell_of(py[static_cast<std::size_t>(i)]);
    grid[static_cast<std::size_t>(cy) * static_cast<std::size_t>(cells) +
         static_cast<std::size_t>(cx)]
        .push_back(i);
  }

  std::vector<idx_t> degree(static_cast<std::size_t>(n), 0);
  std::vector<std::pair<idx_t, idx_t>> edges;
  for (idx_t i = 0; i < n; ++i) {
    const auto cx = cell_of(px[static_cast<std::size_t>(i)]);
    const auto cy = cell_of(py[static_cast<std::size_t>(i)]);
    for (idx_t dy = -1; dy <= 1; ++dy) {
      for (idx_t dx = -1; dx <= 1; ++dx) {
        const idx_t gx = cx + dx, gy = cy + dy;
        if (gx < 0 || gy < 0 || gx >= cells || gy >= cells) continue;
        for (idx_t j : grid[static_cast<std::size_t>(gy) * static_cast<std::size_t>(cells) +
                            static_cast<std::size_t>(gx)]) {
          if (j <= i) continue;  // each pair once
          if (degree[static_cast<std::size_t>(i)] >= p.maxOffDiagDeg) break;
          if (degree[static_cast<std::size_t>(j)] >= p.maxOffDiagDeg) continue;
          const double ddx = px[static_cast<std::size_t>(i)] - px[static_cast<std::size_t>(j)];
          const double ddy = py[static_cast<std::size_t>(i)] - py[static_cast<std::size_t>(j)];
          if (ddx * ddx + ddy * ddy <= r2) {
            edges.emplace_back(i, j);
            ++degree[static_cast<std::size_t>(i)];
            ++degree[static_cast<std::size_t>(j)];
          }
        }
      }
    }
  }

  // Degree floor: deficient vertices link to random partners (spatially
  // uninformed, but floors affect only a handful of vertices).
  for (idx_t i = 0; i < n; ++i) {
    int guard = 0;
    while (degree[static_cast<std::size_t>(i)] < p.minOffDiagDeg && ++guard < 1000) {
      const idx_t j = rng.uniform(0, n - 1);
      if (j == i || degree[static_cast<std::size_t>(j)] >= p.maxOffDiagDeg) continue;
      edges.emplace_back(std::min(i, j), std::max(i, j));
      ++degree[static_cast<std::size_t>(i)];
      ++degree[static_cast<std::size_t>(j)];
    }
  }

  // Hubs: a few vertices with much higher degree than the radius graph
  // produces (FEM matrices often carry a handful of dense rows from
  // constraints or master nodes).
  for (idx_t hub = 0; hub < p.numHubs; ++hub) {
    const idx_t i = rng.uniform(0, n - 1);
    int guard = 0;
    while (degree[static_cast<std::size_t>(i)] < p.hubDegree && ++guard < 8 * p.hubDegree) {
      const idx_t j = rng.uniform(0, n - 1);
      if (j == i) continue;
      edges.emplace_back(std::min(i, j), std::max(i, j));
      ++degree[static_cast<std::size_t>(i)];
      ++degree[static_cast<std::size_t>(j)];
    }
  }

  Coo coo(n, n);
  for (idx_t i = 0; i < n; ++i) {
    if (p.includeDiagonal) coo.add(i, i, static_cast<double>(degree[static_cast<std::size_t>(i)]) + 1.0);
  }
  for (const auto& [i, j] : edges) {
    const double w = rand_val(rng);
    coo.add(i, j, w);
    coo.add(j, i, w);
  }
  Csr out = to_csr(std::move(coo));
  // Duplicate hub picks collapse in normalize(); the degree targets are
  // approximate by design.
  return out;
}

Csr skewed_square(const SkewedParams& p, std::uint64_t seed) {
  FGHP_REQUIRE(p.n > 0, "n must be positive");
  FGHP_REQUIRE(p.targetNnz >= p.n, "targetNnz too small");
  FGHP_REQUIRE(p.maxColDegree < p.n, "maxColDegree must be < n");
  FGHP_REQUIRE(p.alpha > 1.0, "alpha must exceed 1");
  Rng rng(seed);
  const idx_t n = p.n;

  // --- Column degree plan -------------------------------------------------
  std::vector<idx_t> colDeg(static_cast<std::size_t>(n), 0);
  weight_t budget = p.targetNnz;
  if (p.includeDiagonal) budget -= n;

  // A handful of very dense columns carry the tail of Table 1's "max".
  std::vector<idx_t> perm = rng.permutation(n);
  for (idx_t d = 0; d < p.numDenseCols && d < n; ++d) {
    const idx_t deg = rng.uniform(static_cast<idx_t>(0.6 * static_cast<double>(p.maxColDegree)),
                                  p.maxColDegree);
    colDeg[static_cast<std::size_t>(perm[static_cast<std::size_t>(d)])] = deg;
    budget -= deg;
  }

  // Remaining budget: a guaranteed floor per column plus truncated Pareto
  // samples rescaled to spend exactly what is left.
  const idx_t colFloor =
      std::max<idx_t>(0, p.minPerCol - (p.includeDiagonal ? 1 : 0));
  budget -= static_cast<weight_t>(colFloor) * (n - p.numDenseCols);
  const double xmin = 1.0;
  const double invAlpha = 1.0 / (p.alpha - 1.0);
  std::vector<double> raw(static_cast<std::size_t>(n), 0.0);
  double rawSum = 0.0;
  for (idx_t c = p.numDenseCols; c < n; ++c) {
    const double u = std::max(1e-12, rng.uniform01());
    const double d = std::min(static_cast<double>(p.maxColDegree) * 0.5,
                              xmin * std::pow(u, -invAlpha));
    raw[static_cast<std::size_t>(perm[static_cast<std::size_t>(c)])] = d;
    rawSum += d;
  }
  const double scale =
      rawSum > 0.0 ? static_cast<double>(std::max<weight_t>(budget, 0)) / rawSum : 0.0;
  for (idx_t c = p.numDenseCols; c < n; ++c) {
    const idx_t col = perm[static_cast<std::size_t>(c)];
    const double want = raw[static_cast<std::size_t>(col)] * scale;
    idx_t d = static_cast<idx_t>(want);
    if (rng.bernoulli(want - static_cast<double>(d))) ++d;  // stochastic rounding
    colDeg[static_cast<std::size_t>(col)] =
        std::min<idx_t>(colFloor + d, p.maxColDegree);
  }

  // --- Pin placement ------------------------------------------------------
  Coo coo(n, n);
  std::unordered_set<std::uint64_t> used;
  used.reserve(static_cast<std::size_t>(p.targetNnz) * 2);
  auto key = [n](idx_t r, idx_t c) {
    return static_cast<std::uint64_t>(r) * static_cast<std::uint64_t>(n) +
           static_cast<std::uint64_t>(c);
  };
  std::vector<idx_t> rowDeg(static_cast<std::size_t>(n), 0);
  auto place = [&](idx_t r, idx_t c) {
    if (used.insert(key(r, c)).second) {
      coo.add(r, c, rand_val(rng));
      ++rowDeg[static_cast<std::size_t>(r)];
      return true;
    }
    return false;
  };

  if (p.includeDiagonal) {
    for (idx_t i = 0; i < n; ++i) place(i, i);
  }
  const idx_t blocks = std::max<idx_t>(1, std::min(p.numBlocks, n));
  auto block_range = [&](idx_t c, idx_t& lo, idx_t& hi) {
    const idx_t b = static_cast<idx_t>(
        static_cast<std::int64_t>(c) * blocks / n);
    lo = static_cast<idx_t>(static_cast<std::int64_t>(b) * n / blocks);
    hi = static_cast<idx_t>(static_cast<std::int64_t>(b + 1) * n / blocks);
  };
  std::vector<char> dense(static_cast<std::size_t>(n), 0);
  for (idx_t d = 0; d < p.numDenseCols && d < n; ++d)
    dense[static_cast<std::size_t>(perm[static_cast<std::size_t>(d)])] = 1;

  for (idx_t c = 0; c < n; ++c) {
    const idx_t want = colDeg[static_cast<std::size_t>(c)];
    idx_t placed = 0;
    int guard = 0;
    idx_t lo = 0, hi = n;
    const bool local = blocks > 1 && !dense[static_cast<std::size_t>(c)];
    if (local) block_range(c, lo, hi);
    while (placed < want && ++guard < 8 * want + 64) {
      idx_t r;
      const bool stayLocal = local && rng.bernoulli(p.localFraction);
      if (!stayLocal && local && p.couplingWidth > 0 &&
          !rng.bernoulli(p.uniformCrossFraction)) {
        // Staircase: cross pins concentrate in the head of the next block.
        const idx_t nextLo = hi % n;
        const idx_t width = std::min<idx_t>(p.couplingWidth, n - 1);
        r = (nextLo + rng.uniform(0, width - 1)) % n;
      } else {
        const idx_t span = stayLocal ? hi - lo : n;
        const idx_t base = stayLocal ? lo : 0;
        if (rng.bernoulli(p.bandFraction)) {
          const idx_t off = rng.uniform(-p.bandWidth, p.bandWidth);
          r = base + (((c - base + off) % span) + span) % span;  // band within span
        } else {
          r = base + rng.uniform(0, span - 1);
        }
      }
      if (place(r, c)) ++placed;
    }
    // Spill: a column whose degree exceeds the distinct rows reachable
    // through its block + coupling window cannot finish locally; place the
    // remainder anywhere so the nonzero budget is met.
    int spillGuard = 0;
    while (placed < want && ++spillGuard < 8 * want + 64) {
      if (place(rng.uniform(0, n - 1), c)) ++placed;
    }
  }

  // --- Row floor ----------------------------------------------------------
  for (idx_t r = 0; r < n; ++r) {
    int guard = 0;
    while (rowDeg[static_cast<std::size_t>(r)] < p.minPerRow && ++guard < 1000) {
      place(r, rng.uniform(0, n - 1));
    }
  }
  return to_csr(std::move(coo));
}

Csr block_ring(const BlockRingParams& p, std::uint64_t seed) {
  FGHP_REQUIRE(p.numBlocks > 0 && p.blockSize > 1, "blocks must be non-trivial");
  Rng rng(seed);
  const idx_t n = p.numBlocks * p.blockSize;
  Coo coo(n, n);
  std::unordered_set<std::uint64_t> used;
  auto key = [n](idx_t r, idx_t c) {
    return static_cast<std::uint64_t>(r) * static_cast<std::uint64_t>(n) +
           static_cast<std::uint64_t>(c);
  };
  auto link = [&](idx_t i, idx_t j) {
    if (i == j) return;
    const idx_t a = std::min(i, j), b = std::max(i, j);
    if (used.insert(key(a, b)).second) {
      const double w = rand_val(rng);
      coo.add(a, b, w);
      coo.add(b, a, w);
    }
  };

  for (idx_t i = 0; i < n; ++i) coo.add(i, i, 8.0);

  for (idx_t blk = 0; blk < p.numBlocks; ++blk) {
    const idx_t base = blk * p.blockSize;
    const idx_t nextBase = ((blk + 1) % p.numBlocks) * p.blockSize;
    for (idx_t v = 0; v < p.blockSize; ++v) {
      for (idx_t k = 0; k < p.intraPicksPerNode; ++k)
        link(base + v, base + rng.uniform(0, p.blockSize - 1));
      for (idx_t k = 0; k < p.ringPicksPerNode; ++k)
        link(base + v, nextBase + rng.uniform(0, p.blockSize - 1));
    }
  }

  for (idx_t h = 0; h < p.numHubs; ++h) {
    const idx_t hub = rng.uniform(0, n - 1);
    for (idx_t k = 0; k < p.hubDegree; ++k) link(hub, rng.uniform(0, n - 1));
  }
  return to_csr(std::move(coo));
}

Csr random_square(idx_t n, idx_t nnzPerRow, std::uint64_t seed, bool withDiagonal) {
  FGHP_REQUIRE(n > 0, "n must be positive");
  FGHP_REQUIRE(nnzPerRow >= 1 && nnzPerRow <= n, "nnzPerRow out of range");
  Rng rng(seed);
  Coo coo(n, n);
  for (idx_t r = 0; r < n; ++r) {
    if (withDiagonal) coo.add(r, r, static_cast<double>(nnzPerRow));
    const idx_t extra = nnzPerRow - (withDiagonal ? 1 : 0);
    for (idx_t k = 0; k < extra; ++k) coo.add(r, rng.uniform(0, n - 1), rand_val(rng));
  }
  Csr a = to_csr(std::move(coo));  // duplicates collapse; rows end up <= nnzPerRow
  return a;
}

Csr banded(idx_t n, idx_t halfBandwidth) {
  FGHP_REQUIRE(n > 0 && halfBandwidth >= 0, "invalid band parameters");
  Coo coo(n, n);
  for (idx_t r = 0; r < n; ++r) {
    const idx_t lo = std::max<idx_t>(0, r - halfBandwidth);
    const idx_t hi = std::min<idx_t>(n - 1, r + halfBandwidth);
    for (idx_t c = lo; c <= hi; ++c) coo.add(r, c, r == c ? 2.0 : -0.5);
  }
  return to_csr(std::move(coo));
}

Csr dense_square(idx_t n) {
  FGHP_REQUIRE(n > 0 && n <= 4096, "dense_square is for small matrices");
  Coo coo(n, n);
  for (idx_t r = 0; r < n; ++r)
    for (idx_t c = 0; c < n; ++c) coo.add(r, c, r == c ? 2.0 : 0.5);
  return to_csr(std::move(coo));
}

Csr identity(idx_t n) {
  FGHP_REQUIRE(n > 0, "n must be positive");
  Coo coo(n, n);
  for (idx_t i = 0; i < n; ++i) coo.add(i, i, 1.0);
  return to_csr(std::move(coo));
}

}  // namespace fghp::sparse
