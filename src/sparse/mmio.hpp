// Matrix Market (.mtx) reader / writer.
//
// Supports the coordinate format with real / integer / pattern fields and
// general / symmetric / skew-symmetric symmetry (symmetric storage is
// expanded on read). This is the bridge to the *real* test matrices of the
// paper (University of Florida collection, netlib LP sets) when they are
// available; the bundled synthetic suite (sparse/testsuite.hpp) stands in
// for them offline.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace fghp::sparse {

/// Parses a Matrix Market stream. Throws std::runtime_error with a
/// line-numbered message on malformed input.
Csr read_matrix_market(std::istream& in);

/// Convenience file wrapper; throws std::runtime_error if unreadable.
Csr read_matrix_market_file(const std::string& path);

/// Writes `a` in coordinate/real/general form (1-based indices).
void write_matrix_market(std::ostream& out, const Csr& a);

/// Convenience file wrapper; throws std::runtime_error if unwritable.
void write_matrix_market_file(const std::string& path, const Csr& a);

}  // namespace fghp::sparse
