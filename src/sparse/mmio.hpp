// Matrix Market (.mtx) reader / writer.
//
// Supports the coordinate format with real / integer / pattern fields and
// general / symmetric / skew-symmetric symmetry (symmetric storage is
// expanded on read). This is the bridge to the *real* test matrices of the
// paper (University of Florida collection, netlib LP sets) when they are
// available; the bundled synthetic suite (sparse/testsuite.hpp) stands in
// for them offline.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace fghp::sparse {

/// Parses a Matrix Market stream. Throws fghp::FormatError with a
/// line-numbered message (and `path`, if given, as context) on malformed
/// input — including NaN/Inf values and non-positive indices.
Csr read_matrix_market(std::istream& in, const std::string& path = "");

/// Convenience file wrapper; throws fghp::IoError if unreadable.
Csr read_matrix_market_file(const std::string& path);

/// Writes `a` in coordinate/real/general form (1-based indices).
void write_matrix_market(std::ostream& out, const Csr& a);

/// Convenience file wrapper; throws fghp::IoError if unwritable.
void write_matrix_market_file(const std::string& path, const Csr& a);

}  // namespace fghp::sparse
