#include "sparse/reorder.hpp"

#include <algorithm>
#include <queue>

#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "util/assert.hpp"

namespace fghp::sparse {

namespace {

void check_permutation(const std::vector<idx_t>& perm, idx_t n, const char* what) {
  FGHP_REQUIRE(perm.size() == static_cast<std::size_t>(n), "permutation size mismatch");
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (idx_t p : perm) {
    FGHP_REQUIRE(p >= 0 && p < n, what);
    FGHP_REQUIRE(!seen[static_cast<std::size_t>(p)], what);
    seen[static_cast<std::size_t>(p)] = 1;
  }
}

}  // namespace

idx_t bandwidth(const Csr& a) {
  idx_t bw = 0;
  for (idx_t i = 0; i < a.num_rows(); ++i) {
    for (idx_t j : a.row_cols(i)) {
      bw = std::max(bw, i > j ? i - j : j - i);
    }
  }
  return bw;
}

Csr permute_symmetric(const Csr& a, const std::vector<idx_t>& newIndex) {
  FGHP_REQUIRE(a.is_square(), "permute_symmetric requires a square matrix");
  return permute(a, newIndex, newIndex);
}

Csr permute(const Csr& a, const std::vector<idx_t>& rowNew, const std::vector<idx_t>& colNew) {
  check_permutation(rowNew, a.num_rows(), "rowNew is not a permutation");
  check_permutation(colNew, a.num_cols(), "colNew is not a permutation");
  Coo coo(a.num_rows(), a.num_cols());
  for (idx_t i = 0; i < a.num_rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      coo.add(rowNew[static_cast<std::size_t>(i)],
              colNew[static_cast<std::size_t>(cols[k])], vals[k]);
    }
  }
  return to_csr(std::move(coo));
}

std::vector<idx_t> rcm_ordering(const Csr& a) {
  FGHP_REQUIRE(a.is_square(), "rcm_ordering requires a square matrix");
  const idx_t n = a.num_rows();
  const Csr s = symmetrized_pattern(a);

  // Degrees exclude the diagonal.
  std::vector<idx_t> degree(static_cast<std::size_t>(n));
  for (idx_t v = 0; v < n; ++v) {
    idx_t d = 0;
    for (idx_t u : s.row_cols(v)) d += u != v ? 1 : 0;
    degree[static_cast<std::size_t>(v)] = d;
  }

  std::vector<idx_t> order;  // Cuthill-McKee order (reversed at the end)
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<idx_t> byDegree(static_cast<std::size_t>(n));
  for (idx_t v = 0; v < n; ++v) byDegree[static_cast<std::size_t>(v)] = v;
  std::sort(byDegree.begin(), byDegree.end(), [&](idx_t x, idx_t y) {
    return degree[static_cast<std::size_t>(x)] != degree[static_cast<std::size_t>(y)]
               ? degree[static_cast<std::size_t>(x)] < degree[static_cast<std::size_t>(y)]
               : x < y;
  });

  std::vector<idx_t> scratch;
  for (idx_t seedIdx : byDegree) {
    if (visited[static_cast<std::size_t>(seedIdx)]) continue;
    // BFS one component from its minimum-degree vertex.
    std::queue<idx_t> frontier;
    frontier.push(seedIdx);
    visited[static_cast<std::size_t>(seedIdx)] = 1;
    while (!frontier.empty()) {
      const idx_t v = frontier.front();
      frontier.pop();
      order.push_back(v);
      scratch.clear();
      for (idx_t u : s.row_cols(v)) {
        if (u != v && !visited[static_cast<std::size_t>(u)]) {
          visited[static_cast<std::size_t>(u)] = 1;
          scratch.push_back(u);
        }
      }
      std::sort(scratch.begin(), scratch.end(), [&](idx_t x, idx_t y) {
        return degree[static_cast<std::size_t>(x)] != degree[static_cast<std::size_t>(y)]
                   ? degree[static_cast<std::size_t>(x)] < degree[static_cast<std::size_t>(y)]
                   : x < y;
      });
      for (idx_t u : scratch) frontier.push(u);
    }
  }
  FGHP_ASSERT(order.size() == static_cast<std::size_t>(n));

  // Reverse and convert position list to old -> new map.
  std::vector<idx_t> newIndex(static_cast<std::size_t>(n));
  for (idx_t pos = 0; pos < n; ++pos) {
    newIndex[static_cast<std::size_t>(order[static_cast<std::size_t>(pos)])] = n - 1 - pos;
  }
  return newIndex;
}

BipartiteOrdering bipartite_rcm(idx_t nRows, idx_t nCols,
                                const std::vector<idx_t>& rowPtr,
                                const std::vector<idx_t>& colIdx) {
  FGHP_REQUIRE(nRows >= 0 && nCols >= 0, "negative dimension");
  FGHP_REQUIRE(rowPtr.size() == static_cast<std::size_t>(nRows) + 1,
               "rowPtr size must be nRows + 1");
  FGHP_REQUIRE(!colIdx.empty() || rowPtr.back() == 0, "rowPtr/colIdx mismatch");
  FGHP_REQUIRE(static_cast<std::size_t>(rowPtr.back()) == colIdx.size(),
               "rowPtr/colIdx mismatch");

  const auto uz = [](idx_t v) { return static_cast<std::size_t>(v); };

  // Transpose adjacency (column -> rows), counting-sort style.
  std::vector<idx_t> colPtr(uz(nCols) + 1, 0);
  for (idx_t c : colIdx) {
    FGHP_REQUIRE(c >= 0 && c < nCols, "column index out of range");
    ++colPtr[uz(c) + 1];
  }
  for (idx_t c = 0; c < nCols; ++c) colPtr[uz(c) + 1] += colPtr[uz(c)];
  std::vector<idx_t> colRows(colIdx.size());
  {
    std::vector<idx_t> cursor(colPtr.begin(), colPtr.end() - 1);
    for (idx_t r = 0; r < nRows; ++r)
      for (idx_t e = rowPtr[uz(r)]; e < rowPtr[uz(r) + 1]; ++e)
        colRows[uz(cursor[uz(colIdx[uz(e)])]++)] = r;
  }

  // Joint vertex space: rows are [0, nRows), column c is vertex nRows + c.
  const idx_t n = nRows + nCols;
  const auto degree = [&](idx_t v) {
    return v < nRows ? rowPtr[uz(v) + 1] - rowPtr[uz(v)]
                     : colPtr[uz(v - nRows) + 1] - colPtr[uz(v - nRows)];
  };
  const auto byDegreeLess = [&](idx_t x, idx_t y) {
    const idx_t dx = degree(x), dy = degree(y);
    return dx != dy ? dx < dy : x < y;
  };

  std::vector<idx_t> seeds(uz(n));
  for (idx_t v = 0; v < n; ++v) seeds[uz(v)] = v;
  std::sort(seeds.begin(), seeds.end(), byDegreeLess);

  std::vector<idx_t> order;
  order.reserve(uz(n));
  std::vector<char> visited(uz(n), 0);
  std::vector<idx_t> scratch;
  std::queue<idx_t> frontier;
  for (idx_t seed : seeds) {
    if (visited[uz(seed)]) continue;
    frontier.push(seed);
    visited[uz(seed)] = 1;
    while (!frontier.empty()) {
      const idx_t v = frontier.front();
      frontier.pop();
      order.push_back(v);
      scratch.clear();
      if (v < nRows) {
        for (idx_t e = rowPtr[uz(v)]; e < rowPtr[uz(v) + 1]; ++e) {
          const idx_t u = nRows + colIdx[uz(e)];
          if (!visited[uz(u)]) {
            visited[uz(u)] = 1;
            scratch.push_back(u);
          }
        }
      } else {
        for (idx_t e = colPtr[uz(v - nRows)]; e < colPtr[uz(v - nRows) + 1]; ++e) {
          const idx_t u = colRows[uz(e)];
          if (!visited[uz(u)]) {
            visited[uz(u)] = 1;
            scratch.push_back(u);
          }
        }
      }
      std::sort(scratch.begin(), scratch.end(), byDegreeLess);
      for (idx_t u : scratch) frontier.push(u);
    }
  }
  FGHP_ASSERT(order.size() == uz(n));

  // Reverse, then rank rows and columns independently: each side's relative
  // order within the joint reversed sweep becomes its permutation.
  BipartiteOrdering out;
  out.rowNew.resize(uz(nRows));
  out.colNew.resize(uz(nCols));
  idx_t rowRank = 0, colRank = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (*it < nRows)
      out.rowNew[uz(*it)] = rowRank++;
    else
      out.colNew[uz(*it - nRows)] = colRank++;
  }
  return out;
}

}  // namespace fghp::sparse
