// Synthetic sparse-matrix generators.
//
// The paper evaluates on 14 matrices from the UF collection / netlib LP sets
// that are not redistributable here, so sparse/testsuite.hpp builds synthetic
// structural analogs from these parameterized generators:
//
//  * stencil2d / stencil3d   — PDE discretizations (sherman3-class),
//  * geometric_matrix        — power networks, FEM meshes (bcspwr10,
//                              vibrobox-class): random geometric graphs with
//                              degree floors/caps,
//  * skewed_square           — LP constraint matrices (ken/cre/cq9/...-class):
//                              modest row degrees, heavy-tailed column degrees
//                              with a handful of very dense columns,
//  * block_ring              — block-structured optimization problems
//                              (finan512-class): many small coupled blocks
//                              plus global hub rows,
//  * random_square / banded / dense_square / identity — test utilities.
//
// All generators are deterministic in (parameters, seed).
#pragma once

#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace fghp::sparse {

/// 5-point Laplacian pattern on an nx-by-ny grid (values: 4 on the diagonal,
/// -1 off-diagonal). Symmetric, full diagonal.
Csr stencil2d(idx_t nx, idx_t ny);

/// 7-point pattern on an nx*ny*nz grid where each symmetric neighbor pair is
/// kept with probability keepProb (1.0 = full stencil). Full diagonal.
Csr stencil3d(idx_t nx, idx_t ny, idx_t nz, double keepProb, std::uint64_t seed);

struct GeometricParams {
  idx_t n = 0;             ///< number of vertices (rows/cols)
  double avgOffDiagDeg = 4.0;  ///< target mean off-diagonal entries per row
  idx_t minOffDiagDeg = 1;     ///< floor, enforced by padding with near neighbors
  idx_t maxOffDiagDeg = 64;    ///< cap, enforced during edge insertion
  idx_t numHubs = 0;           ///< high-degree vertices (exempt from the cap)
  idx_t hubDegree = 0;         ///< target off-diagonal degree of each hub
  bool includeDiagonal = true;
};

/// Symmetric matrix of a random geometric graph on the unit square (radius
/// chosen from avgOffDiagDeg; grid-hashed neighbor search).
Csr geometric_matrix(const GeometricParams& p, std::uint64_t seed);

struct SkewedParams {
  idx_t n = 0;            ///< rows = cols
  idx_t targetNnz = 0;    ///< approximate total nonzeros (within a few %)
  idx_t minPerRow = 1;    ///< row floor, enforced by a padding pass
  idx_t minPerCol = 0;    ///< column floor, enforced in the degree plan
  idx_t maxColDegree = 100;  ///< degree of the densest columns
  idx_t numDenseCols = 8;    ///< columns drawn near maxColDegree (globally coupled)
  double alpha = 1.7;     ///< power-law exponent of the remaining column degrees
  double bandFraction = 0.35;  ///< fraction of local pins placed near the diagonal
  idx_t bandWidth = 128;       ///< half-width of the diagonal band (wraps)
  /// Block-angular structure (multicommodity / staircase LPs): ordinary
  /// columns place a pin inside their own contiguous block with probability
  /// localFraction, anywhere otherwise. numBlocks = 1 disables it.
  idx_t numBlocks = 1;
  double localFraction = 0.9;
  /// Staircase coupling: when > 0, cross-block pins land in the first
  /// couplingWidth rows of the *next* block instead of uniformly at random —
  /// many columns then share few coupling rows, the structure that lets a
  /// 2D (per-nonzero) decomposition beat any 1D row partition.
  idx_t couplingWidth = 0;
  /// Fraction of cross-block pins that ignore the coupling window and land
  /// uniformly anywhere (unstructured coupling that no model can avoid
  /// paying for; raises the absolute volume floor).
  double uniformCrossFraction = 0.0;
  bool includeDiagonal = true;
};

/// Nonsymmetric square LP-like matrix with heavy-tailed column degrees.
Csr skewed_square(const SkewedParams& p, std::uint64_t seed);

struct BlockRingParams {
  idx_t numBlocks = 8;
  idx_t blockSize = 64;
  idx_t intraPicksPerNode = 3;  ///< random in-block partners per node (symmetric)
  idx_t ringPicksPerNode = 0;   ///< partners in the next block (ring coupling)
  idx_t numHubs = 0;            ///< global hub vertices
  idx_t hubDegree = 0;          ///< connections per hub (symmetric)
};

/// Block-structured symmetric matrix: blocks of locally random coupling, a
/// ring between consecutive blocks, and optional global hubs. Full diagonal.
Csr block_ring(const BlockRingParams& p, std::uint64_t seed);

/// Square matrix with ~nnzPerRow uniformly random entries per row
/// (diagonal optionally guaranteed). General-purpose test workload.
Csr random_square(idx_t n, idx_t nnzPerRow, std::uint64_t seed, bool withDiagonal = true);

/// Band matrix: all entries with |i-j| <= halfBandwidth.
Csr banded(idx_t n, idx_t halfBandwidth);

/// Fully dense square pattern (small n only).
Csr dense_square(idx_t n);

/// Identity pattern.
Csr identity(idx_t n);

}  // namespace fghp::sparse
