// Compressed Sparse Row matrix — the workhorse format of the library.
//
// A Csr also doubles as the CSC view of its transpose: `transpose(A)` gives
// column-major access to A, which the models use to enumerate column nonzero
// patterns.
#pragma once

#include <span>
#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace fghp::sparse {

class Csr {
 public:
  Csr() = default;

  /// Takes ownership of fully-formed CSR arrays. rowPtr must have
  /// numRows + 1 monotone entries with rowPtr[0] == 0; colInd/values sizes
  /// must equal rowPtr.back(); column indices must be in range and strictly
  /// increasing within each row. Violations throw std::invalid_argument.
  Csr(idx_t numRows, idx_t numCols, std::vector<idx_t> rowPtr,
      std::vector<idx_t> colInd, std::vector<double> values);

  idx_t num_rows() const { return numRows_; }
  idx_t num_cols() const { return numCols_; }
  idx_t nnz() const { return numRows_ == 0 ? 0 : rowPtr_[static_cast<std::size_t>(numRows_)]; }
  bool is_square() const { return numRows_ == numCols_; }

  /// Number of stored entries in a row.
  idx_t row_size(idx_t row) const {
    return rowPtr_[static_cast<std::size_t>(row) + 1] - rowPtr_[static_cast<std::size_t>(row)];
  }

  /// Column indices of a row, sorted ascending.
  std::span<const idx_t> row_cols(idx_t row) const {
    FGHP_ASSERT(row >= 0 && row < numRows_);
    const auto b = static_cast<std::size_t>(rowPtr_[static_cast<std::size_t>(row)]);
    const auto e = static_cast<std::size_t>(rowPtr_[static_cast<std::size_t>(row) + 1]);
    return {colInd_.data() + b, e - b};
  }

  /// Values of a row, aligned with row_cols().
  std::span<const double> row_vals(idx_t row) const {
    const auto b = static_cast<std::size_t>(rowPtr_[static_cast<std::size_t>(row)]);
    const auto e = static_cast<std::size_t>(rowPtr_[static_cast<std::size_t>(row) + 1]);
    return {values_.data() + b, e - b};
  }

  const std::vector<idx_t>& row_ptr() const { return rowPtr_; }
  const std::vector<idx_t>& col_ind() const { return colInd_; }
  const std::vector<double>& values() const { return values_; }

  /// True if a_{row,col} is stored (binary search within the row).
  bool has_entry(idx_t row, idx_t col) const;

  /// Number of stored diagonal entries (square matrices only).
  idx_t num_diag_entries() const;

  friend bool operator==(const Csr&, const Csr&) = default;

 private:
  idx_t numRows_ = 0;
  idx_t numCols_ = 0;
  std::vector<idx_t> rowPtr_{0};
  std::vector<idx_t> colInd_;
  std::vector<double> values_;
};

}  // namespace fghp::sparse
