// The paper's 14-matrix test suite (Table 1), reproduced as deterministic
// synthetic structural analogs (see DESIGN.md §3 for the substitution
// rationale). Each entry records the paper's reference statistics so the
// Table 1 bench can print paper-vs-generated side by side.
#pragma once

#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace fghp::sparse {

/// Table 1 reference row (the paper's reported values).
struct PaperStats {
  idx_t rows = 0;      ///< number of rows/cols
  idx_t nnz = 0;       ///< total nonzeros
  idx_t minPerRowCol = 0;
  idx_t maxPerRowCol = 0;
  double avgPerRowCol = 0.0;
};

struct SuiteEntry {
  std::string name;        ///< paper's matrix name (e.g. "ken-11")
  std::string domain;      ///< application domain, for documentation
  PaperStats paper;        ///< Table 1 values
  bool symmetric = false;  ///< structural symmetry of the analog
};

/// The 14 suite entries in the paper's order (increasing nonzero count).
const std::vector<SuiteEntry>& suite();

/// Looks up a suite entry by name; throws std::invalid_argument if unknown.
const SuiteEntry& suite_entry(const std::string& name);

/// Generates the synthetic analog of a named matrix.
///
/// scale in (0, 1] shrinks rows and nonzeros proportionally (quick-mode
/// benches); scale == 1 reproduces the Table 1 dimensions. Deterministic in
/// (name, seed, scale).
Csr make_matrix(const std::string& name, std::uint64_t seed = 1, double scale = 1.0);

/// Names of all suite matrices in paper order.
std::vector<std::string> suite_names();

}  // namespace fghp::sparse
