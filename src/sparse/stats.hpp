// Structural statistics of a sparse matrix — the quantities reported in the
// paper's Table 1 (rows/cols, total nonzeros, min/max/avg nonzeros per
// row/column).
#pragma once

#include <string>

#include "sparse/csr.hpp"

namespace fghp::sparse {

struct MatrixStats {
  idx_t numRows = 0;
  idx_t numCols = 0;
  idx_t nnz = 0;

  idx_t minPerRow = 0;
  idx_t maxPerRow = 0;
  double avgPerRow = 0.0;

  idx_t minPerCol = 0;
  idx_t maxPerCol = 0;
  double avgPerCol = 0.0;

  /// min/max over rows AND columns combined, as Table 1 reports a single
  /// "per row/col" triple for square matrices.
  idx_t minPerRowCol = 0;
  idx_t maxPerRowCol = 0;
  double avgPerRowCol = 0.0;

  idx_t numDiagEntries = 0;  ///< structurally present diagonal entries
  bool structurallySymmetric = false;
};

/// Computes all statistics in one pass over the matrix (plus one transpose).
MatrixStats compute_stats(const Csr& a);

/// One-line human-readable summary.
std::string to_string(const MatrixStats& s);

}  // namespace fghp::sparse
