// Matrix reordering utilities: symmetric permutations, general row/column
// permutations, bandwidth, and reverse Cuthill-McKee ordering — the
// standard preprocessing companions of a decomposition library (solvers
// reorder for bandwidth/fill before distributing).
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace fghp::sparse {

/// Maximum |i - j| over stored entries (0 for diagonal/empty matrices).
idx_t bandwidth(const Csr& a);

/// B = P A P^T for a square matrix: entry (i, j) moves to
/// (newIndex[i], newIndex[j]). newIndex must be a permutation of 0..n-1.
Csr permute_symmetric(const Csr& a, const std::vector<idx_t>& newIndex);

/// General B[rowNew[i], colNew[j]] = A[i, j].
Csr permute(const Csr& a, const std::vector<idx_t>& rowNew, const std::vector<idx_t>& colNew);

/// Reverse Cuthill-McKee ordering of the symmetrized pattern: BFS from a
/// minimum-degree vertex of each component, neighbors visited in increasing
/// degree, final order reversed. Returns newIndex (old -> new); applying it
/// with permute_symmetric typically shrinks the bandwidth substantially.
std::vector<idx_t> rcm_ordering(const Csr& a);

/// Independent row and column permutations (old -> new) of a rectangular
/// pattern, produced by one joint ordering sweep of its bipartite
/// row/column graph.
struct BipartiteOrdering {
  std::vector<idx_t> rowNew;  ///< size nRows
  std::vector<idx_t> colNew;  ///< size nCols
};

/// Reverse Cuthill-McKee over the bipartite graph of an arbitrary (possibly
/// rectangular) pattern given as row-grouped index arrays: row r's columns
/// are colIdx[rowPtr[r] .. rowPtr[r+1]). One BFS orders rows and columns
/// jointly (min-degree seed per component, neighbors by increasing degree,
/// final order reversed), so rows that share columns land near each other
/// and vice versa — the cache-locality reordering spmv::compile_plan applies
/// inside each processor's local block (DESIGN.md §12). Columns referenced
/// by no row are legal; they sort to the end of the column permutation.
BipartiteOrdering bipartite_rcm(idx_t nRows, idx_t nCols,
                                const std::vector<idx_t>& rowPtr,
                                const std::vector<idx_t>& colIdx);

}  // namespace fghp::sparse
