// Coordinate (triplet) sparse matrix format — the assembly/interchange
// format. Generators and the Matrix Market reader produce COO; everything
// else consumes CSR (see sparse/csr.hpp, sparse/convert.hpp).
#pragma once

#include <vector>

#include "util/types.hpp"

namespace fghp::sparse {

/// One nonzero entry.
struct Triplet {
  idx_t row;
  idx_t col;
  double value;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Coordinate-format sparse matrix. Entries may be unsorted and may contain
/// duplicates until normalize() is called.
class Coo {
 public:
  Coo() = default;
  Coo(idx_t numRows, idx_t numCols);

  idx_t num_rows() const { return numRows_; }
  idx_t num_cols() const { return numCols_; }
  idx_t nnz() const { return static_cast<idx_t>(entries_.size()); }

  /// Appends one entry; indices must be in range.
  void add(idx_t row, idx_t col, double value);

  const std::vector<Triplet>& entries() const { return entries_; }
  std::vector<Triplet>& entries() { return entries_; }

  /// Sorts entries row-major and sums duplicates at the same (row, col).
  /// Entries whose summed value underflows to exactly 0.0 are *kept*
  /// (structural zeros matter to the decomposition models).
  void normalize();

  /// True if entries are row-major sorted with no duplicate coordinates.
  bool is_normalized() const;

  /// Mirror entries across the diagonal (a_ij -> also a_ji), skipping
  /// diagonal entries; used to expand symmetric Matrix Market files and to
  /// symmetrize generator output. Does not normalize.
  void symmetrize();

 private:
  idx_t numRows_ = 0;
  idx_t numCols_ = 0;
  std::vector<Triplet> entries_;
};

}  // namespace fghp::sparse
