#include "sparse/coo.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace fghp::sparse {

Coo::Coo(idx_t numRows, idx_t numCols) : numRows_(numRows), numCols_(numCols) {
  FGHP_REQUIRE(numRows >= 0 && numCols >= 0, "matrix dimensions must be non-negative");
}

void Coo::add(idx_t row, idx_t col, double value) {
  FGHP_ASSERT(row >= 0 && row < numRows_);
  FGHP_ASSERT(col >= 0 && col < numCols_);
  entries_.push_back({row, col, value});
}

void Coo::normalize() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].row == entries_[i].row &&
        entries_[out - 1].col == entries_[i].col) {
      entries_[out - 1].value += entries_[i].value;
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);
}

bool Coo::is_normalized() const {
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const auto& a = entries_[i - 1];
    const auto& b = entries_[i];
    if (a.row > b.row || (a.row == b.row && a.col >= b.col)) return false;
  }
  return true;
}

void Coo::symmetrize() {
  FGHP_REQUIRE(numRows_ == numCols_, "symmetrize requires a square matrix");
  const std::size_t n = entries_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Triplet t = entries_[i];
    if (t.row != t.col) entries_.push_back({t.col, t.row, t.value});
  }
}

}  // namespace fghp::sparse
