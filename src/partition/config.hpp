// Shared configuration for the multilevel partitioners (hypergraph and
// graph). Defaults reproduce the paper's setup: eps = 0.03 (the "< 3%
// imbalance" of §4), connectivity-minus-one objective, PaToH-style
// agglomerative coarsening.
#pragma once

#include <cstdint>
#include <string>

#include "hypergraph/metrics.hpp"
#include "util/cancel.hpp"
#include "util/types.hpp"

namespace fghp::part {

enum class Coarsening {
  kHeavyConnectivity,  ///< HCM: pairwise matching by shared-net cost
  kAgglomerative,      ///< HCC: absorption clustering (PaToH default)
  kRandomMatching,     ///< ablation baseline
  kNone,               ///< ablation baseline: flat (no multilevel)
};

enum class InitialAlgo {
  kGreedyGrowing,  ///< GHG: grow one side by best-gain moves from a seed
  kRandom,         ///< random balanced assignment (+ FM)
  kMixed,          ///< alternate both across the initial runs (default)
};

enum class ValidateLevel {
  kNone,    ///< trust the caller; only debug asserts
  kBasic,   ///< the always-on preconditions (default)
  kStrict,  ///< also deep-validate the hypergraph and the partition between
            ///< pipeline phases (InvariantError on any inconsistency)
};

/// Which fine-grain partitioning engine runs (see DESIGN.md §15). Only the
/// fine-grain model dispatches on this; every other model is multilevel-only.
enum class PartitionMethod {
  kMultilevel,   ///< the paper's PaToH-style multilevel stack (default)
  kGeometric,    ///< recursive weighted-median splits on (row, col) points
  kGeometricFm,  ///< geometric initial partition + one K-way FM refine sweep
  kStreaming,    ///< one-pass greedy assignment with bounded part summaries
};

inline const char* method_name(PartitionMethod m) {
  switch (m) {
    case PartitionMethod::kMultilevel: return "multilevel";
    case PartitionMethod::kGeometric: return "geometric";
    case PartitionMethod::kGeometricFm: return "geometric-fm";
    case PartitionMethod::kStreaming: return "streaming";
  }
  return "?";
}

/// Parses a --method string; returns false on an unknown name.
inline bool parse_method(const std::string& name, PartitionMethod& out) {
  if (name == "multilevel") out = PartitionMethod::kMultilevel;
  else if (name == "geometric") out = PartitionMethod::kGeometric;
  else if (name == "geometric-fm") out = PartitionMethod::kGeometricFm;
  else if (name == "streaming") out = PartitionMethod::kStreaming;
  else return false;
  return true;
}

struct PartitionConfig {
  /// Maximum allowed imbalance ratio eps of eq. (1).
  double epsilon = 0.03;

  /// Master seed; every run is deterministic in (inputs, seed).
  std::uint64_t seed = 1;

  /// Objective: eq. (3) connectivity-1 (the paper) or eq. (2) cut-net.
  hg::CutMetric metric = hg::CutMetric::kConnectivity;

  /// Which fine-grain engine runs: the multilevel stack (paper quality), the
  /// geometric fast path, geometric + one FM sweep, or one-pass streaming.
  /// Quality-vs-time tradeoffs are measured by bench/bench_pareto.
  PartitionMethod method = PartitionMethod::kMultilevel;

  /// HCM measures best on fine-grain hypergraphs (ablation A1); the
  /// agglomerative policy trades a little quality for fewer levels.
  Coarsening coarsening = Coarsening::kHeavyConnectivity;

  /// Coarsening stops when this many vertices remain...
  idx_t coarsenTo = 100;
  /// ...or a level shrinks by less than this factor.
  double minReductionFactor = 0.95;
  idx_t maxCoarsenLevels = 64;

  /// Nets larger than this are ignored while scoring mates (0 = auto:
  /// max(64, |V|/20)). Huge nets are almost always cut anyway and scoring
  /// through them costs O(|net|^2) per level.
  idx_t maxNetSizeForMatching = 0;

  /// Number of initial-partitioning attempts at the coarsest level.
  idx_t numInitialRuns = 8;
  InitialAlgo initial = InitialAlgo::kMixed;

  /// FM refinement: maximum passes per level and the early-exit window
  /// (abort a pass after this many consecutive moves without a new best,
  /// scaled by vertex count but never below minFmMoves).
  idx_t maxFmPasses = 3;
  double fmEarlyExitFraction = 0.25;
  idx_t minFmMoves = 128;

  /// Greedy direct K-way polish after recursive bisection (extension over
  /// the paper's PaToH pipeline; ablation A2 measures its effect).
  bool kwayRefine = true;
  idx_t kwayRefinePasses = 2;

  /// Iterated V-cycles after recursive bisection: restricted coarsening +
  /// multilevel K-way refinement (see partition/hg/vcycle.hpp). Each cycle
  /// stops early when it yields no improvement.
  idx_t vcycles = 2;

  /// Independent full restarts of the hypergraph partitioner (different
  /// derived seeds); the best cutsize wins. 1 = single run (default).
  idx_t numRestarts = 1;

  /// Threads for task-parallel recursive bisection. 0 = auto (FGHP_THREADS
  /// if set, else hardware concurrency); 1 = the serial code path. The
  /// partition is identical at every thread count: each recursion branch's
  /// Rng stream is derived before the branches fork.
  idx_t numThreads = 0;

  /// Sub-problems with fewer vertices than this recurse serially — forking
  /// a task costs more than partitioning a tiny side.
  idx_t minParallelVertices = 2048;

  /// Attempts per bisection node before degrading to the deterministic
  /// greedy split: attempt 0 is the normal run; each retry reseeds the Rng
  /// stream and relaxes the per-side caps. Every retry and fallback is
  /// recorded in the warning log and counted in HgResult::numRecoveries.
  idx_t maxBisectAttempts = 3;

  /// Cooperative cancellation / deadline for this run (util/cancel.hpp).
  /// Default-constructed = inactive: no deadline, near-zero check-point cost,
  /// and the partition stays bit-identical to a build without this layer.
  cancel::CancelToken cancel;

  /// When the deadline budget runs low (or out), degrade remaining
  /// recursive-bisection subtrees — full multilevel -> coarsen-light ->
  /// deterministic greedy split — instead of throwing DeadlineExceededError,
  /// so an expiring request still returns a valid, balance-feasible
  /// partition. Degraded nodes are counted in HgResult/GpResult::numDegraded.
  /// A manual cancel() always throws regardless of this flag.
  bool degradeOnDeadline = true;

  /// How much consistency checking runs between pipeline phases.
  ValidateLevel validateLevel = ValidateLevel::kBasic;

  /// Fault-injection spec installed for this run (see util/fault.hpp);
  /// empty = leave the process-global spec (FGHP_FAULT_SPEC) in place.
  std::string faultSpec;

  /// When non-empty, tracing is enabled for this partitioner run and a
  /// Chrome trace-event JSON file is written here when the run finishes
  /// (see util/trace.hpp). Empty = leave process-global tracing (FGHP_TRACE)
  /// in charge.
  std::string traceOut;
};

}  // namespace fghp::part
