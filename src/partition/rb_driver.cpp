// The one translation unit that owns the recursive-bisection orchestration:
// fork-join task decomposition, deterministic RNG stream derivation, the
// recovery ladder, cut telescoping, phase timers, fault arming and strict
// revalidation. Explicitly instantiated for the hypergraph and graph problem
// traits at the bottom — nothing here may depend on which family it serves
// except through the Traits hooks.
#include "partition/rb_driver.hpp"

#include <array>
#include <atomic>
#include <cmath>
#include <sstream>

#include "partition/geo/rb_traits.hpp"
#include "partition/gp/rb_traits.hpp"
#include "partition/hg/rb_traits.hpp"
#include "partition/phase_timers.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace fghp::part {

double per_level_epsilon(double epsilon, idx_t K) {
  if (K <= 2) return epsilon;
  const double levels = std::ceil(std::log2(static_cast<double>(K)));
  return std::pow(1.0 + epsilon, 1.0 / levels) - 1.0;
}

namespace rb {

namespace {

/// Degradation rungs for a bisection node under a deadline (cheapest last).
enum class NodeMode { kFull, kLight, kGreedy };

/// Cost-model constants for the degradation ladder, in microseconds per
/// problem-size unit (vertex + pin/edge) per recursion level. Deliberately
/// pessimistic: over-estimating cost degrades a little early and still
/// returns in time; under-estimating blows the deadline. Calibrated against
/// the bench_table1 suite on a ~3 GHz core.
constexpr double kFullUsPerUnit = 1.0;
constexpr double kLightUsPerUnit = 0.2;

template <class Traits>
struct Recurser {
  using Problem = typename Traits::Problem;
  using Part = typename Traits::Partition;

  const PartitionConfig& cfg;
  double epsLevel;
  std::vector<idx_t>& finalPart;          // indexed by original vertex id
  const std::vector<idx_t>& fixedPart;    // original vertex -> pinned part (or empty)
  ThreadPool* pool = nullptr;             // nullptr = serial recursion
  // The two subtrees of a bisection write disjoint finalPart ranges, so the
  // only shared accumulations are the cut total and the recovery count;
  // integer adds commute, keeping both exact and thread-count independent.
  std::atomic<weight_t> cutAccum{0};
  std::atomic<idx_t> recoveries{0};
  std::atomic<idx_t> degraded{0};

  /// Picks this node's rung on the degradation ladder. Without a deadline
  /// (or with degradation disabled) the answer is always kFull and nothing
  /// below this line runs, preserving bit-identical no-deadline partitions.
  /// With one, the remaining budget is compared against a cost-model
  /// estimate for the whole subtree rooted here (size x levels x per-unit
  /// cost): too little even for the light rung means the deterministic
  /// greedy split, enough for light but not full means coarsen-light.
  NodeMode pick_mode(const Problem& h, idx_t K, bool deadlineExpired) const {
    if (!cfg.degradeOnDeadline || !cfg.cancel.has_deadline()) return NodeMode::kFull;
    if (deadlineExpired) return NodeMode::kGreedy;
    const double levels = std::ceil(std::log2(static_cast<double>(std::max<idx_t>(K, 2))));
    const double units = Traits::problem_size(h) * levels;
    const double leftUs = static_cast<double>(cfg.cancel.remaining_ms()) * 1000.0;
    if (leftUs < units * kLightUsPerUnit) return NodeMode::kGreedy;
    if (leftUs < units * kFullUsPerUnit) return NodeMode::kLight;
    return NodeMode::kFull;
  }

  /// Records one ladder demotion (trace instant + metric + warning).
  void note_degraded(NodeMode mode, idx_t partOffset, idx_t K) {
    degraded.fetch_add(1, std::memory_order_relaxed);
    static metrics::Counter& counter = metrics::counter("cancel.degraded");
    counter.add();
    trace::instant("cancel", "rb.degraded", "part0", partOffset, "mode",
                   mode == NodeMode::kLight ? 1 : 2);
    std::ostringstream os;
    os << "deadline budget low: bisection subtree at part offset " << partOffset << " (k="
       << K << ") degraded to " << (mode == NodeMode::kLight ? "coarsen-light" : "greedy split");
    push_warning(os.str());
  }

  /// One bisection with bounded recovery. Attempt 0 replays the normal
  /// stream (byte-identical to the non-recovering code when it succeeds);
  /// each retry derives a fresh Rng stream from the same base and widens
  /// the per-side caps by 50% more of the original slack. An infeasible
  /// result (side over its cap) is retried like a thrown error, but the
  /// best complete partition seen is kept as the answer if no attempt is
  /// feasible — matching the old best-effort contract. Only when *every*
  /// attempt throws does the node degrade to the deterministic greedy
  /// split. All decisions are functions of (inputs, seed, fault spec), so
  /// the outcome is identical at any thread count.
  Part bisect_with_recovery(const Problem& h, const std::array<weight_t, 2>& target,
                            const std::array<weight_t, 2>& maxWeight,
                            const FixedSides& fixed, const Rng& base, idx_t partOffset,
                            const PartitionConfig& nodeCfg) {
    const idx_t attempts = std::max<idx_t>(1, nodeCfg.maxBisectAttempts);
    Part best;
    bool haveBest = false;
    bool deadlineHit = false;
    for (idx_t a = 0; a < attempts && !deadlineHit; ++a) {
      Rng attemptRng = base;
      for (idx_t i = 0; i < a; ++i) attemptRng = attemptRng.spawn();
      std::array<weight_t, 2> cap = maxWeight;
      if (a > 0) {
        for (std::size_t s = 0; s < 2; ++s) {
          const double slack = static_cast<double>(maxWeight[s] - target[s]);
          cap[s] = target[s] +
                   static_cast<weight_t>(std::ceil(slack * (1.0 + 0.5 * a))) + a;
        }
      }
      try {
        fault::check(a == 0 ? Traits::kBisectSite : Traits::kRetrySite, partOffset + 1);
        Part p = Traits::bisect(h, target, cap, nodeCfg, attemptRng, fixed);
        const bool feasible =
            p.part_weight(0) <= cap[0] && p.part_weight(1) <= cap[1];
        if (feasible) {
          if (a > 0) {
            recoveries.fetch_add(1, std::memory_order_relaxed);
            trace::instant("recovery", "rb.retry_recovered", "part0", partOffset,
                           "attempt", a + 1);
            std::ostringstream os;
            os << "bisection at part offset " << partOffset << " recovered on attempt "
               << a + 1 << " of " << attempts << " (reseeded rng, relaxed caps)";
            push_warning(os.str());
          }
          return p;
        }
        std::ostringstream os;
        os << "infeasible bisection at part offset " << partOffset << " (attempt "
           << a + 1 << " of " << attempts << "): side weights " << p.part_weight(0)
           << "/" << p.part_weight(1) << " exceed caps " << cap[0] << "/" << cap[1];
        if (!haveBest) {
          best = std::move(p);
          haveBest = true;
        }
        throw InfeasibleError(os.str());
      } catch (const CancelledError&) {
        // A manual cancel is a request to stop, not a failure to recover
        // from: retrying would defeat the whole cancellation layer.
        throw;
      } catch (const DeadlineExceededError&) {
        if (!nodeCfg.degradeOnDeadline) throw;
        // The clock ran out mid-bisection (an inner FM/coarsen check-point
        // fired): skip the remaining attempts and drop straight to the
        // ladder's floor, the deterministic greedy split.
        deadlineHit = true;
      } catch (const std::exception& e) {
        trace::instant("recovery", "rb.attempt_failed", "part0", partOffset, "attempt",
                       a + 1);
        std::ostringstream os;
        os << "bisection attempt " << a + 1 << " of " << attempts << " at part offset "
           << partOffset << " failed: " << e.what();
        push_warning(os.str());
      }
    }
    if (deadlineHit) {
      note_degraded(NodeMode::kGreedy, partOffset, 2);
      return Traits::greedy_fallback(h, target, fixed);
    }
    recoveries.fetch_add(1, std::memory_order_relaxed);
    if (haveBest) {
      // Every attempt was infeasible but at least one completed; keep the
      // first (lowest-cut FM output) and let the K-way rebalance repair it.
      trace::instant("recovery", "rb.best_effort", "part0", partOffset);
      push_warning("bisection at part offset " + std::to_string(partOffset) +
                   " stayed infeasible after all attempts; keeping best-effort result");
      return best;
    }
    trace::instant("recovery", "rb.greedy_fallback", "part0", partOffset);
    push_warning("bisection at part offset " + std::to_string(partOffset) +
                 " failed every attempt; degrading to the deterministic greedy split");
    return Traits::greedy_fallback(h, target, fixed);
  }

  void run(const Problem& h, const std::vector<idx_t>& toOrig, idx_t K,
           idx_t partOffset, Rng rng) {
    if (K == 1 || h.num_vertices() == 0) {
      for (idx_t v = 0; v < h.num_vertices(); ++v)
        finalPart[static_cast<std::size_t>(toOrig[static_cast<std::size_t>(v)])] = partOffset;
      return;
    }

    // One span per bisection node, recorded on whichever worker ran it (the
    // exported tid shows the fork-join schedule); parts [part0, part0 + k).
    trace::TraceScope span("rb", "rb.node", "part0", partOffset, "k", K);

    // Cooperative check-point at every node, before any work for the
    // subtree. The ordinal is the node's part offset + 1 — scheduling
    // independent, so an injected cancellation (cancel.rb.node:N) hits the
    // same logical node at any thread count. An expired deadline throws
    // only when degradation is off; otherwise pick_mode demotes the node.
    const cancel::Status st =
        cancel::check_point(cfg.cancel, "rb.node", "cancel.rb.node", partOffset + 1,
                            /*deadlineThrows=*/!cfg.degradeOnDeadline);
    const NodeMode mode = pick_mode(h, K, st == cancel::Status::kDeadlineExpired);

    const idx_t k0 = K / 2;
    const idx_t k1 = K - k0;
    const weight_t total = h.total_vertex_weight();
    std::array<weight_t, 2> target;
    target[0] = static_cast<weight_t>(
        std::llround(static_cast<double>(total) * static_cast<double>(k0) /
                     static_cast<double>(K)));
    target[1] = total - target[0];
    std::array<weight_t, 2> maxWeight = {
        static_cast<weight_t>(std::floor(static_cast<double>(target[0]) * (1.0 + epsLevel))),
        static_cast<weight_t>(std::floor(static_cast<double>(target[1]) * (1.0 + epsLevel)))};
    // Degenerate tiny sub-problems: never cap below the targets themselves.
    maxWeight[0] = std::max(maxWeight[0], target[0]);
    maxWeight[1] = std::max(maxWeight[1], target[1]);

    // Pin pre-assigned vertices to the side containing their final part.
    FixedSides fixed;
    if (!fixedPart.empty()) {
      fixed.assign(static_cast<std::size_t>(h.num_vertices()), -1);
      bool any = false;
      for (idx_t v = 0; v < h.num_vertices(); ++v) {
        const idx_t fp = fixedPart[static_cast<std::size_t>(toOrig[static_cast<std::size_t>(v)])];
        if (fp == kInvalidIdx) continue;
        FGHP_ASSERT(fp >= partOffset && fp < partOffset + K);
        fixed[static_cast<std::size_t>(v)] = fp - partOffset < k0 ? 0 : 1;
        any = true;
      }
      if (!any) fixed.clear();
    }

    // Child streams are derived *before* the bisection consumes rng and
    // before any fork, so every subtree sees the same stream at any thread
    // count (DESIGN.md invariant 7).
    Rng childRng0 = rng.spawn();
    Rng childRng1 = rng.spawn();
    Part bisection = [&] {
      switch (mode) {
        case NodeMode::kGreedy:
          // Ladder floor: no budget left for this subtree. The greedy split
          // is deterministic, allocation-light and always feasible enough
          // for the K-way rebalance to finish the job.
          note_degraded(mode, partOffset, K);
          return Traits::greedy_fallback(h, target, fixed);
        case NodeMode::kLight: {
          // Middle rung: a shallow multilevel pass — few coarsening levels,
          // one initial run, one FM pass, no retries.
          note_degraded(mode, partOffset, K);
          PartitionConfig light = cfg;
          light.maxCoarsenLevels = std::min<idx_t>(light.maxCoarsenLevels, 4);
          light.numInitialRuns = 1;
          light.maxFmPasses = 1;
          light.maxBisectAttempts = 1;
          return bisect_with_recovery(h, target, maxWeight, fixed, rng, partOffset, light);
        }
        case NodeMode::kFull: break;
      }
      return bisect_with_recovery(h, target, maxWeight, fixed, rng, partOffset, cfg);
    }();
    if (cfg.validateLevel == ValidateLevel::kStrict)
      Traits::validate_bisection(h, bisection);
    cutAccum.fetch_add(Traits::bisection_cut(h, bisection), std::memory_order_relaxed);

    if (pool != nullptr && h.num_vertices() >= cfg.minParallelVertices) {
      // Fork side 0; recurse into side 1 on this thread. Both sides extract
      // from (h, bisection), which outlive the join below.
      TaskGroup fork(*pool);
      fork.run([this, &h, &bisection, &toOrig, k0, partOffset, childRng0] {
        descend(h, bisection, toOrig, 0, k0, partOffset, childRng0);
      });
      descend(h, bisection, toOrig, 1, k1, partOffset + k0, childRng1);
      fork.wait();
    } else {
      descend(h, bisection, toOrig, 0, k0, partOffset, childRng0);
      descend(h, bisection, toOrig, 1, k1, partOffset + k0, childRng1);
    }
  }

  /// Extracts one bisection side, rebases it onto original vertex ids and
  /// recurses into it.
  void descend(const Problem& h, const Part& bisection, const std::vector<idx_t>& toOrig,
               idx_t side, idx_t sideK, idx_t sideOffset, Rng sideRng) {
    RbSide<Traits> ext;
    {
      ScopedPhase phase(Phase::kExtract);
      ext = Traits::extract_side(h, bisection, side, cfg);
      // Rebase the extraction onto original vertex ids.
      for (auto& v : ext.toParent) v = toOrig[static_cast<std::size_t>(v)];
    }
    run(ext.sub, ext.toParent, sideK, sideOffset, sideRng);
  }
};

}  // namespace

template <class Traits>
RbResult<Traits> partition_recursive_rb(const typename Traits::Problem& problem, idx_t K,
                                        const PartitionConfig& cfg, Rng& rng,
                                        const std::vector<idx_t>& fixedPart) {
  FGHP_REQUIRE(K >= 1, "K must be positive");
  FGHP_REQUIRE(fixedPart.empty() ||
                   fixedPart.size() == static_cast<std::size_t>(problem.num_vertices()),
               "fixedPart size mismatch");
  for (idx_t fp : fixedPart)
    FGHP_REQUIRE(fp == kInvalidIdx || (fp >= 0 && fp < K), "fixed part out of range");

  std::vector<idx_t> finalPart(static_cast<std::size_t>(problem.num_vertices()), kInvalidIdx);
  Recurser<Traits> rec{cfg, per_level_epsilon(cfg.epsilon, K), finalPart, fixedPart,
                       ThreadPool::for_request(cfg.numThreads)};

  std::vector<idx_t> identity(static_cast<std::size_t>(problem.num_vertices()));
  for (idx_t v = 0; v < problem.num_vertices(); ++v)
    identity[static_cast<std::size_t>(v)] = v;
  rec.run(problem, identity, K, 0, rng.spawn());

  RbResult<Traits> out{typename Traits::Partition(problem, K, std::move(finalPart)),
                       rec.cutAccum.load(std::memory_order_relaxed),
                       rec.recoveries.load(std::memory_order_relaxed),
                       rec.degraded.load(std::memory_order_relaxed)};
  return out;
}

// The only instantiations: the fine-grain hypergraph stack, the graph
// baseline, and the geometric fast path. New problem families add a traits
// header and a line here.
template RbResult<hgrb::HgRbTraits> partition_recursive_rb<hgrb::HgRbTraits>(
    const hg::Hypergraph&, idx_t, const PartitionConfig&, Rng&, const std::vector<idx_t>&);
template RbResult<gprb::GpRbTraits> partition_recursive_rb<gprb::GpRbTraits>(
    const gp::Graph&, idx_t, const PartitionConfig&, Rng&, const std::vector<idx_t>&);
template RbResult<georb::GeoRbTraits> partition_recursive_rb<georb::GeoRbTraits>(
    const geo::GeoPoints&, idx_t, const PartitionConfig&, Rng&, const std::vector<idx_t>&);

}  // namespace rb
}  // namespace fghp::part
