// Process-global wall-clock accounting of the partitioner pipeline phases
// (coarsen / initial / refine / extract), safe to update from concurrent
// recursive-bisection tasks.
//
// Counters are monotonic; a bench brackets a region with snapshot() and
// subtracts. Times are summed across threads, so under a parallel run the
// phase total can exceed the region's wall time — it measures where the
// *work* goes, which is what the scaling bench reports per phase.
//
// Since the tracing layer landed, this is a thin adapter over trace spans:
// ScopedPhase reads the trace clock once at each end, feeds the elapsed time
// into the phase totals (unchanged bench_* JSON), and emits the same
// interval as a "rb.phase" span when tracing is enabled — one clock source
// powering both views.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "util/trace.hpp"

namespace fghp::part {

enum class Phase : int {
  kCoarsen = 0,  ///< multilevel coarsening (all levels of one bisection)
  kInitial,      ///< initial bisection at the coarsest level
  kRefine,       ///< uncoarsening + FM refinement
  kExtract,      ///< side extraction / cut-net splitting in recursive bisection
};
inline constexpr int kNumPhases = 4;

const char* phase_name(Phase p);

struct PhaseSnapshot {
  std::array<double, kNumPhases> seconds{};

  double operator[](Phase p) const { return seconds[static_cast<std::size_t>(p)]; }
  double total() const;

  /// Elementwise difference (for bracketing a region).
  PhaseSnapshot operator-(const PhaseSnapshot& other) const;
};

class PhaseTimers {
 public:
  void add(Phase p, double seconds);
  PhaseSnapshot snapshot() const;
  void reset();

 private:
  // Nanoseconds in integer atomics: fetch_add is lock-free everywhere and
  // the accumulation order cannot change the total.
  std::array<std::atomic<std::int64_t>, kNumPhases> nanos_{};
};

/// The process-global instance every partitioner run reports into.
PhaseTimers& phase_timers();

/// RAII section: adds the elapsed wall time to a phase on destruction and,
/// when tracing is enabled, emits the interval as a "rb.phase" span carrying
/// the optional (key, val) tag (e.g. the multilevel depth).
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase p, const char* key = nullptr, std::int64_t val = 0)
      : phase_(p), key_(key), val_(val), startNs_(trace::now_ns()) {}
  ~ScopedPhase() {
    const std::uint64_t end = trace::now_ns();
    phase_timers().add(phase_, static_cast<double>(end - startNs_) * 1e-9);
    trace::complete("rb.phase", phase_name(phase_), startNs_, end, key_, val_);
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Phase phase_;
  const char* key_;
  std::int64_t val_;
  std::uint64_t startNs_;
};

}  // namespace fghp::part
