#include "partition/hg/bisect.hpp"

#include <algorithm>

#include "partition/hg/coarsen.hpp"
#include "partition/hg/initial.hpp"
#include "partition/hg/refine.hpp"
#include "partition/phase_timers.hpp"
#include "util/cancel.hpp"
#include "util/fault.hpp"
#include "util/trace.hpp"

namespace fghp::part::hgb {

hg::Partition multilevel_bisect(const hg::Hypergraph& h, const std::array<weight_t, 2>& target,
                                const std::array<weight_t, 2>& maxWeight,
                                const PartitionConfig& cfg, Rng& rng,
                                const hgc::FixedSides& fixed) {
  FGHP_REQUIRE(target[0] + target[1] == h.total_vertex_weight(),
               "bisection targets must sum to the total vertex weight");
  FGHP_REQUIRE(fixed.empty() || fixed.size() == static_cast<std::size_t>(h.num_vertices()),
               "fixed-side vector size mismatch");

  // --- Coarsening phase ---------------------------------------------------
  // levels[i].coarse is the hypergraph one level coarser than level i-1's
  // (level 0 coarsens h itself).
  std::vector<hgc::CoarseLevel> levels;
  const hg::Hypergraph* cur = &h;
  const hgc::FixedSides* curFixed = &fixed;
  if (cfg.coarsening != Coarsening::kNone) {
    ScopedPhase phase(Phase::kCoarsen);
    for (idx_t lvl = 0; lvl < cfg.maxCoarsenLevels; ++lvl) {
      if (cur->num_vertices() <= cfg.coarsenTo) break;
      // Per-coarsen-level check-point; a deadline thrown here is converted
      // into a greedy degradation by the RB driver's recovery ladder.
      cancel::check_point(cfg.cancel, "coarsen.level", nullptr, lvl + 1);
      trace::TraceScope lvlSpan("rb", "coarsen.level", "level", lvl, "verts",
                                cur->num_vertices());
      hgc::CoarseLevel next = hgc::coarsen_one_level(*cur, cfg, rng, *curFixed);
      const double reduction = static_cast<double>(next.coarse.num_vertices()) /
                               static_cast<double>(cur->num_vertices());
      if (reduction > cfg.minReductionFactor) break;  // stagnated
      levels.push_back(std::move(next));
      cur = &levels.back().coarse;
      curFixed = &levels.back().coarseFixed;
    }
  }

  // --- Initial partitioning at the coarsest level --------------------------
  hg::Partition p = [&] {
    ScopedPhase phase(Phase::kInitial);
    return hgi::initial_bisection(*cur, target, maxWeight, cfg, rng, *curFixed);
  }();

  // --- Uncoarsening + refinement -------------------------------------------
  ScopedPhase refinePhase(Phase::kRefine);
  fault::check("fm.refine");
  hgr::BisectionFM fm(cfg);
  fm.set_fixed(curFixed);
  fm.refine(*cur, p, maxWeight, rng);
  for (std::size_t i = levels.size(); i > 0; --i) {
    const hg::Hypergraph& fine = (i >= 2) ? levels[i - 2].coarse : h;
    const hgc::FixedSides& fineFixed = (i >= 2) ? levels[i - 2].coarseFixed : fixed;
    cancel::check_point(cfg.cancel, "refine.level", nullptr, static_cast<long>(i));
    trace::TraceScope lvlSpan("rb", "refine.level", "level",
                              static_cast<std::int64_t>(i - 1), "verts",
                              fine.num_vertices());
    const auto& map = levels[i - 1].fineToCoarse;
    std::vector<idx_t> assignment(static_cast<std::size_t>(fine.num_vertices()));
    for (idx_t v = 0; v < fine.num_vertices(); ++v)
      assignment[static_cast<std::size_t>(v)] = p.part_of(map[static_cast<std::size_t>(v)]);
    p = hg::Partition(fine, 2, std::move(assignment));
    fm.set_fixed(&fineFixed);
    fm.refine(fine, p, maxWeight, rng);
  }
  return p;
}

}  // namespace fghp::part::hgb
