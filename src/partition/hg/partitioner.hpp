// Public facade of the multilevel hypergraph partitioner (the PaToH-style
// engine the fine-grain and 1D hypergraph models run on).
#pragma once

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/metrics.hpp"
#include "hypergraph/partition.hpp"
#include "partition/config.hpp"

namespace fghp::part {

struct HgResult {
  hg::Partition partition;
  weight_t cutsize = 0;       ///< under cfg.metric
  idx_t numCutNets = 0;
  double imbalance = 0.0;     ///< max part weight / avg - 1
  double seconds = 0.0;       ///< wall-clock partitioning time
};

/// Partitions h into K equally-weighted parts minimizing cfg.metric.
/// Deterministic in (h, K, cfg.seed).
///
/// `fixedPart` (optional; one entry per vertex, kInvalidIdx = free) pins
/// vertices to parts — the paper's §3 accommodation of reduction problems
/// whose input/output elements are pre-assigned to processors ("those part
/// vertices must be fixed to corresponding parts during the partitioning").
/// Fixed vertices are honored exactly; refinement never moves them.
HgResult partition_hypergraph(const hg::Hypergraph& h, idx_t K, const PartitionConfig& cfg,
                              const std::vector<idx_t>& fixedPart = {});

}  // namespace fghp::part
