// Public facade of the multilevel hypergraph partitioner (the PaToH-style
// engine the fine-grain and 1D hypergraph models run on).
#pragma once

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/metrics.hpp"
#include "hypergraph/partition.hpp"
#include "partition/config.hpp"

namespace fghp::part {

struct HgResult {
  hg::Partition partition;
  weight_t cutsize = 0;       ///< under cfg.metric
  idx_t numCutNets = 0;
  double imbalance = 0.0;     ///< max part weight / avg - 1
  double seconds = 0.0;       ///< wall-clock partitioning time
  idx_t numRecoveries = 0;    ///< bisection retries/fallbacks taken, summed
                              ///< over every restart (0 = clean run)
  idx_t numDegraded = 0;      ///< RB nodes demoted by the deadline ladder
                              ///< (coarsen-light or greedy; 0 = full quality)
};

/// Partitions h into K equally-weighted parts minimizing cfg.metric.
/// Deterministic in (h, K, cfg.seed).
///
/// `fixedPart` (optional; one entry per vertex, kInvalidIdx = free) pins
/// vertices to parts — the paper's §3 accommodation of reduction problems
/// whose input/output elements are pre-assigned to processors ("those part
/// vertices must be fixed to corresponding parts during the partitioning").
/// Fixed vertices are honored exactly; refinement never moves them.
///
/// Robustness: when cfg.faultSpec is non-empty it is installed as the
/// process fault spec for the duration of the call (util/fault.hpp).
/// Recoverable bisection failures are retried (see hgrb::partition_recursive)
/// and counted in HgResult::numRecoveries; cfg.validateLevel == kStrict
/// additionally runs deep hypergraph and partition invariant checks between
/// pipeline phases, throwing fghp::InvariantError on violation.
///
/// Deadlines: with cfg.cancel carrying a deadline, an expiring run degrades
/// (cfg.degradeOnDeadline, the default) instead of failing — remaining RB
/// subtrees drop to cheaper rungs (counted in numDegraded), the quality
/// polish phases (K-way refine, V-cycles) and remaining restarts are
/// skipped, but the balance repair still runs, so the returned partition is
/// always valid and balance-feasible. A manual cancel() throws
/// CancelledError at the next check-point; with degradation off an expired
/// deadline throws DeadlineExceededError. Metrics and trace capture are
/// still flushed on either throw by the CLI layer.
HgResult partition_hypergraph(const hg::Hypergraph& h, idx_t K, const PartitionConfig& cfg,
                              const std::vector<idx_t>& fixedPart = {});

}  // namespace fghp::part
