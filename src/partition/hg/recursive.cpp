#include "partition/hg/recursive.hpp"

#include "partition/hg/rb_traits.hpp"
#include "partition/rb_driver.hpp"
#include "util/error.hpp"

namespace fghp::part::hgrb {

SideExtract extract_side(const hg::Hypergraph& h, const hg::Partition& bisection, idx_t side,
                         hg::CutMetric metric) {
  FGHP_REQUIRE(bisection.num_parts() == 2, "extract_side expects a bisection");

  SideExtract out;
  std::vector<idx_t> toSub(static_cast<std::size_t>(h.num_vertices()), kInvalidIdx);
  for (idx_t v = 0; v < h.num_vertices(); ++v) {
    if (bisection.part_of(v) == side) {
      toSub[static_cast<std::size_t>(v)] = static_cast<idx_t>(out.toParent.size());
      out.toParent.push_back(v);
    }
  }
  const auto numSub = static_cast<idx_t>(out.toParent.size());

  std::vector<weight_t> vwgt(static_cast<std::size_t>(numSub));
  for (idx_t sv = 0; sv < numSub; ++sv)
    vwgt[static_cast<std::size_t>(sv)] =
        h.vertex_weight(out.toParent[static_cast<std::size_t>(sv)]);

  std::vector<idx_t> xpins{0};
  std::vector<idx_t> pins;
  std::vector<weight_t> costs;
  for (idx_t n = 0; n < h.num_nets(); ++n) {
    const auto pinSpan = h.pins(n);
    idx_t inSide = 0;
    bool cut = false;
    for (idx_t v : pinSpan) {
      if (bisection.part_of(v) == side) {
        ++inSide;
      } else {
        cut = true;
      }
    }
    if (inSide < 2) continue;
    if (cut && metric == hg::CutMetric::kCutNet) continue;  // already fully paid
    for (idx_t v : pinSpan) {
      const idx_t sv = toSub[static_cast<std::size_t>(v)];
      if (sv != kInvalidIdx) pins.push_back(sv);
    }
    xpins.push_back(static_cast<idx_t>(pins.size()));
    costs.push_back(h.net_cost(n));
  }

  out.sub = hg::Hypergraph(numSub, std::move(xpins), std::move(pins), std::move(vwgt),
                           std::move(costs));
  return out;
}

RecursiveResult partition_recursive(const hg::Hypergraph& h, idx_t K,
                                    const PartitionConfig& cfg, Rng& rng,
                                    const std::vector<idx_t>& fixedPart) {
  RbResult<HgRbTraits> r =
      rb::partition_recursive_rb<HgRbTraits>(h, K, cfg, rng, fixedPart);
  return {std::move(r.partition), r.sumOfBisectionCuts, r.numRecoveries, r.numDegraded};
}

}  // namespace fghp::part::hgrb
