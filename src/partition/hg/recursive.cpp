#include "partition/hg/recursive.hpp"

#include <atomic>
#include <cmath>
#include <sstream>

#include "hypergraph/metrics.hpp"
#include "partition/hg/bisect.hpp"
#include "partition/hg/initial.hpp"
#include "partition/hg/refine.hpp"
#include "partition/phase_timers.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace fghp::part::hgrb {

double per_level_epsilon(double epsilon, idx_t K) {
  if (K <= 2) return epsilon;
  const double levels = std::ceil(std::log2(static_cast<double>(K)));
  return std::pow(1.0 + epsilon, 1.0 / levels) - 1.0;
}

SideExtract extract_side(const hg::Hypergraph& h, const hg::Partition& bisection, idx_t side,
                         hg::CutMetric metric) {
  FGHP_REQUIRE(bisection.num_parts() == 2, "extract_side expects a bisection");

  SideExtract out;
  std::vector<idx_t> toSub(static_cast<std::size_t>(h.num_vertices()), kInvalidIdx);
  for (idx_t v = 0; v < h.num_vertices(); ++v) {
    if (bisection.part_of(v) == side) {
      toSub[static_cast<std::size_t>(v)] = static_cast<idx_t>(out.toParent.size());
      out.toParent.push_back(v);
    }
  }
  const auto numSub = static_cast<idx_t>(out.toParent.size());

  std::vector<weight_t> vwgt(static_cast<std::size_t>(numSub));
  for (idx_t sv = 0; sv < numSub; ++sv)
    vwgt[static_cast<std::size_t>(sv)] =
        h.vertex_weight(out.toParent[static_cast<std::size_t>(sv)]);

  std::vector<idx_t> xpins{0};
  std::vector<idx_t> pins;
  std::vector<weight_t> costs;
  for (idx_t n = 0; n < h.num_nets(); ++n) {
    const auto pinSpan = h.pins(n);
    idx_t inSide = 0;
    bool cut = false;
    for (idx_t v : pinSpan) {
      if (bisection.part_of(v) == side) {
        ++inSide;
      } else {
        cut = true;
      }
    }
    if (inSide < 2) continue;
    if (cut && metric == hg::CutMetric::kCutNet) continue;  // already fully paid
    for (idx_t v : pinSpan) {
      const idx_t sv = toSub[static_cast<std::size_t>(v)];
      if (sv != kInvalidIdx) pins.push_back(sv);
    }
    xpins.push_back(static_cast<idx_t>(pins.size()));
    costs.push_back(h.net_cost(n));
  }

  out.sub = hg::Hypergraph(numSub, std::move(xpins), std::move(pins), std::move(vwgt),
                           std::move(costs));
  return out;
}

namespace {

struct Recurser {
  const PartitionConfig& cfg;
  double epsLevel;
  std::vector<idx_t>& finalPart;          // indexed by original vertex id
  const std::vector<idx_t>& fixedPart;    // original vertex -> pinned part (or empty)
  ThreadPool* pool = nullptr;             // nullptr = serial recursion
  // The two subtrees of a bisection write disjoint finalPart ranges, so the
  // only shared accumulations are the cut total and the recovery count;
  // integer adds commute, keeping both exact and thread-count independent.
  std::atomic<weight_t> cutAccum{0};
  std::atomic<idx_t> recoveries{0};

  /// One bisection with bounded recovery. Attempt 0 replays the normal
  /// stream (byte-identical to the non-recovering code when it succeeds);
  /// each retry derives a fresh Rng stream from the same base and widens
  /// the per-side caps by 50% more of the original slack. An infeasible
  /// result (side over its cap) is retried like a thrown error, but the
  /// best complete partition seen is kept as the answer if no attempt is
  /// feasible — matching the old best-effort contract. Only when *every*
  /// attempt throws does the node degrade to the deterministic greedy
  /// split. All decisions are functions of (inputs, seed, fault spec), so
  /// the outcome is identical at any thread count.
  hg::Partition bisect_with_recovery(const hg::Hypergraph& h,
                                     const std::array<weight_t, 2>& target,
                                     const std::array<weight_t, 2>& maxWeight,
                                     const hgc::FixedSides& fixed, const Rng& base,
                                     idx_t partOffset) {
    const idx_t attempts = std::max<idx_t>(1, cfg.maxBisectAttempts);
    hg::Partition best;
    bool haveBest = false;
    for (idx_t a = 0; a < attempts; ++a) {
      Rng attemptRng = base;
      for (idx_t i = 0; i < a; ++i) attemptRng = attemptRng.spawn();
      std::array<weight_t, 2> cap = maxWeight;
      if (a > 0) {
        for (std::size_t s = 0; s < 2; ++s) {
          const double slack = static_cast<double>(maxWeight[s] - target[s]);
          cap[s] = target[s] +
                   static_cast<weight_t>(std::ceil(slack * (1.0 + 0.5 * a))) + a;
        }
      }
      try {
        fault::check(a == 0 ? "rb.bisect" : "rb.retry", partOffset + 1);
        hg::Partition p = hgb::multilevel_bisect(h, target, cap, cfg, attemptRng, fixed);
        const bool feasible =
            p.part_weight(0) <= cap[0] && p.part_weight(1) <= cap[1];
        if (feasible) {
          if (a > 0) {
            recoveries.fetch_add(1, std::memory_order_relaxed);
            std::ostringstream os;
            os << "bisection at part offset " << partOffset << " recovered on attempt "
               << a + 1 << " of " << attempts << " (reseeded rng, relaxed caps)";
            push_warning(os.str());
          }
          return p;
        }
        std::ostringstream os;
        os << "infeasible bisection at part offset " << partOffset << " (attempt "
           << a + 1 << " of " << attempts << "): side weights " << p.part_weight(0)
           << "/" << p.part_weight(1) << " exceed caps " << cap[0] << "/" << cap[1];
        if (!haveBest) {
          best = std::move(p);
          haveBest = true;
        }
        throw InfeasibleError(os.str());
      } catch (const std::exception& e) {
        std::ostringstream os;
        os << "bisection attempt " << a + 1 << " of " << attempts << " at part offset "
           << partOffset << " failed: " << e.what();
        push_warning(os.str());
      }
    }
    recoveries.fetch_add(1, std::memory_order_relaxed);
    if (haveBest) {
      // Every attempt was infeasible but at least one completed; keep the
      // first (lowest-cut FM output) and let the K-way rebalance repair it.
      push_warning("bisection at part offset " + std::to_string(partOffset) +
                   " stayed infeasible after all attempts; keeping best-effort result");
      return best;
    }
    push_warning("bisection at part offset " + std::to_string(partOffset) +
                 " failed every attempt; degrading to the deterministic greedy split");
    return hgi::greedy_bisection(h, target, fixed);
  }

  void run(const hg::Hypergraph& h, const std::vector<idx_t>& toOrig, idx_t K,
           idx_t partOffset, Rng rng) {
    if (K == 1 || h.num_vertices() == 0) {
      for (idx_t v = 0; v < h.num_vertices(); ++v)
        finalPart[static_cast<std::size_t>(toOrig[static_cast<std::size_t>(v)])] = partOffset;
      return;
    }

    const idx_t k0 = K / 2;
    const idx_t k1 = K - k0;
    const weight_t total = h.total_vertex_weight();
    std::array<weight_t, 2> target;
    target[0] = static_cast<weight_t>(
        std::llround(static_cast<double>(total) * static_cast<double>(k0) /
                     static_cast<double>(K)));
    target[1] = total - target[0];
    std::array<weight_t, 2> maxWeight = {
        static_cast<weight_t>(std::floor(static_cast<double>(target[0]) * (1.0 + epsLevel))),
        static_cast<weight_t>(std::floor(static_cast<double>(target[1]) * (1.0 + epsLevel)))};
    // Degenerate tiny sub-problems: never cap below the targets themselves.
    maxWeight[0] = std::max(maxWeight[0], target[0]);
    maxWeight[1] = std::max(maxWeight[1], target[1]);

    // Pin pre-assigned vertices to the side containing their final part.
    hgc::FixedSides fixed;
    if (!fixedPart.empty()) {
      fixed.assign(static_cast<std::size_t>(h.num_vertices()), -1);
      bool any = false;
      for (idx_t v = 0; v < h.num_vertices(); ++v) {
        const idx_t fp = fixedPart[static_cast<std::size_t>(toOrig[static_cast<std::size_t>(v)])];
        if (fp == kInvalidIdx) continue;
        FGHP_ASSERT(fp >= partOffset && fp < partOffset + K);
        fixed[static_cast<std::size_t>(v)] = fp - partOffset < k0 ? 0 : 1;
        any = true;
      }
      if (!any) fixed.clear();
    }

    // Child streams are derived *before* the bisection consumes rng and
    // before any fork, so every subtree sees the same stream at any thread
    // count (DESIGN.md invariant 7).
    Rng childRng0 = rng.spawn();
    Rng childRng1 = rng.spawn();
    hg::Partition bisection =
        bisect_with_recovery(h, target, maxWeight, fixed, rng, partOffset);
    cutAccum.fetch_add(hgr::BisectionFM::compute_cut(h, bisection),
                       std::memory_order_relaxed);

    if (pool != nullptr && h.num_vertices() >= cfg.minParallelVertices) {
      // Fork side 0; recurse into side 1 on this thread. Both sides extract
      // from (h, bisection), which outlive the join below.
      TaskGroup fork(*pool);
      fork.run([this, &h, &bisection, &toOrig, k0, partOffset, childRng0] {
        descend(h, bisection, toOrig, 0, k0, partOffset, childRng0);
      });
      descend(h, bisection, toOrig, 1, k1, partOffset + k0, childRng1);
      fork.wait();
    } else {
      descend(h, bisection, toOrig, 0, k0, partOffset, childRng0);
      descend(h, bisection, toOrig, 1, k1, partOffset + k0, childRng1);
    }
  }

  /// Extracts one bisection side, rebases it onto original vertex ids and
  /// recurses into it.
  void descend(const hg::Hypergraph& h, const hg::Partition& bisection,
               const std::vector<idx_t>& toOrig, idx_t side, idx_t sideK,
               idx_t sideOffset, Rng sideRng) {
    SideExtract ext;
    {
      ScopedPhase phase(Phase::kExtract);
      ext = extract_side(h, bisection, side, cfg.metric);
      // Rebase the extraction onto original vertex ids.
      for (auto& v : ext.toParent) v = toOrig[static_cast<std::size_t>(v)];
    }
    run(ext.sub, ext.toParent, sideK, sideOffset, sideRng);
  }
};

}  // namespace

RecursiveResult partition_recursive(const hg::Hypergraph& h, idx_t K,
                                    const PartitionConfig& cfg, Rng& rng,
                                    const std::vector<idx_t>& fixedPart) {
  FGHP_REQUIRE(K >= 1, "K must be positive");
  FGHP_REQUIRE(fixedPart.empty() ||
                   fixedPart.size() == static_cast<std::size_t>(h.num_vertices()),
               "fixedPart size mismatch");
  for (idx_t fp : fixedPart)
    FGHP_REQUIRE(fp == kInvalidIdx || (fp >= 0 && fp < K), "fixed part out of range");

  std::vector<idx_t> finalPart(static_cast<std::size_t>(h.num_vertices()), kInvalidIdx);
  Recurser rec{cfg, per_level_epsilon(cfg.epsilon, K), finalPart, fixedPart,
               ThreadPool::for_request(cfg.numThreads)};

  std::vector<idx_t> identity(static_cast<std::size_t>(h.num_vertices()));
  for (idx_t v = 0; v < h.num_vertices(); ++v) identity[static_cast<std::size_t>(v)] = v;
  rec.run(h, identity, K, 0, rng.spawn());

  RecursiveResult out{hg::Partition(h, K, std::move(finalPart)),
                      rec.cutAccum.load(std::memory_order_relaxed),
                      rec.recoveries.load(std::memory_order_relaxed)};
  return out;
}

}  // namespace fghp::part::hgrb
