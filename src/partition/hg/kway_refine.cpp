#include "partition/hg/kway_refine.hpp"

#include <algorithm>
#include <cmath>

#include "util/cancel.hpp"
#include "util/sparse_acc.hpp"

namespace fghp::part::hgk {

namespace {

/// Association-list connectivity record of one net: (part, pin count) pairs.
/// Nets in sparse-matrix hypergraphs have small connectivity, so linear
/// scans beat hashing.
class NetParts {
 public:
  idx_t count(idx_t part) const {
    for (const auto& [p, c] : entries_)
      if (p == part) return c;
    return 0;
  }

  idx_t connectivity() const { return static_cast<idx_t>(entries_.size()); }

  void add(idx_t part) {
    for (auto& [p, c] : entries_) {
      if (p == part) {
        ++c;
        return;
      }
    }
    entries_.emplace_back(part, 1);
  }

  void remove(idx_t part) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].first == part) {
        if (--entries_[i].second == 0) {
          entries_[i] = entries_.back();
          entries_.pop_back();
        }
        return;
      }
    }
    FGHP_ASSERT(false && "part not present in net");
  }

  const std::vector<std::pair<idx_t, idx_t>>& entries() const { return entries_; }

 private:
  std::vector<std::pair<idx_t, idx_t>> entries_;
};

}  // namespace

weight_t kway_refine(const hg::Hypergraph& h, hg::Partition& p, const PartitionConfig& cfg,
                     Rng& rng, const std::vector<idx_t>& fixedPart) {
  FGHP_REQUIRE(p.complete(), "kway_refine requires a complete partition");
  const idx_t K = p.num_parts();
  if (K <= 1) return 0;
  auto is_fixed = [&](idx_t v) {
    return !fixedPart.empty() && fixedPart[static_cast<std::size_t>(v)] != kInvalidIdx;
  };

  std::vector<NetParts> nets(static_cast<std::size_t>(h.num_nets()));
  for (idx_t n = 0; n < h.num_nets(); ++n) {
    for (idx_t v : h.pins(n)) nets[static_cast<std::size_t>(n)].add(p.part_of(v));
  }

  const double avg =
      static_cast<double>(h.total_vertex_weight()) / static_cast<double>(K);
  const auto cap = static_cast<weight_t>(std::floor(avg * (1.0 + cfg.epsilon)));

  weight_t totalGain = 0;
  SparseAccumulator<weight_t> gainTo(K);

  for (idx_t passNo = 0; passNo < cfg.kwayRefinePasses; ++passNo) {
    // Quality-only polish: a deadline here just stops refining (the
    // partition between passes is always valid); a cancel still throws.
    if (cancel::check_point(cfg.cancel, "kway.pass", nullptr, passNo + 1,
                            /*deadlineThrows=*/!cfg.degradeOnDeadline) !=
        cancel::Status::kRun)
      break;
    weight_t passGain = 0;
    for (idx_t v : rng.permutation(h.num_vertices())) {
      if (is_fixed(v)) continue;
      const idx_t from = p.part_of(v);

      // Gain of the "leave" side is part-independent; candidate targets are
      // the other parts already touching v's nets.
      weight_t leaveGain = 0;
      weight_t incident = 0;
      gainTo.clear();
      bool boundary = false;
      for (idx_t n : h.nets(v)) {
        const auto& np = nets[static_cast<std::size_t>(n)];
        incident += h.net_cost(n);
        if (np.connectivity() > 1) boundary = true;
        if (np.count(from) == 1) leaveGain += h.net_cost(n);
        for (const auto& [q, c] : np.entries()) {
          if (q != from) gainTo.add(q, h.net_cost(n));
        }
      }
      if (!boundary) continue;

      idx_t bestPart = kInvalidIdx;
      weight_t bestGain = 0;
      for (idx_t q : gainTo.keys()) {
        // arriveLoss = sum of costs of v's nets NOT already touching q;
        // equivalently incidentCost - gainTo[q].
        const weight_t gain = leaveGain - (incident - gainTo.value(q));
        if (gain > bestGain && p.part_weight(q) + h.vertex_weight(v) <= cap) {
          bestGain = gain;
          bestPart = q;
        }
      }
      if (bestPart == kInvalidIdx) continue;

      for (idx_t n : h.nets(v)) {
        nets[static_cast<std::size_t>(n)].remove(from);
        nets[static_cast<std::size_t>(n)].add(bestPart);
      }
      p.move(h, v, bestPart);
      passGain += bestGain;
    }
    totalGain += passGain;
    if (passGain == 0) break;
  }
  return totalGain;
}

idx_t kway_rebalance(const hg::Hypergraph& h, hg::Partition& p, double epsilon, Rng& rng,
                     const std::vector<idx_t>& fixedPart) {
  FGHP_REQUIRE(p.complete(), "kway_rebalance requires a complete partition");
  const idx_t K = p.num_parts();
  if (K <= 1) return 0;
  auto is_fixed = [&](idx_t v) {
    return !fixedPart.empty() && fixedPart[static_cast<std::size_t>(v)] != kInvalidIdx;
  };
  const double avg =
      static_cast<double>(h.total_vertex_weight()) / static_cast<double>(K);
  const auto cap = static_cast<weight_t>(std::floor(avg * (1.0 + epsilon) + 1e-9));

  idx_t moved = 0;
  // Iterate overloaded parts; for each, repeatedly eject the vertex whose
  // departure costs the least additional cut, into the lightest part that
  // can take it.
  for (idx_t from = 0; from < K; ++from) {
    while (p.part_weight(from) > cap) {
      idx_t bestV = kInvalidIdx;
      weight_t bestDamage = 0;
      idx_t bestTo = kInvalidIdx;
      for (idx_t v : rng.permutation(h.num_vertices())) {
        if (p.part_of(v) != from || h.vertex_weight(v) == 0 || is_fixed(v)) continue;
        // Destination: the lightest part that can still absorb v (heavy
        // vertices may only fit some parts).
        idx_t to = kInvalidIdx;
        for (idx_t q = 0; q < K; ++q) {
          if (q == from || p.part_weight(q) + h.vertex_weight(v) > cap) continue;
          if (to == kInvalidIdx || p.part_weight(q) < p.part_weight(to)) to = q;
        }
        if (to == kInvalidIdx) continue;
        // Damage = cost of nets newly stretched to `to` minus nets whose
        // last `from` pin leaves.
        weight_t damage = 0;
        for (idx_t n : h.nets(v)) {
          idx_t inFrom = 0;
          bool touchesTo = false;
          for (idx_t u : h.pins(n)) {
            if (p.part_of(u) == from) ++inFrom;
            if (p.part_of(u) == to) touchesTo = true;
          }
          if (!touchesTo) damage += h.net_cost(n);
          if (inFrom == 1) damage -= h.net_cost(n);
        }
        if (bestV == kInvalidIdx || damage < bestDamage) {
          bestV = v;
          bestDamage = damage;
          bestTo = to;
        }
        if (bestDamage <= 0) break;  // cannot do better than free
      }
      if (bestV == kInvalidIdx) break;  // single moves exhausted; try swaps below
      p.move(h, bestV, bestTo);
      ++moved;
    }

    // Cascade phase: a part can end up holding only near-cap heavy vertices
    // (e.g. hub rows), with no destination roomy enough for any of them.
    // Aggregate headroom into one target part by shifting its light
    // vertices elsewhere, then relocate one heavy vertex into the room made.
    int guard = 0;
    while (p.part_weight(from) > cap && ++guard < 4 * K) {
      // Lightest movable vertex of the overloaded part (minimal room needed).
      idx_t v = kInvalidIdx;
      for (idx_t x = 0; x < h.num_vertices(); ++x) {
        if (p.part_of(x) != from || is_fixed(x) || h.vertex_weight(x) == 0) continue;
        if (v == kInvalidIdx || h.vertex_weight(x) < h.vertex_weight(v)) v = x;
      }
      if (v == kInvalidIdx) break;
      const weight_t wv = h.vertex_weight(v);

      // Candidate targets in ascending weight: a light part whose own
      // vertices are all heavy may be un-emptiable, so fall through to the
      // next one rather than giving up.
      std::vector<idx_t> targets;
      for (idx_t q = 0; q < K; ++q) {
        if (q != from) targets.push_back(q);
      }
      std::sort(targets.begin(), targets.end(), [&](idx_t x, idx_t y) {
        return p.part_weight(x) < p.part_weight(y);
      });

      bool placed = false;
      for (idx_t target : targets) {
        // Make room in `target` by exporting its lightest vertices.
        bool progress = true;
        int guard2 = 0;
        while (p.part_weight(target) + wv > cap && progress && ++guard2 < 10000) {
          progress = false;
          idx_t u = kInvalidIdx;
          for (idx_t x = 0; x < h.num_vertices(); ++x) {
            if (p.part_of(x) != target || is_fixed(x) || h.vertex_weight(x) == 0) continue;
            if (u == kInvalidIdx || h.vertex_weight(x) < h.vertex_weight(u)) u = x;
          }
          if (u == kInvalidIdx) break;
          idx_t dest = kInvalidIdx;
          for (idx_t q = 0; q < K; ++q) {
            if (q == from || q == target) continue;
            if (p.part_weight(q) + h.vertex_weight(u) > cap) continue;
            if (dest == kInvalidIdx || p.part_weight(q) < p.part_weight(dest)) dest = q;
          }
          if (dest == kInvalidIdx) break;
          p.move(h, u, dest);
          ++moved;
          progress = true;
        }
        if (p.part_weight(target) + wv <= cap) {
          p.move(h, v, target);
          ++moved;
          placed = true;
          break;
        }
      }
      if (!placed) break;  // global headroom genuinely exhausted
    }
  }
  return moved;
}

}  // namespace fghp::part::hgk
