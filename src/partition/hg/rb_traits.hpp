// Hypergraph problem traits for the unified recursive-bisection engine
// (partition/rb_driver.hpp): multilevel bisection with FM refinement,
// cut-net splitting on extraction (connectivity-1 telescoping, DESIGN.md
// invariant 3), LPT greedy fallback, and deep hypergraph-partition
// validation in strict mode.
#pragma once

#include "hypergraph/validate.hpp"
#include "partition/hg/bisect.hpp"
#include "partition/hg/initial.hpp"
#include "partition/hg/recursive.hpp"
#include "partition/hg/refine.hpp"
#include "partition/multilevel.hpp"

namespace fghp::part::hgrb {

struct HgRbTraits {
  using Problem = hg::Hypergraph;
  using Partition = hg::Partition;

  static constexpr const char* kBisectSite = "rb.bisect";
  static constexpr const char* kRetrySite = "rb.retry";

  static Partition bisect(const Problem& h, const std::array<weight_t, 2>& target,
                          const std::array<weight_t, 2>& cap, const PartitionConfig& cfg,
                          Rng& rng, const FixedSides& fixed) {
    return hgb::multilevel_bisect(h, target, cap, cfg, rng, fixed);
  }

  static Partition greedy_fallback(const Problem& h, const std::array<weight_t, 2>& target,
                                   const FixedSides& fixed) {
    return hgi::greedy_bisection(h, target, fixed);
  }

  static weight_t bisection_cut(const Problem& h, const Partition& p) {
    return hgr::BisectionFM::compute_cut(h, p);
  }

  static RbSide<HgRbTraits> extract_side(const Problem& h, const Partition& bisection,
                                         idx_t side, const PartitionConfig& cfg) {
    SideExtract e = hgrb::extract_side(h, bisection, side, cfg.metric);
    return {std::move(e.sub), std::move(e.toParent)};
  }

  static void validate_bisection(const Problem& h, const Partition& p) {
    hg::validate_partition_or_throw(h, p, "rb-bisection");
  }

  static double problem_size(const Problem& h) {
    return static_cast<double>(h.num_vertices()) + static_cast<double>(h.num_pins());
  }
};

}  // namespace fghp::part::hgrb
