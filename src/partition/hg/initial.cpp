#include "partition/hg/initial.hpp"

#include <algorithm>
#include <limits>

#include "partition/hg/refine.hpp"
#include "util/bucket_queue.hpp"

namespace fghp::part::hgi {

hg::Partition random_bisection(const hg::Hypergraph& h, const std::array<weight_t, 2>& target,
                               Rng& rng, const FixedSides& fixed) {
  hg::Partition p(h, 2);
  std::array<weight_t, 2> room = target;
  if (!fixed.empty()) {
    for (idx_t v = 0; v < h.num_vertices(); ++v) {
      const signed char side = fixed[static_cast<std::size_t>(v)];
      if (side >= 0) {
        p.assign(h, v, side);
        room[static_cast<std::size_t>(side)] -= h.vertex_weight(v);
      }
    }
  }
  for (idx_t v : rng.permutation(h.num_vertices())) {
    if (p.assigned(v)) continue;
    // Assign to the side with more remaining room (deterministic given the
    // shuffled order); keeps both sides near their targets.
    const idx_t side = room[0] >= room[1] ? 0 : 1;
    p.assign(h, v, side);
    room[static_cast<std::size_t>(side)] -= h.vertex_weight(v);
  }
  return p;
}

hg::Partition ghg_bisection(const hg::Hypergraph& h, const std::array<weight_t, 2>& target,
                            Rng& rng, const FixedSides& fixed) {
  hg::Partition p(h, 2);
  for (idx_t v = 0; v < h.num_vertices(); ++v) p.assign(h, v, 0);
  if (h.num_vertices() == 0) return p;

  // pinsIn1[n]: pins of net n already moved to side 1. Gain of moving v
  // 0 -> 1: nets fully vacated from side 0 (+c), nets newly dragged into the
  // cut (-c).
  std::vector<idx_t> pinsIn1(static_cast<std::size_t>(h.num_nets()), 0);
  auto gain_of = [&](idx_t v) {
    weight_t g = 0;
    for (idx_t n : h.nets(v)) {
      const idx_t size = h.net_size(n);
      const idx_t in1 = pinsIn1[static_cast<std::size_t>(n)];
      if (size - in1 == 1) g += h.net_cost(n);  // v is the last side-0 pin
      if (in1 == 0) g -= h.net_cost(n);         // net newly cut
    }
    return static_cast<idx_t>(g);
  };

  weight_t maxIncident = 0;
  for (idx_t v = 0; v < h.num_vertices(); ++v) {
    weight_t inc = 0;
    for (idx_t n : h.nets(v)) inc += h.net_cost(n);
    maxIncident = std::max(maxIncident, inc);
  }
  BucketQueue queue(h.num_vertices(), static_cast<idx_t>(maxIncident));

  weight_t grown = 0;
  const weight_t want = target[1];
  std::vector<idx_t> order = rng.permutation(h.num_vertices());
  std::size_t seedCursor = 0;

  auto is_fixed0 = [&](idx_t v) {
    return !fixed.empty() && fixed[static_cast<std::size_t>(v)] == 0;
  };

  // Gains only change on two critical transitions of a net's side-1 pin
  // count t (c.f. the FM rules): t 0 -> 1 removes the "-c newly cut" term of
  // every side-0 pin, and t reaching |n|-1 grants the last side-0 pin its
  // "+c vacates side 0" bonus. Everything else is gain-neutral, making the
  // whole growth O(pins) amortized instead of O(moves * |net| * degree).
  auto bump = [&](idx_t u, idx_t delta) {
    if (is_fixed0(u)) return;  // pinned to side 0; never a candidate
    if (queue.contains(u)) {
      queue.adjust(u, delta);
    } else {
      queue.push(u, gain_of(u));  // fresh gain already reflects the move
    }
  };

  // Vertices fixed to side 1 move first and seed the growth front.
  std::vector<idx_t> pending;
  if (!fixed.empty()) {
    for (idx_t v = 0; v < h.num_vertices(); ++v) {
      if (fixed[static_cast<std::size_t>(v)] == 1) pending.push_back(v);
    }
  }
  std::size_t pendingCursor = 0;

  while (grown < want || pendingCursor < pending.size()) {
    idx_t v = kInvalidIdx;
    if (pendingCursor < pending.size()) {
      v = pending[pendingCursor++];
    } else if (!queue.empty()) {
      v = queue.pop_max();
    } else {
      // Disconnected remainder: seed a fresh growth front.
      while (seedCursor < order.size() &&
             (p.part_of(order[seedCursor]) == 1 || is_fixed0(order[seedCursor]))) {
        ++seedCursor;
      }
      if (seedCursor >= order.size()) break;
      v = order[seedCursor++];
    }
    if (p.part_of(v) == 1) continue;

    p.move(h, v, 1);
    grown += h.vertex_weight(v);
    for (idx_t n : h.nets(v)) {
      const idx_t t = pinsIn1[static_cast<std::size_t>(n)]++;
      const idx_t size = h.net_size(n);
      const idx_t c = static_cast<idx_t>(h.net_cost(n));
      if (t == 0) {
        // For a 2-pin net both transitions fire at once for the single
        // remaining side-0 pin; fold them into one bump so an unqueued pin
        // is not pushed-then-adjusted twice.
        const idx_t delta = (t + 1 == size - 1) ? 2 * c : c;
        for (idx_t u : h.pins(n)) {
          if (p.part_of(u) == 0) bump(u, delta);
        }
      } else if (t + 1 == size - 1) {
        for (idx_t u : h.pins(n)) {
          if (p.part_of(u) == 0) {
            bump(u, c);
            break;  // exactly one side-0 pin remains
          }
        }
      }
    }
  }
  return p;
}

hg::Partition greedy_bisection(const hg::Hypergraph& h, const std::array<weight_t, 2>& target,
                               const FixedSides& fixed) {
  hg::Partition p(h, 2);
  std::array<weight_t, 2> room = target;
  if (!fixed.empty()) {
    for (idx_t v = 0; v < h.num_vertices(); ++v) {
      const signed char side = fixed[static_cast<std::size_t>(v)];
      if (side >= 0) {
        p.assign(h, v, side);
        room[static_cast<std::size_t>(side)] -= h.vertex_weight(v);
      }
    }
  }
  std::vector<idx_t> order;
  order.reserve(static_cast<std::size_t>(h.num_vertices()));
  for (idx_t v = 0; v < h.num_vertices(); ++v) {
    if (!p.assigned(v)) order.push_back(v);
  }
  std::stable_sort(order.begin(), order.end(), [&](idx_t a, idx_t b) {
    return h.vertex_weight(a) > h.vertex_weight(b);
  });
  for (idx_t v : order) {
    const idx_t side = room[0] >= room[1] ? 0 : 1;
    p.assign(h, v, side);
    room[static_cast<std::size_t>(side)] -= h.vertex_weight(v);
  }
  return p;
}

hg::Partition initial_bisection(const hg::Hypergraph& h, const std::array<weight_t, 2>& target,
                                const std::array<weight_t, 2>& maxWeight,
                                const PartitionConfig& cfg, Rng& rng,
                                const FixedSides& fixed) {
  hgr::BisectionFM fm(cfg);
  fm.set_fixed(&fixed);
  hg::Partition best;
  weight_t bestCut = std::numeric_limits<weight_t>::max();
  bool bestFeasible = false;

  const idx_t runs = std::max<idx_t>(1, cfg.numInitialRuns);
  for (idx_t r = 0; r < runs; ++r) {
    const bool useGhg = cfg.initial == InitialAlgo::kGreedyGrowing ||
                        (cfg.initial == InitialAlgo::kMixed && r % 2 == 0);
    hg::Partition p = useGhg ? ghg_bisection(h, target, rng, fixed)
                             : random_bisection(h, target, rng, fixed);
    const weight_t cut = fm.refine(h, p, maxWeight, rng);
    const bool feasible = p.part_weight(0) <= maxWeight[0] && p.part_weight(1) <= maxWeight[1];
    if ((feasible && !bestFeasible) ||
        (feasible == bestFeasible && cut < bestCut)) {
      best = p;
      bestCut = cut;
      bestFeasible = feasible;
    }
  }
  return best;
}

}  // namespace fghp::part::hgi
