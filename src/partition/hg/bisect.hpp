// Multilevel bisection V-cycle: coarsen until small, split at the coarsest
// level, project back and FM-refine at every level.
#pragma once

#include <array>

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/partition.hpp"
#include "partition/config.hpp"
#include "partition/hg/coarsen.hpp"  // FixedSides
#include "util/rng.hpp"

namespace fghp::part::hgb {

/// Bisects h with side targets `target` (target[0]+target[1] == total vertex
/// weight) under per-side caps maxWeight. Returns a complete 2-way partition;
/// feasibility is best-effort (rebalance guarantees the caps whenever
/// max(vertex weight) permits). Vertices pinned in `fixed` end up on their
/// side (the paper's §3 pre-assigned vertices).
hg::Partition multilevel_bisect(const hg::Hypergraph& h, const std::array<weight_t, 2>& target,
                                const std::array<weight_t, 2>& maxWeight,
                                const PartitionConfig& cfg, Rng& rng,
                                const hgc::FixedSides& fixed = {});

}  // namespace fghp::part::hgb
