#include "partition/hg/vcycle.hpp"

#include "hypergraph/metrics.hpp"
#include "partition/hg/coarsen.hpp"
#include "partition/hg/kway_refine.hpp"
#include "util/sparse_acc.hpp"

namespace fghp::part::hgv {

std::vector<idx_t> cluster_hcm_grouped(const hg::Hypergraph& h, Rng& rng, idx_t maxNetSize,
                                       const std::vector<idx_t>& group) {
  const idx_t n = h.num_vertices();
  FGHP_REQUIRE(group.size() == static_cast<std::size_t>(n), "group size mismatch");
  std::vector<idx_t> cluster(static_cast<std::size_t>(n), kInvalidIdx);
  SparseAccumulator<double> score(n);
  idx_t nextId = 0;

  for (idx_t v : rng.permutation(n)) {
    if (cluster[static_cast<std::size_t>(v)] != kInvalidIdx) continue;
    score.clear();
    for (idx_t net : h.nets(v)) {
      const idx_t sz = h.net_size(net);
      if (sz < 2 || sz > maxNetSize) continue;
      const double s = static_cast<double>(h.net_cost(net));
      for (idx_t u : h.pins(net)) {
        if (u != v) score.add(u, s);
      }
    }
    idx_t best = kInvalidIdx;
    double bestScore = 0.0;
    for (idx_t u : score.keys()) {
      if (cluster[static_cast<std::size_t>(u)] != kInvalidIdx) continue;
      if (group[static_cast<std::size_t>(u)] != group[static_cast<std::size_t>(v)]) continue;
      const double s = score.value(u);
      if (s > bestScore) {
        bestScore = s;
        best = u;
      }
    }
    const idx_t id = nextId++;
    cluster[static_cast<std::size_t>(v)] = id;
    if (best != kInvalidIdx) cluster[static_cast<std::size_t>(best)] = id;
  }
  return cluster;
}

weight_t vcycle_refine(const hg::Hypergraph& h, hg::Partition& p, const PartitionConfig& cfg,
                       Rng& rng) {
  FGHP_REQUIRE(p.complete(), "vcycle_refine requires a complete partition");
  const idx_t K = p.num_parts();
  if (K <= 1 || h.num_vertices() == 0) return 0;

  const weight_t before = hg::cutsize(h, p, hg::CutMetric::kConnectivity);

  // Restricted coarsening stack. Each level's partition is induced exactly
  // (clusters never straddle parts), so no balance repair is needed.
  struct Level {
    hgc::CoarseLevel cl;
    std::vector<idx_t> part;  // coarse assignment
  };
  std::vector<Level> levels;
  const hg::Hypergraph* cur = &h;
  std::vector<idx_t> curPart = p.assignment();
  const idx_t stopAt = std::max<idx_t>(cfg.coarsenTo, 2 * K);
  for (idx_t lvl = 0; lvl < cfg.maxCoarsenLevels; ++lvl) {
    if (cur->num_vertices() <= stopAt) break;
    const idx_t maxNet = hgc::effective_max_net_size(*cur, cfg);
    std::vector<idx_t> clusters = cluster_hcm_grouped(*cur, rng, maxNet, curPart);
    hgc::CoarseLevel next = hgc::contract(*cur, clusters);
    const double reduction = static_cast<double>(next.coarse.num_vertices()) /
                             static_cast<double>(cur->num_vertices());
    if (reduction > cfg.minReductionFactor) break;
    std::vector<idx_t> coarsePart(static_cast<std::size_t>(next.coarse.num_vertices()),
                                  kInvalidIdx);
    for (idx_t v = 0; v < cur->num_vertices(); ++v) {
      coarsePart[static_cast<std::size_t>(next.fineToCoarse[static_cast<std::size_t>(v)])] =
          curPart[static_cast<std::size_t>(v)];
    }
    levels.push_back({std::move(next), std::move(coarsePart)});
    cur = &levels.back().cl.coarse;
    curPart = levels.back().part;
  }

  // Refine from the coarsest level downward; project each result.
  for (std::size_t i = levels.size(); i > 0; --i) {
    const hg::Hypergraph& lvlH = levels[i - 1].cl.coarse;
    hg::Partition lp(lvlH, K, levels[i - 1].part);
    hgk::kway_refine(lvlH, lp, cfg, rng);
    // Project onto the next finer level.
    const auto& map = levels[i - 1].cl.fineToCoarse;
    std::vector<idx_t>& finerPart = (i >= 2) ? levels[i - 2].part : curPart;
    const hg::Hypergraph& finer = (i >= 2) ? levels[i - 2].cl.coarse : h;
    finerPart.resize(static_cast<std::size_t>(finer.num_vertices()));
    for (idx_t v = 0; v < finer.num_vertices(); ++v) {
      finerPart[static_cast<std::size_t>(v)] =
          lp.part_of(map[static_cast<std::size_t>(v)]);
    }
  }

  hg::Partition refined(h, K, levels.empty() ? p.assignment() : curPart);
  hgk::kway_refine(h, refined, cfg, rng);

  const weight_t after = hg::cutsize(h, refined, hg::CutMetric::kConnectivity);
  if (after < before) {
    p = std::move(refined);
    return before - after;
  }
  return 0;
}

}  // namespace fghp::part::hgv
