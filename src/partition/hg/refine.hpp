// Boundary Fiduccia–Mattheyses refinement for hypergraph bisections.
//
// Standard FM with gain buckets: two priority queues (one per move
// direction), O(1) gain updates through the four critical-net rules,
// pass-based hill climbing with rollback to the best prefix, and an
// early-exit window. For K = 2 the connectivity-1 and cut-net objectives
// coincide (lambda - 1 == 1 for every cut net), so one engine serves both.
#pragma once

#include <array>

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/partition.hpp"
#include "partition/config.hpp"
#include "partition/hg/coarsen.hpp"  // FixedSides
#include "util/bucket_queue.hpp"
#include "util/rng.hpp"

namespace fghp::part::hgr {

/// Reusable bisection refiner (scratch buffers survive across levels).
class BisectionFM {
 public:
  explicit BisectionFM(const PartitionConfig& cfg) : cfg_(cfg) {}

  /// Vertices with a non-negative side pin are never moved (may be null or
  /// empty for "nothing fixed"; the pointee must outlive the refiner calls).
  void set_fixed(const hgc::FixedSides* fixed) { fixed_ = fixed; }

  /// Refines a complete 2-way partition in place, never leaving a side above
  /// maxWeight (a partition that *starts* above is first repaired, see
  /// rebalance). Returns the resulting cut (sum of costs of cut nets).
  weight_t refine(const hg::Hypergraph& h, hg::Partition& p,
                  const std::array<weight_t, 2>& maxWeight, Rng& rng);

  /// Greedily moves vertices out of overweight sides until both sides fit
  /// (cheapest-damage moves first). No-op if already feasible.
  void rebalance(const hg::Hypergraph& h, hg::Partition& p,
                 const std::array<weight_t, 2>& maxWeight);

  /// Current cut of a 2-way partition (recomputed from scratch).
  static weight_t compute_cut(const hg::Hypergraph& h, const hg::Partition& p);

 private:
  void attach(const hg::Hypergraph& h, const hg::Partition& p);
  idx_t gain_of(const hg::Hypergraph& h, const hg::Partition& p, idx_t v) const;
  /// One FM pass; returns cut after rollback to the best prefix.
  weight_t pass(const hg::Hypergraph& h, hg::Partition& p,
                const std::array<weight_t, 2>& maxWeight, weight_t startCut, Rng& rng);
  void apply_move(const hg::Hypergraph& h, hg::Partition& p, idx_t v, bool updateGains);

  bool is_fixed(idx_t v) const {
    return fixed_ != nullptr && !fixed_->empty() &&
           (*fixed_)[static_cast<std::size_t>(v)] >= 0;
  }

  const PartitionConfig& cfg_;
  const hgc::FixedSides* fixed_ = nullptr;
  std::vector<std::array<idx_t, 2>> pinsIn_;  // per net: pins on side 0 / 1
  std::array<BucketQueue, 2> queue_;          // [from-side]
  std::vector<char> locked_;
  std::vector<idx_t> activate_;               // scratch: newly boundary vertices
};

}  // namespace fghp::part::hgr
