// Greedy direct K-way refinement under the connectivity-1 objective: a
// post-pass over recursive bisection (an extension over the paper's PaToH
// pipeline; ablation A2 quantifies its effect).
//
// Per net we maintain the multiset of parts its pins touch; the gain of
// moving v from p to q is +c for every net whose last p-pin leaves and -c
// for every net that gains q as a brand-new part — exactly the delta of
// eq. (3).
#pragma once

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/partition.hpp"
#include "partition/config.hpp"
#include "util/rng.hpp"

namespace fghp::part::hgk {

/// Runs cfg.kwayRefinePasses greedy passes (boundary vertices, random order,
/// best strictly-positive-gain feasible move). Returns the total cutsize
/// improvement (>= 0). Balance (eq. 1 with cfg.epsilon) is preserved.
/// Vertices pinned in `fixedPart` (optional; kInvalidIdx = free) never move.
weight_t kway_refine(const hg::Hypergraph& h, hg::Partition& p, const PartitionConfig& cfg,
                     Rng& rng, const std::vector<idx_t>& fixedPart = {});

/// Repairs eq.-(1) violations left by recursive bisection (integer rounding
/// of the per-level tolerance can compound on small sub-problems): moves
/// minimum-cut-damage vertices out of overloaded parts into the lightest
/// parts until every part fits under W_avg * (1 + eps), whenever vertex
/// weights permit. Returns the number of vertices moved.
idx_t kway_rebalance(const hg::Hypergraph& h, hg::Partition& p, double epsilon, Rng& rng,
                     const std::vector<idx_t>& fixedPart = {});

}  // namespace fghp::part::hgk
