#include "partition/hg/coarsen.hpp"

#include <algorithm>
#include <numeric>

#include "util/sparse_acc.hpp"

namespace fghp::part::hgc {

namespace {

/// Scores all unvisited co-pins of v through nets no larger than maxNetSize.
/// scoreFn(netCost, netSize) defines the contribution per shared net.
template <typename ScoreFn>
void score_neighbors(const hg::Hypergraph& h, idx_t v, idx_t maxNetSize,
                     SparseAccumulator<double>& acc, ScoreFn scoreFn) {
  for (idx_t n : h.nets(v)) {
    const idx_t sz = h.net_size(n);
    if (sz < 2 || sz > maxNetSize) continue;
    const double s = scoreFn(static_cast<double>(h.net_cost(n)), sz);
    for (idx_t u : h.pins(n)) {
      if (u != v) acc.add(u, s);
    }
  }
}

}  // namespace

idx_t effective_max_net_size(const hg::Hypergraph& h, const PartitionConfig& cfg) {
  if (cfg.maxNetSizeForMatching > 0) return cfg.maxNetSizeForMatching;
  // Scoring mates costs O(sum of |net|^2) per level; nets much larger than
  // average are almost always cut anyway, so skipping them trades no
  // measurable quality for an order of magnitude of coarsening time on
  // matrices with dense rows/columns.
  if (h.num_nets() == 0) return 64;
  const idx_t avg = h.num_pins() / h.num_nets();
  return std::max<idx_t>(64, 3 * avg);
}

namespace {

/// True when u may join a cluster containing v (never merges two vertices
/// pinned to different sides).
inline bool sides_compatible(const FixedSides& fixed, idx_t v, idx_t u) {
  if (fixed.empty()) return true;
  const signed char sv = fixed[static_cast<std::size_t>(v)];
  const signed char su = fixed[static_cast<std::size_t>(u)];
  return sv < 0 || su < 0 || sv == su;
}

}  // namespace

ClusterMap cluster_hcm(const hg::Hypergraph& h, Rng& rng, idx_t maxNetSize,
                       const FixedSides& fixed) {
  const idx_t n = h.num_vertices();
  ClusterMap cluster(static_cast<std::size_t>(n), kInvalidIdx);
  SparseAccumulator<double> score(n);
  idx_t nextId = 0;

  for (idx_t v : rng.permutation(n)) {
    if (cluster[static_cast<std::size_t>(v)] != kInvalidIdx) continue;
    score.clear();
    score_neighbors(h, v, maxNetSize, score,
                    [](double c, idx_t) { return c; });  // HCM: plain connectivity
    idx_t best = kInvalidIdx;
    double bestScore = 0.0;
    for (idx_t u : score.keys()) {
      if (cluster[static_cast<std::size_t>(u)] != kInvalidIdx) continue;
      if (!sides_compatible(fixed, v, u)) continue;
      const double s = score.value(u);
      if (s > bestScore) {
        bestScore = s;
        best = u;
      }
    }
    const idx_t id = nextId++;
    cluster[static_cast<std::size_t>(v)] = id;
    if (best != kInvalidIdx) cluster[static_cast<std::size_t>(best)] = id;
  }
  return cluster;
}

ClusterMap cluster_agglomerative(const hg::Hypergraph& h, Rng& rng, idx_t maxNetSize,
                                 weight_t maxClusterWeight, const FixedSides& fixed) {
  const idx_t n = h.num_vertices();
  ClusterMap cluster(static_cast<std::size_t>(n), kInvalidIdx);
  std::vector<weight_t> clusterWeight;
  std::vector<signed char> clusterSide;  // -1 free, else pinned side
  SparseAccumulator<double> score(n);
  SparseAccumulator<double> clusterScore(n);  // cluster ids are < n

  for (idx_t v : rng.permutation(n)) {
    if (cluster[static_cast<std::size_t>(v)] != kInvalidIdx) continue;
    const signed char sideV = fixed.empty() ? -1 : fixed[static_cast<std::size_t>(v)];
    score.clear();
    // Absorption score: a net shared with w pins contributes c/(|n|-1),
    // favoring small nets that a merge can fully absorb.
    score_neighbors(h, v, maxNetSize, score, [](double c, idx_t sz) {
      return c / static_cast<double>(sz - 1);
    });

    // Aggregate per candidate cluster (unclustered neighbors count as
    // prospective singleton clusters keyed by their own id + n offset trick:
    // we keep two accumulators instead to avoid id aliasing).
    clusterScore.clear();
    idx_t bestVertex = kInvalidIdx;  // best unclustered mate
    double bestVertexScore = 0.0;
    const weight_t wv = h.vertex_weight(v);
    for (idx_t u : score.keys()) {
      const double s = score.value(u);
      const idx_t cu = cluster[static_cast<std::size_t>(u)];
      if (cu == kInvalidIdx) {
        if (s > bestVertexScore && wv + h.vertex_weight(u) <= maxClusterWeight &&
            sides_compatible(fixed, v, u)) {
          bestVertexScore = s;
          bestVertex = u;
        }
      } else {
        if (sideV >= 0 && clusterSide[static_cast<std::size_t>(cu)] >= 0 &&
            clusterSide[static_cast<std::size_t>(cu)] != sideV) {
          continue;
        }
        clusterScore.add(cu, s);
      }
    }
    idx_t bestCluster = kInvalidIdx;
    double bestClusterScore = 0.0;
    for (idx_t c : clusterScore.keys()) {
      const double s = clusterScore.value(c);
      if (s > bestClusterScore &&
          clusterWeight[static_cast<std::size_t>(c)] + wv <= maxClusterWeight) {
        bestClusterScore = s;
        bestCluster = c;
      }
    }

    if (bestCluster != kInvalidIdx && bestClusterScore >= bestVertexScore) {
      cluster[static_cast<std::size_t>(v)] = bestCluster;
      clusterWeight[static_cast<std::size_t>(bestCluster)] += wv;
      if (sideV >= 0) clusterSide[static_cast<std::size_t>(bestCluster)] = sideV;
    } else if (bestVertex != kInvalidIdx) {
      const idx_t id = static_cast<idx_t>(clusterWeight.size());
      clusterWeight.push_back(wv + h.vertex_weight(bestVertex));
      const signed char sideU =
          fixed.empty() ? -1 : fixed[static_cast<std::size_t>(bestVertex)];
      clusterSide.push_back(sideV >= 0 ? sideV : sideU);
      cluster[static_cast<std::size_t>(v)] = id;
      cluster[static_cast<std::size_t>(bestVertex)] = id;
    } else {
      const idx_t id = static_cast<idx_t>(clusterWeight.size());
      clusterWeight.push_back(wv);
      clusterSide.push_back(sideV);
      cluster[static_cast<std::size_t>(v)] = id;
    }
  }
  return cluster;
}

ClusterMap cluster_random(const hg::Hypergraph& h, Rng& rng, const FixedSides& fixed) {
  const idx_t n = h.num_vertices();
  ClusterMap cluster(static_cast<std::size_t>(n), kInvalidIdx);
  idx_t nextId = 0;
  for (idx_t v : rng.permutation(n)) {
    if (cluster[static_cast<std::size_t>(v)] != kInvalidIdx) continue;
    // First unmatched compatible co-pin through any net wins.
    idx_t mate = kInvalidIdx;
    for (idx_t net : h.nets(v)) {
      for (idx_t u : h.pins(net)) {
        if (u != v && cluster[static_cast<std::size_t>(u)] == kInvalidIdx &&
            sides_compatible(fixed, v, u)) {
          mate = u;
          break;
        }
      }
      if (mate != kInvalidIdx) break;
    }
    const idx_t id = nextId++;
    cluster[static_cast<std::size_t>(v)] = id;
    if (mate != kInvalidIdx) cluster[static_cast<std::size_t>(mate)] = id;
  }
  return cluster;
}

CoarseLevel contract(const hg::Hypergraph& fine, const ClusterMap& clusters,
                     const FixedSides& fixed) {
  FGHP_REQUIRE(clusters.size() == static_cast<std::size_t>(fine.num_vertices()),
               "cluster map size mismatch");
  FGHP_REQUIRE(fixed.empty() || fixed.size() == clusters.size(),
               "fixed-side vector size mismatch");

  // Densify cluster ids in first-appearance order.
  std::vector<idx_t> dense(clusters.size(), kInvalidIdx);
  std::vector<idx_t> remap(clusters.size(), kInvalidIdx);
  idx_t numCoarse = 0;
  for (std::size_t v = 0; v < clusters.size(); ++v) {
    const idx_t c = clusters[v];
    FGHP_REQUIRE(c >= 0 && static_cast<std::size_t>(c) < clusters.size(),
                 "cluster id out of range");
    if (remap[static_cast<std::size_t>(c)] == kInvalidIdx)
      remap[static_cast<std::size_t>(c)] = numCoarse++;
    dense[v] = remap[static_cast<std::size_t>(c)];
  }

  std::vector<weight_t> vwgt(static_cast<std::size_t>(numCoarse), 0);
  for (idx_t v = 0; v < fine.num_vertices(); ++v)
    vwgt[static_cast<std::size_t>(dense[static_cast<std::size_t>(v)])] += fine.vertex_weight(v);

  FixedSides coarseFixed;
  if (!fixed.empty()) {
    coarseFixed.assign(static_cast<std::size_t>(numCoarse), -1);
    for (idx_t v = 0; v < fine.num_vertices(); ++v) {
      const signed char side = fixed[static_cast<std::size_t>(v)];
      if (side < 0) continue;
      auto& slot = coarseFixed[static_cast<std::size_t>(dense[static_cast<std::size_t>(v)])];
      FGHP_REQUIRE(slot < 0 || slot == side,
                   "cluster merges vertices fixed to different sides");
      slot = side;
    }
  }

  // Translate nets; dedupe pins; drop nets that fall to < 2 distinct pins.
  std::vector<idx_t> xpins{0};
  std::vector<idx_t> pins;
  std::vector<weight_t> costs;
  pins.reserve(static_cast<std::size_t>(fine.num_pins()));
  SparseAccumulator<idx_t> seen(numCoarse);
  for (idx_t n = 0; n < fine.num_nets(); ++n) {
    seen.clear();
    for (idx_t v : fine.pins(n)) seen.add(dense[static_cast<std::size_t>(v)], 1);
    if (seen.keys().size() < 2) continue;
    std::vector<idx_t> cp(seen.keys());
    std::sort(cp.begin(), cp.end());  // sorted for identical-net detection
    pins.insert(pins.end(), cp.begin(), cp.end());
    xpins.push_back(static_cast<idx_t>(pins.size()));
    costs.push_back(fine.net_cost(n));
  }

  // Identical-net merging: hash (size, pins...) and merge equal runs.
  const auto numNets = static_cast<idx_t>(costs.size());
  std::vector<std::pair<std::uint64_t, idx_t>> hashed(static_cast<std::size_t>(numNets));
  for (idx_t n = 0; n < numNets; ++n) {
    std::uint64_t hsh = 1469598103934665603ULL;
    for (idx_t i = xpins[static_cast<std::size_t>(n)]; i < xpins[static_cast<std::size_t>(n) + 1]; ++i) {
      hsh ^= static_cast<std::uint64_t>(pins[static_cast<std::size_t>(i)]) + 0x9e3779b97f4a7c15ULL;
      hsh *= 1099511628211ULL;
    }
    hashed[static_cast<std::size_t>(n)] = {hsh, n};
  }
  std::sort(hashed.begin(), hashed.end());

  auto same_net = [&](idx_t a, idx_t b) {
    const idx_t sa = xpins[static_cast<std::size_t>(a) + 1] - xpins[static_cast<std::size_t>(a)];
    const idx_t sb = xpins[static_cast<std::size_t>(b) + 1] - xpins[static_cast<std::size_t>(b)];
    if (sa != sb) return false;
    return std::equal(pins.begin() + xpins[static_cast<std::size_t>(a)],
                      pins.begin() + xpins[static_cast<std::size_t>(a) + 1],
                      pins.begin() + xpins[static_cast<std::size_t>(b)]);
  };

  std::vector<bool> dead(static_cast<std::size_t>(numNets), false);
  for (std::size_t i = 0; i < hashed.size();) {
    std::size_t j = i + 1;
    while (j < hashed.size() && hashed[j].first == hashed[i].first) ++j;
    // All nets in [i, j) share a hash; merge true duplicates into the first
    // surviving representative of each equivalence class.
    for (std::size_t a = i; a < j; ++a) {
      const idx_t na = hashed[a].second;
      if (dead[static_cast<std::size_t>(na)]) continue;
      for (std::size_t b = a + 1; b < j; ++b) {
        const idx_t nb = hashed[b].second;
        if (dead[static_cast<std::size_t>(nb)]) continue;
        if (same_net(na, nb)) {
          costs[static_cast<std::size_t>(na)] += costs[static_cast<std::size_t>(nb)];
          dead[static_cast<std::size_t>(nb)] = true;
        }
      }
    }
    i = j;
  }

  // Compact the surviving nets.
  std::vector<idx_t> fxpins{0};
  std::vector<idx_t> fpins;
  std::vector<weight_t> fcosts;
  fpins.reserve(pins.size());
  for (idx_t n = 0; n < numNets; ++n) {
    if (dead[static_cast<std::size_t>(n)]) continue;
    fpins.insert(fpins.end(), pins.begin() + xpins[static_cast<std::size_t>(n)],
                 pins.begin() + xpins[static_cast<std::size_t>(n) + 1]);
    fxpins.push_back(static_cast<idx_t>(fpins.size()));
    fcosts.push_back(costs[static_cast<std::size_t>(n)]);
  }

  CoarseLevel level;
  level.coarse = hg::Hypergraph(numCoarse, std::move(fxpins), std::move(fpins),
                                std::move(vwgt), std::move(fcosts));
  level.fineToCoarse = std::move(dense);
  level.coarseFixed = std::move(coarseFixed);
  return level;
}

CoarseLevel coarsen_one_level(const hg::Hypergraph& fine, const PartitionConfig& cfg, Rng& rng,
                              const FixedSides& fixed) {
  const idx_t maxNet = effective_max_net_size(fine, cfg);
  ClusterMap clusters;
  switch (cfg.coarsening) {
    case Coarsening::kHeavyConnectivity:
      clusters = cluster_hcm(fine, rng, maxNet, fixed);
      break;
    case Coarsening::kAgglomerative: {
      // Cap clusters at a few times the average vertex weight so each level
      // shrinks gradually (~2-4x): a single level that collapses the
      // hypergraph by 25x leaves the uncoarsening phase no intermediate
      // levels to refine on and costs far more cut than it saves in time.
      const weight_t avg = std::max<weight_t>(
          1, fine.total_vertex_weight() / std::max<idx_t>(1, fine.num_vertices()));
      weight_t maxVw = 0;
      for (idx_t v = 0; v < fine.num_vertices(); ++v)
        maxVw = std::max(maxVw, fine.vertex_weight(v));
      const weight_t cap = std::max(maxVw, 4 * avg);
      clusters = cluster_agglomerative(fine, rng, maxNet, cap, fixed);
      break;
    }
    case Coarsening::kRandomMatching:
      clusters = cluster_random(fine, rng, fixed);
      break;
    case Coarsening::kNone: {
      clusters.resize(static_cast<std::size_t>(fine.num_vertices()));
      std::iota(clusters.begin(), clusters.end(), idx_t{0});
      break;
    }
  }
  return contract(fine, clusters, fixed);
}

}  // namespace fghp::part::hgc
