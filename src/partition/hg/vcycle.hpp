// Iterated (V-cycle) K-way refinement: re-coarsen the hypergraph allowing
// only same-part merges, so the induced coarse partition is exact, then
// greedily refine from the coarsest level back down. Coarse-level moves
// relocate whole clusters — e.g. all nonzeros of a column in the fine-grain
// model — escaping the single-vertex plateaus that trap flat FM/greedy
// refinement. The classic multilevel-refinement technique of hMETIS/MLPart,
// applied here on top of recursive bisection.
#pragma once

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/partition.hpp"
#include "partition/config.hpp"
#include "util/rng.hpp"

namespace fghp::part::hgv {

/// Clustering constrained to merge only vertices of the same group
/// (heavy-connectivity scores, pairwise matching).
std::vector<idx_t> cluster_hcm_grouped(const hg::Hypergraph& h, Rng& rng, idx_t maxNetSize,
                                       const std::vector<idx_t>& group);

/// One V-cycle: restricted coarsening stack + greedy K-way refinement at
/// every level, projected back to h. Balance (cfg.epsilon) is preserved.
/// Returns the cutsize improvement (>= 0).
weight_t vcycle_refine(const hg::Hypergraph& h, hg::Partition& p, const PartitionConfig& cfg,
                       Rng& rng);

}  // namespace fghp::part::hgv
