#include "partition/hg/partitioner.hpp"

#include <optional>

#include "hypergraph/validate.hpp"
#include "partition/hg/kway_refine.hpp"
#include "partition/hg/recursive.hpp"
#include "partition/hg/vcycle.hpp"
#include "util/cancel.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace fghp::part {

namespace {

/// True when the run's deadline has expired and the config asks for
/// degradation: quality-only phases should be skipped, not attempted.
bool budget_gone(const PartitionConfig& cfg) {
  return cfg.degradeOnDeadline &&
         cancel::poll(cfg.cancel) == cancel::Status::kDeadlineExpired;
}

/// One full pipeline run: RB, balance repair, K-way polish, V-cycles.
/// Adds any bisection recoveries taken into `recoveries` and deadline
/// demotions into `degraded`.
hg::Partition run_pipeline(const hg::Hypergraph& h, idx_t K, const PartitionConfig& cfg,
                           Rng& rng, const std::vector<idx_t>& fixedPart,
                           idx_t& recoveries, idx_t& degraded) {
  const bool strict = cfg.validateLevel == ValidateLevel::kStrict;
  hgrb::RecursiveResult rb = hgrb::partition_recursive(h, K, cfg, rng, fixedPart);
  recoveries += rb.numRecoveries;
  degraded += rb.numDegraded;
  if (strict) hg::validate_partition_or_throw(h, rb.partition, "recursive-bisection");
  if (K > 1 && !hg::is_balanced(h, rb.partition, cfg.epsilon)) {
    // Integer rounding of per-level tolerances can compound on small
    // sub-problems; repair before (or instead of) the quality polish. This
    // runs even on an expired deadline: balance feasibility is part of the
    // degradation contract, only quality polish is negotiable.
    hgk::kway_rebalance(h, rb.partition, cfg.epsilon, rng, fixedPart);
    if (strict) hg::validate_partition_or_throw(h, rb.partition, "rebalance");
  }
  if (cfg.kwayRefine && K > 2 && cfg.metric == hg::CutMetric::kConnectivity &&
      !budget_gone(cfg)) {
    hgk::kway_refine(h, rb.partition, cfg, rng, fixedPart);
    if (strict) hg::validate_partition_or_throw(h, rb.partition, "kway-refine");
  }
  // V-cycles move whole clusters, which could smuggle a fixed vertex across
  // parts; run them only on fully free instances.
  if (K > 1 && cfg.metric == hg::CutMetric::kConnectivity && fixedPart.empty() &&
      !budget_gone(cfg)) {
    for (idx_t cycle = 0; cycle < cfg.vcycles; ++cycle) {
      if (cancel::check_point(cfg.cancel, "vcycle", nullptr, cycle + 1,
                              /*deadlineThrows=*/!cfg.degradeOnDeadline) !=
          cancel::Status::kRun)
        break;
      if (hgv::vcycle_refine(h, rb.partition, cfg, rng) == 0) break;
    }
    if (strict) hg::validate_partition_or_throw(h, rb.partition, "vcycle");
  }
  return std::move(rb.partition);
}

}  // namespace

HgResult partition_hypergraph(const hg::Hypergraph& h, idx_t K, const PartitionConfig& cfg,
                              const std::vector<idx_t>& fixedPart) {
  FGHP_REQUIRE(K >= 1, "K must be positive");
  FGHP_REQUIRE(cfg.numRestarts >= 1, "need at least one restart");
  WallTimer timer;

  // Scope the configured fault spec to this call; an empty spec leaves any
  // process-global (FGHP_FAULT_SPEC) installation untouched. The trace
  // capture follows the same contract for cfg.traceOut.
  std::optional<fault::ScopedSpec> faultScope;
  if (!cfg.faultSpec.empty()) faultScope.emplace(cfg.faultSpec);
  trace::ScopedCapture traceScope(cfg.traceOut);
  trace::TraceScope span("partition", "hg.partition", "k", K, "verts",
                         h.num_vertices());

  if (cfg.validateLevel == ValidateLevel::kStrict) hg::validate_or_throw(h);

  // Phase-boundary check-point before any work: a run that arrives already
  // cancelled (or expired, with degradation off) fails immediately.
  cancel::check_point(cfg.cancel, "hg.partition", nullptr, 1,
                      /*deadlineThrows=*/!cfg.degradeOnDeadline);

  Rng rng(cfg.seed);
  idx_t recoveries = 0;
  idx_t degraded = 0;

  hg::Partition best = run_pipeline(h, K, cfg, rng, fixedPart, recoveries, degraded);
  weight_t bestCut = hg::cutsize(h, best, cfg.metric);
  for (idx_t restart = 1; restart < cfg.numRestarts; ++restart) {
    // Restarts are pure quality search: stop spending when the budget is
    // gone (the Rng spawn still happens, keeping surviving restarts'
    // streams identical to an un-deadlined run).
    Rng restartRng = rng.spawn();
    if (budget_gone(cfg)) break;
    hg::Partition candidate =
        run_pipeline(h, K, cfg, restartRng, fixedPart, recoveries, degraded);
    const weight_t cut = hg::cutsize(h, candidate, cfg.metric);
    // Prefer a feasible candidate, then the lower cut.
    const bool candFeasible = hg::is_balanced(h, candidate, cfg.epsilon);
    const bool bestFeasible = hg::is_balanced(h, best, cfg.epsilon);
    if ((candFeasible && !bestFeasible) ||
        (candFeasible == bestFeasible && cut < bestCut)) {
      best = std::move(candidate);
      bestCut = cut;
    }
  }

  static metrics::Counter& runs = metrics::counter("partition.hg.runs");
  static metrics::Counter& recovered = metrics::counter("partition.recoveries");
  runs.add();
  recovered.add(recoveries);

  HgResult out;
  out.seconds = timer.seconds();
  out.cutsize = bestCut;
  out.numCutNets = hg::num_cut_nets(h, best);
  out.imbalance = hg::imbalance(h, best);
  out.numRecoveries = recoveries;
  out.numDegraded = degraded;
  out.partition = std::move(best);
  return out;
}

}  // namespace fghp::part
