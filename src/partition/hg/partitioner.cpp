#include "partition/hg/partitioner.hpp"

#include "partition/hg/kway_refine.hpp"
#include "partition/hg/recursive.hpp"
#include "partition/hg/vcycle.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace fghp::part {

namespace {

/// One full pipeline run: RB, balance repair, K-way polish, V-cycles.
hg::Partition run_pipeline(const hg::Hypergraph& h, idx_t K, const PartitionConfig& cfg,
                           Rng& rng, const std::vector<idx_t>& fixedPart) {
  hgrb::RecursiveResult rb = hgrb::partition_recursive(h, K, cfg, rng, fixedPart);
  if (K > 1 && !hg::is_balanced(h, rb.partition, cfg.epsilon)) {
    // Integer rounding of per-level tolerances can compound on small
    // sub-problems; repair before (or instead of) the quality polish.
    hgk::kway_rebalance(h, rb.partition, cfg.epsilon, rng, fixedPart);
  }
  if (cfg.kwayRefine && K > 2 && cfg.metric == hg::CutMetric::kConnectivity) {
    hgk::kway_refine(h, rb.partition, cfg, rng, fixedPart);
  }
  // V-cycles move whole clusters, which could smuggle a fixed vertex across
  // parts; run them only on fully free instances.
  if (K > 1 && cfg.metric == hg::CutMetric::kConnectivity && fixedPart.empty()) {
    for (idx_t cycle = 0; cycle < cfg.vcycles; ++cycle) {
      if (hgv::vcycle_refine(h, rb.partition, cfg, rng) == 0) break;
    }
  }
  return std::move(rb.partition);
}

}  // namespace

HgResult partition_hypergraph(const hg::Hypergraph& h, idx_t K, const PartitionConfig& cfg,
                              const std::vector<idx_t>& fixedPart) {
  FGHP_REQUIRE(K >= 1, "K must be positive");
  FGHP_REQUIRE(cfg.numRestarts >= 1, "need at least one restart");
  WallTimer timer;
  Rng rng(cfg.seed);

  hg::Partition best = run_pipeline(h, K, cfg, rng, fixedPart);
  weight_t bestCut = hg::cutsize(h, best, cfg.metric);
  for (idx_t restart = 1; restart < cfg.numRestarts; ++restart) {
    Rng restartRng = rng.spawn();
    hg::Partition candidate = run_pipeline(h, K, cfg, restartRng, fixedPart);
    const weight_t cut = hg::cutsize(h, candidate, cfg.metric);
    // Prefer a feasible candidate, then the lower cut.
    const bool candFeasible = hg::is_balanced(h, candidate, cfg.epsilon);
    const bool bestFeasible = hg::is_balanced(h, best, cfg.epsilon);
    if ((candFeasible && !bestFeasible) ||
        (candFeasible == bestFeasible && cut < bestCut)) {
      best = std::move(candidate);
      bestCut = cut;
    }
  }

  HgResult out;
  out.seconds = timer.seconds();
  out.cutsize = bestCut;
  out.numCutNets = hg::num_cut_nets(h, best);
  out.imbalance = hg::imbalance(h, best);
  out.partition = std::move(best);
  return out;
}

}  // namespace fghp::part
