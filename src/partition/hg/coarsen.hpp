// Multilevel coarsening for hypergraphs: vertex clustering (heavy
// connectivity matching, agglomerative absorption clustering, random
// matching) followed by contraction with single-pin-net removal and
// identical-net merging (the PaToH memory/speed trick that matters most on
// fine-grain hypergraphs, where many rows/columns share sparsity patterns).
#pragma once

#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "partition/config.hpp"
#include "partition/multilevel.hpp"
#include "util/rng.hpp"

namespace fghp::part::hgc {

/// fine-vertex -> cluster-id map (ids need not be dense; contract() densifies).
using ClusterMap = std::vector<idx_t>;

/// Per-vertex bisection-side pin: -1 = free, 0 / 1 = fixed to that side
/// (the paper's §3 pre-assigned vertices). Empty vector = nothing fixed.
/// Shared with the recursive-bisection engine (see partition/multilevel.hpp).
using FixedSides = part::FixedSides;

/// Heavy Connectivity Matching: pairs each unmatched vertex with the
/// unmatched neighbor sharing the largest total cost of common nets.
/// Nets larger than maxNetSize are skipped while scoring. Vertices fixed to
/// different sides never merge.
ClusterMap cluster_hcm(const hg::Hypergraph& h, Rng& rng, idx_t maxNetSize,
                       const FixedSides& fixed = {});

/// Agglomerative (absorption) clustering: a vertex may join an existing
/// cluster; candidate scores are sum of c_n / (|n| - 1) over shared nets;
/// clusters are capped at maxClusterWeight. Fixed-side compatibility as in
/// cluster_hcm.
ClusterMap cluster_agglomerative(const hg::Hypergraph& h, Rng& rng, idx_t maxNetSize,
                                 weight_t maxClusterWeight, const FixedSides& fixed = {});

/// Random maximal matching (ablation baseline).
ClusterMap cluster_random(const hg::Hypergraph& h, Rng& rng, const FixedSides& fixed = {});

/// One coarsening level.
struct CoarseLevel {
  hg::Hypergraph coarse;
  std::vector<idx_t> fineToCoarse;  ///< dense ids in [0, coarse.num_vertices())
  FixedSides coarseFixed;           ///< side pins inherited by the clusters (may be empty)
};

/// Contracts `fine` under `clusters` (ids densified internally): coarse
/// vertex weights are cluster sums; per-net pins are deduplicated;
/// single-pin nets are dropped (they can never be cut); structurally
/// identical nets are merged with summed costs. When `fixed` is non-empty,
/// the coarse level inherits each cluster's side pin.
CoarseLevel contract(const hg::Hypergraph& fine, const ClusterMap& clusters,
                     const FixedSides& fixed = {});

/// Runs one clustering pass per `cfg` and contracts. Convenience wrapper.
CoarseLevel coarsen_one_level(const hg::Hypergraph& fine, const PartitionConfig& cfg, Rng& rng,
                              const FixedSides& fixed = {});

/// Effective net-size cutoff for matching (resolves the 0 = auto rule).
idx_t effective_max_net_size(const hg::Hypergraph& h, const PartitionConfig& cfg);

}  // namespace fghp::part::hgc
