// Initial bisection of the coarsest hypergraph: Greedy Hypergraph Growing
// (GHG) and random balanced assignment, each polished with FM; the driver
// keeps the best of numInitialRuns attempts.
#pragma once

#include <array>

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/partition.hpp"
#include "partition/config.hpp"
#include "partition/hg/coarsen.hpp"  // FixedSides
#include "util/rng.hpp"

namespace fghp::part::hgi {

using hgc::FixedSides;

/// Random assignment honoring the side targets (greedy first-fit-decreasing
/// on a shuffled order). Fixed vertices go to their pinned side first.
hg::Partition random_bisection(const hg::Hypergraph& h, const std::array<weight_t, 2>& target,
                               Rng& rng, const FixedSides& fixed = {});

/// GHG: start with everything in side 0, grow side 1 from a random seed by
/// repeatedly moving the highest-gain candidate until it reaches its target.
/// Vertices fixed to side 0 never move; side-1-fixed vertices seed the
/// growth front.
hg::Partition ghg_bisection(const hg::Hypergraph& h, const std::array<weight_t, 2>& target,
                            Rng& rng, const FixedSides& fixed = {});

/// Best of cfg.numInitialRuns attempts (algorithm mix per cfg.initial), each
/// FM-refined under maxWeight. Feasible beats infeasible; ties by cut.
hg::Partition initial_bisection(const hg::Hypergraph& h, const std::array<weight_t, 2>& target,
                                const std::array<weight_t, 2>& maxWeight,
                                const PartitionConfig& cfg, Rng& rng,
                                const FixedSides& fixed = {});

/// Deterministic last-resort split used when every multilevel bisection
/// attempt failed (see PartitionConfig::maxBisectAttempts): longest-
/// processing-time-first — vertices in decreasing weight order (ties by id)
/// go to the side with more remaining room. Ignores the cut entirely but
/// always yields a complete bisection whose balance is as good as the
/// vertex weights permit. Fixed vertices land on their pinned side.
hg::Partition greedy_bisection(const hg::Hypergraph& h, const std::array<weight_t, 2>& target,
                               const FixedSides& fixed = {});

}  // namespace fghp::part::hgi
