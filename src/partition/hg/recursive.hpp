// Recursive bisection to K parts with cut-net splitting.
//
// For the connectivity-1 objective (eq. 3), a net cut by a bisection keeps
// contributing for every further part it gets split across; recursing with
// the *restriction* of every net to each side (Çatalyürek–Aykanat's cut-net
// splitting) makes the per-level cut costs telescope exactly to the K-way
// connectivity-1 cutsize. For the cut-net objective (eq. 2) a cut net has
// already paid its full cost and is dropped from both sides.
//
// The fork-join orchestration, RNG discipline and recovery ladder live in
// the shared engine (partition/rb_driver.hpp); this header keeps the
// hypergraph-specific side extraction and the historical public API.
#pragma once

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/partition.hpp"
#include "partition/config.hpp"
#include "partition/multilevel.hpp"
#include "util/rng.hpp"

namespace fghp::part::hgrb {

/// Per-bisection imbalance tolerance (shared with the graph stack; see
/// partition/multilevel.hpp).
using fghp::part::per_level_epsilon;

/// Sub-hypergraph of one bisection side plus its vertex mapping.
struct SideExtract {
  hg::Hypergraph sub;
  std::vector<idx_t> toParent;  ///< sub vertex -> parent vertex
};

/// Extracts the side's vertices; nets are restricted to the side (cut-net
/// splitting) under kConnectivity, or dropped when cut under kCutNet. Nets
/// that fall below 2 pins are dropped either way.
SideExtract extract_side(const hg::Hypergraph& h, const hg::Partition& bisection, idx_t side,
                         hg::CutMetric metric);

struct RecursiveResult {
  hg::Partition partition;       ///< final K-way partition on the input H
  weight_t sumOfBisectionCuts;   ///< telescoped per-level cut costs
  idx_t numRecoveries = 0;       ///< bisection retries + greedy fallbacks taken
  idx_t numDegraded = 0;         ///< nodes demoted by the deadline ladder
};

/// Partitions h into K parts by recursive multilevel bisection. Deterministic
/// in (h, K, cfg.seed). `fixedPart` (optional; kInvalidIdx = free) pins
/// vertices to final parts — the paper's §3 mechanism for reduction problems
/// whose inputs/outputs are pre-assigned to processors.
///
/// Thin wrapper over the unified engine (rb::partition_recursive_rb with the
/// hypergraph traits); see partition/rb_driver.hpp for the recovery-ladder
/// and determinism contract. Every retry and fallback pushes a warning
/// (util/error.hpp) and counts in numRecoveries.
RecursiveResult partition_recursive(const hg::Hypergraph& h, idx_t K,
                                    const PartitionConfig& cfg, Rng& rng,
                                    const std::vector<idx_t>& fixedPart = {});

}  // namespace fghp::part::hgrb
