#include "partition/hg/refine.hpp"

#include <algorithm>
#include <limits>

#include "util/cancel.hpp"

namespace fghp::part::hgr {

namespace {
constexpr idx_t kGainCap = std::numeric_limits<idx_t>::max() / 4;
}

weight_t BisectionFM::compute_cut(const hg::Hypergraph& h, const hg::Partition& p) {
  weight_t cut = 0;
  for (idx_t n = 0; n < h.num_nets(); ++n) {
    const auto pins = h.pins(n);
    if (pins.empty()) continue;
    const idx_t first = p.part_of(pins.front());
    for (idx_t v : pins) {
      if (p.part_of(v) != first) {
        cut += h.net_cost(n);
        break;
      }
    }
  }
  return cut;
}

idx_t BisectionFM::gain_of(const hg::Hypergraph& h, const hg::Partition& p, idx_t v) const {
  const idx_t from = p.part_of(v);
  const idx_t to = 1 - from;
  weight_t gain = 0;
  for (idx_t n : h.nets(v)) {
    const auto& cnt = pinsIn_[static_cast<std::size_t>(n)];
    if (cnt[static_cast<std::size_t>(from)] == 1) gain += h.net_cost(n);
    if (cnt[static_cast<std::size_t>(to)] == 0) gain -= h.net_cost(n);
  }
  FGHP_ASSERT(gain > -kGainCap && gain < kGainCap);
  return static_cast<idx_t>(gain);
}

void BisectionFM::attach(const hg::Hypergraph& h, const hg::Partition& p) {
  FGHP_ASSERT(p.num_parts() == 2);
  pinsIn_.assign(static_cast<std::size_t>(h.num_nets()), {0, 0});
  for (idx_t n = 0; n < h.num_nets(); ++n) {
    auto& cnt = pinsIn_[static_cast<std::size_t>(n)];
    for (idx_t v : h.pins(n)) ++cnt[static_cast<std::size_t>(p.part_of(v))];
  }
  locked_.assign(static_cast<std::size_t>(h.num_vertices()), 0);

  weight_t maxIncident = 0;
  for (idx_t v = 0; v < h.num_vertices(); ++v) {
    weight_t inc = 0;
    for (idx_t n : h.nets(v)) inc += h.net_cost(n);
    maxIncident = std::max(maxIncident, inc);
  }
  FGHP_REQUIRE(maxIncident < kGainCap, "net costs too large for FM gain buckets");
  queue_[0].reset(h.num_vertices(), static_cast<idx_t>(maxIncident));
  queue_[1].reset(h.num_vertices(), static_cast<idx_t>(maxIncident));
}

void BisectionFM::apply_move(const hg::Hypergraph& h, hg::Partition& p, idx_t v,
                             bool updateGains) {
  const idx_t from = p.part_of(v);
  const idx_t to = 1 - from;

  if (updateGains) {
    locked_[static_cast<std::size_t>(v)] = 1;
    for (idx_t s = 0; s < 2; ++s)
      if (queue_[static_cast<std::size_t>(s)].contains(v))
        queue_[static_cast<std::size_t>(s)].remove(v);
  }

  for (idx_t n : h.nets(v)) {
    auto& cnt = pinsIn_[static_cast<std::size_t>(n)];
    const weight_t cw = h.net_cost(n);
    const idx_t c = static_cast<idx_t>(cw);

    if (updateGains) {
      // Classic FM critical-net rules. Gains live only for queued (unlocked
      // boundary) vertices; a net that becomes newly cut activates its pins.
      auto adjust = [&](idx_t u, idx_t delta) {
        if (locked_[static_cast<std::size_t>(u)]) return;
        const idx_t side = p.part_of(u);
        auto& q = queue_[static_cast<std::size_t>(side)];
        if (q.contains(u)) q.adjust(u, delta);
      };
      const idx_t T = cnt[static_cast<std::size_t>(to)];
      const idx_t F = cnt[static_cast<std::size_t>(from)];
      if (T == 0) {
        for (idx_t u : h.pins(n)) {
          if (u == v || locked_[static_cast<std::size_t>(u)]) continue;
          const idx_t side = p.part_of(u);
          auto& q = queue_[static_cast<std::size_t>(side)];
          if (q.contains(u)) {
            q.adjust(u, c);
          } else {
            activate_.push_back(u);  // newly boundary; pushed after the move
          }
        }
      } else if (T == 1) {
        for (idx_t u : h.pins(n)) {
          if (u != v && p.part_of(u) == to) {
            adjust(u, -c);
            break;
          }
        }
      }
      // Counts change here, between the before- and after-rules.
      --cnt[static_cast<std::size_t>(from)];
      ++cnt[static_cast<std::size_t>(to)];
      const idx_t Fafter = F - 1;
      if (Fafter == 0) {
        for (idx_t u : h.pins(n)) {
          if (u != v) adjust(u, -c);
        }
      } else if (Fafter == 1) {
        for (idx_t u : h.pins(n)) {
          if (u != v && p.part_of(u) == from) {
            adjust(u, c);
            break;
          }
        }
      }
    } else {
      --cnt[static_cast<std::size_t>(from)];
      ++cnt[static_cast<std::size_t>(to)];
    }
  }

  p.move(h, v, to);

  if (updateGains && !activate_.empty()) {
    for (idx_t u : activate_) {
      if (locked_[static_cast<std::size_t>(u)]) continue;
      auto& q = queue_[static_cast<std::size_t>(p.part_of(u))];
      if (!q.contains(u)) q.push(u, gain_of(h, p, u));
    }
    activate_.clear();
  }
}

weight_t BisectionFM::pass(const hg::Hypergraph& h, hg::Partition& p,
                           const std::array<weight_t, 2>& maxWeight, weight_t startCut,
                           Rng& rng) {
  std::fill(locked_.begin(), locked_.end(), 0);
  queue_[0].clear();
  queue_[1].clear();
  activate_.clear();
  if (fixed_ != nullptr && !fixed_->empty()) {
    // Fixed vertices are permanently locked: never queued, never activated.
    for (idx_t v = 0; v < h.num_vertices(); ++v) {
      if (is_fixed(v)) locked_[static_cast<std::size_t>(v)] = 1;
    }
  }

  // Seed the queues with boundary vertices, in random order for tie variety.
  for (idx_t v : rng.permutation(h.num_vertices())) {
    if (locked_[static_cast<std::size_t>(v)]) continue;
    bool boundary = false;
    for (idx_t n : h.nets(v)) {
      const auto& cnt = pinsIn_[static_cast<std::size_t>(n)];
      if (cnt[0] > 0 && cnt[1] > 0) {
        boundary = true;
        break;
      }
    }
    if (boundary) {
      queue_[static_cast<std::size_t>(p.part_of(v))].push(v, gain_of(h, p, v));
    }
  }

  const auto earlyLimit = std::max<std::size_t>(
      static_cast<std::size_t>(cfg_.minFmMoves),
      static_cast<std::size_t>(cfg_.fmEarlyExitFraction *
                               static_cast<double>(h.num_vertices())));

  std::vector<idx_t> moves;
  weight_t cur = startCut;
  weight_t best = startCut;
  std::size_t bestPrefix = 0;

  while (!queue_[0].empty() || !queue_[1].empty()) {
    // Pick the best feasible move among the two queue tops.
    idx_t chosenSide = kInvalidIdx;
    idx_t chosenGain = 0;
    idx_t infeasibleSide = kInvalidIdx;
    idx_t infeasibleGain = 0;
    for (idx_t s = 0; s < 2; ++s) {
      auto& q = queue_[static_cast<std::size_t>(s)];
      if (q.empty()) continue;
      const idx_t g = q.max_gain();
      const idx_t top = h.num_vertices();  // placeholder for clarity
      (void)top;
      // Feasibility check needs the concrete vertex weight: peek via pop/push
      // would disturb LIFO order, so check with the top item.
      // BucketQueue lacks peek-item; emulate by pop + conditional re-push.
      const idx_t v = q.pop_max();
      const idx_t to = 1 - s;
      const bool feasible =
          p.part_weight(to) + h.vertex_weight(v) <= maxWeight[static_cast<std::size_t>(to)];
      q.push(v, g);  // restore; selection below re-pops the winner
      if (feasible) {
        if (chosenSide == kInvalidIdx || g > chosenGain ||
            (g == chosenGain && p.part_weight(s) > p.part_weight(chosenSide))) {
          chosenSide = s;
          chosenGain = g;
        }
      } else if (infeasibleSide == kInvalidIdx || g > infeasibleGain) {
        infeasibleSide = s;
        infeasibleGain = g;
      }
    }

    if (chosenSide == kInvalidIdx) {
      if (infeasibleSide == kInvalidIdx) break;
      // Discard the unusable top (locked for the rest of the pass).
      const idx_t v = queue_[static_cast<std::size_t>(infeasibleSide)].pop_max();
      locked_[static_cast<std::size_t>(v)] = 1;
      continue;
    }

    const idx_t v = queue_[static_cast<std::size_t>(chosenSide)].pop_max();
    queue_[static_cast<std::size_t>(chosenSide)].push(v, chosenGain);  // apply_move removes it
    apply_move(h, p, v, /*updateGains=*/true);
    moves.push_back(v);
    cur -= chosenGain;
    FGHP_ASSERT(cur >= 0);
    if (cur < best) {
      best = cur;
      bestPrefix = moves.size();
    }
    if (moves.size() - bestPrefix > earlyLimit) break;
  }

  // Roll back to the best prefix.
  for (std::size_t i = moves.size(); i > bestPrefix; --i) {
    apply_move(h, p, moves[i - 1], /*updateGains=*/false);
  }
  return best;
}

weight_t BisectionFM::refine(const hg::Hypergraph& h, hg::Partition& p,
                             const std::array<weight_t, 2>& maxWeight, Rng& rng) {
  FGHP_REQUIRE(p.num_parts() == 2, "BisectionFM requires a 2-way partition");
  FGHP_REQUIRE(p.complete(), "partition must be complete");
  attach(h, p);
  rebalance(h, p, maxWeight);

  weight_t cut = compute_cut(h, p);
  for (idx_t passNo = 0; passNo < cfg_.maxFmPasses; ++passNo) {
    // Per-pass check-point: the finest-grain cancellation granularity in
    // the partitioner. A deadline here aborts the bisection; the RB
    // driver's ladder answers with the greedy split.
    cancel::check_point(cfg_.cancel, "fm.pass", nullptr, passNo + 1);
    const weight_t next = pass(h, p, maxWeight, cut, rng);
    FGHP_ASSERT(next <= cut);
    if (next == cut) break;
    cut = next;
  }
  return cut;
}

void BisectionFM::rebalance(const hg::Hypergraph& h, hg::Partition& p,
                            const std::array<weight_t, 2>& maxWeight) {
  for (idx_t s = 0; s < 2; ++s) {
    if (p.part_weight(s) <= maxWeight[static_cast<std::size_t>(s)]) continue;
    // Move cheapest-damage vertices off the overloaded side until it fits.
    std::fill(locked_.begin(), locked_.end(), 0);
    queue_[0].clear();
    queue_[1].clear();
    activate_.clear();
    auto& q = queue_[static_cast<std::size_t>(s)];
    for (idx_t v = 0; v < h.num_vertices(); ++v) {
      if (is_fixed(v)) {
        locked_[static_cast<std::size_t>(v)] = 1;
        continue;
      }
      if (p.part_of(v) == s) q.push(v, gain_of(h, p, v));
    }
    while (p.part_weight(s) > maxWeight[static_cast<std::size_t>(s)] && !q.empty()) {
      const idx_t g = q.max_gain();
      const idx_t v = q.pop_max();
      q.push(v, g);  // apply_move unlinks it
      apply_move(h, p, v, /*updateGains=*/true);
    }
  }
}

}  // namespace fghp::part::hgr
