// The unified multilevel recursive-bisection engine.
//
// One driver, two problem families: partition/hg/rb_traits.hpp plugs in the
// fine-grain hypergraph stack (cut-net splitting, connectivity-1 telescoping)
// and partition/gp/rb_traits.hpp the graph baseline (cut-edge dropping,
// edge-cut telescoping). The public per-family entry points
// (hgrb::partition_recursive, gprb::partition_graph_recursive) are thin
// wrappers over partition_recursive_rb, so the fork-join orchestration, the
// recovery ladder and the strict revalidation exist in exactly one
// translation unit (rb_driver.cpp, which explicitly instantiates both).
//
// See partition/multilevel.hpp for the traits contract and the determinism
// invariants the engine guarantees.
#pragma once

#include <vector>

#include "partition/config.hpp"
#include "partition/multilevel.hpp"
#include "util/rng.hpp"

namespace fghp::part::rb {

/// Partitions the problem into K parts by recursive multilevel bisection.
/// Deterministic in (problem, K, cfg.seed) at any thread count. `fixedPart`
/// (optional; kInvalidIdx = free) pins vertices to final parts.
///
/// Failure recovery (bounded by cfg.maxBisectAttempts): a bisection node
/// whose Traits::bisect throws (injected fault, internal error) or comes
/// back infeasible is retried with a reseeded Rng stream and relaxed
/// per-side caps; if every attempt throws, the node degrades to
/// Traits::greedy_fallback. Every retry and fallback pushes a warning
/// (util/error.hpp) and counts in RbResult::numRecoveries. When
/// cfg.validateLevel is kStrict, every accepted bisection is deep-validated
/// via Traits::validate_bisection before recursion continues.
///
/// Deadlines (cfg.cancel): every node runs a cooperative check-point before
/// any subtree work. A manual cancel throws CancelledError; an expiring
/// deadline (with cfg.degradeOnDeadline) demotes remaining subtrees down
/// the ladder full multilevel -> coarsen-light -> deterministic greedy
/// split, counted in RbResult::numDegraded, so the run still returns a
/// valid partition. With degradation off it throws DeadlineExceededError.
template <class Traits>
RbResult<Traits> partition_recursive_rb(const typename Traits::Problem& problem, idx_t K,
                                        const PartitionConfig& cfg, Rng& rng,
                                        const std::vector<idx_t>& fixedPart = {});

}  // namespace fghp::part::rb
