// Shared vocabulary of the unified multilevel recursive-bisection engine
// (partition/rb_driver.hpp).
//
// The engine owns everything that is identical between the paper's
// fine-grain hypergraph partitioner and the Table-2 graph baseline: the
// fork-join task decomposition over the thread pool, deterministic
// per-subproblem RNG stream derivation, cut-cost telescoping, phase timers,
// fault-point arming, the retry-with-reseed/relax -> deterministic-greedy
// recovery ladder, recovery counters, and strict revalidation. Everything
// that differs — how a sub-problem is bisected, how a bisection side is
// extracted (cut-net splitting vs. cut-edge dropping), how the cut is
// measured, how a partition is deep-validated — enters through a *problem
// traits* struct:
//
//   struct Traits {
//     using Problem = ...;    // hg::Hypergraph | gp::Graph
//     using Partition = ...;  // hg::Partition  | gp::GPartition
//     // Fault sites armed at each bisection node / retry attempt.
//     static constexpr const char* kBisectSite;
//     static constexpr const char* kRetrySite;
//     // One multilevel bisection under per-side caps (may throw).
//     static Partition bisect(const Problem&, const std::array<weight_t, 2>& target,
//                             const std::array<weight_t, 2>& cap,
//                             const PartitionConfig&, Rng&, const FixedSides&);
//     // Deterministic last-resort split when every attempt threw.
//     static Partition greedy_fallback(const Problem&,
//                                      const std::array<weight_t, 2>& target,
//                                      const FixedSides&);
//     // Cut cost of one bisection (telescopes to the K-way objective).
//     static weight_t bisection_cut(const Problem&, const Partition&);
//     // Sub-problem of one bisection side plus its vertex mapping.
//     static RbSide<Traits> extract_side(const Problem&, const Partition& bisection,
//                                        idx_t side, const PartitionConfig&);
//     // Deep consistency check (throws InvariantError); strict mode only.
//     static void validate_bisection(const Problem&, const Partition&);
//     // Work-size estimate for the degradation ladder's cost model
//     // (vertices + pins/edges — proportional to one bisection's cost).
//     static double problem_size(const Problem&);
//   };
//
// The Problem type must expose num_vertices() / total_vertex_weight() /
// vertex_weight(v), and the Partition type part_of(v) / part_weight(side) /
// a (problem, K, assignment) constructor — both families already share that
// surface.
//
// Determinism contract (DESIGN.md invariant 7): the engine derives every
// recursion branch's Rng stream *before* the branches fork and all recovery
// decisions are functions of (inputs, seed, fault spec) alone, so the final
// partition is bit-identical at any thread count.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace fghp::part {

/// Per-vertex bisection-side pin: -1 = free, 0 / 1 = fixed to that side
/// (the paper's §3 pre-assigned vertices). Empty vector = nothing fixed.
using FixedSides = std::vector<signed char>;

/// Sub-problem of one bisection side plus its vertex mapping.
template <class Traits>
struct RbSide {
  typename Traits::Problem sub;
  std::vector<idx_t> toParent;  ///< sub vertex -> parent vertex
};

/// Result of one recursive-bisection run.
template <class Traits>
struct RbResult {
  typename Traits::Partition partition;  ///< final K-way partition on the input
  weight_t sumOfBisectionCuts = 0;       ///< telescoped per-level cut costs
  idx_t numRecoveries = 0;               ///< bisection retries + greedy fallbacks taken
  idx_t numDegraded = 0;                 ///< nodes demoted by the deadline ladder
};

/// Per-bisection imbalance tolerance such that the product over
/// ceil(log2 K) levels stays within epsilon.
double per_level_epsilon(double epsilon, idx_t K);

}  // namespace fghp::part
