// The geometric fast-path partitioner: nonzeros as weighted 2D points,
// recursively bisected at weighted medians along the longer axis by the
// unified RB engine (partition/rb_driver.hpp via partition/geo/rb_traits.hpp).
//
// Quality-for-time tradeoff versus the multilevel stack: no coarsening, no
// FM, no hypergraph — just counting sorts — so partitioning is an order of
// magnitude faster while the cut is typically within a small factor (the
// Pareto frontier is measured by bench/bench_pareto). Because the point
// lines ARE the fine-grain nets, the telescoped per-level cut equals the
// exact lambda-1 connectivity cutsize, reported without ever building the
// hypergraph. Deterministic in (points, K, cfg.seed) at any thread count.
#pragma once

#include <vector>

#include "partition/config.hpp"
#include "partition/geo/points.hpp"

namespace fghp::part::geo {

struct GeoResult {
  GeoPartition partition;
  weight_t cutsize = 0;     ///< exact lambda-1 connectivity cutsize
  double imbalance = 0.0;   ///< max_k W_k / W_avg - 1
  double seconds = 0.0;     ///< partitioning wall time
  idx_t numRecoveries = 0;  ///< bisection retries + greedy fallbacks taken
  idx_t numDegraded = 0;    ///< nodes demoted by the deadline ladder
};

/// Partitions the point set into K parts by recursive weighted-median
/// bisection. Shares the engine's whole operational surface: fault sites
/// geo.split / geo.retry with the retry -> greedy recovery ladder, per-node
/// and mid-split cancellation check-points, the deadline degradation ladder,
/// tracing spans, and strict revalidation under cfg.validateLevel. The
/// result is always balance-feasible (hg::balance_cap); a best-effort
/// bisection that overshoots is repaired by a deterministic rebalance pass.
/// `fixedPart` (optional; kInvalidIdx = free) pins points to final parts.
GeoResult partition_points_geometric(const GeoPoints& pts, idx_t K,
                                     const PartitionConfig& cfg,
                                     const std::vector<idx_t>& fixedPart = {});

}  // namespace fghp::part::geo
