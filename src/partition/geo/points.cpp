#include "partition/geo/points.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fghp::part::geo {

GeoPoints make_points(std::vector<idx_t> row, std::vector<idx_t> col,
                      std::vector<weight_t> wgt, idx_t numRows, idx_t numCols) {
  FGHP_REQUIRE(row.size() == col.size() && row.size() == wgt.size(),
               "point arrays must have equal length");
  GeoPoints pts;
  pts.row = std::move(row);
  pts.col = std::move(col);
  pts.wgt = std::move(wgt);
  pts.numRows = numRows;
  pts.numCols = numCols;
  for (std::size_t v = 0; v < pts.row.size(); ++v) {
    FGHP_REQUIRE(pts.row[v] >= 0 && pts.row[v] < numRows, "point row out of range");
    FGHP_REQUIRE(pts.col[v] >= 0 && pts.col[v] < numCols, "point col out of range");
    FGHP_REQUIRE(pts.wgt[v] >= 0, "point weight must be nonnegative");
    pts.totalWeight += pts.wgt[v];
  }
  return pts;
}

GeoPartition::GeoPartition(const GeoPoints& pts, idx_t numParts,
                           std::vector<idx_t> assignment)
    : numParts_(numParts), part_(std::move(assignment)) {
  FGHP_REQUIRE(numParts_ >= 1, "need at least one part");
  FGHP_REQUIRE(part_.size() == static_cast<std::size_t>(pts.num_vertices()),
               "assignment size mismatch");
  partWeight_.assign(static_cast<std::size_t>(numParts_), 0);
  for (std::size_t v = 0; v < part_.size(); ++v) {
    const idx_t p = part_[v];
    FGHP_REQUIRE(p >= 0 && p < numParts_, "assignment entry out of range");
    partWeight_[static_cast<std::size_t>(p)] += pts.wgt[v];
  }
}

bool GeoPartition::complete() const {
  return std::all_of(part_.begin(), part_.end(),
                     [](idx_t p) { return p != kInvalidIdx; });
}

weight_t connectivity_cutsize(const GeoPoints& pts, const GeoPartition& p) {
  FGHP_REQUIRE(p.num_vertices() == pts.num_vertices(), "partition/points mismatch");
  // Group points by row (then by col) with one counting pass each; a stamp
  // array over parts counts distinct parts per coordinate line. O(z + n + K).
  weight_t cut = 0;
  const idx_t z = pts.num_vertices();
  std::vector<idx_t> offset, order, stamp;
  auto sweep = [&](const std::vector<idx_t>& coord, idx_t bound) {
    offset.assign(static_cast<std::size_t>(bound) + 1, 0);
    for (idx_t v = 0; v < z; ++v)
      ++offset[static_cast<std::size_t>(coord[static_cast<std::size_t>(v)]) + 1];
    for (idx_t c = 0; c < bound; ++c)
      offset[static_cast<std::size_t>(c) + 1] += offset[static_cast<std::size_t>(c)];
    order.resize(static_cast<std::size_t>(z));
    std::vector<idx_t> cursor(offset.begin(), offset.end() - 1);
    for (idx_t v = 0; v < z; ++v)
      order[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(coord[static_cast<std::size_t>(v)])]++)] = v;
    stamp.assign(static_cast<std::size_t>(p.num_parts()), -1);
    for (idx_t c = 0; c < bound; ++c) {
      idx_t lambda = 0;
      for (idx_t i = offset[static_cast<std::size_t>(c)];
           i < offset[static_cast<std::size_t>(c) + 1]; ++i) {
        const idx_t pt = p.part_of(order[static_cast<std::size_t>(i)]);
        if (stamp[static_cast<std::size_t>(pt)] != c) {
          stamp[static_cast<std::size_t>(pt)] = c;
          ++lambda;
        }
      }
      if (lambda > 1) cut += lambda - 1;
    }
  };
  sweep(pts.row, pts.numRows);
  sweep(pts.col, pts.numCols);
  return cut;
}

double imbalance(const GeoPoints& pts, const GeoPartition& p) {
  if (pts.totalWeight == 0) return 0.0;
  const double avg =
      static_cast<double>(pts.totalWeight) / static_cast<double>(p.num_parts());
  weight_t wmax = 0;
  for (idx_t k = 0; k < p.num_parts(); ++k) wmax = std::max(wmax, p.part_weight(k));
  return static_cast<double>(wmax) / avg - 1.0;
}

void validate_partition_or_throw(const GeoPoints& pts, const GeoPartition& p,
                                 const char* where) {
  ErrorContext ctx;
  ctx.phase = where;
  if (p.num_vertices() != pts.num_vertices())
    throw InvariantError("point partition size mismatch", std::move(ctx));
  std::vector<weight_t> sums(static_cast<std::size_t>(p.num_parts()), 0);
  for (idx_t v = 0; v < pts.num_vertices(); ++v) {
    const idx_t k = p.part_of(v);
    if (k < 0 || k >= p.num_parts())
      throw InvariantError("point assigned out of range", std::move(ctx));
    sums[static_cast<std::size_t>(k)] += pts.wgt[static_cast<std::size_t>(v)];
  }
  for (idx_t k = 0; k < p.num_parts(); ++k) {
    if (sums[static_cast<std::size_t>(k)] != p.part_weight(k))
      throw InvariantError("point partition weights inconsistent", std::move(ctx));
  }
}

}  // namespace fghp::part::geo
