// One-pass streaming partitioner: each point is greedily assigned, in index
// order, to the part with the best connectivity/balance score, where a
// part's row/col incidence is tracked by fixed-size Bloom-style bit-array
// summaries — memory is O(K) regardless of the matrix, and every point is
// touched exactly once.
//
// Score of placing point (r, c, w) on part k with load L_k and cap C:
//
//   score(k) = [r in rows(k)] + [c in cols(k)] - 1.5 * L_k / C
//
// i.e. reuse an already-open row/col net if possible (each hit avoids one
// unit of lambda-1 cut) but lean away from heavy parts; only parts with
// L_k + w <= C compete, so the result is balance-feasible by construction
// (C = hg::balance_cap, and with unit weights the lightest part always
// fits). Ties go to the lowest part id. Bloom false positives can only
// misjudge a score, never break feasibility or determinism.
//
// The pass is chunked (kStreamChunk points); every chunk boundary is a
// fault site ("stream.assign", retried as "stream.retry" then degraded to
// least-loaded assignment — the recovery ladder) and a cancellation
// check-point (deadline expiry with cfg.degradeOnDeadline flips the rest of
// the stream to pure least-loaded assignment instead of failing).
// Deterministic in (points, K, cfg.seed); single-threaded by design, so
// thread count never enters.
#pragma once

#include "partition/config.hpp"
#include "partition/geo/points.hpp"

namespace fghp::part::geo {

/// Points per streaming chunk: the granularity of fault/cancel check-points.
inline constexpr idx_t kStreamChunk = 4096;

struct StreamResult {
  GeoPartition partition;
  weight_t cutsize = 0;         ///< exact lambda-1 connectivity cutsize
  double imbalance = 0.0;       ///< max_k W_k / W_avg - 1
  double seconds = 0.0;         ///< partitioning wall time
  idx_t numRecoveries = 0;      ///< chunk retries + least-loaded fallbacks
  idx_t numDegraded = 0;        ///< 1 when a deadline demoted the stream tail
  std::size_t summaryBytes = 0; ///< total bytes of per-part summaries (O(K))
};

/// Partitions the point set into K parts in one streaming pass.
StreamResult partition_points_streaming(const GeoPoints& pts, idx_t K,
                                        const PartitionConfig& cfg);

}  // namespace fghp::part::geo
