#include "partition/geo/streaming.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "hypergraph/metrics.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace fghp::part::geo {

namespace {

/// Bits per part per dimension. 8192 bits = 1 KiB, so even K = 1024 keeps
/// all summaries inside 2 MiB while line collisions stay rare for the
/// paper-scale matrices (a collision only perturbs a score, never breaks
/// feasibility or determinism).
constexpr std::uint64_t kSummaryBits = 8192;
constexpr std::size_t kSummaryWords = kSummaryBits / 64;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Fixed-size Bloom-style incidence summaries for all K parts in one
/// dimension (rows or cols). One hash per line id is enough here: the
/// summary only biases a greedy score, so the classic multi-hash/false-
/// positive tradeoff buys nothing worth the extra probes.
class Summaries {
 public:
  Summaries(idx_t K, std::uint64_t salt)
      : words_(static_cast<std::size_t>(K) * kSummaryWords, 0), salt_(salt) {}

  std::uint64_t bit_of(idx_t line) const {
    return splitmix64(salt_ ^ static_cast<std::uint64_t>(line)) & (kSummaryBits - 1);
  }
  bool test(idx_t part, std::uint64_t bit) const {
    return (words_[word(part, bit)] >> (bit & 63)) & 1u;
  }
  void set(idx_t part, std::uint64_t bit) { words_[word(part, bit)] |= 1ULL << (bit & 63); }
  std::size_t bytes() const { return words_.size() * sizeof(std::uint64_t); }

 private:
  std::size_t word(idx_t part, std::uint64_t bit) const {
    return static_cast<std::size_t>(part) * kSummaryWords + (bit >> 6);
  }
  std::vector<std::uint64_t> words_;
  std::uint64_t salt_;
};

idx_t least_loaded(const std::vector<weight_t>& load) {
  return static_cast<idx_t>(
      std::min_element(load.begin(), load.end()) - load.begin());
}

}  // namespace

StreamResult partition_points_streaming(const GeoPoints& pts, idx_t K,
                                        const PartitionConfig& cfg) {
  FGHP_REQUIRE(K >= 1, "K must be positive");
  WallTimer timer;

  std::optional<fault::ScopedSpec> faultScope;
  if (!cfg.faultSpec.empty()) faultScope.emplace(cfg.faultSpec);
  trace::ScopedCapture traceScope(cfg.traceOut);
  trace::TraceScope span("partition", "stream.partition", "k", K, "verts",
                         pts.num_vertices());

  cancel::check_point(cfg.cancel, "stream.partition", nullptr, 1,
                      /*deadlineThrows=*/!cfg.degradeOnDeadline);

  const idx_t z = pts.num_vertices();
  const weight_t cap = hg::balance_cap(pts.totalWeight, K, cfg.epsilon);
  Summaries rows(K, splitmix64(cfg.seed ^ 0x726f7773ULL));
  Summaries cols(K, splitmix64(cfg.seed ^ 0x636f6c73ULL));
  std::vector<weight_t> load(static_cast<std::size_t>(K), 0);
  std::vector<idx_t> part(static_cast<std::size_t>(z), kInvalidIdx);

  StreamResult out;
  out.summaryBytes = rows.bytes() + cols.bytes();

  // Scored greedy assignment of points [lo, hi). Reads and mutates the
  // summaries and loads; never touches points before lo, so a chunk whose
  // head fault fired retries cleanly.
  auto assign_scored = [&](idx_t lo, idx_t hi) {
    for (idx_t v = lo; v < hi; ++v) {
      const weight_t w = pts.wgt[static_cast<std::size_t>(v)];
      const std::uint64_t rBit = rows.bit_of(pts.row[static_cast<std::size_t>(v)]);
      const std::uint64_t cBit = cols.bit_of(pts.col[static_cast<std::size_t>(v)]);
      idx_t bestK = kInvalidIdx;
      double bestScore = 0.0;
      for (idx_t k = 0; k < K; ++k) {
        const weight_t lk = load[static_cast<std::size_t>(k)];
        if (lk + w > cap) continue;
        const double score = (rows.test(k, rBit) ? 1.0 : 0.0) +
                             (cols.test(k, cBit) ? 1.0 : 0.0) -
                             1.5 * static_cast<double>(lk) / static_cast<double>(cap);
        if (bestK == kInvalidIdx || score > bestScore) {
          bestK = k;
          bestScore = score;
        }
      }
      // Unreachable for unit weights (the lightest part always fits under
      // balance_cap); a heavyweight point that fits nowhere goes to the
      // least-loaded part as the best infeasible-input answer.
      if (bestK == kInvalidIdx) bestK = least_loaded(load);
      part[static_cast<std::size_t>(v)] = bestK;
      load[static_cast<std::size_t>(bestK)] += w;
      rows.set(bestK, rBit);
      cols.set(bestK, cBit);
    }
  };

  // Ladder floor (and post-deadline mode): pure least-loaded assignment.
  // No summary updates — the tail of a degraded stream spends nothing on
  // quality, matching the RB engine's greedy rung.
  auto assign_least_loaded = [&](idx_t lo, idx_t hi) {
    for (idx_t v = lo; v < hi; ++v) {
      const idx_t k = least_loaded(load);
      part[static_cast<std::size_t>(v)] = k;
      load[static_cast<std::size_t>(k)] += pts.wgt[static_cast<std::size_t>(v)];
    }
  };

  const idx_t attempts = std::max<idx_t>(1, cfg.maxBisectAttempts);
  bool degradedMode = false;
  for (idx_t chunk = 0, lo = 0; lo < z; ++chunk, lo += kStreamChunk) {
    const idx_t hi = std::min<idx_t>(z, lo + kStreamChunk);
    const cancel::Status st =
        cancel::check_point(cfg.cancel, "stream.assign", nullptr, chunk + 1,
                            /*deadlineThrows=*/!cfg.degradeOnDeadline);
    if (st == cancel::Status::kDeadlineExpired && !degradedMode) {
      degradedMode = true;
      out.numDegraded = 1;
      trace::instant("cancel", "stream.degraded", "chunk", chunk + 1);
      std::ostringstream os;
      os << "deadline expired at streaming chunk " << chunk + 1
         << "; remaining points assigned least-loaded";
      push_warning(os.str());
    }
    if (degradedMode) {
      assign_least_loaded(lo, hi);
      continue;
    }
    // Bounded recovery, one rung per attempt: the fault site sits at the
    // chunk head, before any assignment, so a retry replays the chunk from
    // untouched state. When every attempt faults the chunk degrades to
    // least-loaded assignment — the stream always finishes.
    bool done = false;
    for (idx_t a = 0; a < attempts && !done; ++a) {
      try {
        fault::check(a == 0 ? "stream.assign" : "stream.retry", chunk + 1);
        assign_scored(lo, hi);
        done = true;
        if (a > 0) {
          ++out.numRecoveries;
          trace::instant("recovery", "stream.retry_recovered", "chunk", chunk + 1);
          std::ostringstream os;
          os << "streaming chunk " << chunk + 1 << " recovered on attempt " << a + 1
             << " of " << attempts;
          push_warning(os.str());
        }
      } catch (const CancelledError&) {
        throw;
      } catch (const DeadlineExceededError&) {
        throw;
      } catch (const std::exception& e) {
        std::ostringstream os;
        os << "streaming chunk " << chunk + 1 << " attempt " << a + 1 << " of "
           << attempts << " failed: " << e.what();
        push_warning(os.str());
      }
    }
    if (!done) {
      ++out.numRecoveries;
      trace::instant("recovery", "stream.greedy_fallback", "chunk", chunk + 1);
      push_warning("streaming chunk " + std::to_string(chunk + 1) +
                   " failed every attempt; assigned least-loaded");
      assign_least_loaded(lo, hi);
    }
  }

  GeoPartition p(pts, K, std::move(part));
  if (cfg.validateLevel == ValidateLevel::kStrict)
    validate_partition_or_throw(pts, p, "stream-partition");

  static metrics::Counter& runs = metrics::counter("partition.stream.runs");
  static metrics::Counter& recovered = metrics::counter("partition.recoveries");
  runs.add();
  recovered.add(out.numRecoveries);

  out.cutsize = connectivity_cutsize(pts, p);
  out.imbalance = imbalance(pts, p);
  out.partition = std::move(p);
  out.seconds = timer.seconds();
  return out;
}

}  // namespace fghp::part::geo
