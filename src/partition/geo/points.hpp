// Nonzeros as weighted 2D points — the substrate of the fast-path fine-grain
// partitioners (geometric recursive splits, one-pass streaming).
//
// A point v sits at (row[v], col[v]) and carries a nonnegative weight; the
// implicit *nets* are the coordinate lines: every distinct row id is a row
// net over the points on it, every distinct col id a column net. For the
// fine-grain SpMV model (one point per nonzero plus a zero-weight dummy per
// missing diagonal, ids matching models::build_finegrain) these lines are
// exactly the hypergraph's m_i / n_j nets, so the lambda-1 connectivity
// cutsize computed here equals the hypergraph cutsize — and the total
// communication volume — without ever materializing pin lists.
//
// GeoPoints/GeoPartition expose the Problem/Partition surface the unified
// recursive-bisection engine requires (partition/multilevel.hpp), so the
// geometric partitioner is just a third Traits instantiation of rb_driver.
#pragma once

#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace fghp::part::geo {

struct GeoPoints {
  std::vector<idx_t> row, col;   ///< point coordinates (global ids, never renumbered)
  std::vector<weight_t> wgt;     ///< per-point weights (>= 0)
  idx_t numRows = 0;             ///< exclusive row-coordinate bound
  idx_t numCols = 0;             ///< exclusive col-coordinate bound
  weight_t totalWeight = 0;      ///< cached sum of wgt

  idx_t num_vertices() const { return static_cast<idx_t>(row.size()); }
  weight_t total_vertex_weight() const { return totalWeight; }
  weight_t vertex_weight(idx_t v) const { return wgt[static_cast<std::size_t>(v)]; }
};

/// Builds a point set, validating coordinates and caching the total weight.
GeoPoints make_points(std::vector<idx_t> row, std::vector<idx_t> col,
                      std::vector<weight_t> wgt, idx_t numRows, idx_t numCols);

/// K-way partition of a point set: per-point part plus maintained part
/// weights (mirrors hg::Partition's surface for the shared RB engine).
class GeoPartition {
 public:
  GeoPartition() = default;

  /// Adopts an existing assignment (every entry in [0, numParts)).
  GeoPartition(const GeoPoints& pts, idx_t numParts, std::vector<idx_t> assignment);

  idx_t num_parts() const { return numParts_; }
  idx_t num_vertices() const { return static_cast<idx_t>(part_.size()); }
  idx_t part_of(idx_t v) const { return part_[static_cast<std::size_t>(v)]; }
  weight_t part_weight(idx_t part) const {
    return partWeight_[static_cast<std::size_t>(part)];
  }
  const std::vector<weight_t>& part_weights() const { return partWeight_; }
  const std::vector<idx_t>& assignment() const { return part_; }
  bool complete() const;

 private:
  idx_t numParts_ = 0;
  std::vector<idx_t> part_;
  std::vector<weight_t> partWeight_;
};

/// Exact lambda-1 connectivity cutsize of a complete point partition under
/// unit net costs: sum over coordinate lines of (distinct parts - 1).
weight_t connectivity_cutsize(const GeoPoints& pts, const GeoPartition& p);

/// max_k W_k / W_avg - 1 (0 = perfect balance or empty point set).
double imbalance(const GeoPoints& pts, const GeoPartition& p);

/// Deep consistency check: completeness, in-range parts, part weights that
/// match the point weights. Throws InvariantError naming `where`.
void validate_partition_or_throw(const GeoPoints& pts, const GeoPartition& p,
                                 const char* where);

}  // namespace fghp::part::geo
