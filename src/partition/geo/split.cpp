#include "partition/geo/split.hpp"

#include <algorithm>

#include "util/cancel.hpp"

namespace fghp::part::geo {

namespace {

/// Buckets swept between cancel check-points: one clock read per 256
/// coordinate lines keeps the mid-split deadline responsive without making
/// the sweep clock-bound.
constexpr idx_t kCheckStride = 256;

/// Estimated cut of splitting the free points at the weighted median of
/// axis A (rows when byRow): the number of B-axis lines whose A-span
/// straddles the median boundary, plus one when the median falls mid-line.
/// This is what makes the axis choice structure-aware — on a banded matrix
/// the straddle count at a row boundary is ~bandwidth while a column split
/// of a row slab would cut every row in it, so "longer axis" alone picks
/// catastrophically. O(z + extents); exact up to the partial median line.
weight_t axis_cut_estimate(const GeoPoints& pts, const std::vector<idx_t>& free,
                           bool byRow, idx_t minA, idx_t maxA, idx_t minB, idx_t maxB,
                           weight_t t0) {
  const idx_t extA = maxA - minA + 1;
  const idx_t extB = maxB - minB + 1;
  std::vector<weight_t> wA(static_cast<std::size_t>(extA), 0);
  std::vector<idx_t> bLo(static_cast<std::size_t>(extB), extA);
  std::vector<idx_t> bHi(static_cast<std::size_t>(extB), -1);
  for (idx_t v : free) {
    const idx_t a = (byRow ? pts.row : pts.col)[static_cast<std::size_t>(v)] - minA;
    const idx_t b = (byRow ? pts.col : pts.row)[static_cast<std::size_t>(v)] - minB;
    wA[static_cast<std::size_t>(a)] += pts.wgt[static_cast<std::size_t>(v)];
    bLo[static_cast<std::size_t>(b)] = std::min(bLo[static_cast<std::size_t>(b)], a);
    bHi[static_cast<std::size_t>(b)] = std::max(bHi[static_cast<std::size_t>(b)], a);
  }
  // Weighted-median line t: lines < t go whole to side 0, line t may split.
  idx_t t = extA;
  bool midSplit = false;
  weight_t cum = 0;
  for (idx_t a = 0; a < extA; ++a) {
    const weight_t next = cum + wA[static_cast<std::size_t>(a)];
    if (next >= t0) {
      t = a;
      midSplit = cum < t0 && next > t0;
      break;
    }
    cum = next;
  }
  if (t >= extA) return 0;  // everything fits on side 0: no split, no cut
  weight_t cut = midSplit ? 1 : 0;
  for (idx_t b = 0; b < extB; ++b) {
    if (bLo[static_cast<std::size_t>(b)] < t && bHi[static_cast<std::size_t>(b)] >= t) ++cut;
  }
  return cut;
}

}  // namespace

GeoPartition median_split(const GeoPoints& pts, const std::array<weight_t, 2>& target,
                          const std::array<weight_t, 2>& cap, const PartitionConfig& cfg,
                          Rng& rng, const FixedSides& fixed) {
  (void)cap;  // feasibility is judged by the engine; the split aims at target
  (void)rng;  // deterministic split; the stream exists for the retry contract
  const idx_t z = pts.num_vertices();
  std::vector<idx_t> side(static_cast<std::size_t>(z), kInvalidIdx);

  // Pin fixed points and deduct their weight from the side-0 target.
  std::array<weight_t, 2> fixedW = {0, 0};
  std::vector<idx_t> free;
  free.reserve(static_cast<std::size_t>(z));
  for (idx_t v = 0; v < z; ++v) {
    const signed char f = fixed.empty() ? -1 : fixed[static_cast<std::size_t>(v)];
    if (f >= 0) {
      side[static_cast<std::size_t>(v)] = f;
      fixedW[static_cast<std::size_t>(f)] += pts.wgt[static_cast<std::size_t>(v)];
    } else {
      free.push_back(v);
    }
  }
  if (free.empty()) return GeoPartition(pts, 2, std::move(side));

  idx_t minR = pts.numRows, maxR = -1, minC = pts.numCols, maxC = -1;
  for (idx_t v : free) {
    minR = std::min(minR, pts.row[static_cast<std::size_t>(v)]);
    maxR = std::max(maxR, pts.row[static_cast<std::size_t>(v)]);
    minC = std::min(minC, pts.col[static_cast<std::size_t>(v)]);
    maxC = std::max(maxC, pts.col[static_cast<std::size_t>(v)]);
  }
  const weight_t t0Est = std::max<weight_t>(0, target[0] - fixedW[0]);
  const weight_t cutRow = axis_cut_estimate(pts, free, /*byRow=*/true, minR, maxR,
                                            minC, maxC, t0Est);
  const weight_t cutCol = axis_cut_estimate(pts, free, /*byRow=*/false, minC, maxC,
                                            minR, maxR, t0Est);
  // Smaller estimated cut wins; ties go to the longer extent, then to rows —
  // a pure function of the free points, so the choice is deterministic.
  bool byRow;
  if (cutRow != cutCol) {
    byRow = cutRow < cutCol;
  } else {
    byRow = maxR - minR >= maxC - minC;
  }
  const std::vector<idx_t>& coord = byRow ? pts.row : pts.col;
  const idx_t base = byRow ? minR : minC;
  const idx_t buckets = (byRow ? maxR - minR : maxC - minC) + 1;

  // Counting sort of the free points by coordinate (stable: within a line,
  // index order), so the side-0 prefix below is a contiguous coordinate
  // range and the cut crosses at most one line.
  std::vector<idx_t> offset(static_cast<std::size_t>(buckets) + 1, 0);
  for (idx_t v : free)
    ++offset[static_cast<std::size_t>(coord[static_cast<std::size_t>(v)] - base) + 1];
  for (idx_t b = 0; b < buckets; ++b)
    offset[static_cast<std::size_t>(b) + 1] += offset[static_cast<std::size_t>(b)];
  std::vector<idx_t> order(free.size());
  {
    std::vector<idx_t> cursor(offset.begin(), offset.end() - 1);
    for (idx_t v : free)
      order[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(coord[static_cast<std::size_t>(v)] - base)]++)] = v;
  }

  // Weighted-median sweep: fill side 0 up to its (fixed-adjusted) target,
  // then everything else is side 1. With unit weights the prefix hits the
  // target exactly. A cancel check-point every kCheckStride lines makes the
  // split itself interruptible; an expired deadline throws here and the
  // engine's recovery ladder degrades this node to the greedy split.
  const weight_t t0 = std::max<weight_t>(0, target[0] - fixedW[0]);
  weight_t acc = 0;
  bool open0 = true;
  for (idx_t b = 0; b < buckets; ++b) {
    if (b % kCheckStride == 0)
      cancel::check_point(cfg.cancel, "geo.split", nullptr, b + 1, /*deadlineThrows=*/true);
    for (idx_t i = offset[static_cast<std::size_t>(b)];
         i < offset[static_cast<std::size_t>(b) + 1]; ++i) {
      const idx_t v = order[static_cast<std::size_t>(i)];
      const weight_t w = pts.wgt[static_cast<std::size_t>(v)];
      if (open0 && acc + w <= t0) {
        side[static_cast<std::size_t>(v)] = 0;
        acc += w;
      } else {
        open0 = false;
        side[static_cast<std::size_t>(v)] = 1;
      }
    }
  }
  return GeoPartition(pts, 2, std::move(side));
}

GeoPartition greedy_split(const GeoPoints& pts, const std::array<weight_t, 2>& target,
                          const FixedSides& fixed) {
  const idx_t z = pts.num_vertices();
  std::vector<idx_t> side(static_cast<std::size_t>(z), kInvalidIdx);
  std::array<weight_t, 2> acc = {0, 0};
  for (idx_t v = 0; v < z; ++v) {
    const signed char f = fixed.empty() ? -1 : fixed[static_cast<std::size_t>(v)];
    if (f >= 0) {
      side[static_cast<std::size_t>(v)] = f;
      acc[static_cast<std::size_t>(f)] += pts.wgt[static_cast<std::size_t>(v)];
    }
  }
  for (idx_t v = 0; v < z; ++v) {
    if (side[static_cast<std::size_t>(v)] != kInvalidIdx) continue;
    const idx_t s = target[0] - acc[0] >= target[1] - acc[1] ? 0 : 1;
    side[static_cast<std::size_t>(v)] = s;
    acc[static_cast<std::size_t>(s)] += pts.wgt[static_cast<std::size_t>(v)];
  }
  return GeoPartition(pts, 2, std::move(side));
}

weight_t split_cut(const GeoPoints& pts, const GeoPartition& bisection) {
  // 3-state marks per line: -1 = untouched, 0/1 = one side seen,
  // 2 = both sides seen (already counted).
  weight_t cut = 0;
  std::vector<signed char> rowSeen(static_cast<std::size_t>(pts.numRows), -1);
  std::vector<signed char> colSeen(static_cast<std::size_t>(pts.numCols), -1);
  auto touch = [&cut](signed char& mark, signed char s) {
    if (mark == -1) {
      mark = s;
    } else if (mark != s && mark != 2) {
      mark = 2;
      ++cut;
    }
  };
  for (idx_t v = 0; v < pts.num_vertices(); ++v) {
    const auto s = static_cast<signed char>(bisection.part_of(v));
    touch(rowSeen[static_cast<std::size_t>(pts.row[static_cast<std::size_t>(v)])], s);
    touch(colSeen[static_cast<std::size_t>(pts.col[static_cast<std::size_t>(v)])], s);
  }
  return cut;
}

GeoSideExtract extract_side(const GeoPoints& pts, const GeoPartition& bisection, idx_t side) {
  GeoSideExtract e;
  for (idx_t v = 0; v < pts.num_vertices(); ++v) {
    if (bisection.part_of(v) != side) continue;
    e.toParent.push_back(v);
    e.sub.row.push_back(pts.row[static_cast<std::size_t>(v)]);
    e.sub.col.push_back(pts.col[static_cast<std::size_t>(v)]);
    e.sub.wgt.push_back(pts.wgt[static_cast<std::size_t>(v)]);
    e.sub.totalWeight += pts.wgt[static_cast<std::size_t>(v)];
  }
  e.sub.numRows = pts.numRows;
  e.sub.numCols = pts.numCols;
  return e;
}

}  // namespace fghp::part::geo
