#include "partition/geo/geometric.hpp"

#include <algorithm>
#include <optional>

#include "hypergraph/metrics.hpp"
#include "partition/geo/rb_traits.hpp"
#include "partition/rb_driver.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace fghp::part::geo {

namespace {

/// Moves free points out of over-cap parts into the lightest parts, in
/// point-index order, until every part is within `cap`. Only runs when a
/// best-effort bisection overshot (nonuniform weights); with unit weights
/// the median splits hit their targets exactly and this is a no-op.
/// Deterministic: a pure function of (assignment, weights, fixedPart).
bool rebalance_to_cap(const GeoPoints& pts, idx_t K, weight_t cap,
                      std::vector<idx_t>& part, std::vector<weight_t>& load,
                      const std::vector<idx_t>& fixedPart) {
  bool moved = false;
  for (idx_t v = 0; v < pts.num_vertices(); ++v) {
    const idx_t from = part[static_cast<std::size_t>(v)];
    if (load[static_cast<std::size_t>(from)] <= cap) continue;
    if (!fixedPart.empty() && fixedPart[static_cast<std::size_t>(v)] != kInvalidIdx) continue;
    const weight_t w = pts.wgt[static_cast<std::size_t>(v)];
    idx_t to = kInvalidIdx;
    for (idx_t k = 0; k < K; ++k) {
      if (k == from || load[static_cast<std::size_t>(k)] + w > cap) continue;
      if (to == kInvalidIdx ||
          load[static_cast<std::size_t>(k)] < load[static_cast<std::size_t>(to)])
        to = k;
    }
    if (to == kInvalidIdx) continue;
    part[static_cast<std::size_t>(v)] = to;
    load[static_cast<std::size_t>(from)] -= w;
    load[static_cast<std::size_t>(to)] += w;
    moved = true;
  }
  return moved;
}

/// A line is "heavy" above 4x the average degree (never below 16 pins):
/// its net will be cut by almost any partition — it is doomed — while its
/// entries, scattered along the other axis, drag every light line they sit
/// on across the cut under coordinate bisection. Multilevel sidesteps this
/// via per-entry freedom; the peel below restores exactly that freedom.
std::vector<char> heavy_lines(const std::vector<idx_t>& deg, idx_t z) {
  const idx_t lines = static_cast<idx_t>(deg.size());
  const double avg = lines > 0 ? static_cast<double>(z) / lines : 0.0;
  const idx_t threshold = std::max<idx_t>(16, static_cast<idx_t>(4.0 * avg) + 1);
  std::vector<char> heavy(deg.size(), 0);
  for (std::size_t i = 0; i < deg.size(); ++i) heavy[i] = deg[i] > threshold ? 1 : 0;
  return heavy;
}

/// Majority part per line over the non-peeled points (ties to the lowest
/// part id; kInvalidIdx where a line has no kept points). One counting sort
/// plus a stamped per-part tally: O(z + lines + K).
std::vector<idx_t> majority_by_line(const GeoPoints& pts, const std::vector<char>& peeled,
                                    const std::vector<idx_t>& part, bool byRow, idx_t K) {
  const std::vector<idx_t>& coord = byRow ? pts.row : pts.col;
  const idx_t lines = byRow ? pts.numRows : pts.numCols;
  const idx_t z = pts.num_vertices();
  std::vector<idx_t> offset(static_cast<std::size_t>(lines) + 1, 0);
  for (idx_t v = 0; v < z; ++v)
    if (!peeled[static_cast<std::size_t>(v)])
      ++offset[static_cast<std::size_t>(coord[static_cast<std::size_t>(v)]) + 1];
  for (idx_t c = 0; c < lines; ++c)
    offset[static_cast<std::size_t>(c) + 1] += offset[static_cast<std::size_t>(c)];
  std::vector<idx_t> order(static_cast<std::size_t>(offset.back()));
  {
    std::vector<idx_t> cursor(offset.begin(), offset.end() - 1);
    for (idx_t v = 0; v < z; ++v)
      if (!peeled[static_cast<std::size_t>(v)])
        order[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(coord[static_cast<std::size_t>(v)])]++)] = v;
  }
  std::vector<idx_t> maj(static_cast<std::size_t>(lines), kInvalidIdx);
  std::vector<idx_t> count(static_cast<std::size_t>(K), 0);
  std::vector<idx_t> stamp(static_cast<std::size_t>(K), -1);
  for (idx_t c = 0; c < lines; ++c) {
    idx_t best = kInvalidIdx;
    for (idx_t i = offset[static_cast<std::size_t>(c)];
         i < offset[static_cast<std::size_t>(c) + 1]; ++i) {
      const idx_t k = part[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
      if (stamp[static_cast<std::size_t>(k)] != c) {
        stamp[static_cast<std::size_t>(k)] = c;
        count[static_cast<std::size_t>(k)] = 0;
      }
      ++count[static_cast<std::size_t>(k)];
      if (best == kInvalidIdx || count[static_cast<std::size_t>(k)] > count[static_cast<std::size_t>(best)] ||
          (count[static_cast<std::size_t>(k)] == count[static_cast<std::size_t>(best)] && k < best))
        best = k;
    }
    maj[static_cast<std::size_t>(c)] = best;
  }
  return maj;
}

}  // namespace

GeoResult partition_points_geometric(const GeoPoints& pts, idx_t K,
                                     const PartitionConfig& cfg,
                                     const std::vector<idx_t>& fixedPart) {
  FGHP_REQUIRE(K >= 1, "K must be positive");
  WallTimer timer;

  // Same operational scoping as partition_hypergraph: per-call fault spec,
  // per-call trace capture, one enclosing span.
  std::optional<fault::ScopedSpec> faultScope;
  if (!cfg.faultSpec.empty()) faultScope.emplace(cfg.faultSpec);
  trace::ScopedCapture traceScope(cfg.traceOut);
  trace::TraceScope span("partition", "geo.partition", "k", K, "verts",
                         pts.num_vertices());

  cancel::check_point(cfg.cancel, "geo.partition", nullptr, 1,
                      /*deadlineThrows=*/!cfg.degradeOnDeadline);

  const idx_t z = pts.num_vertices();
  const weight_t cap = hg::balance_cap(pts.totalWeight, K, cfg.epsilon);

  // Scatter peel (the fine-grain model's per-entry freedom, restored): an
  // entry on a heavy (doomed) line is withheld from the geometric recursion
  // — it carries no usable spatial signal, only noise that drags its light
  // counterpart line across every cut — and is re-assigned afterwards to
  // the majority part of that light line. Skipped when it would remove the
  // majority of points (near-dense matrices have no coherent remainder).
  std::vector<idx_t> degR(static_cast<std::size_t>(pts.numRows), 0);
  std::vector<idx_t> degC(static_cast<std::size_t>(pts.numCols), 0);
  for (idx_t v = 0; v < z; ++v) {
    ++degR[static_cast<std::size_t>(pts.row[static_cast<std::size_t>(v)])];
    ++degC[static_cast<std::size_t>(pts.col[static_cast<std::size_t>(v)])];
  }
  const std::vector<char> heavyR = heavy_lines(degR, z);
  const std::vector<char> heavyC = heavy_lines(degC, z);
  std::vector<char> peeled(static_cast<std::size_t>(z), 0);
  idx_t numPeeled = 0;
  for (idx_t v = 0; v < z; ++v) {
    if (heavyR[static_cast<std::size_t>(pts.row[static_cast<std::size_t>(v)])] ||
        heavyC[static_cast<std::size_t>(pts.col[static_cast<std::size_t>(v)])]) {
      peeled[static_cast<std::size_t>(v)] = 1;
      ++numPeeled;
    }
  }
  const bool peel = numPeeled > 0 && numPeeled < z / 2;

  Rng rng(cfg.seed);
  GeoResult out;
  GeoPartition full;
  if (!peel) {
    RbResult<georb::GeoRbTraits> res =
        rb::partition_recursive_rb<georb::GeoRbTraits>(pts, K, cfg, rng, fixedPart);
    out.cutsize = res.sumOfBisectionCuts;  // telescoped: exact, no recompute
    out.numRecoveries = res.numRecoveries;
    out.numDegraded = res.numDegraded;
    full = std::move(res.partition);
  } else {
    trace::instant("partition", "geo.peel", "points", numPeeled);
    // Recurse on the coherent remainder only.
    GeoPoints kept;
    kept.numRows = pts.numRows;
    kept.numCols = pts.numCols;
    std::vector<idx_t> toParent;
    std::vector<idx_t> keptFixed;
    for (idx_t v = 0; v < z; ++v) {
      if (peeled[static_cast<std::size_t>(v)]) continue;
      toParent.push_back(v);
      kept.row.push_back(pts.row[static_cast<std::size_t>(v)]);
      kept.col.push_back(pts.col[static_cast<std::size_t>(v)]);
      kept.wgt.push_back(pts.wgt[static_cast<std::size_t>(v)]);
      kept.totalWeight += pts.wgt[static_cast<std::size_t>(v)];
      if (!fixedPart.empty()) keptFixed.push_back(fixedPart[static_cast<std::size_t>(v)]);
    }
    RbResult<georb::GeoRbTraits> res =
        rb::partition_recursive_rb<georb::GeoRbTraits>(kept, K, cfg, rng, keptFixed);
    out.numRecoveries = res.numRecoveries;
    out.numDegraded = res.numDegraded;

    std::vector<idx_t> part(static_cast<std::size_t>(z), kInvalidIdx);
    std::vector<weight_t> load(static_cast<std::size_t>(K), 0);
    for (idx_t s = 0; s < kept.num_vertices(); ++s) {
      const idx_t k = res.partition.part_of(s);
      part[static_cast<std::size_t>(toParent[static_cast<std::size_t>(s)])] = k;
      load[static_cast<std::size_t>(k)] += kept.wgt[static_cast<std::size_t>(s)];
    }

    // Peeled points, in index order: follow the light line's majority when
    // it exists and fits the cap, else go least-loaded. Assigning also
    // seeds the majority of a line that had no kept points, so an
    // all-peeled line still lands together.
    std::vector<idx_t> majR = majority_by_line(pts, peeled, part, /*byRow=*/true, K);
    std::vector<idx_t> majC = majority_by_line(pts, peeled, part, /*byRow=*/false, K);
    for (idx_t v = 0; v < z; ++v) {
      if (!peeled[static_cast<std::size_t>(v)]) continue;
      const idx_t r = pts.row[static_cast<std::size_t>(v)];
      const idx_t c = pts.col[static_cast<std::size_t>(v)];
      const weight_t w = pts.wgt[static_cast<std::size_t>(v)];
      idx_t k = kInvalidIdx;
      if (!fixedPart.empty() && fixedPart[static_cast<std::size_t>(v)] != kInvalidIdx) {
        k = fixedPart[static_cast<std::size_t>(v)];
      } else {
        if (!heavyR[static_cast<std::size_t>(r)]) k = majR[static_cast<std::size_t>(r)];
        else if (!heavyC[static_cast<std::size_t>(c)]) k = majC[static_cast<std::size_t>(c)];
        if (k != kInvalidIdx && load[static_cast<std::size_t>(k)] + w > cap) k = kInvalidIdx;
        if (k == kInvalidIdx) {
          for (idx_t q = 0; q < K; ++q) {
            if (load[static_cast<std::size_t>(q)] + w > cap) continue;
            if (k == kInvalidIdx ||
                load[static_cast<std::size_t>(q)] < load[static_cast<std::size_t>(k)])
              k = q;
          }
          if (k == kInvalidIdx)  // infeasible heavyweight: best-effort
            k = static_cast<idx_t>(
                std::min_element(load.begin(), load.end()) - load.begin());
        }
      }
      part[static_cast<std::size_t>(v)] = k;
      load[static_cast<std::size_t>(k)] += w;
      if (majR[static_cast<std::size_t>(r)] == kInvalidIdx) majR[static_cast<std::size_t>(r)] = k;
      if (majC[static_cast<std::size_t>(c)] == kInvalidIdx) majC[static_cast<std::size_t>(c)] = k;
    }
    full = GeoPartition(pts, K, std::move(part));
    out.cutsize = connectivity_cutsize(pts, full);  // peel breaks telescoping
  }

  if (cfg.validateLevel == ValidateLevel::kStrict)
    validate_partition_or_throw(pts, full, "geo-partition");

  // Balance feasibility is part of the contract even when a best-effort
  // bisection overshot its cap: repair, then pay for the moved points by
  // recomputing the cut exactly (the telescoped sum is stale after a move).
  bool over = false;
  for (idx_t k = 0; k < K; ++k) over = over || full.part_weight(k) > cap;
  if (over) {
    std::vector<idx_t> part = full.assignment();
    std::vector<weight_t> load = full.part_weights();
    if (rebalance_to_cap(pts, K, cap, part, load, fixedPart)) {
      full = GeoPartition(pts, K, std::move(part));
      out.cutsize = connectivity_cutsize(pts, full);
      push_warning("geometric partition exceeded the balance cap; repaired by "
                   "a deterministic rebalance pass");
      ++out.numRecoveries;
    }
  }

  static metrics::Counter& runs = metrics::counter("partition.geo.runs");
  static metrics::Counter& recovered = metrics::counter("partition.recoveries");
  runs.add();
  recovered.add(out.numRecoveries);

  out.imbalance = imbalance(pts, full);
  out.partition = std::move(full);
  out.seconds = timer.seconds();
  return out;
}

}  // namespace fghp::part::geo
