// Geometric problem traits for the unified recursive-bisection engine
// (partition/rb_driver.hpp): weighted-median splits on (row, col) point
// sets, line-crossing cut telescoping (exactly the lambda-1 connectivity
// objective, see partition/geo/points.hpp), and the deterministic greedy
// split as the recovery-ladder floor.
#pragma once

#include "partition/geo/points.hpp"
#include "partition/geo/split.hpp"
#include "partition/multilevel.hpp"

namespace fghp::part::georb {

struct GeoRbTraits {
  using Problem = geo::GeoPoints;
  using Partition = geo::GeoPartition;

  static constexpr const char* kBisectSite = "geo.split";
  static constexpr const char* kRetrySite = "geo.retry";

  static Partition bisect(const Problem& pts, const std::array<weight_t, 2>& target,
                          const std::array<weight_t, 2>& cap, const PartitionConfig& cfg,
                          Rng& rng, const FixedSides& fixed) {
    return geo::median_split(pts, target, cap, cfg, rng, fixed);
  }

  static Partition greedy_fallback(const Problem& pts, const std::array<weight_t, 2>& target,
                                   const FixedSides& fixed) {
    return geo::greedy_split(pts, target, fixed);
  }

  static weight_t bisection_cut(const Problem& pts, const Partition& p) {
    return geo::split_cut(pts, p);
  }

  static RbSide<GeoRbTraits> extract_side(const Problem& pts, const Partition& bisection,
                                          idx_t side, const PartitionConfig&) {
    geo::GeoSideExtract e = geo::extract_side(pts, bisection, side);
    return {std::move(e.sub), std::move(e.toParent)};
  }

  static void validate_bisection(const Problem& pts, const Partition& p) {
    geo::validate_partition_or_throw(pts, p, "geo-bisection");
  }

  // The median split is two counting sweeps per point — roughly 50x cheaper
  // per unit than a multilevel bisection — so the shared deadline cost model
  // (calibrated in engine microseconds-per-unit) sees a scaled size. Without
  // this, a tight deadline would demote geometric nodes that finish in time.
  static double problem_size(const Problem& pts) {
    return 0.02 * static_cast<double>(pts.num_vertices());
  }
};

}  // namespace fghp::part::georb
