// Geometric bisection primitives over weighted 2D point sets: the recursive
// weighted-median split (the fast-path counterpart of multilevel_bisect) and
// the deterministic greedy fallback the recovery ladder drops to.
#pragma once

#include <array>
#include <vector>

#include "partition/config.hpp"
#include "partition/geo/points.hpp"
#include "partition/multilevel.hpp"
#include "util/rng.hpp"

namespace fghp::part::geo {

/// Bisects the point set at the weighted median along its longer axis.
///
/// Free points are counting-sorted by the chosen coordinate (stable, so the
/// result is a pure function of the inputs) and swept in line order into
/// side 0 until target[0] is met; because points on one coordinate line stay
/// contiguous, at most one line is split by the cut. Fixed points keep their
/// side and their weight is deducted from the targets first. `rng` is
/// consumed only to stay stream-compatible with the engine's retry contract;
/// the split itself is deterministic. Runs a cooperative cancel check-point
/// per coordinate bucket ("geo.split" phase), so a deadline or manual cancel
/// lands mid-split rather than only between bisection nodes.
GeoPartition median_split(const GeoPoints& pts, const std::array<weight_t, 2>& target,
                          const std::array<weight_t, 2>& cap, const PartitionConfig& cfg,
                          Rng& rng, const FixedSides& fixed);

/// Deterministic last-resort split: points in index order to the side with
/// the most remaining target. Never throws, never allocates per point.
GeoPartition greedy_split(const GeoPoints& pts, const std::array<weight_t, 2>& target,
                          const FixedSides& fixed);

/// Number of coordinate lines (rows + cols) with points on both sides of a
/// bisection. Summed over all recursion nodes this telescopes exactly to the
/// lambda-1 connectivity cutsize: a net spanning L leaves is counted once at
/// each of the L - 1 bisections that first separated its points.
weight_t split_cut(const GeoPoints& pts, const GeoPartition& bisection);

/// Sub-point-set of one bisection side plus its vertex mapping. Coordinates
/// are never renumbered (numRows/numCols carry over), so line identities —
/// and therefore the telescoped cut — are preserved across levels.
struct GeoSideExtract {
  GeoPoints sub;
  std::vector<idx_t> toParent;
};
GeoSideExtract extract_side(const GeoPoints& pts, const GeoPartition& bisection, idx_t side);

}  // namespace fghp::part::geo
