#include "partition/gp/grecursive.hpp"

#include <tuple>

#include "partition/gp/rb_traits.hpp"
#include "partition/rb_driver.hpp"

namespace fghp::part::gprb {

GraphSide extract_graph_side(const gp::Graph& g, const gp::GPartition& bisection,
                             idx_t side) {
  FGHP_REQUIRE(bisection.num_parts() == 2, "extract_graph_side expects a bisection");

  GraphSide out;
  std::vector<idx_t> toSub(static_cast<std::size_t>(g.num_vertices()), kInvalidIdx);
  for (idx_t v = 0; v < g.num_vertices(); ++v) {
    if (bisection.part_of(v) == side) {
      toSub[static_cast<std::size_t>(v)] = static_cast<idx_t>(out.toParent.size());
      out.toParent.push_back(v);
    }
  }
  const auto numSub = static_cast<idx_t>(out.toParent.size());
  std::vector<weight_t> vwgt(static_cast<std::size_t>(numSub));
  for (idx_t sv = 0; sv < numSub; ++sv)
    vwgt[static_cast<std::size_t>(sv)] =
        g.vertex_weight(out.toParent[static_cast<std::size_t>(sv)]);

  std::vector<std::tuple<idx_t, idx_t, weight_t>> edges;
  for (idx_t sv = 0; sv < numSub; ++sv) {
    const idx_t v = out.toParent[static_cast<std::size_t>(sv)];
    for (const gp::Adj& a : g.neighbors(v)) {
      if (a.to <= v) continue;
      const idx_t su = toSub[static_cast<std::size_t>(a.to)];
      if (su != kInvalidIdx) edges.emplace_back(sv, su, a.weight);
    }
  }
  out.sub = gp::Graph(numSub, std::move(edges), std::move(vwgt));
  return out;
}

GRecursiveResult partition_graph_recursive(const gp::Graph& g, idx_t K,
                                           const PartitionConfig& cfg, Rng& rng) {
  RbResult<GpRbTraits> r = rb::partition_recursive_rb<GpRbTraits>(g, K, cfg, rng);
  return {std::move(r.partition), r.sumOfBisectionCuts, r.numRecoveries, r.numDegraded};
}

}  // namespace fghp::part::gprb
