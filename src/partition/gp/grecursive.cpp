#include "partition/gp/grecursive.hpp"

#include <atomic>
#include <cmath>
#include <tuple>

#include "partition/gp/gbisect.hpp"
#include "partition/gp/grefine.hpp"
#include "partition/hg/recursive.hpp"  // per_level_epsilon
#include "util/thread_pool.hpp"

namespace fghp::part::gprb {

namespace {

struct GSide {
  gp::Graph sub;
  std::vector<idx_t> toParent;
};

GSide extract_gside(const gp::Graph& g, const gp::GPartition& bisection, idx_t side) {
  GSide out;
  std::vector<idx_t> toSub(static_cast<std::size_t>(g.num_vertices()), kInvalidIdx);
  for (idx_t v = 0; v < g.num_vertices(); ++v) {
    if (bisection.part_of(v) == side) {
      toSub[static_cast<std::size_t>(v)] = static_cast<idx_t>(out.toParent.size());
      out.toParent.push_back(v);
    }
  }
  const auto numSub = static_cast<idx_t>(out.toParent.size());
  std::vector<weight_t> vwgt(static_cast<std::size_t>(numSub));
  for (idx_t sv = 0; sv < numSub; ++sv)
    vwgt[static_cast<std::size_t>(sv)] =
        g.vertex_weight(out.toParent[static_cast<std::size_t>(sv)]);

  std::vector<std::tuple<idx_t, idx_t, weight_t>> edges;
  for (idx_t sv = 0; sv < numSub; ++sv) {
    const idx_t v = out.toParent[static_cast<std::size_t>(sv)];
    for (const gp::Adj& a : g.neighbors(v)) {
      if (a.to <= v) continue;
      const idx_t su = toSub[static_cast<std::size_t>(a.to)];
      if (su != kInvalidIdx) edges.emplace_back(sv, su, a.weight);
    }
  }
  out.sub = gp::Graph(numSub, std::move(edges), std::move(vwgt));
  return out;
}

struct GRecurser {
  const PartitionConfig& cfg;
  double epsLevel;
  std::vector<idx_t>& finalPart;
  ThreadPool* pool = nullptr;  // nullptr = serial recursion
  // Subtrees write disjoint finalPart ranges; the cut total is the only
  // shared accumulation, and integer adds commute.
  std::atomic<weight_t> cutAccum{0};

  void run(const gp::Graph& g, const std::vector<idx_t>& toOrig, idx_t K, idx_t partOffset,
           Rng rng) {
    if (K == 1 || g.num_vertices() == 0) {
      for (idx_t v = 0; v < g.num_vertices(); ++v)
        finalPart[static_cast<std::size_t>(toOrig[static_cast<std::size_t>(v)])] = partOffset;
      return;
    }
    const idx_t k0 = K / 2;
    const idx_t k1 = K - k0;
    const weight_t total = g.total_vertex_weight();
    std::array<weight_t, 2> target;
    target[0] = static_cast<weight_t>(std::llround(
        static_cast<double>(total) * static_cast<double>(k0) / static_cast<double>(K)));
    target[1] = total - target[0];
    std::array<weight_t, 2> maxWeight = {
        static_cast<weight_t>(std::floor(static_cast<double>(target[0]) * (1.0 + epsLevel))),
        static_cast<weight_t>(std::floor(static_cast<double>(target[1]) * (1.0 + epsLevel)))};
    maxWeight[0] = std::max(maxWeight[0], target[0]);
    maxWeight[1] = std::max(maxWeight[1], target[1]);

    // Child streams are derived before the bisection consumes rng and before
    // any fork, so results are identical at any thread count.
    Rng childRng0 = rng.spawn();
    Rng childRng1 = rng.spawn();
    gp::GPartition bisection = gpb::multilevel_gbisect(g, target, maxWeight, cfg, rng);
    cutAccum.fetch_add(gpr::GraphFM::compute_cut(g, bisection),
                       std::memory_order_relaxed);

    if (pool != nullptr && g.num_vertices() >= cfg.minParallelVertices) {
      TaskGroup fork(*pool);
      fork.run([this, &g, &bisection, &toOrig, k0, partOffset, childRng0] {
        descend(g, bisection, toOrig, 0, k0, partOffset, childRng0);
      });
      descend(g, bisection, toOrig, 1, k1, partOffset + k0, childRng1);
      fork.wait();
    } else {
      descend(g, bisection, toOrig, 0, k0, partOffset, childRng0);
      descend(g, bisection, toOrig, 1, k1, partOffset + k0, childRng1);
    }
  }

  /// Extracts one bisection side, rebases it and recurses into it.
  void descend(const gp::Graph& g, const gp::GPartition& bisection,
               const std::vector<idx_t>& toOrig, idx_t side, idx_t sideK,
               idx_t sideOffset, Rng sideRng) {
    GSide ext = extract_gside(g, bisection, side);
    for (auto& v : ext.toParent) v = toOrig[static_cast<std::size_t>(v)];
    run(ext.sub, ext.toParent, sideK, sideOffset, sideRng);
  }
};

}  // namespace

GRecursiveResult partition_graph_recursive(const gp::Graph& g, idx_t K,
                                           const PartitionConfig& cfg, Rng& rng) {
  FGHP_REQUIRE(K >= 1, "K must be positive");
  std::vector<idx_t> finalPart(static_cast<std::size_t>(g.num_vertices()), kInvalidIdx);
  GRecurser rec{cfg, hgrb::per_level_epsilon(cfg.epsilon, K), finalPart,
                ThreadPool::for_request(cfg.numThreads)};

  std::vector<idx_t> identity(static_cast<std::size_t>(g.num_vertices()));
  for (idx_t v = 0; v < g.num_vertices(); ++v) identity[static_cast<std::size_t>(v)] = v;
  rec.run(g, identity, K, 0, rng.spawn());

  return {gp::GPartition(g, K, std::move(finalPart)),
          rec.cutAccum.load(std::memory_order_relaxed)};
}

}  // namespace fghp::part::gprb
