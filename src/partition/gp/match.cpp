#include "partition/gp/match.hpp"

#include <atomic>
#include <numeric>
#include <tuple>

#include "util/error.hpp"

namespace fghp::part::gpm {

ClusterMap match_heavy_edge(const gp::Graph& g, Rng& rng) {
  const idx_t n = g.num_vertices();
  ClusterMap cluster(static_cast<std::size_t>(n), kInvalidIdx);
  idx_t nextId = 0;
  for (idx_t v : rng.permutation(n)) {
    if (cluster[static_cast<std::size_t>(v)] != kInvalidIdx) continue;
    idx_t mate = kInvalidIdx;
    weight_t best = -1;
    for (const gp::Adj& a : g.neighbors(v)) {
      if (cluster[static_cast<std::size_t>(a.to)] == kInvalidIdx && a.weight > best) {
        best = a.weight;
        mate = a.to;
      }
    }
    const idx_t id = nextId++;
    cluster[static_cast<std::size_t>(v)] = id;
    if (mate != kInvalidIdx) cluster[static_cast<std::size_t>(mate)] = id;
  }
  return cluster;
}

ClusterMap match_random(const gp::Graph& g, Rng& rng) {
  const idx_t n = g.num_vertices();
  ClusterMap cluster(static_cast<std::size_t>(n), kInvalidIdx);
  idx_t nextId = 0;
  for (idx_t v : rng.permutation(n)) {
    if (cluster[static_cast<std::size_t>(v)] != kInvalidIdx) continue;
    idx_t mate = kInvalidIdx;
    for (const gp::Adj& a : g.neighbors(v)) {
      if (cluster[static_cast<std::size_t>(a.to)] == kInvalidIdx) {
        mate = a.to;
        break;
      }
    }
    const idx_t id = nextId++;
    cluster[static_cast<std::size_t>(v)] = id;
    if (mate != kInvalidIdx) cluster[static_cast<std::size_t>(mate)] = id;
  }
  return cluster;
}

GCoarseLevel contract_graph(const gp::Graph& fine, const ClusterMap& clusters) {
  FGHP_REQUIRE(clusters.size() == static_cast<std::size_t>(fine.num_vertices()),
               "cluster map size mismatch");
  std::vector<idx_t> remap(clusters.size(), kInvalidIdx);
  std::vector<idx_t> dense(clusters.size());
  idx_t numCoarse = 0;
  for (std::size_t v = 0; v < clusters.size(); ++v) {
    const idx_t c = clusters[v];
    FGHP_REQUIRE(c >= 0 && static_cast<std::size_t>(c) < clusters.size(),
                 "cluster id out of range");
    if (remap[static_cast<std::size_t>(c)] == kInvalidIdx)
      remap[static_cast<std::size_t>(c)] = numCoarse++;
    dense[v] = remap[static_cast<std::size_t>(c)];
  }

  std::vector<weight_t> vwgt(static_cast<std::size_t>(numCoarse), 0);
  for (idx_t v = 0; v < fine.num_vertices(); ++v)
    vwgt[static_cast<std::size_t>(dense[static_cast<std::size_t>(v)])] += fine.vertex_weight(v);

  std::vector<std::tuple<idx_t, idx_t, weight_t>> edges;
  for (idx_t v = 0; v < fine.num_vertices(); ++v) {
    const idx_t cv = dense[static_cast<std::size_t>(v)];
    for (const gp::Adj& a : fine.neighbors(v)) {
      if (a.to <= v) continue;  // each fine edge once
      const idx_t cu = dense[static_cast<std::size_t>(a.to)];
      if (cv != cu) edges.emplace_back(cv, cu, a.weight);  // Graph ctor merges parallels
    }
  }

  GCoarseLevel level;
  level.coarse = gp::Graph(numCoarse, std::move(edges), std::move(vwgt));
  level.fineToCoarse = std::move(dense);
  return level;
}

GCoarseLevel coarsen_one_level(const gp::Graph& fine, const PartitionConfig& cfg, Rng& rng) {
  ClusterMap clusters;
  switch (cfg.coarsening) {
    case Coarsening::kHeavyConnectivity:
      clusters = match_heavy_edge(fine, rng);
      break;
    case Coarsening::kAgglomerative: {
      // The graph baseline has no absorption clustering; heavy-edge matching
      // is its closest analog. Warn once so the substitution is visible.
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true, std::memory_order_relaxed)) {
        push_warning(
            "graph coarsening has no agglomerative clustering; "
            "substituting heavy-edge matching");
      }
      clusters = match_heavy_edge(fine, rng);
      break;
    }
    case Coarsening::kRandomMatching:
      clusters = match_random(fine, rng);
      break;
    case Coarsening::kNone:
      clusters.resize(static_cast<std::size_t>(fine.num_vertices()));
      std::iota(clusters.begin(), clusters.end(), idx_t{0});
      break;
  }
  return contract_graph(fine, clusters);
}

}  // namespace fghp::part::gpm
