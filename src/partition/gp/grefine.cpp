#include "partition/gp/grefine.hpp"

#include <algorithm>
#include <limits>

#include "util/cancel.hpp"

namespace fghp::part::gpr {

weight_t GraphFM::compute_cut(const gp::Graph& g, const gp::GPartition& p) {
  weight_t cut = 0;
  for (idx_t v = 0; v < g.num_vertices(); ++v) {
    for (const gp::Adj& a : g.neighbors(v)) {
      if (a.to > v && p.part_of(a.to) != p.part_of(v)) cut += a.weight;
    }
  }
  return cut;
}

idx_t GraphFM::gain_of(const gp::Graph& g, const gp::GPartition& p, idx_t v) const {
  const idx_t side = p.part_of(v);
  weight_t gain = 0;
  for (const gp::Adj& a : g.neighbors(v)) {
    gain += p.part_of(a.to) != side ? a.weight : -a.weight;
  }
  return static_cast<idx_t>(gain);
}

void GraphFM::apply_move(const gp::Graph& g, gp::GPartition& p, idx_t v, bool updateGains) {
  const idx_t from = p.part_of(v);
  const idx_t to = 1 - from;

  if (updateGains) {
    locked_[static_cast<std::size_t>(v)] = 1;
    for (idx_t s = 0; s < 2; ++s)
      if (queue_[static_cast<std::size_t>(s)].contains(v))
        queue_[static_cast<std::size_t>(s)].remove(v);
  }

  p.move(g, v, to);

  if (updateGains) {
    for (const gp::Adj& a : g.neighbors(v)) {
      const idx_t u = a.to;
      if (locked_[static_cast<std::size_t>(u)]) continue;
      const idx_t su = p.part_of(u);
      auto& q = queue_[static_cast<std::size_t>(su)];
      // Edge (u,v): u on the old side gains an external edge (+2w to its
      // gain); u on the new side loses one (-2w).
      const idx_t delta = static_cast<idx_t>(su == from ? 2 * a.weight : -2 * a.weight);
      if (q.contains(u)) {
        q.adjust(u, delta);
      } else if (su == from) {
        q.push(u, gain_of(g, p, u));  // newly boundary
      }
    }
  }
}

weight_t GraphFM::pass(const gp::Graph& g, gp::GPartition& p,
                       const std::array<weight_t, 2>& maxWeight, weight_t startCut, Rng& rng) {
  std::fill(locked_.begin(), locked_.end(), 0);
  queue_[0].clear();
  queue_[1].clear();

  for (idx_t v : rng.permutation(g.num_vertices())) {
    bool boundary = false;
    for (const gp::Adj& a : g.neighbors(v)) {
      if (p.part_of(a.to) != p.part_of(v)) {
        boundary = true;
        break;
      }
    }
    if (boundary)
      queue_[static_cast<std::size_t>(p.part_of(v))].push(v, gain_of(g, p, v));
  }

  const auto earlyLimit = std::max<std::size_t>(
      static_cast<std::size_t>(cfg_.minFmMoves),
      static_cast<std::size_t>(cfg_.fmEarlyExitFraction *
                               static_cast<double>(g.num_vertices())));

  std::vector<idx_t> moves;
  weight_t cur = startCut;
  weight_t best = startCut;
  std::size_t bestPrefix = 0;

  while (!queue_[0].empty() || !queue_[1].empty()) {
    idx_t chosenSide = kInvalidIdx;
    idx_t chosenGain = 0;
    idx_t infeasibleSide = kInvalidIdx;
    idx_t infeasibleGain = 0;
    for (idx_t s = 0; s < 2; ++s) {
      auto& q = queue_[static_cast<std::size_t>(s)];
      if (q.empty()) continue;
      const idx_t gTop = q.max_gain();
      const idx_t v = q.pop_max();
      const idx_t to = 1 - s;
      const bool feasible =
          p.part_weight(to) + g.vertex_weight(v) <= maxWeight[static_cast<std::size_t>(to)];
      q.push(v, gTop);
      if (feasible) {
        if (chosenSide == kInvalidIdx || gTop > chosenGain ||
            (gTop == chosenGain && p.part_weight(s) > p.part_weight(chosenSide))) {
          chosenSide = s;
          chosenGain = gTop;
        }
      } else if (infeasibleSide == kInvalidIdx || gTop > infeasibleGain) {
        infeasibleSide = s;
        infeasibleGain = gTop;
      }
    }

    if (chosenSide == kInvalidIdx) {
      if (infeasibleSide == kInvalidIdx) break;
      const idx_t v = queue_[static_cast<std::size_t>(infeasibleSide)].pop_max();
      locked_[static_cast<std::size_t>(v)] = 1;
      continue;
    }

    const idx_t v = queue_[static_cast<std::size_t>(chosenSide)].pop_max();
    queue_[static_cast<std::size_t>(chosenSide)].push(v, chosenGain);
    apply_move(g, p, v, /*updateGains=*/true);
    moves.push_back(v);
    cur -= chosenGain;
    if (cur < best) {
      best = cur;
      bestPrefix = moves.size();
    }
    if (moves.size() - bestPrefix > earlyLimit) break;
  }

  for (std::size_t i = moves.size(); i > bestPrefix; --i) {
    apply_move(g, p, moves[i - 1], /*updateGains=*/false);
  }
  return best;
}

void GraphFM::rebalance(const gp::Graph& g, gp::GPartition& p,
                        const std::array<weight_t, 2>& maxWeight) {
  for (idx_t s = 0; s < 2; ++s) {
    if (p.part_weight(s) <= maxWeight[static_cast<std::size_t>(s)]) continue;
    std::fill(locked_.begin(), locked_.end(), 0);
    queue_[0].clear();
    queue_[1].clear();
    auto& q = queue_[static_cast<std::size_t>(s)];
    for (idx_t v = 0; v < g.num_vertices(); ++v) {
      if (p.part_of(v) == s) q.push(v, gain_of(g, p, v));
    }
    while (p.part_weight(s) > maxWeight[static_cast<std::size_t>(s)] && !q.empty()) {
      const idx_t gTop = q.max_gain();
      const idx_t v = q.pop_max();
      q.push(v, gTop);
      apply_move(g, p, v, /*updateGains=*/true);
    }
  }
}

weight_t GraphFM::refine(const gp::Graph& g, gp::GPartition& p,
                         const std::array<weight_t, 2>& maxWeight, Rng& rng) {
  FGHP_REQUIRE(p.num_parts() == 2, "GraphFM requires a 2-way partition");
  FGHP_REQUIRE(p.complete(), "partition must be complete");

  locked_.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  const weight_t maxInc = g.max_incident_weight();
  FGHP_REQUIRE(maxInc < std::numeric_limits<idx_t>::max() / 4,
               "edge weights too large for FM gain buckets");
  queue_[0].reset(g.num_vertices(), static_cast<idx_t>(maxInc));
  queue_[1].reset(g.num_vertices(), static_cast<idx_t>(maxInc));

  rebalance(g, p, maxWeight);

  weight_t cut = compute_cut(g, p);
  for (idx_t passNo = 0; passNo < cfg_.maxFmPasses; ++passNo) {
    // Per-pass check-point (see BisectionFM::refine for the rationale).
    cancel::check_point(cfg_.cancel, "gfm.pass", nullptr, passNo + 1);
    const weight_t next = pass(g, p, maxWeight, cut, rng);
    FGHP_ASSERT(next <= cut);
    if (next == cut) break;
    cut = next;
  }
  return cut;
}

}  // namespace fghp::part::gpr
