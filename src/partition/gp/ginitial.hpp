// Initial graph bisection: Greedy Graph Growing and random balanced
// assignment, FM-polished, best-of-N.
#pragma once

#include <array>

#include "graph/graph.hpp"
#include "partition/config.hpp"
#include "util/rng.hpp"

namespace fghp::part::gpi {

gp::GPartition random_gbisection(const gp::Graph& g, const std::array<weight_t, 2>& target,
                                 Rng& rng);

/// GGG: BFS-like growth of side 1 from a random seed, picking the candidate
/// with the best edge-cut gain each step.
gp::GPartition ggg_bisection(const gp::Graph& g, const std::array<weight_t, 2>& target,
                             Rng& rng);

gp::GPartition initial_gbisection(const gp::Graph& g, const std::array<weight_t, 2>& target,
                                  const std::array<weight_t, 2>& maxWeight,
                                  const PartitionConfig& cfg, Rng& rng);

}  // namespace fghp::part::gpi
