// Initial graph bisection: Greedy Graph Growing and random balanced
// assignment, FM-polished, best-of-N.
#pragma once

#include <array>

#include "graph/graph.hpp"
#include "partition/config.hpp"
#include "util/rng.hpp"

namespace fghp::part::gpi {

gp::GPartition random_gbisection(const gp::Graph& g, const std::array<weight_t, 2>& target,
                                 Rng& rng);

/// GGG: BFS-like growth of side 1 from a random seed, picking the candidate
/// with the best edge-cut gain each step.
gp::GPartition ggg_bisection(const gp::Graph& g, const std::array<weight_t, 2>& target,
                             Rng& rng);

gp::GPartition initial_gbisection(const gp::Graph& g, const std::array<weight_t, 2>& target,
                                  const std::array<weight_t, 2>& maxWeight,
                                  const PartitionConfig& cfg, Rng& rng);

/// Deterministic last-resort split used when every multilevel bisection
/// attempt failed (see PartitionConfig::maxBisectAttempts): longest-
/// processing-time-first — vertices in decreasing weight order (ties by id)
/// go to the side with more remaining room. Ignores the cut entirely but
/// always yields a complete bisection whose balance is as good as the
/// vertex weights permit. Mirror of hgi::greedy_bisection.
gp::GPartition greedy_gbisection(const gp::Graph& g, const std::array<weight_t, 2>& target);

}  // namespace fghp::part::gpi
