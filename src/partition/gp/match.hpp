// Graph coarsening: heavy-edge / random matching and contraction
// (MeTiS-style).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "partition/config.hpp"
#include "util/rng.hpp"

namespace fghp::part::gpm {

/// fine vertex -> cluster id (densified by contract_graph).
using ClusterMap = std::vector<idx_t>;

/// Heavy-edge matching: each unmatched vertex pairs with the unmatched
/// neighbor across its heaviest edge.
ClusterMap match_heavy_edge(const gp::Graph& g, Rng& rng);

/// Random maximal matching (ablation baseline).
ClusterMap match_random(const gp::Graph& g, Rng& rng);

struct GCoarseLevel {
  gp::Graph coarse;
  std::vector<idx_t> fineToCoarse;
};

/// Contracts under the cluster map: weights summed, parallel edges merged,
/// self loops dropped.
GCoarseLevel contract_graph(const gp::Graph& fine, const ClusterMap& clusters);

/// One matching + contraction round per cfg.coarsening (agglomerative maps
/// to heavy-edge for graphs).
GCoarseLevel coarsen_one_level(const gp::Graph& fine, const PartitionConfig& cfg, Rng& rng);

}  // namespace fghp::part::gpm
