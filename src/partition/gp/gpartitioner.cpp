#include "partition/gp/gpartitioner.hpp"

#include <cmath>
#include <optional>

#include "graph/gvalidate.hpp"
#include "partition/gp/gkway.hpp"
#include "partition/gp/grecursive.hpp"
#include "util/cancel.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace fghp::part {

namespace {

/// Repairs eq.-(1) violations left by recursive bisection: ejects
/// minimum-cut-damage vertices from overloaded parts into the lightest part
/// that still fits (mirror of hgk::kway_rebalance for graphs).
void kway_grebalance(const gp::Graph& g, gp::GPartition& p, double epsilon, Rng& rng) {
  const idx_t K = p.num_parts();
  if (K <= 1) return;
  const double avg = static_cast<double>(g.total_vertex_weight()) / static_cast<double>(K);
  const auto cap = static_cast<weight_t>(std::floor(avg * (1.0 + epsilon) + 1e-9));

  for (idx_t from = 0; from < K; ++from) {
    while (p.part_weight(from) > cap) {
      idx_t bestV = kInvalidIdx;
      idx_t bestTo = kInvalidIdx;
      weight_t bestDamage = 0;
      for (idx_t v : rng.permutation(g.num_vertices())) {
        if (p.part_of(v) != from || g.vertex_weight(v) == 0) continue;
        idx_t to = kInvalidIdx;
        for (idx_t q = 0; q < K; ++q) {
          if (q == from || p.part_weight(q) + g.vertex_weight(v) > cap) continue;
          if (to == kInvalidIdx || p.part_weight(q) < p.part_weight(to)) to = q;
        }
        if (to == kInvalidIdx) continue;
        weight_t damage = 0;
        for (const gp::Adj& a : g.neighbors(v)) {
          if (p.part_of(a.to) == from) damage += a.weight;
          if (p.part_of(a.to) == to) damage -= a.weight;
        }
        if (bestV == kInvalidIdx || damage < bestDamage) {
          bestV = v;
          bestTo = to;
          bestDamage = damage;
        }
        if (bestDamage <= 0) break;
      }
      if (bestV == kInvalidIdx) break;
      p.move(g, bestV, bestTo);
    }
  }
}

}  // namespace

GpResult partition_graph(const gp::Graph& g, idx_t K, const PartitionConfig& cfg) {
  FGHP_REQUIRE(K >= 1, "K must be positive");
  WallTimer timer;

  // Scope the configured fault spec to this call; an empty spec leaves any
  // process-global (FGHP_FAULT_SPEC) installation untouched. The trace
  // capture follows the same contract for cfg.traceOut.
  std::optional<fault::ScopedSpec> faultScope;
  if (!cfg.faultSpec.empty()) faultScope.emplace(cfg.faultSpec);
  trace::ScopedCapture traceScope(cfg.traceOut);
  trace::TraceScope span("partition", "gp.partition", "k", K, "verts",
                         g.num_vertices());

  const bool strict = cfg.validateLevel == ValidateLevel::kStrict;
  if (strict) gp::validate_or_throw(g);

  // Phase-boundary check-point before any work (mirror of
  // partition_hypergraph's contract).
  cancel::check_point(cfg.cancel, "gp.partition", nullptr, 1,
                      /*deadlineThrows=*/!cfg.degradeOnDeadline);

  Rng rng(cfg.seed);

  gprb::GRecursiveResult rb = gprb::partition_graph_recursive(g, K, cfg, rng);
  if (strict) gp::validate_partition_or_throw(g, rb.partition, "recursive-bisection");
  if (K > 1 && !gp::is_balanced(g, rb.partition, cfg.epsilon)) {
    // Balance repair runs even on an expired deadline — feasibility is part
    // of the degradation contract, only quality polish is negotiable.
    kway_grebalance(g, rb.partition, cfg.epsilon, rng);
    if (strict) gp::validate_partition_or_throw(g, rb.partition, "rebalance");
  }
  const bool skipPolish =
      cfg.degradeOnDeadline &&
      cancel::poll(cfg.cancel) == cancel::Status::kDeadlineExpired;
  if (cfg.kwayRefine && K > 2 && !skipPolish) {
    gpk::gkway_refine(g, rb.partition, cfg, rng);
    if (strict) gp::validate_partition_or_throw(g, rb.partition, "kway-refine");
  }

  static metrics::Counter& runs = metrics::counter("partition.gp.runs");
  static metrics::Counter& recovered = metrics::counter("partition.recoveries");
  runs.add();
  recovered.add(rb.numRecoveries);

  GpResult out;
  out.seconds = timer.seconds();
  out.edgeCut = gp::edge_cut(g, rb.partition);
  out.imbalance = gp::imbalance(g, rb.partition);
  out.numRecoveries = rb.numRecoveries;
  out.numDegraded = rb.numDegraded;
  out.partition = std::move(rb.partition);
  return out;
}

}  // namespace fghp::part
