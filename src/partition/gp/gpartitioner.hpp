// Public facade of the multilevel graph partitioner (the MeTiS-style engine
// behind the standard graph model baseline).
#pragma once

#include "graph/gmetrics.hpp"
#include "graph/graph.hpp"
#include "partition/config.hpp"

namespace fghp::part {

struct GpResult {
  gp::GPartition partition;
  weight_t edgeCut = 0;
  double imbalance = 0.0;
  double seconds = 0.0;
  idx_t numRecoveries = 0;  ///< bisection retries / fallbacks taken (see DESIGN.md §9)
  idx_t numDegraded = 0;    ///< RB nodes demoted by the deadline ladder (§13)
};

/// Partitions g into K parts minimizing the weighted edge cut.
/// Deterministic in (g, K, cfg.seed).
GpResult partition_graph(const gp::Graph& g, idx_t K, const PartitionConfig& cfg);

}  // namespace fghp::part
