// Graph problem traits for the unified recursive-bisection engine
// (partition/rb_driver.hpp): multilevel graph bisection with FM refinement,
// cut-edge dropping on extraction (edge-cut telescoping), LPT greedy
// fallback, and deep graph-partition validation in strict mode.
//
// The graph stack has no fixed-vertex mechanism (the paper's pre-assigned
// vertices are a hypergraph-model feature), so the fixed sides passed by the
// engine must stay empty.
#pragma once

#include "graph/gvalidate.hpp"
#include "partition/gp/gbisect.hpp"
#include "partition/gp/ginitial.hpp"
#include "partition/gp/grecursive.hpp"
#include "partition/gp/grefine.hpp"
#include "partition/multilevel.hpp"
#include "util/assert.hpp"

namespace fghp::part::gprb {

struct GpRbTraits {
  using Problem = gp::Graph;
  using Partition = gp::GPartition;

  static constexpr const char* kBisectSite = "grb.bisect";
  static constexpr const char* kRetrySite = "grb.retry";

  static Partition bisect(const Problem& g, const std::array<weight_t, 2>& target,
                          const std::array<weight_t, 2>& cap, const PartitionConfig& cfg,
                          Rng& rng, const FixedSides& fixed) {
    FGHP_REQUIRE(fixed.empty(), "the graph baseline does not support fixed vertices");
    return gpb::multilevel_gbisect(g, target, cap, cfg, rng);
  }

  static Partition greedy_fallback(const Problem& g, const std::array<weight_t, 2>& target,
                                   const FixedSides& fixed) {
    FGHP_REQUIRE(fixed.empty(), "the graph baseline does not support fixed vertices");
    return gpi::greedy_gbisection(g, target);
  }

  static weight_t bisection_cut(const Problem& g, const Partition& p) {
    return gpr::GraphFM::compute_cut(g, p);
  }

  static RbSide<GpRbTraits> extract_side(const Problem& g, const Partition& bisection,
                                         idx_t side, const PartitionConfig&) {
    GraphSide e = extract_graph_side(g, bisection, side);
    return {std::move(e.sub), std::move(e.toParent)};
  }

  static void validate_bisection(const Problem& g, const Partition& p) {
    gp::validate_partition_or_throw(g, p, "grb-bisection");
  }

  static double problem_size(const Problem& g) {
    return static_cast<double>(g.num_vertices()) + static_cast<double>(g.num_edges());
  }
};

}  // namespace fghp::part::gprb
