#include "partition/gp/gkway.hpp"

#include <cmath>

#include "util/cancel.hpp"
#include "util/sparse_acc.hpp"

namespace fghp::part::gpk {

weight_t gkway_refine(const gp::Graph& g, gp::GPartition& p, const PartitionConfig& cfg,
                      Rng& rng) {
  FGHP_REQUIRE(p.complete(), "gkway_refine requires a complete partition");
  const idx_t K = p.num_parts();
  if (K <= 1) return 0;

  const double avg = static_cast<double>(g.total_vertex_weight()) / static_cast<double>(K);
  const auto cap = static_cast<weight_t>(std::floor(avg * (1.0 + cfg.epsilon) + 1e-9));

  weight_t totalGain = 0;
  SparseAccumulator<weight_t> toPart(K);

  for (idx_t passNo = 0; passNo < cfg.kwayRefinePasses; ++passNo) {
    // Quality-only polish: a deadline here just stops refining (the
    // partition between passes is always valid); a cancel still throws.
    if (cancel::check_point(cfg.cancel, "gkway.pass", nullptr, passNo + 1,
                            /*deadlineThrows=*/!cfg.degradeOnDeadline) !=
        cancel::Status::kRun)
      break;
    weight_t passGain = 0;
    for (idx_t v : rng.permutation(g.num_vertices())) {
      const idx_t from = p.part_of(v);
      // Edge weight towards each adjacent part; gain of moving to q is
      // weight(q) - weight(from).
      toPart.clear();
      weight_t internal = 0;
      for (const gp::Adj& a : g.neighbors(v)) {
        const idx_t q = p.part_of(a.to);
        if (q == from) {
          internal += a.weight;
        } else {
          toPart.add(q, a.weight);
        }
      }
      if (toPart.keys().empty()) continue;  // interior vertex

      idx_t bestPart = kInvalidIdx;
      weight_t bestGain = 0;
      for (idx_t q : toPart.keys()) {
        const weight_t gain = toPart.value(q) - internal;
        if (gain > bestGain && p.part_weight(q) + g.vertex_weight(v) <= cap) {
          bestGain = gain;
          bestPart = q;
        }
      }
      if (bestPart == kInvalidIdx) continue;
      p.move(g, v, bestPart);
      passGain += bestGain;
    }
    totalGain += passGain;
    if (passGain == 0) break;
  }
  return totalGain;
}

}  // namespace fghp::part::gpk
