// Multilevel graph bisection V-cycle.
#pragma once

#include <array>

#include "graph/graph.hpp"
#include "partition/config.hpp"
#include "util/rng.hpp"

namespace fghp::part::gpb {

gp::GPartition multilevel_gbisect(const gp::Graph& g, const std::array<weight_t, 2>& target,
                                  const std::array<weight_t, 2>& maxWeight,
                                  const PartitionConfig& cfg, Rng& rng);

}  // namespace fghp::part::gpb
