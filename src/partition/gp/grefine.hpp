// Boundary FM refinement for graph bisections (edge-cut objective).
#pragma once

#include <array>

#include "graph/graph.hpp"
#include "partition/config.hpp"
#include "util/bucket_queue.hpp"
#include "util/rng.hpp"

namespace fghp::part::gpr {

class GraphFM {
 public:
  explicit GraphFM(const PartitionConfig& cfg) : cfg_(cfg) {}

  /// Refines a complete 2-way partition in place under the side caps;
  /// repairs balance first if needed. Returns the resulting edge cut.
  weight_t refine(const gp::Graph& g, gp::GPartition& p,
                  const std::array<weight_t, 2>& maxWeight, Rng& rng);

  static weight_t compute_cut(const gp::Graph& g, const gp::GPartition& p);

 private:
  idx_t gain_of(const gp::Graph& g, const gp::GPartition& p, idx_t v) const;
  weight_t pass(const gp::Graph& g, gp::GPartition& p,
                const std::array<weight_t, 2>& maxWeight, weight_t startCut, Rng& rng);
  void apply_move(const gp::Graph& g, gp::GPartition& p, idx_t v, bool updateGains);
  void rebalance(const gp::Graph& g, gp::GPartition& p,
                 const std::array<weight_t, 2>& maxWeight);

  const PartitionConfig& cfg_;
  std::array<BucketQueue, 2> queue_;
  std::vector<char> locked_;
};

}  // namespace fghp::part::gpr
