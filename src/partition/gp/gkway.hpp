// Greedy direct K-way refinement of a graph partition under the edge-cut
// objective — the graph-side mirror of hgk::kway_refine, so the standard
// graph model baseline gets the same post-RB polish as the hypergraph
// models (keeping the Table 2 comparison apples-to-apples).
#pragma once

#include "graph/graph.hpp"
#include "partition/config.hpp"
#include "util/rng.hpp"

namespace fghp::part::gpk {

/// Runs cfg.kwayRefinePasses greedy passes (boundary vertices in random
/// order, best strictly-positive-gain feasible move). Returns the total
/// edge-cut improvement (>= 0). Balance (eq. 1, cfg.epsilon) is preserved.
weight_t gkway_refine(const gp::Graph& g, gp::GPartition& p, const PartitionConfig& cfg,
                      Rng& rng);

}  // namespace fghp::part::gpk
