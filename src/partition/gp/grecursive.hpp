// Recursive bisection of a graph to K parts (edge-cut objective). Cut edges
// are dropped when recursing — their cost is fully paid at the level that
// cut them, which telescopes to the K-way edge cut.
#pragma once

#include "graph/graph.hpp"
#include "partition/config.hpp"
#include "util/rng.hpp"

namespace fghp::part::gprb {

struct GRecursiveResult {
  gp::GPartition partition;
  weight_t sumOfBisectionCuts = 0;
};

GRecursiveResult partition_graph_recursive(const gp::Graph& g, idx_t K,
                                           const PartitionConfig& cfg, Rng& rng);

}  // namespace fghp::part::gprb
