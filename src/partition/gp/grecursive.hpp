// Recursive bisection of a graph to K parts (edge-cut objective). Cut edges
// are dropped when recursing — their cost is fully paid at the level that
// cut them, which telescopes to the K-way edge cut.
//
// The fork-join orchestration, RNG discipline and recovery ladder live in
// the shared engine (partition/rb_driver.hpp); this header keeps the
// graph-specific side extraction and the historical public API.
#pragma once

#include "graph/graph.hpp"
#include "partition/config.hpp"
#include "partition/multilevel.hpp"
#include "util/rng.hpp"

namespace fghp::part::gprb {

/// Sub-graph of one bisection side plus its vertex mapping.
struct GraphSide {
  gp::Graph sub;
  std::vector<idx_t> toParent;  ///< sub vertex -> parent vertex
};

/// Extracts the side's vertices with every edge internal to the side; cut
/// edges are dropped (their cost was paid by this bisection).
GraphSide extract_graph_side(const gp::Graph& g, const gp::GPartition& bisection,
                             idx_t side);

struct GRecursiveResult {
  gp::GPartition partition;
  weight_t sumOfBisectionCuts = 0;
  idx_t numRecoveries = 0;  ///< bisection retries + greedy fallbacks taken
  idx_t numDegraded = 0;    ///< nodes demoted by the deadline ladder
};

/// Partitions g into K parts by recursive multilevel bisection. Deterministic
/// in (g, K, cfg.seed) at any thread count.
///
/// Thin wrapper over the unified engine (rb::partition_recursive_rb with the
/// graph traits), which gives the baseline the same failure recovery as the
/// hypergraph stack: a bisection node whose multilevel bisect throws
/// (injected fault via grb.bisect/grb.retry/gfm.refine, internal error) or
/// comes back infeasible is retried with a reseeded Rng stream and relaxed
/// caps, then degrades to the deterministic greedy split. Every retry and
/// fallback pushes a warning and counts in numRecoveries.
GRecursiveResult partition_graph_recursive(const gp::Graph& g, idx_t K,
                                           const PartitionConfig& cfg, Rng& rng);

}  // namespace fghp::part::gprb
