#include "partition/gp/ginitial.hpp"

#include <algorithm>
#include <limits>

#include "partition/gp/grefine.hpp"
#include "util/bucket_queue.hpp"

namespace fghp::part::gpi {

gp::GPartition random_gbisection(const gp::Graph& g, const std::array<weight_t, 2>& target,
                                 Rng& rng) {
  gp::GPartition p(g, 2);
  std::array<weight_t, 2> room = target;
  for (idx_t v : rng.permutation(g.num_vertices())) {
    const idx_t side = room[0] >= room[1] ? 0 : 1;
    p.assign(g, v, side);
    room[static_cast<std::size_t>(side)] -= g.vertex_weight(v);
  }
  return p;
}

gp::GPartition ggg_bisection(const gp::Graph& g, const std::array<weight_t, 2>& target,
                             Rng& rng) {
  gp::GPartition p(g, 2);
  for (idx_t v = 0; v < g.num_vertices(); ++v) p.assign(g, v, 0);
  if (g.num_vertices() == 0) return p;

  // Gain of pulling v into side 1 = (edges to side 1) - (edges to side 0).
  auto gain_of = [&](idx_t v) {
    weight_t gain = 0;
    for (const gp::Adj& a : g.neighbors(v))
      gain += p.part_of(a.to) == 1 ? a.weight : -a.weight;
    return static_cast<idx_t>(gain);
  };

  BucketQueue queue(g.num_vertices(), static_cast<idx_t>(g.max_incident_weight()));
  std::vector<idx_t> order = rng.permutation(g.num_vertices());
  std::size_t seedCursor = 0;
  weight_t grown = 0;

  while (grown < target[1]) {
    idx_t v = kInvalidIdx;
    if (!queue.empty()) {
      v = queue.pop_max();
    } else {
      while (seedCursor < order.size() && p.part_of(order[seedCursor]) == 1) ++seedCursor;
      if (seedCursor >= order.size()) break;
      v = order[seedCursor++];
    }
    if (p.part_of(v) == 1) continue;
    p.move(g, v, 1);
    grown += g.vertex_weight(v);
    for (const gp::Adj& a : g.neighbors(v)) {
      if (p.part_of(a.to) == 0) {
        if (queue.contains(a.to)) {
          queue.adjust(a.to, static_cast<idx_t>(2 * a.weight));
        } else {
          queue.push(a.to, gain_of(a.to));
        }
      }
    }
  }
  return p;
}

gp::GPartition initial_gbisection(const gp::Graph& g, const std::array<weight_t, 2>& target,
                                  const std::array<weight_t, 2>& maxWeight,
                                  const PartitionConfig& cfg, Rng& rng) {
  gpr::GraphFM fm(cfg);
  gp::GPartition best;
  weight_t bestCut = std::numeric_limits<weight_t>::max();
  bool bestFeasible = false;

  const idx_t runs = std::max<idx_t>(1, cfg.numInitialRuns);
  for (idx_t r = 0; r < runs; ++r) {
    const bool useGgg = cfg.initial == InitialAlgo::kGreedyGrowing ||
                        (cfg.initial == InitialAlgo::kMixed && r % 2 == 0);
    gp::GPartition p = useGgg ? ggg_bisection(g, target, rng) : random_gbisection(g, target, rng);
    const weight_t cut = fm.refine(g, p, maxWeight, rng);
    const bool feasible = p.part_weight(0) <= maxWeight[0] && p.part_weight(1) <= maxWeight[1];
    if ((feasible && !bestFeasible) || (feasible == bestFeasible && cut < bestCut)) {
      best = p;
      bestCut = cut;
      bestFeasible = feasible;
    }
  }
  return best;
}

gp::GPartition greedy_gbisection(const gp::Graph& g, const std::array<weight_t, 2>& target) {
  gp::GPartition p(g, 2);
  std::array<weight_t, 2> room = target;
  std::vector<idx_t> order(static_cast<std::size_t>(g.num_vertices()));
  for (idx_t v = 0; v < g.num_vertices(); ++v) order[static_cast<std::size_t>(v)] = v;
  std::stable_sort(order.begin(), order.end(), [&](idx_t a, idx_t b) {
    return g.vertex_weight(a) > g.vertex_weight(b);
  });
  for (idx_t v : order) {
    const idx_t side = room[0] >= room[1] ? 0 : 1;
    p.assign(g, v, side);
    room[static_cast<std::size_t>(side)] -= g.vertex_weight(v);
  }
  return p;
}

}  // namespace fghp::part::gpi
