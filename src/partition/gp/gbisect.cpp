#include "partition/gp/gbisect.hpp"

#include "partition/gp/ginitial.hpp"
#include "partition/gp/grefine.hpp"
#include "partition/gp/match.hpp"
#include "partition/phase_timers.hpp"
#include "util/cancel.hpp"
#include "util/fault.hpp"
#include "util/trace.hpp"

namespace fghp::part::gpb {

gp::GPartition multilevel_gbisect(const gp::Graph& g, const std::array<weight_t, 2>& target,
                                  const std::array<weight_t, 2>& maxWeight,
                                  const PartitionConfig& cfg, Rng& rng) {
  FGHP_REQUIRE(target[0] + target[1] == g.total_vertex_weight(),
               "bisection targets must sum to the total vertex weight");

  // --- Coarsening phase ---------------------------------------------------
  std::vector<gpm::GCoarseLevel> levels;
  const gp::Graph* cur = &g;
  if (cfg.coarsening != Coarsening::kNone) {
    ScopedPhase phase(Phase::kCoarsen);
    for (idx_t lvl = 0; lvl < cfg.maxCoarsenLevels; ++lvl) {
      if (cur->num_vertices() <= cfg.coarsenTo) break;
      // Per-coarsen-level check-point; a deadline thrown here is converted
      // into a greedy degradation by the RB driver's recovery ladder.
      cancel::check_point(cfg.cancel, "coarsen.level", nullptr, lvl + 1);
      trace::TraceScope lvlSpan("rb", "coarsen.level", "level", lvl, "verts",
                                cur->num_vertices());
      gpm::GCoarseLevel next = gpm::coarsen_one_level(*cur, cfg, rng);
      const double reduction = static_cast<double>(next.coarse.num_vertices()) /
                               static_cast<double>(cur->num_vertices());
      if (reduction > cfg.minReductionFactor) break;  // stagnated
      levels.push_back(std::move(next));
      cur = &levels.back().coarse;
    }
  }

  // --- Initial partitioning at the coarsest level --------------------------
  gp::GPartition p = [&] {
    ScopedPhase phase(Phase::kInitial);
    return gpi::initial_gbisection(*cur, target, maxWeight, cfg, rng);
  }();

  // --- Uncoarsening + refinement -------------------------------------------
  ScopedPhase refinePhase(Phase::kRefine);
  fault::check("gfm.refine");
  gpr::GraphFM fm(cfg);
  fm.refine(*cur, p, maxWeight, rng);
  for (std::size_t i = levels.size(); i > 0; --i) {
    const gp::Graph& fine = (i >= 2) ? levels[i - 2].coarse : g;
    cancel::check_point(cfg.cancel, "refine.level", nullptr, static_cast<long>(i));
    trace::TraceScope lvlSpan("rb", "refine.level", "level",
                              static_cast<std::int64_t>(i - 1), "verts",
                              fine.num_vertices());
    const auto& map = levels[i - 1].fineToCoarse;
    std::vector<idx_t> assignment(static_cast<std::size_t>(fine.num_vertices()));
    for (idx_t v = 0; v < fine.num_vertices(); ++v)
      assignment[static_cast<std::size_t>(v)] = p.part_of(map[static_cast<std::size_t>(v)]);
    p = gp::GPartition(fine, 2, std::move(assignment));
    fm.refine(fine, p, maxWeight, rng);
  }
  return p;
}

}  // namespace fghp::part::gpb
