#include "partition/phase_timers.hpp"

#include <cmath>

namespace fghp::part {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kCoarsen: return "coarsen";
    case Phase::kInitial: return "initial";
    case Phase::kRefine: return "refine";
    case Phase::kExtract: return "extract";
  }
  return "?";
}

double PhaseSnapshot::total() const {
  double t = 0.0;
  for (double s : seconds) t += s;
  return t;
}

PhaseSnapshot PhaseSnapshot::operator-(const PhaseSnapshot& other) const {
  PhaseSnapshot out;
  for (std::size_t i = 0; i < seconds.size(); ++i)
    out.seconds[i] = seconds[i] - other.seconds[i];
  return out;
}

void PhaseTimers::add(Phase p, double seconds) {
  const auto ns = static_cast<std::int64_t>(std::llround(seconds * 1e9));
  nanos_[static_cast<std::size_t>(p)].fetch_add(ns, std::memory_order_relaxed);
}

PhaseSnapshot PhaseTimers::snapshot() const {
  PhaseSnapshot out;
  for (std::size_t i = 0; i < nanos_.size(); ++i)
    out.seconds[i] =
        static_cast<double>(nanos_[i].load(std::memory_order_relaxed)) * 1e-9;
  return out;
}

void PhaseTimers::reset() {
  for (auto& n : nanos_) n.store(0, std::memory_order_relaxed);
}

PhaseTimers& phase_timers() {
  static PhaseTimers timers;
  return timers;
}

}  // namespace fghp::part
