#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <tuple>

namespace fghp::gp {

Graph::Graph(idx_t numVertices, std::vector<std::tuple<idx_t, idx_t, weight_t>> edges,
             std::vector<weight_t> vertexWeights)
    : numVerts_(numVertices) {
  FGHP_REQUIRE(numVertices >= 0, "vertex count must be non-negative");
  if (vertexWeights.empty()) {
    vwgt_.assign(static_cast<std::size_t>(numVertices), 1);
  } else {
    FGHP_REQUIRE(vertexWeights.size() == static_cast<std::size_t>(numVertices),
                 "one weight per vertex required");
    vwgt_ = std::move(vertexWeights);
  }
  for (weight_t w : vwgt_) FGHP_REQUIRE(w >= 0, "vertex weights must be non-negative");
  totalWeight_ = std::accumulate(vwgt_.begin(), vwgt_.end(), weight_t{0});

  // Normalize edges: canonical orientation, sorted, duplicates merged.
  for (auto& [u, v, w] : edges) {
    FGHP_REQUIRE(u >= 0 && u < numVertices && v >= 0 && v < numVertices,
                 "edge endpoint out of range");
    FGHP_REQUIRE(u != v, "self loops are not allowed");
    FGHP_REQUIRE(w >= 0, "edge weights must be non-negative");
    if (u > v) std::swap(u, v);
  }
  std::sort(edges.begin(), edges.end());
  std::vector<std::tuple<idx_t, idx_t, weight_t>> merged;
  merged.reserve(edges.size());
  for (const auto& e : edges) {
    if (!merged.empty() && std::get<0>(merged.back()) == std::get<0>(e) &&
        std::get<1>(merged.back()) == std::get<1>(e)) {
      std::get<2>(merged.back()) += std::get<2>(e);
    } else {
      merged.push_back(e);
    }
  }

  xadj_.assign(static_cast<std::size_t>(numVertices) + 1, 0);
  for (const auto& [u, v, w] : merged) {
    ++xadj_[static_cast<std::size_t>(u) + 1];
    ++xadj_[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(numVertices); ++i)
    xadj_[i + 1] += xadj_[i];
  adj_.resize(static_cast<std::size_t>(xadj_.back()));
  std::vector<idx_t> cursor(xadj_.begin(), xadj_.end() - 1);
  for (const auto& [u, v, w] : merged) {
    adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = {v, w};
    adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = {u, w};
    totalEdgeWeight_ += w;
  }
  for (idx_t v = 0; v < numVerts_; ++v) {
    weight_t inc = 0;
    for (const Adj& a : neighbors(v)) inc += a.weight;
    maxIncident_ = std::max(maxIncident_, inc);
  }
}

GPartition::GPartition(const Graph& g, idx_t numParts)
    : numParts_(numParts),
      part_(static_cast<std::size_t>(g.num_vertices()), kInvalidIdx),
      partWeight_(static_cast<std::size_t>(numParts), 0) {
  FGHP_REQUIRE(numParts >= 1, "need at least one part");
}

GPartition::GPartition(const Graph& g, idx_t numParts, std::vector<idx_t> assignment)
    : numParts_(numParts),
      part_(std::move(assignment)),
      partWeight_(static_cast<std::size_t>(numParts), 0) {
  FGHP_REQUIRE(numParts >= 1, "need at least one part");
  FGHP_REQUIRE(part_.size() == static_cast<std::size_t>(g.num_vertices()),
               "assignment size must equal vertex count");
  for (idx_t v = 0; v < g.num_vertices(); ++v) {
    const idx_t p = part_[static_cast<std::size_t>(v)];
    FGHP_REQUIRE(p >= 0 && p < numParts_, "part id out of range");
    partWeight_[static_cast<std::size_t>(p)] += g.vertex_weight(v);
  }
}

void GPartition::assign(const Graph& g, idx_t v, idx_t part) {
  FGHP_ASSERT(!assigned(v));
  part_[static_cast<std::size_t>(v)] = part;
  partWeight_[static_cast<std::size_t>(part)] += g.vertex_weight(v);
}

void GPartition::move(const Graph& g, idx_t v, idx_t toPart) {
  FGHP_ASSERT(assigned(v));
  const idx_t from = part_[static_cast<std::size_t>(v)];
  if (from == toPart) return;
  partWeight_[static_cast<std::size_t>(from)] -= g.vertex_weight(v);
  partWeight_[static_cast<std::size_t>(toPart)] += g.vertex_weight(v);
  part_[static_cast<std::size_t>(v)] = toPart;
}

bool GPartition::complete() const {
  return std::none_of(part_.begin(), part_.end(),
                      [](idx_t p) { return p == kInvalidIdx; });
}

}  // namespace fghp::gp
