// Graph partition metrics: weighted edge cut (what MeTiS minimizes) and the
// balance criterion.
#pragma once

#include "graph/graph.hpp"

namespace fghp::gp {

/// Sum of weights of edges whose endpoints lie in different parts.
weight_t edge_cut(const Graph& g, const GPartition& p);

/// max_k W_k / W_avg - 1.
double imbalance(const Graph& g, const GPartition& p);

/// True if every part satisfies W_k <= W_avg * (1 + eps).
bool is_balanced(const Graph& g, const GPartition& p, double eps);

}  // namespace fghp::gp
