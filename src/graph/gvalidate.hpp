// Deep structural validation of a graph and its partitions — the graph-side
// mirror of hypergraph/validate.hpp, used by tests and by the partitioner
// pipeline between phases when PartitionConfig::validateLevel is kStrict.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace fghp::gp {

/// Returns a list of human-readable problems (empty = valid):
///  * self-loops or neighbor ids outside [0, num_vertices),
///  * asymmetric adjacency: (u, v, w) stored without a matching (v, u, w).
std::vector<std::string> validate(const Graph& g);

/// Throws fghp::InvariantError listing all problems if validate() is
/// non-empty.
void validate_or_throw(const Graph& g);

/// Returns a list of human-readable problems with a partition of g
/// (empty = valid):
///  * unassigned vertices or part ids outside [0, num_parts),
///  * cached part weights inconsistent with a fresh recount.
std::vector<std::string> validate_partition(const Graph& g, const GPartition& p);

/// Throws fghp::InvariantError listing all problems if validate_partition()
/// is non-empty. `phase` (optional) labels where in the pipeline the check
/// ran and is attached to the error context.
void validate_partition_or_throw(const Graph& g, const GPartition& p,
                                 const std::string& phase = {});

}  // namespace fghp::gp
