// Undirected weighted graph in CSR adjacency form — the substrate of the
// standard graph model (MeTiS-style baseline).
#pragma once

#include <span>
#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace fghp::gp {

/// One endpoint record in the adjacency array.
struct Adj {
  idx_t to;
  weight_t weight;
};

class Graph {
 public:
  Graph() = default;

  /// Builds from an undirected edge list (each edge given once, u != v;
  /// duplicate (u,v) pairs have their weights summed). Vertex weights
  /// default to 1 if the vector is empty.
  Graph(idx_t numVertices, std::vector<std::tuple<idx_t, idx_t, weight_t>> edges,
        std::vector<weight_t> vertexWeights = {});

  idx_t num_vertices() const { return numVerts_; }
  idx_t num_edges() const { return static_cast<idx_t>(adj_.size() / 2); }

  std::span<const Adj> neighbors(idx_t v) const {
    FGHP_ASSERT(v >= 0 && v < numVerts_);
    const auto b = static_cast<std::size_t>(xadj_[static_cast<std::size_t>(v)]);
    const auto e = static_cast<std::size_t>(xadj_[static_cast<std::size_t>(v) + 1]);
    return {adj_.data() + b, e - b};
  }

  idx_t degree(idx_t v) const {
    return xadj_[static_cast<std::size_t>(v) + 1] - xadj_[static_cast<std::size_t>(v)];
  }

  weight_t vertex_weight(idx_t v) const { return vwgt_[static_cast<std::size_t>(v)]; }
  weight_t total_vertex_weight() const { return totalWeight_; }
  weight_t total_edge_weight() const { return totalEdgeWeight_; }

  /// Maximum sum of incident edge weights over all vertices (FM gain bound).
  weight_t max_incident_weight() const { return maxIncident_; }

  const std::vector<weight_t>& vertex_weights() const { return vwgt_; }

 private:
  idx_t numVerts_ = 0;
  weight_t totalWeight_ = 0;
  weight_t totalEdgeWeight_ = 0;
  weight_t maxIncident_ = 0;
  std::vector<idx_t> xadj_{0};
  std::vector<Adj> adj_;
  std::vector<weight_t> vwgt_;
};

/// K-way partition of a graph (mirror of hg::Partition).
class GPartition {
 public:
  GPartition() = default;
  GPartition(const Graph& g, idx_t numParts);
  GPartition(const Graph& g, idx_t numParts, std::vector<idx_t> assignment);

  idx_t num_parts() const { return numParts_; }
  idx_t part_of(idx_t v) const { return part_[static_cast<std::size_t>(v)]; }
  bool assigned(idx_t v) const { return part_of(v) != kInvalidIdx; }
  void assign(const Graph& g, idx_t v, idx_t part);
  void move(const Graph& g, idx_t v, idx_t toPart);
  weight_t part_weight(idx_t part) const { return partWeight_[static_cast<std::size_t>(part)]; }
  const std::vector<idx_t>& assignment() const { return part_; }
  bool complete() const;

 private:
  idx_t numParts_ = 0;
  std::vector<idx_t> part_;
  std::vector<weight_t> partWeight_;
};

}  // namespace fghp::gp
