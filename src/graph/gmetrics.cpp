#include "graph/gmetrics.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace fghp::gp {

weight_t edge_cut(const Graph& g, const GPartition& p) {
  FGHP_REQUIRE(p.complete(), "edge_cut requires a complete partition");
  weight_t cut = 0;
  for (idx_t v = 0; v < g.num_vertices(); ++v) {
    for (const Adj& a : g.neighbors(v)) {
      if (a.to > v && p.part_of(a.to) != p.part_of(v)) cut += a.weight;
    }
  }
  return cut;
}

double imbalance(const Graph& g, const GPartition& p) {
  if (g.total_vertex_weight() == 0) return 0.0;
  const double avg =
      static_cast<double>(g.total_vertex_weight()) / static_cast<double>(p.num_parts());
  weight_t wmax = 0;
  for (idx_t k = 0; k < p.num_parts(); ++k) wmax = std::max(wmax, p.part_weight(k));
  return static_cast<double>(wmax) / avg - 1.0;
}

bool is_balanced(const Graph& g, const GPartition& p, double eps) {
  const double avg =
      static_cast<double>(g.total_vertex_weight()) / static_cast<double>(p.num_parts());
  const double cap = avg * (1.0 + eps);
  for (idx_t k = 0; k < p.num_parts(); ++k) {
    if (static_cast<double>(p.part_weight(k)) > cap + 1e-9) return false;
  }
  return true;
}

}  // namespace fghp::gp
