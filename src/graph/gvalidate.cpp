#include "graph/gvalidate.hpp"

#include <sstream>

#include "util/error.hpp"

namespace fghp::gp {

std::vector<std::string> validate(const Graph& g) {
  std::vector<std::string> problems;

  const idx_t n = g.num_vertices();
  for (idx_t v = 0; v < n; ++v) {
    for (const Adj& a : g.neighbors(v)) {
      if (a.to == v) {
        std::ostringstream os;
        os << "vertex " << v << " has a self-loop";
        problems.push_back(os.str());
        continue;
      }
      if (a.to < 0 || a.to >= n) {
        std::ostringstream os;
        os << "vertex " << v << " has neighbor " << a.to << " outside [0, " << n << ")";
        problems.push_back(os.str());
        continue;
      }
      // The adjacency is undirected: the reverse record must exist with the
      // same weight.
      bool found = false;
      for (const Adj& back : g.neighbors(a.to)) {
        if (back.to == v && back.weight == a.weight) {
          found = true;
          break;
        }
      }
      if (!found) {
        std::ostringstream os;
        os << "edge (" << v << ", " << a.to << ", w=" << a.weight
           << ") has no matching reverse record";
        problems.push_back(os.str());
      }
    }
  }

  return problems;
}

void validate_or_throw(const Graph& g) {
  const auto problems = validate(g);
  if (problems.empty()) return;
  std::ostringstream os;
  os << "invalid graph:";
  for (const auto& p : problems) os << "\n  - " << p;
  throw InvariantError(os.str());
}

std::vector<std::string> validate_partition(const Graph& g, const GPartition& p) {
  std::vector<std::string> problems;

  const idx_t K = p.num_parts();
  std::vector<weight_t> recount(static_cast<std::size_t>(K), 0);
  for (idx_t v = 0; v < g.num_vertices(); ++v) {
    const idx_t part = p.part_of(v);
    if (part < 0 || part >= K) {
      std::ostringstream os;
      if (part == kInvalidIdx) {
        os << "vertex " << v << " is unassigned";
      } else {
        os << "vertex " << v << " has part " << part << " outside [0, " << K << ")";
      }
      problems.push_back(os.str());
      continue;
    }
    recount[static_cast<std::size_t>(part)] += g.vertex_weight(v);
  }

  for (idx_t k = 0; k < K; ++k) {
    const weight_t cached = p.part_weight(k);
    const weight_t fresh = recount[static_cast<std::size_t>(k)];
    if (cached != fresh) {
      std::ostringstream os;
      os << "part " << k << " cached weight " << cached
         << " disagrees with recounted weight " << fresh;
      problems.push_back(os.str());
    }
  }

  return problems;
}

void validate_partition_or_throw(const Graph& g, const GPartition& p,
                                 const std::string& phase) {
  const auto problems = validate_partition(g, p);
  if (problems.empty()) return;
  std::ostringstream os;
  os << "invalid partition";
  if (!phase.empty()) os << " after phase '" << phase << "'";
  os << ":";
  for (const auto& msg : problems) os << "\n  - " << msg;
  ErrorContext ctx;
  ctx.phase = phase;
  throw InvariantError(os.str(), std::move(ctx));
}

}  // namespace fghp::gp
