// Serial CSR sparse matrix-vector product — the correctness oracle for the
// distributed executors.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace fghp::spmv {

/// y = A x (dense x of size num_cols; returns y of size num_rows).
std::vector<double> multiply(const sparse::Csr& a, std::span<const double> x);

/// y = A x into a preallocated y (overwritten).
void multiply_into(const sparse::Csr& a, std::span<const double> x, std::span<double> y);

}  // namespace fghp::spmv
