// Alpha-beta-gamma BSP cost model: translates a decomposition's
// communication statistics into an estimated parallel SpMV time (and the
// implied speedup), so the benches can show that lower volume actually buys
// wall-clock time under realistic machine ratios.
#pragma once

#include "comm/volume.hpp"
#include "models/decomposition.hpp"
#include "sparse/csr.hpp"

namespace fghp::spmv {

struct CostParams {
  double alpha = 5e-6;  ///< per-message latency (s); ~ classic cluster
  double beta = 2e-9;   ///< per-word transfer time (s/word)
  double gamma = 5e-10; ///< per-flop compute time (s/flop)
};

struct CostEstimate {
  double computeSeconds = 0.0;  ///< max over processors of 2*nnz_p*gamma
  double commSeconds = 0.0;     ///< max over processors of alpha*msgs + beta*words
  double totalSeconds = 0.0;
  double serialSeconds = 0.0;   ///< 2*Z*gamma
  double speedup = 0.0;         ///< serial / total
};

/// Estimates one distributed SpMV under the BSP max-over-processors model.
CostEstimate estimate_cost(const sparse::Csr& a, const model::Decomposition& d,
                           const comm::CommStats& stats, const CostParams& params = {});

}  // namespace fghp::spmv
