#include "spmv/reference.hpp"

#include "util/assert.hpp"

namespace fghp::spmv {

void multiply_into(const sparse::Csr& a, std::span<const double> x, std::span<double> y) {
  FGHP_REQUIRE(x.size() == static_cast<std::size_t>(a.num_cols()), "x size mismatch");
  FGHP_REQUIRE(y.size() == static_cast<std::size_t>(a.num_rows()), "y size mismatch");
  for (idx_t i = 0; i < a.num_rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    double acc = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k)
      acc += vals[k] * x[static_cast<std::size_t>(cols[k])];
    y[static_cast<std::size_t>(i)] = acc;
  }
}

std::vector<double> multiply(const sparse::Csr& a, std::span<const double> x) {
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
  multiply_into(a, x, y);
  return y;
}

}  // namespace fghp::spmv
