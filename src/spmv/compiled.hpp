// SpMV-typed view of the workload-agnostic compiled execution core
// (exec/compiled.hpp). A CompiledPlan *is* an exec::Image — the lowering of
// the plan's schedule (one input space "x", output space "y", baked matrix
// constants) — and ExecSession is exec::Session with the single-input
// calling convention: run(x, y) instead of run({x}, y).
//
// Everything documented on the generic core holds here unchanged: zero
// allocation per serial iteration after the first, bit-identical serial/MT
// results at any thread count, the second-level cache-aware RCM reordering
// (CompileOptions::cacheReorder), the `exec.*` fault/cancel sites and the
// one-retry-then-serial-fallback ladder. Trace and metric names stay in the
// "spmv" family ("spmv"/"spmv.iteration" spans, "spmv.iterations" etc.),
// carried by the schedule's workload labels. DESIGN.md §12, §14.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "exec/compiled.hpp"
#include "spmv/executor.hpp"
#include "spmv/plan.hpp"
#include "util/cancel.hpp"

namespace fghp::spmv {

/// The execution image of an SpMV plan. In the generic image, x is input
/// space 0 (c.in[0]: slots, owned gather, expand send/recv tables), y is the
/// output space (c.out: partial slots, owner fold, fold send/recv tables),
/// the task CSR is groupPtr/rhsSlot/constVals, and num_tasks() == nnz.
using CompiledPlan = exec::Image;

/// Compile-time choices for the lowering (generic: cacheReorder + a cancel
/// token checked once at the "plan.compile" phase boundary).
using CompileOptions = exec::CompileOptions;

/// Lowers a plan: exec::compile over to_schedule(plan). Throws
/// fghp::InvariantError if the fold schedule references a row its processor
/// never computes, or if the compiled send-buffer offsets fail to cover
/// exactly plan.total_words() / plan.total_messages() (both indicate a
/// corrupt plan).
CompiledPlan compile_plan(const SpmvPlan& plan, const CompileOptions& opts = {});

/// Owns a compiled image plus the scratch to execute it repeatedly.
/// After the first run() the serial path performs zero heap allocations per
/// iteration (reuse the same y vector). Not thread-safe: one session per
/// concurrent caller; run_mt parallelizes internally.
class ExecSession {
 public:
  explicit ExecSession(const SpmvPlan& plan, const CompileOptions& opts = {})
      : s_(compile_plan(plan, opts)) {}
  explicit ExecSession(CompiledPlan compiled) : s_(std::move(compiled)) {}

  const CompiledPlan& compiled() const { return s_.image(); }

  /// Installs a cancellation token for subsequent iterations. Each run()/
  /// run_mt() call starts with a check-point at the "exec.iter" boundary
  /// (fault site `cancel.exec.iter`, ordinal = 1-based iteration number) and
  /// run_mt additionally checks between BSP supersteps — always on the
  /// calling thread, never inside a worker task, so the retry ladder cannot
  /// misread a cancellation as a task fault. A cancelled or expired token
  /// surfaces as CancelledError / DeadlineExceededError; the session stays
  /// reusable afterwards (every scratch word is re-assigned each run).
  void set_cancel(cancel::CancelToken token) { s_.set_cancel(std::move(token)); }

  /// 1-based count of iterations started (run + run_mt); the check-point
  /// ordinal, exposed for tests.
  long iterations_started() const { return s_.iterations_started(); }

  /// Serial y = A x into `y` (resized to numRows, zero-filled, then
  /// accumulated in the serial executor's exact summation order).
  void run(std::span<const double> x, std::vector<double>& y,
           ExecStats* stats = nullptr) {
    const std::array<std::span<const double>, 1> ins{x};
    s_.run(ins, y, stats);
  }

  /// Threaded BSP y = A x (expand / multiply / fold supersteps with a full
  /// join between them). Workers come from the shared ThreadPool via the
  /// standard resolution (`numThreads` if positive, else FGHP_THREADS /
  /// hardware concurrency, capped at numProcs); when the request resolves to
  /// one thread the supersteps run inline on the caller — no threads are
  /// spawned, but the `exec.expand` / `exec.fold` / `exec.retry` fault sites
  /// and the one-retry-then-serial-fallback ladder stay armed exactly as in
  /// the threaded case. Output is bit-identical to run() at any thread count.
  void run_mt(std::span<const double> x, std::vector<double>& y,
              idx_t numThreads = 0, ExecStats* stats = nullptr) {
    const std::array<std::span<const double>, 1> ins{x};
    s_.run_mt(ins, y, numThreads, stats);
  }

 private:
  exec::Session s_;
};

}  // namespace fghp::spmv
