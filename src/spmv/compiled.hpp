// Plan compilation: lowers an SpmvPlan into a local-indexed, zero-allocation
// execution image (CompiledPlan) and runs it through a reusable ExecSession.
//
// The one-shot executors walk the plan in *global* coordinates and pay a
// hash lookup per nonzero plus fresh mailbox/cache/partial allocations on
// every call. An iterative solver calls y = A x hundreds of times on the
// same plan, so we lower once instead:
//
//  * every processor's nonzeros become a CSR whose column indices point into
//    a dense per-processor x scratch (local numbering, no hashes),
//  * every expand/fold message id is pre-translated to a scratch slot, and
//    all message payloads pack into one flat buffer per processor addressed
//    by prefix offsets (rowOff/xOff/xSendOff/... below),
//  * ExecSession owns the image plus the scratch vectors, so iterations
//    after the first perform no heap allocation at all on the serial path
//    (the threaded path still spawns its worker threads per call).
//
// Both execution paths are bit-identical to the original executors: the
// per-row multiply accumulates in the plan's nonzero order and the fold
// accumulates own-partial first, then remote partials in plan (sender-major)
// order — the exact summation orders execute()/execute_mt() used.
#pragma once

#include <span>
#include <vector>

#include "spmv/executor.hpp"
#include "spmv/plan.hpp"

namespace fghp::spmv {

/// The execution image. All arrays are flat and concatenated processor-major;
/// a `*Off` array of size numProcs+1 gives processor p the half-open range
/// [off[p], off[p+1]). "Slot" means an index into the session's flat scratch:
/// x slots address the local-x gather space, row slots the partial space.
struct CompiledPlan {
  idx_t numProcs = 0;
  idx_t numRows = 0;
  idx_t numCols = 0;

  // --- per-processor prefix offsets (each numProcs + 1 long) --------------
  std::vector<idx_t> rowOff;      ///< local row slots (partial scratch)
  std::vector<idx_t> xOff;        ///< local x slots (gather scratch)
  std::vector<idx_t> ownXOff;     ///< owned-and-locally-used x pairs
  std::vector<idx_t> ownYOff;     ///< owned-and-locally-computed y pairs
  std::vector<idx_t> xSendOff;    ///< expand send-buffer words
  std::vector<idx_t> xSendMsgOff; ///< expand messages
  std::vector<idx_t> xRecvOff;    ///< expand recv words
  std::vector<idx_t> ySendOff;    ///< fold send-buffer words
  std::vector<idx_t> ySendMsgOff; ///< fold messages
  std::vector<idx_t> yRecvOff;    ///< fold recv words

  // --- local CSR (concatenated; entries of proc p start at rowPtr[rowOff[p]])
  std::vector<idx_t> rowPtr;      ///< size rowOff.back() + 1
  std::vector<idx_t> colSlot;     ///< x slot per nonzero (local numbering)
  std::vector<double> vals;

  // --- gather / scatter tables -------------------------------------------
  std::vector<idx_t> xColGlobal;  ///< x slot -> global column (serial gather)
  std::vector<idx_t> ownXCol;     ///< owned gather: global column ...
  std::vector<idx_t> ownXSlot;    ///< ... into this x slot (MT superstep 1)
  std::vector<idx_t> xSendCol;    ///< send word -> global column to copy out
  std::vector<idx_t> xRecvSlot;   ///< recv word -> destination x slot
  std::vector<idx_t> xRecvSrc;    ///< recv word -> source word in x send space
  std::vector<idx_t> ownYRow;     ///< owner fold: global row ...
  std::vector<idx_t> ownYSlot;    ///< ... accumulated from this row slot
  std::vector<idx_t> ySendSlot;   ///< send word -> source row slot
  std::vector<idx_t> ySendRow;    ///< send word -> global row (serial fold)
  std::vector<idx_t> yRecvRow;    ///< recv word -> global row accumulated into
  std::vector<idx_t> yRecvSrc;    ///< recv word -> source word in y send space

  idx_t nnz() const { return rowPtr.empty() ? 0 : rowPtr.back(); }
  weight_t total_words() const;   ///< expand + fold send-buffer words
  idx_t total_messages() const;   ///< directed messages, both phases
};

/// Lowers a plan. Throws fghp::InvariantError if the plan's fold schedule
/// references a row its processor never computes, or if the compiled
/// send-buffer offsets fail to cover exactly plan.total_words() /
/// plan.total_messages() (both indicate a corrupt plan).
CompiledPlan compile_plan(const SpmvPlan& plan);

/// Owns a compiled image plus the scratch to execute it repeatedly.
/// After the first run() the serial path performs zero heap allocations per
/// iteration (reuse the same y vector). Not thread-safe: one session per
/// concurrent caller; run_mt parallelizes internally.
class ExecSession {
 public:
  explicit ExecSession(const SpmvPlan& plan);
  explicit ExecSession(CompiledPlan compiled);

  const CompiledPlan& compiled() const { return c_; }

  /// Serial y = A x into `y` (resized to numRows, zero-filled, then
  /// accumulated in the serial executor's exact summation order).
  void run(std::span<const double> x, std::vector<double>& y,
           ExecStats* stats = nullptr);

  /// Threaded BSP y = A x (expand / multiply / fold supersteps, barriers in
  /// between). Same worker-count resolution, `exec.expand` / `exec.fold` /
  /// `exec.retry` fault sites, one-retry-then-serial-fallback recovery and
  /// bit-identical output as execute_mt().
  void run_mt(std::span<const double> x, std::vector<double>& y,
              idx_t numThreads = 0, ExecStats* stats = nullptr);

 private:
  CompiledPlan c_;
  // Scratch, sized once at construction. xSendBuf_/ySendBuf_ are the flat
  // mailbox spaces the MT path communicates through; the serial path
  // gathers/scatters directly and never touches them.
  std::vector<double> xLoc_, partial_, xSendBuf_, ySendBuf_;
};

}  // namespace fghp::spmv
