// Plan compilation: lowers an SpmvPlan into a local-indexed, zero-allocation
// execution image (CompiledPlan) and runs it through a reusable ExecSession.
//
// The one-shot executors walk the plan in *global* coordinates and pay a
// hash lookup per nonzero plus fresh mailbox/cache/partial allocations on
// every call. An iterative solver calls y = A x hundreds of times on the
// same plan, so we lower once instead:
//
//  * every processor's nonzeros become a CSR whose column indices point into
//    a dense per-processor x scratch (local numbering, no hashes),
//  * every expand/fold message id is pre-translated to a scratch slot, and
//    all message payloads pack into one flat buffer per processor addressed
//    by prefix offsets (rowOff/xOff/xSendOff/... below),
//  * ExecSession owns the image plus the scratch vectors, so iterations
//    after the first perform no heap allocation at all on the serial path
//    (the threaded path still spawns its worker threads per call).
//
// Both execution paths are bit-identical to the original executors: the
// per-row multiply accumulates in the plan's nonzero order and the fold
// accumulates own-partial first, then remote partials in plan (sender-major)
// order — the exact summation orders execute()/execute_mt() used.
//
// On top of the PR 4 lowering, compilation applies a second-level
// *cache-aware reordering* inside every processor's local block
// (CompileOptions::cacheReorder, on by default): local row and x slots are
// renumbered by a reverse Cuthill-McKee sweep of the block's bipartite
// row/column graph (sparse::bipartite_rcm), so consecutive rows of the
// multiply loop touch nearby x slots. Each block's RCM candidate is scored
// against the first-use numbering with a saturated-gap locality proxy and
// adopted only when it wins — already-well-ordered blocks keep their
// numbering. The adopted permutation is folded into every
// pre-translated slot table (colSlot, ownXSlot, xRecvSlot, ownYSlot,
// ySendSlot, xColGlobal) at compile time — each row keeps its exact
// within-row entry order and the fold keeps its plan order, so results stay
// bit-identical to the unreordered image. The hot loops themselves run
// through the compile-time-selected kernels in spmv/kernels.hpp
// (4-wide unrolled / omp-simd with a scalar fallback). DESIGN.md §12.
#pragma once

#include <span>
#include <vector>

#include "spmv/executor.hpp"
#include "spmv/plan.hpp"
#include "util/cancel.hpp"

namespace fghp::spmv {

/// The execution image. All arrays are flat and concatenated processor-major;
/// a `*Off` array of size numProcs+1 gives processor p the half-open range
/// [off[p], off[p+1]). "Slot" means an index into the session's flat scratch:
/// x slots address the local-x gather space, row slots the partial space.
struct CompiledPlan {
  idx_t numProcs = 0;
  idx_t numRows = 0;
  idx_t numCols = 0;

  // --- per-processor prefix offsets (each numProcs + 1 long) --------------
  std::vector<idx_t> rowOff;      ///< local row slots (partial scratch)
  std::vector<idx_t> xOff;        ///< local x slots (gather scratch)
  std::vector<idx_t> ownXOff;     ///< owned-and-locally-used x pairs
  std::vector<idx_t> ownYOff;     ///< owned-and-locally-computed y pairs
  std::vector<idx_t> xSendOff;    ///< expand send-buffer words
  std::vector<idx_t> xSendMsgOff; ///< expand messages
  std::vector<idx_t> xRecvOff;    ///< expand recv words
  std::vector<idx_t> ySendOff;    ///< fold send-buffer words
  std::vector<idx_t> ySendMsgOff; ///< fold messages
  std::vector<idx_t> yRecvOff;    ///< fold recv words

  // --- local CSR (concatenated; entries of proc p start at rowPtr[rowOff[p]])
  std::vector<idx_t> rowPtr;      ///< size rowOff.back() + 1
  std::vector<idx_t> colSlot;     ///< x slot per nonzero (local numbering)
  std::vector<double> vals;

  // --- gather / scatter tables -------------------------------------------
  std::vector<idx_t> xColGlobal;  ///< x slot -> global column (serial gather)
  std::vector<idx_t> ownXCol;     ///< owned gather: global column ...
  std::vector<idx_t> ownXSlot;    ///< ... into this x slot (MT superstep 1)
  std::vector<idx_t> xSendCol;    ///< send word -> global column to copy out
  std::vector<idx_t> xRecvSlot;   ///< recv word -> destination x slot
  std::vector<idx_t> xRecvSrc;    ///< recv word -> source word in x send space
  std::vector<idx_t> ownYRow;     ///< owner fold: global row ...
  std::vector<idx_t> ownYSlot;    ///< ... accumulated from this row slot
  std::vector<idx_t> ySendSlot;   ///< send word -> source row slot
  std::vector<idx_t> ySendRow;    ///< send word -> global row (serial fold)
  std::vector<idx_t> yRecvRow;    ///< recv word -> global row accumulated into
  std::vector<idx_t> yRecvSrc;    ///< recv word -> source word in y send space

  /// Whether the second-level cache reordering pass ran (execution is
  /// identical either way; recorded for observability and tests).
  bool cacheReordered = false;
  /// Blocks where the RCM candidate actually beat the first-use numbering's
  /// locality score and was adopted (the pass keeps whichever ordering
  /// scores better per block, so well-ordered blocks never regress).
  idx_t reorderedProcs = 0;

  idx_t nnz() const { return rowPtr.empty() ? 0 : rowPtr.back(); }
  weight_t total_words() const;   ///< expand + fold send-buffer words
  idx_t total_messages() const;   ///< directed messages, both phases
};

/// Compile-time choices for the lowering. The defaults are what every
/// production path uses; tests and the roofline bench disable the reorder to
/// pin bit-identity against the plain first-use-order image.
struct CompileOptions {
  /// Renumber each processor's local row/x slots with a bandwidth-reducing
  /// bipartite RCM sweep for cache locality (results are bit-identical
  /// with or without).
  bool cacheReorder = true;
  /// Checked once at the "plan.compile" phase boundary before any lowering
  /// work (an inactive default token is free).
  cancel::CancelToken cancel;
};

/// Lowers a plan. Throws fghp::InvariantError if the plan's fold schedule
/// references a row its processor never computes, or if the compiled
/// send-buffer offsets fail to cover exactly plan.total_words() /
/// plan.total_messages() (both indicate a corrupt plan).
CompiledPlan compile_plan(const SpmvPlan& plan, const CompileOptions& opts = {});

/// Owns a compiled image plus the scratch to execute it repeatedly.
/// After the first run() the serial path performs zero heap allocations per
/// iteration (reuse the same y vector). Not thread-safe: one session per
/// concurrent caller; run_mt parallelizes internally.
class ExecSession {
 public:
  explicit ExecSession(const SpmvPlan& plan, const CompileOptions& opts = {});
  explicit ExecSession(CompiledPlan compiled);

  const CompiledPlan& compiled() const { return c_; }

  /// Installs a cancellation token for subsequent iterations. Each run()/
  /// run_mt() call starts with a check-point at the "exec.iter" boundary
  /// (fault site `cancel.exec.iter`, ordinal = 1-based iteration number) and
  /// run_mt additionally checks between BSP supersteps — always on the
  /// calling thread, never inside a worker task, so the retry ladder cannot
  /// misread a cancellation as a task fault. A cancelled or expired token
  /// surfaces as CancelledError / DeadlineExceededError; the session stays
  /// reusable afterwards (every scratch word is re-assigned each run).
  void set_cancel(cancel::CancelToken token) { cancel_ = std::move(token); }

  /// 1-based count of iterations started (run + run_mt); the check-point
  /// ordinal, exposed for tests.
  long iterations_started() const { return iter_; }

  /// Serial y = A x into `y` (resized to numRows, zero-filled, then
  /// accumulated in the serial executor's exact summation order).
  void run(std::span<const double> x, std::vector<double>& y,
           ExecStats* stats = nullptr);

  /// Threaded BSP y = A x (expand / multiply / fold supersteps with a full
  /// join between them). Workers come from the shared ThreadPool via the
  /// standard resolution (`numThreads` if positive, else FGHP_THREADS /
  /// hardware concurrency, capped at numProcs); when the request resolves to
  /// one thread the supersteps run inline on the caller — no threads are
  /// spawned, but the `exec.expand` / `exec.fold` / `exec.retry` fault sites
  /// and the one-retry-then-serial-fallback ladder stay armed exactly as in
  /// the threaded case. Output is bit-identical to run() at any thread count.
  void run_mt(std::span<const double> x, std::vector<double>& y,
              idx_t numThreads = 0, ExecStats* stats = nullptr);

 private:
  /// The serial path without the per-iteration check-point: run() wraps it,
  /// and the run_mt serial fallback calls it directly so one logical
  /// iteration never consumes two check-point ordinals.
  void run_serial_impl(std::span<const double> x, std::vector<double>& y,
                       ExecStats* stats);

  CompiledPlan c_;
  cancel::CancelToken cancel_;
  long iter_ = 0;
  // Scratch, sized and explicitly zero-filled once at construction
  // (assign, not resize: a moved-from or reused vector never carries stale
  // tail data into a differently-sized image). Every run_mt superstep
  // assigns each word it later reads, so no per-iteration re-zero is
  // needed; xSendBuf_/ySendBuf_ are the flat mailbox spaces of the MT path,
  // the serial path gathers/scatters directly and never touches them.
  std::vector<double> xLoc_, partial_, xSendBuf_, ySendBuf_;
};

}  // namespace fghp::spmv
