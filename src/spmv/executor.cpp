#include "spmv/executor.hpp"

#include <unordered_map>

#include "spmv/compiled.hpp"
#include "util/assert.hpp"

namespace fghp::spmv {

std::vector<double> execute(const SpmvPlan& plan, std::span<const double> x,
                            ExecStats* stats) {
  ExecSession session(plan);
  std::vector<double> y;
  session.run(x, y, stats);
  return y;
}

std::vector<double> execute_mt(const SpmvPlan& plan, std::span<const double> x,
                               idx_t numThreads, ExecStats* stats) {
  ExecSession session(plan);
  std::vector<double> y;
  session.run_mt(x, y, numThreads, stats);
  return y;
}

// The pre-compilation executor, kept verbatim as bench_spmv's baseline: it
// walks the plan in global coordinates and pays a hash lookup per nonzero.
std::vector<double> execute_plan_walk(const SpmvPlan& plan,
                                      std::span<const double> x,
                                      ExecStats* stats) {
  FGHP_REQUIRE(x.size() == static_cast<std::size_t>(plan.numCols), "x size mismatch");
  const idx_t K = plan.numProcs;

  ExecStats local;

  // Per-processor x cache: owned entries plus whatever the expand delivers.
  std::vector<std::unordered_map<idx_t, double>> xCache(static_cast<std::size_t>(K));
  for (idx_t p = 0; p < K; ++p) {
    for (idx_t j : plan.procs[static_cast<std::size_t>(p)].ownedX)
      xCache[static_cast<std::size_t>(p)][j] = x[static_cast<std::size_t>(j)];
  }

  // --- Expand phase -------------------------------------------------------
  for (idx_t p = 0; p < K; ++p) {
    for (const Msg& m : plan.procs[static_cast<std::size_t>(p)].xSends) {
      auto& dstCache = xCache[static_cast<std::size_t>(m.peer)];
      for (idx_t j : m.ids) {
        const auto it = xCache[static_cast<std::size_t>(p)].find(j);
        FGHP_ASSERT(it != xCache[static_cast<std::size_t>(p)].end());
        dstCache[j] = it->second;
      }
      local.wordsSent += static_cast<weight_t>(m.ids.size());
      ++local.messagesSent;
    }
  }

  // --- Local multiply -------------------------------------------------------
  std::vector<std::unordered_map<idx_t, double>> partial(static_cast<std::size_t>(K));
  for (idx_t p = 0; p < K; ++p) {
    const auto& pp = plan.procs[static_cast<std::size_t>(p)];
    auto& cache = xCache[static_cast<std::size_t>(p)];
    auto& part = partial[static_cast<std::size_t>(p)];
    for (std::size_t e = 0; e < pp.rows.size(); ++e) {
      const auto it = cache.find(pp.cols[e]);
      FGHP_ASSERT(it != cache.end() && "expand failed to deliver a needed x value");
      part[pp.rows[e]] += pp.vals[e] * it->second;
    }
  }

  // --- Fold phase -----------------------------------------------------------
  std::vector<double> y(static_cast<std::size_t>(plan.numRows), 0.0);
  for (idx_t p = 0; p < K; ++p) {
    const auto& pp = plan.procs[static_cast<std::size_t>(p)];
    // Own contributions first, then remote partials in plan order
    // (deterministic summation).
    for (idx_t i : pp.ownedY) {
      const auto it = partial[static_cast<std::size_t>(p)].find(i);
      if (it != partial[static_cast<std::size_t>(p)].end())
        y[static_cast<std::size_t>(i)] += it->second;
    }
  }
  for (idx_t p = 0; p < K; ++p) {
    const auto& pp = plan.procs[static_cast<std::size_t>(p)];
    for (const Msg& m : pp.ySends) {
      for (idx_t i : m.ids) {
        const auto it = partial[static_cast<std::size_t>(p)].find(i);
        FGHP_ASSERT(it != partial[static_cast<std::size_t>(p)].end() &&
                    "fold schedule references a row this processor never computed");
        y[static_cast<std::size_t>(i)] += it->second;
      }
      local.wordsSent += static_cast<weight_t>(m.ids.size());
      ++local.messagesSent;
    }
  }

  if (stats != nullptr) *stats = local;
  return y;
}

}  // namespace fghp::spmv
