#include "spmv/transpose.hpp"

#include "sparse/convert.hpp"
#include "util/assert.hpp"

namespace fghp::spmv {

model::Decomposition transpose_decomposition(const sparse::Csr& a,
                                             const model::Decomposition& d) {
  model::validate(a, d);

  model::Decomposition dt;
  dt.numProcs = d.numProcs;
  dt.xOwner = d.yOwner;  // A^T consumes w, indexed by A's rows
  dt.yOwner = d.xOwner;  // and produces z, indexed by A's columns

  // Remap per-entry owners into the transpose's (column-major-of-A) entry
  // order by replaying the counting sort transpose() uses.
  const idx_t n = a.num_cols();
  std::vector<idx_t> colStart(static_cast<std::size_t>(n) + 1, 0);
  for (idx_t j : a.col_ind()) ++colStart[static_cast<std::size_t>(j) + 1];
  for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j)
    colStart[j + 1] += colStart[j];

  dt.nnzOwner.resize(d.nnzOwner.size());
  std::vector<idx_t> cursor(colStart.begin(), colStart.end() - 1);
  std::size_t e = 0;
  for (idx_t i = 0; i < a.num_rows(); ++i) {
    for (idx_t j : a.row_cols(i)) {
      dt.nnzOwner[static_cast<std::size_t>(cursor[static_cast<std::size_t>(j)]++)] =
          d.nnzOwner[e++];
    }
  }
  return dt;
}

SpmvPlan build_transpose_plan(const sparse::Csr& a, const model::Decomposition& d) {
  const sparse::Csr at = sparse::transpose(a);
  return build_plan(at, transpose_decomposition(a, d));
}

}  // namespace fghp::spmv
