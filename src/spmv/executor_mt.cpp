#include "spmv/executor_mt.hpp"

#include "spmv/compiled.hpp"

namespace fghp::spmv {

std::vector<double> execute_mt(const SpmvPlan& plan, std::span<const double> x,
                               idx_t numThreads, ExecStats* stats) {
  ExecSession session(plan);
  std::vector<double> y;
  session.run_mt(x, y, numThreads, stats);
  return y;
}

}  // namespace fghp::spmv
