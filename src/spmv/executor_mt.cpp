#include "spmv/executor_mt.hpp"

#include <atomic>
#include <barrier>
#include <thread>
#include <unordered_map>

#include "util/assert.hpp"

namespace fghp::spmv {

std::vector<double> execute_mt(const SpmvPlan& plan, std::span<const double> x,
                               idx_t numThreads, ExecStats* stats) {
  FGHP_REQUIRE(x.size() == static_cast<std::size_t>(plan.numCols), "x size mismatch");
  const idx_t K = plan.numProcs;

  idx_t workers = numThreads;
  if (workers <= 0) workers = K;
  const auto hw = static_cast<idx_t>(std::thread::hardware_concurrency());
  if (hw > 0) workers = std::min(workers, hw);
  workers = std::min(workers, K);
  workers = std::max<idx_t>(workers, 1);

  // Mailboxes: xOut[p][s] is the buffer for p's s-th expand send; the
  // receiver indexes it via Msg::pairIndex. Same for fold.
  std::vector<std::vector<std::vector<double>>> xOut(static_cast<std::size_t>(K));
  std::vector<std::vector<std::vector<double>>> yOut(static_cast<std::size_t>(K));
  for (idx_t p = 0; p < K; ++p) {
    const auto& pp = plan.procs[static_cast<std::size_t>(p)];
    xOut[static_cast<std::size_t>(p)].resize(pp.xSends.size());
    yOut[static_cast<std::size_t>(p)].resize(pp.ySends.size());
    for (std::size_t s = 0; s < pp.xSends.size(); ++s)
      xOut[static_cast<std::size_t>(p)][s].resize(pp.xSends[s].ids.size());
    for (std::size_t s = 0; s < pp.ySends.size(); ++s)
      yOut[static_cast<std::size_t>(p)][s].resize(pp.ySends[s].ids.size());
  }

  std::vector<std::unordered_map<idx_t, double>> xCache(static_cast<std::size_t>(K));
  std::vector<std::unordered_map<idx_t, double>> partial(static_cast<std::size_t>(K));
  std::vector<double> y(static_cast<std::size_t>(plan.numRows), 0.0);
  std::atomic<weight_t> words{0};
  std::atomic<idx_t> msgs{0};

  std::barrier sync(static_cast<std::ptrdiff_t>(workers));

  auto worker = [&](idx_t wid) {
    // Superstep 1: load owned x and fill expand mailboxes.
    for (idx_t p = wid; p < K; p += workers) {
      const auto& pp = plan.procs[static_cast<std::size_t>(p)];
      auto& cache = xCache[static_cast<std::size_t>(p)];
      for (idx_t j : pp.ownedX) cache[j] = x[static_cast<std::size_t>(j)];
      for (std::size_t s = 0; s < pp.xSends.size(); ++s) {
        const Msg& m = pp.xSends[s];
        for (std::size_t k = 0; k < m.ids.size(); ++k)
          xOut[static_cast<std::size_t>(p)][s][k] = x[static_cast<std::size_t>(m.ids[k])];
        words.fetch_add(static_cast<weight_t>(m.ids.size()), std::memory_order_relaxed);
        msgs.fetch_add(1, std::memory_order_relaxed);
      }
    }
    sync.arrive_and_wait();

    // Superstep 2: drain expand mailboxes, multiply locally, fill fold
    // mailboxes.
    for (idx_t p = wid; p < K; p += workers) {
      const auto& pp = plan.procs[static_cast<std::size_t>(p)];
      auto& cache = xCache[static_cast<std::size_t>(p)];
      for (const Msg& m : pp.xRecvs) {
        const auto& buf =
            xOut[static_cast<std::size_t>(m.peer)][static_cast<std::size_t>(m.pairIndex)];
        for (std::size_t k = 0; k < m.ids.size(); ++k) cache[m.ids[k]] = buf[k];
      }
      auto& part = partial[static_cast<std::size_t>(p)];
      for (std::size_t e = 0; e < pp.rows.size(); ++e) {
        const auto it = cache.find(pp.cols[e]);
        FGHP_ASSERT(it != cache.end());
        part[pp.rows[e]] += pp.vals[e] * it->second;
      }
      for (std::size_t s = 0; s < pp.ySends.size(); ++s) {
        const Msg& m = pp.ySends[s];
        for (std::size_t k = 0; k < m.ids.size(); ++k) {
          const auto it = part.find(m.ids[k]);
          FGHP_ASSERT(it != part.end());
          yOut[static_cast<std::size_t>(p)][s][k] = it->second;
        }
        words.fetch_add(static_cast<weight_t>(m.ids.size()), std::memory_order_relaxed);
        msgs.fetch_add(1, std::memory_order_relaxed);
      }
    }
    sync.arrive_and_wait();

    // Superstep 3: owners accumulate their own partial plus remote partials
    // in plan order (same order as the serial executor). Each y_i has a
    // unique owner, so writes to y are disjoint across processors.
    for (idx_t p = wid; p < K; p += workers) {
      const auto& pp = plan.procs[static_cast<std::size_t>(p)];
      const auto& part = partial[static_cast<std::size_t>(p)];
      for (idx_t i : pp.ownedY) {
        const auto it = part.find(i);
        if (it != part.end()) y[static_cast<std::size_t>(i)] += it->second;
      }
      for (const Msg& m : pp.yRecvs) {
        const auto& buf =
            yOut[static_cast<std::size_t>(m.peer)][static_cast<std::size_t>(m.pairIndex)];
        for (std::size_t k = 0; k < m.ids.size(); ++k)
          y[static_cast<std::size_t>(m.ids[k])] += buf[k];
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (idx_t w = 0; w < workers; ++w) pool.emplace_back(worker, w);
  for (auto& t : pool) t.join();

  if (stats != nullptr) {
    stats->wordsSent = words.load();
    stats->messagesSent = msgs.load();
  }
  return y;
}

}  // namespace fghp::spmv
