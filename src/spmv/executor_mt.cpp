#include "spmv/executor_mt.hpp"

#include <atomic>
#include <barrier>
#include <string>
#include <thread>
#include <unordered_map>

#include "util/assert.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace fghp::spmv {

std::vector<double> execute_mt(const SpmvPlan& plan, std::span<const double> x,
                               idx_t numThreads, ExecStats* stats) {
  FGHP_REQUIRE(x.size() == static_cast<std::size_t>(plan.numCols), "x size mismatch");
  const idx_t K = plan.numProcs;

  idx_t workers = numThreads;
  if (workers <= 0) workers = K;
  const auto hw = static_cast<idx_t>(std::thread::hardware_concurrency());
  if (hw > 0) workers = std::min(workers, hw);
  workers = std::min(workers, K);
  workers = std::max<idx_t>(workers, 1);

  // Mailboxes: xOut[p][s] is the buffer for p's s-th expand send; the
  // receiver indexes it via Msg::pairIndex. Same for fold.
  std::vector<std::vector<std::vector<double>>> xOut(static_cast<std::size_t>(K));
  std::vector<std::vector<std::vector<double>>> yOut(static_cast<std::size_t>(K));
  for (idx_t p = 0; p < K; ++p) {
    const auto& pp = plan.procs[static_cast<std::size_t>(p)];
    xOut[static_cast<std::size_t>(p)].resize(pp.xSends.size());
    yOut[static_cast<std::size_t>(p)].resize(pp.ySends.size());
    for (std::size_t s = 0; s < pp.xSends.size(); ++s)
      xOut[static_cast<std::size_t>(p)][s].resize(pp.xSends[s].ids.size());
    for (std::size_t s = 0; s < pp.ySends.size(); ++s)
      yOut[static_cast<std::size_t>(p)][s].resize(pp.ySends[s].ids.size());
  }

  std::vector<std::unordered_map<idx_t, double>> xCache(static_cast<std::size_t>(K));
  std::vector<std::unordered_map<idx_t, double>> partial(static_cast<std::size_t>(K));
  std::vector<double> y(static_cast<std::size_t>(plan.numRows), 0.0);
  std::atomic<weight_t> words{0};
  std::atomic<idx_t> msgs{0};
  std::atomic<idx_t> retries{0};
  std::atomic<bool> failed{false};

  std::barrier sync(static_cast<std::ptrdiff_t>(workers));

  // Per-processor task wrapper: one retry (fault site `exec.retry`, same
  // ordinal), then give up and flag the run for the serial fallback. Task
  // bodies are idempotent — they reset whatever they accumulate into and
  // commit the traffic counters only on their last line — so a retry after a
  // partial first attempt cannot double-count or double-accumulate. The flag
  // is read after the next barrier, so a failed superstep never feeds
  // garbage into the next one.
  auto run_task = [&](const char* site, idx_t p, auto&& body) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      try {
        fault::check(attempt == 0 ? site : "exec.retry", p + 1);
        body();
        return;
      } catch (const std::exception& e) {
        if (attempt == 0) {
          retries.fetch_add(1, std::memory_order_relaxed);
          push_warning(std::string("executor task '") + site + "' on processor " +
                       std::to_string(p) + " failed (" + e.what() + "); retrying");
        } else {
          push_warning(std::string("executor task '") + site + "' on processor " +
                       std::to_string(p) + " failed its retry (" + e.what() +
                       "); degrading to the serial executor");
          failed.store(true, std::memory_order_release);
        }
      }
    }
  };

  auto worker = [&](idx_t wid) {
    // Superstep 1: load owned x and fill expand mailboxes.
    for (idx_t p = wid; p < K; p += workers) {
      run_task("exec.expand", p, [&, p] {
        const auto& pp = plan.procs[static_cast<std::size_t>(p)];
        auto& cache = xCache[static_cast<std::size_t>(p)];
        cache.clear();
        for (idx_t j : pp.ownedX) cache[j] = x[static_cast<std::size_t>(j)];
        weight_t w = 0;
        idx_t m2 = 0;
        for (std::size_t s = 0; s < pp.xSends.size(); ++s) {
          const Msg& m = pp.xSends[s];
          for (std::size_t k = 0; k < m.ids.size(); ++k)
            xOut[static_cast<std::size_t>(p)][s][k] = x[static_cast<std::size_t>(m.ids[k])];
          w += static_cast<weight_t>(m.ids.size());
          ++m2;
        }
        words.fetch_add(w, std::memory_order_relaxed);
        msgs.fetch_add(m2, std::memory_order_relaxed);
      });
    }
    sync.arrive_and_wait();

    // Superstep 2: drain expand mailboxes, multiply locally, fill fold
    // mailboxes.
    if (!failed.load(std::memory_order_acquire)) {
      for (idx_t p = wid; p < K; p += workers) {
        run_task("exec.fold", p, [&, p] {
          const auto& pp = plan.procs[static_cast<std::size_t>(p)];
          auto& cache = xCache[static_cast<std::size_t>(p)];
          for (const Msg& m : pp.xRecvs) {
            const auto& buf =
                xOut[static_cast<std::size_t>(m.peer)][static_cast<std::size_t>(m.pairIndex)];
            for (std::size_t k = 0; k < m.ids.size(); ++k) cache[m.ids[k]] = buf[k];
          }
          auto& part = partial[static_cast<std::size_t>(p)];
          part.clear();
          for (std::size_t e = 0; e < pp.rows.size(); ++e) {
            const auto it = cache.find(pp.cols[e]);
            FGHP_ASSERT(it != cache.end());
            part[pp.rows[e]] += pp.vals[e] * it->second;
          }
          weight_t w = 0;
          idx_t m2 = 0;
          for (std::size_t s = 0; s < pp.ySends.size(); ++s) {
            const Msg& m = pp.ySends[s];
            for (std::size_t k = 0; k < m.ids.size(); ++k) {
              const auto it = part.find(m.ids[k]);
              FGHP_ASSERT(it != part.end());
              yOut[static_cast<std::size_t>(p)][s][k] = it->second;
            }
            w += static_cast<weight_t>(m.ids.size());
            ++m2;
          }
          words.fetch_add(w, std::memory_order_relaxed);
          msgs.fetch_add(m2, std::memory_order_relaxed);
        });
      }
    }
    sync.arrive_and_wait();

    // Superstep 3: owners accumulate their own partial plus remote partials
    // in plan order (same order as the serial executor). Each y_i has a
    // unique owner, so writes to y are disjoint across processors.
    if (!failed.load(std::memory_order_acquire)) {
      for (idx_t p = wid; p < K; p += workers) {
        const auto& pp = plan.procs[static_cast<std::size_t>(p)];
        const auto& part = partial[static_cast<std::size_t>(p)];
        for (idx_t i : pp.ownedY) {
          const auto it = part.find(i);
          if (it != part.end()) y[static_cast<std::size_t>(i)] += it->second;
        }
        for (const Msg& m : pp.yRecvs) {
          const auto& buf =
              yOut[static_cast<std::size_t>(m.peer)][static_cast<std::size_t>(m.pairIndex)];
          for (std::size_t k = 0; k < m.ids.size(); ++k)
            y[static_cast<std::size_t>(m.ids[k])] += buf[k];
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (idx_t w = 0; w < workers; ++w) pool.emplace_back(worker, w);
  for (auto& t : pool) t.join();

  const idx_t taskRetries = retries.load(std::memory_order_relaxed);
  if (failed.load(std::memory_order_acquire)) {
    // Some task failed even its retry: discard the partial parallel run and
    // recompute from scratch on the (uninstrumented) serial path. Output and
    // traffic counts match a clean run exactly.
    std::vector<double> out = execute(plan, x, stats);
    if (stats != nullptr) {
      stats->taskRetries = taskRetries;
      stats->serialFallback = true;
    }
    return out;
  }

  if (stats != nullptr) {
    stats->wordsSent = words.load();
    stats->messagesSent = msgs.load();
    stats->taskRetries = taskRetries;
    stats->serialFallback = false;
  }
  return y;
}

}  // namespace fghp::spmv
