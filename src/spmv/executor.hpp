// One-shot SpMV entry points: serial simulation of the distributed SpMV
// (execute), the multi-threaded BSP run (execute_mt), and the legacy
// plan-walking baseline (execute_plan_walk).
//
// Both production entry points are thin wrappers that compile the plan and
// run it once through an ExecSession (spmv/compiled.hpp, itself the
// SpMV-typed view of the workload-agnostic exec::Session). Iterative callers
// should hold the session themselves so the compiled image and scratch are
// reused.
#pragma once

#include <span>
#include <vector>

#include "exec/compiled.hpp"
#include "spmv/plan.hpp"

namespace fghp::spmv {

/// Traffic and recovery counts of one executed iteration (generic across
/// workloads: wordsSent/messagesSent over expand + fold of every space,
/// taskRetries and serialFallback from the MT recovery ladder).
using ExecStats = exec::ExecStats;

/// Runs one distributed y = A x under the plan. The plan must come from the
/// same matrix (same dimensions / nonzero placement). stats, if non-null,
/// receives the exact traffic counts (equal to comm::analyze's totals).
std::vector<double> execute(const SpmvPlan& plan, std::span<const double> x,
                            ExecStats* stats = nullptr);

/// Runs one distributed y = A x with `numThreads` worker threads (0 = one
/// per logical processor, capped at hardware concurrency): every logical
/// processor runs the expand / multiply / fold supersteps separated by
/// barriers, with lock-free mailboxes (flat per-processor send buffers in
/// the compiled image, each word written only by its source and read only by
/// its destination, strictly after the barrier). Produces the same y as
/// execute() (identical per-partial summation order).
std::vector<double> execute_mt(const SpmvPlan& plan, std::span<const double> x,
                               idx_t numThreads = 0, ExecStats* stats = nullptr);

/// The legacy plan-walking implementation: global coordinates, an
/// unordered_map lookup per nonzero, fresh caches every call. Bit-identical
/// to execute(); retained only as the baseline bench_spmv measures the
/// compiled session against. Not used on any product path.
std::vector<double> execute_plan_walk(const SpmvPlan& plan,
                                      std::span<const double> x,
                                      ExecStats* stats = nullptr);

}  // namespace fghp::spmv
