// Serial simulation of the distributed SpMV: executes the plan's expand /
// local-multiply / fold phases processor by processor, counting every word
// and message, and returns the assembled global y.
//
// Both one-shot entry points (execute here, execute_mt in executor_mt.hpp)
// are thin wrappers that compile the plan and run it once through an
// ExecSession (spmv/compiled.hpp). Iterative callers should hold the
// session themselves so the compiled image and scratch are reused.
#pragma once

#include <span>
#include <vector>

#include "spmv/plan.hpp"

namespace fghp::spmv {

struct ExecStats {
  weight_t wordsSent = 0;     ///< total words moved (expand + fold)
  idx_t messagesSent = 0;     ///< directed messages (expand + fold)
  idx_t taskRetries = 0;      ///< MT executor tasks that failed once and were
                              ///< retried (0 for the serial executor)
  bool serialFallback = false;  ///< MT executor degraded to the serial path
                                ///< after a task failed its retry
};

/// Runs one distributed y = A x under the plan. The plan must come from the
/// same matrix (same dimensions / nonzero placement). stats, if non-null,
/// receives the exact traffic counts (equal to comm::analyze's totals).
std::vector<double> execute(const SpmvPlan& plan, std::span<const double> x,
                            ExecStats* stats = nullptr);

/// The legacy plan-walking implementation: global coordinates, an
/// unordered_map lookup per nonzero, fresh caches every call. Bit-identical
/// to execute(); retained only as the baseline bench_spmv measures the
/// compiled session against. Not used on any product path.
std::vector<double> execute_plan_walk(const SpmvPlan& plan,
                                      std::span<const double> x,
                                      ExecStats* stats = nullptr);

}  // namespace fghp::spmv
