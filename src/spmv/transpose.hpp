// Transpose products under the *same* decomposition: iterative methods like
// BiCG/QMR need z = A^T w alongside y = A x. Entry a_ij's owner multiplies
// a_ij * w_i into the partial z_j, so the expand and fold roles simply swap
// (w expands along rows, z folds along columns) — and the fine-grain
// hypergraph's lambda-1 cutsize prices BOTH products: total transpose
// traffic equals total forward traffic under conformal vectors.
#pragma once

#include "models/decomposition.hpp"
#include "spmv/plan.hpp"
#include "sparse/csr.hpp"

namespace fghp::spmv {

/// The decomposition of A^T induced by d: same per-entry owners (remapped to
/// the transpose's entry order), x/y ownership swapped.
model::Decomposition transpose_decomposition(const sparse::Csr& a,
                                             const model::Decomposition& d);

/// Plan computing z = A^T w with the forward decomposition's data placement.
/// Execute with the usual executors against transpose(a)'s dimensions
/// (w has a.num_rows() entries, z has a.num_cols()).
SpmvPlan build_transpose_plan(const sparse::Csr& a, const model::Decomposition& d);

}  // namespace fghp::spmv
