// Multi-threaded BSP execution of the distributed SpMV plan: every logical
// processor runs the expand / multiply / fold supersteps separated by
// barriers, with lock-free mailboxes (each (src, dst) message has a
// dedicated preallocated buffer written only by src and read only by dst,
// strictly after the barrier). Demonstrates that the schedules are a real
// parallel program, not just an accounting device.
#pragma once

#include <span>
#include <vector>

#include "spmv/executor.hpp"
#include "spmv/plan.hpp"

namespace fghp::spmv {

/// Runs one distributed y = A x with `numThreads` worker threads (0 = one
/// per logical processor, capped at hardware concurrency). Logical
/// processors are distributed round-robin over the workers. Produces the
/// same y as execute() (identical per-partial summation order).
std::vector<double> execute_mt(const SpmvPlan& plan, std::span<const double> x,
                               idx_t numThreads = 0, ExecStats* stats = nullptr);

}  // namespace fghp::spmv
