// Multi-threaded BSP execution of the distributed SpMV: every logical
// processor runs the expand / multiply / fold supersteps separated by
// barriers, with lock-free mailboxes (flat per-processor send buffers in the
// compiled image, each word written only by its source and read only by its
// destination, strictly after the barrier). Demonstrates that the schedules
// are a real parallel program, not just an accounting device.
#pragma once

#include <span>
#include <vector>

#include "spmv/executor.hpp"
#include "spmv/plan.hpp"

namespace fghp::spmv {

/// Runs one distributed y = A x with `numThreads` worker threads (0 = one
/// per logical processor, capped at hardware concurrency). Logical
/// processors are distributed round-robin over the workers. Produces the
/// same y as execute() (identical per-partial summation order). One-shot
/// wrapper over ExecSession::run_mt (spmv/compiled.hpp) — iterative callers
/// should hold the session to amortize compilation and scratch setup.
std::vector<double> execute_mt(const SpmvPlan& plan, std::span<const double> x,
                               idx_t numThreads = 0, ExecStats* stats = nullptr);

}  // namespace fghp::spmv
