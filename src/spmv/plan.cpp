#include "spmv/plan.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"

namespace fghp::spmv {

weight_t SpmvPlan::total_words() const {
  weight_t words = 0;
  for (const auto& p : procs) {
    for (const auto& m : p.xSends) words += static_cast<weight_t>(m.ids.size());
    for (const auto& m : p.ySends) words += static_cast<weight_t>(m.ids.size());
  }
  return words;
}

idx_t SpmvPlan::total_messages() const {
  idx_t msgs = 0;
  for (const auto& p : procs)
    msgs += static_cast<idx_t>(p.xSends.size() + p.ySends.size());
  return msgs;
}

SpmvPlan build_plan(const sparse::Csr& a, const model::Decomposition& d) {
  model::validate(a, d);
  const idx_t K = d.numProcs;
  const idx_t n = a.num_rows();

  SpmvPlan plan;
  plan.numProcs = K;
  plan.numRows = n;
  plan.numCols = a.num_cols();
  plan.procs.resize(static_cast<std::size_t>(K));

  // Local nonzeros + ownership lists.
  {
    std::size_t e = 0;
    for (idx_t i = 0; i < n; ++i) {
      const auto cols = a.row_cols(i);
      const auto vals = a.row_vals(i);
      for (std::size_t k = 0; k < cols.size(); ++k, ++e) {
        auto& pp = plan.procs[static_cast<std::size_t>(d.nnzOwner[e])];
        pp.rows.push_back(i);
        pp.cols.push_back(cols[k]);
        pp.vals.push_back(vals[k]);
      }
    }
  }
  for (idx_t j = 0; j < a.num_cols(); ++j)
    plan.procs[static_cast<std::size_t>(d.xOwner[static_cast<std::size_t>(j)])]
        .ownedX.push_back(j);
  for (idx_t i = 0; i < n; ++i)
    plan.procs[static_cast<std::size_t>(d.yOwner[static_cast<std::size_t>(i)])]
        .ownedY.push_back(i);

  // Expand needs: which processors use column j. (src=owner, dst=needer, id=j)
  // Fold contributions: (src=contributor, dst=y owner, id=i).
  std::map<std::pair<idx_t, idx_t>, std::vector<idx_t>> expand, fold;
  {
    // Need sets per column / contributor sets per row, deduplicated.
    std::vector<std::vector<idx_t>> colNeed(static_cast<std::size_t>(a.num_cols()));
    std::vector<std::vector<idx_t>> rowContrib(static_cast<std::size_t>(n));
    std::size_t e = 0;
    for (idx_t i = 0; i < n; ++i) {
      for (idx_t j : a.row_cols(i)) {
        const idx_t p = d.nnzOwner[e++];
        colNeed[static_cast<std::size_t>(j)].push_back(p);
        rowContrib[static_cast<std::size_t>(i)].push_back(p);
      }
    }
    auto dedupe = [](std::vector<idx_t>& v) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    for (idx_t j = 0; j < a.num_cols(); ++j) {
      auto& need = colNeed[static_cast<std::size_t>(j)];
      dedupe(need);
      const idx_t owner = d.xOwner[static_cast<std::size_t>(j)];
      for (idx_t p : need) {
        if (p != owner) expand[{owner, p}].push_back(j);
      }
    }
    for (idx_t i = 0; i < n; ++i) {
      auto& contrib = rowContrib[static_cast<std::size_t>(i)];
      dedupe(contrib);
      const idx_t owner = d.yOwner[static_cast<std::size_t>(i)];
      for (idx_t p : contrib) {
        if (p != owner) fold[{p, owner}].push_back(i);
      }
    }
  }

  // Materialize messages; std::map iteration gives deterministic order.
  auto emit = [&](const std::map<std::pair<idx_t, idx_t>, std::vector<idx_t>>& msgs,
                  std::vector<Msg> ProcPlan::* sendList,
                  std::vector<Msg> ProcPlan::* recvList) {
    for (const auto& [key, ids] : msgs) {
      const auto [src, dst] = key;
      auto& sender = plan.procs[static_cast<std::size_t>(src)];
      auto& receiver = plan.procs[static_cast<std::size_t>(dst)];
      const auto sendIndex = static_cast<idx_t>((sender.*sendList).size());
      (sender.*sendList).push_back({dst, ids, kInvalidIdx});
      (receiver.*recvList).push_back({src, ids, sendIndex});
    }
  };
  emit(expand, &ProcPlan::xSends, &ProcPlan::xRecvs);
  emit(fold, &ProcPlan::ySends, &ProcPlan::yRecvs);

  return plan;
}

}  // namespace fghp::spmv
