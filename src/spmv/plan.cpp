#include "spmv/plan.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/assert.hpp"
#include "util/error.hpp"
#include "util/trace.hpp"

namespace fghp::spmv {

weight_t SpmvPlan::total_words() const {
  weight_t words = 0;
  for (const auto& p : procs) {
    for (const auto& m : p.xSends) words += static_cast<weight_t>(m.ids.size());
    for (const auto& m : p.ySends) words += static_cast<weight_t>(m.ids.size());
  }
  return words;
}

idx_t SpmvPlan::total_messages() const {
  idx_t msgs = 0;
  for (const auto& p : procs)
    msgs += static_cast<idx_t>(p.xSends.size() + p.ySends.size());
  return msgs;
}

SpmvPlan build_plan(const sparse::Csr& a, const model::Decomposition& d,
                    const cancel::CancelToken& cancel) {
  trace::TraceScope span("spmv", "plan.build", "procs", d.numProcs, "nnz", a.nnz());
  cancel::check_point(cancel, "plan.build");
  model::validate(a, d);
  const idx_t K = d.numProcs;
  const idx_t n = a.num_rows();

  SpmvPlan plan;
  plan.numProcs = K;
  plan.numRows = n;
  plan.numCols = a.num_cols();
  plan.procs.resize(static_cast<std::size_t>(K));

  // Local nonzeros + ownership lists.
  {
    std::size_t e = 0;
    for (idx_t i = 0; i < n; ++i) {
      const auto cols = a.row_cols(i);
      const auto vals = a.row_vals(i);
      for (std::size_t k = 0; k < cols.size(); ++k, ++e) {
        auto& pp = plan.procs[static_cast<std::size_t>(d.nnzOwner[e])];
        pp.rows.push_back(i);
        pp.cols.push_back(cols[k]);
        pp.vals.push_back(vals[k]);
      }
    }
  }
  for (idx_t j = 0; j < a.num_cols(); ++j)
    plan.procs[static_cast<std::size_t>(d.xOwner[static_cast<std::size_t>(j)])]
        .ownedX.push_back(j);
  for (idx_t i = 0; i < n; ++i)
    plan.procs[static_cast<std::size_t>(d.yOwner[static_cast<std::size_t>(i)])]
        .ownedY.push_back(i);

  // Expand needs: which processors use column j. (src=owner, dst=needer, id=j)
  // Fold contributions: (src=contributor, dst=y owner, id=i).
  std::map<std::pair<idx_t, idx_t>, std::vector<idx_t>> expand, fold;
  {
    // Need sets per column / contributor sets per row, deduplicated.
    std::vector<std::vector<idx_t>> colNeed(static_cast<std::size_t>(a.num_cols()));
    std::vector<std::vector<idx_t>> rowContrib(static_cast<std::size_t>(n));
    std::size_t e = 0;
    for (idx_t i = 0; i < n; ++i) {
      for (idx_t j : a.row_cols(i)) {
        const idx_t p = d.nnzOwner[e++];
        colNeed[static_cast<std::size_t>(j)].push_back(p);
        rowContrib[static_cast<std::size_t>(i)].push_back(p);
      }
    }
    auto dedupe = [](std::vector<idx_t>& v) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    for (idx_t j = 0; j < a.num_cols(); ++j) {
      auto& need = colNeed[static_cast<std::size_t>(j)];
      dedupe(need);
      const idx_t owner = d.xOwner[static_cast<std::size_t>(j)];
      for (idx_t p : need) {
        if (p != owner) expand[{owner, p}].push_back(j);
      }
    }
    for (idx_t i = 0; i < n; ++i) {
      auto& contrib = rowContrib[static_cast<std::size_t>(i)];
      dedupe(contrib);
      const idx_t owner = d.yOwner[static_cast<std::size_t>(i)];
      for (idx_t p : contrib) {
        if (p != owner) fold[{p, owner}].push_back(i);
      }
    }
  }

  // Materialize messages; std::map iteration gives deterministic order.
  auto emit = [&](const std::map<std::pair<idx_t, idx_t>, std::vector<idx_t>>& msgs,
                  std::vector<Msg> ProcPlan::* sendList,
                  std::vector<Msg> ProcPlan::* recvList) {
    for (const auto& [key, ids] : msgs) {
      const auto [src, dst] = key;
      auto& sender = plan.procs[static_cast<std::size_t>(src)];
      auto& receiver = plan.procs[static_cast<std::size_t>(dst)];
      const auto sendIndex = static_cast<idx_t>((sender.*sendList).size());
      (sender.*sendList).push_back({dst, ids, kInvalidIdx});
      (receiver.*recvList).push_back({src, ids, sendIndex});
    }
  };
  emit(expand, &ProcPlan::xSends, &ProcPlan::xRecvs);
  emit(fold, &ProcPlan::ySends, &ProcPlan::yRecvs);

  return plan;
}

std::vector<std::string> validate_plan(const SpmvPlan& plan) {
  std::vector<std::string> problems;
  auto complain = [&](const std::ostringstream& os) { problems.push_back(os.str()); };

  const idx_t K = plan.numProcs;
  if (static_cast<idx_t>(plan.procs.size()) != K) {
    std::ostringstream os;
    os << "plan has " << plan.procs.size() << " processor plans but numProcs = " << K;
    complain(os);
    return problems;  // everything below indexes procs by [0, K)
  }

  std::vector<idx_t> xOwners(static_cast<std::size_t>(plan.numCols), 0);
  std::vector<idx_t> yOwners(static_cast<std::size_t>(plan.numRows), 0);
  for (idx_t p = 0; p < K; ++p) {
    const auto& pp = plan.procs[static_cast<std::size_t>(p)];

    if (pp.rows.size() != pp.cols.size() || pp.rows.size() != pp.vals.size()) {
      std::ostringstream os;
      os << "processor " << p << ": ragged local nonzeros (" << pp.rows.size() << " rows, "
         << pp.cols.size() << " cols, " << pp.vals.size() << " vals)";
      complain(os);
    }
    for (std::size_t e = 0; e < pp.rows.size() && e < pp.cols.size(); ++e) {
      if (pp.rows[e] < 0 || pp.rows[e] >= plan.numRows || pp.cols[e] < 0 ||
          pp.cols[e] >= plan.numCols) {
        std::ostringstream os;
        os << "processor " << p << ": nonzero " << e << " at (" << pp.rows[e] << ", "
           << pp.cols[e] << ") outside " << plan.numRows << " x " << plan.numCols;
        complain(os);
        break;  // one report per processor is enough
      }
    }

    for (idx_t j : pp.ownedX) {
      if (j < 0 || j >= plan.numCols) {
        std::ostringstream os;
        os << "processor " << p << ": owned x id " << j << " out of range";
        complain(os);
      } else {
        ++xOwners[static_cast<std::size_t>(j)];
      }
    }
    for (idx_t i : pp.ownedY) {
      if (i < 0 || i >= plan.numRows) {
        std::ostringstream os;
        os << "processor " << p << ": owned y id " << i << " out of range";
        complain(os);
      } else {
        ++yOwners[static_cast<std::size_t>(i)];
      }
    }

    // Every recv must point back (peer, pairIndex) at a send with the same
    // id list addressed to this processor — the MT executor's mailbox reads
    // are exactly this lookup.
    auto check_recvs = [&](const std::vector<Msg>& recvs,
                           std::vector<Msg> ProcPlan::* sendList, const char* kind) {
      for (const Msg& m : recvs) {
        std::ostringstream os;
        if (m.peer < 0 || m.peer >= K) {
          os << "processor " << p << ": " << kind << " recv from invalid peer " << m.peer;
          complain(os);
          continue;
        }
        const auto& peerSends = plan.procs[static_cast<std::size_t>(m.peer)].*sendList;
        if (m.pairIndex < 0 ||
            m.pairIndex >= static_cast<idx_t>(peerSends.size())) {
          os << "processor " << p << ": " << kind << " recv pairIndex " << m.pairIndex
             << " out of range for peer " << m.peer;
          complain(os);
          continue;
        }
        const Msg& send = peerSends[static_cast<std::size_t>(m.pairIndex)];
        if (send.peer != p || send.ids != m.ids) {
          os << "processor " << p << ": " << kind << " recv from peer " << m.peer
             << " does not match the paired send";
          complain(os);
        }
      }
    };
    check_recvs(pp.xRecvs, &ProcPlan::xSends, "expand");
    check_recvs(pp.yRecvs, &ProcPlan::ySends, "fold");
  }

  for (idx_t j = 0; j < plan.numCols; ++j) {
    if (xOwners[static_cast<std::size_t>(j)] != 1) {
      std::ostringstream os;
      os << "column " << j << " owned by " << xOwners[static_cast<std::size_t>(j)]
         << " processors (want exactly 1)";
      complain(os);
    }
  }
  for (idx_t i = 0; i < plan.numRows; ++i) {
    if (yOwners[static_cast<std::size_t>(i)] != 1) {
      std::ostringstream os;
      os << "row " << i << " owned by " << yOwners[static_cast<std::size_t>(i)]
         << " processors (want exactly 1)";
      complain(os);
    }
  }

  return problems;
}

void validate_plan_or_throw(const SpmvPlan& plan) {
  const auto problems = validate_plan(plan);
  if (problems.empty()) return;
  std::ostringstream os;
  os << "invalid SpMV plan:";
  std::size_t shown = 0;
  for (const auto& p : problems) {
    os << "\n  - " << p;
    if (++shown == 20 && problems.size() > 20) {
      os << "\n  - ... and " << problems.size() - 20 << " more";
      break;
    }
  }
  ErrorContext ctx;
  ctx.phase = "plan-validate";
  throw InvariantError(os.str(), std::move(ctx));
}

}  // namespace fghp::spmv

