#include "spmv/plan.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/trace.hpp"

namespace fghp::spmv {

weight_t SpmvPlan::total_words() const {
  weight_t words = 0;
  for (const auto& p : procs) {
    for (const auto& m : p.xSends) words += static_cast<weight_t>(m.ids.size());
    for (const auto& m : p.ySends) words += static_cast<weight_t>(m.ids.size());
  }
  return words;
}

idx_t SpmvPlan::total_messages() const {
  idx_t msgs = 0;
  for (const auto& p : procs)
    msgs += static_cast<idx_t>(p.xSends.size() + p.ySends.size());
  return msgs;
}

SpmvPlan build_plan(const sparse::Csr& a, const model::Decomposition& d,
                    const cancel::CancelToken& cancel) {
  trace::TraceScope span("spmv", "plan.build", "procs", d.numProcs, "nnz", a.nnz());
  cancel::check_point(cancel, "plan.build");
  model::validate(a, d);
  const idx_t K = d.numProcs;
  const idx_t n = a.num_rows();

  SpmvPlan plan;
  plan.numProcs = K;
  plan.numRows = n;
  plan.numCols = a.num_cols();
  plan.procs.resize(static_cast<std::size_t>(K));

  // Local nonzeros + ownership lists.
  {
    std::size_t e = 0;
    for (idx_t i = 0; i < n; ++i) {
      const auto cols = a.row_cols(i);
      const auto vals = a.row_vals(i);
      for (std::size_t k = 0; k < cols.size(); ++k, ++e) {
        auto& pp = plan.procs[static_cast<std::size_t>(d.nnzOwner[e])];
        pp.rows.push_back(i);
        pp.cols.push_back(cols[k]);
        pp.vals.push_back(vals[k]);
      }
    }
  }
  for (idx_t j = 0; j < a.num_cols(); ++j)
    plan.procs[static_cast<std::size_t>(d.xOwner[static_cast<std::size_t>(j)])]
        .ownedX.push_back(j);
  for (idx_t i = 0; i < n; ++i)
    plan.procs[static_cast<std::size_t>(d.yOwner[static_cast<std::size_t>(i)])]
        .ownedY.push_back(i);

  // Expand needs: which processors use column j. (src=owner, dst=needer, id=j)
  // Fold contributions: (src=contributor, dst=y owner, id=i).
  std::map<std::pair<idx_t, idx_t>, std::vector<idx_t>> expand, fold;
  {
    // Need sets per column / contributor sets per row, deduplicated.
    std::vector<std::vector<idx_t>> colNeed(static_cast<std::size_t>(a.num_cols()));
    std::vector<std::vector<idx_t>> rowContrib(static_cast<std::size_t>(n));
    std::size_t e = 0;
    for (idx_t i = 0; i < n; ++i) {
      for (idx_t j : a.row_cols(i)) {
        const idx_t p = d.nnzOwner[e++];
        colNeed[static_cast<std::size_t>(j)].push_back(p);
        rowContrib[static_cast<std::size_t>(i)].push_back(p);
      }
    }
    auto dedupe = [](std::vector<idx_t>& v) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    for (idx_t j = 0; j < a.num_cols(); ++j) {
      auto& need = colNeed[static_cast<std::size_t>(j)];
      dedupe(need);
      const idx_t owner = d.xOwner[static_cast<std::size_t>(j)];
      for (idx_t p : need) {
        if (p != owner) expand[{owner, p}].push_back(j);
      }
    }
    for (idx_t i = 0; i < n; ++i) {
      auto& contrib = rowContrib[static_cast<std::size_t>(i)];
      dedupe(contrib);
      const idx_t owner = d.yOwner[static_cast<std::size_t>(i)];
      for (idx_t p : contrib) {
        if (p != owner) fold[{p, owner}].push_back(i);
      }
    }
  }

  // Materialize messages; std::map iteration gives deterministic order.
  auto emit = [&](const std::map<std::pair<idx_t, idx_t>, std::vector<idx_t>>& msgs,
                  std::vector<Msg> ProcPlan::* sendList,
                  std::vector<Msg> ProcPlan::* recvList) {
    for (const auto& [key, ids] : msgs) {
      const auto [src, dst] = key;
      auto& sender = plan.procs[static_cast<std::size_t>(src)];
      auto& receiver = plan.procs[static_cast<std::size_t>(dst)];
      const auto sendIndex = static_cast<idx_t>((sender.*sendList).size());
      (sender.*sendList).push_back({dst, ids, kInvalidIdx});
      (receiver.*recvList).push_back({src, ids, sendIndex});
    }
  };
  emit(expand, &ProcPlan::xSends, &ProcPlan::xRecvs);
  emit(fold, &ProcPlan::ySends, &ProcPlan::yRecvs);

  return plan;
}

exec::Schedule to_schedule(const SpmvPlan& plan) {
  const std::size_t K = plan.procs.size();
  exec::Schedule s;
  s.traceCat = "spmv";
  s.traceIteration = "spmv.iteration";
  s.metricPrefix = "spmv";
  s.numProcs = plan.numProcs;
  s.inputs = {{"x", plan.numCols}};
  s.output = {"y", plan.numRows};
  s.lhsConst = true;
  s.rhsSpace = 0;
  s.inComm.assign(1, std::vector<exec::SpaceComm>(K));
  s.outComm.resize(K);
  s.tasks.resize(K);
  for (std::size_t p = 0; p < K; ++p) {
    const ProcPlan& pp = plan.procs[p];
    s.inComm[0][p] = {pp.ownedX, pp.xSends, pp.xRecvs};
    s.outComm[p] = {pp.ownedY, pp.ySends, pp.yRecvs};
    s.tasks[p].outId = pp.rows;
    s.tasks[p].rhsId = pp.cols;
    s.tasks[p].constVals = pp.vals;
  }
  return s;
}

std::vector<std::string> validate_plan(const SpmvPlan& plan) {
  const idx_t K = plan.numProcs;
  if (static_cast<idx_t>(plan.procs.size()) != K) {
    std::ostringstream os;
    os << "plan has " << plan.procs.size() << " processor plans but numProcs = " << K;
    return {os.str()};  // the lowering indexes procs by [0, K)
  }
  return exec::validate_schedule(to_schedule(plan));
}

void validate_plan_or_throw(const SpmvPlan& plan) {
  const auto problems = validate_plan(plan);
  if (problems.empty()) return;
  std::ostringstream os;
  os << "invalid SpMV plan:";
  std::size_t shown = 0;
  for (const auto& p : problems) {
    os << "\n  - " << p;
    if (++shown == 20 && problems.size() > 20) {
      os << "\n  - ... and " << problems.size() - 20 << " more";
      break;
    }
  }
  ErrorContext ctx;
  ctx.phase = "plan-validate";
  throw InvariantError(os.str(), std::move(ctx));
}

}  // namespace fghp::spmv

