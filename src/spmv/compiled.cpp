#include "spmv/compiled.hpp"

namespace fghp::spmv {

CompiledPlan compile_plan(const SpmvPlan& plan, const CompileOptions& opts) {
  return exec::compile(to_schedule(plan), opts);
}

}  // namespace fghp::spmv
