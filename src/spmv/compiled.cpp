#include "spmv/compiled.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <string>

#include "sparse/reorder.hpp"
#include "spmv/kernels.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace fghp::spmv {

namespace {

constexpr std::size_t uz(idx_t v) { return static_cast<std::size_t>(v); }

[[noreturn]] void compile_error(std::string what) {
  ErrorContext ctx;
  ctx.phase = "plan-compile";
  throw InvariantError(std::move(what), std::move(ctx));
}

/// Cache-locality proxy of one block's multiply loop under a candidate
/// (row, column) renumbering: walk the x-slot access sequence in emission
/// order and charge each jump the bit width of its slot distance —
/// log-distance tracks which level of the cache hierarchy the jump lands
/// in (a gap of 2^k doubles costs ~k), so a tight RCM band over a few
/// thousand slots scores far below a random spread over millions even
/// though both exceed a cache line. Lower is better.
std::uint64_t locality_score(const std::vector<idx_t>& rowNew,
                             const std::vector<idx_t>& colNew,
                             const std::vector<idx_t>& localRowPtr,
                             const std::vector<idx_t>& grpCol,
                             std::vector<idx_t>& oldOfNewScratch) {
  const idx_t nr = static_cast<idx_t>(rowNew.size());
  oldOfNewScratch.resize(uz(nr));
  for (idx_t r = 0; r < nr; ++r) oldOfNewScratch[uz(rowNew[uz(r)])] = r;
  std::uint64_t score = 0;
  idx_t prev = 0;
  for (idx_t newR = 0; newR < nr; ++newR) {
    const idx_t oldR = oldOfNewScratch[uz(newR)];
    for (idx_t pos = localRowPtr[uz(oldR)]; pos < localRowPtr[uz(oldR) + 1]; ++pos) {
      const idx_t slot = colNew[uz(grpCol[uz(pos)])];
      const idx_t gap = slot > prev ? slot - prev : prev - slot;
      score += std::bit_width(static_cast<std::uint64_t>(gap));
      prev = slot;
    }
  }
  return score;
}

}  // namespace

weight_t CompiledPlan::total_words() const {
  return static_cast<weight_t>(xSendOff.back()) +
         static_cast<weight_t>(ySendOff.back());
}

idx_t CompiledPlan::total_messages() const {
  return xSendMsgOff.back() + ySendMsgOff.back();
}

CompiledPlan compile_plan(const SpmvPlan& plan, const CompileOptions& opts) {
  const idx_t K = plan.numProcs;
  FGHP_REQUIRE(plan.procs.size() == uz(K), "plan.procs inconsistent with numProcs");
  trace::TraceScope span("spmv", "plan.compile", "procs", K, "words",
                         plan.total_words());
  cancel::check_point(opts.cancel, "plan.compile");

  CompiledPlan c;
  c.numProcs = K;
  c.numRows = plan.numRows;
  c.numCols = plan.numCols;
  c.cacheReordered = opts.cacheReorder;

  const std::size_t k1 = uz(K) + 1;
  c.rowOff.assign(k1, 0);
  c.xOff.assign(k1, 0);
  c.ownXOff.assign(k1, 0);
  c.ownYOff.assign(k1, 0);
  c.xSendOff.assign(k1, 0);
  c.xSendMsgOff.assign(k1, 0);
  c.xRecvOff.assign(k1, 0);
  c.ySendOff.assign(k1, 0);
  c.ySendMsgOff.assign(k1, 0);
  c.yRecvOff.assign(k1, 0);

  // Pass 1: prefix the two send spaces and record the flat word base of
  // every message, so receivers can translate (peer, pairIndex) into
  // absolute send-buffer offsets without any search.
  std::vector<idx_t> xMsgBase, yMsgBase;
  for (idx_t p = 0; p < K; ++p) {
    const ProcPlan& pp = plan.procs[uz(p)];
    idx_t w = c.xSendOff[uz(p)];
    for (const Msg& m : pp.xSends) {
      xMsgBase.push_back(w);
      w += static_cast<idx_t>(m.ids.size());
    }
    c.xSendOff[uz(p) + 1] = w;
    c.xSendMsgOff[uz(p) + 1] =
        c.xSendMsgOff[uz(p)] + static_cast<idx_t>(pp.xSends.size());
    w = c.ySendOff[uz(p)];
    for (const Msg& m : pp.ySends) {
      yMsgBase.push_back(w);
      w += static_cast<idx_t>(m.ids.size());
    }
    c.ySendOff[uz(p) + 1] = w;
    c.ySendMsgOff[uz(p) + 1] =
        c.ySendMsgOff[uz(p)] + static_cast<idx_t>(pp.ySends.size());
  }

  // Pass 2: per-processor local numbering. The slot maps are global-sized
  // scratch, reset entry-by-entry after each processor. Slots are assigned
  // in two steps: a provisional id in first-use order over the local
  // nonzeros (plus expand-recv-only columns), then — when the cache reorder
  // is on — a bipartite RCM renumbering of the block so consecutive rows of
  // the multiply loop touch nearby x slots. Every downstream table reads
  // the slot maps after the renumbering, which is how the permutation folds
  // into the whole image without touching any schedule order.
  std::vector<idx_t> colSlotOf(uz(plan.numCols), kInvalidIdx);
  std::vector<idx_t> rowSlotOf(uz(plan.numRows), kInvalidIdx);
  std::vector<idx_t> touchedRows, touchedCols, rowCount, cursor;
  std::vector<idx_t> localRowPtr, grpCol, oldOfNewRow, slotCols;
  std::vector<double> grpVal;
  sparse::BipartiteOrdering perm;

  std::size_t totalNnz = 0;
  for (const ProcPlan& pp : plan.procs) totalNnz += pp.rows.size();
  c.colSlot.resize(totalNnz);
  c.vals.resize(totalNnz);

  idx_t nnzBase = 0;
  for (idx_t p = 0; p < K; ++p) {
    const ProcPlan& pp = plan.procs[uz(p)];
    if (pp.rows.size() != pp.cols.size() || pp.rows.size() != pp.vals.size())
      compile_error("ragged local nonzeros on processor " + std::to_string(p));
    const idx_t rowBase = c.rowOff[uz(p)];
    const idx_t xBase = c.xOff[uz(p)];
    touchedRows.clear();
    touchedCols.clear();

    // Provisional (pre-permutation) row and x ids in first-use order over
    // the local nonzeros.
    for (std::size_t e = 0; e < pp.rows.size(); ++e) {
      const idx_t i = pp.rows[e], j = pp.cols[e];
      if (i < 0 || i >= plan.numRows || j < 0 || j >= plan.numCols)
        compile_error("processor " + std::to_string(p) + ": nonzero (" +
                      std::to_string(i) + ", " + std::to_string(j) +
                      ") outside the matrix");
      if (rowSlotOf[uz(i)] == kInvalidIdx) {
        rowSlotOf[uz(i)] = static_cast<idx_t>(touchedRows.size());
        touchedRows.push_back(i);
      }
      if (colSlotOf[uz(j)] == kInvalidIdx) {
        colSlotOf[uz(j)] = static_cast<idx_t>(touchedCols.size());
        touchedCols.push_back(j);
      }
    }

    // An expand recv may deliver a column no local nonzero reads (legal in a
    // hand-built plan); such ids still get a slot so delivery has a target.
    // They take part in the renumbering as isolated vertices (RCM places
    // them last — the multiply never reads them).
    for (const Msg& m : pp.xRecvs) {
      for (idx_t j : m.ids) {
        if (j < 0 || j >= plan.numCols)
          compile_error("processor " + std::to_string(p) +
                        ": expand recv id out of range");
        if (colSlotOf[uz(j)] == kInvalidIdx) {
          colSlotOf[uz(j)] = static_cast<idx_t>(touchedCols.size());
          touchedCols.push_back(j);
        }
      }
    }
    const idx_t nr = static_cast<idx_t>(touchedRows.size());
    const idx_t nc = static_cast<idx_t>(touchedCols.size());

    // Group the local nonzeros by provisional row, preserving the plan's
    // within-row entry order (the executors' per-row accumulation order, so
    // sums stay bit-identical under any row/column renumbering).
    rowCount.assign(uz(nr), 0);
    for (idx_t i : pp.rows) ++rowCount[uz(rowSlotOf[uz(i)])];
    localRowPtr.assign(uz(nr) + 1, 0);
    for (idx_t r = 0; r < nr; ++r)
      localRowPtr[uz(r) + 1] = localRowPtr[uz(r)] + rowCount[uz(r)];
    cursor.assign(localRowPtr.begin(), localRowPtr.end() - 1);
    grpCol.resize(pp.rows.size());
    grpVal.resize(pp.rows.size());
    for (std::size_t e = 0; e < pp.rows.size(); ++e) {
      const idx_t pos = cursor[uz(rowSlotOf[uz(pp.rows[e])])]++;
      grpCol[uz(pos)] = colSlotOf[uz(pp.cols[e])];
      grpVal[uz(pos)] = pp.vals[e];
    }

    // Second-level cache reordering of the block. The bipartite RCM
    // candidate is adopted only when it beats the first-use numbering's
    // locality score by a margin — blocks that already arrive well ordered
    // (banded matrices in natural order, tiny fragments with no structure)
    // keep their numbering, so the reorder can help but never regress.
    perm.rowNew.resize(uz(nr));
    perm.colNew.resize(uz(nc));
    for (idx_t r = 0; r < nr; ++r) perm.rowNew[uz(r)] = r;
    for (idx_t j = 0; j < nc; ++j) perm.colNew[uz(j)] = j;
    if (opts.cacheReorder && nr > 1) {
      sparse::BipartiteOrdering rcm =
          sparse::bipartite_rcm(nr, nc, localRowPtr, grpCol);
      const std::uint64_t idScore =
          locality_score(perm.rowNew, perm.colNew, localRowPtr, grpCol, oldOfNewRow);
      const std::uint64_t rcmScore =
          locality_score(rcm.rowNew, rcm.colNew, localRowPtr, grpCol, oldOfNewRow);
      // Adopt only on a decisive (>= 25%) score win: the proxy cannot see
      // the multi-stream prefetch a banded natural order enjoys, so a
      // marginal score edge is not worth disturbing it.
      if (rcmScore * 4 < idScore * 3) {
        perm = std::move(rcm);
        ++c.reorderedProcs;
      }
    }

    // Finalize the slot maps: provisional id -> permuted id + base. All
    // remaining tables of this processor read these final slots.
    for (idx_t i : touchedRows)
      rowSlotOf[uz(i)] = rowBase + perm.rowNew[uz(rowSlotOf[uz(i)])];
    for (idx_t j : touchedCols)
      colSlotOf[uz(j)] = xBase + perm.colNew[uz(colSlotOf[uz(j)])];

    // Emit the block's CSR in permuted row order (each row's entries keep
    // their plan order; columns point at final slots).
    oldOfNewRow.resize(uz(nr));
    for (idx_t r = 0; r < nr; ++r) oldOfNewRow[uz(perm.rowNew[uz(r)])] = r;
    idx_t run = nnzBase;
    for (idx_t newR = 0; newR < nr; ++newR) {
      const idx_t oldR = oldOfNewRow[uz(newR)];
      c.rowPtr.push_back(run);
      for (idx_t pos = localRowPtr[uz(oldR)]; pos < localRowPtr[uz(oldR) + 1];
           ++pos, ++run) {
        c.colSlot[uz(run)] = xBase + perm.colNew[uz(grpCol[uz(pos)])];
        c.vals[uz(run)] = grpVal[uz(pos)];
      }
    }
    nnzBase = run;

    c.rowOff[uz(p) + 1] = rowBase + nr;
    c.xOff[uz(p) + 1] = xBase + nc;
    slotCols.resize(uz(nc));
    for (idx_t j = 0; j < nc; ++j)
      slotCols[uz(perm.colNew[uz(j)])] = touchedCols[uz(j)];
    c.xColGlobal.insert(c.xColGlobal.end(), slotCols.begin(), slotCols.end());

    // Owned x values with a local consumer (the MT expand gather).
    for (idx_t j : pp.ownedX) {
      if (j < 0 || j >= plan.numCols)
        compile_error("processor " + std::to_string(p) + ": owned x id out of range");
      if (colSlotOf[uz(j)] != kInvalidIdx) {
        c.ownXCol.push_back(j);
        c.ownXSlot.push_back(colSlotOf[uz(j)]);
      }
    }
    c.ownXOff[uz(p) + 1] = static_cast<idx_t>(c.ownXCol.size());

    // Expand sends gather straight from the global x: the sender owns these
    // columns, so its cached copy in the plan-walking executor is x[j].
    for (const Msg& m : pp.xSends)
      for (idx_t j : m.ids) {
        if (j < 0 || j >= plan.numCols)
          compile_error("processor " + std::to_string(p) +
                        ": expand send id out of range");
        c.xSendCol.push_back(j);
      }

    // Expand recvs: flat (source word -> destination slot) copies.
    idx_t recvWords = c.xRecvOff[uz(p)];
    for (const Msg& m : pp.xRecvs) {
      if (m.peer < 0 || m.peer >= K)
        compile_error("processor " + std::to_string(p) + ": expand recv from invalid peer");
      const auto& peerSends = plan.procs[uz(m.peer)].xSends;
      if (m.pairIndex < 0 || m.pairIndex >= static_cast<idx_t>(peerSends.size()) ||
          peerSends[uz(m.pairIndex)].ids.size() != m.ids.size())
        compile_error("processor " + std::to_string(p) +
                      ": expand recv does not pair with its send");
      const idx_t srcBase = xMsgBase[uz(c.xSendMsgOff[uz(m.peer)] + m.pairIndex)];
      for (std::size_t k = 0; k < m.ids.size(); ++k) {
        c.xRecvSlot.push_back(colSlotOf[uz(m.ids[k])]);
        c.xRecvSrc.push_back(srcBase + static_cast<idx_t>(k));
      }
      recvWords += static_cast<idx_t>(m.ids.size());
    }
    c.xRecvOff[uz(p) + 1] = recvWords;

    // Fold, owner side: owned rows this processor actually computed.
    for (idx_t i : pp.ownedY) {
      if (i < 0 || i >= plan.numRows)
        compile_error("processor " + std::to_string(p) + ": owned y id out of range");
      if (rowSlotOf[uz(i)] != kInvalidIdx) {
        c.ownYRow.push_back(i);
        c.ownYSlot.push_back(rowSlotOf[uz(i)]);
      }
    }
    c.ownYOff[uz(p) + 1] = static_cast<idx_t>(c.ownYRow.size());

    // Fold sends must reference rows this processor computes a partial for.
    for (const Msg& m : pp.ySends)
      for (idx_t i : m.ids) {
        if (i < 0 || i >= plan.numRows || rowSlotOf[uz(i)] == kInvalidIdx)
          compile_error("fold schedule on processor " + std::to_string(p) +
                        " references row " + std::to_string(i) +
                        " it never computes");
        c.ySendSlot.push_back(rowSlotOf[uz(i)]);
        c.ySendRow.push_back(i);
      }

    // Fold recvs.
    idx_t yRecvWords = c.yRecvOff[uz(p)];
    for (const Msg& m : pp.yRecvs) {
      if (m.peer < 0 || m.peer >= K)
        compile_error("processor " + std::to_string(p) + ": fold recv from invalid peer");
      const auto& peerSends = plan.procs[uz(m.peer)].ySends;
      if (m.pairIndex < 0 || m.pairIndex >= static_cast<idx_t>(peerSends.size()) ||
          peerSends[uz(m.pairIndex)].ids.size() != m.ids.size())
        compile_error("processor " + std::to_string(p) +
                      ": fold recv does not pair with its send");
      const idx_t srcBase = yMsgBase[uz(c.ySendMsgOff[uz(m.peer)] + m.pairIndex)];
      for (std::size_t k = 0; k < m.ids.size(); ++k) {
        const idx_t i = m.ids[k];
        if (i < 0 || i >= plan.numRows)
          compile_error("processor " + std::to_string(p) + ": fold recv id out of range");
        c.yRecvRow.push_back(i);
        c.yRecvSrc.push_back(srcBase + static_cast<idx_t>(k));
      }
      yRecvWords += static_cast<idx_t>(m.ids.size());
    }
    c.yRecvOff[uz(p) + 1] = yRecvWords;

    // Disarm the slot maps for the next processor.
    for (idx_t i : touchedRows) rowSlotOf[uz(i)] = kInvalidIdx;
    for (idx_t j : touchedCols) colSlotOf[uz(j)] = kInvalidIdx;
  }
  c.rowPtr.push_back(nnzBase);

  // The compiled send spaces must cover the plan's exact traffic: one flat
  // word per scheduled word, nothing more, and the same message count —
  // ExecStats come straight from these offsets.
  if (static_cast<idx_t>(c.xSendCol.size()) != c.xSendOff.back() ||
      static_cast<idx_t>(c.ySendSlot.size()) != c.ySendOff.back() ||
      c.total_words() != plan.total_words() ||
      c.total_messages() != plan.total_messages())
    compile_error("compiled send-buffer offsets do not cover the plan's traffic");
  return c;
}

ExecSession::ExecSession(CompiledPlan compiled) : c_(std::move(compiled)) {
  // assign, not resize: explicit zero-fill even if these vectors ever carry
  // capacity from a prior image (e.g. a moved-from session), so no run can
  // observe stale tail data.
  xLoc_.assign(uz(c_.xOff.back()), 0.0);
  partial_.assign(uz(c_.rowOff.back()), 0.0);
  xSendBuf_.assign(uz(c_.xSendOff.back()), 0.0);
  ySendBuf_.assign(uz(c_.ySendOff.back()), 0.0);
}

ExecSession::ExecSession(const SpmvPlan& plan, const CompileOptions& opts)
    : ExecSession(compile_plan(plan, opts)) {}

void ExecSession::run(std::span<const double> x, std::vector<double>& y,
                      ExecStats* stats) {
  cancel::check_point(cancel_, "exec.iter", "cancel.exec.iter", ++iter_);
  run_serial_impl(x, y, stats);
}

void ExecSession::run_serial_impl(std::span<const double> x, std::vector<double>& y,
                                  ExecStats* stats) {
  trace::TraceScope span("spmv", "spmv.iteration", "procs", c_.numProcs, "mt", 0);
  FGHP_REQUIRE(x.size() == uz(c_.numCols), "x size mismatch");
  y.resize(uz(c_.numRows));
  std::fill(y.begin(), y.end(), 0.0);

  // Expand: one flat gather. Owned and delivered values are both x[j], so
  // the serial path needs no message buffers at all.
  kern::gather(xLoc_.data(), x.data(), c_.xColGlobal.data(), xLoc_.size());

  // Local multiply in the plan's per-row entry order.
  for (std::size_t r = 0; r < partial_.size(); ++r)
    partial_[r] = kern::row_dot(c_.vals.data(), c_.colSlot.data(), xLoc_.data(),
                                c_.rowPtr[r], c_.rowPtr[r + 1]);

  // Fold: every processor's own contributions first, then the sent partials
  // in plan (sender-major) order — the serial executor's summation order.
  for (std::size_t i = 0; i < c_.ownYRow.size(); ++i)
    y[uz(c_.ownYRow[i])] += partial_[uz(c_.ownYSlot[i])];
  for (std::size_t w = 0; w < c_.ySendRow.size(); ++w)
    y[uz(c_.ySendRow[w])] += partial_[uz(c_.ySendSlot[w])];

  if (stats != nullptr) {
    *stats = {};
    stats->wordsSent = c_.total_words();
    stats->messagesSent = c_.total_messages();
  }

  // Registered counters resolve once (magic statics), so iterations after
  // the first stay allocation-free — the contract test_compiled asserts.
  static metrics::Counter& iterations = metrics::counter("spmv.iterations");
  static metrics::Counter& expandWords = metrics::counter("spmv.expand.words");
  static metrics::Counter& foldWords = metrics::counter("spmv.fold.words");
  static metrics::Counter& messages = metrics::counter("spmv.messages");
  iterations.add();
  expandWords.add(c_.xSendOff.back());
  foldWords.add(c_.ySendOff.back());
  messages.add(c_.total_messages());
}

void ExecSession::run_mt(std::span<const double> x, std::vector<double>& y,
                         idx_t numThreads, ExecStats* stats) {
  trace::TraceScope span("spmv", "spmv.iteration", "procs", c_.numProcs, "mt", 1);
  cancel::check_point(cancel_, "exec.iter", "cancel.exec.iter", ++iter_);
  FGHP_REQUIRE(x.size() == uz(c_.numCols), "x size mismatch");
  const idx_t K = c_.numProcs;

  // Worker resolution routes through the shared pool, so FGHP_THREADS and
  // PartitionConfig::numThreads behave exactly as thread_pool.hpp documents:
  // an explicit positive request wins, otherwise the pool default applies,
  // capped at K because tasks are per-processor. A request that resolves to
  // one thread gets no pool at all — the supersteps run inline on the
  // caller with every fault site and recovery rung still armed.
  long requested = numThreads > 0
                       ? static_cast<long>(numThreads)
                       : static_cast<long>(ThreadPool::default_num_threads());
  requested = std::min<long>(requested, static_cast<long>(K));
  ThreadPool* pool = ThreadPool::for_request(requested);

  y.resize(uz(c_.numRows));
  std::fill(y.begin(), y.end(), 0.0);

  // This run's traffic tallies are standalone metrics counters: the tasks
  // below are the only writers, ExecStats reads them back, and the totals
  // fold into the registered metrics once at the end — one source of truth
  // instead of parallel hand-rolled atomics.
  metrics::Counter expandWords, foldWords, messages, taskRetries;
  std::atomic<bool> failed{false};

  // Per-processor task wrapper: one retry (fault site `exec.retry`, same
  // ordinal), then give up and flag the run for the serial fallback. Task
  // bodies are idempotent — every scratch word they touch is assigned, not
  // accumulated, and the traffic counters commit only on their last line —
  // so a retry after a partial first attempt cannot double-count or
  // double-accumulate. The flag is read after the next barrier, so a failed
  // superstep never feeds garbage into the next one. Each completed task is
  // a trace span bracketed explicitly (begin/end on the worker that ran it).
  auto run_task = [&](const char* site, idx_t p, auto&& body) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      try {
        fault::check(attempt == 0 ? site : "exec.retry", p + 1);
        const bool traced = trace::enabled();
        const std::uint64_t t0 = traced ? trace::now_ns() : 0;
        body();
        if (traced) trace::complete("spmv", site, t0, trace::now_ns(), "proc", p);
        return;
      } catch (const std::exception& e) {
        if (attempt == 0) {
          taskRetries.add();
          trace::instant("recovery", "exec.task_retry", "proc", p);
          push_warning(std::string("executor task '") + site + "' on processor " +
                       std::to_string(p) + " failed (" + e.what() + "); retrying");
        } else {
          trace::instant("recovery", "exec.serial_fallback", "proc", p);
          push_warning(std::string("executor task '") + site + "' on processor " +
                       std::to_string(p) + " failed its retry (" + e.what() +
                       "); degrading to the serial executor");
          failed.store(true, std::memory_order_release);
        }
      }
    }
  };

  // One BSP superstep: fn(p) for every processor, fully joined before
  // returning (parallel_for blocks until all tasks completed — that join is
  // the barrier between supersteps). Serial resolution runs inline.
  auto superstep = [&](auto&& fn) {
    if (pool != nullptr)
      parallel_for(*pool, static_cast<long>(K),
                   [&](long p) { fn(static_cast<idx_t>(p)); });
    else
      for (idx_t p = 0; p < K; ++p) fn(p);
  };

  // Superstep 1: gather owned x into local slots and the expand buffer.
  superstep([&](idx_t p) {
    run_task("exec.expand", p, [&, p] {
      for (idx_t w = c_.ownXOff[uz(p)]; w < c_.ownXOff[uz(p) + 1]; ++w)
        xLoc_[uz(c_.ownXSlot[uz(w)])] = x[uz(c_.ownXCol[uz(w)])];
      const idx_t base = c_.xSendOff[uz(p)];
      const idx_t sent = c_.xSendOff[uz(p) + 1] - base;
      kern::gather(xSendBuf_.data() + base, x.data(), c_.xSendCol.data() + base,
                   uz(sent));
      expandWords.add(sent);
      messages.add(c_.xSendMsgOff[uz(p) + 1] - c_.xSendMsgOff[uz(p)]);
      trace::counter("spmv", "expand.words", static_cast<double>(sent), "proc", p);
    });
  });

  // Between supersteps the caller thread is at a barrier — the only place a
  // cancellation can be observed without racing the retry ladder inside the
  // worker tasks. The scratch is fully re-assigned by every run, so an
  // iteration abandoned here leaves the session reusable.
  cancel::check_point(cancel_, "exec.superstep", nullptr, iter_);

  // Superstep 2: drain the expand buffer, multiply locally, fill the fold
  // buffer.
  if (!failed.load(std::memory_order_acquire)) {
    superstep([&](idx_t p) {
      run_task("exec.fold", p, [&, p] {
        for (idx_t w = c_.xRecvOff[uz(p)]; w < c_.xRecvOff[uz(p) + 1]; ++w)
          xLoc_[uz(c_.xRecvSlot[uz(w)])] = xSendBuf_[uz(c_.xRecvSrc[uz(w)])];
        for (idx_t r = c_.rowOff[uz(p)]; r < c_.rowOff[uz(p) + 1]; ++r)
          partial_[uz(r)] = kern::row_dot(c_.vals.data(), c_.colSlot.data(),
                                          xLoc_.data(), c_.rowPtr[uz(r)],
                                          c_.rowPtr[uz(r) + 1]);
        const idx_t base = c_.ySendOff[uz(p)];
        const idx_t sent = c_.ySendOff[uz(p) + 1] - base;
        kern::gather(ySendBuf_.data() + base, partial_.data(),
                     c_.ySendSlot.data() + base, uz(sent));
        foldWords.add(sent);
        messages.add(c_.ySendMsgOff[uz(p) + 1] - c_.ySendMsgOff[uz(p)]);
        trace::counter("spmv", "fold.words", static_cast<double>(sent), "proc", p);
      });
    });
  }

  cancel::check_point(cancel_, "exec.superstep", nullptr, iter_);

  // Superstep 3: owners accumulate their own partial plus received partials
  // in plan order (same order as the serial path). Each y_i has a unique
  // owner, so writes to y are disjoint across processors.
  if (!failed.load(std::memory_order_acquire)) {
    superstep([&](idx_t p) {
      for (idx_t w = c_.ownYOff[uz(p)]; w < c_.ownYOff[uz(p) + 1]; ++w)
        y[uz(c_.ownYRow[uz(w)])] += partial_[uz(c_.ownYSlot[uz(w)])];
      for (idx_t w = c_.yRecvOff[uz(p)]; w < c_.yRecvOff[uz(p) + 1]; ++w)
        y[uz(c_.yRecvRow[uz(w)])] += ySendBuf_[uz(c_.yRecvSrc[uz(w)])];
    });
  }

  static metrics::Counter& gRetries = metrics::counter("spmv.task_retries");
  static metrics::Counter& gFallbacks = metrics::counter("spmv.serial_fallbacks");
  gRetries.add(taskRetries.value());

  if (failed.load(std::memory_order_acquire)) {
    // Some task failed even its retry: discard the partial parallel run and
    // recompute from scratch on the (uninstrumented) serial path, which
    // re-zeroes y. Output and traffic counts match a clean run exactly.
    // run_serial_impl, not run(): this is still the same logical iteration,
    // so it must not consume a second check-point ordinal.
    gFallbacks.add();
    run_serial_impl(x, y, stats);
    if (stats != nullptr) {
      stats->taskRetries = static_cast<idx_t>(taskRetries.value());
      stats->serialFallback = true;
    }
    return;
  }

  static metrics::Counter& gIterations = metrics::counter("spmv.iterations");
  static metrics::Counter& gExpandWords = metrics::counter("spmv.expand.words");
  static metrics::Counter& gFoldWords = metrics::counter("spmv.fold.words");
  static metrics::Counter& gMessages = metrics::counter("spmv.messages");
  gIterations.add();
  gExpandWords.add(expandWords.value());
  gFoldWords.add(foldWords.value());
  gMessages.add(messages.value());

  if (stats != nullptr) {
    stats->wordsSent = static_cast<weight_t>(expandWords.value() + foldWords.value());
    stats->messagesSent = static_cast<idx_t>(messages.value());
    stats->taskRetries = static_cast<idx_t>(taskRetries.value());
    stats->serialFallback = false;
  }
}

}  // namespace fghp::spmv
