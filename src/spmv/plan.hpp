// Distributed SpMV plan: per-processor local nonzeros and the exact
// expand/fold message schedules derived from a decomposition. The plan's
// word/message totals are, by construction, the quantities comm::analyze
// reports — the executors assert that equivalence at runtime.
//
// The plan is the SpMV-typed view of the workload: column/row vocabulary,
// one struct per processor. Execution happens through its lowering to the
// workload-agnostic exec::Schedule (to_schedule below): one input space "x",
// output space "y", and one baked-constant task per nonzero — see
// exec/schedule.hpp and DESIGN.md §14.
#pragma once

#include <vector>

#include "exec/schedule.hpp"
#include "models/decomposition.hpp"
#include "sparse/csr.hpp"
#include "util/cancel.hpp"

namespace fghp::spmv {

/// One message of the schedule: the ids (column indices for expand, row
/// indices for fold) whose values travel between `peer` and this processor.
/// The recv-side pairIndex points at the matching entry in the peer's send
/// list, exactly as in the generic schedule.
using Msg = exec::Msg;

struct ProcPlan {
  /// Local nonzeros in global coordinates.
  std::vector<idx_t> rows, cols;
  std::vector<double> vals;

  std::vector<idx_t> ownedX;  ///< columns whose x value this processor owns
  std::vector<idx_t> ownedY;  ///< rows whose y value this processor owns

  std::vector<Msg> xSends;  ///< expand phase, outgoing
  std::vector<Msg> xRecvs;  ///< expand phase, incoming
  std::vector<Msg> ySends;  ///< fold phase, outgoing partials
  std::vector<Msg> yRecvs;  ///< fold phase, incoming partials
};

struct SpmvPlan {
  idx_t numProcs = 0;
  idx_t numRows = 0;
  idx_t numCols = 0;
  std::vector<ProcPlan> procs;

  weight_t total_words() const;    ///< expand + fold words
  idx_t total_messages() const;    ///< directed messages, both phases
};

/// Builds the schedules. Deterministic: ids inside every message and the
/// messages themselves are sorted. The optional token is checked once at the
/// phase boundary before any work (an inactive default token is free).
SpmvPlan build_plan(const sparse::Csr& a, const model::Decomposition& d,
                    const cancel::CancelToken& cancel = {});

/// Lowers the plan to the workload-agnostic execution schedule: input space
/// "x" (numCols ids), output space "y" (numRows ids), per-processor
/// ownership and expand/fold messages copied verbatim, and one
/// baked-constant task per local nonzero (out = row, rhs = col, const =
/// value) in local nonzero order. Pure restructuring — total on any input,
/// no validation; trace/metric labels are the "spmv" family.
exec::Schedule to_schedule(const SpmvPlan& plan);

/// Returns a list of human-readable problems with a plan (empty = valid),
/// via exec::validate_schedule on the lowered schedule:
///  * proc count / index ranges inconsistent with numProcs/numRows/numCols,
///  * ragged local nonzero arrays (rows/cols/vals length mismatch),
///  * x or y ids owned by zero or multiple processors,
///  * a recv whose pairIndex does not point back at the matching send
///    (peer or id list disagrees),
///  * a message whose id list is not strictly increasing — the sorted /
///    deduplicated determinism contract build_plan guarantees and the
///    compiled mailbox translation relies on.
std::vector<std::string> validate_plan(const SpmvPlan& plan);

/// Throws fghp::InvariantError listing all problems if validate_plan() is
/// non-empty. Run by the tools before executing a plan built from an
/// untrusted (file-loaded) decomposition.
void validate_plan_or_throw(const SpmvPlan& plan);

}  // namespace fghp::spmv
