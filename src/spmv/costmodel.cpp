#include "spmv/costmodel.hpp"

#include <algorithm>

namespace fghp::spmv {

CostEstimate estimate_cost(const sparse::Csr& a, const model::Decomposition& d,
                           const comm::CommStats& stats, const CostParams& params) {
  const model::LoadStats loads = model::compute_loads(a, d);

  CostEstimate est;
  est.computeSeconds =
      2.0 * static_cast<double>(loads.maxLoad) * params.gamma;  // one mul + one add per nonzero

  double commMax = 0.0;
  for (idx_t p = 0; p < d.numProcs; ++p) {
    const double words =
        static_cast<double>(stats.sendWords[static_cast<std::size_t>(p)] +
                            stats.recvWords[static_cast<std::size_t>(p)]);
    const double msgs = static_cast<double>(stats.messagesHandled[static_cast<std::size_t>(p)]);
    commMax = std::max(commMax, params.alpha * msgs + params.beta * words);
  }
  est.commSeconds = commMax;
  est.totalSeconds = est.computeSeconds + est.commSeconds;
  est.serialSeconds = 2.0 * static_cast<double>(a.nnz()) * params.gamma;
  est.speedup = est.totalSeconds > 0.0 ? est.serialSeconds / est.totalSeconds : 0.0;
  return est;
}

}  // namespace fghp::spmv
