// Communication analysis of a decomposition: the exact expand/fold volumes,
// per-processor send/receive words, and message counts of one parallel
// y = Ax — the measured quantities of the paper's Table 2.
//
// Expand (pre-communication): owner(x_j) sends x_j to every processor that
// owns a nonzero in column j and is not the owner — one word per remote
// needer. Fold (post-communication): every processor owning a nonzero in
// row i and not owning y_i sends its partial y_i to owner(y_i) — one word
// per remote contributor. For partitions produced by the fine-grain model
// the total equals the lambda-1 cutsize (the paper's central claim, enforced
// by our tests).
#pragma once

#include <vector>

#include "models/decomposition.hpp"
#include "sparse/csr.hpp"

namespace fghp::comm {

struct CommStats {
  idx_t numProcs = 0;

  weight_t expandWords = 0;  ///< total words in the pre phase
  weight_t foldWords = 0;    ///< total words in the post phase
  weight_t totalWords = 0;   ///< expand + fold

  /// Per-processor words sent / received (both phases combined).
  std::vector<weight_t> sendWords;
  std::vector<weight_t> recvWords;
  /// max_p (sendWords[p] + recvWords[p]) — Table 2's "max" column.
  weight_t maxProcWords = 0;

  /// Directed messages (distinct (src, dst) pairs per phase).
  idx_t expandMessages = 0;
  idx_t foldMessages = 0;
  /// Messages handled (sent + received) per processor.
  std::vector<idx_t> messagesHandled;
  double avgMessagesPerProc = 0.0;  ///< Table 2's "avg #msgs"
  idx_t maxMessagesPerProc = 0;

  /// Volumes scaled by the number of rows/cols, as Table 2 reports them.
  double scaledTotal(idx_t numRows) const {
    return static_cast<double>(totalWords) / static_cast<double>(numRows);
  }
  double scaledMax(idx_t numRows) const {
    return static_cast<double>(maxProcWords) / static_cast<double>(numRows);
  }
};

/// Analyzes the decomposition. Requires numProcs <= 4096 (dense message
/// matrices are used internally).
CommStats analyze(const sparse::Csr& a, const model::Decomposition& d);

}  // namespace fghp::comm
