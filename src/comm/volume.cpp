#include "comm/volume.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/sparse_acc.hpp"

namespace fghp::comm {

namespace {

/// Per-column (or per-row) processor sets, built by bucketing nonzero owners.
/// groupOf[e] selects the bucket of CSR entry e.
std::vector<std::vector<idx_t>> owner_sets(idx_t numGroups, const std::vector<idx_t>& groupOf,
                                           const std::vector<idx_t>& ownerOf) {
  std::vector<std::vector<idx_t>> sets(static_cast<std::size_t>(numGroups));
  for (std::size_t e = 0; e < groupOf.size(); ++e) {
    sets[static_cast<std::size_t>(groupOf[e])].push_back(ownerOf[e]);
  }
  for (auto& s : sets) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }
  return sets;
}

}  // namespace

CommStats analyze(const sparse::Csr& a, const model::Decomposition& d) {
  model::validate(a, d);
  FGHP_REQUIRE(d.numProcs <= 4096, "analyze supports at most 4096 processors");
  const idx_t K = d.numProcs;
  const idx_t n = a.num_rows();

  CommStats s;
  s.numProcs = K;
  s.sendWords.assign(static_cast<std::size_t>(K), 0);
  s.recvWords.assign(static_cast<std::size_t>(K), 0);
  s.messagesHandled.assign(static_cast<std::size_t>(K), 0);

  // Bucket nonzero owners by row and by column.
  std::vector<idx_t> rowOf(static_cast<std::size_t>(a.nnz()));
  std::vector<idx_t> colOf(static_cast<std::size_t>(a.nnz()));
  {
    std::size_t e = 0;
    for (idx_t i = 0; i < n; ++i) {
      for (idx_t j : a.row_cols(i)) {
        rowOf[e] = i;
        colOf[e] = j;
        ++e;
      }
    }
  }
  const auto colProcs = owner_sets(a.num_cols(), colOf, d.nnzOwner);
  const auto rowProcs = owner_sets(n, rowOf, d.nnzOwner);

  // Dense per-phase message matrices (K <= 4096 => at most 16M bytes each).
  std::vector<char> expandMsg(static_cast<std::size_t>(K) * static_cast<std::size_t>(K), 0);
  std::vector<char> foldMsg(static_cast<std::size_t>(K) * static_cast<std::size_t>(K), 0);
  auto at = [K](std::vector<char>& m, idx_t src, idx_t dst) -> char& {
    return m[static_cast<std::size_t>(src) * static_cast<std::size_t>(K) +
             static_cast<std::size_t>(dst)];
  };

  // Expand: owner(x_j) -> every remote processor holding a nonzero of col j.
  for (idx_t j = 0; j < a.num_cols(); ++j) {
    const idx_t owner = d.xOwner[static_cast<std::size_t>(j)];
    for (idx_t p : colProcs[static_cast<std::size_t>(j)]) {
      if (p == owner) continue;
      ++s.expandWords;
      ++s.sendWords[static_cast<std::size_t>(owner)];
      ++s.recvWords[static_cast<std::size_t>(p)];
      at(expandMsg, owner, p) = 1;
    }
  }

  // Fold: every remote contributor of row i -> owner(y_i).
  for (idx_t i = 0; i < n; ++i) {
    const idx_t owner = d.yOwner[static_cast<std::size_t>(i)];
    for (idx_t p : rowProcs[static_cast<std::size_t>(i)]) {
      if (p == owner) continue;
      ++s.foldWords;
      ++s.sendWords[static_cast<std::size_t>(p)];
      ++s.recvWords[static_cast<std::size_t>(owner)];
      at(foldMsg, p, owner) = 1;
    }
  }

  s.totalWords = s.expandWords + s.foldWords;
  for (idx_t p = 0; p < K; ++p) {
    s.maxProcWords = std::max(
        s.maxProcWords, s.sendWords[static_cast<std::size_t>(p)] +
                            s.recvWords[static_cast<std::size_t>(p)]);
  }

  for (idx_t src = 0; src < K; ++src) {
    for (idx_t dst = 0; dst < K; ++dst) {
      if (at(expandMsg, src, dst)) {
        ++s.expandMessages;
        ++s.messagesHandled[static_cast<std::size_t>(src)];
        ++s.messagesHandled[static_cast<std::size_t>(dst)];
      }
      if (at(foldMsg, src, dst)) {
        ++s.foldMessages;
        ++s.messagesHandled[static_cast<std::size_t>(src)];
        ++s.messagesHandled[static_cast<std::size_t>(dst)];
      }
    }
  }
  idx_t handledTotal = 0;
  for (idx_t p = 0; p < K; ++p) {
    handledTotal += s.messagesHandled[static_cast<std::size_t>(p)];
    s.maxMessagesPerProc =
        std::max(s.maxMessagesPerProc, s.messagesHandled[static_cast<std::size_t>(p)]);
  }
  s.avgMessagesPerProc = static_cast<double>(handledTotal) / static_cast<double>(K);
  return s;
}

}  // namespace fghp::comm
