// The common output of every decomposition model: which processor owns each
// nonzero (the atomic task y_i^j = a_ij * x_j) and which processor owns each
// x_j / y_i vector entry. 1D models are the special case where ownership is
// constant along each row.
#pragma once

#include <vector>

#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace fghp::model {

struct Decomposition {
  idx_t numProcs = 0;

  /// Owner of each stored nonzero, indexed by CSR entry order (row-major).
  std::vector<idx_t> nnzOwner;

  /// Owner of x_j, per column j.
  std::vector<idx_t> xOwner;

  /// Owner of y_i, per row i.
  std::vector<idx_t> yOwner;
};

/// Checks shapes and ranges against the matrix; throws std::invalid_argument.
void validate(const sparse::Csr& a, const Decomposition& d);

/// True if the x and y vectors are partitioned conformally (the paper's
/// symmetric-partitioning requirement for iterative solvers).
bool symmetric_vectors(const Decomposition& d);

struct LoadStats {
  std::vector<weight_t> nnzPerProc;  ///< scalar multiplications per processor
  weight_t maxLoad = 0;
  double avgLoad = 0.0;
  /// The paper's percent imbalance ratio 100 * (Wmax - Wavg) / Wavg.
  double percentImbalance = 0.0;
};

/// Computational load of each processor (one unit per owned nonzero).
LoadStats compute_loads(const sparse::Csr& a, const Decomposition& d);

}  // namespace fghp::model
