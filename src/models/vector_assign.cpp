#include "models/vector_assign.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace fghp::model {

namespace {

/// Per-processor send+receive words implied by owner choices, computed
/// incrementally: owning index j costs the owner |S_j \ {p}| expand sends
/// plus |T_j \ {p}| fold receives, and every other member of S_j / T_j one
/// receive / send.
struct LoadLedger {
  explicit LoadLedger(idx_t numProcs) : words(static_cast<std::size_t>(numProcs), 0) {}

  void apply(const std::vector<idx_t>& S, const std::vector<idx_t>& T, idx_t owner,
             weight_t sign) {
    for (idx_t p : S) {
      if (p == owner) continue;
      words[static_cast<std::size_t>(owner)] += sign;  // owner sends x_j
      words[static_cast<std::size_t>(p)] += sign;      // p receives x_j
    }
    for (idx_t p : T) {
      if (p == owner) continue;
      words[static_cast<std::size_t>(p)] += sign;      // p sends its partial
      words[static_cast<std::size_t>(owner)] += sign;  // owner receives it
    }
  }

  weight_t max() const { return *std::max_element(words.begin(), words.end()); }

  std::vector<weight_t> words;
};

}  // namespace

VectorAssignResult balance_vector_owners(const sparse::Csr& a, const Decomposition& d) {
  validate(a, d);
  FGHP_REQUIRE(symmetric_vectors(d), "optimizer requires a symmetric vector partition");
  const idx_t n = a.num_rows();
  FGHP_REQUIRE(a.is_square(), "optimizer requires a square matrix");

  // Sorted unique processor sets per column (S) and row (T).
  std::vector<std::vector<idx_t>> S(static_cast<std::size_t>(n));
  std::vector<std::vector<idx_t>> T(static_cast<std::size_t>(n));
  {
    std::size_t e = 0;
    for (idx_t i = 0; i < n; ++i) {
      for (idx_t j : a.row_cols(i)) {
        const idx_t p = d.nnzOwner[e++];
        S[static_cast<std::size_t>(j)].push_back(p);
        T[static_cast<std::size_t>(i)].push_back(p);
      }
    }
    for (auto& s : S) {
      std::sort(s.begin(), s.end());
      s.erase(std::unique(s.begin(), s.end()), s.end());
    }
    for (auto& t : T) {
      std::sort(t.begin(), t.end());
      t.erase(std::unique(t.begin(), t.end()), t.end());
    }
  }

  // Baseline ledger under the input owners.
  LoadLedger ledger(d.numProcs);
  for (idx_t j = 0; j < n; ++j) {
    ledger.apply(S[static_cast<std::size_t>(j)], T[static_cast<std::size_t>(j)],
                 d.xOwner[static_cast<std::size_t>(j)], +1);
  }
  const weight_t before = ledger.max();

  // Heaviest entries first: they move the most words, so placing them while
  // the ledger is most flexible balances best.
  std::vector<idx_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), idx_t{0});
  std::sort(order.begin(), order.end(), [&](idx_t x, idx_t y) {
    const std::size_t sx = S[static_cast<std::size_t>(x)].size() +
                           T[static_cast<std::size_t>(x)].size();
    const std::size_t sy = S[static_cast<std::size_t>(y)].size() +
                           T[static_cast<std::size_t>(y)].size();
    return sx != sy ? sx > sy : x < y;
  });

  Decomposition out = d;
  for (idx_t j : order) {
    const auto& Sj = S[static_cast<std::size_t>(j)];
    const auto& Tj = T[static_cast<std::size_t>(j)];
    std::vector<idx_t> candidates;
    std::set_intersection(Sj.begin(), Sj.end(), Tj.begin(), Tj.end(),
                          std::back_inserter(candidates));
    if (candidates.empty()) continue;  // keep the existing (volume-optimal set empty)

    const idx_t current = out.xOwner[static_cast<std::size_t>(j)];
    ledger.apply(Sj, Tj, current, -1);
    idx_t best = kInvalidIdx;
    weight_t bestLoad = 0;
    for (idx_t p : candidates) {
      const weight_t load = ledger.words[static_cast<std::size_t>(p)];
      if (best == kInvalidIdx || load < bestLoad) {
        best = p;
        bestLoad = load;
      }
    }
    ledger.apply(Sj, Tj, best, +1);
    out.xOwner[static_cast<std::size_t>(j)] = best;
    out.yOwner[static_cast<std::size_t>(j)] = best;
  }

  VectorAssignResult result;
  result.maxProcWordsBefore = before;
  result.maxProcWordsAfter = ledger.max();
  if (result.maxProcWordsAfter <= before) {
    result.decomp = std::move(out);
  } else {
    // Greedy failed to help; keep the input assignment.
    result.decomp = d;
    result.maxProcWordsAfter = before;
  }
  return result;
}

}  // namespace fghp::model
