#include "models/checkerboard.hpp"

#include <cmath>

#include "sparse/convert.hpp"
#include "util/assert.hpp"
#include "util/trace.hpp"

namespace fghp::model {

namespace {

/// Splits n indices into `blocks` contiguous groups with roughly equal
/// total `count`; returns the block id of each index.
std::vector<idx_t> balanced_blocks(const std::vector<idx_t>& count, idx_t blocks) {
  const auto n = static_cast<idx_t>(count.size());
  weight_t total = 0;
  for (idx_t c : count) total += c;

  std::vector<idx_t> blockOf(static_cast<std::size_t>(n));
  weight_t acc = 0;
  idx_t b = 0;
  for (idx_t i = 0; i < n; ++i) {
    // Advance to the next block when this one has reached its fair share,
    // keeping enough indices for the remaining blocks.
    const auto fair = static_cast<weight_t>(
        std::llround(static_cast<double>(total) * static_cast<double>(b + 1) /
                     static_cast<double>(blocks)));
    if (acc >= fair && b + 1 < blocks && n - i >= blocks - b) ++b;
    blockOf[static_cast<std::size_t>(i)] = b;
    acc += count[static_cast<std::size_t>(i)];
  }
  return blockOf;
}

}  // namespace

Decomposition checkerboard_decompose(const sparse::Csr& a, idx_t pr, idx_t pc) {
  FGHP_REQUIRE(a.is_square(), "checkerboard requires a square matrix");
  FGHP_REQUIRE(pr >= 1 && pc >= 1, "grid dimensions must be positive");
  const idx_t n = a.num_rows();
  trace::TraceScope span("model", "build.checkerboard", "pr", pr, "pc", pc);

  std::vector<idx_t> rowCount(static_cast<std::size_t>(n));
  for (idx_t i = 0; i < n; ++i) rowCount[static_cast<std::size_t>(i)] = a.row_size(i);
  std::vector<idx_t> colCount(static_cast<std::size_t>(n), 0);
  for (idx_t j : a.col_ind()) ++colCount[static_cast<std::size_t>(j)];

  const std::vector<idx_t> rowBlock = balanced_blocks(rowCount, pr);
  const std::vector<idx_t> colBlock = balanced_blocks(colCount, pc);

  Decomposition d;
  d.numProcs = pr * pc;
  d.nnzOwner.resize(static_cast<std::size_t>(a.nnz()));
  std::size_t e = 0;
  for (idx_t i = 0; i < n; ++i) {
    const idx_t rb = rowBlock[static_cast<std::size_t>(i)];
    for (idx_t j : a.row_cols(i)) {
      d.nnzOwner[e++] = rb * pc + colBlock[static_cast<std::size_t>(j)];
    }
  }
  d.xOwner.resize(static_cast<std::size_t>(n));
  d.yOwner.resize(static_cast<std::size_t>(n));
  for (idx_t j = 0; j < n; ++j) {
    const idx_t owner = rowBlock[static_cast<std::size_t>(j)] * pc +
                        colBlock[static_cast<std::size_t>(j)];
    d.xOwner[static_cast<std::size_t>(j)] = owner;
    d.yOwner[static_cast<std::size_t>(j)] = owner;
  }
  validate(a, d);
  return d;
}

Decomposition checkerboard_decompose_k(const sparse::Csr& a, idx_t K) {
  FGHP_REQUIRE(K >= 1, "K must be positive");
  idx_t pr = 1;
  for (idx_t d = 1; static_cast<double>(d) <= std::sqrt(static_cast<double>(K)); ++d) {
    if (K % d == 0) pr = d;
  }
  return checkerboard_decompose(a, pr, K / pr);
}

}  // namespace fghp::model
