// Decomposition serialization: a small line-oriented text format so owner
// maps can be produced once (partitioning is the expensive step) and reused
// by downstream runtimes. Format (version 2; version-1 files without the
// checksum line are still read):
//
//   fghp-decomposition 2
//   procs <K>
//   nnz <Z>
//   <owner of entry 0, CSR order>
//   ...
//   vec <M>
//   <xOwner[0]> <yOwner[0]>
//   ...
//   checksum <16 hex digits>
//
// The trailing checksum (FNV-1a over counts and every owner value) rejects
// truncated, bit-flipped or hand-edited files that would otherwise pass the
// per-line range checks and silently load a garbage decomposition.
#pragma once

#include <iosfwd>
#include <string>

#include "models/decomposition.hpp"
#include "sparse/csr.hpp"

namespace fghp::model {

/// Writes the decomposition (version-2 format, with trailing checksum).
void write_decomposition(std::ostream& out, const Decomposition& d);
void write_decomposition_file(const std::string& path, const Decomposition& d);

/// Parses a decomposition; throws fghp::FormatError with a line-numbered
/// message (and `path`, if given, as context) on malformed, truncated or
/// checksum-mismatching input. Validate against the target matrix with
/// model::validate before use.
Decomposition read_decomposition(std::istream& in, const std::string& path = "");
Decomposition read_decomposition_file(const std::string& path);

}  // namespace fghp::model
