// Decomposition serialization: a small line-oriented text format so owner
// maps can be produced once (partitioning is the expensive step) and reused
// by downstream runtimes. Format:
//
//   fghp-decomposition 1
//   procs <K>
//   nnz <Z>
//   <owner of entry 0, CSR order>
//   ...
//   vec <M>
//   <xOwner[0]> <yOwner[0]>
//   ...
#pragma once

#include <iosfwd>
#include <string>

#include "models/decomposition.hpp"
#include "sparse/csr.hpp"

namespace fghp::model {

/// Writes the decomposition.
void write_decomposition(std::ostream& out, const Decomposition& d);
void write_decomposition_file(const std::string& path, const Decomposition& d);

/// Parses a decomposition; throws std::runtime_error with a line-numbered
/// message on malformed input. Validate against the target matrix with
/// model::validate before use.
Decomposition read_decomposition(std::istream& in);
Decomposition read_decomposition_file(const std::string& path);

}  // namespace fghp::model
