// Vector-ownership optimization — the follow-up direction the paper's §3
// leaves open: any owner(x_j) = owner(y_j) inside Λ(n_j) ∩ Λ(m_j) realizes
// the same *total* volume (the lambda-1 cutsize), so the remaining freedom
// can balance the *per-processor* communication loads (Table 2's "max"
// column), the idea Uçar & Aykanat later developed into communication-
// hypergraph models.
//
// The optimizer keeps the decomposition's nonzero placement fixed and
// greedily re-assigns vector owners (heaviest entries first, to the
// candidate processor with the smallest current send+receive load),
// guaranteeing: total volume unchanged, symmetric partitioning preserved,
// max per-processor volume never worse than the input assignment.
#pragma once

#include "models/decomposition.hpp"
#include "sparse/csr.hpp"

namespace fghp::model {

struct VectorAssignResult {
  Decomposition decomp;
  weight_t maxProcWordsBefore = 0;
  weight_t maxProcWordsAfter = 0;
};

/// Rebalances owner(x_j) = owner(y_j) within Λ(col j) ∩ Λ(row j) (entries
/// whose intersection is empty keep their current owner). Deterministic.
VectorAssignResult balance_vector_owners(const sparse::Csr& a, const Decomposition& d);

}  // namespace fghp::model
