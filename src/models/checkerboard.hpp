// 2D cartesian (checkerboard) decomposition baseline — the related-work
// scheme of Hendrickson et al. and Lewis & van de Geijn that the paper's
// introduction contrasts against: a pr x pc processor grid, contiguous row
// and column blocks balanced by nonzero count, and *no* explicit effort to
// reduce communication volume. Used by ablation A3.
#pragma once

#include "models/decomposition.hpp"
#include "sparse/csr.hpp"

namespace fghp::model {

/// Decomposes onto a pr x pc grid: proc(a_ij) = rowBlock(i) * pc +
/// colBlock(j); owner(x_j) = owner(y_j) = proc at (rowBlock(j), colBlock(j))
/// so vectors stay conformal. Block boundaries greedily balance nonzeros.
Decomposition checkerboard_decompose(const sparse::Csr& a, idx_t pr, idx_t pc);

/// Convenience: near-square grid for K processors (pr * pc == K, pr <= pc,
/// pr the largest divisor of K with pr <= sqrt(K)).
Decomposition checkerboard_decompose_k(const sparse::Csr& a, idx_t K);

}  // namespace fghp::model
