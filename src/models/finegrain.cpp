#include "models/finegrain.hpp"

#include "hypergraph/metrics.hpp"
#include "hypergraph/validate.hpp"
#include "partition/geo/geometric.hpp"
#include "partition/geo/streaming.hpp"
#include "partition/hg/kway_refine.hpp"
#include "partition/hg/partitioner.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace fghp::model {

FineGrainModel build_finegrain(const sparse::Csr& a) {
  FGHP_REQUIRE(a.is_square(), "the fine-grain model requires a square matrix");
  const idx_t n = a.num_rows();
  const idx_t z = a.nnz();
  trace::TraceScope span("model", "build.finegrain", "n", n, "nnz", z);

  FineGrainModel m;
  m.numRows = n;
  m.numRealVertices = z;
  m.diagVertex.assign(static_cast<std::size_t>(n), kInvalidIdx);

  // Entry e of the CSR is vertex e. Find the diagonal vertices and allocate
  // dummies for missing diagonals.
  {
    idx_t e = 0;
    for (idx_t i = 0; i < n; ++i) {
      for (idx_t j : a.row_cols(i)) {
        if (j == i) m.diagVertex[static_cast<std::size_t>(i)] = e;
        ++e;
      }
    }
  }
  idx_t numVerts = z;
  std::vector<idx_t> dummyOf;  // dummy slot -> diagonal index
  for (idx_t i = 0; i < n; ++i) {
    if (m.diagVertex[static_cast<std::size_t>(i)] == kInvalidIdx) {
      m.diagVertex[static_cast<std::size_t>(i)] = numVerts++;
      dummyOf.push_back(i);
    }
  }

  std::vector<weight_t> vwgt(static_cast<std::size_t>(numVerts), 1);
  for (std::size_t d = 0; d < dummyOf.size(); ++d)
    vwgt[static_cast<std::size_t>(z) + d] = 0;  // dummies do not affect balance

  // Row nets first (net i = m_i), then column nets (net n + j = n_j).
  // Row net pins are the row's entries in CSR order; column net pins are
  // collected with a counting pass. Dummy v_jj joins both m_j and n_j.
  std::vector<idx_t> xpins(static_cast<std::size_t>(2 * n) + 1, 0);
  std::vector<idx_t> colCount(static_cast<std::size_t>(n), 0);
  for (idx_t j : a.col_ind()) ++colCount[static_cast<std::size_t>(j)];

  for (idx_t i = 0; i < n; ++i) {
    idx_t rowPins = a.row_size(i);
    idx_t colPins = colCount[static_cast<std::size_t>(i)];
    if (m.diagVertex[static_cast<std::size_t>(i)] >= z) {  // dummy present
      ++rowPins;
      ++colPins;
    }
    xpins[static_cast<std::size_t>(i) + 1] = rowPins;
    xpins[static_cast<std::size_t>(n + i) + 1] = colPins;
  }
  for (std::size_t k = 0; k < static_cast<std::size_t>(2 * n); ++k) xpins[k + 1] += xpins[k];

  std::vector<idx_t> pins(static_cast<std::size_t>(xpins.back()));
  std::vector<idx_t> cursor(xpins.begin(), xpins.end() - 1);
  {
    idx_t e = 0;
    for (idx_t i = 0; i < n; ++i) {
      for (idx_t j : a.row_cols(i)) {
        pins[static_cast<std::size_t>(cursor[static_cast<std::size_t>(i)]++)] = e;       // m_i
        pins[static_cast<std::size_t>(cursor[static_cast<std::size_t>(n + j)]++)] = e;   // n_j
        ++e;
      }
    }
  }
  for (std::size_t d = 0; d < dummyOf.size(); ++d) {
    const idx_t j = dummyOf[d];
    const idx_t dv = z + static_cast<idx_t>(d);
    pins[static_cast<std::size_t>(cursor[static_cast<std::size_t>(j)]++)] = dv;      // m_j
    pins[static_cast<std::size_t>(cursor[static_cast<std::size_t>(n + j)]++)] = dv;  // n_j
  }

  std::vector<weight_t> costs(static_cast<std::size_t>(2 * n), 1);
  m.h = hg::Hypergraph(numVerts, std::move(xpins), std::move(pins), std::move(vwgt),
                       std::move(costs));
  return m;
}

Decomposition decode_finegrain(const sparse::Csr& a, const FineGrainModel& m,
                               const hg::Partition& p) {
  FGHP_REQUIRE(p.complete(), "decode requires a complete partition");
  FGHP_REQUIRE(p.num_vertices() == m.h.num_vertices(), "partition/model mismatch");

  Decomposition d;
  d.numProcs = p.num_parts();
  d.nnzOwner.resize(static_cast<std::size_t>(a.nnz()));
  for (idx_t e = 0; e < a.nnz(); ++e) d.nnzOwner[static_cast<std::size_t>(e)] = p.part_of(e);
  d.xOwner.resize(static_cast<std::size_t>(a.num_cols()));
  d.yOwner.resize(static_cast<std::size_t>(a.num_rows()));
  for (idx_t j = 0; j < a.num_rows(); ++j) {
    const idx_t owner = p.part_of(m.diagVertex[static_cast<std::size_t>(j)]);
    d.xOwner[static_cast<std::size_t>(j)] = owner;
    d.yOwner[static_cast<std::size_t>(j)] = owner;
  }
  validate(a, d);
  return d;
}

FineGrainPoints build_finegrain_points(const sparse::Csr& a) {
  FGHP_REQUIRE(a.is_square(), "the fine-grain model requires a square matrix");
  const idx_t n = a.num_rows();
  const idx_t z = a.nnz();
  trace::TraceScope span("model", "build.finegrain_points", "n", n, "nnz", z);

  FineGrainPoints m;
  m.numRealVertices = z;
  m.diagVertex.assign(static_cast<std::size_t>(n), kInvalidIdx);

  std::vector<idx_t> row, col;
  std::vector<weight_t> wgt;
  row.reserve(static_cast<std::size_t>(z));
  col.reserve(static_cast<std::size_t>(z));
  wgt.reserve(static_cast<std::size_t>(z));
  {
    idx_t e = 0;
    for (idx_t i = 0; i < n; ++i) {
      for (idx_t j : a.row_cols(i)) {
        if (j == i) m.diagVertex[static_cast<std::size_t>(i)] = e;
        row.push_back(i);
        col.push_back(j);
        wgt.push_back(1);
        ++e;
      }
    }
  }
  // Dummies appended in diagonal order, matching build_finegrain's ids.
  idx_t numVerts = z;
  for (idx_t i = 0; i < n; ++i) {
    if (m.diagVertex[static_cast<std::size_t>(i)] != kInvalidIdx) continue;
    m.diagVertex[static_cast<std::size_t>(i)] = numVerts++;
    row.push_back(i);
    col.push_back(i);
    wgt.push_back(0);
  }
  m.pts = part::geo::make_points(std::move(row), std::move(col), std::move(wgt), n, n);
  return m;
}

Decomposition decode_finegrain(const sparse::Csr& a, const FineGrainPoints& m,
                               const part::geo::GeoPartition& p) {
  FGHP_REQUIRE(p.complete(), "decode requires a complete partition");
  FGHP_REQUIRE(p.num_vertices() == m.pts.num_vertices(), "partition/model mismatch");

  Decomposition d;
  d.numProcs = p.num_parts();
  d.nnzOwner.resize(static_cast<std::size_t>(a.nnz()));
  for (idx_t e = 0; e < a.nnz(); ++e) d.nnzOwner[static_cast<std::size_t>(e)] = p.part_of(e);
  d.xOwner.resize(static_cast<std::size_t>(a.num_cols()));
  d.yOwner.resize(static_cast<std::size_t>(a.num_rows()));
  for (idx_t j = 0; j < a.num_rows(); ++j) {
    const idx_t owner = p.part_of(m.diagVertex[static_cast<std::size_t>(j)]);
    d.xOwner[static_cast<std::size_t>(j)] = owner;
    d.yOwner[static_cast<std::size_t>(j)] = owner;
  }
  validate(a, d);
  return d;
}

namespace {

/// The geometric-fm method: geometric initial partition, lifted onto the
/// real hypergraph for a balance repair plus ONE K-way FM sweep. The
/// hypergraph build and the sweep are partitioner internals of this method
/// (neither would exist without it), so both count in partitionSeconds.
ModelRun run_finegrain_geometric_fm(const sparse::Csr& a, const FineGrainPoints& m,
                                    idx_t K, const part::PartitionConfig& cfg) {
  WallTimer timer;
  part::geo::GeoResult g = part::geo::partition_points_geometric(m.pts, K, cfg);

  const FineGrainModel hm = build_finegrain(a);
  hg::Partition p(hm.h, K, std::vector<idx_t>(g.partition.assignment()));
  Rng rng(cfg.seed);
  if (K > 1 && !hg::is_balanced(hm.h, p, cfg.epsilon))
    part::hgk::kway_rebalance(hm.h, p, cfg.epsilon, rng);
  part::PartitionConfig oneSweep = cfg;
  oneSweep.kwayRefinePasses = 1;
  part::hgk::kway_refine(hm.h, p, oneSweep, rng);
  if (cfg.validateLevel == part::ValidateLevel::kStrict)
    hg::validate_partition_or_throw(hm.h, p, "geometric-fm");

  ModelRun run;
  run.objective = hg::cutsize(hm.h, p, hg::CutMetric::kConnectivity);
  run.imbalance = hg::imbalance(hm.h, p);
  run.numRecoveries = g.numRecoveries;
  run.numDegraded = g.numDegraded;
  run.partitionSeconds = timer.seconds();
  run.decomp = decode_finegrain(a, hm, p);
  return run;
}

}  // namespace

ModelRun run_finegrain(const sparse::Csr& a, idx_t K, const part::PartitionConfig& cfg) {
  using part::PartitionMethod;
  if (cfg.method == PartitionMethod::kMultilevel) {
    const FineGrainModel m = build_finegrain(a);
    part::HgResult r = part::partition_hypergraph(m.h, K, cfg);

    ModelRun run;
    run.partitionSeconds = r.seconds;
    run.objective = r.cutsize;
    run.imbalance = r.imbalance;
    run.numRecoveries = r.numRecoveries;
    run.numDegraded = r.numDegraded;
    run.decomp = decode_finegrain(a, m, r.partition);
    return run;
  }

  const FineGrainPoints m = build_finegrain_points(a);
  ModelRun run;
  switch (cfg.method) {
    case PartitionMethod::kGeometric: {
      part::geo::GeoResult r = part::geo::partition_points_geometric(m.pts, K, cfg);
      run.partitionSeconds = r.seconds;
      run.objective = r.cutsize;
      run.imbalance = r.imbalance;
      run.numRecoveries = r.numRecoveries;
      run.numDegraded = r.numDegraded;
      run.decomp = decode_finegrain(a, m, r.partition);
      break;
    }
    case PartitionMethod::kStreaming: {
      part::geo::StreamResult r = part::geo::partition_points_streaming(m.pts, K, cfg);
      run.partitionSeconds = r.seconds;
      run.objective = r.cutsize;
      run.imbalance = r.imbalance;
      run.numRecoveries = r.numRecoveries;
      run.numDegraded = r.numDegraded;
      run.decomp = decode_finegrain(a, m, r.partition);
      break;
    }
    case PartitionMethod::kGeometricFm:
      run = run_finegrain_geometric_fm(a, m, K, cfg);
      break;
    case PartitionMethod::kMultilevel:
      FGHP_ASSERT(false);  // handled above
      break;
  }
  return run;
}

}  // namespace fghp::model
