#include "models/hypergraph1d.hpp"

#include "partition/hg/partitioner.hpp"
#include "sparse/convert.hpp"
#include "util/assert.hpp"
#include "util/trace.hpp"

namespace fghp::model {

hg::Hypergraph build_colnet_hypergraph(const sparse::Csr& a) {
  FGHP_REQUIRE(a.is_square(), "the column-net model requires a square matrix");
  const idx_t n = a.num_rows();
  trace::TraceScope span("model", "build.hyper1d", "n", n, "nnz", a.nnz());
  const sparse::Csr at = sparse::transpose(a);  // column-major access

  std::vector<weight_t> vwgt(static_cast<std::size_t>(n));
  for (idx_t i = 0; i < n; ++i)
    vwgt[static_cast<std::size_t>(i)] = std::max<weight_t>(1, a.row_size(i));

  std::vector<idx_t> xpins{0};
  std::vector<idx_t> pins;
  std::vector<weight_t> costs(static_cast<std::size_t>(n), 1);
  pins.reserve(static_cast<std::size_t>(a.nnz()) + static_cast<std::size_t>(n));
  for (idx_t j = 0; j < n; ++j) {
    bool hasDiag = false;
    for (idx_t i : at.row_cols(j)) {  // rows with a nonzero in column j
      pins.push_back(i);
      if (i == j) hasDiag = true;
    }
    if (!hasDiag) pins.push_back(j);  // consistency pin
    xpins.push_back(static_cast<idx_t>(pins.size()));
  }
  return hg::Hypergraph(n, std::move(xpins), std::move(pins), std::move(vwgt),
                        std::move(costs));
}

ModelRun run_hypergraph1d(const sparse::Csr& a, idx_t K, const part::PartitionConfig& cfg) {
  const hg::Hypergraph h = build_colnet_hypergraph(a);
  part::HgResult r = part::partition_hypergraph(h, K, cfg);

  ModelRun run;
  run.partitionSeconds = r.seconds;
  run.objective = r.cutsize;
  run.imbalance = r.imbalance;
  run.numRecoveries = r.numRecoveries;
  run.numDegraded = r.numDegraded;
  run.decomp = decode_rowwise(a, r.partition.assignment(), K);
  return run;
}

}  // namespace fghp::model
