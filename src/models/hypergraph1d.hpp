// The 1D column-net hypergraph model (Çatalyürek & Aykanat, TPDS 1999) —
// the stronger 1D baseline of Table 2.
//
// Vertices are rows with weight nnz(row); net n_j holds the rows with a
// nonzero in column j, plus row j itself (the consistency pin that lets
// owner(x_j) = owner(row j) make the lambda-1 cutsize equal the exact
// expand volume).
#pragma once

#include "hypergraph/hypergraph.hpp"
#include "models/graph_model.hpp"  // ModelRun, decode_rowwise
#include "partition/config.hpp"
#include "sparse/csr.hpp"

namespace fghp::model {

/// Builds the column-net hypergraph of a square matrix.
hg::Hypergraph build_colnet_hypergraph(const sparse::Csr& a);

/// 1D column-net hypergraph model end to end (partition rows, decode 1D
/// rowwise).
ModelRun run_hypergraph1d(const sparse::Csr& a, idx_t K, const part::PartitionConfig& cfg);

}  // namespace fghp::model
