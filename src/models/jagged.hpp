// Jagged 2D decomposition (Çatalyürek's thesis [2], ch. "2D decompositions";
// also Saad/Manguoglu-style jagged splits): a P x Q processor grid where
// rows are first partitioned into P stripes with the column-net hypergraph
// model, then each stripe's *columns* are partitioned into Q parts with a
// row-net hypergraph restricted to the stripe. Nonzero (i, j) goes to
// processor (stripe(i), colPart_{stripe(i)}(j)) — column splits differ per
// stripe, hence "jagged". A structured middle ground between cartesian
// checkerboard (rigid) and the fine-grain model (fully general).
#pragma once

#include "models/decomposition.hpp"
#include "models/graph_model.hpp"  // ModelRun
#include "partition/config.hpp"
#include "sparse/csr.hpp"

namespace fghp::model {

/// Jagged decomposition on a pr x pc grid. Vector entries follow the
/// diagonal: owner(x_j) = owner(y_j) = proc(stripe(j), colPart_{stripe(j)}(j)),
/// keeping the partition symmetric.
ModelRun run_jagged(const sparse::Csr& a, idx_t pr, idx_t pc,
                    const part::PartitionConfig& cfg);

/// Near-square grid factorization of K (mirrors checkerboard_decompose_k).
ModelRun run_jagged_k(const sparse::Csr& a, idx_t K, const part::PartitionConfig& cfg);

}  // namespace fghp::model
