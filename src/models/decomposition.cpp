#include "models/decomposition.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace fghp::model {

void validate(const sparse::Csr& a, const Decomposition& d) {
  FGHP_REQUIRE(d.numProcs >= 1, "need at least one processor");
  FGHP_REQUIRE(d.nnzOwner.size() == static_cast<std::size_t>(a.nnz()),
               "one owner per stored nonzero required");
  FGHP_REQUIRE(d.xOwner.size() == static_cast<std::size_t>(a.num_cols()),
               "one owner per column required");
  FGHP_REQUIRE(d.yOwner.size() == static_cast<std::size_t>(a.num_rows()),
               "one owner per row required");
  auto in_range = [&](idx_t p) { return p >= 0 && p < d.numProcs; };
  FGHP_REQUIRE(std::all_of(d.nnzOwner.begin(), d.nnzOwner.end(), in_range),
               "nonzero owner out of range");
  FGHP_REQUIRE(std::all_of(d.xOwner.begin(), d.xOwner.end(), in_range),
               "x owner out of range");
  FGHP_REQUIRE(std::all_of(d.yOwner.begin(), d.yOwner.end(), in_range),
               "y owner out of range");
}

bool symmetric_vectors(const Decomposition& d) {
  return d.xOwner == d.yOwner;
}

LoadStats compute_loads(const sparse::Csr& a, const Decomposition& d) {
  LoadStats s;
  s.nnzPerProc.assign(static_cast<std::size_t>(d.numProcs), 0);
  for (idx_t owner : d.nnzOwner) ++s.nnzPerProc[static_cast<std::size_t>(owner)];
  s.maxLoad = *std::max_element(s.nnzPerProc.begin(), s.nnzPerProc.end());
  s.avgLoad = static_cast<double>(a.nnz()) / static_cast<double>(d.numProcs);
  s.percentImbalance =
      s.avgLoad > 0.0
          ? 100.0 * (static_cast<double>(s.maxLoad) - s.avgLoad) / s.avgLoad
          : 0.0;
  return s;
}

}  // namespace fghp::model
