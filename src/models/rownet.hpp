// The 1D row-net hypergraph model — the columnwise dual of the column-net
// model (the paper's [4] presents both). Vertices are columns with weight
// nnz(col); net m_i holds the columns with a nonzero in row i plus column i
// itself (consistency pin). A K-way partition decodes as a 1D *columnwise*
// decomposition: proc(a_ij) = colPart[j], owner(x_j) = owner(y_j) =
// colPart[j]. Columnwise SpMV needs no expand (every processor owns the x
// entries its columns multiply); the lambda-1 cutsize equals the exact fold
// volume.
#pragma once

#include "hypergraph/hypergraph.hpp"
#include "models/graph_model.hpp"  // ModelRun
#include "partition/config.hpp"
#include "sparse/csr.hpp"

namespace fghp::model {

/// Builds the row-net hypergraph of a square matrix.
hg::Hypergraph build_rownet_hypergraph(const sparse::Csr& a);

/// Decodes a column partition as a 1D columnwise decomposition with
/// conformal vectors.
Decomposition decode_colwise(const sparse::Csr& a, const std::vector<idx_t>& colPart,
                             idx_t numProcs);

/// 1D row-net hypergraph model end to end.
ModelRun run_rownet(const sparse::Csr& a, idx_t K, const part::PartitionConfig& cfg);

}  // namespace fghp::model
