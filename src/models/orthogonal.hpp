// Hypergraph-based orthogonal (checkerboard) 2D decomposition: rows are
// partitioned into P stripes with the column-net model and columns into Q
// stripes with the row-net model, independently; nonzero (i, j) goes to the
// grid processor (rowPart(i), colPart(j)). Unlike the cartesian
// checkerboard, the stripes are hypergraph-optimized (non-contiguous), so
// the expand/fold volumes are actively minimized while the P x Q message
// bound of checkerboard schemes (each processor talks within its grid row
// and column) is retained. Simplification of Çatalyürek & Aykanat's
// checkerboard model, whose second phase is multi-constraint.
#pragma once

#include "models/decomposition.hpp"
#include "models/graph_model.hpp"  // ModelRun
#include "partition/config.hpp"
#include "sparse/csr.hpp"

namespace fghp::model {

/// Orthogonal decomposition on a pr x pc grid; conformal vectors via
/// owner(x_j) = owner(y_j) = proc(rowPart(j), colPart(j)).
ModelRun run_orthogonal(const sparse::Csr& a, idx_t pr, idx_t pc,
                        const part::PartitionConfig& cfg);

/// Near-square grid factorization of K.
ModelRun run_orthogonal_k(const sparse::Csr& a, idx_t K, const part::PartitionConfig& cfg);

}  // namespace fghp::model
