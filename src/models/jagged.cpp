#include "models/jagged.hpp"

#include <cmath>

#include "models/hypergraph1d.hpp"
#include "partition/hg/partitioner.hpp"
#include "sparse/convert.hpp"
#include "util/assert.hpp"
#include "util/trace.hpp"

namespace fghp::model {

ModelRun run_jagged(const sparse::Csr& a, idx_t pr, idx_t pc,
                    const part::PartitionConfig& cfg) {
  FGHP_REQUIRE(a.is_square(), "the jagged model requires a square matrix");
  FGHP_REQUIRE(pr >= 1 && pc >= 1, "grid dimensions must be positive");
  const idx_t n = a.num_rows();
  trace::TraceScope span("model", "build.jagged", "pr", pr, "pc", pc);

  ModelRun run;

  // --- Phase 1: P-way row stripes via the 1D column-net model -------------
  std::vector<idx_t> stripeOf(static_cast<std::size_t>(n), 0);
  if (pr > 1) {
    const hg::Hypergraph rowsH = build_colnet_hypergraph(a);
    part::HgResult r = part::partition_hypergraph(rowsH, pr, cfg);
    run.partitionSeconds += r.seconds;
    run.numRecoveries += r.numRecoveries;
    run.numDegraded += r.numDegraded;
    stripeOf = r.partition.assignment();
  }

  // --- Phase 2: per-stripe Q-way column split (row-net model restricted to
  // the stripe's rows; the consistency pin keeps each diagonal's column in
  // its own row's net so vector decode stays well-defined). Column splits
  // differ across stripes — that's the "jagged" part. --------------------
  // perStripeCol[s * n + j]: part of column j inside stripe s.
  std::vector<idx_t> perStripeCol(static_cast<std::size_t>(pr) * static_cast<std::size_t>(n),
                                  0);
  if (pc > 1) {
    for (idx_t s = 0; s < pr; ++s) {
      std::vector<weight_t> vwgt(static_cast<std::size_t>(n), 0);
      std::vector<idx_t> xpins{0};
      std::vector<idx_t> pins;
      std::vector<weight_t> costs;
      for (idx_t i = 0; i < n; ++i) {
        if (stripeOf[static_cast<std::size_t>(i)] != s) continue;
        bool hasDiag = false;
        for (idx_t j : a.row_cols(i)) {
          pins.push_back(j);
          ++vwgt[static_cast<std::size_t>(j)];
          if (j == i) hasDiag = true;
        }
        if (!hasDiag) pins.push_back(i);  // consistency pin for y_i's owner
        xpins.push_back(static_cast<idx_t>(pins.size()));
        costs.push_back(1);
      }
      const hg::Hypergraph stripeH(n, std::move(xpins), std::move(pins), std::move(vwgt),
                                   std::move(costs));
      part::HgResult r = part::partition_hypergraph(stripeH, pc, cfg);
      run.partitionSeconds += r.seconds;
      run.numRecoveries += r.numRecoveries;
    run.numDegraded += r.numDegraded;
      for (idx_t j = 0; j < n; ++j) {
        perStripeCol[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
                     static_cast<std::size_t>(j)] = r.partition.part_of(j);
      }
    }
  }
  auto col_part = [&](idx_t stripe, idx_t j) {
    return perStripeCol[static_cast<std::size_t>(stripe) * static_cast<std::size_t>(n) +
                        static_cast<std::size_t>(j)];
  };

  // --- Decode ---------------------------------------------------------------
  Decomposition d;
  d.numProcs = pr * pc;
  d.nnzOwner.resize(static_cast<std::size_t>(a.nnz()));
  std::size_t e = 0;
  for (idx_t i = 0; i < n; ++i) {
    const idx_t s = stripeOf[static_cast<std::size_t>(i)];
    for (idx_t j : a.row_cols(i)) {
      d.nnzOwner[e++] = s * pc + col_part(s, j);
    }
  }
  d.xOwner.resize(static_cast<std::size_t>(n));
  d.yOwner.resize(static_cast<std::size_t>(n));
  for (idx_t j = 0; j < n; ++j) {
    const idx_t s = stripeOf[static_cast<std::size_t>(j)];
    const idx_t owner = s * pc + col_part(s, j);
    d.xOwner[static_cast<std::size_t>(j)] = owner;
    d.yOwner[static_cast<std::size_t>(j)] = owner;
  }
  validate(a, d);
  run.decomp = std::move(d);
  return run;
}

ModelRun run_jagged_k(const sparse::Csr& a, idx_t K, const part::PartitionConfig& cfg) {
  FGHP_REQUIRE(K >= 1, "K must be positive");
  idx_t pr = 1;
  for (idx_t f = 1; static_cast<double>(f) <= std::sqrt(static_cast<double>(K)); ++f) {
    if (K % f == 0) pr = f;
  }
  return run_jagged(a, pr, K / pr, cfg);
}

}  // namespace fghp::model
