#include "models/orthogonal.hpp"

#include <cmath>

#include "models/hypergraph1d.hpp"
#include "models/rownet.hpp"
#include "partition/hg/partitioner.hpp"
#include "util/assert.hpp"
#include "util/trace.hpp"

namespace fghp::model {

ModelRun run_orthogonal(const sparse::Csr& a, idx_t pr, idx_t pc,
                        const part::PartitionConfig& cfg) {
  FGHP_REQUIRE(a.is_square(), "the orthogonal model requires a square matrix");
  FGHP_REQUIRE(pr >= 1 && pc >= 1, "grid dimensions must be positive");
  const idx_t n = a.num_rows();
  trace::TraceScope span("model", "build.orthogonal", "pr", pr, "pc", pc);

  ModelRun run;

  std::vector<idx_t> rowPart(static_cast<std::size_t>(n), 0);
  if (pr > 1) {
    const hg::Hypergraph rowsH = build_colnet_hypergraph(a);
    part::HgResult r = part::partition_hypergraph(rowsH, pr, cfg);
    run.partitionSeconds += r.seconds;
    run.numRecoveries += r.numRecoveries;
    run.numDegraded += r.numDegraded;
    rowPart = r.partition.assignment();
  }
  std::vector<idx_t> colPart(static_cast<std::size_t>(n), 0);
  if (pc > 1) {
    const hg::Hypergraph colsH = build_rownet_hypergraph(a);
    part::HgResult r = part::partition_hypergraph(colsH, pc, cfg);
    run.partitionSeconds += r.seconds;
    run.numRecoveries += r.numRecoveries;
    run.numDegraded += r.numDegraded;
    colPart = r.partition.assignment();
  }

  Decomposition d;
  d.numProcs = pr * pc;
  d.nnzOwner.resize(static_cast<std::size_t>(a.nnz()));
  std::size_t e = 0;
  for (idx_t i = 0; i < n; ++i) {
    const idx_t rp = rowPart[static_cast<std::size_t>(i)];
    for (idx_t j : a.row_cols(i)) {
      d.nnzOwner[e++] = rp * pc + colPart[static_cast<std::size_t>(j)];
    }
  }
  d.xOwner.resize(static_cast<std::size_t>(n));
  d.yOwner.resize(static_cast<std::size_t>(n));
  for (idx_t j = 0; j < n; ++j) {
    const idx_t owner = rowPart[static_cast<std::size_t>(j)] * pc +
                        colPart[static_cast<std::size_t>(j)];
    d.xOwner[static_cast<std::size_t>(j)] = owner;
    d.yOwner[static_cast<std::size_t>(j)] = owner;
  }
  validate(a, d);
  run.decomp = std::move(d);
  return run;
}

ModelRun run_orthogonal_k(const sparse::Csr& a, idx_t K, const part::PartitionConfig& cfg) {
  FGHP_REQUIRE(K >= 1, "K must be positive");
  idx_t pr = 1;
  for (idx_t f = 1; static_cast<double>(f) <= std::sqrt(static_cast<double>(K)); ++f) {
    if (K % f == 0) pr = f;
  }
  return run_orthogonal(a, pr, K / pr, cfg);
}

}  // namespace fghp::model
