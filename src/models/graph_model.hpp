// The standard graph model for 1D rowwise decomposition (the MeTiS baseline
// of Table 2).
//
// Vertices are rows with weight = nnz(row) (the row's multiply count). For
// every off-diagonal pair (i, j) with a_ij != 0 or a_ji != 0 there is an
// edge whose weight counts the words that actually cross if i and j are
// separated under symmetric partitioning: 1 per stored direction (2 when
// both a_ij and a_ji are stored). The model's known flaw — the reason the
// hypergraph models win — is that a vertex with cut edges to several
// neighbors in the *same* part pays once per edge while the real expand
// sends x_j only once per remote processor.
#pragma once

#include "graph/graph.hpp"
#include "models/decomposition.hpp"
#include "partition/config.hpp"
#include "sparse/csr.hpp"

namespace fghp::model {

/// Builds the standard (symmetrized) graph of a square matrix.
gp::Graph build_standard_graph(const sparse::Csr& a);

/// Decodes a row partition as a 1D rowwise decomposition with conformal
/// vectors: proc(a_ij) = rowPart[i], owner(x_j) = owner(y_j) = rowPart[j].
Decomposition decode_rowwise(const sparse::Csr& a, const std::vector<idx_t>& rowPart,
                             idx_t numProcs);

/// Result of running one model end to end (build + partition + decode).
struct ModelRun {
  Decomposition decomp;
  double partitionSeconds = 0.0;  ///< model build excluded, as in the paper
  weight_t objective = 0;         ///< what the partitioner minimized
  double imbalance = 0.0;         ///< partitioner-side imbalance
  idx_t numRecoveries = 0;        ///< bisection retries / fallbacks taken
  idx_t numDegraded = 0;          ///< RB nodes demoted by the deadline ladder
};

/// Standard graph model end to end.
ModelRun run_graph_model(const sparse::Csr& a, idx_t K, const part::PartitionConfig& cfg);

}  // namespace fghp::model
