#include "models/graph_model.hpp"

#include <tuple>

#include "partition/gp/gpartitioner.hpp"
#include "util/assert.hpp"
#include "util/trace.hpp"

namespace fghp::model {

gp::Graph build_standard_graph(const sparse::Csr& a) {
  FGHP_REQUIRE(a.is_square(), "the standard graph model requires a square matrix");
  const idx_t n = a.num_rows();
  trace::TraceScope span("model", "build.graph", "n", n, "nnz", a.nnz());

  std::vector<weight_t> vwgt(static_cast<std::size_t>(n));
  for (idx_t i = 0; i < n; ++i) vwgt[static_cast<std::size_t>(i)] = a.row_size(i);

  // Each stored off-diagonal direction contributes weight 1; duplicate
  // (i, j)/(j, i) pairs merge to weight 2 inside the Graph constructor.
  std::vector<std::tuple<idx_t, idx_t, weight_t>> edges;
  edges.reserve(static_cast<std::size_t>(a.nnz()));
  for (idx_t i = 0; i < n; ++i) {
    for (idx_t j : a.row_cols(i)) {
      if (j != i) edges.emplace_back(std::min(i, j), std::max(i, j), 1);
    }
  }
  return gp::Graph(n, std::move(edges), std::move(vwgt));
}

Decomposition decode_rowwise(const sparse::Csr& a, const std::vector<idx_t>& rowPart,
                             idx_t numProcs) {
  FGHP_REQUIRE(a.is_square(), "rowwise decode requires a square matrix");
  FGHP_REQUIRE(rowPart.size() == static_cast<std::size_t>(a.num_rows()),
               "one part per row required");
  Decomposition d;
  d.numProcs = numProcs;
  d.nnzOwner.resize(static_cast<std::size_t>(a.nnz()));
  std::size_t e = 0;
  for (idx_t i = 0; i < a.num_rows(); ++i) {
    const idx_t owner = rowPart[static_cast<std::size_t>(i)];
    for (idx_t k = 0; k < a.row_size(i); ++k) d.nnzOwner[e++] = owner;
  }
  d.xOwner = rowPart;
  d.yOwner = rowPart;
  validate(a, d);
  return d;
}

ModelRun run_graph_model(const sparse::Csr& a, idx_t K, const part::PartitionConfig& cfg) {
  const gp::Graph g = build_standard_graph(a);
  part::GpResult r = part::partition_graph(g, K, cfg);

  ModelRun run;
  run.partitionSeconds = r.seconds;
  run.objective = r.edgeCut;
  run.imbalance = r.imbalance;
  run.numRecoveries = r.numRecoveries;
  run.numDegraded = r.numDegraded;
  run.decomp = decode_rowwise(a, r.partition.assignment(), K);
  return run;
}

}  // namespace fghp::model
