// The fine-grain hypergraph model for 2D decomposition — the paper's
// contribution (§3).
//
// One vertex per nonzero a_ij (unit weight; the atomic task
// y_i^j = a_ij * x_j). One row net m_i per row (pins: nonzeros of row i;
// models the fold of y_i) and one column net n_j per column (pins: nonzeros
// of column j; models the expand of x_j). The consistency condition
// "v_jj in pins[m_j] and pins[n_j]" is enforced by adding a zero-weight
// dummy vertex for every structurally-zero diagonal position, so a K-way
// partition decodes to owner(x_j) = owner(y_j) = part[v_jj] with the
// lambda-1 cutsize equal to the exact total communication volume.
#pragma once

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/partition.hpp"
#include "models/graph_model.hpp"  // ModelRun
#include "partition/config.hpp"
#include "partition/geo/points.hpp"
#include "sparse/csr.hpp"

namespace fghp::model {

struct FineGrainModel {
  hg::Hypergraph h;

  /// Vertices [0, numRealVertices) map 1:1 to stored nonzeros in CSR entry
  /// order; vertices [numRealVertices, |V|) are zero-weight dummies.
  idx_t numRealVertices = 0;

  /// diagVertex[j] = the vertex playing v_jj (a real vertex if a_jj is
  /// stored, a dummy otherwise).
  std::vector<idx_t> diagVertex;

  /// Net layout: row net m_i is net i; column net n_j is net numRows + j.
  idx_t row_net(idx_t i) const { return i; }
  idx_t col_net(idx_t j) const { return numRows + j; }
  idx_t numRows = 0;
};

/// Builds the fine-grain hypergraph of a square matrix (|V| = Z + #missing
/// diagonals, |N| = 2M).
FineGrainModel build_finegrain(const sparse::Csr& a);

/// Decodes a complete K-way partition of the fine-grain hypergraph:
/// proc(a_ij) = part[v_ij], owner(x_j) = owner(y_j) = part[v_jj].
Decomposition decode_finegrain(const sparse::Csr& a, const FineGrainModel& m,
                               const hg::Partition& p);

/// The fine-grain model as a weighted 2D point set — the substrate of the
/// fast-path partitioners (--method geometric / streaming). Point v sits at
/// (row, col) of nonzero a_ij with unit weight; zero-weight dummy points at
/// (j, j) cover missing diagonals. Vertex ids (CSR entry order, dummies
/// appended in diagonal order) are IDENTICAL to build_finegrain's, so a
/// point partition drops onto the hypergraph — and decodes — unchanged, and
/// the point set's coordinate lines are exactly the m_i / n_j nets.
struct FineGrainPoints {
  part::geo::GeoPoints pts;
  idx_t numRealVertices = 0;      ///< = nnz; [nnz, |V|) are dummies
  std::vector<idx_t> diagVertex;  ///< diagVertex[j] = the vertex playing v_jj
};

/// Builds the point-set form without materializing the hypergraph (O(Z + n),
/// no pin lists — the whole reason the fast paths are fast).
FineGrainPoints build_finegrain_points(const sparse::Csr& a);

/// Decodes a complete K-way point partition (same owner rule as above).
Decomposition decode_finegrain(const sparse::Csr& a, const FineGrainPoints& m,
                               const part::geo::GeoPartition& p);

/// Fine-grain 2D model end to end. Dispatches on cfg.method: the multilevel
/// hypergraph stack (paper quality), recursive geometric splits, geometric
/// plus one K-way FM sweep, or one-pass streaming (see DESIGN.md §15).
/// The fast paths always optimize — and report — the lambda-1 connectivity
/// objective (which for this model is the exact communication volume).
ModelRun run_finegrain(const sparse::Csr& a, idx_t K, const part::PartitionConfig& cfg);

}  // namespace fghp::model
