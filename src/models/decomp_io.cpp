#include "models/decomp_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace fghp::model {

namespace {

[[noreturn]] void fail(long line, const std::string& what) {
  std::ostringstream os;
  os << "decomposition parse error at line " << line << ": " << what;
  throw std::runtime_error(os.str());
}

}  // namespace

void write_decomposition(std::ostream& out, const Decomposition& d) {
  FGHP_REQUIRE(d.numProcs >= 1, "decomposition has no processors");
  FGHP_REQUIRE(d.xOwner.size() == d.yOwner.size(),
               "x/y owner maps must have equal length");
  out << "fghp-decomposition 1\n";
  out << "procs " << d.numProcs << '\n';
  out << "nnz " << d.nnzOwner.size() << '\n';
  for (idx_t p : d.nnzOwner) out << p << '\n';
  out << "vec " << d.xOwner.size() << '\n';
  for (std::size_t j = 0; j < d.xOwner.size(); ++j)
    out << d.xOwner[j] << ' ' << d.yOwner[j] << '\n';
}

void write_decomposition_file(const std::string& path, const Decomposition& d) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_decomposition(out, d);
}

Decomposition read_decomposition(std::istream& in) {
  long lineNo = 0;
  std::string line;
  auto next_line = [&]() -> std::string& {
    if (!std::getline(in, line)) fail(lineNo + 1, "unexpected end of input");
    ++lineNo;
    return line;
  };

  {
    std::istringstream banner(next_line());
    std::string magic;
    int version = 0;
    banner >> magic >> version;
    if (magic != "fghp-decomposition") fail(lineNo, "missing banner");
    if (version != 1) fail(lineNo, "unsupported version");
  }

  Decomposition d;
  long z = -1;
  {
    std::istringstream hdr(next_line());
    std::string tag;
    long k = 0;
    if (!(hdr >> tag >> k) || tag != "procs" || k < 1) fail(lineNo, "bad procs line");
    d.numProcs = static_cast<idx_t>(k);
  }
  {
    std::istringstream hdr(next_line());
    std::string tag;
    if (!(hdr >> tag >> z) || tag != "nnz" || z < 0) fail(lineNo, "bad nnz line");
  }
  d.nnzOwner.reserve(static_cast<std::size_t>(z));
  for (long e = 0; e < z; ++e) {
    std::istringstream es(next_line());
    long p;
    if (!(es >> p) || p < 0 || p >= d.numProcs) fail(lineNo, "owner out of range");
    d.nnzOwner.push_back(static_cast<idx_t>(p));
  }
  long m = -1;
  {
    std::istringstream hdr(next_line());
    std::string tag;
    if (!(hdr >> tag >> m) || tag != "vec" || m < 0) fail(lineNo, "bad vec line");
  }
  d.xOwner.reserve(static_cast<std::size_t>(m));
  d.yOwner.reserve(static_cast<std::size_t>(m));
  for (long j = 0; j < m; ++j) {
    std::istringstream vs(next_line());
    long x, y;
    if (!(vs >> x >> y) || x < 0 || x >= d.numProcs || y < 0 || y >= d.numProcs)
      fail(lineNo, "vector owner out of range");
    d.xOwner.push_back(static_cast<idx_t>(x));
    d.yOwner.push_back(static_cast<idx_t>(y));
  }
  return d;
}

Decomposition read_decomposition_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_decomposition(in);
}

}  // namespace fghp::model
