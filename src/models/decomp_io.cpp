#include "models/decomp_io.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace fghp::model {

namespace {

[[noreturn]] void fail(const std::string& path, long line, const std::string& what) {
  ErrorContext ctx;
  ctx.path = path;
  ctx.line = line;
  throw FormatError("decomposition parse error at line " + std::to_string(line) + ": " + what,
                    std::move(ctx));
}

/// FNV-1a over the decomposition's semantic content (counts + every owner
/// value), so any bit flip, truncation or count edit that survives the
/// per-line range checks is still caught by the trailing checksum line.
std::uint64_t mix(std::uint64_t h, std::uint64_t x) {
  for (int b = 0; b < 8; ++b) {
    h ^= (x >> (8 * b)) & 0xffU;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t content_checksum(const Decomposition& d) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, static_cast<std::uint64_t>(d.numProcs));
  h = mix(h, d.nnzOwner.size());
  for (idx_t p : d.nnzOwner) h = mix(h, static_cast<std::uint64_t>(p));
  h = mix(h, d.xOwner.size());
  for (std::size_t j = 0; j < d.xOwner.size(); ++j) {
    h = mix(h, static_cast<std::uint64_t>(d.xOwner[j]));
    h = mix(h, static_cast<std::uint64_t>(d.yOwner[j]));
  }
  return h;
}

}  // namespace

void write_decomposition(std::ostream& out, const Decomposition& d) {
  FGHP_REQUIRE(d.numProcs >= 1, "decomposition has no processors");
  FGHP_REQUIRE(d.xOwner.size() == d.yOwner.size(),
               "x/y owner maps must have equal length");
  fault::check("decomp.write");
  out << "fghp-decomposition 2\n";
  out << "procs " << d.numProcs << '\n';
  out << "nnz " << d.nnzOwner.size() << '\n';
  for (idx_t p : d.nnzOwner) out << p << '\n';
  out << "vec " << d.xOwner.size() << '\n';
  for (std::size_t j = 0; j < d.xOwner.size(); ++j)
    out << d.xOwner[j] << ' ' << d.yOwner[j] << '\n';
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(content_checksum(d)));
  out << "checksum " << hex << '\n';
}

void write_decomposition_file(const std::string& path, const Decomposition& d) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open for writing: " + path, at_path(path));
  write_decomposition(out, d);
  out.flush();
  if (!out) throw IoError("write failed: " + path, at_path(path));
}

Decomposition read_decomposition(std::istream& in, const std::string& path) {
  fault::check("decomp.read");
  long lineNo = 0;
  std::string line;
  auto next_line = [&]() -> std::string& {
    if (!std::getline(in, line)) fail(path, lineNo + 1, "unexpected end of input");
    ++lineNo;
    return line;
  };

  int version = 0;
  {
    std::istringstream banner(next_line());
    std::string magic;
    banner >> magic >> version;
    if (magic != "fghp-decomposition") fail(path, lineNo, "missing banner");
    if (version != 1 && version != 2)
      fail(path, lineNo, "unsupported version " + std::to_string(version));
  }

  Decomposition d;
  long z = -1;
  {
    std::istringstream hdr(next_line());
    std::string tag;
    long k = 0;
    if (!(hdr >> tag >> k) || tag != "procs" || k < 1) fail(path, lineNo, "bad procs line");
    d.numProcs = static_cast<idx_t>(k);
  }
  {
    std::istringstream hdr(next_line());
    std::string tag;
    if (!(hdr >> tag >> z) || tag != "nnz" || z < 0) fail(path, lineNo, "bad nnz line");
  }
  d.nnzOwner.reserve(static_cast<std::size_t>(z));
  for (long e = 0; e < z; ++e) {
    std::istringstream es(next_line());
    long p;
    if (!(es >> p) || p < 0 || p >= d.numProcs) fail(path, lineNo, "owner out of range");
    d.nnzOwner.push_back(static_cast<idx_t>(p));
  }
  long m = -1;
  {
    std::istringstream hdr(next_line());
    std::string tag;
    if (!(hdr >> tag >> m) || tag != "vec" || m < 0) fail(path, lineNo, "bad vec line");
  }
  d.xOwner.reserve(static_cast<std::size_t>(m));
  d.yOwner.reserve(static_cast<std::size_t>(m));
  for (long j = 0; j < m; ++j) {
    std::istringstream vs(next_line());
    long x, y;
    if (!(vs >> x >> y) || x < 0 || x >= d.numProcs || y < 0 || y >= d.numProcs)
      fail(path, lineNo, "vector owner out of range");
    d.xOwner.push_back(static_cast<idx_t>(x));
    d.yOwner.push_back(static_cast<idx_t>(y));
  }
  if (version >= 2) {
    std::istringstream cs(next_line());
    std::string tag, hex;
    if (!(cs >> tag >> hex) || tag != "checksum") fail(path, lineNo, "missing checksum line");
    std::uint64_t declared = 0;
    std::size_t used = 0;
    try {
      declared = std::stoull(hex, &used, 16);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != hex.size()) fail(path, lineNo, "malformed checksum");
    if (declared != content_checksum(d))
      fail(path, lineNo, "checksum mismatch — file is corrupt or was edited");
  }
  return d;
}

Decomposition read_decomposition_file(const std::string& path) {
  fault::check("decomp.open");
  std::ifstream in(path);
  if (!in) throw IoError("cannot open for reading: " + path, at_path(path));
  return read_decomposition(in, path);
}

}  // namespace fghp::model
