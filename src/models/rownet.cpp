#include "models/rownet.hpp"

#include "partition/hg/partitioner.hpp"
#include "sparse/convert.hpp"
#include "util/assert.hpp"
#include "util/trace.hpp"

namespace fghp::model {

hg::Hypergraph build_rownet_hypergraph(const sparse::Csr& a) {
  FGHP_REQUIRE(a.is_square(), "the row-net model requires a square matrix");
  const idx_t n = a.num_rows();
  trace::TraceScope span("model", "build.rownet", "n", n, "nnz", a.nnz());
  const sparse::Csr at = sparse::transpose(a);

  std::vector<weight_t> vwgt(static_cast<std::size_t>(n));
  for (idx_t j = 0; j < n; ++j)
    vwgt[static_cast<std::size_t>(j)] = std::max<weight_t>(1, at.row_size(j));

  std::vector<idx_t> xpins{0};
  std::vector<idx_t> pins;
  std::vector<weight_t> costs(static_cast<std::size_t>(n), 1);
  pins.reserve(static_cast<std::size_t>(a.nnz()) + static_cast<std::size_t>(n));
  for (idx_t i = 0; i < n; ++i) {
    bool hasDiag = false;
    for (idx_t j : a.row_cols(i)) {  // columns with a nonzero in row i
      pins.push_back(j);
      if (j == i) hasDiag = true;
    }
    if (!hasDiag) pins.push_back(i);  // consistency pin
    xpins.push_back(static_cast<idx_t>(pins.size()));
  }
  return hg::Hypergraph(n, std::move(xpins), std::move(pins), std::move(vwgt),
                        std::move(costs));
}

Decomposition decode_colwise(const sparse::Csr& a, const std::vector<idx_t>& colPart,
                             idx_t numProcs) {
  FGHP_REQUIRE(a.is_square(), "columnwise decode requires a square matrix");
  FGHP_REQUIRE(colPart.size() == static_cast<std::size_t>(a.num_cols()),
               "one part per column required");
  Decomposition d;
  d.numProcs = numProcs;
  d.nnzOwner.resize(static_cast<std::size_t>(a.nnz()));
  std::size_t e = 0;
  for (idx_t i = 0; i < a.num_rows(); ++i) {
    for (idx_t j : a.row_cols(i)) {
      d.nnzOwner[e++] = colPart[static_cast<std::size_t>(j)];
    }
  }
  d.xOwner = colPart;
  d.yOwner = colPart;
  validate(a, d);
  return d;
}

ModelRun run_rownet(const sparse::Csr& a, idx_t K, const part::PartitionConfig& cfg) {
  const hg::Hypergraph h = build_rownet_hypergraph(a);
  part::HgResult r = part::partition_hypergraph(h, K, cfg);

  ModelRun run;
  run.partitionSeconds = r.seconds;
  run.objective = r.cutsize;
  run.imbalance = r.imbalance;
  run.numRecoveries = r.numRecoveries;
  run.numDegraded = r.numDegraded;
  run.decomp = decode_colwise(a, r.partition.assignment(), K);
  return run;
}

}  // namespace fghp::model
