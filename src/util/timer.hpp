// Wall-clock timing helpers for the benchmark harnesses.
#pragma once

#include <chrono>

namespace fghp {

/// Monotonic wall-clock stopwatch. start() on construction; seconds() reads
/// the elapsed time without stopping.
class WallTimer {
 public:
  WallTimer() { reset(); }

  /// Restarts the stopwatch.
  void reset();

  /// Elapsed seconds since construction / last reset().
  double seconds() const;

  /// Elapsed milliseconds since construction / last reset().
  double millis() const { return seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Accumulates the total of several timed sections (partitioner phases).
class Accumulator {
 public:
  void add(double seconds) { total_ += seconds; ++count_; }
  double total() const { return total_; }
  long count() const { return count_; }
  double mean() const { return count_ ? total_ / static_cast<double>(count_) : 0.0; }

 private:
  double total_ = 0.0;
  long count_ = 0;
};

}  // namespace fghp
