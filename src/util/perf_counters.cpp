#include "util/perf_counters.hpp"

#include <atomic>
#include <cstring>
#include <mutex>
#include <string>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/options.hpp"
#include "util/trace.hpp"

#if defined(FGHP_PERF) && defined(__linux__)
#define FGHP_PERF_LIVE 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#include <cerrno>
#endif

namespace fghp::perf {

namespace {

// Process-wide probe verdict: 0 = not probed, 1 = available, 2 = refused.
// One verdict for the whole process: if the kernel refuses one thread it
// will refuse them all, and a single cached answer keeps read_thread() at
// one atomic load after the first call.
std::atomic<int> g_state{0};
std::atomic<bool> g_warned{false};
std::atomic<long> g_openAttempts{0};

std::atomic<bool>& enabled_flag() {
  // FGHP_PERF=1 in the environment enables counters at process start, the
  // same pattern as FGHP_TRACE; initialized lazily so tests that clear the
  // environment see a deterministic default.
  static std::atomic<bool> on{env_flag("FGHP_PERF")};
  return on;
}

void warn_unavailable(const char* why) {
  // Exactly one warning per process (per reset_for_test in tests): the
  // degradation is expected in containers/CI and must not flood stderr.
  bool expected = false;
  if (g_warned.compare_exchange_strong(expected, true))
    push_warning(std::string("hardware perf counters unavailable (") + why +
                 "); profiling counters will read as zero");
}

#ifdef FGHP_PERF_LIVE

constexpr int kNumEvents = 4;

/// The calling thread's counter group: fds[0] is the leader (cycles), the
/// rest attach to it, and one read(2) of the leader returns all four values
/// (PERF_FORMAT_GROUP). Closed automatically when the thread exits.
struct Group {
  int fds[kNumEvents] = {-1, -1, -1, -1};
  bool open = false;
  bool failed = false;  // this thread's open failed; never retry per thread

  ~Group() { close_all(); }

  void close_all() {
    for (int& fd : fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    open = false;
  }
};

thread_local Group t_group;

int open_one(const perf_event_attr& tmpl, int groupFd) {
  perf_event_attr attr = tmpl;
  return static_cast<int>(
      ::syscall(SYS_perf_event_open, &attr, 0 /* this thread */, -1 /* any cpu */,
                groupFd, 0UL));
}

bool try_open_group(Group& g) {
  const long attempt = g_openAttempts.fetch_add(1, std::memory_order_relaxed) + 1;
  if (fault::fired("perf.open", attempt)) {
    g.failed = true;
    g_state.store(2, std::memory_order_release);
    warn_unavailable("injected fault at site perf.open");
    return false;
  }

  struct EventDef {
    std::uint32_t type;
    std::uint64_t config;
  };
  const EventDef defs[kNumEvents] = {
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
      {PERF_TYPE_HW_CACHE,
       PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
           (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
  };

  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.read_format = PERF_FORMAT_GROUP;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;

  for (int i = 0; i < kNumEvents; ++i) {
    attr.type = defs[i].type;
    attr.config = defs[i].config;
    attr.disabled = i == 0 ? 1 : 0;  // the group starts stopped; enabled below
    g.fds[i] = open_one(attr, i == 0 ? -1 : g.fds[0]);
    if (g.fds[i] < 0) {
      // All-or-nothing: a partial group (e.g. no LLC event on this PMU)
      // would silently skew the derived rates, so any refusal downgrades
      // the whole process to the zeroed-counter path.
      const int err = errno;
      g.close_all();
      g.failed = true;
      g_state.store(2, std::memory_order_release);
      warn_unavailable(std::strerror(err));
      return false;
    }
  }
  ::ioctl(g.fds[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ::ioctl(g.fds[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  g.open = true;
  g_state.store(1, std::memory_order_release);
  return true;
}

Sample read_group(Group& g) {
  struct {
    std::uint64_t nr;
    std::uint64_t values[kNumEvents];
  } buf;
  const ssize_t n = ::read(g.fds[0], &buf, sizeof buf);
  Sample s;
  if (n != static_cast<ssize_t>(sizeof buf) || buf.nr != kNumEvents) return s;
  s.cycles = static_cast<std::int64_t>(buf.values[0]);
  s.instructions = static_cast<std::int64_t>(buf.values[1]);
  s.llcMisses = static_cast<std::int64_t>(buf.values[2]);
  s.branchMisses = static_cast<std::int64_t>(buf.values[3]);
  s.valid = true;
  return s;
}

#endif  // FGHP_PERF_LIVE

}  // namespace

Sample delta(const Sample& begin, const Sample& end) {
  Sample d;
  if (!begin.valid || !end.valid) return d;
  d.cycles = end.cycles - begin.cycles;
  d.instructions = end.instructions - begin.instructions;
  d.llcMisses = end.llcMisses - begin.llcMisses;
  d.branchMisses = end.branchMisses - begin.branchMisses;
  d.valid = true;
  return d;
}

bool compiled_in() {
#ifdef FGHP_PERF_LIVE
  return true;
#else
  return false;
#endif
}

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) { enabled_flag().store(on, std::memory_order_relaxed); }

Sample read_thread() {
  if (!enabled()) return {};
#ifdef FGHP_PERF_LIVE
  Group& g = t_group;
  if (!g.open) {
    if (g.failed || g_state.load(std::memory_order_acquire) == 2) return {};
    if (!try_open_group(g)) return {};
  }
  return read_group(g);
#else
  return {};
#endif
}

bool available() {
  if (!enabled()) return false;
  if (g_state.load(std::memory_order_acquire) == 0) (void)read_thread();  // probe
  return g_state.load(std::memory_order_acquire) == 1;
}

void reset_for_test() {
#ifdef FGHP_PERF_LIVE
  t_group.close_all();
  t_group.failed = false;
#endif
  g_state.store(0, std::memory_order_release);
  g_warned.store(false, std::memory_order_release);
}

CounterScope::CounterScope(const char* name) : name_(name) {
  if (!enabled()) return;
  begin_ = read_thread();
  if (begin_.valid) startNs_ = trace::now_ns();
}

CounterScope::~CounterScope() {
  if (!begin_.valid) return;
  const Sample d = delta(begin_, read_thread());
  if (!d.valid) return;
  const std::string base = std::string("perf.") + name_;
  metrics::counter(base + ".cycles").add(d.cycles);
  metrics::counter(base + ".instructions").add(d.instructions);
  metrics::counter(base + ".llc_misses").add(d.llcMisses);
  metrics::counter(base + ".branch_misses").add(d.branchMisses);
  trace::complete("perf", name_, startNs_, trace::now_ns(), "cycles", d.cycles,
                  "llc_misses", d.llcMisses);
}

}  // namespace fghp::perf
