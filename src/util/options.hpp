// Environment-variable driven options for the benchmark harnesses
// (FGHP_SEEDS, FGHP_FULL, FGHP_MATRICES, ...), plus tiny argv helpers for the
// example CLIs. Centralized so every bench documents and parses knobs the
// same way.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace fghp {

/// Reads an environment variable; nullopt if unset or empty.
std::optional<std::string> env_str(const char* name);

/// Integer env var with default; throws std::invalid_argument on garbage.
long env_long(const char* name, long fallback);

/// Boolean env var: unset/"0"/"false"/"no" => false, anything else => true.
bool env_flag(const char* name, bool fallback = false);

/// Comma-separated list env var (trimmed, empty items dropped).
std::vector<std::string> env_list(const char* name);

/// Minimal positional/flag argv scanner for the example programs:
/// flags are "--name value" or "--name=value"; positionals kept in order.
class ArgParser {
 public:
  ArgParser(int argc, char** argv);

  /// Value of --name, or nullopt.
  std::optional<std::string> flag(const std::string& name) const;

  /// Value of --name as long, or fallback.
  long flag_long(const std::string& name, long fallback) const;

  /// Presence of a bare switch --name (no value).
  bool has_switch(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::vector<std::pair<std::string, std::string>> flags_;
  std::vector<std::string> switches_;
  std::vector<std::string> positional_;
};

}  // namespace fghp
