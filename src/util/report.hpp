// Post-run analysis: turns the in-memory observability state — the tracer's
// span buffers (trace::snapshot_events) and the metrics registry
// (metrics::Registry::snapshot) — into one versioned, structured RunReport:
//
//  * per-phase wall time, summed busy time, fork-join critical path and
//    parallel efficiency (phase = every distinct span name; see DESIGN.md
//    §16 for the formulas),
//  * per-worker utilization and trace-drop accounting,
//  * hardware-counter totals (util/perf_counters) with availability flags,
//  * a modeled-vs-measured communication-volume audit: the paper's λ−1
//    cutsize prices the volume exactly, so the executor's measured
//    expand/fold word counters must equal comm::analyze's per-iteration
//    totals times the iteration count — the report flags any divergence,
//  * the per-processor send/recv word matrix with load-imbalance stats,
//  * and a full metrics dump (counters/histograms as deltas over the run,
//    gauges as current values).
//
// The Builder is created at the start of a run (it baselines the metrics
// registry and the clocks), fed the modeled quantities the caller knows
// (comm::analyze totals, matrix info), and asked to build() at the end —
// including on the failure path, honoring the CLIs' written-even-on-failure
// contract. `fghp_tool report FILE` renders a saved report back into tables
// (render_file). The JSON document is the intended payload of the future
// fghp_serve /stats endpoint (ROADMAP item 1).
//
// This lives in util (base layer): it knows nothing of matrices or plans,
// only plain numbers the caller computed with comm::analyze etc.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/metrics.hpp"

namespace fghp::report {

inline constexpr int kRunReportVersion = 1;

/// Aggregate over every span with one name. Efficiency = busy / (workers *
/// wall), which is 1.0 when every participating thread was busy for the
/// phase's whole wall-clock extent — by construction always in (0, 1].
struct PhaseStat {
  std::string name;
  long long spans = 0;             ///< span events aggregated
  int workers = 0;                 ///< distinct recording threads
  double wallMs = 0.0;             ///< max end - min start over all spans
  double busyMs = 0.0;             ///< per-thread interval-union, summed
  double criticalPathMs = 0.0;     ///< busiest single thread's union
  double parallelEfficiency = 1.0;
};

struct WorkerStat {
  std::uint32_t tid = 0;
  double busyMs = 0.0;       ///< union of all spans recorded by this thread
  double utilization = 0.0;  ///< busyMs / whole-run span extent, in (0, 1]
};

struct PerfStat {
  bool compiledIn = false;
  bool enabled = false;
  bool available = false;
  // Summed over every "perf.*" counter delta of the run (the per-scope and
  // per-workload breakdown stays in the metrics section).
  long long cycles = 0;
  long long instructions = 0;
  long long llcMisses = 0;
  long long branchMisses = 0;
};

/// Modeled-vs-measured volume. Measured values are metric deltas of
/// "<metricPrefix>.{iterations,expand.words,fold.words,messages}" over the
/// run; modeled values are per-iteration totals from comm::analyze (or the
/// plan — the tests pin them equal). matches == the exact equalities
/// measured == modeled * iterations, which hold on every clean path and
/// break when an executor under-delivered (e.g. a cancelled iteration).
struct VolumeAudit {
  bool present = false;
  std::string metricPrefix;
  long long iterations = 0;
  long long modeledExpandWords = 0;
  long long modeledFoldWords = 0;
  long long modeledMessages = 0;
  long long measuredExpandWords = 0;
  long long measuredFoldWords = 0;
  long long measuredMessages = 0;
  bool matches = true;
};

/// Per-processor send/recv words of one modeled iteration, with the load-
/// imbalance statistics of Table 2's "max" column.
struct ProcCommStat {
  bool present = false;
  std::vector<long long> sendWords;
  std::vector<long long> recvWords;
  long long totalWords = 0;
  long long maxProcWords = 0;       ///< max_p send[p] + recv[p]
  double avgProcWords = 0.0;
  double imbalancePercent = 0.0;    ///< 100 * (max / avg - 1)
};

struct RunReport {
  int version = kRunReportVersion;
  std::string tool;
  std::string command;
  std::string status = "ok";  ///< "ok" | "error"
  std::string error;          ///< what() of the failure, when status=="error"
  double wallMs = 0.0;
  double cpuMs = 0.0;  ///< process user+system CPU over the run
  std::map<std::string, std::string> info;  ///< free-form caller context

  bool traceEnabled = false;
  long long traceEvents = 0;
  long long traceDropped = 0;

  std::vector<PhaseStat> phases;    ///< ordered by first span start
  std::vector<WorkerStat> workers;  ///< ordered by tid
  PerfStat perf;
  VolumeAudit audit;
  ProcCommStat comm;

  /// Counters and histograms as deltas over the run, gauges as-is.
  metrics::Snapshot metricsDelta;
};

/// Accumulates a run's context, then assembles the report. Construct before
/// the work starts — the constructor baselines the metrics registry and the
/// wall/CPU clocks, so the report describes this run, not the process.
class Builder {
 public:
  Builder(std::string tool, std::string command);

  /// Free-form context (matrix name, model, K, ...).
  void info(const std::string& key, std::string value);
  void info(const std::string& key, long long value);

  /// Marks the run failed; build() then reports status "error".
  void set_error(std::string message);

  /// Arms the volume audit: the caller's modeled per-iteration totals
  /// (comm::analyze / plan) against the executor's metric deltas under
  /// `metricPrefix` ("spmv", "spgemm").
  void expect_volume(std::string metricPrefix, long long expandWordsPerIter,
                     long long foldWordsPerIter, long long messagesPerIter);

  /// Per-processor send/recv words of one modeled iteration.
  void set_proc_comm(std::vector<long long> sendWords,
                     std::vector<long long> recvWords);

  /// Snapshots trace + metrics and computes every derived statistic. Call at
  /// a quiescent point (same contract as the trace exporters). Idempotent —
  /// the failure path may build after a partial run.
  RunReport build() const;

 private:
  std::string tool_, command_, error_;
  std::map<std::string, std::string> info_;
  std::uint64_t startNs_ = 0;
  double startCpuMs_ = 0.0;
  metrics::Snapshot baseline_;
  bool auditArmed_ = false;
  std::string auditPrefix_;
  long long expectExpand_ = 0, expectFold_ = 0, expectMessages_ = 0;
  ProcCommStat comm_;
};

/// Serializes the report as JSON (schema: DESIGN.md §16).
void write_json(const RunReport& r, std::ostream& out);

/// Same, to a file — or stdout when the path is "-" (the --report-out
/// contract). Throws IoError on write failure.
void write_file(const RunReport& r, const std::string& pathOrDash);

/// Renders a saved RunReport JSON file as human-readable tables (the
/// `fghp_tool report` subcommand). Throws IoError / FormatError.
void render_file(const std::string& path, std::ostream& out);

// ------------------------------------------------------------------------
// Minimal generic JSON value + recursive-descent parser: enough to read back
// our own documents (reports, metrics, traces) for rendering and tests.
// Numbers are doubles; objects are name-sorted maps.
namespace jv {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::map<std::string, Value> object;
  std::vector<Value> array;

  bool has(const std::string& key) const;
  /// Member access; throws FormatError when absent or not an object.
  const Value& at(const std::string& key) const;
  long long as_int() const { return static_cast<long long>(number); }
};

/// Parses one JSON document. Throws FormatError on malformed input.
Value parse(const std::string& text);

}  // namespace jv

}  // namespace fghp::report
