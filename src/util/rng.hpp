// Deterministic pseudo-random number generation.
//
// The partitioners must be reproducible given a seed (the paper averages over
// 50 seeded runs), so we ship our own generator rather than rely on
// implementation-defined std::shuffle/std::mt19937 distribution details:
//  * splitmix64 — seed expansion,
//  * xoshiro256** — the workhorse stream,
//  * bias-free bounded integers, Fisher-Yates shuffle, random permutations.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace fghp {

/// splitmix64 step; used to expand a user seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound), bias-free (Lemire's method with rejection).
  /// bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform idx_t in [lo, hi] inclusive. Requires lo <= hi.
  idx_t uniform(idx_t lo, idx_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Random permutation of {0, ..., n-1}.
  std::vector<idx_t> permutation(idx_t n);

  /// Derives an independent child stream (e.g. per recursion branch).
  Rng spawn();

 private:
  std::uint64_t s_[4];
};

}  // namespace fghp
