#include "util/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"
#include "util/error.hpp"

namespace fghp::metrics {

Histogram::Histogram(std::vector<std::int64_t> bounds) : bounds_(std::move(bounds)) {
  FGHP_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be ascending");
  counts_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(std::int64_t x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
}

std::int64_t Histogram::bucket_count(std::size_t i) const {
  return counts_[i].load(std::memory_order_relaxed);
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& n : counters_)
    if (n.name == name) return *n.metric;
  counters_.push_back({name, std::make_unique<Counter>()});
  return *counters_.back().metric;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& n : gauges_)
    if (n.name == name) return *n.metric;
  gauges_.push_back({name, std::make_unique<Gauge>()});
  return *gauges_.back().metric;
}

Histogram& Registry::histogram(const std::string& name, std::vector<std::int64_t> bounds) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& n : histograms_)
    if (n.name == name) return *n.metric;
  histograms_.push_back({name, std::make_unique<Histogram>(std::move(bounds))});
  return *histograms_.back().metric;
}

namespace {

void json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\')
      out << '\\' << c;
    else if (static_cast<unsigned char>(c) < 0x20)
      out << ' ';
    else
      out << c;
  }
  out << '"';
}

}  // namespace

Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& n : counters_) snap.counters[n.name] = n.metric->value();
  for (const auto& n : gauges_) snap.gauges[n.name] = n.metric->value();
  for (const auto& n : histograms_) {
    HistogramSnapshot s;
    s.bounds = n.metric->bounds();
    for (std::size_t i = 0; i < n.metric->num_buckets(); ++i)
      s.counts.push_back(n.metric->bucket_count(i));
    s.count = n.metric->count();
    s.sum = n.metric->sum();
    snap.histograms[n.name] = std::move(s);
  }
  return snap;
}

void Registry::write_json(std::ostream& out) const {
  // Copy name -> value snapshots under the lock, then format sorted.
  const Snapshot snap = snapshot();
  const auto& counters = snap.counters;
  const auto& gauges = snap.gauges;
  const auto& hists = snap.histograms;

  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(out, name);
    out << ": " << v;
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(out, name);
    out << ": " << v;
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, s] : hists) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(out, name);
    out << ": {\"bounds\": [";
    for (std::size_t i = 0; i < s.bounds.size(); ++i)
      out << (i ? "," : "") << s.bounds[i];
    out << "], \"counts\": [";
    for (std::size_t i = 0; i < s.counts.size(); ++i)
      out << (i ? "," : "") << s.counts[i];
    out << "], \"count\": " << s.count << ", \"sum\": " << s.sum << '}';
  }
  out << "\n  }\n}\n";
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& n : counters_) n.metric->reset();
  for (auto& n : gauges_) n.metric->reset();
  for (auto& n : histograms_) n.metric->reset();
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

void write_global_json(const std::string& pathOrDash) {
  if (pathOrDash == "-") {
    Registry::global().write_json(std::cout);
    std::cout.flush();
    return;
  }
  std::ofstream out(pathOrDash);
  if (!out)
    throw IoError("cannot open metrics file for writing: " + pathOrDash,
                  at_path(pathOrDash));
  Registry::global().write_json(out);
  out.flush();
  if (!out) throw IoError("metrics write failed: " + pathOrDash, at_path(pathOrDash));
}

}  // namespace fghp::metrics
