// Hardware performance counters for profiling runs: one per-thread
// perf_event_open(2) counter group measuring CPU cycles, retired
// instructions, last-level-cache read misses and branch misses.
//
// Layered gates, so every configuration degrades to the same observable
// behavior (zeroed counters) without changing any computed result:
//
//  * Compile time — the FGHP_PERF CMake option (ON by default on Linux)
//    defines the FGHP_PERF macro; with it OFF, or on a non-Linux target,
//    every function here is a stub and compiled_in() is false.
//  * Runtime availability — the first thread that tries to open the group
//    probes the syscall once per process. Containers and locked-down CI
//    commonly refuse it (EPERM under perf_event_paranoid, ENOENT when the
//    PMU is not exposed); the probe then marks counters unavailable for the
//    whole process and pushes a single warning. The fault site "perf.open"
//    (ordinal = 1-based open attempt) forces this path deterministically in
//    tests.
//  * Runtime enablement — counters are off by default and turned on by the
//    CLIs' --perf flag, the benches, or the FGHP_PERF=1 environment
//    variable. While disabled, read_thread() is one relaxed atomic load.
//
// Counters only ever *observe* the computation — no result depends on them —
// so traced/untraced and counted/uncounted runs are bit-identical, which
// test_report pins across thread counts.
//
// Reading is a single read(2) into a stack buffer (no heap allocation), so
// per-iteration sampling keeps the executor's zero-allocation contract.
// Hot paths sample read_thread() around a region and accumulate the delta
// into pre-resolved metrics counters; the RAII CounterScope is the
// convenience wrapper for coarse phases (it resolves its metrics by name on
// destruction, so it is not for per-iteration use).
#pragma once

#include <cstdint>

namespace fghp::perf {

/// One cumulative reading of the calling thread's counter group. Deltas of
/// two valid samples measure the region between them; `valid` is false when
/// counters are compiled out, disabled, or unavailable — all four values
/// then read zero.
struct Sample {
  std::int64_t cycles = 0;
  std::int64_t instructions = 0;
  std::int64_t llcMisses = 0;
  std::int64_t branchMisses = 0;
  bool valid = false;
};

/// end - begin, component-wise; valid only when both samples are.
Sample delta(const Sample& begin, const Sample& end);

/// True when the library was built with FGHP_PERF on a Linux target.
bool compiled_in();

/// True once the calling process has successfully opened a counter group.
/// The first call (with counters enabled) performs the probe; a refusal is
/// cached process-wide and reported with one warning. Always false while
/// enabled() is false — probing is never done behind the user's back.
bool available();

/// The runtime gate (--perf / FGHP_PERF=1 / set_enabled). Reading it is one
/// relaxed atomic load.
bool enabled();
void set_enabled(bool on);

/// Cumulative counters of the calling thread (each thread lazily opens its
/// own group on first use). Invalid — all zeros — whenever any gate above is
/// closed or the group cannot be opened.
Sample read_thread();

/// Test-only: closes the calling thread's group and clears the process-wide
/// availability verdict and its once-only warning, so a test can re-probe
/// under a "perf.open" fault spec.
void reset_for_test();

/// RAII profile of a coarse phase: samples at construction and destruction,
/// accumulates the delta into the registered counters
/// "perf.<name>.{cycles,instructions,llc_misses,branch_misses}" and — when
/// tracing is on — records a "perf" trace span carrying the cycle and
/// LLC-miss deltas. `name` must have static storage duration. A no-op
/// whenever counters are disabled or unavailable. Resolves its metrics by
/// name (allocating) on destruction: use it around phases, not iterations.
class CounterScope {
 public:
  explicit CounterScope(const char* name);
  ~CounterScope();

  CounterScope(const CounterScope&) = delete;
  CounterScope& operator=(const CounterScope&) = delete;

 private:
  const char* name_;
  Sample begin_;
  std::uint64_t startNs_ = 0;
};

}  // namespace fghp::perf
