// Column-aligned ASCII table printer used by the benchmark harnesses to
// regenerate the paper's tables in a readable form.
#pragma once

#include <string>
#include <vector>

namespace fghp {

class Table {
 public:
  /// Column headers define the column count; every later row must match it.
  explicit Table(std::vector<std::string> headers);

  /// Appends a data row (strings pre-formatted by the caller).
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void add_separator();

  /// Formats numbers with fixed precision; convenience for callers.
  static std::string num(double v, int precision = 2);
  static std::string num(long long v);

  /// Renders the table; every column is right-aligned except the first.
  std::string to_string() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  static constexpr const char* kSepMarker = "\x01sep";
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fghp
