#include "util/error.hpp"

#include <mutex>
#include <sstream>
#include <utility>

namespace fghp {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kGeneric: return "error";
    case ErrorCode::kUsage: return "usage";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kFormat: return "format";
    case ErrorCode::kInvariant: return "invariant";
    case ErrorCode::kInfeasible: return "infeasible";
    case ErrorCode::kFault: return "fault";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kDeadline: return "deadline";
  }
  return "error";
}

std::string Error::decorate(const std::string& what, const ErrorContext& ctx) {
  std::ostringstream os;
  os << what;
  if (!ctx.path.empty() && ctx.line > 0) {
    os << " (" << ctx.path << ", line " << ctx.line << ")";
  } else if (!ctx.path.empty()) {
    os << " (" << ctx.path << ")";
  } else if (ctx.line > 0) {
    os << " (line " << ctx.line << ")";
  }
  if (!ctx.phase.empty()) os << " [" << ctx.phase << "]";
  if (ctx.part >= 0) os << " (part " << ctx.part << ")";
  return os.str();
}

Error::Error(ErrorCode code, const std::string& what, ErrorContext ctx)
    : std::runtime_error(decorate(what, ctx)), code_(code), ctx_(std::move(ctx)) {}

namespace {

/// Common category of a set of exceptions (kGeneric when mixed or unknown).
ErrorCode common_code(const std::vector<std::exception_ptr>& errors) {
  ErrorCode common = ErrorCode::kGeneric;
  bool first = true;
  for (const auto& ep : errors) {
    ErrorCode code = ErrorCode::kGeneric;
    try {
      std::rethrow_exception(ep);
    } catch (const Error& e) {
      code = e.code();
    } catch (...) {
    }
    if (first) {
      common = code;
      first = false;
    } else if (code != common) {
      return ErrorCode::kGeneric;
    }
  }
  return common;
}

/// Context of the first contained Error that has any context set, so that
/// e.g. the phase recorded by a cancellation check-point survives the
/// fork-join rethrow as an AggregateError.
ErrorContext first_context(const std::vector<std::exception_ptr>& errors) {
  for (const auto& ep : errors) {
    try {
      std::rethrow_exception(ep);
    } catch (const Error& e) {
      const ErrorContext& ctx = e.context();
      if (!ctx.path.empty() || ctx.line > 0 || !ctx.phase.empty() || ctx.part >= 0) return ctx;
    } catch (...) {
    }
  }
  return {};
}

std::string aggregate_message(const std::vector<std::exception_ptr>& errors) {
  std::ostringstream os;
  os << errors.size() << " concurrent tasks failed:";
  for (const auto& ep : errors) {
    os << "\n  - ";
    try {
      std::rethrow_exception(ep);
    } catch (const std::exception& e) {
      os << e.what();
    } catch (...) {
      os << "unknown exception";
    }
  }
  return os.str();
}

}  // namespace

AggregateError::AggregateError(std::vector<std::exception_ptr> errors)
    : Error(common_code(errors), aggregate_message(errors), first_context(errors)),
      errors_(std::move(errors)) {}

int exit_code(const std::exception& e) {
  if (const auto* err = dynamic_cast<const Error*>(&e)) {
    return static_cast<int>(err->code());
  }
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr) {
    return static_cast<int>(ErrorCode::kUsage);
  }
  return static_cast<int>(ErrorCode::kGeneric);
}

namespace {

std::mutex& warning_mutex() {
  static std::mutex mu;
  return mu;
}

std::vector<std::string>& warning_log() {
  static std::vector<std::string> log;
  return log;
}

}  // namespace

void push_warning(std::string message) {
  std::lock_guard<std::mutex> lk(warning_mutex());
  warning_log().push_back(std::move(message));
}

std::vector<std::string> drain_warnings() {
  std::lock_guard<std::mutex> lk(warning_mutex());
  std::vector<std::string> out;
  out.swap(warning_log());
  return out;
}

std::size_t warning_count() {
  std::lock_guard<std::mutex> lk(warning_mutex());
  return warning_log().size();
}

}  // namespace fghp
