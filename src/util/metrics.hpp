// Process-wide metrics registry: monotonic counters, gauges and fixed-bucket
// histograms, all updatable concurrently with relaxed atomics.
//
// Two usage patterns:
//
//  * Registered metrics — Registry::global().counter("spmv.expand.words")
//    returns a reference that stays valid for the process lifetime. Hot
//    paths resolve the reference once (function-local static / member) and
//    then pay one atomic add per update. The registry serializes to a flat
//    JSON document (write_json) for the CLIs' --metrics-out flag and the
//    bench harnesses.
//
//  * Standalone instances — Counter / Gauge / Histogram are plain objects;
//    a scoped computation (one ExecSession::run_mt call) can own private
//    counters that concurrent tasks update, read them into its result
//    struct, and fold the totals into the registered metrics afterwards.
//
// Metric names are dot-separated paths ("spmv.task_retries"). Recording is
// always on: an atomic add is cheap enough that metrics need no enable gate
// (tracing, which records *events*, is the gated layer — see util/trace.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fghp::metrics {

/// Monotonic counter (resettable for test isolation).
class Counter {
 public:
  void add(std::int64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-write-wins sampled value.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram. `bounds` are ascending inclusive upper bounds;
/// an implicit overflow bucket catches everything above the last bound.
/// Bucket layout is fixed at construction, so observe() is a binary search
/// plus two atomic adds — safe from any thread.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void observe(std::int64_t x);

  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  std::size_t num_buckets() const { return bounds_.size() + 1; }
  std::int64_t bucket_count(std::size_t i) const;
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<std::int64_t> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> counts_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

/// Value copy of one histogram (bounds plus per-bucket counts).
struct HistogramSnapshot {
  std::vector<std::int64_t> bounds;
  std::vector<std::int64_t> counts;  ///< bounds.size() + 1 (overflow bucket)
  std::int64_t count = 0;
  std::int64_t sum = 0;
};

/// Point-in-time value copy of a whole registry, ordered by name — what the
/// JSON serializer formats and what the post-run analyzer (util/report)
/// consumes and diffs.
struct Snapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Name -> metric map. Lookup creates on first use and returns a reference
/// that remains valid for the registry's lifetime (metrics are never
/// removed). Lookups take a mutex — resolve once, not per update.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is consulted only on first registration of `name`.
  Histogram& histogram(const std::string& name, std::vector<std::int64_t> bounds);

  /// Copies every metric's current value (one lock, values relaxed-read).
  Snapshot snapshot() const;

  /// Flat JSON: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Metrics appear sorted by name; histograms serialize bounds, per-bucket
  /// counts, total count and sum.
  void write_json(std::ostream& out) const;

  /// Zeroes every metric, keeping registrations (references stay valid).
  void reset();

  /// The process-global registry the pipeline reports into.
  static Registry& global();

 private:
  template <class M>
  struct Named {
    std::string name;
    std::unique_ptr<M> metric;
  };

  mutable std::mutex mu_;
  std::vector<Named<Counter>> counters_;
  std::vector<Named<Gauge>> gauges_;
  std::vector<Named<Histogram>> histograms_;
};

/// Shorthands for the global registry.
inline Counter& counter(const std::string& name) {
  return Registry::global().counter(name);
}
inline Gauge& gauge(const std::string& name) { return Registry::global().gauge(name); }
inline Histogram& histogram(const std::string& name, std::vector<std::int64_t> bounds) {
  return Registry::global().histogram(name, std::move(bounds));
}

/// write_json of the global registry to a file, or to stdout when path is
/// "-" (the CLIs' --metrics-out contract). Throws IoError on write failure.
void write_global_json(const std::string& pathOrDash);

}  // namespace fghp::metrics
