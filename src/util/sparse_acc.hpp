// Sparse accumulator ("SPA"): dense array + touched-list, the standard trick
// for accumulating scores over a tiny, changing subset of a huge universe in
// O(#touched) per round (used by coarsening to score candidate mates, by the
// hypergraph builder to dedupe pins, and by the comm analyzer to collect
// per-column processor sets).
#pragma once

#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace fghp {

template <typename Value>
class SparseAccumulator {
 public:
  explicit SparseAccumulator(idx_t universe = 0) { reset(universe); }

  /// Re-dimensions to a new universe size and clears.
  void reset(idx_t universe) {
    value_.assign(static_cast<std::size_t>(universe), Value{});
    mark_.assign(static_cast<std::size_t>(universe), false);
    touched_.clear();
  }

  idx_t universe() const { return static_cast<idx_t>(value_.size()); }

  /// Adds delta to slot key, registering it as touched on first contact.
  void add(idx_t key, Value delta) {
    const auto k = static_cast<std::size_t>(key);
    FGHP_ASSERT(k < value_.size());
    if (!mark_[k]) {
      mark_[k] = true;
      value_[k] = Value{};
      touched_.push_back(key);
    }
    value_[k] += delta;
  }

  /// True if key was touched since the last clear().
  bool touched(idx_t key) const { return mark_[static_cast<std::size_t>(key)]; }

  /// Current value of a touched slot (Value{} if untouched).
  Value value(idx_t key) const {
    const auto k = static_cast<std::size_t>(key);
    return mark_[k] ? value_[k] : Value{};
  }

  /// Keys touched since last clear, in first-touch order.
  const std::vector<idx_t>& keys() const { return touched_; }

  /// O(#touched) reset for the next round.
  void clear() {
    for (idx_t key : touched_) mark_[static_cast<std::size_t>(key)] = false;
    touched_.clear();
  }

 private:
  std::vector<Value> value_;
  std::vector<bool> mark_;
  std::vector<idx_t> touched_;
};

}  // namespace fghp
