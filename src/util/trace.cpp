#include "util/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "util/error.hpp"
#include "util/options.hpp"

namespace fghp::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}

namespace {

constexpr std::size_t kDefaultCapacity = 1u << 15;  // 32768 events per thread

using Kind = EventKind;

struct Event {
  std::uint64_t start = 0;  ///< ns since trace epoch
  std::uint64_t dur = 0;    ///< ns, spans only
  const char* cat = nullptr;
  const char* name = nullptr;
  const char* k0 = nullptr;
  const char* k1 = nullptr;
  std::int64_t v0 = 0;
  std::int64_t v1 = 0;
  double value = 0.0;  ///< counters only
  Kind kind = Kind::kInstant;
};

/// One fixed-capacity ring per thread. The owning thread is the only writer;
/// the head counter is monotonic, so slot (head % cap) always holds the
/// newest event and overflow silently retires the oldest. Readers snapshot
/// head with acquire ordering and walk the live window — consistent whenever
/// the writer is quiescent (the exporters' documented contract).
class ThreadBuffer {
 public:
  ThreadBuffer(std::uint32_t tid, std::size_t cap) : tid_(tid), slots_(cap) {}

  void push(const Event& e) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    slots_[static_cast<std::size_t>(h % slots_.size())] = e;
    head_.store(h + 1, std::memory_order_release);
  }

  std::uint32_t tid() const { return tid_; }

  std::uint64_t head() const { return head_.load(std::memory_order_acquire); }
  std::size_t capacity() const { return slots_.size(); }
  const Event& slot(std::uint64_t i) const {
    return slots_[static_cast<std::size_t>(i % slots_.size())];
  }

 private:
  std::uint32_t tid_;
  std::vector<Event> slots_;
  std::atomic<std::uint64_t> head_{0};
};

struct Registry {
  std::mutex mu;
  // shared_ptr keeps a buffer alive for export after its thread exits.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::size_t capacity = 0;  // 0 = not yet resolved (env / default)
  // Bumped by enable(new capacity) / reset(); stale thread-local buffers
  // re-register on their next emit.
  std::atomic<std::uint64_t> epoch{1};
};

Registry& registry() {
  static Registry r;
  return r;
}

thread_local std::shared_ptr<ThreadBuffer> t_buf;
thread_local std::uint64_t t_epoch = 0;

/// The always-on activity stack: the names of the spans currently open on
/// this thread, innermost last. Fixed capacity, no allocation; depth keeps
/// counting past kMaxDepth so pushes and pops stay balanced, with the
/// overflow levels simply unnamed. `slot` (when a watchdog registered one)
/// mirrors the innermost name for cross-thread readers.
struct ActivityState {
  static constexpr int kMaxDepth = 32;
  const char* names[kMaxDepth] = {};
  int depth = 0;
  std::atomic<const char*>* slot = nullptr;

  const char* top() const {
    return depth > 0 ? names[std::min(depth, kMaxDepth) - 1] : nullptr;
  }
  void publish() const {
    if (slot != nullptr) slot->store(top(), std::memory_order_release);
  }
};

thread_local ActivityState t_activity;

ThreadBuffer& local_buffer() {
  Registry& r = registry();
  const std::uint64_t ep = r.epoch.load(std::memory_order_acquire);
  if (t_epoch != ep || t_buf == nullptr) {
    std::lock_guard<std::mutex> lk(r.mu);
    auto buf = std::make_shared<ThreadBuffer>(static_cast<std::uint32_t>(r.buffers.size()),
                                              r.capacity == 0 ? kDefaultCapacity : r.capacity);
    r.buffers.push_back(buf);
    t_buf = std::move(buf);
    t_epoch = ep;
  }
  return *t_buf;
}

std::string& export_path() {
  static std::string path;
  return path;
}

/// FGHP_TRACE=path turns tracing on for the whole process and registers an
/// atexit export, so any repo binary is traceable with no code changes.
struct EnvInit {
  EnvInit() {
    const auto path = env_str("FGHP_TRACE");
    if (!path) return;
    export_path() = *path;
    enable();
    std::atexit([] {
      try {
        write_chrome_trace_file(export_path());
      } catch (...) {
        // Exit-time export is best-effort; never abort the process over it.
      }
    });
  }
};
const EnvInit g_envInit;

void json_escape(std::ostream& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      out << buf;
    } else {
      out << c;
    }
  }
}

void write_us(std::ostream& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  out << buf;
}

void write_args(std::ostream& out, const Event& e, bool withValue) {
  out << "\"args\":{";
  bool first = true;
  if (withValue) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", e.value);
    out << "\"value\":" << buf;
    first = false;
  }
  if (e.k0 != nullptr) {
    if (!first) out << ',';
    out << '"';
    json_escape(out, e.k0);
    out << "\":" << e.v0;
    first = false;
  }
  if (e.k1 != nullptr) {
    if (!first) out << ',';
    out << '"';
    json_escape(out, e.k1);
    out << "\":" << e.v1;
  }
  out << '}';
}

}  // namespace

namespace detail {

void emit_span(const char* cat, const char* name, std::uint64_t startNs,
               std::uint64_t endNs, const char* k0, std::int64_t v0, const char* k1,
               std::int64_t v1) {
  Event e;
  e.kind = Kind::kSpan;
  e.start = startNs;
  e.dur = endNs >= startNs ? endNs - startNs : 0;
  e.cat = cat;
  e.name = name;
  e.k0 = k0;
  e.v0 = v0;
  e.k1 = k1;
  e.v1 = v1;
  local_buffer().push(e);
}

void emit_instant(const char* cat, const char* name, const char* k0, std::int64_t v0,
                  const char* k1, std::int64_t v1) {
  Event e;
  e.kind = Kind::kInstant;
  e.start = now_ns();
  e.cat = cat;
  e.name = name;
  e.k0 = k0;
  e.v0 = v0;
  e.k1 = k1;
  e.v1 = v1;
  local_buffer().push(e);
}

void emit_counter(const char* cat, const char* name, double value, const char* k0,
                  std::int64_t v0) {
  Event e;
  e.kind = Kind::kCounter;
  e.start = now_ns();
  e.cat = cat;
  e.name = name;
  e.value = value;
  e.k0 = k0;
  e.v0 = v0;
  local_buffer().push(e);
}

void activity_push(const char* name) {
  ActivityState& a = t_activity;
  if (a.depth < ActivityState::kMaxDepth) a.names[a.depth] = name;
  ++a.depth;
  a.publish();
}

void activity_pop() {
  ActivityState& a = t_activity;
  if (a.depth > 0) --a.depth;
  a.publish();
}

}  // namespace detail

const char* current_activity() { return t_activity.top(); }

void publish_activity(std::atomic<const char*>* slot) {
  ActivityState& a = t_activity;
  if (a.slot != nullptr && a.slot != slot)
    a.slot->store(nullptr, std::memory_order_release);
  a.slot = slot;
  a.publish();
}

std::uint64_t now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

void enable(std::size_t perThreadCapacity) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::size_t cap = perThreadCapacity;
  if (cap == 0) {
    cap = r.capacity != 0
              ? r.capacity
              : static_cast<std::size_t>(std::max(
                    16L, env_long("FGHP_TRACE_CAP",
                                  static_cast<long>(kDefaultCapacity))));
  }
  cap = std::max<std::size_t>(cap, 4);
  if (cap != r.capacity) {
    r.capacity = cap;
    r.buffers.clear();
    r.epoch.fetch_add(1, std::memory_order_acq_rel);
  }
  detail::g_enabled.store(true, std::memory_order_release);
}

void disable() { detail::g_enabled.store(false, std::memory_order_release); }

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.buffers.clear();
  r.epoch.fetch_add(1, std::memory_order_acq_rel);
}

std::size_t event_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::size_t n = 0;
  for (const auto& b : r.buffers)
    n += static_cast<std::size_t>(std::min<std::uint64_t>(b->head(), b->capacity()));
  return n;
}

std::uint64_t dropped_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::uint64_t n = 0;
  for (const auto& b : r.buffers) {
    const std::uint64_t head = b->head();
    if (head > b->capacity()) n += head - b->capacity();
  }
  return n;
}

std::vector<EventView> snapshot_events() {
  std::vector<EventView> views;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (const auto& b : r.buffers) {
      const std::uint64_t head = b->head();
      const std::uint64_t lo = head > b->capacity() ? head - b->capacity() : 0;
      for (std::uint64_t i = lo; i < head; ++i) {
        const Event& e = b->slot(i);
        EventView v;
        v.kind = e.kind;
        v.tid = b->tid();
        v.startNs = e.start;
        v.durNs = e.dur;
        v.cat = e.cat;
        v.name = e.name;
        v.k0 = e.k0;
        v.k1 = e.k1;
        v.v0 = e.v0;
        v.v1 = e.v1;
        v.value = e.value;
        views.push_back(v);
      }
    }
  }
  std::stable_sort(views.begin(), views.end(),
                   [](const EventView& a, const EventView& b) {
                     return a.startNs < b.startNs;
                   });
  return views;
}

void write_chrome_trace(std::ostream& out) {
  // dropped_count() takes the registry lock after the snapshot released it;
  // both calls see the same state under the exporters' quiescence contract.
  const std::vector<EventView> views = snapshot_events();
  const std::uint64_t dropped = dropped_count();

  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":" << dropped
      << "},\"traceEvents\":[";
  bool first = true;
  for (const EventView& v : views) {
    Event e;  // reuse the arg formatter, which reads the internal type
    e.start = v.startNs;
    e.dur = v.durNs;
    e.cat = v.cat;
    e.name = v.name;
    e.k0 = v.k0;
    e.k1 = v.k1;
    e.v0 = v.v0;
    e.v1 = v.v1;
    e.value = v.value;
    e.kind = v.kind;
    if (!first) out << ',';
    first = false;
    out << "\n{\"ph\":\"";
    switch (e.kind) {
      case Kind::kSpan: out << 'X'; break;
      case Kind::kInstant: out << 'i'; break;
      case Kind::kCounter: out << 'C'; break;
    }
    out << "\",\"cat\":\"";
    json_escape(out, e.cat != nullptr ? e.cat : "");
    out << "\",\"name\":\"";
    json_escape(out, e.name != nullptr ? e.name : "");
    out << "\",\"pid\":1,\"tid\":" << v.tid << ",\"ts\":";
    write_us(out, e.start);
    if (e.kind == Kind::kSpan) {
      out << ",\"dur\":";
      write_us(out, e.dur);
    }
    if (e.kind == Kind::kInstant) out << ",\"s\":\"t\"";
    out << ',';
    write_args(out, e, e.kind == Kind::kCounter);
    out << '}';
  }
  out << "\n]}\n";
}

void write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open trace file for writing: " + path, at_path(path));
  write_chrome_trace(out);
  out.flush();
  if (!out) throw IoError("trace write failed: " + path, at_path(path));
}

ScopedCapture::ScopedCapture(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  wasEnabled_ = enabled();
  enable();
}

ScopedCapture::~ScopedCapture() {
  if (path_.empty()) return;
  try {
    write_chrome_trace_file(path_);
  } catch (...) {
    // Losing a trace must never fail the traced computation.
  }
  if (!wasEnabled_) disable();
}

}  // namespace fghp::trace
