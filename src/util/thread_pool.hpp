// Work-stealing task pool for the task-parallel partitioner stages.
//
// Recursive bisection is a fork-join tree: after one bisection the two
// sub-hypergraphs are fully independent, so each recursion level forks the
// two sides as tasks. The pool keeps one shared two-ended deque: workers
// take from the FIFO end (oldest = biggest subtrees), while a thread waiting
// on a TaskGroup steals from the LIFO end (newest = its own freshly forked
// children) — the scheduling order of a per-thread work-stealing deque with
// far less machinery, which is plenty because partitioner tasks are coarse.
//
// Determinism: the pool never makes scheduling visible to the algorithms —
// every fghp use pre-derives its per-task Rng streams before forking and
// writes to disjoint output ranges, so results are identical at any thread
// count (DESIGN.md invariant 7).
//
// FGHP_THREADS caps the default pool size (default: hardware concurrency;
// FGHP_THREADS=1 keeps every caller on the serial code path).
//
// Watchdog: set_watchdog_ms (or FGHP_WATCHDOG_MS) arms a monitor thread
// with a stall threshold. Workers publish per-task heartbeats (task start
// time + a task sequence number); the monitor scans them every half
// threshold and, when a worker has been inside one task for longer than the
// threshold, emits a trace instant + watchdog.stalls metric and dumps the
// in-flight task state to stderr — once per (worker, task), so a genuinely
// stuck task does not flood the log. The watchdog never kills anything: the
// pipeline's cancellation layer (util/cancel.hpp) is the cooperative path
// out, the watchdog is the flight recorder for tasks that stopped
// cooperating. The site "watchdog.stall" (ordinal = scan number) simulates
// a stall for tests without needing a real hung task.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fghp {

class TaskGroup;

class ThreadPool {
 public:
  /// Spawns totalThreads - 1 workers; the submitting thread is the last one
  /// (it executes tasks while waiting on a TaskGroup).
  explicit ThreadPool(int totalThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads plus the submitting thread.
  int num_threads() const;

  /// Adds workers until num_threads() >= totalThreads. Never shrinks.
  /// Throws InvariantError after shutdown().
  void grow_to(int totalThreads);

  /// Stops accepting work, drains the queue, and joins every worker and the
  /// watchdog thread. Idempotent; also run by the destructor. Forking
  /// through the pool afterwards is a typed InvariantError, never undefined
  /// behavior.
  void shutdown();

  /// Arms (ms > 0) or disarms (ms <= 0) the stall watchdog. The monitor
  /// thread is started on first arming and joined by shutdown().
  void set_watchdog_ms(long ms);

  /// One synchronous watchdog scan over the worker heartbeats; returns the
  /// number of stalls reported. Called periodically by the monitor thread,
  /// and directly by tests (deterministic, no sleeping required). The scan
  /// ordinal feeds the "watchdog.stall" fault site, which simulates a stall.
  long watchdog_scan();

  /// FGHP_WATCHDOG_MS if set and positive, else 0 (watchdog off).
  static long default_watchdog_ms();

  /// FGHP_THREADS if set and positive, else hardware_concurrency (min 1).
  static int default_num_threads();

  /// Process-wide pool, lazily built with default_num_threads().
  static ThreadPool& global();

  /// Pool to use for a run requesting `requested` threads (<= 0 = default):
  /// nullptr when the request resolves to one thread (serial path), else the
  /// global pool grown to the requested size.
  static ThreadPool* for_request(long requested);

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  /// Per-worker heartbeat, written by the worker without locks and read by
  /// the watchdog. busySinceNs == 0 means idle; seq increments at each task
  /// start so the watchdog can tell "same stuck task" from "new task".
  /// activity mirrors the worker's innermost active trace-span name
  /// (trace::publish_activity) so a stall report can say *what* is stuck,
  /// not just which worker; the strings have static storage duration.
  struct Beat {
    std::atomic<std::int64_t> busySinceNs{0};
    std::atomic<std::uint64_t> seq{0};
    std::atomic<const char*> activity{nullptr};
  };

  void enqueue(Task t);
  /// Steals from the LIFO end (help-while-waiting). False when empty.
  bool try_steal(Task& out);
  static void run_task(Task& t);
  void worker_loop(std::size_t index);
  void watchdog_loop();

  mutable std::mutex mu_;
  std::condition_variable workReady_;
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  std::deque<Beat> beats_;                    // parallel to workers_; stable addresses
  std::vector<std::uint64_t> lastReported_;   // last stall-reported seq per worker (mu_)
  bool stop_ = false;

  std::atomic<long> watchdogMs_{0};
  std::atomic<long> watchdogScans_{0};
  std::mutex wdMu_;
  std::condition_variable wdCv_;
  std::thread watchdog_;
  bool wdStop_ = false;
};

/// Fork-join scope over a pool: run() forks a task, wait() joins all tasks
/// forked through this group. wait() executes queued tasks itself instead of
/// blocking, so nested groups in recursive code cannot deadlock even on a
/// pool with zero workers. Task exceptions are all collected: if exactly one
/// task threw, wait() rethrows that exception unchanged; if several did,
/// wait() throws an AggregateError carrying every one of them.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> fn);
  void wait();

 private:
  friend class ThreadPool;
  void finish_one(std::exception_ptr err);

  ThreadPool& pool_;
  std::mutex mu_;
  std::condition_variable done_;
  long pending_ = 0;
  std::vector<std::exception_ptr> errs_;
};

/// fn(i) for i in [0, n), in parallel on the pool (serial when the pool has
/// a single thread). Blocks until every iteration completed.
void parallel_for(ThreadPool& pool, long n, const std::function<void(long)>& fn);

}  // namespace fghp
