#include "util/timer.hpp"

namespace fghp {

void WallTimer::reset() { start_ = std::chrono::steady_clock::now(); }

double WallTimer::seconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

}  // namespace fghp
