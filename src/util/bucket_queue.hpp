// Gain-bucket priority structure for Fiduccia–Mattheyses refinement.
//
// Classic FM bucket list: items (vertices) carry small integer gains in
// [-maxGain, +maxGain]; each bucket is an intrusive doubly-linked list so
// insert / remove / reprioritize are O(1) and pop-max is amortized O(1) via a
// descending max-pointer. LIFO order within a bucket (the traditional FM
// tie-break that favours recently touched vertices).
#pragma once

#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace fghp {

class BucketQueue {
 public:
  /// numItems — id universe [0, numItems); maxGain — |gain| bound.
  BucketQueue(idx_t numItems, idx_t maxGain) { reset(numItems, maxGain); }

  BucketQueue() = default;

  /// Re-dimensions and clears the structure.
  void reset(idx_t numItems, idx_t maxGain);

  /// Clears all buckets, keeping capacity.
  void clear();

  bool contains(idx_t item) const {
    return prev_[static_cast<std::size_t>(item)] != kNotQueued;
  }

  bool empty() const { return size_ == 0; }
  idx_t size() const { return size_; }

  /// Inserts item with the given gain. Item must not already be queued.
  void push(idx_t item, idx_t gain);

  /// Removes a queued item.
  void remove(idx_t item);

  /// Changes the gain of a queued item (O(1): unlink + relink).
  void update(idx_t item, idx_t newGain);

  /// Adds delta to a queued item's gain.
  void adjust(idx_t item, idx_t delta) { update(item, gain(item) + delta); }

  /// Gain of a queued item.
  idx_t gain(idx_t item) const {
    FGHP_ASSERT(contains(item));
    return gain_[static_cast<std::size_t>(item)];
  }

  /// Highest gain currently queued. Queue must be non-empty.
  idx_t max_gain();

  /// Removes and returns an item with the highest gain.
  idx_t pop_max();

 private:
  static constexpr idx_t kNotQueued = -2;
  static constexpr idx_t kNil = -1;

  std::size_t bucket_of(idx_t gain) const {
    FGHP_ASSERT(gain >= -maxGain_ && gain <= maxGain_);
    return static_cast<std::size_t>(gain + maxGain_);
  }

  void unlink(idx_t item);

  idx_t maxGain_ = 0;
  idx_t size_ = 0;
  idx_t cursor_ = 0;               // highest possibly-non-empty bucket index
  std::vector<idx_t> head_;        // bucket -> first item (kNil if empty)
  std::vector<idx_t> next_, prev_; // intrusive links; prev_ == kNotQueued when absent
  std::vector<idx_t> gain_;        // item -> current gain
};

inline void BucketQueue::reset(idx_t numItems, idx_t maxGain) {
  FGHP_ASSERT(numItems >= 0 && maxGain >= 0);
  maxGain_ = maxGain;
  size_ = 0;
  cursor_ = 0;
  head_.assign(static_cast<std::size_t>(2 * maxGain + 1), kNil);
  next_.assign(static_cast<std::size_t>(numItems), kNil);
  prev_.assign(static_cast<std::size_t>(numItems), kNotQueued);
  gain_.assign(static_cast<std::size_t>(numItems), 0);
}

inline void BucketQueue::clear() {
  size_ = 0;
  cursor_ = 0;
  std::fill(head_.begin(), head_.end(), kNil);
  std::fill(prev_.begin(), prev_.end(), kNotQueued);
}

inline void BucketQueue::push(idx_t item, idx_t gain) {
  FGHP_ASSERT(!contains(item));
  const std::size_t b = bucket_of(gain);
  const std::size_t it = static_cast<std::size_t>(item);
  gain_[it] = gain;
  next_[it] = head_[b];
  prev_[it] = kNil;  // head marker: prev==kNil means "first in bucket"
  if (head_[b] != kNil) prev_[static_cast<std::size_t>(head_[b])] = item;
  head_[b] = item;
  if (static_cast<idx_t>(b) > cursor_) cursor_ = static_cast<idx_t>(b);
  ++size_;
}

inline void BucketQueue::unlink(idx_t item) {
  const std::size_t it = static_cast<std::size_t>(item);
  const idx_t nxt = next_[it];
  const idx_t prv = prev_[it];
  if (prv == kNil) {
    head_[bucket_of(gain_[it])] = nxt;
  } else {
    next_[static_cast<std::size_t>(prv)] = nxt;
  }
  if (nxt != kNil) prev_[static_cast<std::size_t>(nxt)] = prv;
  prev_[it] = kNotQueued;
}

inline void BucketQueue::remove(idx_t item) {
  FGHP_ASSERT(contains(item));
  unlink(item);
  --size_;
}

inline void BucketQueue::update(idx_t item, idx_t newGain) {
  FGHP_ASSERT(contains(item));
  if (gain_[static_cast<std::size_t>(item)] == newGain) return;
  unlink(item);
  --size_;
  push(item, newGain);
}

inline idx_t BucketQueue::max_gain() {
  FGHP_ASSERT(!empty());
  while (head_[static_cast<std::size_t>(cursor_)] == kNil) {
    FGHP_ASSERT(cursor_ > 0);
    --cursor_;
  }
  return cursor_ - maxGain_;
}

inline idx_t BucketQueue::pop_max() {
  const idx_t g = max_gain();
  const idx_t item = head_[bucket_of(g)];
  remove(item);
  return item;
}

}  // namespace fghp
