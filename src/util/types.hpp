// Fundamental index and weight types shared by every module.
#pragma once

#include <cstdint>

namespace fghp {

/// Index type for rows, columns, vertices, nets and pins. 32-bit signed is
/// enough for the paper's scale (hundreds of thousands of nonzeros) while
/// halving memory traffic versus 64-bit indices.
using idx_t = std::int32_t;

/// Accumulation type for vertex weights, volumes and cut sizes. 64-bit so
/// sums over all pins can never overflow.
using weight_t = std::int64_t;

/// Invalid / unassigned sentinel for idx_t quantities (part ids, matches...).
inline constexpr idx_t kInvalidIdx = -1;

}  // namespace fghp
