#include "util/table.hpp"

#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace fghp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FGHP_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  FGHP_REQUIRE(row.size() == headers_.size(), "row width must match headers");
  rows_.push_back(std::move(row));
}

void Table::add_separator() { rows_.push_back({kSepMarker}); }

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSepMarker) continue;
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }

  auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      if (c == 0) {
        os << row[c] << std::string(width[c] - row[c].size(), ' ');
      } else {
        os << std::string(width[c] - row[c].size(), ' ') << row[c];
      }
    }
    os << '\n';
  };

  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);

  std::ostringstream os;
  emit_row(os, headers_);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSepMarker) {
      os << std::string(total, '-') << '\n';
    } else {
      emit_row(os, row);
    }
  }
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace fghp
