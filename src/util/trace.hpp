// Thread-safe hierarchical span tracer for the partition -> SpMV pipeline.
//
// Every instrumented site costs a single relaxed atomic load plus one branch
// while tracing is disabled (the default); RAII scopes additionally keep the
// always-on, allocation-free activity stack (current_activity()) so stall
// diagnostics can name the running phase even in untraced runs. When enabled — programmatically,
// via the FGHP_TRACE environment variable, or per partitioner run through
// PartitionConfig::traceOut — events are recorded into per-thread ring
// buffers with no locking and no heap allocation on the hot path, and can be
// exported as Chrome trace-event JSON (loadable in chrome://tracing or
// https://ui.perfetto.dev) at any quiescent point.
//
// Event kinds:
//   * span    — a named duration ("X" complete events). The RAII TraceScope
//               covers the synchronous case; now_ns() + complete() cover
//               fork-join tasks whose begin and end the caller brackets
//               explicitly.
//   * instant — a point event ("i"): fault-point fires, recovery-ladder
//               steps.
//   * counter — a sampled numeric series ("C"): per-processor expand/fold
//               word volume per SpMV iteration.
//
// String arguments (cat / name / arg keys) must have static storage duration
// (string literals, interned registry strings): events store the pointers,
// never copies. Each event carries up to two named integer args.
//
// Ring buffers drop the *oldest* events on overflow and count every drop
// (dropped_count(), also exported in the JSON). The default per-thread
// capacity is 32768 events; override with enable(capacity) or the
// FGHP_TRACE_CAP environment variable.
//
// FGHP_TRACE=trace.json enables tracing at process start and writes the file
// from an atexit handler, so any binary in the repo can be traced without
// code changes. Exporters read buffers without stopping writers; call them
// when instrumented threads are quiescent (joined or idle) for a consistent
// snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fghp::trace {

namespace detail {
extern std::atomic<bool> g_enabled;
void emit_span(const char* cat, const char* name, std::uint64_t startNs,
               std::uint64_t endNs, const char* k0, std::int64_t v0,
               const char* k1, std::int64_t v1);
void emit_instant(const char* cat, const char* name, const char* k0, std::int64_t v0,
                  const char* k1, std::int64_t v1);
void emit_counter(const char* cat, const char* name, double value, const char* k0,
                  std::int64_t v0);
// Always-on innermost-active-span bookkeeping (see current_activity()):
// a fixed-size thread_local name stack, no allocation, no atomics unless the
// thread registered a publish slot.
void activity_push(const char* name);
void activity_pop();
}  // namespace detail

/// The one-branch gate every instrumented site checks first.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Monotonic nanoseconds since the process trace epoch. Always available
/// (independent of enabled()); pairs with complete() for explicit
/// begin/end spans.
std::uint64_t now_ns();

/// Turns recording on. perThreadCapacity = events per thread ring; 0 keeps
/// the current capacity (first call: FGHP_TRACE_CAP or the 32768 default).
/// Changing the capacity discards previously recorded events.
void enable(std::size_t perThreadCapacity = 0);

/// Turns recording off. Recorded events are kept for export.
void disable();

/// Discards every recorded event and the drop counts (enabled state and
/// capacity unchanged).
void reset();

/// Events currently held across all thread buffers / events overwritten by
/// ring overflow since the last reset.
std::size_t event_count();
std::uint64_t dropped_count();

/// What kind of event an EventView describes (span "X" / instant "i" /
/// counter "C" in the Chrome export).
enum class EventKind : std::uint8_t { kSpan, kInstant, kCounter };

/// One recorded event, snapshotted for in-process analysis (util/report).
/// The string pointers are the original static-storage strings — valid for
/// the process lifetime, never copies.
struct EventView {
  EventKind kind = EventKind::kInstant;
  std::uint32_t tid = 0;     ///< recorder thread (dense per-process id)
  std::uint64_t startNs = 0; ///< ns since the trace epoch
  std::uint64_t durNs = 0;   ///< spans only
  const char* cat = nullptr;
  const char* name = nullptr;
  const char* k0 = nullptr;
  const char* k1 = nullptr;
  std::int64_t v0 = 0;
  std::int64_t v1 = 0;
  double value = 0.0;        ///< counters only
};

/// Copies every currently held event out of the ring buffers, sorted by
/// start time — the in-memory feed of the post-run analyzer (the Chrome
/// exporter is this plus formatting). Same consistency contract as the
/// exporters: call at a quiescent point.
std::vector<EventView> snapshot_events();

/// The name of the innermost span currently active on the calling thread
/// (TraceScope / ActivityScope / explicit activity push), or nullptr. This
/// bookkeeping is always on — unlike event recording it needs no enable() —
/// so stall diagnostics can attribute a phase even in untraced runs.
const char* current_activity();

/// Registers `slot` to mirror this thread's innermost active span name
/// (nullptr when idle) on every push/pop, with release stores so another
/// thread — the pool watchdog — can read it with acquire loads. Pass nullptr
/// to unregister (the old slot is cleared). The pointed-to names are
/// static-storage strings, safe to dereference from any thread at any time.
void publish_activity(std::atomic<const char*>* slot);

/// RAII activity marker without an event: names the enclosing work for
/// current_activity() / watchdog attribution at zero tracing cost. Use where
/// a span is already emitted by explicit brackets (begin/end pairs) but the
/// in-flight name still needs to be visible.
class ActivityScope {
 public:
  explicit ActivityScope(const char* name) { detail::activity_push(name); }
  ~ActivityScope() { detail::activity_pop(); }

  ActivityScope(const ActivityScope&) = delete;
  ActivityScope& operator=(const ActivityScope&) = delete;
};

/// Explicit-bracket span: record start = now_ns() yourself, then call
/// complete() at the end (on the thread that finished the work).
inline void complete(const char* cat, const char* name, std::uint64_t startNs,
                     std::uint64_t endNs, const char* k0 = nullptr, std::int64_t v0 = 0,
                     const char* k1 = nullptr, std::int64_t v1 = 0) {
  if (enabled()) detail::emit_span(cat, name, startNs, endNs, k0, v0, k1, v1);
}

/// Point event (fault fire, recovery step).
inline void instant(const char* cat, const char* name, const char* k0 = nullptr,
                    std::int64_t v0 = 0, const char* k1 = nullptr, std::int64_t v1 = 0) {
  if (enabled()) detail::emit_instant(cat, name, k0, v0, k1, v1);
}

/// Sampled numeric series; k0/v0 disambiguates the series (e.g. "proc", p).
inline void counter(const char* cat, const char* name, double value,
                    const char* k0 = nullptr, std::int64_t v0 = 0) {
  if (enabled()) detail::emit_counter(cat, name, value, k0, v0);
}

/// RAII span: one complete event from construction to destruction, recorded
/// on the destructing thread. While tracing is disabled it still maintains
/// the (allocation-free) activity stack for stall attribution, costing a few
/// thread-local stores on top of the one gate branch.
class TraceScope {
 public:
  explicit TraceScope(const char* cat, const char* name, const char* k0 = nullptr,
                      std::int64_t v0 = 0, const char* k1 = nullptr,
                      std::int64_t v1 = 0) {
    detail::activity_push(name);
    if (!enabled()) return;
    active_ = true;
    cat_ = cat;
    name_ = name;
    k0_ = k0;
    v0_ = v0;
    k1_ = k1;
    v1_ = v1;
    start_ = now_ns();
  }
  ~TraceScope() {
    if (active_) detail::emit_span(cat_, name_, start_, now_ns(), k0_, v0_, k1_, v1_);
    detail::activity_pop();
  }

  /// Replaces the span's args with values only known at the end of the scope
  /// (e.g. an entry count discovered while parsing). No-op while disabled.
  void set_args(const char* k0, std::int64_t v0, const char* k1 = nullptr,
                std::int64_t v1 = 0) {
    if (!active_) return;
    k0_ = k0;
    v0_ = v0;
    k1_ = k1;
    v1_ = v1;
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  bool active_ = false;
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  const char* k0_ = nullptr;
  const char* k1_ = nullptr;
  std::int64_t v0_ = 0;
  std::int64_t v1_ = 0;
  std::uint64_t start_ = 0;
};

/// Writes every recorded event as Chrome trace-event JSON
/// ({"traceEvents":[...]}). Events are sorted by start time; ts/dur are in
/// microseconds as the format requires.
void write_chrome_trace(std::ostream& out);

/// Same, to a file. Throws IoError if the file cannot be written.
void write_chrome_trace_file(const std::string& path);

/// Captures one region into a trace file: enables tracing on construction
/// (remembering whether it was already on) and writes `path` on destruction,
/// restoring the previous enabled state. An empty path is a no-op, so
/// callers can pass a config field through unconditionally. Export failures
/// are swallowed (a lost trace must never fail the traced computation).
class ScopedCapture {
 public:
  explicit ScopedCapture(std::string path);
  ~ScopedCapture();

  ScopedCapture(const ScopedCapture&) = delete;
  ScopedCapture& operator=(const ScopedCapture&) = delete;

 private:
  std::string path_;
  bool wasEnabled_ = false;
};

}  // namespace fghp::trace
