#include "util/cancel.hpp"

#include <limits>
#include <string>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace fghp::cancel {

namespace {

constexpr long kNoDeadlineMs = std::numeric_limits<long>::max() / 2;

}  // namespace

Deadline Deadline::after_ms(long ms) {
  Deadline d;
  if (ms < 0) return d;
  d.at_ = Clock::now() + std::chrono::milliseconds(ms);
  d.has_ = true;
  return d;
}

long Deadline::remaining_ms() const {
  if (!has_) return kNoDeadlineMs;
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(at_ - Clock::now()).count();
  return left > 0 ? static_cast<long>(left) : 0;
}

CancelToken CancelToken::manual() {
  return CancelToken(std::make_shared<State>());
}

CancelToken CancelToken::with_deadline_ms(long ms) {
  if (ms < 0) return {};
  auto state = std::make_shared<State>();
  state->deadline = Deadline::after_ms(ms);
  return CancelToken(std::move(state));
}

void CancelToken::cancel() const {
  if (state_ != nullptr) state_->cancelled.store(true, std::memory_order_release);
}

long CancelToken::remaining_ms() const {
  if (state_ == nullptr) return kNoDeadlineMs;
  return state_->deadline.remaining_ms();
}

Status poll(const CancelToken& token) {
  if (!token.active()) return Status::kRun;
  if (token.cancelled()) return Status::kCancelled;
  if (token.expired()) return Status::kDeadlineExpired;
  return Status::kRun;
}

Status check_point(const CancelToken& token, const char* phase, const char* faultSite,
                   long ordinal, bool deadlineThrows) {
  // Simulated cancellation via the fault harness first: it must work even
  // when no token is installed, so the check.sh sweep (which only sets
  // FGHP_FAULT_SPEC) exercises the cancellation propagation paths.
  if (faultSite != nullptr && fault::fired(faultSite, ordinal)) {
    static metrics::Counter& cancelled = metrics::counter("cancel.cancelled");
    cancelled.add();
    ErrorContext ctx;
    ctx.phase = phase;
    ctx.part = ordinal;
    throw CancelledError("run cancelled (injected)", std::move(ctx));
  }
  const Status st = poll(token);
  if (st == Status::kRun) return st;
  if (st == Status::kCancelled) {
    static metrics::Counter& cancelled = metrics::counter("cancel.cancelled");
    cancelled.add();
    trace::instant("cancel", "cancel.cancelled", "ordinal", ordinal);
    ErrorContext ctx;
    ctx.phase = phase;
    ctx.part = ordinal;
    throw CancelledError("run cancelled", std::move(ctx));
  }
  // Deadline expired.
  static metrics::Counter& expired = metrics::counter("cancel.deadline_expired");
  expired.add();
  trace::instant("cancel", "cancel.deadline", "ordinal", ordinal);
  if (deadlineThrows) {
    ErrorContext ctx;
    ctx.phase = phase;
    ctx.part = ordinal;
    throw DeadlineExceededError("deadline exceeded", std::move(ctx));
  }
  return st;
}

}  // namespace fghp::cancel
