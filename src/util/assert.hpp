// Lightweight assertion / precondition macros.
//
// FGHP_ASSERT  — internal invariant; compiled out in NDEBUG builds.
// FGHP_REQUIRE — public API precondition; always checked, throws
//                std::invalid_argument with a formatted message.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace fghp {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "FGHP_ASSERT failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace fghp

#ifdef NDEBUG
#define FGHP_ASSERT(expr) ((void)0)
#else
#define FGHP_ASSERT(expr) \
  ((expr) ? (void)0 : ::fghp::assert_fail(#expr, __FILE__, __LINE__))
#endif

#define FGHP_REQUIRE(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream fghp_oss_;                                    \
      fghp_oss_ << "precondition violated: " << (msg) << " [" << #expr \
                << "]";                                                \
      throw std::invalid_argument(fghp_oss_.str());                    \
    }                                                                  \
  } while (0)
