#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>

#include "util/assert.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/options.hpp"
#include "util/trace.hpp"

namespace fghp {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ThreadPool::ThreadPool(int totalThreads) {
  grow_to(totalThreads);
  const long wd = default_watchdog_ms();
  if (wd > 0) set_watchdog_ms(wd);
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lk(wdMu_);
    wdStop_ = true;
  }
  wdCv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  workReady_.notify_all();
  for (auto& w : workers_) w.join();
  {
    std::lock_guard<std::mutex> lk(mu_);
    workers_.clear();
  }
}

int ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(workers_.size()) + 1;
}

void ThreadPool::grow_to(int totalThreads) {
  std::lock_guard<std::mutex> lk(mu_);
  if (stop_) throw InvariantError("grow_to on a stopped thread pool");
  const auto want = static_cast<std::size_t>(std::max(0, totalThreads - 1));
  while (workers_.size() < want) {
    const std::size_t index = workers_.size();
    beats_.emplace_back();
    lastReported_.push_back(0);
    workers_.emplace_back([this, index] { worker_loop(index); });
  }
}

int ThreadPool::default_num_threads() {
  static const int n = [] {
    const long env = env_long("FGHP_THREADS", 0);
    if (env > 0) return static_cast<int>(env);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }();
  return n;
}

long ThreadPool::default_watchdog_ms() {
  static const long ms = [] {
    const long env = env_long("FGHP_WATCHDOG_MS", 0);
    return env > 0 ? env : 0;
  }();
  return ms;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_num_threads());
  return pool;
}

ThreadPool* ThreadPool::for_request(long requested) {
  const long n = requested > 0 ? requested : default_num_threads();
  if (n <= 1) return nullptr;
  ThreadPool& pool = global();
  pool.grow_to(static_cast<int>(n));
  return &pool;
}

void ThreadPool::set_watchdog_ms(long ms) {
  watchdogMs_.store(ms > 0 ? ms : 0, std::memory_order_release);
  if (ms <= 0) return;
  std::lock_guard<std::mutex> lk(wdMu_);
  if (wdStop_ || watchdog_.joinable()) return;
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

void ThreadPool::watchdog_loop() {
  std::unique_lock<std::mutex> lk(wdMu_);
  for (;;) {
    const long ms = watchdogMs_.load(std::memory_order_acquire);
    const long interval = ms > 0 ? std::clamp(ms / 2, 1L, 1000L) : 100L;
    wdCv_.wait_for(lk, std::chrono::milliseconds(interval), [this] { return wdStop_; });
    if (wdStop_) return;
    if (watchdogMs_.load(std::memory_order_acquire) > 0) {
      lk.unlock();
      watchdog_scan();
      lk.lock();
    }
  }
}

long ThreadPool::watchdog_scan() {
  struct Stall {
    long worker;       // -1 = simulated via the fault site
    long ageMs;
    std::uint64_t seq;
    const char* activity;  // innermost span name, nullptr when unattributed
  };
  const long scan = watchdogScans_.fetch_add(1, std::memory_order_relaxed) + 1;
  const long stallMs = watchdogMs_.load(std::memory_order_acquire);
  const std::int64_t nowNs = steady_now_ns();
  std::vector<Stall> stalls;
  std::size_t queueDepth = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    queueDepth = queue_.size();
    for (std::size_t i = 0; i < beats_.size(); ++i) {
      const std::int64_t since = beats_[i].busySinceNs.load(std::memory_order_acquire);
      const std::uint64_t seq = beats_[i].seq.load(std::memory_order_acquire);
      if (since == 0 || stallMs <= 0) continue;
      const std::int64_t ageNs = nowNs - since;
      if (ageNs < stallMs * 1'000'000 || lastReported_[i] == seq) continue;
      lastReported_[i] = seq;  // report each stuck task once, not every scan
      stalls.push_back({static_cast<long>(i), static_cast<long>(ageNs / 1'000'000), seq,
                        beats_[i].activity.load(std::memory_order_acquire)});
    }
  }
  // Simulated stall: the fault site records its own trace instant; the rest
  // of the reporting path (metric + stderr dump) is shared with real stalls.
  if (fault::fired("watchdog.stall", scan))
    stalls.push_back({-1, stallMs, 0, trace::current_activity()});
  if (stalls.empty()) return 0;
  static metrics::Counter& stalled = metrics::counter("watchdog.stalls");
  for (const Stall& s : stalls) {
    stalled.add();
    if (s.worker >= 0) trace::instant("watchdog", "watchdog.stall", "worker", s.worker);
    std::ostringstream os;
    if (s.worker >= 0) {
      os << "fghp watchdog: worker " << s.worker << " has been in one task for " << s.ageMs
         << " ms ";
      if (s.activity != nullptr)
        os << "in span '" << s.activity << "' ";
      else
        os << "(no active span) ";
      os << "(task #" << s.seq << ", threshold " << stallMs << " ms, queue depth "
         << queueDepth << ")\n";
    } else {
      os << "fghp watchdog: simulated stall (fault site watchdog.stall, scan " << scan;
      if (s.activity != nullptr) os << ", in span '" << s.activity << "'";
      os << ", queue depth " << queueDepth << ")\n";
    }
    std::fputs(os.str().c_str(), stderr);
  }
  return static_cast<long>(stalls.size());
}

void ThreadPool::enqueue(Task t) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) throw InvariantError("task enqueued on a stopped thread pool");
    queue_.push_back(std::move(t));
  }
  workReady_.notify_one();
}

bool ThreadPool::try_steal(Task& out) {
  std::lock_guard<std::mutex> lk(mu_);
  if (queue_.empty()) return false;
  out = std::move(queue_.back());
  queue_.pop_back();
  return true;
}

void ThreadPool::run_task(Task& t) {
  std::exception_ptr err;
  try {
    t.fn();
  } catch (...) {
    err = std::current_exception();
  }
  // Move the reference into the group: after finish_one the running thread
  // holds no handle to the exception object, so the final release (which
  // frees it) always happens on the thread that consumes it from wait().
  if (t.group != nullptr) t.group->finish_one(std::move(err));
}

void ThreadPool::worker_loop(std::size_t index) {
  Beat* beatPtr = nullptr;
  {
    // Index the deque under the lock (concurrent grow_to mutates its
    // internals); the element's address is stable for the pool's lifetime.
    std::lock_guard<std::mutex> lk(mu_);
    beatPtr = &beats_[index];
  }
  Beat& beat = *beatPtr;
  // Mirror this worker's innermost active span name into the heartbeat so
  // the watchdog can attribute a stall to a phase, not just a worker index.
  trace::publish_activity(&beat.activity);
  for (;;) {
    Task t;
    {
      std::unique_lock<std::mutex> lk(mu_);
      workReady_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {  // stop_ set and nothing left to drain
        trace::publish_activity(nullptr);
        return;
      }
      t = std::move(queue_.front());
      queue_.pop_front();
    }
    beat.seq.fetch_add(1, std::memory_order_relaxed);
    beat.busySinceNs.store(steady_now_ns(), std::memory_order_release);
    run_task(t);
    beat.busySinceNs.store(0, std::memory_order_release);
  }
}

TaskGroup::~TaskGroup() {
  // A group must not die with tasks in flight; wait() here would be too late
  // to report the error usefully, so finish the join but swallow reruns of
  // an exception already thrown from an explicit wait().
  try {
    wait();
  } catch (...) {
  }
}

void TaskGroup::run(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++pending_;
  }
  try {
    pool_.enqueue(ThreadPool::Task{std::move(fn), this});
  } catch (...) {
    // The task never entered the queue (stopped pool): undo the fork so
    // wait() does not hang on a completion that will never come.
    std::lock_guard<std::mutex> lk(mu_);
    --pending_;
    if (pending_ == 0) done_.notify_all();
    throw;
  }
}

void TaskGroup::finish_one(std::exception_ptr err) {
  std::lock_guard<std::mutex> lk(mu_);
  if (err) errs_.push_back(std::move(err));
  --pending_;
  if (pending_ == 0) done_.notify_all();
}

void TaskGroup::wait() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (pending_ == 0) break;
    }
    ThreadPool::Task t;
    if (pool_.try_steal(t)) {
      ThreadPool::run_task(t);
      continue;
    }
    // Nothing to steal right now; sleep until one of our tasks completes.
    // The timeout re-checks the queue: a task running elsewhere may fork new
    // work we could help with, and forks don't signal this group's condvar.
    std::unique_lock<std::mutex> lk(mu_);
    done_.wait_for(lk, std::chrono::microseconds(200), [this] { return pending_ == 0; });
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (!errs_.empty()) {
    std::vector<std::exception_ptr> errs;
    errs.swap(errs_);
    if (errs.size() == 1) std::rethrow_exception(errs.front());
    throw AggregateError(std::move(errs));
  }
}

void parallel_for(ThreadPool& pool, long n, const std::function<void(long)>& fn) {
  if (n <= 0) return;
  if (n == 1 || pool.num_threads() <= 1) {
    for (long i = 0; i < n; ++i) fn(i);
    return;
  }
  TaskGroup group(pool);
  for (long i = 0; i < n; ++i) {
    group.run([i, &fn] { fn(i); });
  }
  group.wait();
}

}  // namespace fghp
