#include "util/thread_pool.hpp"

#include <chrono>

#include "util/assert.hpp"
#include "util/error.hpp"
#include "util/options.hpp"

namespace fghp {

ThreadPool::ThreadPool(int totalThreads) { grow_to(totalThreads); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  workReady_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(workers_.size()) + 1;
}

void ThreadPool::grow_to(int totalThreads) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto want = static_cast<std::size_t>(std::max(0, totalThreads - 1));
  while (workers_.size() < want) workers_.emplace_back([this] { worker_loop(); });
}

int ThreadPool::default_num_threads() {
  static const int n = [] {
    const long env = env_long("FGHP_THREADS", 0);
    if (env > 0) return static_cast<int>(env);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }();
  return n;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_num_threads());
  return pool;
}

ThreadPool* ThreadPool::for_request(long requested) {
  const long n = requested > 0 ? requested : default_num_threads();
  if (n <= 1) return nullptr;
  ThreadPool& pool = global();
  pool.grow_to(static_cast<int>(n));
  return &pool;
}

void ThreadPool::enqueue(Task t) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(t));
  }
  workReady_.notify_one();
}

bool ThreadPool::try_steal(Task& out) {
  std::lock_guard<std::mutex> lk(mu_);
  if (queue_.empty()) return false;
  out = std::move(queue_.back());
  queue_.pop_back();
  return true;
}

void ThreadPool::run_task(Task& t) {
  std::exception_ptr err;
  try {
    t.fn();
  } catch (...) {
    err = std::current_exception();
  }
  if (t.group != nullptr) t.group->finish_one(err);
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task t;
    {
      std::unique_lock<std::mutex> lk(mu_);
      workReady_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      t = std::move(queue_.front());
      queue_.pop_front();
    }
    run_task(t);
  }
}

TaskGroup::~TaskGroup() {
  // A group must not die with tasks in flight; wait() here would be too late
  // to report the error usefully, so finish the join but swallow reruns of
  // an exception already thrown from an explicit wait().
  try {
    wait();
  } catch (...) {
  }
}

void TaskGroup::run(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++pending_;
  }
  pool_.enqueue(ThreadPool::Task{std::move(fn), this});
}

void TaskGroup::finish_one(std::exception_ptr err) {
  std::lock_guard<std::mutex> lk(mu_);
  if (err) errs_.push_back(err);
  --pending_;
  if (pending_ == 0) done_.notify_all();
}

void TaskGroup::wait() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (pending_ == 0) break;
    }
    ThreadPool::Task t;
    if (pool_.try_steal(t)) {
      ThreadPool::run_task(t);
      continue;
    }
    // Nothing to steal right now; sleep until one of our tasks completes.
    // The timeout re-checks the queue: a task running elsewhere may fork new
    // work we could help with, and forks don't signal this group's condvar.
    std::unique_lock<std::mutex> lk(mu_);
    done_.wait_for(lk, std::chrono::microseconds(200), [this] { return pending_ == 0; });
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (!errs_.empty()) {
    std::vector<std::exception_ptr> errs;
    errs.swap(errs_);
    if (errs.size() == 1) std::rethrow_exception(errs.front());
    throw AggregateError(std::move(errs));
  }
}

void parallel_for(ThreadPool& pool, long n, const std::function<void(long)>& fn) {
  if (n <= 0) return;
  if (n == 1 || pool.num_threads() <= 1) {
    for (long i = 0; i < n; ++i) fn(i);
    return;
  }
  TaskGroup group(pool);
  for (long i = 0; i < n; ++i) {
    group.run([i, &fn] { fn(i); });
  }
  group.wait();
}

}  // namespace fghp
