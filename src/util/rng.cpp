#include "util/rng.hpp"

#include <numeric>

namespace fghp {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is the one forbidden state of xoshiro; splitmix64 cannot
  // produce four zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  FGHP_ASSERT(bound > 0);
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

idx_t Rng::uniform(idx_t lo, idx_t hi) {
  FGHP_ASSERT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<idx_t>(next_below(span));
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::vector<idx_t> Rng::permutation(idx_t n) {
  std::vector<idx_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), idx_t{0});
  shuffle(perm);
  return perm;
}

Rng Rng::spawn() { return Rng(next()); }

}  // namespace fghp
