// Typed error layer for the partition -> SpMV pipeline.
//
// Every failure the library can report deliberately falls into one of a few
// categories, each with its own exception type and process exit code (see
// exit_code), and carries structured context (file path, line, pipeline
// phase, part index) so callers can react programmatically instead of
// parsing message strings:
//
//   IoError               — a file could not be opened / read / written
//   FormatError           — a file opened but its contents are malformed
//   InvariantError        — an internal consistency check failed (strict mode)
//   InfeasibleError       — a balance constraint could not be satisfied
//   FaultError            — an injected fault fired (util/fault.hpp)
//   CancelledError        — the run's CancelToken was cancelled (util/cancel.hpp)
//   DeadlineExceededError — the run's deadline expired (util/cancel.hpp)
//   AggregateError        — several concurrent tasks failed (util/thread_pool.hpp)
//
// All of them derive from std::runtime_error via fghp::Error, so existing
// catch (const std::runtime_error&) handlers keep working.
//
// The warning log (push_warning / drain_warnings) is the channel for
// degraded-but-recovered events: a retried bisection, a greedy fallback
// split, an executor task that fell back to the serial path. It is
// process-global and thread-safe; CLIs drain it after a run and print the
// entries to stderr.
#pragma once

#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

namespace fghp {

/// Error categories double as process exit codes (0 = success, 1 = unknown
/// exception, 2 = usage / precondition violation).
enum class ErrorCode : int {
  kGeneric = 1,
  kUsage = 2,
  kIo = 3,
  kFormat = 4,
  kInvariant = 5,
  kInfeasible = 6,
  kFault = 7,
  kCancelled = 8,
  kDeadline = 9,
};

/// Name of a category ("io", "format", ...), for logs and tests.
const char* error_code_name(ErrorCode code);

/// Structured context attached to an Error. Every field is optional; unset
/// fields are skipped when the message is formatted.
struct ErrorContext {
  std::string path;   ///< file involved, empty if none
  long line = 0;      ///< 1-based line within path/stream, 0 if n/a
  std::string phase;  ///< pipeline phase or fault site, empty if n/a
  long part = -1;     ///< part / processor / ordinal index, -1 if n/a
};

/// Shorthand for the most common context: just a file path.
inline ErrorContext at_path(std::string path) {
  ErrorContext ctx;
  ctx.path = std::move(path);
  return ctx;
}

/// Base of the hierarchy: a runtime_error whose what() is the message
/// decorated with the context, and whose code/context survive for callers
/// that want to dispatch without string matching.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& what, ErrorContext ctx = {});

  ErrorCode code() const { return code_; }
  const ErrorContext& context() const { return ctx_; }

 private:
  static std::string decorate(const std::string& what, const ErrorContext& ctx);

  ErrorCode code_;
  ErrorContext ctx_;
};

class IoError : public Error {
 public:
  explicit IoError(const std::string& what, ErrorContext ctx = {})
      : Error(ErrorCode::kIo, what, std::move(ctx)) {}
};

class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what, ErrorContext ctx = {})
      : Error(ErrorCode::kFormat, what, std::move(ctx)) {}
};

class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what, ErrorContext ctx = {})
      : Error(ErrorCode::kInvariant, what, std::move(ctx)) {}
};

class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what, ErrorContext ctx = {})
      : Error(ErrorCode::kInfeasible, what, std::move(ctx)) {}
};

class FaultError : public Error {
 public:
  explicit FaultError(const std::string& what, ErrorContext ctx = {})
      : Error(ErrorCode::kFault, what, std::move(ctx)) {}
};

/// The run's CancelToken was cancelled (util/cancel.hpp). ctx.phase names
/// the check-point that observed the cancellation.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what, ErrorContext ctx = {})
      : Error(ErrorCode::kCancelled, what, std::move(ctx)) {}
};

/// The run's deadline expired at a check-point that could not (or was
/// configured not to) degrade. ctx.phase names the check-point.
class DeadlineExceededError : public Error {
 public:
  explicit DeadlineExceededError(const std::string& what, ErrorContext ctx = {})
      : Error(ErrorCode::kDeadline, what, std::move(ctx)) {}
};

/// Several concurrent tasks failed (TaskGroup::wait). what() concatenates
/// every task's message; errors() keeps the original exception_ptrs. The
/// code is the contained errors' common category, or kGeneric if they mix;
/// the context is adopted from the first contained Error that carries one,
/// so phase names survive aggregation across fork-join boundaries.
class AggregateError : public Error {
 public:
  explicit AggregateError(std::vector<std::exception_ptr> errors);

  std::size_t size() const { return errors_.size(); }
  const std::vector<std::exception_ptr>& errors() const { return errors_; }

 private:
  std::vector<std::exception_ptr> errors_;
};

/// Process exit code for an exception: Error -> its category code,
/// std::invalid_argument (FGHP_REQUIRE / bad CLI input) -> kUsage,
/// anything else -> kGeneric.
int exit_code(const std::exception& e);

/// Appends one entry to the process-global warning log (thread-safe).
void push_warning(std::string message);

/// Atomically takes and clears the warning log.
std::vector<std::string> drain_warnings();

/// Number of entries currently in the warning log.
std::size_t warning_count();

}  // namespace fghp
