#include "util/fault.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/options.hpp"
#include "util/trace.hpp"

namespace fghp::fault {

namespace {

struct SpecEntry {
  std::string site;
  long ordinal = 0;  // 0 = match any occurrence
};

std::mutex g_mu;
std::vector<SpecEntry> g_entries;
std::atomic<bool> g_enabled{false};
std::once_flag g_envOnce;

long parse_ordinal(const std::string& item, std::size_t colon) {
  const std::string num = item.substr(colon + 1);
  std::size_t used = 0;
  long ord = 0;
  try {
    ord = std::stol(num, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != num.size() || ord < 1) {
    throw FormatError("fault spec ordinal must be a positive integer: '" + item + "'");
  }
  return ord;
}

std::vector<SpecEntry> parse_spec(const std::string& spec) {
  std::vector<SpecEntry> entries;
  const auto& sites = known_sites();
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    while (!item.empty() && item.front() == ' ') item.erase(item.begin());
    while (!item.empty() && item.back() == ' ') item.pop_back();
    if (item.empty()) continue;
    SpecEntry e;
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) {
      e.site = item;
    } else {
      e.site = item.substr(0, colon);
      e.ordinal = parse_ordinal(item, colon);
    }
    if (std::find(sites.begin(), sites.end(), e.site) == sites.end()) {
      throw FormatError("unknown fault site '" + e.site +
                        "' (run `fghp_tool faults` for the list)");
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

void install_locked(std::vector<SpecEntry> entries) {
  g_entries = std::move(entries);
  g_enabled.store(!g_entries.empty(), std::memory_order_release);
}

void init_from_env() {
  std::call_once(g_envOnce, [] {
    const auto env = env_str("FGHP_FAULT_SPEC");
    if (!env) return;
    auto entries = parse_spec(*env);  // throws on a bad env spec: fail loudly
    std::lock_guard<std::mutex> lk(g_mu);
    install_locked(std::move(entries));
  });
}

}  // namespace

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> sites = {
      "cancel.exec.iter",  // exec-session iteration check-point (ordinal = iteration)
      "cancel.rb.node",    // recursive-bisection node check-point (ordinal = part offset + 1)
      "decomp.open",  // opening a decomposition file for reading
      "decomp.read",  // parsing a decomposition stream
      "decomp.write", // serializing a decomposition
      "exec.expand",  // MT executor expand task   (ordinal = processor + 1)
      "exec.fold",    // MT executor fold task     (ordinal = processor + 1)
      "exec.retry",   // MT executor retry attempt (ordinal = processor + 1)
      "fm.refine",    // FM refinement inside a multilevel hypergraph bisection
      "geo.retry",    // geometric split retry attempt  (ordinal = part offset + 1)
      "geo.split",    // geometric bisection node       (ordinal = part offset + 1)
      "gfm.refine",   // FM refinement inside a multilevel graph bisection
      "grb.bisect",   // graph recursive-bisection node (ordinal = part offset + 1)
      "grb.retry",    // graph bisection retry attempt  (ordinal = part offset + 1)
      "hg.build",     // hypergraph construction from pin lists
      "mmio.open",    // opening a Matrix Market file for reading
      "mmio.read",    // Matrix Market entry parse (ordinal = entry index)
      "perf.open",    // perf-counter group open (ordinal = 1-based open attempt)
      "rb.bisect",    // hypergraph recursive-bisection node (ordinal = part offset + 1)
      "rb.retry",     // hypergraph bisection retry attempt  (ordinal = part offset + 1)
      "stream.assign",  // streaming-partitioner chunk head (ordinal = chunk index + 1)
      "stream.retry",   // streaming chunk retry attempt    (ordinal = chunk index + 1)
      "watchdog.stall",  // simulated worker stall seen by the pool watchdog (ordinal = scan)
  };
  return sites;
}

void install_spec(const std::string& spec) {
  init_from_env();  // establish the once-flag so env never overwrites us later
  auto entries = parse_spec(spec);
  std::lock_guard<std::mutex> lk(g_mu);
  install_locked(std::move(entries));
}

std::string current_spec() {
  init_from_env();
  std::lock_guard<std::mutex> lk(g_mu);
  std::ostringstream os;
  for (std::size_t i = 0; i < g_entries.size(); ++i) {
    if (i > 0) os << ',';
    os << g_entries[i].site;
    if (g_entries[i].ordinal > 0) os << ':' << g_entries[i].ordinal;
  }
  return os.str();
}

bool enabled() {
  init_from_env();
  return g_enabled.load(std::memory_order_acquire);
}

bool should_fail(std::string_view site, long ordinal) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lk(g_mu);
  for (const auto& e : g_entries) {
    if (e.site == site && (e.ordinal == 0 || e.ordinal == ordinal)) return true;
  }
  return false;
}

namespace {

/// Records a firing: one instant event in the trace (named by the canonical
/// entry from known_sites(), whose storage is static — trace events never
/// copy strings) and the fired counter.
void record_fired(std::string_view site, long ordinal) {
  const auto& sites = known_sites();
  const auto it = std::find(sites.begin(), sites.end(), site);
  if (it != sites.end()) trace::instant("fault", it->c_str(), "ordinal", ordinal);
  static metrics::Counter& fired = metrics::counter("fault.fired");
  fired.add();
}

}  // namespace

bool fired(std::string_view site, long ordinal) {
  if (!should_fail(site, ordinal)) return false;
  record_fired(site, ordinal);
  return true;
}

void check(std::string_view site, long ordinal) {
  if (!should_fail(site, ordinal)) return;
  // The fault is observable before it propagates.
  record_fired(site, ordinal);
  ErrorContext ctx;
  ctx.phase = std::string(site);
  ctx.part = ordinal;
  throw FaultError("injected fault", std::move(ctx));
}

ScopedSpec::ScopedSpec(const std::string& spec) : saved_(current_spec()) {
  install_spec(spec);
}

ScopedSpec::~ScopedSpec() {
  try {
    install_spec(saved_);
  } catch (...) {
    // saved_ came from current_spec(), so it always re-parses; never throw
    // from a destructor regardless.
  }
}

}  // namespace fghp::fault
