// Deterministic fault injection for testing the pipeline's failure and
// recovery paths.
//
// The library is instrumented with named fault *sites* — file reads,
// hypergraph build, bisection, refinement, executor tasks. A site fires
// (throws FaultError) when the installed *spec* names it:
//
//   FGHP_FAULT_SPEC="mmio.read:3,rb.bisect:1"
//
// means "fail the Matrix Market entry read with ordinal 3 and the bisection
// with ordinal 1". Each entry is `site[:ordinal]`; omitting the ordinal
// matches every occurrence of the site. The spec is read from the
// environment on first use, can be replaced programmatically
// (install_spec / ScopedSpec), and per partitioner run via
// PartitionConfig::faultSpec.
//
// Determinism: firing is a pure function of (site, ordinal) — there are no
// hidden hit counters shared between threads. Call sites in parallel code
// pass a scheduling-independent ordinal (the bisection node's part offset,
// the executor task's processor index), so the same spec injects the same
// logical faults at any thread count. Serial call sites use naturally
// sequential ordinals (e.g. the entry index within a file).
//
// Recovery-path convention: a site that has a retry path exposes a second
// `*.retry` site checked only on the retry attempt, so a spec naming only
// the primary site exercises "fail once, recover", and naming both
// exercises the degraded fallback (greedy split, serial executor).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fghp::fault {

/// Every fault site compiled into the library, sorted; the sweep in
/// scripts/check.sh enumerates these via `fghp_tool faults`.
const std::vector<std::string>& known_sites();

/// Parses and installs a spec, replacing the current one ("" disarms all
/// sites). Throws FormatError on a syntax error or an unknown site name.
void install_spec(const std::string& spec);

/// The spec currently installed (normalized `site:ordinal` form).
std::string current_spec();

/// Fast check: false when no spec is installed (the common case — a single
/// relaxed atomic load, safe on hot paths).
bool enabled();

/// True when the installed spec names `site` with a matching ordinal.
bool should_fail(std::string_view site, long ordinal = 1);

/// Throws FaultError when should_fail(site, ordinal).
void check(std::string_view site, long ordinal = 1);

/// Non-throwing variant for sites whose injected behavior is not an
/// exception (a simulated cancellation or a simulated stall): when the spec
/// names the site it records the firing exactly like check() — one trace
/// instant + the fired counter — and returns true so the caller can enact
/// the simulated condition itself. Returns false when the site is disarmed.
bool fired(std::string_view site, long ordinal = 1);

/// Installs a spec for a scope and restores the previous one on exit.
class ScopedSpec {
 public:
  explicit ScopedSpec(const std::string& spec);
  ~ScopedSpec();

  ScopedSpec(const ScopedSpec&) = delete;
  ScopedSpec& operator=(const ScopedSpec&) = delete;

 private:
  std::string saved_;
};

}  // namespace fghp::fault
