#include "util/report.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/perf_counters.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace fghp::report {

namespace {

/// Process user+system CPU time in ms (0.0 where getrusage is unavailable).
double cpu_now_ms() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  auto ms = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) * 1e3 + static_cast<double>(tv.tv_usec) / 1e3;
  };
  return ms(ru.ru_utime) + ms(ru.ru_stime);
#else
  return 0.0;
#endif
}

struct Interval {
  std::uint64_t lo = 0, hi = 0;
};

/// Total covered length of a set of intervals (union, not sum): sort by
/// start, sweep. This is what makes nested spans on one thread count once.
std::uint64_t union_ns(std::vector<Interval>& v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::uint64_t total = 0, curLo = v[0].lo, curHi = v[0].hi;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i].lo > curHi) {
      total += curHi - curLo;
      curLo = v[i].lo;
      curHi = v[i].hi;
    } else {
      curHi = std::max(curHi, v[i].hi);
    }
  }
  return total + (curHi - curLo);
}

double to_ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

long long delta_counter(const metrics::Snapshot& cur, const metrics::Snapshot& base,
                        const std::string& name) {
  const auto it = cur.counters.find(name);
  if (it == cur.counters.end()) return 0;
  const auto bit = base.counters.find(name);
  return it->second - (bit == base.counters.end() ? 0 : bit->second);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ----------------------------------------------------------- JSON out ----

void json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      out << buf;
    } else {
      out << c;
    }
  }
  out << '"';
}

std::string jnum(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  // JSON has no NaN/Inf literals; clamp to null-safe 0 (never produced by a
  // healthy run, but a report writer must not emit an unparseable file).
  for (const char* p = buf; *p != '\0'; ++p) {
    if (std::isalpha(static_cast<unsigned char>(*p)) && *p != 'e' && *p != 'E')
      return "0";
  }
  return buf;
}

}  // namespace

Builder::Builder(std::string tool, std::string command)
    : tool_(std::move(tool)),
      command_(std::move(command)),
      startNs_(trace::now_ns()),
      startCpuMs_(cpu_now_ms()),
      baseline_(metrics::Registry::global().snapshot()) {}

void Builder::info(const std::string& key, std::string value) {
  info_[key] = std::move(value);
}

void Builder::info(const std::string& key, long long value) {
  info_[key] = std::to_string(value);
}

void Builder::set_error(std::string message) { error_ = std::move(message); }

void Builder::expect_volume(std::string metricPrefix, long long expandWordsPerIter,
                            long long foldWordsPerIter, long long messagesPerIter) {
  auditArmed_ = true;
  auditPrefix_ = std::move(metricPrefix);
  expectExpand_ = expandWordsPerIter;
  expectFold_ = foldWordsPerIter;
  expectMessages_ = messagesPerIter;
}

void Builder::set_proc_comm(std::vector<long long> sendWords,
                            std::vector<long long> recvWords) {
  comm_.present = true;
  comm_.sendWords = std::move(sendWords);
  comm_.recvWords = std::move(recvWords);
}

RunReport Builder::build() const {
  RunReport r;
  r.tool = tool_;
  r.command = command_;
  r.status = error_.empty() ? "ok" : "error";
  r.error = error_;
  r.wallMs = to_ms(trace::now_ns() - startNs_);
  r.cpuMs = std::max(0.0, cpu_now_ms() - startCpuMs_);
  r.info = info_;

  // ---- trace-derived statistics -----------------------------------------
  r.traceEnabled = trace::enabled();
  const std::vector<trace::EventView> events = trace::snapshot_events();
  r.traceEvents = static_cast<long long>(events.size());
  r.traceDropped = static_cast<long long>(trace::dropped_count());

  struct PhaseAccum {
    std::uint64_t firstStart = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t minLo = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t maxHi = 0;
    long long spans = 0;
    std::map<std::uint32_t, std::vector<Interval>> byTid;
  };
  std::map<std::string, PhaseAccum> phases;
  std::map<std::uint32_t, std::vector<Interval>> workerIntervals;
  std::uint64_t runLo = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t runHi = 0;
  for (const trace::EventView& e : events) {
    if (e.kind != trace::EventKind::kSpan) continue;
    const std::uint64_t lo = e.startNs;
    // A span never measures zero: the busy union (and so the efficiency)
    // must stay positive whenever any span exists.
    const std::uint64_t hi = e.startNs + std::max<std::uint64_t>(e.durNs, 1);
    PhaseAccum& p = phases[e.name != nullptr ? e.name : ""];
    p.firstStart = std::min(p.firstStart, lo);
    p.minLo = std::min(p.minLo, lo);
    p.maxHi = std::max(p.maxHi, hi);
    ++p.spans;
    p.byTid[e.tid].push_back({lo, hi});
    workerIntervals[e.tid].push_back({lo, hi});
    runLo = std::min(runLo, lo);
    runHi = std::max(runHi, hi);
  }

  std::vector<std::pair<std::uint64_t, std::string>> order;
  for (const auto& [name, p] : phases) order.emplace_back(p.firstStart, name);
  std::sort(order.begin(), order.end());
  for (const auto& [start, name] : order) {
    (void)start;
    PhaseAccum& p = phases[name];
    PhaseStat st;
    st.name = name;
    st.spans = p.spans;
    st.workers = static_cast<int>(p.byTid.size());
    const std::uint64_t wallNs = p.maxHi - p.minLo;
    st.wallMs = to_ms(wallNs);
    std::uint64_t busyNs = 0, critNs = 0;
    for (auto& [tid, ivs] : p.byTid) {
      (void)tid;
      const std::uint64_t u = union_ns(ivs);
      busyNs += u;
      critNs = std::max(critNs, u);
    }
    st.busyMs = to_ms(busyNs);
    st.criticalPathMs = to_ms(critNs);
    // Per-thread unions never exceed the phase wall, so this lands in
    // (0, 1]; the min() only absorbs floating-point rounding.
    st.parallelEfficiency = std::min(
        1.0, static_cast<double>(busyNs) /
                 (static_cast<double>(st.workers) * static_cast<double>(wallNs)));
    r.phases.push_back(std::move(st));
  }

  const std::uint64_t runWallNs = runHi > runLo ? runHi - runLo : 0;
  for (auto& [tid, ivs] : workerIntervals) {
    WorkerStat w;
    w.tid = tid;
    const std::uint64_t u = union_ns(ivs);
    w.busyMs = to_ms(u);
    w.utilization =
        runWallNs > 0
            ? std::min(1.0, static_cast<double>(u) / static_cast<double>(runWallNs))
            : 1.0;
    r.workers.push_back(w);
  }

  // ---- metrics delta ----------------------------------------------------
  const metrics::Snapshot cur = metrics::Registry::global().snapshot();
  for (const auto& [name, v] : cur.counters) {
    const auto bit = baseline_.counters.find(name);
    r.metricsDelta.counters[name] =
        v - (bit == baseline_.counters.end() ? 0 : bit->second);
  }
  r.metricsDelta.gauges = cur.gauges;  // last-write-wins values, not deltas
  for (const auto& [name, h] : cur.histograms) {
    metrics::HistogramSnapshot d = h;
    const auto bit = baseline_.histograms.find(name);
    if (bit != baseline_.histograms.end() && bit->second.bounds == h.bounds) {
      for (std::size_t i = 0; i < d.counts.size(); ++i)
        d.counts[i] -= bit->second.counts[i];
      d.count -= bit->second.count;
      d.sum -= bit->second.sum;
    }
    r.metricsDelta.histograms[name] = std::move(d);
  }

  // ---- perf -------------------------------------------------------------
  r.perf.compiledIn = perf::compiled_in();
  r.perf.enabled = perf::enabled();
  r.perf.available = perf::enabled() && perf::available();
  for (const auto& [name, v] : r.metricsDelta.counters) {
    if (name.rfind("perf.", 0) != 0) continue;
    if (ends_with(name, ".cycles")) r.perf.cycles += v;
    else if (ends_with(name, ".instructions")) r.perf.instructions += v;
    else if (ends_with(name, ".llc_misses")) r.perf.llcMisses += v;
    else if (ends_with(name, ".branch_misses")) r.perf.branchMisses += v;
  }

  // ---- volume audit -----------------------------------------------------
  if (auditArmed_) {
    VolumeAudit& a = r.audit;
    a.present = true;
    a.metricPrefix = auditPrefix_;
    a.modeledExpandWords = expectExpand_;
    a.modeledFoldWords = expectFold_;
    a.modeledMessages = expectMessages_;
    a.iterations = delta_counter(cur, baseline_, auditPrefix_ + ".iterations");
    a.measuredExpandWords = delta_counter(cur, baseline_, auditPrefix_ + ".expand.words");
    a.measuredFoldWords = delta_counter(cur, baseline_, auditPrefix_ + ".fold.words");
    a.measuredMessages = delta_counter(cur, baseline_, auditPrefix_ + ".messages");
    a.matches = a.measuredExpandWords == a.modeledExpandWords * a.iterations &&
                a.measuredFoldWords == a.modeledFoldWords * a.iterations &&
                a.measuredMessages == a.modeledMessages * a.iterations;
  }

  // ---- per-processor comm matrix ---------------------------------------
  if (comm_.present) {
    ProcCommStat c = comm_;
    long long total = 0, maxProc = 0;
    const std::size_t k = std::max(c.sendWords.size(), c.recvWords.size());
    for (std::size_t p = 0; p < k; ++p) {
      const long long s = p < c.sendWords.size() ? c.sendWords[p] : 0;
      const long long v = p < c.recvWords.size() ? c.recvWords[p] : 0;
      total += s;  // every word sent is received once; count it once
      maxProc = std::max(maxProc, s + v);
    }
    c.totalWords = total;
    c.maxProcWords = maxProc;
    c.avgProcWords = k > 0 ? 2.0 * static_cast<double>(total) / static_cast<double>(k)
                           : 0.0;
    c.imbalancePercent =
        c.avgProcWords > 0.0
            ? 100.0 * (static_cast<double>(maxProc) / c.avgProcWords - 1.0)
            : 0.0;
    r.comm = std::move(c);
  }

  return r;
}

// --------------------------------------------------------------- writer ----

void write_json(const RunReport& r, std::ostream& out) {
  out << "{\n  \"run_report_version\": " << r.version << ",\n  \"tool\": ";
  json_string(out, r.tool);
  out << ",\n  \"command\": ";
  json_string(out, r.command);
  out << ",\n  \"status\": ";
  json_string(out, r.status);
  out << ",\n  \"error\": ";
  json_string(out, r.error);
  out << ",\n  \"wall_ms\": " << jnum(r.wallMs) << ",\n  \"cpu_ms\": " << jnum(r.cpuMs);

  out << ",\n  \"info\": {";
  bool first = true;
  for (const auto& [k, v] : r.info) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(out, k);
    out << ": ";
    json_string(out, v);
  }
  out << (first ? "}" : "\n  }");

  out << ",\n  \"trace\": {\"enabled\": " << (r.traceEnabled ? "true" : "false")
      << ", \"events\": " << r.traceEvents << ", \"dropped\": " << r.traceDropped
      << "}";

  out << ",\n  \"phases\": [";
  for (std::size_t i = 0; i < r.phases.size(); ++i) {
    const PhaseStat& p = r.phases[i];
    out << (i == 0 ? "\n    " : ",\n    ") << "{\"name\": ";
    json_string(out, p.name);
    out << ", \"spans\": " << p.spans << ", \"workers\": " << p.workers
        << ", \"wall_ms\": " << jnum(p.wallMs) << ", \"busy_ms\": " << jnum(p.busyMs)
        << ", \"critical_path_ms\": " << jnum(p.criticalPathMs)
        << ", \"parallel_efficiency\": " << jnum(p.parallelEfficiency) << "}";
  }
  out << (r.phases.empty() ? "]" : "\n  ]");

  out << ",\n  \"workers\": [";
  for (std::size_t i = 0; i < r.workers.size(); ++i) {
    const WorkerStat& w = r.workers[i];
    out << (i == 0 ? "\n    " : ",\n    ") << "{\"tid\": " << w.tid
        << ", \"busy_ms\": " << jnum(w.busyMs)
        << ", \"utilization\": " << jnum(w.utilization) << "}";
  }
  out << (r.workers.empty() ? "]" : "\n  ]");

  out << ",\n  \"perf\": {\"compiled_in\": " << (r.perf.compiledIn ? "true" : "false")
      << ", \"enabled\": " << (r.perf.enabled ? "true" : "false")
      << ", \"available\": " << (r.perf.available ? "true" : "false")
      << ", \"cycles\": " << r.perf.cycles
      << ", \"instructions\": " << r.perf.instructions
      << ", \"llc_misses\": " << r.perf.llcMisses
      << ", \"branch_misses\": " << r.perf.branchMisses << "}";

  out << ",\n  \"volume_audit\": {\"present\": " << (r.audit.present ? "true" : "false");
  if (r.audit.present) {
    out << ", \"metric_prefix\": ";
    json_string(out, r.audit.metricPrefix);
    out << ", \"iterations\": " << r.audit.iterations
        << ", \"modeled_expand_words\": " << r.audit.modeledExpandWords
        << ", \"modeled_fold_words\": " << r.audit.modeledFoldWords
        << ", \"modeled_messages\": " << r.audit.modeledMessages
        << ", \"measured_expand_words\": " << r.audit.measuredExpandWords
        << ", \"measured_fold_words\": " << r.audit.measuredFoldWords
        << ", \"measured_messages\": " << r.audit.measuredMessages
        << ", \"matches\": " << (r.audit.matches ? "true" : "false");
  }
  out << "}";

  out << ",\n  \"proc_comm\": {\"present\": " << (r.comm.present ? "true" : "false");
  if (r.comm.present) {
    out << ", \"total_words\": " << r.comm.totalWords
        << ", \"max_proc_words\": " << r.comm.maxProcWords
        << ", \"avg_proc_words\": " << jnum(r.comm.avgProcWords)
        << ", \"imbalance_percent\": " << jnum(r.comm.imbalancePercent)
        << ", \"send_words\": [";
    for (std::size_t i = 0; i < r.comm.sendWords.size(); ++i)
      out << (i ? "," : "") << r.comm.sendWords[i];
    out << "], \"recv_words\": [";
    for (std::size_t i = 0; i < r.comm.recvWords.size(); ++i)
      out << (i ? "," : "") << r.comm.recvWords[i];
    out << "]";
  }
  out << "}";

  out << ",\n  \"metrics\": {\n    \"counters\": {";
  first = true;
  for (const auto& [name, v] : r.metricsDelta.counters) {
    out << (first ? "\n      " : ",\n      ");
    first = false;
    json_string(out, name);
    out << ": " << v;
  }
  out << (first ? "}" : "\n    }") << ",\n    \"gauges\": {";
  first = true;
  for (const auto& [name, v] : r.metricsDelta.gauges) {
    out << (first ? "\n      " : ",\n      ");
    first = false;
    json_string(out, name);
    out << ": " << v;
  }
  out << (first ? "}" : "\n    }") << ",\n    \"histograms\": {";
  first = true;
  for (const auto& [name, h] : r.metricsDelta.histograms) {
    out << (first ? "\n      " : ",\n      ");
    first = false;
    json_string(out, name);
    out << ": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i)
      out << (i ? "," : "") << h.bounds[i];
    out << "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i)
      out << (i ? "," : "") << h.counts[i];
    out << "], \"count\": " << h.count << ", \"sum\": " << h.sum << "}";
  }
  out << (first ? "}" : "\n    }") << "\n  }\n}\n";
}

void write_file(const RunReport& r, const std::string& pathOrDash) {
  if (pathOrDash == "-") {
    write_json(r, std::cout);
    std::cout.flush();
    return;
  }
  std::ofstream out(pathOrDash);
  if (!out)
    throw IoError("cannot open report file for writing: " + pathOrDash,
                  at_path(pathOrDash));
  write_json(r, out);
  out.flush();
  if (!out) throw IoError("report write failed: " + pathOrDash, at_path(pathOrDash));
}

// --------------------------------------------------------------- parser ----

namespace jv {

bool Value::has(const std::string& key) const {
  return type == Type::kObject && object.count(key) > 0;
}

const Value& Value::at(const std::string& key) const {
  if (type != Type::kObject) throw FormatError("JSON: member access on a non-object");
  const auto it = object.find(key);
  if (it == object.end()) throw FormatError("JSON: missing member '" + key + "'");
  return it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) throw FormatError("JSON: trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw FormatError("JSON: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_lit(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    Value v;
    if (c == '{') {
      v.type = Value::Type::kObject;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.object[std::move(key)] = parse_value();
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v.type = Value::Type::kArray;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      for (;;) {
        v.array.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.type = Value::Type::kString;
      v.str = parse_string();
      return v;
    }
    if (consume_lit("true")) {
      v.type = Value::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_lit("false")) {
      v.type = Value::Type::kBool;
      v.boolean = false;
      return v;
    }
    if (consume_lit("null")) return v;
    // number
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("unexpected character");
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    v.type = Value::Type::kNumber;
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          const unsigned code =
              static_cast<unsigned>(std::stoul(s_.substr(pos_, 4), nullptr, 16));
          pos_ += 4;
          // Our own writers only escape control characters; anything in the
          // BMP below 0x80 round-trips, the rest degrades to '?'.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace jv

// -------------------------------------------------------------- renderer ----

namespace {

std::string pct(double unit) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * unit);
  return buf;
}

}  // namespace

void render_file(const std::string& path, std::ostream& out) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open report file: " + path, at_path(path));
  std::ostringstream buf;
  buf << in.rdbuf();
  const jv::Value doc = jv::parse(buf.str());

  const long long version = doc.at("run_report_version").as_int();
  out << "RunReport v" << version << ": " << doc.at("tool").str << " "
      << doc.at("command").str << " — status " << doc.at("status").str;
  if (!doc.at("error").str.empty()) out << " (" << doc.at("error").str << ")";
  out << "\n";
  {
    char line[128];
    std::snprintf(line, sizeof line, "  wall %.2f ms, cpu %.2f ms\n",
                  doc.at("wall_ms").number, doc.at("cpu_ms").number);
    out << line;
  }
  if (!doc.at("info").object.empty()) {
    out << "  info:";
    for (const auto& [k, v] : doc.at("info").object) out << " " << k << "=" << v.str;
    out << "\n";
  }
  const jv::Value& tr = doc.at("trace");
  out << "  trace: " << (tr.at("enabled").boolean ? "enabled" : "disabled") << ", "
      << tr.at("events").as_int() << " events, " << tr.at("dropped").as_int()
      << " dropped\n";

  const jv::Value& phases = doc.at("phases");
  if (!phases.array.empty()) {
    out << "\nphases (wall / busy / critical path, parallel efficiency):\n";
    Table t({"phase", "spans", "workers", "wall ms", "busy ms", "crit ms", "eff"});
    for (const jv::Value& p : phases.array) {
      t.add_row({p.at("name").str, Table::num(p.at("spans").as_int()),
                 Table::num(p.at("workers").as_int()),
                 Table::num(p.at("wall_ms").number, 3),
                 Table::num(p.at("busy_ms").number, 3),
                 Table::num(p.at("critical_path_ms").number, 3),
                 pct(p.at("parallel_efficiency").number)});
    }
    out << t.to_string();
  }

  const jv::Value& workers = doc.at("workers");
  if (!workers.array.empty()) {
    out << "\nworkers:\n";
    Table t({"tid", "busy ms", "utilization"});
    for (const jv::Value& w : workers.array) {
      t.add_row({Table::num(w.at("tid").as_int()), Table::num(w.at("busy_ms").number, 3),
                 pct(w.at("utilization").number)});
    }
    out << t.to_string();
  }

  const jv::Value& perf = doc.at("perf");
  out << "\nperf counters: ";
  if (!perf.at("compiled_in").boolean) {
    out << "compiled out (FGHP_PERF=OFF)\n";
  } else if (!perf.at("enabled").boolean) {
    out << "disabled (run with --perf)\n";
  } else if (!perf.at("available").boolean) {
    out << "unavailable on this kernel/container (counters read zero)\n";
  } else {
    const double cycles = perf.at("cycles").number;
    const double instr = perf.at("instructions").number;
    char line[256];
    std::snprintf(line, sizeof line,
                  "%.3g cycles, %.3g instructions (IPC %.2f), %.3g LLC misses, "
                  "%.3g branch misses\n",
                  cycles, instr, cycles > 0 ? instr / cycles : 0.0,
                  perf.at("llc_misses").number, perf.at("branch_misses").number);
    out << line;
  }

  const jv::Value& audit = doc.at("volume_audit");
  if (audit.at("present").boolean) {
    out << "volume audit [" << audit.at("metric_prefix").str << "]: "
        << (audit.at("matches").boolean ? "MATCH" : "MISMATCH") << " — "
        << audit.at("iterations").as_int() << " iterations; expand "
        << audit.at("modeled_expand_words").as_int() << " modeled * iters vs "
        << audit.at("measured_expand_words").as_int() << " measured; fold "
        << audit.at("modeled_fold_words").as_int() << " vs "
        << audit.at("measured_fold_words").as_int() << "; messages "
        << audit.at("modeled_messages").as_int() << " vs "
        << audit.at("measured_messages").as_int() << "\n";
  } else {
    out << "volume audit: not armed\n";
  }

  const jv::Value& comm = doc.at("proc_comm");
  if (comm.at("present").boolean) {
    char line[192];
    std::snprintf(line, sizeof line,
                  "proc comm: K=%zu, %lld total words, max/proc %lld "
                  "(avg %.1f, imbalance %.1f%%)\n",
                  comm.at("send_words").array.size(), comm.at("total_words").as_int(),
                  comm.at("max_proc_words").as_int(), comm.at("avg_proc_words").number,
                  comm.at("imbalance_percent").number);
    out << line;
  }

  const jv::Value& metrics = doc.at("metrics");
  out << "metrics: " << metrics.at("counters").object.size() << " counters, "
      << metrics.at("gauges").object.size() << " gauges, "
      << metrics.at("histograms").object.size()
      << " histograms (deltas over the run; full values in the JSON)\n";
}

}  // namespace fghp::report
