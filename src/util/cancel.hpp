// Cooperative cancellation and deadlines for the partition -> SpMV pipeline.
//
// A CancelToken is a cheap copyable handle to shared cancellation state: a
// manual cancel flag plus an optional absolute deadline on the steady clock.
// The token travels by value through PartitionConfig, the recursive-bisection
// Recurser, the FM/coarsen inner loops, plan build/compile, and ExecSession;
// the code it flows through calls check_point() at well-defined boundaries
// (see DESIGN.md §13 for the placement rules):
//
//   - once per pipeline phase (model build, RB, rebalance, k-way refine,
//     v-cycle, plan build, plan compile),
//   - once per recursive-bisection node, before any work for that subtree,
//   - once per FM pass and once per coarsening level inside a bisection,
//   - once per SpMV iteration, at superstep boundaries only (never inside a
//     worker task, where the retry ladder would misread it as a task fault).
//
// A default-constructed token is *inactive*: every query is answered from a
// null shared_ptr without touching the clock, so un-deadlined runs pay one
// pointer test per check-point and remain bit-identical to builds that
// predate this layer.
//
// check_point() throws CancelledError on a manual cancel and (by default)
// DeadlineExceededError on an expired deadline. Callers that can degrade
// instead of failing — the RB driver's full -> coarsen-light -> greedy
// ladder — use poll() and handle kDeadlineExpired themselves.
//
// Determinism: cancellation is observed only at check-points, and each
// check-point is identified by a phase name and a scheduling-independent
// ordinal. Simulated cancellations are injected through util/fault sites
// ("cancel.rb.node", "cancel.exec.iter"), so a spec like
// FGHP_FAULT_SPEC=cancel.rb.node:3 cancels the same logical node at any
// thread count.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

namespace fghp::cancel {

/// A point on the steady clock before which work must finish. Default
/// constructed = no deadline.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  /// Deadline `ms` milliseconds from now (ms < 0 = no deadline; ms == 0 is
  /// already expired — useful for forcing the fully-degraded path in tests).
  static Deadline after_ms(long ms);

  bool has_deadline() const { return has_; }

  /// Milliseconds until expiry, clamped at 0. A huge positive value when no
  /// deadline is set, so `remaining_ms() < budget` comparisons read naturally.
  long remaining_ms() const;

  bool expired() const { return has_ && Clock::now() >= at_; }

 private:
  Clock::time_point at_{};
  bool has_ = false;
};

/// What a check-point observed.
enum class Status {
  kRun,              ///< keep going
  kCancelled,        ///< manual cancel requested
  kDeadlineExpired,  ///< the deadline has passed
};

/// Copyable handle to shared cancellation state. Default constructed =
/// inactive (never cancels, never expires, near-zero query cost).
class CancelToken {
 public:
  CancelToken() = default;

  /// A token that only cancels manually (via cancel()).
  static CancelToken manual();

  /// A token whose deadline is `ms` milliseconds from now. ms < 0 yields an
  /// inactive token, so CLI plumbing can pass the flag value through
  /// unconditionally.
  static CancelToken with_deadline_ms(long ms);

  /// Requests cancellation. Safe from any thread and through any copy
  /// (const: it mutates the shared state, not this handle); a no-op on an
  /// inactive token.
  void cancel() const;

  bool active() const { return state_ != nullptr; }
  bool cancelled() const {
    return state_ != nullptr && state_->cancelled.load(std::memory_order_acquire);
  }
  bool has_deadline() const { return state_ != nullptr && state_->deadline.has_deadline(); }
  bool expired() const { return state_ != nullptr && state_->deadline.expired(); }

  /// Milliseconds of budget left (clamped at 0); a huge positive value when
  /// inactive or un-deadlined.
  long remaining_ms() const;

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    Deadline deadline;
  };

  explicit CancelToken(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Non-throwing query, in precedence order: cancelled beats expired.
Status poll(const CancelToken& token);

/// Cooperative check-point. `phase` names the boundary (static string,
/// recorded as the ErrorContext phase and in the trace); `faultSite`, when
/// non-null, names a fault-injection site checked first with `ordinal` so
/// tests can simulate a cancellation here deterministically even without a
/// token. On a manual cancel throws CancelledError; on an expired deadline
/// throws DeadlineExceededError when `deadlineThrows`, else returns
/// kDeadlineExpired so the caller can degrade. Emits a cancel.* metric and a
/// trace instant whenever it does not return kRun.
Status check_point(const CancelToken& token, const char* phase, const char* faultSite = nullptr,
                   long ordinal = 1, bool deadlineThrows = true);

}  // namespace fghp::cancel
