#include "util/options.hpp"

#include <cstdlib>
#include <stdexcept>

namespace fghp {

std::optional<std::string> env_str(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

long env_long(const char* name, long fallback) {
  const auto s = env_str(name);
  if (!s) return fallback;
  char* end = nullptr;
  const long v = std::strtol(s->c_str(), &end, 10);
  if (end == s->c_str() || *end != '\0') {
    throw std::invalid_argument(std::string(name) + " is not an integer: " + *s);
  }
  return v;
}

bool env_flag(const char* name, bool fallback) {
  const auto s = env_str(name);
  if (!s) return fallback;
  return !(*s == "0" || *s == "false" || *s == "no" || *s == "off");
}

std::vector<std::string> env_list(const char* name) {
  std::vector<std::string> out;
  const auto s = env_str(name);
  if (!s) return out;
  std::size_t pos = 0;
  while (pos <= s->size()) {
    std::size_t comma = s->find(',', pos);
    if (comma == std::string::npos) comma = s->size();
    std::string item = s->substr(pos, comma - pos);
    // trim spaces
    while (!item.empty() && item.front() == ' ') item.erase(item.begin());
    while (!item.empty() && item.back() == ' ') item.pop_back();
    if (!item.empty()) out.push_back(std::move(item));
    pos = comma + 1;
  }
  return out;
}

ArgParser::ArgParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      const std::size_t eq = body.find('=');
      if (eq != std::string::npos) {
        flags_.emplace_back(body.substr(0, eq), body.substr(eq + 1));
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags_.emplace_back(body, argv[++i]);
      } else {
        switches_.push_back(body);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

std::optional<std::string> ArgParser::flag(const std::string& name) const {
  for (const auto& [k, v] : flags_)
    if (k == name) return v;
  return std::nullopt;
}

long ArgParser::flag_long(const std::string& name, long fallback) const {
  const auto v = flag(name);
  if (!v) return fallback;
  return std::stol(*v);
}

bool ArgParser::has_switch(const std::string& name) const {
  for (const auto& s : switches_)
    if (s == name) return true;
  for (const auto& [k, v] : flags_)
    if (k == name) return true;
  return false;
}

}  // namespace fghp
