// Incremental hypergraph construction: add nets pin-by-pin, set weights,
// then build() a validated, immutable Hypergraph.
#pragma once

#include <span>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace fghp::hg {

class HypergraphBuilder {
 public:
  /// Vertices are pre-declared; weights default to 1.
  explicit HypergraphBuilder(idx_t numVertices);

  idx_t num_vertices() const { return static_cast<idx_t>(vwgt_.size()); }
  idx_t num_nets() const { return static_cast<idx_t>(netCosts_.size()); }

  /// Appends a vertex (returns its id).
  idx_t add_vertex(weight_t weight = 1);

  void set_vertex_weight(idx_t v, weight_t weight);

  /// Appends a net with the given pins (must be distinct, in range) and cost.
  /// Returns the net id.
  idx_t add_net(std::span<const idx_t> pinList, weight_t cost = 1);

  /// Appends an (initially empty) net; pins are attached with add_pin.
  idx_t add_empty_net(weight_t cost = 1);

  /// Attaches a pin to an existing net (duplicates checked at build()).
  void add_pin(idx_t net, idx_t vertex);

  /// Validates (distinct pins per net) and builds. The builder is consumed.
  Hypergraph build() &&;

 private:
  std::vector<std::vector<idx_t>> netPins_;
  std::vector<weight_t> netCosts_;
  std::vector<weight_t> vwgt_;
};

}  // namespace fghp::hg
