#include "hypergraph/hypergraph.hpp"

#include <numeric>

namespace fghp::hg {

Hypergraph::Hypergraph(idx_t numVertices, std::vector<idx_t> xpins, std::vector<idx_t> pins,
                       std::vector<weight_t> vertexWeights, std::vector<weight_t> netCosts)
    : numVerts_(numVertices),
      numNets_(static_cast<idx_t>(netCosts.size())),
      xpins_(std::move(xpins)),
      pins_(std::move(pins)),
      vwgt_(std::move(vertexWeights)),
      ncost_(std::move(netCosts)) {
  FGHP_REQUIRE(numVerts_ >= 0, "vertex count must be non-negative");
  FGHP_REQUIRE(vwgt_.size() == static_cast<std::size_t>(numVerts_),
               "one weight per vertex required");
  FGHP_REQUIRE(xpins_.size() == static_cast<std::size_t>(numNets_) + 1,
               "xpins must have numNets+1 entries");
  FGHP_REQUIRE(xpins_.front() == 0, "xpins[0] must be 0");
  for (std::size_t n = 0; n < static_cast<std::size_t>(numNets_); ++n)
    FGHP_REQUIRE(xpins_[n] <= xpins_[n + 1], "xpins must be monotone");
  FGHP_REQUIRE(pins_.size() == static_cast<std::size_t>(xpins_.back()),
               "pins size must equal xpins.back()");
  for (idx_t v : pins_)
    FGHP_REQUIRE(v >= 0 && v < numVerts_, "pin vertex out of range");
  for (weight_t w : vwgt_) FGHP_REQUIRE(w >= 0, "vertex weights must be non-negative");
  for (weight_t c : ncost_) FGHP_REQUIRE(c >= 0, "net costs must be non-negative");

  totalWeight_ = std::accumulate(vwgt_.begin(), vwgt_.end(), weight_t{0});

  // Build the inverse incidence by counting sort over pins.
  xnets_.assign(static_cast<std::size_t>(numVerts_) + 1, 0);
  for (idx_t v : pins_) ++xnets_[static_cast<std::size_t>(v) + 1];
  for (std::size_t v = 0; v < static_cast<std::size_t>(numVerts_); ++v)
    xnets_[v + 1] += xnets_[v];
  nets_.resize(pins_.size());
  std::vector<idx_t> cursor(xnets_.begin(), xnets_.end() - 1);
  for (idx_t n = 0; n < numNets_; ++n) {
    for (idx_t v : this->pins(n)) {
      nets_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = n;
    }
  }
}

}  // namespace fghp::hg
