#include "hypergraph/validate.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace fghp::hg {

std::vector<std::string> validate(const Hypergraph& h) {
  std::vector<std::string> problems;

  // Duplicate pins within a net.
  for (idx_t n = 0; n < h.num_nets(); ++n) {
    const auto pinSpan = h.pins(n);
    std::vector<idx_t> sorted(pinSpan.begin(), pinSpan.end());
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      std::ostringstream os;
      os << "net " << n << " has duplicate pins";
      problems.push_back(os.str());
    }
  }

  // Inverse incidence must round-trip: v in pins(n) <=> n in nets(v).
  std::vector<std::vector<idx_t>> fromPins(static_cast<std::size_t>(h.num_vertices()));
  for (idx_t n = 0; n < h.num_nets(); ++n)
    for (idx_t v : h.pins(n)) fromPins[static_cast<std::size_t>(v)].push_back(n);
  for (idx_t v = 0; v < h.num_vertices(); ++v) {
    const auto netSpan = h.nets(v);
    std::vector<idx_t> got(netSpan.begin(), netSpan.end());
    std::sort(got.begin(), got.end());
    auto& want = fromPins[static_cast<std::size_t>(v)];
    std::sort(want.begin(), want.end());
    if (got != want) {
      std::ostringstream os;
      os << "vertex " << v << ": nets() inconsistent with pin lists";
      problems.push_back(os.str());
    }
  }

  return problems;
}

void validate_or_throw(const Hypergraph& h) {
  const auto problems = validate(h);
  if (problems.empty()) return;
  std::ostringstream os;
  os << "invalid hypergraph:";
  for (const auto& p : problems) os << "\n  - " << p;
  throw InvariantError(os.str());
}

std::vector<std::string> validate_partition(const Hypergraph& h, const Partition& p) {
  std::vector<std::string> problems;

  const idx_t K = p.num_parts();
  std::vector<weight_t> recount(static_cast<std::size_t>(K), 0);
  for (idx_t v = 0; v < h.num_vertices(); ++v) {
    const idx_t part = p.part_of(v);
    if (part < 0 || part >= K) {
      std::ostringstream os;
      if (part == kInvalidIdx) {
        os << "vertex " << v << " is unassigned";
      } else {
        os << "vertex " << v << " has part " << part << " outside [0, " << K << ")";
      }
      problems.push_back(os.str());
      continue;
    }
    recount[static_cast<std::size_t>(part)] += h.vertex_weight(v);
  }

  for (idx_t k = 0; k < K; ++k) {
    const weight_t cached = p.part_weight(k);
    const weight_t fresh = recount[static_cast<std::size_t>(k)];
    if (cached != fresh) {
      std::ostringstream os;
      os << "part " << k << " cached weight " << cached
         << " disagrees with recounted weight " << fresh;
      problems.push_back(os.str());
    }
  }

  return problems;
}

void validate_partition_or_throw(const Hypergraph& h, const Partition& p,
                                 const std::string& phase) {
  const auto problems = validate_partition(h, p);
  if (problems.empty()) return;
  std::ostringstream os;
  os << "invalid partition";
  if (!phase.empty()) os << " after phase '" << phase << "'";
  os << ":";
  for (const auto& msg : problems) os << "\n  - " << msg;
  ErrorContext ctx;
  ctx.phase = phase;
  throw InvariantError(os.str(), std::move(ctx));
}

}  // namespace fghp::hg
