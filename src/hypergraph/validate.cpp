#include "hypergraph/validate.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace fghp::hg {

std::vector<std::string> validate(const Hypergraph& h) {
  std::vector<std::string> problems;

  // Duplicate pins within a net.
  for (idx_t n = 0; n < h.num_nets(); ++n) {
    const auto pinSpan = h.pins(n);
    std::vector<idx_t> sorted(pinSpan.begin(), pinSpan.end());
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      std::ostringstream os;
      os << "net " << n << " has duplicate pins";
      problems.push_back(os.str());
    }
  }

  // Inverse incidence must round-trip: v in pins(n) <=> n in nets(v).
  std::vector<std::vector<idx_t>> fromPins(static_cast<std::size_t>(h.num_vertices()));
  for (idx_t n = 0; n < h.num_nets(); ++n)
    for (idx_t v : h.pins(n)) fromPins[static_cast<std::size_t>(v)].push_back(n);
  for (idx_t v = 0; v < h.num_vertices(); ++v) {
    const auto netSpan = h.nets(v);
    std::vector<idx_t> got(netSpan.begin(), netSpan.end());
    std::sort(got.begin(), got.end());
    auto& want = fromPins[static_cast<std::size_t>(v)];
    std::sort(want.begin(), want.end());
    if (got != want) {
      std::ostringstream os;
      os << "vertex " << v << ": nets() inconsistent with pin lists";
      problems.push_back(os.str());
    }
  }

  return problems;
}

void validate_or_throw(const Hypergraph& h) {
  const auto problems = validate(h);
  if (problems.empty()) return;
  std::ostringstream os;
  os << "invalid hypergraph:";
  for (const auto& p : problems) os << "\n  - " << p;
  throw std::logic_error(os.str());
}

}  // namespace fghp::hg
