// Deep structural validation of a hypergraph — used by tests and by the
// model builders after construction.
#pragma once

#include <string>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace fghp::hg {

/// Returns a list of human-readable problems (empty = valid):
///  * duplicate pins within a net,
///  * inverse incidence (vertex->nets) inconsistent with pins,
///  * per-net pin counts inconsistent with offsets.
std::vector<std::string> validate(const Hypergraph& h);

/// Throws std::logic_error listing all problems if validate() is non-empty.
void validate_or_throw(const Hypergraph& h);

}  // namespace fghp::hg
