// Deep structural validation of a hypergraph — used by tests, by the
// model builders after construction, and by the partitioner between
// pipeline phases when PartitionConfig::validateLevel is kStrict.
#pragma once

#include <string>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/partition.hpp"

namespace fghp::hg {

/// Returns a list of human-readable problems (empty = valid):
///  * duplicate pins within a net,
///  * inverse incidence (vertex->nets) inconsistent with pins,
///  * per-net pin counts inconsistent with offsets.
std::vector<std::string> validate(const Hypergraph& h);

/// Throws fghp::InvariantError listing all problems if validate() is
/// non-empty.
void validate_or_throw(const Hypergraph& h);

/// Returns a list of human-readable problems with a partition of h
/// (empty = valid):
///  * unassigned vertices or part ids outside [0, num_parts),
///  * cached part weights inconsistent with a fresh recount.
std::vector<std::string> validate_partition(const Hypergraph& h, const Partition& p);

/// Throws fghp::InvariantError listing all problems if validate_partition()
/// is non-empty. `phase` (optional) labels where in the pipeline the check
/// ran and is attached to the error context.
void validate_partition_or_throw(const Hypergraph& h, const Partition& p,
                                 const std::string& phase = {});

}  // namespace fghp::hg
