// Partition quality metrics: the two cutsize definitions of the paper's §2
// (eq. 2 cut-net, eq. 3 connectivity-minus-one), per-net connectivity sets,
// and the balance criterion (eq. 1).
#pragma once

#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/partition.hpp"

namespace fghp::hg {

enum class CutMetric {
  kCutNet,        ///< eq. (2): sum of costs of cut nets
  kConnectivity,  ///< eq. (3): sum of c_j * (lambda_j - 1)
};

/// Connectivity lambda_j of one net under a complete partition.
idx_t net_connectivity(const Hypergraph& h, const Partition& p, idx_t net);

/// Connectivity set Lambda_j (sorted part ids) of one net.
std::vector<idx_t> net_connectivity_set(const Hypergraph& h, const Partition& p, idx_t net);

/// chi(Pi) under the chosen metric. Partition must be complete.
weight_t cutsize(const Hypergraph& h, const Partition& p, CutMetric metric);

/// Number of cut (external) nets.
idx_t num_cut_nets(const Hypergraph& h, const Partition& p);

/// max_k W_k / W_avg - 1 (0 = perfect balance). Returns 0 for empty H.
double imbalance(const Hypergraph& h, const Partition& p);

/// The paper's "percent imbalance ratio": 100 * (Wmax - Wavg) / Wavg.
double percent_imbalance(const Hypergraph& h, const Partition& p);

/// True if every part satisfies W_k <= W_avg * (1 + eps)  (eq. 1).
bool is_balanced(const Hypergraph& h, const Partition& p, double eps);

/// Integrality-aware per-part weight cap: floor(W_avg * (1 + eps)), but never
/// below ceil(total / K) — with unit-granularity weights no partition can put
/// less than ceil(total / K) on its heaviest part, so eq. (1) is infeasible
/// below that line and every engine (multilevel repair, geometric targets,
/// the streaming cap) treats this value as the feasibility bound.
weight_t balance_cap(weight_t totalWeight, idx_t K, double eps);

/// True when every part weight is within balance_cap — eq. (1) relaxed by
/// weight integrality. A partition can satisfy this while is_balanced is
/// false only in the degenerate regime where eps * W_avg < 1.
bool is_balance_feasible(const Hypergraph& h, const Partition& p, double eps);

}  // namespace fghp::hg
