// Hypergraph H = (V, N): CSR-style pin storage plus the inverse
// vertex->nets incidence, vertex weights and net costs — the substrate under
// both the 1D column-net model and the paper's 2D fine-grain model.
#pragma once

#include <span>
#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace fghp::hg {

class Hypergraph {
 public:
  Hypergraph() = default;

  /// Takes ownership of fully-formed arrays.
  ///   xpins: numNets+1 offsets into pins (monotone, xpins[0]==0)
  ///   pins:  concatenated pin lists; a vertex may appear at most once per net
  ///   vertexWeights: one per vertex (>= 0)
  ///   netCosts: one per net (>= 0)
  /// The inverse incidence (nets of a vertex) is built here.
  /// Violations throw std::invalid_argument.
  Hypergraph(idx_t numVertices, std::vector<idx_t> xpins, std::vector<idx_t> pins,
             std::vector<weight_t> vertexWeights, std::vector<weight_t> netCosts);

  idx_t num_vertices() const { return numVerts_; }
  idx_t num_nets() const { return numNets_; }
  idx_t num_pins() const { return static_cast<idx_t>(pins_.size()); }

  /// Pins (member vertices) of a net.
  std::span<const idx_t> pins(idx_t net) const {
    FGHP_ASSERT(net >= 0 && net < numNets_);
    const auto b = static_cast<std::size_t>(xpins_[static_cast<std::size_t>(net)]);
    const auto e = static_cast<std::size_t>(xpins_[static_cast<std::size_t>(net) + 1]);
    return {pins_.data() + b, e - b};
  }

  /// Nets incident to a vertex.
  std::span<const idx_t> nets(idx_t vertex) const {
    FGHP_ASSERT(vertex >= 0 && vertex < numVerts_);
    const auto b = static_cast<std::size_t>(xnets_[static_cast<std::size_t>(vertex)]);
    const auto e = static_cast<std::size_t>(xnets_[static_cast<std::size_t>(vertex) + 1]);
    return {nets_.data() + b, e - b};
  }

  idx_t net_size(idx_t net) const {
    return xpins_[static_cast<std::size_t>(net) + 1] - xpins_[static_cast<std::size_t>(net)];
  }

  idx_t vertex_degree(idx_t vertex) const {
    return xnets_[static_cast<std::size_t>(vertex) + 1] - xnets_[static_cast<std::size_t>(vertex)];
  }

  weight_t vertex_weight(idx_t vertex) const {
    return vwgt_[static_cast<std::size_t>(vertex)];
  }

  weight_t net_cost(idx_t net) const { return ncost_[static_cast<std::size_t>(net)]; }

  /// Sum of all vertex weights.
  weight_t total_vertex_weight() const { return totalWeight_; }

  const std::vector<idx_t>& xpins() const { return xpins_; }
  const std::vector<idx_t>& pin_array() const { return pins_; }
  const std::vector<weight_t>& vertex_weights() const { return vwgt_; }
  const std::vector<weight_t>& net_costs() const { return ncost_; }

 private:
  idx_t numVerts_ = 0;
  idx_t numNets_ = 0;
  weight_t totalWeight_ = 0;
  std::vector<idx_t> xpins_{0};
  std::vector<idx_t> pins_;
  std::vector<idx_t> xnets_{0};
  std::vector<idx_t> nets_;
  std::vector<weight_t> vwgt_;
  std::vector<weight_t> ncost_;
};

}  // namespace fghp::hg
