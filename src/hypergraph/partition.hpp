// K-way partition of a hypergraph's vertex set: the per-vertex part
// assignment plus maintained part weights (the paper's Π = {P_1..P_K}).
#pragma once

#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "util/types.hpp"

namespace fghp::hg {

class Partition {
 public:
  Partition() = default;

  /// All vertices initially unassigned (part == kInvalidIdx).
  Partition(const Hypergraph& h, idx_t numParts);

  /// Adopts an existing assignment (every entry in [0, numParts)).
  Partition(const Hypergraph& h, idx_t numParts, std::vector<idx_t> assignment);

  idx_t num_parts() const { return numParts_; }
  idx_t num_vertices() const { return static_cast<idx_t>(part_.size()); }

  idx_t part_of(idx_t v) const { return part_[static_cast<std::size_t>(v)]; }
  bool assigned(idx_t v) const { return part_of(v) != kInvalidIdx; }

  /// Assigns an unassigned vertex.
  void assign(const Hypergraph& h, idx_t v, idx_t part);

  /// Moves an assigned vertex to a different part, updating part weights.
  void move(const Hypergraph& h, idx_t v, idx_t toPart);

  weight_t part_weight(idx_t part) const { return partWeight_[static_cast<std::size_t>(part)]; }
  const std::vector<weight_t>& part_weights() const { return partWeight_; }
  const std::vector<idx_t>& assignment() const { return part_; }

  /// True when every vertex has a part.
  bool complete() const;

 private:
  idx_t numParts_ = 0;
  std::vector<idx_t> part_;
  std::vector<weight_t> partWeight_;
};

}  // namespace fghp::hg
