#include "hypergraph/partition.hpp"

#include <algorithm>

namespace fghp::hg {

Partition::Partition(const Hypergraph& h, idx_t numParts)
    : numParts_(numParts),
      part_(static_cast<std::size_t>(h.num_vertices()), kInvalidIdx),
      partWeight_(static_cast<std::size_t>(numParts), 0) {
  FGHP_REQUIRE(numParts >= 1, "need at least one part");
}

Partition::Partition(const Hypergraph& h, idx_t numParts, std::vector<idx_t> assignment)
    : numParts_(numParts),
      part_(std::move(assignment)),
      partWeight_(static_cast<std::size_t>(numParts), 0) {
  FGHP_REQUIRE(numParts >= 1, "need at least one part");
  FGHP_REQUIRE(part_.size() == static_cast<std::size_t>(h.num_vertices()),
               "assignment size must equal vertex count");
  for (idx_t v = 0; v < h.num_vertices(); ++v) {
    const idx_t p = part_[static_cast<std::size_t>(v)];
    FGHP_REQUIRE(p >= 0 && p < numParts, "part id out of range");
    partWeight_[static_cast<std::size_t>(p)] += h.vertex_weight(v);
  }
}

void Partition::assign(const Hypergraph& h, idx_t v, idx_t part) {
  FGHP_ASSERT(!assigned(v));
  FGHP_ASSERT(part >= 0 && part < numParts_);
  part_[static_cast<std::size_t>(v)] = part;
  partWeight_[static_cast<std::size_t>(part)] += h.vertex_weight(v);
}

void Partition::move(const Hypergraph& h, idx_t v, idx_t toPart) {
  FGHP_ASSERT(assigned(v));
  FGHP_ASSERT(toPart >= 0 && toPart < numParts_);
  const idx_t from = part_[static_cast<std::size_t>(v)];
  if (from == toPart) return;
  partWeight_[static_cast<std::size_t>(from)] -= h.vertex_weight(v);
  partWeight_[static_cast<std::size_t>(toPart)] += h.vertex_weight(v);
  part_[static_cast<std::size_t>(v)] = toPart;
}

bool Partition::complete() const {
  return std::none_of(part_.begin(), part_.end(),
                      [](idx_t p) { return p == kInvalidIdx; });
}

}  // namespace fghp::hg
