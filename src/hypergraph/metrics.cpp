#include "hypergraph/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/sparse_acc.hpp"

namespace fghp::hg {

idx_t net_connectivity(const Hypergraph& h, const Partition& p, idx_t net) {
  return static_cast<idx_t>(net_connectivity_set(h, p, net).size());
}

std::vector<idx_t> net_connectivity_set(const Hypergraph& h, const Partition& p, idx_t net) {
  std::vector<idx_t> parts;
  for (idx_t v : h.pins(net)) {
    const idx_t pt = p.part_of(v);
    FGHP_ASSERT(pt != kInvalidIdx);
    parts.push_back(pt);
  }
  std::sort(parts.begin(), parts.end());
  parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
  return parts;
}

weight_t cutsize(const Hypergraph& h, const Partition& p, CutMetric metric) {
  FGHP_REQUIRE(p.complete(), "cutsize requires a complete partition");
  weight_t total = 0;
  SparseAccumulator<idx_t> seen(p.num_parts());
  for (idx_t n = 0; n < h.num_nets(); ++n) {
    seen.clear();
    for (idx_t v : h.pins(n)) seen.add(p.part_of(v), 1);
    const auto lambda = static_cast<idx_t>(seen.keys().size());
    if (lambda > 1) {
      total += metric == CutMetric::kCutNet ? h.net_cost(n)
                                            : h.net_cost(n) * (lambda - 1);
    }
  }
  return total;
}

idx_t num_cut_nets(const Hypergraph& h, const Partition& p) {
  FGHP_REQUIRE(p.complete(), "requires a complete partition");
  idx_t cut = 0;
  SparseAccumulator<idx_t> seen(p.num_parts());
  for (idx_t n = 0; n < h.num_nets(); ++n) {
    seen.clear();
    for (idx_t v : h.pins(n)) {
      seen.add(p.part_of(v), 1);
      if (seen.keys().size() > 1) break;
    }
    if (seen.keys().size() > 1) ++cut;
  }
  return cut;
}

double imbalance(const Hypergraph& h, const Partition& p) {
  if (h.total_vertex_weight() == 0) return 0.0;
  const double avg =
      static_cast<double>(h.total_vertex_weight()) / static_cast<double>(p.num_parts());
  weight_t wmax = 0;
  for (idx_t k = 0; k < p.num_parts(); ++k) wmax = std::max(wmax, p.part_weight(k));
  return static_cast<double>(wmax) / avg - 1.0;
}

double percent_imbalance(const Hypergraph& h, const Partition& p) {
  return 100.0 * imbalance(h, p);
}

bool is_balanced(const Hypergraph& h, const Partition& p, double eps) {
  const double avg =
      static_cast<double>(h.total_vertex_weight()) / static_cast<double>(p.num_parts());
  const double cap = avg * (1.0 + eps);
  for (idx_t k = 0; k < p.num_parts(); ++k) {
    // A tiny epsilon absorbs the discrete-weight rounding at the cap.
    if (static_cast<double>(p.part_weight(k)) > cap + 1e-9) return false;
  }
  return true;
}

weight_t balance_cap(weight_t totalWeight, idx_t K, double eps) {
  FGHP_REQUIRE(K >= 1, "balance_cap requires K >= 1");
  const double avg = static_cast<double>(totalWeight) / static_cast<double>(K);
  const auto soft = static_cast<weight_t>(std::floor(avg * (1.0 + eps) + 1e-9));
  const auto hard = static_cast<weight_t>((totalWeight + K - 1) / K);  // ceil
  return std::max(soft, hard);
}

bool is_balance_feasible(const Hypergraph& h, const Partition& p, double eps) {
  const weight_t cap = balance_cap(h.total_vertex_weight(), p.num_parts(), eps);
  for (idx_t k = 0; k < p.num_parts(); ++k) {
    if (p.part_weight(k) > cap) return false;
  }
  return true;
}

}  // namespace fghp::hg
