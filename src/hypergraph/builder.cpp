#include "hypergraph/builder.hpp"

#include <algorithm>

#include "util/fault.hpp"

namespace fghp::hg {

HypergraphBuilder::HypergraphBuilder(idx_t numVertices) {
  FGHP_REQUIRE(numVertices >= 0, "vertex count must be non-negative");
  vwgt_.assign(static_cast<std::size_t>(numVertices), 1);
}

idx_t HypergraphBuilder::add_vertex(weight_t weight) {
  FGHP_REQUIRE(weight >= 0, "vertex weight must be non-negative");
  vwgt_.push_back(weight);
  return static_cast<idx_t>(vwgt_.size()) - 1;
}

void HypergraphBuilder::set_vertex_weight(idx_t v, weight_t weight) {
  FGHP_REQUIRE(v >= 0 && v < num_vertices(), "vertex id out of range");
  FGHP_REQUIRE(weight >= 0, "vertex weight must be non-negative");
  vwgt_[static_cast<std::size_t>(v)] = weight;
}

idx_t HypergraphBuilder::add_net(std::span<const idx_t> pinList, weight_t cost) {
  const idx_t id = add_empty_net(cost);
  for (idx_t v : pinList) add_pin(id, v);
  return id;
}

idx_t HypergraphBuilder::add_empty_net(weight_t cost) {
  FGHP_REQUIRE(cost >= 0, "net cost must be non-negative");
  netPins_.emplace_back();
  netCosts_.push_back(cost);
  return static_cast<idx_t>(netCosts_.size()) - 1;
}

void HypergraphBuilder::add_pin(idx_t net, idx_t vertex) {
  FGHP_REQUIRE(net >= 0 && net < num_nets(), "net id out of range");
  FGHP_REQUIRE(vertex >= 0 && vertex < num_vertices(), "pin vertex out of range");
  netPins_[static_cast<std::size_t>(net)].push_back(vertex);
}

Hypergraph HypergraphBuilder::build() && {
  fault::check("hg.build");
  std::vector<idx_t> xpins;
  xpins.reserve(netPins_.size() + 1);
  xpins.push_back(0);
  std::size_t total = 0;
  for (auto& pins : netPins_) {
    // Detect duplicate pins without disturbing insertion order.
    std::vector<idx_t> sorted(pins);
    std::sort(sorted.begin(), sorted.end());
    FGHP_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
                 "duplicate pin within a net");
    total += pins.size();
    xpins.push_back(static_cast<idx_t>(total));
  }
  std::vector<idx_t> pins;
  pins.reserve(total);
  for (const auto& np : netPins_) pins.insert(pins.end(), np.begin(), np.end());
  // Read the vertex count before the argument moves can empty vwgt_
  // (argument evaluation order is unspecified).
  const idx_t numVerts = num_vertices();
  return Hypergraph(numVerts, std::move(xpins), std::move(pins), std::move(vwgt_),
                    std::move(netCosts_));
}

}  // namespace fghp::hg
