// The fine-grain hypergraph model for 2D decomposition of SpGEMM — the
// paper's model (one vertex per atomic task, one net per communicated datum)
// transplanted to the second workload.
//
// One vertex per scalar task c_ij += a_ik * b_kj (unit weight). One net per
// *active* stored entry of A (pins: the tasks multiplying it; models the
// expand of a_ik), one net per active stored entry of B (expand of b_kj),
// and one net per stored entry of C (pins: its contributing tasks; models
// the fold of c_ij). Entries of A or B no task reads get no net — they are
// never communicated. All nets have unit cost, so with owners decoded INTO
// each net's connectivity set the lambda-1 cutsize of a partition equals the
// exact total communication volume (spgemm::analyze cross-checks it).
#pragma once

#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/partition.hpp"
#include "partition/config.hpp"
#include "spgemm/plan.hpp"
#include "spgemm/tasks.hpp"

namespace fghp::spgemm {

struct SpgemmModel {
  hg::Hypergraph h;

  /// aNetOf[e] / bNetOf[f] = net of that stored entry, kInvalidIdx when the
  /// entry is inactive (no task reads it). C entry g always has a net,
  /// cNetBase + g.
  std::vector<idx_t> aNetOf, bNetOf;
  idx_t cNetBase = 0;
};

/// Builds the fine-grain SpGEMM hypergraph of a task graph
/// (|V| = num_tasks, |N| = #active A entries + #active B entries + num_c).
SpgemmModel build_spgemm_finegrain(const TaskGraph& t);

/// Decodes a complete K-way partition: proc(task) = part[vertex]; owner of
/// an A/B/C entry = the part of the first task (canonical order) reading or
/// contributing to it, so the owner always lies in the entry's connectivity
/// set and the cutsize prices its traffic exactly. Inactive entries go to
/// processor 0 (they cost nothing wherever they live).
SpgemmDecomposition decode_spgemm_finegrain(const TaskGraph& t, const SpgemmModel& m,
                                            const hg::Partition& p);

/// One end-to-end fine-grain SpGEMM partitioning run.
struct SpgemmRun {
  SpgemmDecomposition decomp;
  double partitionSeconds = 0.0;
  weight_t cutsize = 0;  ///< lambda-1 cutsize == total communication volume
  double imbalance = 0.0;
  int numRecoveries = 0;
  int numDegraded = 0;
};

/// Model build + K-way partition + decode. An empty task graph (no matching
/// pairs) yields the trivial all-processor-0 decomposition without invoking
/// the partitioner.
SpgemmRun run_spgemm_finegrain(const TaskGraph& t, idx_t K,
                               const part::PartitionConfig& cfg);

}  // namespace fghp::spgemm
