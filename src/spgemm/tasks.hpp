// Fine-grain task graph of sparse matrix-matrix multiply C = A * B: the
// symbolic structure that both the hypergraph model (spgemm/finegrain.hpp)
// and the execution schedule (spgemm/plan.hpp) are built from.
//
// The atomic task is one scalar multiply c_ij += a_ik * b_kj — one task per
// matching (a_ik, b_kj) pair, exactly the paper's fine-grain granularity
// transplanted from SpMV (task y_i^j = a_ij * x_j) to SpGEMM. The three
// index spaces are the *stored entries* of the operands and the result:
// A entry e (CSR order of A), B entry f (CSR order of B), C entry g (row
// -major, columns ascending — the canonical result pattern). Tasks are kept
// in the canonical deterministic order: C-entry-major, and within one C
// entry by ascending inner index k — this is the accumulation order every
// executor reproduces bit-identically.
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace fghp::spgemm {

struct TaskGraph {
  idx_t aRows = 0;  ///< rows of A (= rows of C)
  idx_t inner = 0;  ///< cols of A = rows of B
  idx_t bCols = 0;  ///< cols of B (= cols of C)
  idx_t numA = 0;   ///< size of the A entry space (= nnz(A))
  idx_t numB = 0;   ///< size of the B entry space (= nnz(B))

  /// The symbolic pattern of C, row-major with ascending columns per row:
  /// C entry g sits at (cRow[g], cCol[g]).
  std::vector<idx_t> cRow, cCol;

  /// One scalar task per (a_ik, b_kj) pair, canonical order (see above):
  /// task s computes cVals[taskC[s]] += aVals[taskA[s]] * bVals[taskB[s]].
  std::vector<idx_t> taskC, taskA, taskB;

  idx_t num_c() const { return static_cast<idx_t>(cRow.size()); }
  idx_t num_tasks() const { return static_cast<idx_t>(taskC.size()); }
};

/// Symbolic multiply: enumerates the C pattern and every scalar task of
/// C = A * B. Requires a.num_cols() == b.num_rows(). Deterministic.
TaskGraph build_tasks(const sparse::Csr& a, const sparse::Csr& b);

/// Reference numeric multiply with a dense per-row accumulator, independent
/// of the task list: returns the values of C aligned to t.cRow/cCol. Used by
/// tests to cross-check the distributed executor's result.
std::vector<double> reference_multiply(const sparse::Csr& a, const sparse::Csr& b,
                                       const TaskGraph& t);

}  // namespace fghp::spgemm
