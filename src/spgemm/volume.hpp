// Communication analysis of a fine-grain SpGEMM decomposition — the SpGEMM
// extension of comm/volume.hpp (same quantities, three phases instead of
// two).
//
// Expand-A / expand-B (pre-communication): the owner of entry value a_ik
// (resp. b_kj) sends it to every processor that runs a task reading it and
// is not the owner — one word per remote needer. Fold-C (post): every
// processor computing a partial of c_ij and not owning it sends that partial
// to owner(c_ij) — one word per remote contributor. For partitions of the
// fine-grain SpGEMM hypergraph (spgemm/finegrain.hpp) the total equals the
// lambda-1 cutsize — the paper's exact-volume claim carried to the second
// workload, enforced by our tests.
#pragma once

#include <vector>

#include "spgemm/plan.hpp"
#include "spgemm/tasks.hpp"

namespace fghp::spgemm {

struct SpgemmCommStats {
  idx_t numProcs = 0;

  weight_t expandAWords = 0;  ///< total words expanding A entry values
  weight_t expandBWords = 0;  ///< total words expanding B entry values
  weight_t foldCWords = 0;    ///< total words folding C partials
  weight_t totalWords = 0;    ///< all three phases

  /// Per-processor words sent / received (all phases combined).
  std::vector<weight_t> sendWords;
  std::vector<weight_t> recvWords;
  weight_t maxProcWords = 0;  ///< max_p (sendWords[p] + recvWords[p])

  /// Directed messages (distinct (src, dst) pairs per phase).
  idx_t expandAMessages = 0;
  idx_t expandBMessages = 0;
  idx_t foldCMessages = 0;
  idx_t totalMessages = 0;
};

/// Analyzes the decomposition from first principles (need/contributor sets),
/// independent of the schedule builder — build_schedule's total_words() /
/// total_messages() must reproduce these totals exactly.
SpgemmCommStats analyze(const TaskGraph& t, const SpgemmDecomposition& d);

}  // namespace fghp::spgemm
