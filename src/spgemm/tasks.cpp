#include "spgemm/tasks.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/trace.hpp"

namespace fghp::spgemm {

namespace {
constexpr std::size_t uz(idx_t v) { return static_cast<std::size_t>(v); }
}  // namespace

TaskGraph build_tasks(const sparse::Csr& a, const sparse::Csr& b) {
  FGHP_REQUIRE(a.num_cols() == b.num_rows(),
               "SpGEMM operand shapes do not chain (cols(A) != rows(B))");
  trace::TraceScope span("spgemm", "tasks.build", "nnzA", a.nnz(), "nnzB", b.nnz());

  TaskGraph t;
  t.aRows = a.num_rows();
  t.inner = a.num_cols();
  t.bCols = b.num_cols();
  t.numA = a.nnz();
  t.numB = b.nnz();

  // Row starts of B in global entry coordinates (B entry f = CSR position).
  const std::vector<idx_t>& bPtr = b.row_ptr();

  // One row of C at a time: generate (j, A entry, B entry) triples in
  // k-ascending order (A rows store ascending columns), then a stable sort
  // by j groups them per C entry while preserving the k order inside each —
  // the canonical task order.
  struct Triple {
    idx_t j, ea, eb;
  };
  std::vector<Triple> row;
  idx_t ea = 0;
  for (idx_t i = 0; i < t.aRows; ++i) {
    row.clear();
    for (idx_t k : a.row_cols(i)) {
      for (idx_t f = bPtr[uz(k)]; f < bPtr[uz(k) + 1]; ++f)
        row.push_back({b.col_ind()[uz(f)], ea, f});
      ++ea;
    }
    std::stable_sort(row.begin(), row.end(),
                     [](const Triple& x, const Triple& y) { return x.j < y.j; });
    idx_t prevJ = kInvalidIdx;
    for (const Triple& tr : row) {
      if (tr.j != prevJ) {
        t.cRow.push_back(i);
        t.cCol.push_back(tr.j);
        prevJ = tr.j;
      }
      t.taskC.push_back(t.num_c() - 1);
      t.taskA.push_back(tr.ea);
      t.taskB.push_back(tr.eb);
    }
  }
  return t;
}

std::vector<double> reference_multiply(const sparse::Csr& a, const sparse::Csr& b,
                                       const TaskGraph& t) {
  FGHP_REQUIRE(a.nnz() == t.numA && b.nnz() == t.numB && a.num_rows() == t.aRows,
               "task graph does not match the operands");
  const std::vector<idx_t>& bPtr = b.row_ptr();
  std::vector<double> acc(uz(t.bCols), 0.0);
  std::vector<double> c(uz(t.num_c()), 0.0);
  std::size_t g = 0;
  for (idx_t i = 0; i < t.aRows; ++i) {
    const auto aCols = a.row_cols(i);
    const auto aVals = a.row_vals(i);
    for (std::size_t p = 0; p < aCols.size(); ++p) {
      const idx_t k = aCols[p];
      for (idx_t f = bPtr[uz(k)]; f < bPtr[uz(k) + 1]; ++f)
        acc[uz(b.col_ind()[uz(f)])] += aVals[p] * b.values()[uz(f)];
    }
    // Drain the accumulator through the pattern (ascending columns of row i)
    // and re-zero only the touched positions.
    for (; g < uz(t.num_c()) && t.cRow[g] == i; ++g) {
      c[g] = acc[uz(t.cCol[g])];
      acc[uz(t.cCol[g])] = 0.0;
    }
  }
  FGHP_REQUIRE(g == uz(t.num_c()), "task-graph C pattern inconsistent with operands");
  return c;
}

}  // namespace fghp::spgemm
