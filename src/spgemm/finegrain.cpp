#include "spgemm/finegrain.hpp"

#include "partition/hg/partitioner.hpp"
#include "util/assert.hpp"
#include "util/trace.hpp"

namespace fghp::spgemm {

namespace {
constexpr std::size_t uz(idx_t v) { return static_cast<std::size_t>(v); }
}  // namespace

SpgemmModel build_spgemm_finegrain(const TaskGraph& t) {
  trace::TraceScope span("spgemm", "build.finegrain", "tasks", t.num_tasks(), "nnzC",
                         t.num_c());

  SpgemmModel m;
  m.aNetOf.assign(uz(t.numA), kInvalidIdx);
  m.bNetOf.assign(uz(t.numB), kInvalidIdx);

  // Pin counts per entry; an entry with no tasks stays net-less.
  std::vector<idx_t> aDeg(uz(t.numA), 0), bDeg(uz(t.numB), 0), cDeg(uz(t.num_c()), 0);
  for (idx_t w = 0; w < t.num_tasks(); ++w) {
    ++aDeg[uz(t.taskA[uz(w)])];
    ++bDeg[uz(t.taskB[uz(w)])];
    ++cDeg[uz(t.taskC[uz(w)])];
  }

  // Net layout: active A nets, then active B nets, then all C nets (every C
  // entry has at least one contributing task by construction).
  idx_t numNets = 0;
  for (idx_t e = 0; e < t.numA; ++e)
    if (aDeg[uz(e)] > 0) m.aNetOf[uz(e)] = numNets++;
  for (idx_t f = 0; f < t.numB; ++f)
    if (bDeg[uz(f)] > 0) m.bNetOf[uz(f)] = numNets++;
  m.cNetBase = numNets;
  numNets += t.num_c();

  std::vector<idx_t> xpins(uz(numNets) + 1, 0);
  for (idx_t e = 0; e < t.numA; ++e)
    if (m.aNetOf[uz(e)] != kInvalidIdx) xpins[uz(m.aNetOf[uz(e)]) + 1] = aDeg[uz(e)];
  for (idx_t f = 0; f < t.numB; ++f)
    if (m.bNetOf[uz(f)] != kInvalidIdx) xpins[uz(m.bNetOf[uz(f)]) + 1] = bDeg[uz(f)];
  for (idx_t g = 0; g < t.num_c(); ++g) xpins[uz(m.cNetBase + g) + 1] = cDeg[uz(g)];
  for (std::size_t k = 0; k < uz(numNets); ++k) xpins[k + 1] += xpins[k];

  std::vector<idx_t> pins(uz(xpins.back()));
  std::vector<idx_t> cursor(xpins.begin(), xpins.end() - 1);
  for (idx_t w = 0; w < t.num_tasks(); ++w) {
    pins[uz(cursor[uz(m.aNetOf[uz(t.taskA[uz(w)])])]++)] = w;
    pins[uz(cursor[uz(m.bNetOf[uz(t.taskB[uz(w)])])]++)] = w;
    pins[uz(cursor[uz(m.cNetBase + t.taskC[uz(w)])]++)] = w;
  }

  std::vector<weight_t> vwgt(uz(t.num_tasks()), 1);
  std::vector<weight_t> costs(uz(numNets), 1);
  m.h = hg::Hypergraph(t.num_tasks(), std::move(xpins), std::move(pins),
                       std::move(vwgt), std::move(costs));
  return m;
}

SpgemmDecomposition decode_spgemm_finegrain(const TaskGraph& t, const SpgemmModel& m,
                                            const hg::Partition& p) {
  FGHP_REQUIRE(p.complete(), "decode requires a complete partition");
  FGHP_REQUIRE(p.num_vertices() == m.h.num_vertices(), "partition/model mismatch");

  SpgemmDecomposition d;
  d.numProcs = p.num_parts();
  d.taskOwner.resize(uz(t.num_tasks()));
  for (idx_t w = 0; w < t.num_tasks(); ++w) d.taskOwner[uz(w)] = p.part_of(w);

  // Owner of an entry = part of its first task in canonical order; the owner
  // is then in the net's connectivity set, so the net's lambda-1 contribution
  // equals its exact expand/fold word count. Inactive entries -> processor 0.
  d.aOwner.assign(uz(t.numA), 0);
  d.bOwner.assign(uz(t.numB), 0);
  d.cOwner.assign(uz(t.num_c()), 0);
  std::vector<bool> aSeen(uz(t.numA), false), bSeen(uz(t.numB), false),
      cSeen(uz(t.num_c()), false);
  for (idx_t w = 0; w < t.num_tasks(); ++w) {
    const idx_t proc = d.taskOwner[uz(w)];
    const idx_t e = t.taskA[uz(w)];
    const idx_t f = t.taskB[uz(w)];
    const idx_t g = t.taskC[uz(w)];
    if (!aSeen[uz(e)]) {
      aSeen[uz(e)] = true;
      d.aOwner[uz(e)] = proc;
    }
    if (!bSeen[uz(f)]) {
      bSeen[uz(f)] = true;
      d.bOwner[uz(f)] = proc;
    }
    if (!cSeen[uz(g)]) {
      cSeen[uz(g)] = true;
      d.cOwner[uz(g)] = proc;
    }
  }
  validate(t, d);
  return d;
}

SpgemmRun run_spgemm_finegrain(const TaskGraph& t, idx_t K,
                               const part::PartitionConfig& cfg) {
  FGHP_REQUIRE(K > 0, "need at least one processor");
  SpgemmRun run;
  if (t.num_tasks() == 0) {
    run.decomp.numProcs = K;
    run.decomp.aOwner.assign(uz(t.numA), 0);
    run.decomp.bOwner.assign(uz(t.numB), 0);
    run.decomp.cOwner.assign(uz(t.num_c()), 0);
    return run;
  }

  const SpgemmModel m = build_spgemm_finegrain(t);
  part::HgResult r = part::partition_hypergraph(m.h, K, cfg);
  run.partitionSeconds = r.seconds;
  run.cutsize = r.cutsize;
  run.imbalance = r.imbalance;
  run.numRecoveries = r.numRecoveries;
  run.numDegraded = r.numDegraded;
  run.decomp = decode_spgemm_finegrain(t, m, r.partition);
  return run;
}

}  // namespace fghp::spgemm
