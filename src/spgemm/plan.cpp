#include "spgemm/plan.hpp"

#include <algorithm>
#include <array>
#include <map>

#include "util/assert.hpp"
#include "util/trace.hpp"

namespace fghp::spgemm {

namespace {

constexpr std::size_t uz(idx_t v) { return static_cast<std::size_t>(v); }

void check_owners(const std::vector<idx_t>& owners, std::size_t want, idx_t K,
                  const char* what) {
  FGHP_REQUIRE(owners.size() == want, "decomposition owner array has the wrong size");
  for (idx_t p : owners)
    FGHP_REQUIRE(p >= 0 && p < K, what);
}

}  // namespace

void validate(const TaskGraph& t, const SpgemmDecomposition& d) {
  FGHP_REQUIRE(d.numProcs > 0, "decomposition needs at least one processor");
  check_owners(d.taskOwner, uz(t.num_tasks()), d.numProcs, "task owner out of range");
  check_owners(d.aOwner, uz(t.numA), d.numProcs, "A entry owner out of range");
  check_owners(d.bOwner, uz(t.numB), d.numProcs, "B entry owner out of range");
  check_owners(d.cOwner, uz(t.num_c()), d.numProcs, "C entry owner out of range");
}

exec::Schedule build_schedule(const TaskGraph& t, const SpgemmDecomposition& d) {
  trace::TraceScope span("spgemm", "plan.build", "procs", d.numProcs, "tasks",
                         t.num_tasks());
  validate(t, d);
  const idx_t K = d.numProcs;

  exec::Schedule s;
  s.traceCat = "spgemm";
  s.traceIteration = "spgemm.iteration";
  s.metricPrefix = "spgemm";
  s.numProcs = K;
  s.inputs = {{"A", t.numA}, {"B", t.numB}};
  s.output = {"C", t.num_c()};
  s.lhsConst = false;
  s.lhsSpace = 0;
  s.rhsSpace = 1;
  s.inComm.assign(2, std::vector<exec::SpaceComm>(uz(K)));
  s.outComm.resize(uz(K));
  s.tasks.resize(uz(K));

  // Per-processor task lists in the canonical task order.
  for (idx_t w = 0; w < t.num_tasks(); ++w) {
    exec::ProcTasks& pt = s.tasks[uz(d.taskOwner[uz(w)])];
    pt.outId.push_back(t.taskC[uz(w)]);
    pt.lhsId.push_back(t.taskA[uz(w)]);
    pt.rhsId.push_back(t.taskB[uz(w)]);
  }

  // Ownership lists in ascending id order.
  for (idx_t e = 0; e < t.numA; ++e)
    s.inComm[0][uz(d.aOwner[uz(e)])].owned.push_back(e);
  for (idx_t f = 0; f < t.numB; ++f)
    s.inComm[1][uz(d.bOwner[uz(f)])].owned.push_back(f);
  for (idx_t g = 0; g < t.num_c(); ++g)
    s.outComm[uz(d.cOwner[uz(g)])].owned.push_back(g);

  // Expand needs: which processors run a task reading entry e but do not own
  // its value (src = owner, dst = needer). Fold contributions: processors
  // computing a partial of C entry g that they do not own (src = contributor,
  // dst = owner). Mirrors spmv::build_plan.
  std::vector<std::vector<idx_t>> need(uz(t.numA) + uz(t.numB) + uz(t.num_c()));
  auto needA = [&](idx_t e) -> std::vector<idx_t>& { return need[uz(e)]; };
  auto needB = [&](idx_t f) -> std::vector<idx_t>& { return need[uz(t.numA) + uz(f)]; };
  auto contribC = [&](idx_t g) -> std::vector<idx_t>& {
    return need[uz(t.numA) + uz(t.numB) + uz(g)];
  };
  for (idx_t w = 0; w < t.num_tasks(); ++w) {
    const idx_t p = d.taskOwner[uz(w)];
    needA(t.taskA[uz(w)]).push_back(p);
    needB(t.taskB[uz(w)]).push_back(p);
    contribC(t.taskC[uz(w)]).push_back(p);
  }
  auto dedupe = [](std::vector<idx_t>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };

  // Materialize messages; std::map iteration gives deterministic order and
  // the ascending id emission keeps every id list strictly increasing.
  std::map<std::pair<idx_t, idx_t>, std::vector<idx_t>> expandA, expandB, foldC;
  for (idx_t e = 0; e < t.numA; ++e) {
    auto& n = needA(e);
    dedupe(n);
    const idx_t owner = d.aOwner[uz(e)];
    for (idx_t p : n)
      if (p != owner) expandA[{owner, p}].push_back(e);
  }
  for (idx_t f = 0; f < t.numB; ++f) {
    auto& n = needB(f);
    dedupe(n);
    const idx_t owner = d.bOwner[uz(f)];
    for (idx_t p : n)
      if (p != owner) expandB[{owner, p}].push_back(f);
  }
  for (idx_t g = 0; g < t.num_c(); ++g) {
    auto& n = contribC(g);
    dedupe(n);
    const idx_t owner = d.cOwner[uz(g)];
    for (idx_t p : n)
      if (p != owner) foldC[{p, owner}].push_back(g);
  }

  auto emit = [](const std::map<std::pair<idx_t, idx_t>, std::vector<idx_t>>& msgs,
                 std::vector<exec::SpaceComm>& comm) {
    for (const auto& [key, ids] : msgs) {
      const auto [src, dst] = key;
      auto& sender = comm[uz(src)];
      auto& receiver = comm[uz(dst)];
      const auto sendIndex = static_cast<idx_t>(sender.sends.size());
      sender.sends.push_back({dst, ids, kInvalidIdx});
      receiver.recvs.push_back({src, ids, sendIndex});
    }
  };
  emit(expandA, s.inComm[0]);
  emit(expandB, s.inComm[1]);
  emit(foldC, s.outComm);

  return s;
}

SpgemmSession::SpgemmSession(const TaskGraph& t, const SpgemmDecomposition& d,
                             const CompileOptions& opts)
    : s_(build_schedule(t, d), opts) {}

void SpgemmSession::run(std::span<const double> aVals, std::span<const double> bVals,
                        std::vector<double>& c, ExecStats* stats) {
  const std::array<std::span<const double>, 2> ins{aVals, bVals};
  s_.run(ins, c, stats);
}

void SpgemmSession::run_mt(std::span<const double> aVals,
                           std::span<const double> bVals, std::vector<double>& c,
                           idx_t numThreads, ExecStats* stats) {
  const std::array<std::span<const double>, 2> ins{aVals, bVals};
  s_.run_mt(ins, c, numThreads, stats);
}

}  // namespace fghp::spgemm
