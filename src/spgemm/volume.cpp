#include "spgemm/volume.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "util/assert.hpp"

namespace fghp::spgemm {

namespace {

constexpr std::size_t uz(idx_t v) { return static_cast<std::size_t>(v); }

/// Accumulates one phase: for entry with owner `owner` and the deduplicated
/// processor set `procs` (needers for expand, contributors for fold), every
/// non-owner member costs one word src->dst. For expand src = owner and dst
/// = needer; for fold src = contributor and dst = owner.
struct PhaseAccum {
  weight_t words = 0;
  std::set<std::pair<idx_t, idx_t>> pairs;

  void add(idx_t src, idx_t dst, std::vector<weight_t>& send,
           std::vector<weight_t>& recv) {
    ++words;
    ++send[uz(src)];
    ++recv[uz(dst)];
    pairs.insert({src, dst});
  }
};

}  // namespace

SpgemmCommStats analyze(const TaskGraph& t, const SpgemmDecomposition& d) {
  validate(t, d);
  FGHP_REQUIRE(d.numProcs <= 4096, "comm analysis supports at most 4096 processors");

  SpgemmCommStats st;
  st.numProcs = d.numProcs;
  st.sendWords.assign(uz(d.numProcs), 0);
  st.recvWords.assign(uz(d.numProcs), 0);

  // Per-entry processor sets, rebuilt from the task list alone.
  std::vector<std::vector<idx_t>> needA(uz(t.numA)), needB(uz(t.numB)),
      contribC(uz(t.num_c()));
  for (idx_t w = 0; w < t.num_tasks(); ++w) {
    const idx_t p = d.taskOwner[uz(w)];
    needA[uz(t.taskA[uz(w)])].push_back(p);
    needB[uz(t.taskB[uz(w)])].push_back(p);
    contribC[uz(t.taskC[uz(w)])].push_back(p);
  }
  auto dedupe = [](std::vector<idx_t>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };

  PhaseAccum expandA, expandB, foldC;
  for (idx_t e = 0; e < t.numA; ++e) {
    dedupe(needA[uz(e)]);
    for (idx_t p : needA[uz(e)])
      if (p != d.aOwner[uz(e)])
        expandA.add(d.aOwner[uz(e)], p, st.sendWords, st.recvWords);
  }
  for (idx_t f = 0; f < t.numB; ++f) {
    dedupe(needB[uz(f)]);
    for (idx_t p : needB[uz(f)])
      if (p != d.bOwner[uz(f)])
        expandB.add(d.bOwner[uz(f)], p, st.sendWords, st.recvWords);
  }
  for (idx_t g = 0; g < t.num_c(); ++g) {
    dedupe(contribC[uz(g)]);
    for (idx_t p : contribC[uz(g)])
      if (p != d.cOwner[uz(g)])
        foldC.add(p, d.cOwner[uz(g)], st.sendWords, st.recvWords);
  }

  st.expandAWords = expandA.words;
  st.expandBWords = expandB.words;
  st.foldCWords = foldC.words;
  st.totalWords = expandA.words + expandB.words + foldC.words;
  st.expandAMessages = static_cast<idx_t>(expandA.pairs.size());
  st.expandBMessages = static_cast<idx_t>(expandB.pairs.size());
  st.foldCMessages = static_cast<idx_t>(foldC.pairs.size());
  st.totalMessages = st.expandAMessages + st.expandBMessages + st.foldCMessages;
  for (idx_t p = 0; p < d.numProcs; ++p)
    st.maxProcWords =
        std::max(st.maxProcWords, st.sendWords[uz(p)] + st.recvWords[uz(p)]);
  return st;
}

}  // namespace fghp::spgemm
