// Distributed SpGEMM schedule: the second workload of the workload-agnostic
// execution core, and the proof that the core really is workload-agnostic.
//
// A fine-grain SpGEMM decomposition assigns every scalar task c_ij += a_ik *
// b_kj to a processor and every stored entry of A, B and C to an owner. Its
// lowering is an exec::Schedule with TWO input spaces — "A" (lhs, gathered)
// and "B" (rhs, gathered) — and output space "C": superstep 1 expands both
// operands' entry values, superstep 2 runs the scalar tasks (kern::pair_dot
// groups), superstep 3 folds the C partials to their owners. Exactly the
// SpMV shape with one more input space and no baked constants; the same
// compiled engine executes both (DESIGN.md §14).
#pragma once

#include <span>
#include <vector>

#include "exec/compiled.hpp"
#include "spgemm/tasks.hpp"
#include "util/cancel.hpp"

namespace fghp::spgemm {

/// A fine-grain 2D decomposition of one SpGEMM: processor per scalar task,
/// owner per stored entry of each operand and of the result.
struct SpgemmDecomposition {
  idx_t numProcs = 0;
  std::vector<idx_t> taskOwner;  ///< [num_tasks] processor of each task
  std::vector<idx_t> aOwner;     ///< [numA] owner of each A entry value
  std::vector<idx_t> bOwner;     ///< [numB] owner of each B entry value
  std::vector<idx_t> cOwner;     ///< [num_c] owner of each C entry value
};

/// Cheap validity check of the decomposition against its task graph (sizes
/// and owner ranges); throws fghp::InvariantError on mismatch.
void validate(const TaskGraph& t, const SpgemmDecomposition& d);

/// Lowers (task graph, decomposition) to the generic execution schedule.
/// Deterministic: ids inside every message and the messages themselves are
/// sorted (the strictly-increasing contract exec::validate_schedule
/// enforces); per-processor tasks keep the canonical task order. Trace and
/// metric labels are the "spgemm" family. The word/message totals of the
/// schedule equal spgemm::analyze's by construction — tests assert it.
exec::Schedule build_schedule(const TaskGraph& t, const SpgemmDecomposition& d);

using ExecStats = exec::ExecStats;
using CompileOptions = exec::CompileOptions;

/// Owns a compiled SpGEMM image plus the scratch to execute it repeatedly —
/// exec::Session with the two-input calling convention run(aVals, bVals, c).
/// Zero heap allocation per serial iteration after the first; bit-identical
/// serial/MT results at any thread count; the `exec.*` fault and cancel
/// sites and the retry/serial-fallback ladder all armed exactly as for SpMV.
class SpgemmSession {
 public:
  SpgemmSession(const TaskGraph& t, const SpgemmDecomposition& d,
                const CompileOptions& opts = {});

  const exec::Image& image() const { return s_.image(); }
  void set_cancel(cancel::CancelToken token) { s_.set_cancel(std::move(token)); }
  long iterations_started() const { return s_.iterations_started(); }

  /// Serial distributed multiply: aVals/bVals are the operand entry values
  /// in CSR order; c is resized to the C pattern and accumulated in the
  /// canonical task order.
  void run(std::span<const double> aVals, std::span<const double> bVals,
           std::vector<double>& c, ExecStats* stats = nullptr);

  /// Threaded BSP multiply (expand-A/expand-B, pair-multiply, fold-C).
  void run_mt(std::span<const double> aVals, std::span<const double> bVals,
              std::vector<double>& c, idx_t numThreads = 0,
              ExecStats* stats = nullptr);

 private:
  exec::Session s_;
};

}  // namespace fghp::spgemm
