// Workload-agnostic execution schedule: the generalization of the SpMV plan
// to any workload whose iteration is "expand the input spaces, run a list of
// scalar multiply-accumulate tasks per processor, fold the output space".
//
// A Schedule has N *input spaces* (SpMV: one, the x vector; SpGEMM: two, the
// nonzeros of A and of B) and one *output space* (SpMV: the y vector;
// SpGEMM: the nonzeros of C). Each space carries per-processor ownership
// lists and an expand (inputs) or fold (output) message schedule — exactly
// the ownedX/xSends/xRecvs and ownedY/ySends/yRecvs triples of the old
// SpmvPlan, once per space. Each processor's compute phase is a flat list of
// scalar tasks out[o] += lhs * rhs where rhs is gathered from an input
// space and lhs is either a baked per-task constant (SpMV: the matrix
// value) or gathered from a second input space (SpGEMM: the A value).
//
// One BSP iteration therefore runs the same three supersteps for every
// workload: expand all input spaces -> multiply -> fold the output. SpMV is
// expand->multiply->fold; SpGEMM is expand-A/expand-B->multiply->fold-C —
// the same shape with a different space count, which is why one compiled
// core (exec/compiled.hpp) executes both. DESIGN.md §14.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace fghp::exec {

/// One message of a schedule: the ids (of one space) whose values travel
/// between `peer` and this processor.
struct Msg {
  idx_t peer = kInvalidIdx;
  std::vector<idx_t> ids;
  /// For receives: index of the matching entry in the peer's send list
  /// (lets the threaded executor read the right mailbox without searching).
  idx_t pairIndex = kInvalidIdx;
};

/// One index space (a distributed vector of doubles, addressed by id).
struct Space {
  std::string name;  ///< for diagnostics ("x", "y", "A", "B", "C", ...)
  idx_t size = 0;
};

/// One processor's view of one space: the ids it owns plus its send/recv
/// schedule (expand direction for input spaces, fold for the output space).
struct SpaceComm {
  std::vector<idx_t> owned;
  std::vector<Msg> sends;
  std::vector<Msg> recvs;
};

/// One processor's compute phase: scalar tasks out[outId] += lhs * rhs, in
/// execution (= accumulation) order. rhsId indexes Schedule::rhsSpace;
/// lhsId indexes Schedule::lhsSpace when lhsConst is false (then constVals
/// is empty), otherwise constVals holds the per-task constants (then lhsId
/// is empty).
struct ProcTasks {
  std::vector<idx_t> outId;
  std::vector<idx_t> lhsId;
  std::vector<idx_t> rhsId;
  std::vector<double> constVals;
};

/// The full schedule of one workload over K logical processors.
struct Schedule {
  // Static-lifetime workload labels: the tracer stores these pointers, so
  // they must be string literals (or otherwise outlive the process).
  const char* traceCat = "exec";
  const char* traceIteration = "exec.iteration";
  /// Prefix of the registered metrics this workload reports under
  /// ("<prefix>.iterations", "<prefix>.expand.words", ...).
  std::string metricPrefix = "exec";

  idx_t numProcs = 0;
  std::vector<Space> inputs;
  Space output;

  /// True: lhs of every task is a baked constant (constVals). False: lhs is
  /// gathered from inputs[lhsSpace].
  bool lhsConst = true;
  idx_t lhsSpace = kInvalidIdx;  ///< input index of lhs (when !lhsConst)
  idx_t rhsSpace = 0;            ///< input index of rhs

  std::vector<std::vector<SpaceComm>> inComm;  ///< [input space][processor]
  std::vector<SpaceComm> outComm;              ///< [processor]
  std::vector<ProcTasks> tasks;                ///< [processor]

  weight_t total_words() const;  ///< expand + fold send words, all spaces
  idx_t total_messages() const;  ///< directed messages, all spaces
};

/// Returns a list of human-readable problems with a schedule (empty =
/// valid):
///  * processor count inconsistent between numProcs and the comm/task arrays,
///  * lhs/rhs space indices out of range, ragged task arrays,
///  * task or message ids outside their space,
///  * ids owned by zero or multiple processors,
///  * a recv whose pairIndex does not point back at the matching send
///    (peer or id list disagrees),
///  * a message whose id list is not strictly increasing — the sorted /
///    deduplicated determinism contract every builder guarantees and the
///    compiled mailbox translation relies on.
std::vector<std::string> validate_schedule(const Schedule& s);

/// Throws fghp::InvariantError listing all problems if validate_schedule()
/// is non-empty (ErrorContext phase "schedule-validate").
void validate_schedule_or_throw(const Schedule& s);

}  // namespace fghp::exec
