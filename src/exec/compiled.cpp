#include "exec/compiled.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <string>

#include "exec/kernels.hpp"
#include "sparse/reorder.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace fghp::exec {

namespace {

constexpr std::size_t uz(idx_t v) { return static_cast<std::size_t>(v); }

[[noreturn]] void compile_error(std::string what) {
  ErrorContext ctx;
  ctx.phase = "plan-compile";
  throw InvariantError(std::move(what), std::move(ctx));
}

/// Cache-locality proxy of one block's multiply loop under a candidate
/// (group, rhs-slot) renumbering: walk the rhs-slot access sequence in
/// emission order and charge each jump the bit width of its slot distance —
/// log-distance tracks which level of the cache hierarchy the jump lands
/// in (a gap of 2^k doubles costs ~k), so a tight RCM band over a few
/// thousand slots scores far below a random spread over millions even
/// though both exceed a cache line. Lower is better.
std::uint64_t locality_score(const std::vector<idx_t>& rowNew,
                             const std::vector<idx_t>& colNew,
                             const std::vector<idx_t>& localGroupPtr,
                             const std::vector<idx_t>& grpRhs,
                             std::vector<idx_t>& oldOfNewScratch) {
  const idx_t nr = static_cast<idx_t>(rowNew.size());
  oldOfNewScratch.resize(uz(nr));
  for (idx_t r = 0; r < nr; ++r) oldOfNewScratch[uz(rowNew[uz(r)])] = r;
  std::uint64_t score = 0;
  idx_t prev = 0;
  for (idx_t newR = 0; newR < nr; ++newR) {
    const idx_t oldR = oldOfNewScratch[uz(newR)];
    for (idx_t pos = localGroupPtr[uz(oldR)]; pos < localGroupPtr[uz(oldR) + 1]; ++pos) {
      const idx_t slot = colNew[uz(grpRhs[uz(pos)])];
      const idx_t gap = slot > prev ? slot - prev : prev - slot;
      score += std::bit_width(static_cast<std::uint64_t>(gap));
      prev = slot;
    }
  }
  return score;
}

}  // namespace

weight_t Image::total_words() const {
  weight_t words = 0;
  for (const InSpaceImage& sp : in) words += static_cast<weight_t>(sp.sendOff.back());
  return words + static_cast<weight_t>(out.sendOff.back());
}

idx_t Image::total_messages() const {
  idx_t msgs = 0;
  for (const InSpaceImage& sp : in) msgs += sp.sendMsgOff.back();
  return msgs + out.sendMsgOff.back();
}

Image compile(const Schedule& s, const CompileOptions& opts) {
  const idx_t K = s.numProcs;
  const std::size_t numIn = s.inputs.size();
  FGHP_REQUIRE(s.outComm.size() == uz(K) && s.tasks.size() == uz(K) &&
                   s.inComm.size() == numIn,
               "schedule comm/task arrays inconsistent with numProcs");
  for (const auto& space : s.inComm)
    FGHP_REQUIRE(space.size() == uz(K), "schedule comm arrays inconsistent with numProcs");
  FGHP_REQUIRE(s.rhsSpace >= 0 && uz(s.rhsSpace) < numIn, "rhs space out of range");
  FGHP_REQUIRE(s.lhsConst || (s.lhsSpace >= 0 && uz(s.lhsSpace) < numIn),
               "lhs space out of range");
  trace::TraceScope span(s.traceCat, "plan.compile", "procs", K, "words",
                         s.total_words());
  cancel::check_point(opts.cancel, "plan.compile");

  Image c;
  c.traceCat = s.traceCat;
  c.traceIteration = s.traceIteration;
  c.metricPrefix = s.metricPrefix;
  c.numProcs = K;
  c.lhsConst = s.lhsConst;
  c.lhsSpace = s.lhsSpace;
  c.rhsSpace = s.rhsSpace;
  // The cache reorder only understands two-space (group x rhs-slot) blocks;
  // gathered-lhs schedules always keep their first-use numbering.
  c.cacheReordered = opts.cacheReorder && s.lhsConst;

  const std::size_t k1 = uz(K) + 1;
  c.in.resize(numIn);
  for (std::size_t sp = 0; sp < numIn; ++sp) {
    c.in[sp].size = s.inputs[sp].size;
    c.in[sp].off.assign(k1, 0);
    c.in[sp].ownOff.assign(k1, 0);
    c.in[sp].sendOff.assign(k1, 0);
    c.in[sp].sendMsgOff.assign(k1, 0);
    c.in[sp].recvOff.assign(k1, 0);
  }
  c.out.size = s.output.size;
  c.out.off.assign(k1, 0);
  c.out.ownOff.assign(k1, 0);
  c.out.sendOff.assign(k1, 0);
  c.out.sendMsgOff.assign(k1, 0);
  c.out.recvOff.assign(k1, 0);

  // Pass 1: prefix every space's send buffer and record the flat word base
  // of every message, so receivers can translate (peer, pairIndex) into
  // absolute send-buffer offsets without any search.
  std::vector<std::vector<idx_t>> inMsgBase(numIn);
  std::vector<idx_t> outMsgBase;
  for (idx_t p = 0; p < K; ++p) {
    for (std::size_t sp = 0; sp < numIn; ++sp) {
      InSpaceImage& im = c.in[sp];
      idx_t w = im.sendOff[uz(p)];
      for (const Msg& m : s.inComm[sp][uz(p)].sends) {
        inMsgBase[sp].push_back(w);
        w += static_cast<idx_t>(m.ids.size());
      }
      im.sendOff[uz(p) + 1] = w;
      im.sendMsgOff[uz(p) + 1] =
          im.sendMsgOff[uz(p)] + static_cast<idx_t>(s.inComm[sp][uz(p)].sends.size());
    }
    idx_t w = c.out.sendOff[uz(p)];
    for (const Msg& m : s.outComm[uz(p)].sends) {
      outMsgBase.push_back(w);
      w += static_cast<idx_t>(m.ids.size());
    }
    c.out.sendOff[uz(p) + 1] = w;
    c.out.sendMsgOff[uz(p) + 1] =
        c.out.sendMsgOff[uz(p)] + static_cast<idx_t>(s.outComm[uz(p)].sends.size());
  }

  // Pass 2: per-processor local numbering. The slot maps are global-sized
  // scratch (one per space), reset entry-by-entry after each processor.
  // Slots are assigned in two steps: a provisional id in first-use order
  // over the local tasks (plus expand-recv-only input ids), then — for
  // baked-constant schedules with the cache reorder on — a bipartite RCM
  // renumbering of the block so consecutive groups of the multiply loop
  // touch nearby rhs slots. Every downstream table reads the slot maps
  // after the renumbering, which is how the permutation folds into the
  // whole image without touching any schedule order.
  std::vector<std::vector<idx_t>> inSlotOf(numIn), inTouched(numIn);
  for (std::size_t sp = 0; sp < numIn; ++sp)
    inSlotOf[sp].assign(uz(s.inputs[sp].size), kInvalidIdx);
  std::vector<idx_t> outSlotOf(uz(s.output.size), kInvalidIdx);
  std::vector<idx_t> touchedOut, groupCount, cursor;
  std::vector<idx_t> localGroupPtr, grpRhs, grpLhs, oldOfNewGroup, slotIds;
  std::vector<double> grpVal;
  sparse::BipartiteOrdering perm;

  std::size_t totalTasks = 0;
  for (const ProcTasks& t : s.tasks) totalTasks += t.outId.size();
  c.rhsSlot.resize(totalTasks);
  if (s.lhsConst)
    c.constVals.resize(totalTasks);
  else
    c.lhsSlot.resize(totalTasks);

  idx_t taskBase = 0;
  for (idx_t p = 0; p < K; ++p) {
    const ProcTasks& t = s.tasks[uz(p)];
    const std::size_t n = t.outId.size();
    const bool lhsOk = s.lhsConst ? t.constVals.size() == n : t.lhsId.size() == n;
    if (t.rhsId.size() != n || !lhsOk)
      compile_error("ragged task arrays on processor " + std::to_string(p));
    const idx_t groupBase = c.out.off[uz(p)];
    touchedOut.clear();
    for (std::size_t sp = 0; sp < numIn; ++sp) inTouched[sp].clear();

    // Provisional (pre-permutation) group and input ids in first-use order
    // over the local tasks (out, then lhs, then rhs per task).
    auto touch_in = [&](std::size_t sp, idx_t id) {
      if (id < 0 || id >= s.inputs[sp].size)
        compile_error("processor " + std::to_string(p) + ": task " +
                      s.inputs[sp].name + " id " + std::to_string(id) +
                      " outside the space");
      if (inSlotOf[sp][uz(id)] == kInvalidIdx) {
        inSlotOf[sp][uz(id)] = static_cast<idx_t>(inTouched[sp].size());
        inTouched[sp].push_back(id);
      }
    };
    for (std::size_t e = 0; e < n; ++e) {
      const idx_t o = t.outId[e];
      if (o < 0 || o >= s.output.size)
        compile_error("processor " + std::to_string(p) + ": task " +
                      s.output.name + " id " + std::to_string(o) +
                      " outside the space");
      if (outSlotOf[uz(o)] == kInvalidIdx) {
        outSlotOf[uz(o)] = static_cast<idx_t>(touchedOut.size());
        touchedOut.push_back(o);
      }
      if (!s.lhsConst) touch_in(uz(s.lhsSpace), t.lhsId[e]);
      touch_in(uz(s.rhsSpace), t.rhsId[e]);
    }

    // An expand recv may deliver an id no local task reads (legal in a
    // hand-built schedule); such ids still get a slot so delivery has a
    // target. They take part in the renumbering as isolated vertices (RCM
    // places them last — the multiply never reads them).
    for (std::size_t sp = 0; sp < numIn; ++sp) {
      for (const Msg& m : s.inComm[sp][uz(p)].recvs) {
        for (idx_t id : m.ids) {
          if (id < 0 || id >= s.inputs[sp].size)
            compile_error("processor " + std::to_string(p) + ": " +
                          s.inputs[sp].name + " recv id out of range");
          if (inSlotOf[sp][uz(id)] == kInvalidIdx) {
            inSlotOf[sp][uz(id)] = static_cast<idx_t>(inTouched[sp].size());
            inTouched[sp].push_back(id);
          }
        }
      }
    }
    const idx_t nr = static_cast<idx_t>(touchedOut.size());
    const idx_t nc = static_cast<idx_t>(inTouched[uz(s.rhsSpace)].size());

    // Group the local tasks by provisional output slot, preserving the
    // schedule's within-group task order (the canonical accumulation order,
    // so sums stay bit-identical under any renumbering).
    groupCount.assign(uz(nr), 0);
    for (idx_t o : t.outId) ++groupCount[uz(outSlotOf[uz(o)])];
    localGroupPtr.assign(uz(nr) + 1, 0);
    for (idx_t r = 0; r < nr; ++r)
      localGroupPtr[uz(r) + 1] = localGroupPtr[uz(r)] + groupCount[uz(r)];
    cursor.assign(localGroupPtr.begin(), localGroupPtr.end() - 1);
    grpRhs.resize(n);
    if (s.lhsConst)
      grpVal.resize(n);
    else
      grpLhs.resize(n);
    for (std::size_t e = 0; e < n; ++e) {
      const idx_t pos = cursor[uz(outSlotOf[uz(t.outId[e])])]++;
      grpRhs[uz(pos)] = inSlotOf[uz(s.rhsSpace)][uz(t.rhsId[e])];
      if (s.lhsConst)
        grpVal[uz(pos)] = t.constVals[e];
      else
        grpLhs[uz(pos)] = inSlotOf[uz(s.lhsSpace)][uz(t.lhsId[e])];
    }

    // Second-level cache reordering of the block. The bipartite RCM
    // candidate is adopted only when it beats the first-use numbering's
    // locality score by a margin — blocks that already arrive well ordered
    // (banded matrices in natural order, tiny fragments with no structure)
    // keep their numbering, so the reorder can help but never regress.
    perm.rowNew.resize(uz(nr));
    perm.colNew.resize(uz(nc));
    for (idx_t r = 0; r < nr; ++r) perm.rowNew[uz(r)] = r;
    for (idx_t j = 0; j < nc; ++j) perm.colNew[uz(j)] = j;
    if (c.cacheReordered && nr > 1) {
      sparse::BipartiteOrdering rcm =
          sparse::bipartite_rcm(nr, nc, localGroupPtr, grpRhs);
      const std::uint64_t idScore = locality_score(perm.rowNew, perm.colNew,
                                                   localGroupPtr, grpRhs, oldOfNewGroup);
      const std::uint64_t rcmScore =
          locality_score(rcm.rowNew, rcm.colNew, localGroupPtr, grpRhs, oldOfNewGroup);
      // Adopt only on a decisive (>= 25%) score win: the proxy cannot see
      // the multi-stream prefetch a banded natural order enjoys, so a
      // marginal score edge is not worth disturbing it.
      if (rcmScore * 4 < idScore * 3) {
        perm = std::move(rcm);
        ++c.reorderedProcs;
      }
    }

    // Finalize the slot maps: provisional id -> permuted id + base. All
    // remaining tables of this processor read these final slots. Only the
    // output and rhs spaces take part in the permutation; any other input
    // space keeps its first-use numbering.
    for (idx_t o : touchedOut)
      outSlotOf[uz(o)] = groupBase + perm.rowNew[uz(outSlotOf[uz(o)])];
    for (std::size_t sp = 0; sp < numIn; ++sp) {
      const idx_t base = c.in[sp].off[uz(p)];
      if (sp == uz(s.rhsSpace)) {
        for (idx_t id : inTouched[sp])
          inSlotOf[sp][uz(id)] = base + perm.colNew[uz(inSlotOf[sp][uz(id)])];
      } else {
        for (idx_t id : inTouched[sp]) inSlotOf[sp][uz(id)] += base;
      }
    }

    // Emit the block's task CSR in permuted group order (each group's
    // entries keep their schedule order; slots are final). grpLhs holds
    // provisional lhs-space slots — the lhs space never participates in the
    // permutation (the reorder requires lhsConst), so final = base + slot.
    oldOfNewGroup.resize(uz(nr));
    for (idx_t r = 0; r < nr; ++r) oldOfNewGroup[uz(perm.rowNew[uz(r)])] = r;
    const idx_t rhsBase = c.in[uz(s.rhsSpace)].off[uz(p)];
    const idx_t lhsBase = s.lhsConst ? 0 : c.in[uz(s.lhsSpace)].off[uz(p)];
    idx_t run = taskBase;
    for (idx_t newR = 0; newR < nr; ++newR) {
      const idx_t oldR = oldOfNewGroup[uz(newR)];
      c.groupPtr.push_back(run);
      for (idx_t pos = localGroupPtr[uz(oldR)]; pos < localGroupPtr[uz(oldR) + 1];
           ++pos, ++run) {
        c.rhsSlot[uz(run)] = rhsBase + perm.colNew[uz(grpRhs[uz(pos)])];
        if (s.lhsConst)
          c.constVals[uz(run)] = grpVal[uz(pos)];
        else
          c.lhsSlot[uz(run)] = lhsBase + grpLhs[uz(pos)];
      }
    }
    taskBase = run;

    c.out.off[uz(p) + 1] = groupBase + nr;

    // Per input space: the slot -> global-id table, the owner gather, the
    // send gather and the pre-translated recv copies.
    for (std::size_t sp = 0; sp < numIn; ++sp) {
      InSpaceImage& im = c.in[sp];
      const auto& sc = s.inComm[sp][uz(p)];
      const idx_t ncs = static_cast<idx_t>(inTouched[sp].size());
      im.off[uz(p) + 1] = im.off[uz(p)] + ncs;
      slotIds.resize(uz(ncs));
      if (sp == uz(s.rhsSpace)) {
        for (idx_t j = 0; j < ncs; ++j)
          slotIds[uz(perm.colNew[uz(j)])] = inTouched[sp][uz(j)];
      } else {
        for (idx_t j = 0; j < ncs; ++j) slotIds[uz(j)] = inTouched[sp][uz(j)];
      }
      im.slotGlobal.insert(im.slotGlobal.end(), slotIds.begin(), slotIds.end());

      // Owned values with a local consumer (the MT expand gather).
      for (idx_t id : sc.owned) {
        if (id < 0 || id >= s.inputs[sp].size)
          compile_error("processor " + std::to_string(p) + ": owned " +
                        s.inputs[sp].name + " id out of range");
        if (inSlotOf[sp][uz(id)] != kInvalidIdx) {
          im.ownId.push_back(id);
          im.ownSlot.push_back(inSlotOf[sp][uz(id)]);
        }
      }
      im.ownOff[uz(p) + 1] = static_cast<idx_t>(im.ownId.size());

      // Expand sends gather straight from the global input: the sender owns
      // these ids, so its local copy is the global value.
      for (const Msg& m : sc.sends)
        for (idx_t id : m.ids) {
          if (id < 0 || id >= s.inputs[sp].size)
            compile_error("processor " + std::to_string(p) + ": " +
                          s.inputs[sp].name + " send id out of range");
          im.sendId.push_back(id);
        }

      // Expand recvs: flat (source word -> destination slot) copies.
      idx_t recvWords = im.recvOff[uz(p)];
      for (const Msg& m : sc.recvs) {
        if (m.peer < 0 || m.peer >= K)
          compile_error("processor " + std::to_string(p) + ": " +
                        s.inputs[sp].name + " recv from invalid peer");
        const auto& peerSends = s.inComm[sp][uz(m.peer)].sends;
        if (m.pairIndex < 0 || m.pairIndex >= static_cast<idx_t>(peerSends.size()) ||
            peerSends[uz(m.pairIndex)].ids.size() != m.ids.size())
          compile_error("processor " + std::to_string(p) + ": " +
                        s.inputs[sp].name + " recv does not pair with its send");
        const idx_t srcBase =
            inMsgBase[sp][uz(im.sendMsgOff[uz(m.peer)] + m.pairIndex)];
        for (std::size_t k = 0; k < m.ids.size(); ++k) {
          im.recvSlot.push_back(inSlotOf[sp][uz(m.ids[k])]);
          im.recvSrc.push_back(srcBase + static_cast<idx_t>(k));
        }
        recvWords += static_cast<idx_t>(m.ids.size());
      }
      im.recvOff[uz(p) + 1] = recvWords;
    }

    // Fold, owner side: owned output ids this processor actually computed.
    const auto& oc = s.outComm[uz(p)];
    for (idx_t o : oc.owned) {
      if (o < 0 || o >= s.output.size)
        compile_error("processor " + std::to_string(p) + ": owned " +
                      s.output.name + " id out of range");
      if (outSlotOf[uz(o)] != kInvalidIdx) {
        c.out.ownId.push_back(o);
        c.out.ownSlot.push_back(outSlotOf[uz(o)]);
      }
    }
    c.out.ownOff[uz(p) + 1] = static_cast<idx_t>(c.out.ownId.size());

    // Fold sends must reference ids this processor computes a partial for.
    for (const Msg& m : oc.sends)
      for (idx_t o : m.ids) {
        if (o < 0 || o >= s.output.size || outSlotOf[uz(o)] == kInvalidIdx)
          compile_error("fold schedule on processor " + std::to_string(p) +
                        " references " + s.output.name + " id " + std::to_string(o) +
                        " it never computes");
        c.out.sendSlot.push_back(outSlotOf[uz(o)]);
        c.out.sendId.push_back(o);
      }

    // Fold recvs.
    idx_t outRecvWords = c.out.recvOff[uz(p)];
    for (const Msg& m : oc.recvs) {
      if (m.peer < 0 || m.peer >= K)
        compile_error("processor " + std::to_string(p) + ": fold recv from invalid peer");
      const auto& peerSends = s.outComm[uz(m.peer)].sends;
      if (m.pairIndex < 0 || m.pairIndex >= static_cast<idx_t>(peerSends.size()) ||
          peerSends[uz(m.pairIndex)].ids.size() != m.ids.size())
        compile_error("processor " + std::to_string(p) +
                      ": fold recv does not pair with its send");
      const idx_t srcBase = outMsgBase[uz(c.out.sendMsgOff[uz(m.peer)] + m.pairIndex)];
      for (std::size_t k = 0; k < m.ids.size(); ++k) {
        const idx_t o = m.ids[k];
        if (o < 0 || o >= s.output.size)
          compile_error("processor " + std::to_string(p) + ": fold recv id out of range");
        c.out.recvId.push_back(o);
        c.out.recvSrc.push_back(srcBase + static_cast<idx_t>(k));
      }
      outRecvWords += static_cast<idx_t>(m.ids.size());
    }
    c.out.recvOff[uz(p) + 1] = outRecvWords;

    // Disarm the slot maps for the next processor.
    for (idx_t o : touchedOut) outSlotOf[uz(o)] = kInvalidIdx;
    for (std::size_t sp = 0; sp < numIn; ++sp)
      for (idx_t id : inTouched[sp]) inSlotOf[sp][uz(id)] = kInvalidIdx;
  }
  c.groupPtr.push_back(taskBase);

  // The compiled send spaces must cover the schedule's exact traffic: one
  // flat word per scheduled word, nothing more, and the same message count —
  // ExecStats come straight from these offsets.
  bool covered = static_cast<idx_t>(c.out.sendSlot.size()) == c.out.sendOff.back();
  for (const InSpaceImage& im : c.in)
    covered = covered && static_cast<idx_t>(im.sendId.size()) == im.sendOff.back();
  if (!covered || c.total_words() != s.total_words() ||
      c.total_messages() != s.total_messages())
    compile_error("compiled send-buffer offsets do not cover the schedule's traffic");
  return c;
}

Session::Session(Image compiled) : c_(std::move(compiled)) {
  // assign, not resize: explicit zero-fill even if these vectors ever carry
  // capacity from a prior image (e.g. a moved-from session), so no run can
  // observe stale tail data.
  inLoc_.resize(c_.in.size());
  inSendBuf_.resize(c_.in.size());
  for (std::size_t sp = 0; sp < c_.in.size(); ++sp) {
    inLoc_[sp].assign(uz(c_.in[sp].off.back()), 0.0);
    inSendBuf_[sp].assign(uz(c_.in[sp].sendOff.back()), 0.0);
  }
  partial_.assign(uz(c_.out.off.back()), 0.0);
  outSendBuf_.assign(uz(c_.out.sendOff.back()), 0.0);
  resolve_metrics();
}

Session::Session(const Schedule& s, const CompileOptions& opts)
    : Session(compile(s, opts)) {}

void Session::resolve_metrics() {
  // Registered metrics resolve once per session (the references are
  // process-lifetime), so iterations after the first stay allocation-free —
  // the contract test_compiled asserts. Resolved per workload prefix, never
  // cached in a function-local static: two workloads share this code.
  mIterations_ = &metrics::counter(c_.metricPrefix + ".iterations");
  mExpandWords_ = &metrics::counter(c_.metricPrefix + ".expand.words");
  mFoldWords_ = &metrics::counter(c_.metricPrefix + ".fold.words");
  mMessages_ = &metrics::counter(c_.metricPrefix + ".messages");
  mTaskRetries_ = &metrics::counter(c_.metricPrefix + ".task_retries");
  mSerialFallbacks_ = &metrics::counter(c_.metricPrefix + ".serial_fallbacks");
  mIterationUs_ = &metrics::histogram(
      c_.metricPrefix + ".iteration.us",
      {10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 20000, 50000, 100000,
       200000, 500000, 1000000});
}

void Session::note_iteration(std::uint64_t startNs, const perf::Sample& perfBegin) {
  mIterationUs_->observe(
      static_cast<std::int64_t>((trace::now_ns() - startNs) / 1000));
  if (!perfBegin.valid) return;
  const perf::Sample end = perf::read_thread();
  if (!end.valid) return;
  // First valid sample resolves the perf counters — allocation happens only
  // on a perf-enabled run, preserving the zero-alloc iteration contract for
  // everyone else. On the pooled MT path these are the *calling* thread's
  // counters (orchestration + any inline supersteps); worker-side cycles are
  // covered by whole-phase CounterScopes in the callers.
  if (mPerfCycles_ == nullptr) {
    const std::string p = "perf." + c_.metricPrefix + ".iteration.";
    mPerfCycles_ = &metrics::counter(p + "cycles");
    mPerfInstructions_ = &metrics::counter(p + "instructions");
    mPerfLlcMisses_ = &metrics::counter(p + "llc_misses");
    mPerfBranchMisses_ = &metrics::counter(p + "branch_misses");
  }
  const perf::Sample d = perf::delta(perfBegin, end);
  mPerfCycles_->add(static_cast<std::int64_t>(d.cycles));
  mPerfInstructions_->add(static_cast<std::int64_t>(d.instructions));
  mPerfLlcMisses_->add(static_cast<std::int64_t>(d.llcMisses));
  mPerfBranchMisses_->add(static_cast<std::int64_t>(d.branchMisses));
}

void Session::run(std::span<const std::span<const double>> ins,
                  std::vector<double>& out, ExecStats* stats) {
  cancel::check_point(cancel_, "exec.iter", "cancel.exec.iter", ++iter_);
  const std::uint64_t t0 = trace::now_ns();
  const perf::Sample p0 = perf::read_thread();
  run_serial_impl(ins, out, stats);
  note_iteration(t0, p0);
}

void Session::run_serial_impl(std::span<const std::span<const double>> ins,
                              std::vector<double>& out, ExecStats* stats) {
  trace::TraceScope span(c_.traceCat, c_.traceIteration, "procs", c_.numProcs,
                         "mt", 0);
  FGHP_REQUIRE(ins.size() == c_.in.size(), "input space count mismatch");
  for (std::size_t sp = 0; sp < c_.in.size(); ++sp)
    FGHP_REQUIRE(ins[sp].size() == uz(c_.in[sp].size), "input size mismatch");
  out.resize(uz(c_.out.size));
  std::fill(out.begin(), out.end(), 0.0);

  // Expand: one flat gather per input space. Owned and delivered values are
  // both the global value, so the serial path needs no message buffers.
  for (std::size_t sp = 0; sp < c_.in.size(); ++sp)
    kern::gather(inLoc_[sp].data(), ins[sp].data(), c_.in[sp].slotGlobal.data(),
                 inLoc_[sp].size());

  // Local multiply in the schedule's per-group task order.
  const double* rhs = inLoc_[uz(c_.rhsSpace)].data();
  if (c_.lhsConst) {
    for (std::size_t r = 0; r < partial_.size(); ++r)
      partial_[r] = kern::row_dot(c_.constVals.data(), c_.rhsSlot.data(), rhs,
                                  c_.groupPtr[r], c_.groupPtr[r + 1]);
  } else {
    const double* lhs = inLoc_[uz(c_.lhsSpace)].data();
    for (std::size_t r = 0; r < partial_.size(); ++r)
      partial_[r] = kern::pair_dot(c_.lhsSlot.data(), lhs, c_.rhsSlot.data(), rhs,
                                   c_.groupPtr[r], c_.groupPtr[r + 1]);
  }

  // Fold: every processor's own contributions first, then the sent partials
  // in schedule (sender-major) order — the canonical summation order.
  for (std::size_t i = 0; i < c_.out.ownId.size(); ++i)
    out[uz(c_.out.ownId[i])] += partial_[uz(c_.out.ownSlot[i])];
  for (std::size_t w = 0; w < c_.out.sendId.size(); ++w)
    out[uz(c_.out.sendId[w])] += partial_[uz(c_.out.sendSlot[w])];

  if (stats != nullptr) {
    *stats = {};
    stats->wordsSent = c_.total_words();
    stats->messagesSent = c_.total_messages();
  }

  mIterations_->add();
  weight_t expandWords = 0;
  for (const InSpaceImage& im : c_.in) expandWords += im.sendOff.back();
  mExpandWords_->add(expandWords);
  mFoldWords_->add(c_.out.sendOff.back());
  mMessages_->add(c_.total_messages());
}

void Session::run_mt(std::span<const std::span<const double>> ins,
                     std::vector<double>& out, idx_t numThreads, ExecStats* stats) {
  trace::TraceScope span(c_.traceCat, c_.traceIteration, "procs", c_.numProcs,
                         "mt", 1);
  cancel::check_point(cancel_, "exec.iter", "cancel.exec.iter", ++iter_);
  const std::uint64_t iterT0 = trace::now_ns();
  const perf::Sample iterP0 = perf::read_thread();
  FGHP_REQUIRE(ins.size() == c_.in.size(), "input space count mismatch");
  for (std::size_t sp = 0; sp < c_.in.size(); ++sp)
    FGHP_REQUIRE(ins[sp].size() == uz(c_.in[sp].size), "input size mismatch");
  const idx_t K = c_.numProcs;

  // Worker resolution routes through the shared pool, so FGHP_THREADS and
  // PartitionConfig::numThreads behave exactly as thread_pool.hpp documents:
  // an explicit positive request wins, otherwise the pool default applies,
  // capped at K because tasks are per-processor. A request that resolves to
  // one thread gets no pool at all — the supersteps run inline on the
  // caller with every fault site and recovery rung still armed.
  long requested = numThreads > 0
                       ? static_cast<long>(numThreads)
                       : static_cast<long>(ThreadPool::default_num_threads());
  requested = std::min<long>(requested, static_cast<long>(K));
  ThreadPool* pool = ThreadPool::for_request(requested);

  out.resize(uz(c_.out.size));
  std::fill(out.begin(), out.end(), 0.0);

  // This run's traffic tallies are standalone metrics counters: the tasks
  // below are the only writers, ExecStats reads them back, and the totals
  // fold into the registered metrics once at the end — one source of truth
  // instead of parallel hand-rolled atomics.
  metrics::Counter expandWords, foldWords, messages, taskRetries;
  std::atomic<bool> failed{false};

  // Per-processor task wrapper: one retry (fault site `exec.retry`, same
  // ordinal), then give up and flag the run for the serial fallback. Task
  // bodies are idempotent — every scratch word they touch is assigned, not
  // accumulated, and the traffic counters commit only on their last line —
  // so a retry after a partial first attempt cannot double-count or
  // double-accumulate. The flag is read after the next barrier, so a failed
  // superstep never feeds garbage into the next one. Each completed task is
  // a trace span bracketed explicitly (begin/end on the worker that ran it).
  auto run_task = [&](const char* site, idx_t p, auto&& body) {
    // Name the in-flight work for watchdog stall attribution: the explicit
    // begin/end span below records only *completed* tasks, so a hung body
    // would otherwise be invisible to current_activity().
    trace::ActivityScope act(site);
    for (int attempt = 0; attempt < 2; ++attempt) {
      try {
        fault::check(attempt == 0 ? site : "exec.retry", p + 1);
        const bool traced = trace::enabled();
        const std::uint64_t t0 = traced ? trace::now_ns() : 0;
        body();
        if (traced) trace::complete(c_.traceCat, site, t0, trace::now_ns(), "proc", p);
        return;
      } catch (const std::exception& e) {
        if (attempt == 0) {
          taskRetries.add();
          trace::instant("recovery", "exec.task_retry", "proc", p);
          push_warning(std::string("executor task '") + site + "' on processor " +
                       std::to_string(p) + " failed (" + e.what() + "); retrying");
        } else {
          trace::instant("recovery", "exec.serial_fallback", "proc", p);
          push_warning(std::string("executor task '") + site + "' on processor " +
                       std::to_string(p) + " failed its retry (" + e.what() +
                       "); degrading to the serial executor");
          failed.store(true, std::memory_order_release);
        }
      }
    }
  };

  // One BSP superstep: fn(p) for every processor, fully joined before
  // returning (parallel_for blocks until all tasks completed — that join is
  // the barrier between supersteps). Serial resolution runs inline.
  auto superstep = [&](auto&& fn) {
    if (pool != nullptr)
      parallel_for(*pool, static_cast<long>(K),
                   [&](long p) { fn(static_cast<idx_t>(p)); });
    else
      for (idx_t p = 0; p < K; ++p) fn(p);
  };

  // Superstep 1: gather every input space's owned values into local slots
  // and its expand buffer.
  superstep([&](idx_t p) {
    run_task("exec.expand", p, [&, p] {
      idx_t sentTotal = 0;
      idx_t msgs = 0;
      for (std::size_t sp = 0; sp < c_.in.size(); ++sp) {
        const InSpaceImage& im = c_.in[sp];
        const std::span<const double> x = ins[sp];
        for (idx_t w = im.ownOff[uz(p)]; w < im.ownOff[uz(p) + 1]; ++w)
          inLoc_[sp][uz(im.ownSlot[uz(w)])] = x[uz(im.ownId[uz(w)])];
        const idx_t base = im.sendOff[uz(p)];
        const idx_t sent = im.sendOff[uz(p) + 1] - base;
        kern::gather(inSendBuf_[sp].data() + base, x.data(), im.sendId.data() + base,
                     uz(sent));
        sentTotal += sent;
        msgs += im.sendMsgOff[uz(p) + 1] - im.sendMsgOff[uz(p)];
      }
      expandWords.add(sentTotal);
      messages.add(msgs);
      trace::counter(c_.traceCat, "expand.words", static_cast<double>(sentTotal),
                     "proc", p);
    });
  });

  // Between supersteps the caller thread is at a barrier — the only place a
  // cancellation can be observed without racing the retry ladder inside the
  // worker tasks. The scratch is fully re-assigned by every run, so an
  // iteration abandoned here leaves the session reusable.
  cancel::check_point(cancel_, "exec.superstep", nullptr, iter_);

  // Superstep 2: drain the expand buffers, multiply locally, fill the fold
  // buffer.
  if (!failed.load(std::memory_order_acquire)) {
    superstep([&](idx_t p) {
      run_task("exec.fold", p, [&, p] {
        for (std::size_t sp = 0; sp < c_.in.size(); ++sp) {
          const InSpaceImage& im = c_.in[sp];
          for (idx_t w = im.recvOff[uz(p)]; w < im.recvOff[uz(p) + 1]; ++w)
            inLoc_[sp][uz(im.recvSlot[uz(w)])] = inSendBuf_[sp][uz(im.recvSrc[uz(w)])];
        }
        const double* rhs = inLoc_[uz(c_.rhsSpace)].data();
        if (c_.lhsConst) {
          for (idx_t r = c_.out.off[uz(p)]; r < c_.out.off[uz(p) + 1]; ++r)
            partial_[uz(r)] = kern::row_dot(c_.constVals.data(), c_.rhsSlot.data(),
                                            rhs, c_.groupPtr[uz(r)],
                                            c_.groupPtr[uz(r) + 1]);
        } else {
          const double* lhs = inLoc_[uz(c_.lhsSpace)].data();
          for (idx_t r = c_.out.off[uz(p)]; r < c_.out.off[uz(p) + 1]; ++r)
            partial_[uz(r)] = kern::pair_dot(c_.lhsSlot.data(), lhs, c_.rhsSlot.data(),
                                             rhs, c_.groupPtr[uz(r)],
                                             c_.groupPtr[uz(r) + 1]);
        }
        const idx_t base = c_.out.sendOff[uz(p)];
        const idx_t sent = c_.out.sendOff[uz(p) + 1] - base;
        kern::gather(outSendBuf_.data() + base, partial_.data(),
                     c_.out.sendSlot.data() + base, uz(sent));
        foldWords.add(sent);
        messages.add(c_.out.sendMsgOff[uz(p) + 1] - c_.out.sendMsgOff[uz(p)]);
        trace::counter(c_.traceCat, "fold.words", static_cast<double>(sent), "proc", p);
      });
    });
  }

  cancel::check_point(cancel_, "exec.superstep", nullptr, iter_);

  // Superstep 3: owners accumulate their own partial plus received partials
  // in schedule order (same order as the serial path). Each output id has a
  // unique owner, so writes to the output are disjoint across processors.
  if (!failed.load(std::memory_order_acquire)) {
    superstep([&](idx_t p) {
      for (idx_t w = c_.out.ownOff[uz(p)]; w < c_.out.ownOff[uz(p) + 1]; ++w)
        out[uz(c_.out.ownId[uz(w)])] += partial_[uz(c_.out.ownSlot[uz(w)])];
      for (idx_t w = c_.out.recvOff[uz(p)]; w < c_.out.recvOff[uz(p) + 1]; ++w)
        out[uz(c_.out.recvId[uz(w)])] += outSendBuf_[uz(c_.out.recvSrc[uz(w)])];
    });
  }

  mTaskRetries_->add(taskRetries.value());

  if (failed.load(std::memory_order_acquire)) {
    // Some task failed even its retry: discard the partial parallel run and
    // recompute from scratch on the (uninstrumented) serial path, which
    // re-zeroes the output. Output and traffic counts match a clean run
    // exactly. run_serial_impl, not run(): this is still the same logical
    // iteration, so it must not consume a second check-point ordinal.
    mSerialFallbacks_->add();
    run_serial_impl(ins, out, stats);
    if (stats != nullptr) {
      stats->taskRetries = static_cast<idx_t>(taskRetries.value());
      stats->serialFallback = true;
    }
    note_iteration(iterT0, iterP0);
    return;
  }

  mIterations_->add();
  mExpandWords_->add(expandWords.value());
  mFoldWords_->add(foldWords.value());
  mMessages_->add(messages.value());

  if (stats != nullptr) {
    stats->wordsSent = static_cast<weight_t>(expandWords.value() + foldWords.value());
    stats->messagesSent = static_cast<idx_t>(messages.value());
    stats->taskRetries = static_cast<idx_t>(taskRetries.value());
    stats->serialFallback = false;
  }
  note_iteration(iterT0, iterP0);
}

}  // namespace fghp::exec
