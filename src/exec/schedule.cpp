#include "exec/schedule.hpp"

#include <sstream>

#include "util/error.hpp"

namespace fghp::exec {

namespace {

constexpr std::size_t uz(idx_t v) { return static_cast<std::size_t>(v); }

weight_t send_words(const SpaceComm& sc) {
  weight_t words = 0;
  for (const Msg& m : sc.sends) words += static_cast<weight_t>(m.ids.size());
  return words;
}

}  // namespace

weight_t Schedule::total_words() const {
  weight_t words = 0;
  for (const auto& space : inComm)
    for (const SpaceComm& sc : space) words += send_words(sc);
  for (const SpaceComm& sc : outComm) words += send_words(sc);
  return words;
}

idx_t Schedule::total_messages() const {
  idx_t msgs = 0;
  for (const auto& space : inComm)
    for (const SpaceComm& sc : space) msgs += static_cast<idx_t>(sc.sends.size());
  for (const SpaceComm& sc : outComm) msgs += static_cast<idx_t>(sc.sends.size());
  return msgs;
}

std::vector<std::string> validate_schedule(const Schedule& s) {
  std::vector<std::string> problems;
  auto complain = [&](const std::ostringstream& os) { problems.push_back(os.str()); };

  const idx_t K = s.numProcs;
  const idx_t numSpaces = static_cast<idx_t>(s.inputs.size());
  {
    std::ostringstream os;
    if (static_cast<idx_t>(s.inComm.size()) != numSpaces) {
      os << "schedule has " << s.inComm.size() << " input comm schedules but "
         << numSpaces << " input spaces";
      complain(os);
      return problems;
    }
    bool ragged = static_cast<idx_t>(s.outComm.size()) != K ||
                  static_cast<idx_t>(s.tasks.size()) != K;
    for (const auto& space : s.inComm)
      ragged = ragged || static_cast<idx_t>(space.size()) != K;
    if (ragged) {
      os << "schedule comm/task arrays inconsistent with numProcs = " << K;
      complain(os);
      return problems;  // everything below indexes processors by [0, K)
    }
    if (s.rhsSpace < 0 || s.rhsSpace >= numSpaces) {
      os << "rhs space index " << s.rhsSpace << " out of range";
      complain(os);
      return problems;
    }
    if (!s.lhsConst && (s.lhsSpace < 0 || s.lhsSpace >= numSpaces)) {
      os << "lhs space index " << s.lhsSpace << " out of range";
      complain(os);
      return problems;
    }
  }

  // Per-processor task lists: ragged arrays and id ranges.
  const idx_t rhsSize = s.inputs[uz(s.rhsSpace)].size;
  const idx_t lhsSize = s.lhsConst ? 0 : s.inputs[uz(s.lhsSpace)].size;
  for (idx_t p = 0; p < K; ++p) {
    const ProcTasks& t = s.tasks[uz(p)];
    const std::size_t n = t.outId.size();
    const bool lhsOk = s.lhsConst ? (t.constVals.size() == n && t.lhsId.empty())
                                  : (t.lhsId.size() == n && t.constVals.empty());
    if (t.rhsId.size() != n || !lhsOk) {
      std::ostringstream os;
      os << "processor " << p << ": ragged task arrays (" << n << " out, "
         << t.lhsId.size() << " lhs, " << t.rhsId.size() << " rhs, "
         << t.constVals.size() << " const)";
      complain(os);
    }
    for (std::size_t e = 0; e < n; ++e) {
      const bool outBad = t.outId[e] < 0 || t.outId[e] >= s.output.size;
      const bool rhsBad = e >= t.rhsId.size() || t.rhsId[e] < 0 || t.rhsId[e] >= rhsSize;
      const bool lhsBad =
          !s.lhsConst && (e >= t.lhsId.size() || t.lhsId[e] < 0 || t.lhsId[e] >= lhsSize);
      if (outBad || rhsBad || lhsBad) {
        std::ostringstream os;
        os << "processor " << p << ": task " << e << " id out of range";
        complain(os);
        break;  // one report per processor is enough
      }
    }
  }

  // One space's ownership + message schedule. `comm` is the per-processor
  // array of this space; sendsOf(q) lets the recv check reach the peer's
  // send list.
  auto check_space = [&](const Space& space, const std::vector<SpaceComm>& comm) {
    std::vector<idx_t> owners(uz(space.size), 0);
    for (idx_t p = 0; p < K; ++p) {
      for (idx_t id : comm[uz(p)].owned) {
        if (id < 0 || id >= space.size) {
          std::ostringstream os;
          os << "processor " << p << ": owned " << space.name << " id " << id
             << " out of range";
          complain(os);
        } else {
          ++owners[uz(id)];
        }
      }

      // The determinism contract: every message's id list is strictly
      // increasing (sorted, no duplicates). Builders emit deduplicated
      // sorted lists; the compiled mailbox translation and the fold's
      // plan-order accumulation both assume it.
      auto check_sorted = [&](const std::vector<Msg>& msgs, const char* dir) {
        for (std::size_t m = 0; m < msgs.size(); ++m) {
          const auto& ids = msgs[m].ids;
          for (std::size_t k = 0; k + 1 < ids.size(); ++k) {
            if (ids[k] >= ids[k + 1]) {
              std::ostringstream os;
              os << "processor " << p << ": " << space.name << " " << dir << " " << m
                 << " ids not strictly increasing at position " << k + 1
                 << " (sorted/deduplicated contract)";
              complain(os);
              break;
            }
          }
          for (idx_t id : ids) {
            if (id < 0 || id >= space.size) {
              std::ostringstream os;
              os << "processor " << p << ": " << space.name << " " << dir << " " << m
                 << " id " << id << " out of range";
              complain(os);
              break;
            }
          }
        }
      };
      check_sorted(comm[uz(p)].sends, "send");
      check_sorted(comm[uz(p)].recvs, "recv");

      // Every recv must point back (peer, pairIndex) at a send with the
      // same id list addressed to this processor — the MT executor's
      // mailbox reads are exactly this lookup.
      for (const Msg& m : comm[uz(p)].recvs) {
        std::ostringstream os;
        if (m.peer < 0 || m.peer >= K) {
          os << "processor " << p << ": " << space.name << " recv from invalid peer "
             << m.peer;
          complain(os);
          continue;
        }
        const auto& peerSends = comm[uz(m.peer)].sends;
        if (m.pairIndex < 0 || m.pairIndex >= static_cast<idx_t>(peerSends.size())) {
          os << "processor " << p << ": " << space.name << " recv pairIndex "
             << m.pairIndex << " out of range for peer " << m.peer;
          complain(os);
          continue;
        }
        const Msg& send = peerSends[uz(m.pairIndex)];
        if (send.peer != p || send.ids != m.ids) {
          os << "processor " << p << ": " << space.name << " recv from peer " << m.peer
             << " does not match the paired send";
          complain(os);
        }
      }
    }
    for (idx_t id = 0; id < space.size; ++id) {
      if (owners[uz(id)] != 1) {
        std::ostringstream os;
        os << space.name << " id " << id << " owned by " << owners[uz(id)]
           << " processors (want exactly 1)";
        complain(os);
      }
    }
  };
  for (idx_t sp = 0; sp < numSpaces; ++sp)
    check_space(s.inputs[uz(sp)], s.inComm[uz(sp)]);
  check_space(s.output, s.outComm);

  return problems;
}

void validate_schedule_or_throw(const Schedule& s) {
  const auto problems = validate_schedule(s);
  if (problems.empty()) return;
  std::ostringstream os;
  os << "invalid execution schedule:";
  std::size_t shown = 0;
  for (const auto& p : problems) {
    os << "\n  - " << p;
    if (++shown == 20 && problems.size() > 20) {
      os << "\n  - ... and " << problems.size() - 20 << " more";
      break;
    }
  }
  ErrorContext ctx;
  ctx.phase = "schedule-validate";
  throw InvariantError(os.str(), std::move(ctx));
}

}  // namespace fghp::exec
