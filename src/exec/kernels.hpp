// Hot-loop kernels of the compiled execution image, selected at compile
// time: with FGHP_SIMD (CMake option, default ON for GCC/Clang, which also
// adds -fopenmp-simd) the contiguous gathers carry `#pragma omp simd` and
// the per-group accumulation loops are 4-wide unrolled; without it every
// kernel is the plain scalar loop.
//
// Bit-identity contract: the group kernels accumulate the four products of
// an unrolled step in strict entry order (acc += p0; acc += p1; ...), so the
// floating-point summation order is exactly the scalar loop's left-to-right
// order — SIMD applies to the independent multiplies and index loads, never
// to the reduction. Scatter loops (unique-destination copies, the fold's
// out[id] += accumulation) stay scalar on purpose: their destination indices
// come from schedule data we do not force to be duplicate-free, and a
// vectorized scatter with a repeated destination would drop updates.
#pragma once

#include <cstddef>

#include "util/types.hpp"

#if defined(FGHP_SIMD)
#define FGHP_SIMD_LOOP _Pragma("omp simd")
#else
#define FGHP_SIMD_LOOP
#endif

namespace fghp::exec::kern {

/// dst[i] = src[idx[i]] for i in [0, n). Pure gather into a contiguous
/// destination: iterations are independent, so the loop may vectorize.
inline void gather(double* dst, const double* src, const idx_t* idx,
                   std::size_t n) {
  FGHP_SIMD_LOOP
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = src[static_cast<std::size_t>(idx[i])];
}

/// One task group's dot product with baked constants: sum of
/// vals[e] * rhs[slots[e]] over entries [begin, end) — the SpMV CSR row.
/// Accumulation is strictly left-to-right in entry order (see file comment).
inline double row_dot(const double* vals, const idx_t* slots,
                      const double* rhs, idx_t begin, idx_t end) {
  double acc = 0.0;
  idx_t e = begin;
#if defined(FGHP_SIMD)
  for (; e + 4 <= end; e += 4) {
    const std::size_t u = static_cast<std::size_t>(e);
    // Independent multiplies (vectorizable); ordered adds (not).
    const double p0 = vals[u] * rhs[static_cast<std::size_t>(slots[u])];
    const double p1 = vals[u + 1] * rhs[static_cast<std::size_t>(slots[u + 1])];
    const double p2 = vals[u + 2] * rhs[static_cast<std::size_t>(slots[u + 2])];
    const double p3 = vals[u + 3] * rhs[static_cast<std::size_t>(slots[u + 3])];
    acc += p0;
    acc += p1;
    acc += p2;
    acc += p3;
  }
#endif
  for (; e < end; ++e)
    acc += vals[static_cast<std::size_t>(e)] *
           rhs[static_cast<std::size_t>(slots[static_cast<std::size_t>(e)])];
  return acc;
}

/// One task group's dot product with both factors gathered: sum of
/// lhs[lhsSlots[e]] * rhs[rhsSlots[e]] over entries [begin, end) — the
/// SpGEMM per-C-entry accumulation. Same ordered-reduction contract as
/// row_dot.
inline double pair_dot(const idx_t* lhsSlots, const double* lhs,
                       const idx_t* rhsSlots, const double* rhs, idx_t begin,
                       idx_t end) {
  double acc = 0.0;
  idx_t e = begin;
#if defined(FGHP_SIMD)
  for (; e + 4 <= end; e += 4) {
    const std::size_t u = static_cast<std::size_t>(e);
    const double p0 = lhs[static_cast<std::size_t>(lhsSlots[u])] *
                      rhs[static_cast<std::size_t>(rhsSlots[u])];
    const double p1 = lhs[static_cast<std::size_t>(lhsSlots[u + 1])] *
                      rhs[static_cast<std::size_t>(rhsSlots[u + 1])];
    const double p2 = lhs[static_cast<std::size_t>(lhsSlots[u + 2])] *
                      rhs[static_cast<std::size_t>(rhsSlots[u + 2])];
    const double p3 = lhs[static_cast<std::size_t>(lhsSlots[u + 3])] *
                      rhs[static_cast<std::size_t>(rhsSlots[u + 3])];
    acc += p0;
    acc += p1;
    acc += p2;
    acc += p3;
  }
#endif
  for (; e < end; ++e) {
    const std::size_t u = static_cast<std::size_t>(e);
    acc += lhs[static_cast<std::size_t>(lhsSlots[u])] *
           rhs[static_cast<std::size_t>(rhsSlots[u])];
  }
  return acc;
}

}  // namespace fghp::exec::kern
