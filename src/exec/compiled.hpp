// Schedule compilation: lowers an exec::Schedule into a local-indexed,
// zero-allocation execution image (Image) and runs it through a reusable
// Session. This is the workload-agnostic core behind spmv::ExecSession and
// spgemm::SpgemmSession — one lowering and one BSP engine execute every
// schedule, whatever its space count.
//
// A plan-walking executor pays a hash lookup per task plus fresh
// mailbox/cache/partial allocations on every call. Iterative callers run
// the same schedule hundreds of times, so we lower once instead:
//
//  * every processor's tasks become a grouped CSR whose slot indices point
//    into dense per-processor scratch (local numbering, no hashes) — one
//    gather scratch per input space, one partial scratch for the output,
//  * every expand/fold message id is pre-translated to a scratch slot, and
//    all message payloads pack into one flat buffer per space addressed by
//    prefix offsets (the *Off arrays below),
//  * Session owns the image plus the scratch vectors, so iterations after
//    the first perform no heap allocation at all on the serial path (the
//    threaded path still spawns its worker threads per call).
//
// Both execution paths are bit-identical to each other and across thread
// counts: each task group accumulates in the schedule's task order and the
// fold accumulates own-partial first, then remote partials in schedule
// (sender-major) order.
//
// When every task's lhs is a baked constant (SpMV), compilation applies the
// second-level *cache-aware reordering* inside every processor's block
// (CompileOptions::cacheReorder, on by default): local output and rhs slots
// are renumbered by a reverse Cuthill-McKee sweep of the block's bipartite
// group/slot graph (sparse::bipartite_rcm), adopted per block only on a
// decisive locality-score win, and folded into every pre-translated slot
// table at compile time — results stay bit-identical either way. Gathered-
// lhs schedules (SpGEMM) skip the pass: their blocks stream three spaces at
// once and the bipartite proxy does not model that. The hot loops run
// through the compile-time-selected kernels in exec/kernels.hpp. DESIGN.md
// §12, §14.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "exec/schedule.hpp"
#include "util/cancel.hpp"
#include "util/metrics.hpp"
#include "util/perf_counters.hpp"

namespace fghp::exec {

struct ExecStats {
  weight_t wordsSent = 0;     ///< total words moved (expand + fold, all spaces)
  idx_t messagesSent = 0;     ///< directed messages (all spaces)
  idx_t taskRetries = 0;      ///< MT executor tasks that failed once and were
                              ///< retried (0 for the serial executor)
  bool serialFallback = false;  ///< MT executor degraded to the serial path
                                ///< after a task failed its retry
};

/// One input space's share of the image. All arrays are flat and
/// concatenated processor-major; a `*Off` array of size numProcs+1 gives
/// processor p the half-open range [off[p], off[p+1]). "Slot" indexes the
/// session's flat gather scratch of this space.
struct InSpaceImage {
  idx_t size = 0;                 ///< global ids are in [0, size)
  std::vector<idx_t> off;         ///< local slots (gather scratch)
  std::vector<idx_t> slotGlobal;  ///< slot -> global id (serial gather)
  std::vector<idx_t> ownOff;      ///< owned-and-locally-used pairs
  std::vector<idx_t> ownId;       ///< owned gather: global id ...
  std::vector<idx_t> ownSlot;     ///< ... into this slot (MT superstep 1)
  std::vector<idx_t> sendOff;     ///< expand send-buffer words
  std::vector<idx_t> sendMsgOff;  ///< expand messages
  std::vector<idx_t> sendId;      ///< send word -> global id to copy out
  std::vector<idx_t> recvOff;     ///< expand recv words
  std::vector<idx_t> recvSlot;    ///< recv word -> destination slot
  std::vector<idx_t> recvSrc;     ///< recv word -> source word in send space
};

/// The output space's share of the image: slots index the partial scratch;
/// fold sends read partials, fold recvs accumulate into the global output.
struct OutSpaceImage {
  idx_t size = 0;
  std::vector<idx_t> off;         ///< local group slots (partial scratch)
  std::vector<idx_t> ownOff;      ///< owned-and-locally-computed pairs
  std::vector<idx_t> ownId;       ///< owner fold: global id ...
  std::vector<idx_t> ownSlot;     ///< ... accumulated from this slot
  std::vector<idx_t> sendOff;     ///< fold send-buffer words
  std::vector<idx_t> sendMsgOff;  ///< fold messages
  std::vector<idx_t> sendSlot;    ///< send word -> source partial slot
  std::vector<idx_t> sendId;      ///< send word -> global id (serial fold)
  std::vector<idx_t> recvOff;     ///< fold recv words
  std::vector<idx_t> recvId;      ///< recv word -> global id accumulated into
  std::vector<idx_t> recvSrc;     ///< recv word -> source word in send space
};

/// The compiled execution image of one schedule.
struct Image {
  // Static-lifetime workload labels, copied from the schedule.
  const char* traceCat = "exec";
  const char* traceIteration = "exec.iteration";
  std::string metricPrefix = "exec";

  idx_t numProcs = 0;
  bool lhsConst = true;
  idx_t lhsSpace = kInvalidIdx;
  idx_t rhsSpace = 0;

  std::vector<InSpaceImage> in;
  OutSpaceImage out;

  // --- task CSR, grouped by output slot (concatenated; groups of proc p
  // are [out.off[p], out.off[p+1]), entries of group g start at groupPtr[g])
  std::vector<idx_t> groupPtr;    ///< size out.off.back() + 1
  std::vector<idx_t> rhsSlot;     ///< rhs slot per task (local numbering)
  std::vector<idx_t> lhsSlot;     ///< lhs slot per task (when !lhsConst)
  std::vector<double> constVals;  ///< lhs constant per task (when lhsConst)

  /// Whether the second-level cache reordering pass ran (execution is
  /// identical either way; recorded for observability and tests).
  bool cacheReordered = false;
  /// Blocks where the RCM candidate actually beat the first-use numbering's
  /// locality score and was adopted.
  idx_t reorderedProcs = 0;

  idx_t num_tasks() const { return groupPtr.empty() ? 0 : groupPtr.back(); }
  weight_t total_words() const;  ///< expand + fold send-buffer words
  idx_t total_messages() const;  ///< directed messages, all spaces
};

/// Compile-time choices for the lowering. The defaults are what every
/// production path uses; tests and the roofline bench disable the reorder to
/// pin bit-identity against the plain first-use-order image.
struct CompileOptions {
  /// Renumber each processor's local group/rhs slots with a bandwidth-
  /// reducing bipartite RCM sweep for cache locality (results are
  /// bit-identical with or without; only applies to baked-constant
  /// schedules).
  bool cacheReorder = true;
  /// Checked once at the "plan.compile" phase boundary before any lowering
  /// work (an inactive default token is free).
  cancel::CancelToken cancel;
};

/// Lowers a schedule. Throws fghp::InvariantError if the fold schedule
/// references an output id its processor never computes, or if the compiled
/// send-buffer offsets fail to cover exactly the schedule's total_words() /
/// total_messages() (both indicate a corrupt schedule).
Image compile(const Schedule& s, const CompileOptions& opts = {});

/// Owns a compiled image plus the scratch to execute it repeatedly.
/// After the first run() the serial path performs zero heap allocations per
/// iteration (reuse the same output vector). Not thread-safe: one session
/// per concurrent caller; run_mt parallelizes internally.
class Session {
 public:
  explicit Session(const Schedule& s, const CompileOptions& opts = {});
  explicit Session(Image compiled);

  const Image& image() const { return c_; }

  /// Installs a cancellation token for subsequent iterations. Each run()/
  /// run_mt() call starts with a check-point at the "exec.iter" boundary
  /// (fault site `cancel.exec.iter`, ordinal = 1-based iteration number) and
  /// run_mt additionally checks between BSP supersteps — always on the
  /// calling thread, never inside a worker task, so the retry ladder cannot
  /// misread a cancellation as a task fault. A cancelled or expired token
  /// surfaces as CancelledError / DeadlineExceededError; the session stays
  /// reusable afterwards (every scratch word is re-assigned each run).
  void set_cancel(cancel::CancelToken token) { cancel_ = std::move(token); }

  /// 1-based count of iterations started (run + run_mt); the check-point
  /// ordinal, exposed for tests.
  long iterations_started() const { return iter_; }

  /// Serial iteration: one global value vector per input space (sizes must
  /// match the schedule's spaces), output resized to the output space and
  /// zero-filled, then accumulated in the canonical summation order.
  void run(std::span<const std::span<const double>> ins,
           std::vector<double>& out, ExecStats* stats = nullptr);

  /// Threaded BSP iteration (expand / multiply / fold supersteps with a
  /// full join between them). Workers come from the shared ThreadPool via
  /// the standard resolution (`numThreads` if positive, else FGHP_THREADS /
  /// hardware concurrency, capped at numProcs); when the request resolves
  /// to one thread the supersteps run inline on the caller — no threads are
  /// spawned, but the `exec.expand` / `exec.fold` / `exec.retry` fault
  /// sites and the one-retry-then-serial-fallback ladder stay armed exactly
  /// as in the threaded case. Output is bit-identical to run() at any
  /// thread count.
  void run_mt(std::span<const std::span<const double>> ins,
              std::vector<double>& out, idx_t numThreads = 0,
              ExecStats* stats = nullptr);

 private:
  /// The serial path without the per-iteration check-point: run() wraps it,
  /// and the run_mt serial fallback calls it directly so one logical
  /// iteration never consumes two check-point ordinals.
  void run_serial_impl(std::span<const std::span<const double>> ins,
                       std::vector<double>& out, ExecStats* stats);

  /// Resolves the registered per-workload metrics once at construction (the
  /// references are process-lifetime), so iterations stay allocation-free.
  void resolve_metrics();

  /// Folds one iteration's duration into the `<prefix>.iteration.us`
  /// histogram and — when both hardware-counter samples are valid — the
  /// deltas into the lazily resolved `perf.<prefix>.iteration.*` counters.
  /// Lazy on purpose: a perf-disabled run registers no zero-valued perf
  /// metrics and pays no allocation (the zero-alloc iteration contract).
  void note_iteration(std::uint64_t startNs, const perf::Sample& perfBegin);

  Image c_;
  cancel::CancelToken cancel_;
  long iter_ = 0;
  // Scratch, sized and explicitly zero-filled once at construction
  // (assign, not resize: a moved-from or reused vector never carries stale
  // tail data into a differently-sized image). Every run_mt superstep
  // assigns each word it later reads, so no per-iteration re-zero is
  // needed; inSendBuf_/outSendBuf_ are the flat mailbox spaces of the MT
  // path, the serial path gathers/scatters directly and never touches them.
  std::vector<std::vector<double>> inLoc_, inSendBuf_;
  std::vector<double> partial_, outSendBuf_;
  // Registered metrics of this workload (resolved from metricPrefix).
  metrics::Counter* mIterations_ = nullptr;
  metrics::Counter* mExpandWords_ = nullptr;
  metrics::Counter* mFoldWords_ = nullptr;
  metrics::Counter* mMessages_ = nullptr;
  metrics::Counter* mTaskRetries_ = nullptr;
  metrics::Counter* mSerialFallbacks_ = nullptr;
  metrics::Histogram* mIterationUs_ = nullptr;
  // Lazily resolved by note_iteration on the first iteration with valid
  // hardware-counter samples; stay null (and unregistered) when perf is off.
  metrics::Counter* mPerfCycles_ = nullptr;
  metrics::Counter* mPerfInstructions_ = nullptr;
  metrics::Counter* mPerfLlcMisses_ = nullptr;
  metrics::Counter* mPerfBranchMisses_ = nullptr;
};

}  // namespace fghp::exec
