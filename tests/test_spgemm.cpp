// SpGEMM workload tests: task-graph construction, the schedule lowering vs
// the independent volume analyzer, the paper's cutsize == communication
// -volume theorem carried to the second workload, bit-identical execution
// across thread counts against the reference multiply, determinism
// validation of corrupted schedules, the zero-allocation serial iteration
// guarantee, and the fault retry/fallback ladder — all through the same
// workload-agnostic core that runs SpMV.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

#include "exec/schedule.hpp"
#include "spgemm/finegrain.hpp"
#include "spgemm/plan.hpp"
#include "spgemm/tasks.hpp"
#include "spgemm/volume.hpp"
#include "sparse/generators.hpp"
#include "sparse/mmio.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

// Global allocation counter for the zero-allocation test (same crude-but-
// exact device as test_compiled.cpp; the measured window contains nothing
// but SpgemmSession::run).
namespace {
std::atomic<long> g_allocCount{0};
}

void* operator new(std::size_t sz) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fghp::spgemm {
namespace {

constexpr std::size_t uz(idx_t v) { return static_cast<std::size_t>(v); }

/// A deterministic random decomposition — cheap, guaranteed-valid owners
/// with no relation to the hypergraph model (exercises the general case).
SpgemmDecomposition random_decomposition(const TaskGraph& t, idx_t K,
                                         std::uint64_t seed) {
  Rng rng(seed);
  SpgemmDecomposition d;
  d.numProcs = K;
  auto fill = [&](std::vector<idx_t>& v, idx_t n) {
    v.resize(uz(n));
    for (auto& p : v) p = static_cast<idx_t>(rng.next() % static_cast<std::uint64_t>(K));
  };
  fill(d.taskOwner, t.num_tasks());
  fill(d.aOwner, t.numA);
  fill(d.bOwner, t.numB);
  fill(d.cOwner, t.num_c());
  return d;
}

struct Fixture {
  sparse::Csr a, b;
  TaskGraph t;
  std::vector<double> cRef;

  Fixture(std::uint64_t seed, idx_t n = 48, idx_t deg = 4) {
    a = sparse::random_square(n, deg, static_cast<idx_t>(seed));
    b = sparse::random_square(n, deg, static_cast<idx_t>(seed + 100));
    t = build_tasks(a, b);
    cRef = reference_multiply(a, b, t);
  }
};

TEST(SpgemmTasks, CanonicalOrderAndCounts) {
  const Fixture f(3);
  const TaskGraph& t = f.t;
  ASSERT_GT(t.num_tasks(), 0);
  EXPECT_EQ(t.numA, f.a.nnz());
  EXPECT_EQ(t.numB, f.b.nnz());

  // Tasks per C entry == number of matching (a_ik, b_kj) pairs; recount the
  // total independently from the operand patterns.
  idx_t want = 0;
  for (idx_t i = 0; i < f.a.num_rows(); ++i)
    for (idx_t k : f.a.row_cols(i)) want += f.b.row_size(k);
  EXPECT_EQ(t.num_tasks(), want);

  // C pattern row-major with ascending columns; taskC nondecreasing and
  // covering every entry.
  for (idx_t g = 1; g < t.num_c(); ++g) {
    EXPECT_LE(t.cRow[uz(g) - 1], t.cRow[uz(g)]);
    if (t.cRow[uz(g) - 1] == t.cRow[uz(g)]) {
      EXPECT_LT(t.cCol[uz(g) - 1], t.cCol[uz(g)]);
    }
  }
  for (idx_t w = 1; w < t.num_tasks(); ++w) {
    EXPECT_LE(t.taskC[uz(w) - 1], t.taskC[uz(w)]);
    EXPECT_LE(t.taskC[uz(w)] - t.taskC[uz(w) - 1], 1);  // every C entry has tasks
  }
  EXPECT_EQ(t.taskC[0], 0);
  EXPECT_EQ(t.taskC[uz(t.num_tasks()) - 1], t.num_c() - 1);
}

TEST(SpgemmTasks, ShapeMismatchThrows) {
  const sparse::Csr a = sparse::random_square(10, 3, 1);
  const sparse::Csr b = sparse::random_square(11, 3, 2);
  EXPECT_THROW(build_tasks(a, b), std::invalid_argument);
}

TEST(SpgemmSchedule, TotalsMatchIndependentAnalyzer) {
  const Fixture f(7);
  for (idx_t K : {1, 2, 4, 7}) {
    const SpgemmDecomposition d = random_decomposition(f.t, K, 17 + static_cast<std::uint64_t>(K));
    const exec::Schedule s = build_schedule(f.t, d);
    EXPECT_TRUE(exec::validate_schedule(s).empty());
    const SpgemmCommStats st = analyze(f.t, d);
    EXPECT_EQ(s.total_words(), st.totalWords) << "K=" << K;
    EXPECT_EQ(static_cast<idx_t>(s.total_messages()), st.totalMessages) << "K=" << K;
    EXPECT_EQ(st.totalWords, st.expandAWords + st.expandBWords + st.foldCWords);
  }
}

// The paper's theorem carried to the second workload: the lambda-1 cutsize
// of a fine-grain SpGEMM hypergraph partition equals the exact total
// communication volume of the decoded decomposition.
TEST(SpgemmTheorem, CutsizeEqualsVolume) {
  struct Case {
    const char* name;
    sparse::Csr a, b;
  };
  std::vector<Case> cases;
  cases.push_back({"random-pair", sparse::random_square(64, 4, 11),
                   sparse::random_square(64, 4, 12)});
  cases.push_back({"stencil-squared", sparse::stencil2d(9, 9), sparse::stencil2d(9, 9)});
  cases.push_back({"random-squared", sparse::random_square(80, 3, 21),
                   sparse::random_square(80, 3, 21)});

  for (const Case& c : cases) {
    const TaskGraph t = build_tasks(c.a, c.b);
    for (idx_t K : {2, 4, 8}) {
      part::PartitionConfig cfg;
      cfg.seed = 42;
      const SpgemmRun run = run_spgemm_finegrain(t, K, cfg);
      const SpgemmCommStats st = analyze(t, run.decomp);
      EXPECT_EQ(run.cutsize, st.totalWords) << c.name << " K=" << K;
    }
  }
}

TEST(SpgemmTheorem, EmptyTaskGraphIsTrivial) {
  // A diagonal times a matrix with an all-zero sparsity overlap: rows of B
  // reachable from A's columns are empty.
  const sparse::Csr a(2, 2, {0, 1, 2}, {0, 1}, {1.0, 1.0});
  const sparse::Csr b(2, 2, {0, 0, 0}, {}, {});
  const TaskGraph t = build_tasks(a, b);
  EXPECT_EQ(t.num_tasks(), 0);
  EXPECT_EQ(t.num_c(), 0);
  part::PartitionConfig cfg;
  const SpgemmRun run = run_spgemm_finegrain(t, 4, cfg);
  EXPECT_EQ(run.cutsize, 0);
  EXPECT_EQ(analyze(t, run.decomp).totalWords, 0);
}

TEST(SpgemmExec, MatchesReferenceAndBitIdenticalAcrossThreads) {
  const Fixture f(5, 64, 4);
  part::PartitionConfig cfg;
  cfg.seed = 42;
  const SpgemmRun run = run_spgemm_finegrain(f.t, 6, cfg);
  SpgemmSession session(f.t, run.decomp);

  std::vector<double> cSerial;
  ExecStats stats;
  session.run(f.a.values(), f.b.values(), cSerial, &stats);
  ASSERT_EQ(cSerial.size(), uz(f.t.num_c()));
  for (std::size_t g = 0; g < cSerial.size(); ++g)
    EXPECT_NEAR(cSerial[g], f.cRef[g], 1e-12) << "entry " << g;

  const SpgemmCommStats st = analyze(f.t, run.decomp);
  EXPECT_EQ(stats.wordsSent, st.totalWords);
  EXPECT_EQ(stats.messagesSent, st.totalMessages);

  for (idx_t threads : {1, 2, 8}) {
    std::vector<double> cMt;
    session.run_mt(f.a.values(), f.b.values(), cMt, threads);
    ASSERT_EQ(cMt.size(), cSerial.size());
    EXPECT_EQ(0, std::memcmp(cMt.data(), cSerial.data(),
                             cSerial.size() * sizeof(double)))
        << "threads=" << threads;
  }
}

TEST(SpgemmExec, DistinctBMatrixRoundTripsThroughMatrixMarket) {
  // The fghp_tool spgemm --b-matrix path: A and B are distinct matrices
  // serialized to Matrix Market and read back before the multiply. The
  // 17-digit writer round-trips every double bitwise, so the product of the
  // re-read pair must match reference_multiply on the originals to the same
  // accumulation-order tolerance as the direct-execution test above.
  const Fixture f(51);
  std::stringstream aTxt, bTxt;
  sparse::write_matrix_market(aTxt, f.a);
  sparse::write_matrix_market(bTxt, f.b);
  const sparse::Csr a2 = sparse::read_matrix_market(aTxt, "a.mtx");
  const sparse::Csr b2 = sparse::read_matrix_market(bTxt, "b.mtx");

  const TaskGraph t = build_tasks(a2, b2);
  ASSERT_EQ(t.num_tasks(), f.t.num_tasks());
  part::PartitionConfig cfg;
  cfg.seed = 42;
  const SpgemmRun run = run_spgemm_finegrain(t, 4, cfg);
  SpgemmSession session(t, run.decomp);
  std::vector<double> c;
  session.run(a2.values(), b2.values(), c);
  ASSERT_EQ(c.size(), f.cRef.size());
  for (std::size_t g = 0; g < c.size(); ++g)
    EXPECT_NEAR(c[g], f.cRef[g], 1e-12) << "C entry " << g;
}

TEST(SpgemmExec, RepeatedIterationsAllocateNothing) {
  const Fixture f(9);
  const SpgemmDecomposition d = random_decomposition(f.t, 4, 31);
  SpgemmSession session(f.t, d);
  std::vector<double> c;
  session.run(f.a.values(), f.b.values(), c);  // first iteration sizes scratch

  const long before = g_allocCount.load(std::memory_order_relaxed);
  for (int it = 0; it < 10; ++it) session.run(f.a.values(), f.b.values(), c);
  EXPECT_EQ(g_allocCount.load(std::memory_order_relaxed), before);
}

TEST(SpgemmValidate, CorruptedScheduleCaught) {
  const Fixture f(13);
  const SpgemmDecomposition d = random_decomposition(f.t, 5, 37);
  exec::Schedule s = build_schedule(f.t, d);
  ASSERT_TRUE(exec::validate_schedule(s).empty());

  // Find a multi-word expand message in either input space and reverse its
  // ids (and the paired recv's, so only the sorted/deduplicated contract is
  // violated).
  bool corrupted = false;
  for (auto& comm : s.inComm) {
    for (idx_t p = 0; !corrupted && p < s.numProcs; ++p) {
      for (std::size_t m = 0; m < comm[uz(p)].sends.size(); ++m) {
        exec::Msg& send = comm[uz(p)].sends[m];
        if (send.ids.size() < 2) continue;
        std::reverse(send.ids.begin(), send.ids.end());
        for (auto& r : comm[uz(send.peer)].recvs)
          if (r.peer == p && r.pairIndex == static_cast<idx_t>(m)) r.ids = send.ids;
        corrupted = true;
        break;
      }
    }
    if (corrupted) break;
  }
  ASSERT_TRUE(corrupted) << "fixture produced no multi-word message";

  const auto problems = exec::validate_schedule(s);
  ASSERT_FALSE(problems.empty());
  bool mentioned = false;
  for (const auto& p : problems)
    if (p.find("not strictly increasing") != std::string::npos) mentioned = true;
  EXPECT_TRUE(mentioned);
  EXPECT_THROW(exec::validate_schedule_or_throw(s), InvariantError);
}

TEST(SpgemmValidate, BadOwnerCaught) {
  const Fixture f(15);
  SpgemmDecomposition d = random_decomposition(f.t, 3, 41);
  d.cOwner.back() = 3;  // out of range
  EXPECT_THROW(validate(f.t, d), std::invalid_argument);
  d.cOwner.back() = -1;
  EXPECT_THROW(build_schedule(f.t, d), std::invalid_argument);
}

TEST(SpgemmFault, TaskRetryRecoversBitIdentically) {
  const Fixture f(19, 64, 4);
  const SpgemmDecomposition d = random_decomposition(f.t, 4, 43);
  SpgemmSession session(f.t, d);
  std::vector<double> cSerial;
  session.run(f.a.values(), f.b.values(), cSerial);

  {
    fault::ScopedSpec spec("exec.expand:1");
    std::vector<double> c;
    ExecStats stats;
    session.run_mt(f.a.values(), f.b.values(), c, 4, &stats);
    EXPECT_GE(stats.taskRetries, 1);
    EXPECT_FALSE(stats.serialFallback);
    EXPECT_EQ(0, std::memcmp(c.data(), cSerial.data(), c.size() * sizeof(double)));
  }
  {
    fault::ScopedSpec spec("exec.expand:1,exec.retry:1");
    std::vector<double> c;
    ExecStats stats;
    session.run_mt(f.a.values(), f.b.values(), c, 4, &stats);
    EXPECT_TRUE(stats.serialFallback);
    EXPECT_EQ(0, std::memcmp(c.data(), cSerial.data(), c.size() * sizeof(double)));
  }
}

}  // namespace
}  // namespace fghp::spgemm
