// Fault-injection registry semantics plus the recovery paths it exists to
// exercise: bisection retry / greedy fallback (deterministic at any thread
// count) and the MT executor's task retry / serial fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>
#include <string>

#include "graph/gmetrics.hpp"
#include "graph/gvalidate.hpp"
#include "hypergraph/builder.hpp"
#include "hypergraph/metrics.hpp"
#include "hypergraph/validate.hpp"
#include "models/decomp_io.hpp"
#include "models/finegrain.hpp"
#include "models/graph_model.hpp"
#include "partition/geo/geometric.hpp"
#include "partition/geo/streaming.hpp"
#include "partition/gp/gpartitioner.hpp"
#include "partition/hg/partitioner.hpp"
#include "sparse/generators.hpp"
#include "sparse/mmio.hpp"
#include "spmv/compiled.hpp"
#include "spmv/executor.hpp"
#include "spmv/plan.hpp"
#include "spmv/reference.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace fghp {
namespace {

// ----------------------------------------------------------- registry ----

TEST(FaultSpec, DisarmedByDefault) {
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::should_fail("rb.bisect", 1));
  EXPECT_NO_THROW(fault::check("rb.bisect", 1));
}

TEST(FaultSpec, KnownSitesSortedAndNonEmpty) {
  const auto& sites = fault::known_sites();
  ASSERT_FALSE(sites.empty());
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
  EXPECT_NE(std::find(sites.begin(), sites.end(), "rb.bisect"), sites.end());
  EXPECT_NE(std::find(sites.begin(), sites.end(), "mmio.read"), sites.end());
}

TEST(FaultSpec, OrdinalMatchingIsExact) {
  fault::ScopedSpec spec("mmio.read:3");
  EXPECT_TRUE(fault::enabled());
  EXPECT_FALSE(fault::should_fail("mmio.read", 2));
  EXPECT_TRUE(fault::should_fail("mmio.read", 3));
  EXPECT_FALSE(fault::should_fail("mmio.read", 4));
  EXPECT_FALSE(fault::should_fail("mmio.open", 3));
}

TEST(FaultSpec, OmittedOrdinalMatchesEveryOccurrence) {
  fault::ScopedSpec spec("rb.bisect");
  EXPECT_TRUE(fault::should_fail("rb.bisect", 1));
  EXPECT_TRUE(fault::should_fail("rb.bisect", 999));
}

TEST(FaultSpec, MultipleEntriesAndSpaces) {
  fault::ScopedSpec spec(" mmio.read:2 , rb.bisect ");
  EXPECT_TRUE(fault::should_fail("mmio.read", 2));
  EXPECT_TRUE(fault::should_fail("rb.bisect", 7));
  EXPECT_EQ(fault::current_spec(), "mmio.read:2,rb.bisect");
}

TEST(FaultSpec, RejectsUnknownSite) {
  EXPECT_THROW(fault::install_spec("no.such.site"), FormatError);
}

TEST(FaultSpec, RejectsBadOrdinal) {
  EXPECT_THROW(fault::install_spec("mmio.read:0"), FormatError);
  EXPECT_THROW(fault::install_spec("mmio.read:-1"), FormatError);
  EXPECT_THROW(fault::install_spec("mmio.read:x"), FormatError);
}

TEST(FaultSpec, CheckThrowsTypedErrorWithContext) {
  fault::ScopedSpec spec("hg.build");
  try {
    fault::check("hg.build", 5);
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kFault);
    EXPECT_EQ(e.context().phase, "hg.build");
    EXPECT_EQ(e.context().part, 5);
  }
}

TEST(FaultSpec, ScopedSpecRestores) {
  fault::install_spec("");
  {
    fault::ScopedSpec outer("rb.bisect:1");
    {
      fault::ScopedSpec inner("mmio.read");
      EXPECT_FALSE(fault::should_fail("rb.bisect", 1));
      EXPECT_TRUE(fault::should_fail("mmio.read", 9));
    }
    EXPECT_TRUE(fault::should_fail("rb.bisect", 1));
  }
  EXPECT_FALSE(fault::enabled());
}

// ------------------------------------------------- bisection recovery ----

part::HgResult partitionWith(const hg::Hypergraph& h, idx_t K, const std::string& spec,
                             idx_t threads,
                             part::ValidateLevel level = part::ValidateLevel::kBasic) {
  part::PartitionConfig cfg;
  cfg.seed = 42;
  cfg.numThreads = threads;
  cfg.faultSpec = spec;
  cfg.validateLevel = level;
  return part::partition_hypergraph(h, K, cfg);
}

TEST(Recovery, RetriedBisectionStillBalancedAndCounted) {
  const sparse::Csr a = sparse::random_square(120, 5, 11);
  const model::FineGrainModel m = model::build_finegrain(a);
  drain_warnings();
  const part::HgResult r = partitionWith(m.h, 8, "rb.bisect:1", 1);
  EXPECT_GT(r.numRecoveries, 0);
  EXPECT_GT(warning_count(), 0u);
  drain_warnings();
  EXPECT_TRUE(hg::is_balanced(m.h, r.partition, 0.1));
  for (idx_t v = 0; v < m.h.num_vertices(); ++v) {
    EXPECT_GE(r.partition.part_of(v), 0);
    EXPECT_LT(r.partition.part_of(v), 8);
  }
}

TEST(Recovery, RecoveredPartitionIdenticalAcrossThreadCounts) {
  const sparse::Csr a = sparse::random_square(150, 4, 17);
  const model::FineGrainModel m = model::build_finegrain(a);
  const part::HgResult r1 = partitionWith(m.h, 8, "rb.bisect", 1);
  const part::HgResult r2 = partitionWith(m.h, 8, "rb.bisect", 2);
  const part::HgResult r8 = partitionWith(m.h, 8, "rb.bisect", 8);
  drain_warnings();
  EXPECT_GT(r1.numRecoveries, 0);
  EXPECT_EQ(r1.partition.assignment(), r2.partition.assignment());
  EXPECT_EQ(r1.partition.assignment(), r8.partition.assignment());
}

TEST(Recovery, GreedyFallbackIsCompleteAndDeterministic) {
  const sparse::Csr a = sparse::random_square(100, 4, 23);
  const model::FineGrainModel m = model::build_finegrain(a);
  // Both the primary site and the retry site fire: every bisection node
  // degrades to the greedy split.
  const part::HgResult r1 = partitionWith(m.h, 4, "rb.bisect,rb.retry", 1);
  const part::HgResult r8 = partitionWith(m.h, 4, "rb.bisect,rb.retry", 8);
  drain_warnings();
  EXPECT_GT(r1.numRecoveries, 0);
  EXPECT_EQ(r1.partition.assignment(), r8.partition.assignment());
  EXPECT_TRUE(hg::validate_partition(m.h, r1.partition).empty());
  // The greedy split plus the K-way rebalance must still deliver balance.
  EXPECT_TRUE(hg::is_balanced(m.h, r1.partition, 0.1));
}

TEST(Recovery, CleanRunHasNoRecoveries) {
  const sparse::Csr a = sparse::random_square(80, 4, 31);
  const model::FineGrainModel m = model::build_finegrain(a);
  drain_warnings();
  const part::HgResult r = partitionWith(m.h, 4, "", 1);
  EXPECT_EQ(r.numRecoveries, 0);
  EXPECT_EQ(warning_count(), 0u);
}

TEST(Recovery, StrictValidationPassesAndMatchesBasic) {
  const sparse::Csr a = sparse::random_square(90, 4, 37);
  const model::FineGrainModel m = model::build_finegrain(a);
  const part::HgResult basic = partitionWith(m.h, 4, "", 1);
  const part::HgResult strict =
      partitionWith(m.h, 4, "", 1, part::ValidateLevel::kStrict);
  EXPECT_EQ(basic.partition.assignment(), strict.partition.assignment());
}

TEST(Recovery, FmFaultAlsoRecovered) {
  // fm.refine faults abort the whole multilevel bisect; the retry path must
  // still deliver a complete partition.
  const sparse::Csr a = sparse::random_square(70, 4, 41);
  const model::FineGrainModel m = model::build_finegrain(a);
  const part::HgResult r = partitionWith(m.h, 4, "fm.refine", 1);
  drain_warnings();
  EXPECT_TRUE(hg::validate_partition(m.h, r.partition).empty());
  EXPECT_TRUE(hg::is_balanced(m.h, r.partition, 0.1));
}

// ------------------------------------------ graph bisection recovery ----
// The graph baseline shares the recursive-bisection engine with the
// hypergraph partitioner (partition/rb_driver.cpp), so its recovery ladder
// must behave identically: retry with a fresh stream, degrade to the greedy
// split, stay deterministic at any thread count.

part::GpResult gpartitionWith(const gp::Graph& g, idx_t K, const std::string& spec,
                              idx_t threads,
                              part::ValidateLevel level = part::ValidateLevel::kBasic) {
  part::PartitionConfig cfg;
  cfg.seed = 42;
  cfg.numThreads = threads;
  cfg.faultSpec = spec;
  cfg.validateLevel = level;
  return part::partition_graph(g, K, cfg);
}

TEST(GRecovery, RetriedBisectionStillBalancedAndCounted) {
  const sparse::Csr a = sparse::random_square(120, 5, 11);
  const gp::Graph g = model::build_standard_graph(a);
  drain_warnings();
  const part::GpResult r = gpartitionWith(g, 8, "grb.bisect:1", 1);
  EXPECT_GT(r.numRecoveries, 0);
  EXPECT_GT(warning_count(), 0u);
  drain_warnings();
  EXPECT_TRUE(gp::is_balanced(g, r.partition, 0.1));
  for (idx_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(r.partition.part_of(v), 0);
    EXPECT_LT(r.partition.part_of(v), 8);
  }
}

TEST(GRecovery, RecoveredPartitionIdenticalAcrossThreadCounts) {
  const sparse::Csr a = sparse::random_square(150, 4, 17);
  const gp::Graph g = model::build_standard_graph(a);
  const part::GpResult r1 = gpartitionWith(g, 8, "grb.bisect", 1);
  const part::GpResult r2 = gpartitionWith(g, 8, "grb.bisect", 2);
  const part::GpResult r8 = gpartitionWith(g, 8, "grb.bisect", 8);
  drain_warnings();
  EXPECT_GT(r1.numRecoveries, 0);
  EXPECT_EQ(r1.partition.assignment(), r2.partition.assignment());
  EXPECT_EQ(r1.partition.assignment(), r8.partition.assignment());
}

TEST(GRecovery, GreedyFallbackIsCompleteAndDeterministic) {
  const sparse::Csr a = sparse::random_square(100, 4, 23);
  const gp::Graph g = model::build_standard_graph(a);
  const part::GpResult r1 = gpartitionWith(g, 4, "grb.bisect,grb.retry", 1);
  const part::GpResult r8 = gpartitionWith(g, 4, "grb.bisect,grb.retry", 8);
  drain_warnings();
  EXPECT_GT(r1.numRecoveries, 0);
  EXPECT_EQ(r1.partition.assignment(), r8.partition.assignment());
  EXPECT_TRUE(gp::validate_partition(g, r1.partition).empty());
  EXPECT_TRUE(gp::is_balanced(g, r1.partition, 0.1));
}

TEST(GRecovery, CleanRunHasNoRecoveries) {
  const sparse::Csr a = sparse::random_square(80, 4, 31);
  const gp::Graph g = model::build_standard_graph(a);
  drain_warnings();
  const part::GpResult r = gpartitionWith(g, 4, "", 1);
  EXPECT_EQ(r.numRecoveries, 0);
  EXPECT_EQ(warning_count(), 0u);
}

TEST(GRecovery, StrictValidationPassesAndMatchesBasic) {
  const sparse::Csr a = sparse::random_square(90, 4, 37);
  const gp::Graph g = model::build_standard_graph(a);
  const part::GpResult basic = gpartitionWith(g, 4, "", 1);
  const part::GpResult strict =
      gpartitionWith(g, 4, "", 1, part::ValidateLevel::kStrict);
  EXPECT_EQ(basic.partition.assignment(), strict.partition.assignment());
}

TEST(GRecovery, GraphFmFaultAlsoRecovered) {
  // gfm.refine faults abort the whole multilevel gbisect; the engine's retry
  // path must still deliver a complete, balanced partition.
  const sparse::Csr a = sparse::random_square(70, 4, 41);
  const gp::Graph g = model::build_standard_graph(a);
  const part::GpResult r = gpartitionWith(g, 4, "gfm.refine", 1);
  drain_warnings();
  EXPECT_TRUE(gp::validate_partition(g, r.partition).empty());
  EXPECT_TRUE(gp::is_balanced(g, r.partition, 0.1));
}

// --------------------------------------------------- executor recovery ----

struct ExecFixture {
  sparse::Csr a;
  spmv::SpmvPlan plan;
  std::vector<double> x;
  std::vector<double> yRef;

  explicit ExecFixture(std::uint64_t seed) {
    a = sparse::random_square(60, 4, static_cast<idx_t>(seed));
    part::PartitionConfig cfg;
    cfg.seed = seed;
    const model::Decomposition d = model::run_finegrain(a, 4, cfg).decomp;
    plan = spmv::build_plan(a, d);
    Rng rng(seed);
    x.resize(static_cast<std::size_t>(a.num_cols()));
    for (auto& v : x) v = rng.uniform01();
    yRef = spmv::multiply(a, x);
  }
};

void expectClose(const std::vector<double>& y, const std::vector<double>& yRef) {
  ASSERT_EQ(y.size(), yRef.size());
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], yRef[i], 1e-10);
}

TEST(ExecRecovery, TaskRetryRecovers) {
  const ExecFixture f(5);
  fault::ScopedSpec spec("exec.expand:1");
  drain_warnings();
  spmv::ExecStats stats;
  const auto y = spmv::execute_mt(f.plan, f.x, 2, &stats);
  expectClose(y, f.yRef);
  EXPECT_GE(stats.taskRetries, 1);
  EXPECT_FALSE(stats.serialFallback);
  EXPECT_GT(warning_count(), 0u);
  drain_warnings();
}

TEST(ExecRecovery, RepeatedFailureFallsBackToSerial) {
  const ExecFixture f(6);
  fault::ScopedSpec spec("exec.fold,exec.retry");
  drain_warnings();
  spmv::ExecStats stats;
  const auto y = spmv::execute_mt(f.plan, f.x, 4, &stats);
  expectClose(y, f.yRef);
  EXPECT_TRUE(stats.serialFallback);
  // Fallback recomputes everything serially, so traffic counts match a
  // clean run.
  spmv::ExecStats clean;
  const auto yClean = spmv::execute(f.plan, f.x, &clean);
  expectClose(yClean, f.yRef);
  EXPECT_EQ(stats.wordsSent, clean.wordsSent);
  EXPECT_EQ(stats.messagesSent, clean.messagesSent);
  drain_warnings();
}

TEST(ExecRecovery, RecoveredRunMatchesCleanRunExactly) {
  const ExecFixture f(7);
  std::vector<double> yClean;
  {
    spmv::ExecStats stats;
    yClean = spmv::execute_mt(f.plan, f.x, 3, &stats);
    EXPECT_EQ(stats.taskRetries, 0);
  }
  fault::ScopedSpec spec("exec.expand");
  const auto yFault = spmv::execute_mt(f.plan, f.x, 3, nullptr);
  drain_warnings();
  EXPECT_EQ(yClean, yFault);  // bitwise: same summation order either way
}

// ------------------------------------------------- fault-site tracing ----
// A firing fault site announces itself in the trace as one instant event
// (cat "fault") named after the site, so a captured trace shows exactly
// where the recovery ladder was entered. Table-driven over known_sites():
// a registered site without a trigger below fails the test, which keeps
// this coverage in sync with the registry.

/// Runs `op` (which arms its own fault spec) with tracing on and returns the
/// exported Chrome JSON. Typed errors escaping `op` are expected for sites
/// with no recovery path above them (FaultError for plain sites,
/// CancelledError for the simulated-cancellation sites).
std::string trigger_and_export(const std::function<void()>& op) {
  trace::enable(1u << 15);
  trace::reset();
  try {
    op();
  } catch (const Error&) {
  }
  std::ostringstream os;
  trace::write_chrome_trace(os);
  trace::disable();
  trace::reset();
  drain_warnings();
  return os.str();
}

/// Counts instant events for `site` by the exporter's fixed field order.
int count_site_instants(const std::string& json, const std::string& site) {
  const std::string needle = "\"cat\":\"fault\",\"name\":\"" + site + "\"";
  int n = 0;
  for (std::size_t pos = json.find(needle); pos != std::string::npos;
       pos = json.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(FaultTracing, EveryKnownSiteEmitsExactlyOneInstantWhenArmed) {
  // Shared fixtures, built before any spec is armed.
  const sparse::Csr a = sparse::random_square(60, 4, 11);
  const model::FineGrainModel m = model::build_finegrain(a);
  const gp::Graph g = model::build_standard_graph(a);
  const ExecFixture f(5);

  model::Decomposition tinyD;
  tinyD.numProcs = 1;
  tinyD.nnzOwner = {0};
  tinyD.xOwner = {0};
  tinyD.yOwner = {0};

  const std::string mtx =
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 2 1.0\n";

  // Each trigger arms one spec and provokes exactly one firing of the
  // target site (the spec may arm helper sites whose events we don't count).
  auto hgPartition = [&m](const std::string& spec, idx_t attempts) {
    part::PartitionConfig cfg;
    cfg.seed = 42;
    cfg.faultSpec = spec;
    cfg.maxBisectAttempts = attempts;
    part::partition_hypergraph(m.h, 2, cfg);
  };
  auto gpPartition = [&g](const std::string& spec, idx_t attempts) {
    part::PartitionConfig cfg;
    cfg.seed = 42;
    cfg.faultSpec = spec;
    cfg.maxBisectAttempts = attempts;
    part::partition_graph(g, 2, cfg);
  };

  std::map<std::string, std::function<void()>> triggers;
  triggers["decomp.open"] = [] {
    fault::ScopedSpec s("decomp.open");
    model::read_decomposition_file("/nonexistent/fghp.decomp");
  };
  triggers["decomp.read"] = [] {
    fault::ScopedSpec s("decomp.read");
    std::istringstream in;
    model::read_decomposition(in, "mem");
  };
  triggers["decomp.write"] = [&tinyD] {
    fault::ScopedSpec s("decomp.write");
    std::ostringstream out;
    model::write_decomposition(out, tinyD);
  };
  triggers["exec.expand"] = [&f] {
    fault::ScopedSpec s("exec.expand:1");  // proc 0's expand task, attempt 0
    spmv::execute_mt(f.plan, f.x, 2, nullptr);
  };
  triggers["exec.fold"] = [&f] {
    fault::ScopedSpec s("exec.fold:1");
    spmv::execute_mt(f.plan, f.x, 2, nullptr);
  };
  triggers["exec.retry"] = [&f] {
    // Proc 0 fails on attempt 0 and again on the retry -> serial fallback
    // (whose path has no fault sites); exec.retry fires exactly once.
    fault::ScopedSpec s("exec.expand:1,exec.retry:1");
    spmv::execute_mt(f.plan, f.x, 2, nullptr);
  };
  triggers["fm.refine"] = [&] { hgPartition("fm.refine", 1); };
  triggers["gfm.refine"] = [&] { gpPartition("gfm.refine", 1); };
  triggers["hg.build"] = [] {
    fault::ScopedSpec s("hg.build");
    hg::HypergraphBuilder b(2);
    const std::vector<idx_t> pins{0, 1};
    b.add_net(pins);
    std::move(b).build();
  };
  triggers["mmio.open"] = [] {
    fault::ScopedSpec s("mmio.open");  // checked before the file is touched
    sparse::read_matrix_market_file("/nonexistent/fghp.mtx");
  };
  triggers["mmio.read"] = [&mtx] {
    fault::ScopedSpec s("mmio.read:1");
    std::istringstream in(mtx);
    sparse::read_matrix_market(in, "mem");
  };
  triggers["perf.open"] = [] {
    // Clear the cached availability verdict, then force the once-per-process
    // open probe through the armed site (no ordinal: the open-attempt count
    // is process-wide and depends on test order). One probe, one instant;
    // the refusal is cached so the single read cannot re-fire.
    fault::ScopedSpec s("perf.open");
    perf::reset_for_test();
    perf::set_enabled(true);
    (void)perf::read_thread();
    perf::set_enabled(false);
    perf::reset_for_test();
    drain_warnings();  // discard the expected single unavailability warning
  };
  // The fast-path partitioners share the registry: geo.* arms the RB
  // engine's bisect/retry sites for the geometric traits, stream.* the
  // streaming driver's per-chunk ladder. Same attempt-capping scheme as
  // rb.retry below.
  const part::geo::GeoPoints geoPts = model::build_finegrain_points(a).pts;
  auto geoPartition = [&geoPts](const std::string& spec, idx_t attempts) {
    part::PartitionConfig cfg;
    cfg.seed = 42;
    cfg.faultSpec = spec;
    cfg.maxBisectAttempts = attempts;
    part::geo::partition_points_geometric(geoPts, 2, cfg);
  };
  auto streamPartition = [&geoPts](const std::string& spec, idx_t attempts) {
    part::PartitionConfig cfg;
    cfg.seed = 42;
    cfg.faultSpec = spec;
    cfg.maxBisectAttempts = attempts;
    part::geo::partition_points_streaming(geoPts, 2, cfg);
  };
  triggers["geo.split"] = [&] { geoPartition("geo.split:1", 3); };
  triggers["geo.retry"] = [&] { geoPartition("geo.split:1,geo.retry:1", 2); };
  triggers["stream.assign"] = [&] { streamPartition("stream.assign:1", 3); };
  triggers["stream.retry"] = [&] { streamPartition("stream.assign:1,stream.retry:1", 2); };
  triggers["rb.bisect"] = [&] { hgPartition("rb.bisect:1", 3); };
  // Attempt 0 fires rb.bisect, attempt 1 fires rb.retry, and capping the
  // attempts at 2 keeps the retry site from matching again before the
  // greedy fallback takes over.
  triggers["rb.retry"] = [&] { hgPartition("rb.bisect:1,rb.retry:1", 2); };
  triggers["grb.bisect"] = [&] { gpPartition("grb.bisect:1", 3); };
  triggers["grb.retry"] = [&] { gpPartition("grb.bisect:1,grb.retry:1", 2); };
  // Simulated cancellation at the root RB node: the check-point throws
  // CancelledError before any work, so the site fires exactly once.
  triggers["cancel.rb.node"] = [&] { hgPartition("cancel.rb.node:1", 3); };
  triggers["cancel.exec.iter"] = [&f] {
    fault::ScopedSpec s("cancel.exec.iter:1");
    spmv::ExecSession session(f.plan);
    std::vector<double> y;
    session.run(f.x, y);
  };
  triggers["watchdog.stall"] = [] {
    // A synchronous scan on a private pool: the armed site appends one
    // simulated stall (and its instant) deterministically, no sleeping.
    fault::ScopedSpec s("watchdog.stall:1");
    ThreadPool pool(2);
    pool.watchdog_scan();
  };

  for (const std::string& site : fault::known_sites()) {
    const auto it = triggers.find(site);
    if (it == triggers.end()) {
      ADD_FAILURE() << "fault site '" << site
                    << "' has no trace trigger — add one to this table";
      continue;
    }
    const std::string json = trigger_and_export(it->second);
    EXPECT_EQ(count_site_instants(json, site), 1)
        << "site '" << site << "' must emit exactly one fault instant";
  }
}

// --------------------------------------------------------- plan checks ----

TEST(PlanValidate, CleanPlanPasses) {
  const ExecFixture f(8);
  EXPECT_TRUE(spmv::validate_plan(f.plan).empty());
  EXPECT_NO_THROW(spmv::validate_plan_or_throw(f.plan));
}

TEST(PlanValidate, CorruptOwnershipCaught) {
  ExecFixture f(9);
  ASSERT_FALSE(f.plan.procs[0].ownedX.empty());
  f.plan.procs[0].ownedX.push_back(f.plan.procs[1].ownedX.empty()
                                       ? f.plan.procs[0].ownedX.front()
                                       : f.plan.procs[1].ownedX.front());
  EXPECT_THROW(spmv::validate_plan_or_throw(f.plan), InvariantError);
}

TEST(PlanValidate, MismatchedRecvCaught) {
  ExecFixture f(10);
  bool mutated = false;
  for (auto& pp : f.plan.procs) {
    if (!pp.xRecvs.empty() && !pp.xRecvs[0].ids.empty()) {
      pp.xRecvs[0].ids[0] = pp.xRecvs[0].ids[0] + 1;
      mutated = true;
      break;
    }
  }
  if (!mutated) GTEST_SKIP() << "decomposition produced no expand traffic";
  EXPECT_THROW(spmv::validate_plan_or_throw(f.plan), InvariantError);
}

TEST(PlanValidate, UnsortedMessageIdsCaught) {
  // The determinism contract: every message's id list is strictly increasing
  // (sorted, deduplicated). Reversing one send's ids — and its paired recv's,
  // so the pairing check stays satisfied and only the ordering contract is
  // violated — must be rejected.
  ExecFixture f(11);
  bool mutated = false;
  for (idx_t p = 0; p < f.plan.numProcs && !mutated; ++p) {
    auto& pp = f.plan.procs[static_cast<std::size_t>(p)];
    for (std::size_t s = 0; s < pp.xSends.size(); ++s) {
      if (pp.xSends[s].ids.size() < 2) continue;
      std::reverse(pp.xSends[s].ids.begin(), pp.xSends[s].ids.end());
      auto& peer = f.plan.procs[static_cast<std::size_t>(pp.xSends[s].peer)];
      for (auto& recv : peer.xRecvs) {
        if (recv.peer == p && recv.pairIndex == static_cast<idx_t>(s))
          recv.ids = pp.xSends[s].ids;
      }
      mutated = true;
      break;
    }
  }
  if (!mutated) GTEST_SKIP() << "decomposition produced no multi-word message";
  const auto problems = spmv::validate_plan(f.plan);
  ASSERT_FALSE(problems.empty());
  bool mentioned = false;
  for (const auto& msg : problems)
    mentioned = mentioned || msg.find("not strictly increasing") != std::string::npos;
  EXPECT_TRUE(mentioned);
  EXPECT_THROW(spmv::validate_plan_or_throw(f.plan), InvariantError);
}

TEST(PlanValidate, DuplicateMessageIdsCaught) {
  // Duplicates are the other half of the contract (strictly increasing, not
  // merely non-decreasing): a repeated id in a fold send must be rejected.
  ExecFixture f(12);
  bool mutated = false;
  for (idx_t p = 0; p < f.plan.numProcs && !mutated; ++p) {
    auto& pp = f.plan.procs[static_cast<std::size_t>(p)];
    for (std::size_t s = 0; s < pp.ySends.size(); ++s) {
      if (pp.ySends[s].ids.empty()) continue;
      pp.ySends[s].ids.push_back(pp.ySends[s].ids.back());
      auto& peer = f.plan.procs[static_cast<std::size_t>(pp.ySends[s].peer)];
      for (auto& recv : peer.yRecvs) {
        if (recv.peer == p && recv.pairIndex == static_cast<idx_t>(s))
          recv.ids = pp.ySends[s].ids;
      }
      mutated = true;
      break;
    }
  }
  if (!mutated) GTEST_SKIP() << "decomposition produced no fold traffic";
  EXPECT_THROW(spmv::validate_plan_or_throw(f.plan), InvariantError);
}

}  // namespace
}  // namespace fghp
