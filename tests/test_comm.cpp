// Communication-analysis tests: hand-worked examples, and the paper's
// central theorems — the lambda-1 cutsize of a fine-grain partition equals
// the exact total communication volume, and the 1D column-net cutsize
// equals the exact expand volume.
#include <gtest/gtest.h>

#include "comm/volume.hpp"
#include "hypergraph/metrics.hpp"
#include "models/checkerboard.hpp"
#include "models/finegrain.hpp"
#include "models/graph_model.hpp"
#include "models/hypergraph1d.hpp"
#include "partition/gp/gpartitioner.hpp"
#include "partition/hg/partitioner.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/testsuite.hpp"
#include "util/rng.hpp"

namespace fghp::comm {
namespace {

using model::Decomposition;

// ------------------------------------------------------ hand examples ----

TEST(Analyze, NoCommWhenSingleProc) {
  const sparse::Csr a = sparse::random_square(30, 4, 1);
  Decomposition d;
  d.numProcs = 1;
  d.nnzOwner.assign(static_cast<std::size_t>(a.nnz()), 0);
  d.xOwner.assign(30, 0);
  d.yOwner.assign(30, 0);
  const CommStats s = analyze(a, d);
  EXPECT_EQ(s.totalWords, 0);
  EXPECT_EQ(s.expandMessages + s.foldMessages, 0);
  EXPECT_EQ(s.maxProcWords, 0);
}

TEST(Analyze, HandWorkedTwoProcExample) {
  // A = [a00 a01]   proc assignment: a00,a01 -> P0 ; a10,a11 -> P1
  //     [a10 a11]   x0,y0 -> P0 ; x1,y1 -> P1.
  sparse::Coo coo(2, 2);
  coo.add(0, 0, 1);
  coo.add(0, 1, 1);
  coo.add(1, 0, 1);
  coo.add(1, 1, 1);
  const sparse::Csr a = to_csr(std::move(coo));
  Decomposition d;
  d.numProcs = 2;
  d.nnzOwner = {0, 0, 1, 1};
  d.xOwner = {0, 1};
  d.yOwner = {0, 1};
  const CommStats s = analyze(a, d);
  // Expand: x0 needed by P1 (a10) -> 1 word; x1 needed by P0 (a01) -> 1 word.
  EXPECT_EQ(s.expandWords, 2);
  // Fold: rows fully local -> 0 words.
  EXPECT_EQ(s.foldWords, 0);
  EXPECT_EQ(s.expandMessages, 2);
  EXPECT_EQ(s.foldMessages, 0);
  // Each proc sends 1 + receives 1 word.
  EXPECT_EQ(s.maxProcWords, 2);
  // Each proc handles 2 messages (1 sent + 1 received).
  EXPECT_NEAR(s.avgMessagesPerProc, 2.0, 1e-12);
}

TEST(Analyze, HandWorkedColumnSplit) {
  // Same matrix, columnwise split: a00,a10 -> P0 ; a01,a11 -> P1.
  sparse::Coo coo(2, 2);
  coo.add(0, 0, 1);
  coo.add(0, 1, 1);
  coo.add(1, 0, 1);
  coo.add(1, 1, 1);
  const sparse::Csr a = to_csr(std::move(coo));
  Decomposition d;
  d.numProcs = 2;
  d.nnzOwner = {0, 1, 0, 1};
  d.xOwner = {0, 1};
  d.yOwner = {0, 1};
  const CommStats s = analyze(a, d);
  // Expand: every column is used only by its owner -> 0 words.
  EXPECT_EQ(s.expandWords, 0);
  // Fold: row 0 has contributors {P0, P1}, owner P0 -> 1 word; row 1 same -> 1.
  EXPECT_EQ(s.foldWords, 2);
  EXPECT_EQ(s.foldMessages, 2);
}

TEST(Analyze, OwnerOutsideNeedSetStillCounts) {
  // x0 owned by P2 but used only by P0 and P1: expand volume must be 2.
  sparse::Coo coo(1, 1);
  coo.add(0, 0, 1);
  const sparse::Csr a = to_csr(std::move(coo));
  Decomposition d;
  d.numProcs = 3;
  d.nnzOwner = {0};
  d.xOwner = {2};
  d.yOwner = {2};
  const CommStats s = analyze(a, d);
  EXPECT_EQ(s.expandWords, 1);  // P2 -> P0
  EXPECT_EQ(s.foldWords, 1);    // P0 -> P2
}

TEST(Analyze, ScaledAccessors) {
  sparse::Coo coo(4, 4);
  for (idx_t i = 0; i < 4; ++i) coo.add(i, i, 1);
  const sparse::Csr a = to_csr(std::move(coo));
  Decomposition d;
  d.numProcs = 2;
  d.nnzOwner = {0, 0, 1, 1};
  d.xOwner = {1, 1, 0, 0};  // deliberately anti-aligned
  d.yOwner = {1, 1, 0, 0};
  const CommStats s = analyze(a, d);
  EXPECT_EQ(s.totalWords, 8);  // every diagonal entry: 1 expand + 1 fold word
  EXPECT_NEAR(s.scaledTotal(4), 2.0, 1e-12);
}

// ------------------------------------------- the paper's volume theorem ----

class VolumeTheorem : public ::testing::TestWithParam<std::tuple<idx_t, std::uint64_t>> {};

TEST_P(VolumeTheorem, FineGrainCutsizeEqualsTotalVolume) {
  const auto [K, seed] = GetParam();
  const sparse::Csr a = sparse::random_square(120, 5, seed);
  const model::FineGrainModel m = model::build_finegrain(a);

  // Arbitrary (even unbalanced) partitions must satisfy the identity.
  Rng rng(seed * 7 + 1);
  std::vector<idx_t> assign(static_cast<std::size_t>(m.h.num_vertices()));
  for (auto& p : assign) p = rng.uniform(0, K - 1);
  const hg::Partition p(m.h, K, assign);

  const Decomposition d = model::decode_finegrain(a, m, p);
  const CommStats s = analyze(a, d);
  EXPECT_EQ(s.totalWords, hg::cutsize(m.h, p, hg::CutMetric::kConnectivity));
}

TEST_P(VolumeTheorem, FineGrainTheoremWithMissingDiagonals) {
  const auto [K, seed] = GetParam();
  const sparse::Csr a = sparse::random_square(100, 4, seed, /*withDiagonal=*/false);
  const model::FineGrainModel m = model::build_finegrain(a);
  Rng rng(seed + 99);
  std::vector<idx_t> assign(static_cast<std::size_t>(m.h.num_vertices()));
  for (auto& p : assign) p = rng.uniform(0, K - 1);
  const hg::Partition p(m.h, K, assign);
  const Decomposition d = model::decode_finegrain(a, m, p);
  EXPECT_EQ(analyze(a, d).totalWords, hg::cutsize(m.h, p, hg::CutMetric::kConnectivity));
}

TEST_P(VolumeTheorem, ColnetCutsizeEqualsExpandVolume) {
  const auto [K, seed] = GetParam();
  const sparse::Csr a = sparse::random_square(150, 6, seed);
  const hg::Hypergraph h = model::build_colnet_hypergraph(a);
  Rng rng(seed * 3 + 5);
  std::vector<idx_t> rowPart(static_cast<std::size_t>(a.num_rows()));
  for (auto& p : rowPart) p = rng.uniform(0, K - 1);
  const hg::Partition p(h, K, rowPart);
  const Decomposition d = model::decode_rowwise(a, rowPart, K);
  const CommStats s = analyze(a, d);
  EXPECT_EQ(s.expandWords, hg::cutsize(h, p, hg::CutMetric::kConnectivity));
  EXPECT_EQ(s.foldWords, 0);  // rowwise: rows are fully local
}

INSTANTIATE_TEST_SUITE_P(Sweep, VolumeTheorem,
                         ::testing::Combine(::testing::Values(2, 3, 4, 8, 16),
                                            ::testing::Values(11ull, 22ull, 33ull)));

TEST(VolumeTheoremSuite, HoldsOnRealisticSuiteMatrix) {
  const sparse::Csr a = sparse::make_matrix("nl", 1, 0.1);  // has empty diagonals
  const model::FineGrainModel m = model::build_finegrain(a);
  part::PartitionConfig cfg;
  const part::HgResult r = part::partition_hypergraph(m.h, 16, cfg);
  const Decomposition d = model::decode_finegrain(a, m, r.partition);
  EXPECT_EQ(analyze(a, d).totalWords, r.cutsize);
}

// -------------------------------------------- graph model mis-estimates ----

TEST(GraphModelFlaw, EdgeCutOverestimatesTrueVolume) {
  // The classic flaw: the edge cut counts one word per cut edge, while the
  // real expand sends x_j once per remote *processor*. On a matrix with a
  // dense-ish column, edge cut > true volume.
  sparse::SkewedParams sp;
  sp.n = 300;
  sp.targetNnz = 3000;
  sp.maxColDegree = 80;
  sp.numDenseCols = 6;
  const sparse::Csr a = symmetrized_pattern(sparse::skewed_square(sp, 3));
  const gp::Graph g = model::build_standard_graph(a);
  part::PartitionConfig cfg;
  const part::GpResult r = part::partition_graph(g, 8, cfg);
  const Decomposition d = model::decode_rowwise(a, r.partition.assignment(), 8);
  const CommStats s = analyze(a, d);
  EXPECT_GT(r.edgeCut, s.totalWords);
}

// ------------------------------------------------------- message bounds ----

TEST(MessageBounds, OneDimensionalBoundKMinus1) {
  const sparse::Csr a = sparse::random_square(200, 8, 4);
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_hypergraph1d(a, 8, cfg);
  const CommStats s = analyze(a, run.decomp);
  // Each processor sends/receives at most K-1 expand messages each way.
  EXPECT_LE(s.maxMessagesPerProc, 2 * (8 - 1));
  EXPECT_EQ(s.foldMessages, 0);
}

TEST(MessageBounds, FineGrainBoundTwoKMinus1) {
  const sparse::Csr a = sparse::random_square(200, 8, 5);
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_finegrain(a, 8, cfg);
  const CommStats s = analyze(a, run.decomp);
  // Handled = sent + received over both phases <= 2 * 2(K-1).
  EXPECT_LE(s.maxMessagesPerProc, 4 * (8 - 1));
  EXPECT_LE(s.avgMessagesPerProc, 2.0 * 2.0 * (8 - 1));
}

// -------------------------------------------------- internal consistency ----

TEST(AnalyzeInternal, MessageCountsConsistent) {
  const sparse::Csr a = sparse::random_square(150, 6, 71);
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_finegrain(a, 8, cfg);
  const CommStats s = analyze(a, run.decomp);
  // Every directed message is handled twice (sender + receiver).
  idx_t handled = 0;
  for (idx_t p = 0; p < s.numProcs; ++p)
    handled += s.messagesHandled[static_cast<std::size_t>(p)];
  EXPECT_EQ(handled, 2 * (s.expandMessages + s.foldMessages));
  EXPECT_NEAR(s.avgMessagesPerProc, static_cast<double>(handled) / 8.0, 1e-12);
  // Max is indeed the max.
  idx_t mx = 0;
  for (idx_t p = 0; p < s.numProcs; ++p)
    mx = std::max(mx, s.messagesHandled[static_cast<std::size_t>(p)]);
  EXPECT_EQ(mx, s.maxMessagesPerProc);
}

TEST(AnalyzeInternal, MaxProcWordsIsAttained) {
  const sparse::Csr a = sparse::random_square(100, 5, 73);
  const Decomposition d = model::checkerboard_decompose_k(a, 4);
  const CommStats s = analyze(a, d);
  weight_t mx = 0;
  for (idx_t p = 0; p < s.numProcs; ++p)
    mx = std::max(mx, s.sendWords[static_cast<std::size_t>(p)] +
                          s.recvWords[static_cast<std::size_t>(p)]);
  EXPECT_EQ(mx, s.maxProcWords);
}

TEST(AnalyzeInternal, EmptyMatrixNoTraffic) {
  const sparse::Csr a(4, 4, {0, 0, 0, 0, 0}, {}, {});
  Decomposition d;
  d.numProcs = 3;
  d.xOwner = {0, 1, 2, 0};
  d.yOwner = {0, 1, 2, 0};
  const CommStats s = analyze(a, d);
  EXPECT_EQ(s.totalWords, 0);
  EXPECT_EQ(s.expandMessages + s.foldMessages, 0);
}

TEST(AnalyzeInternal, PerProcWordsSumToTotals) {
  const sparse::Csr a = sparse::make_matrix("sherman3", 2, 0.3);
  const Decomposition d = model::checkerboard_decompose_k(a, 6);
  const CommStats s = analyze(a, d);
  weight_t sent = 0, recv = 0;
  for (idx_t p = 0; p < s.numProcs; ++p) {
    sent += s.sendWords[static_cast<std::size_t>(p)];
    recv += s.recvWords[static_cast<std::size_t>(p)];
  }
  EXPECT_EQ(sent, s.totalWords);
  EXPECT_EQ(recv, s.totalWords);
}

}  // namespace
}  // namespace fghp::comm
