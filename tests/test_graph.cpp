// Graph substrate tests: adjacency construction, edge merging, partition
// bookkeeping, edge-cut metric.
#include <gtest/gtest.h>

#include <set>

#include "graph/gmetrics.hpp"
#include "graph/graph.hpp"

namespace fghp::gp {
namespace {

Graph path4() {
  // 0 - 1 - 2 - 3 with weights 1, 2, 3.
  return Graph(4, {{0, 1, 1}, {1, 2, 2}, {2, 3, 3}});
}

TEST(Graph, BasicAccessors) {
  const Graph g = path4();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.total_edge_weight(), 6);
  EXPECT_EQ(g.total_vertex_weight(), 4);  // default unit weights
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.max_incident_weight(), 5);  // vertex 2: 2 + 3
}

TEST(Graph, NeighborsBidirectional) {
  const Graph g = path4();
  std::set<idx_t> n1;
  for (const Adj& a : g.neighbors(1)) n1.insert(a.to);
  EXPECT_EQ(n1, (std::set<idx_t>{0, 2}));
  for (const Adj& a : g.neighbors(2)) {
    if (a.to == 3) {
      EXPECT_EQ(a.weight, 3);
    }
  }
}

TEST(Graph, ParallelEdgesMerge) {
  const Graph g(2, {{0, 1, 1}, {1, 0, 2}, {0, 1, 3}});
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.neighbors(0)[0].weight, 6);
}

TEST(Graph, VertexWeightsRespected) {
  const Graph g(3, {{0, 1, 1}}, {5, 2, 3});
  EXPECT_EQ(g.total_vertex_weight(), 10);
  EXPECT_EQ(g.vertex_weight(0), 5);
}

TEST(Graph, RejectsBadEdges) {
  EXPECT_THROW(Graph(2, {{0, 0, 1}}), std::invalid_argument);   // self loop
  EXPECT_THROW(Graph(2, {{0, 5, 1}}), std::invalid_argument);   // out of range
  EXPECT_THROW(Graph(2, {{0, 1, -1}}), std::invalid_argument);  // negative weight
  EXPECT_THROW(Graph(2, {}, {1}), std::invalid_argument);       // weight count
}

TEST(Graph, IsolatedVerticesAllowed) {
  const Graph g(3, {});
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.degree(1), 0);
}

TEST(GPartitionT, AssignMoveWeights) {
  const Graph g(4, {{0, 1, 1}}, {1, 2, 3, 4});
  GPartition p(g, 2);
  for (idx_t v = 0; v < 4; ++v) p.assign(g, v, v < 2 ? 0 : 1);
  EXPECT_TRUE(p.complete());
  EXPECT_EQ(p.part_weight(0), 3);
  EXPECT_EQ(p.part_weight(1), 7);
  p.move(g, 3, 0);
  EXPECT_EQ(p.part_weight(0), 7);
  EXPECT_EQ(p.part_weight(1), 3);
}

TEST(GPartitionT, AdoptValidates) {
  const Graph g = path4();
  EXPECT_NO_THROW(GPartition(g, 2, {0, 0, 1, 1}));
  EXPECT_THROW(GPartition(g, 2, {0, 0, 2, 1}), std::invalid_argument);
  EXPECT_THROW(GPartition(g, 2, {0, 0}), std::invalid_argument);
}

TEST(GMetrics, EdgeCut) {
  const Graph g = path4();
  EXPECT_EQ(edge_cut(g, GPartition(g, 2, {0, 0, 1, 1})), 2);
  EXPECT_EQ(edge_cut(g, GPartition(g, 2, {0, 1, 0, 1})), 6);
  EXPECT_EQ(edge_cut(g, GPartition(g, 1, {0, 0, 0, 0})), 0);
}

TEST(GMetrics, ImbalanceAndBalance) {
  const Graph g(4, {}, {1, 1, 1, 5});
  const GPartition p(g, 2, {0, 0, 0, 1});
  // Weights 3 and 5, avg 4 => imbalance 0.25.
  EXPECT_NEAR(imbalance(g, p), 0.25, 1e-12);
  EXPECT_TRUE(is_balanced(g, p, 0.25));
  EXPECT_FALSE(is_balanced(g, p, 0.2));
}

}  // namespace
}  // namespace fghp::gp
