// Distributed SpMV tests: reference kernel, plan construction, serial and
// threaded executors versus the reference, and exact agreement of counted
// traffic with the communication analyzer.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/volume.hpp"
#include "models/checkerboard.hpp"
#include "models/finegrain.hpp"
#include "models/graph_model.hpp"
#include "models/hypergraph1d.hpp"
#include "spmv/costmodel.hpp"
#include "spmv/executor.hpp"
#include "spmv/plan.hpp"
#include "spmv/reference.hpp"
#include "spmv/transpose.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "util/rng.hpp"

namespace fghp::spmv {
namespace {

std::vector<double> random_x(idx_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform01() * 2.0 - 1.0;
  return x;
}

void expect_near_vec(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-9 * (1.0 + std::abs(a[i]))) << "index " << i;
  }
}

model::Decomposition random_decomposition(const sparse::Csr& a, idx_t K, std::uint64_t seed) {
  Rng rng(seed);
  model::Decomposition d;
  d.numProcs = K;
  d.nnzOwner.resize(static_cast<std::size_t>(a.nnz()));
  for (auto& p : d.nnzOwner) p = rng.uniform(0, K - 1);
  d.xOwner.resize(static_cast<std::size_t>(a.num_cols()));
  d.yOwner.resize(static_cast<std::size_t>(a.num_rows()));
  for (auto& p : d.xOwner) p = rng.uniform(0, K - 1);
  for (auto& p : d.yOwner) p = rng.uniform(0, K - 1);
  return d;
}

// ----------------------------------------------------------- reference ----

TEST(Reference, IdentityIsNoOp) {
  const sparse::Csr a = sparse::identity(5);
  const auto x = random_x(5, 1);
  expect_near_vec(multiply(a, x), x);
}

TEST(Reference, SmallDenseByHand) {
  // [1 2; 3 4] * [1, -1] = [-1, -1]
  sparse::Coo coo(2, 2);
  coo.add(0, 0, 1);
  coo.add(0, 1, 2);
  coo.add(1, 0, 3);
  coo.add(1, 1, 4);
  const sparse::Csr a = to_csr(std::move(coo));
  const std::vector<double> x = {1.0, -1.0};
  const auto y = multiply(a, x);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Reference, RectangularShapes) {
  sparse::Coo coo(2, 3);
  coo.add(0, 2, 2.0);
  coo.add(1, 0, 3.0);
  const sparse::Csr a = to_csr(std::move(coo));
  const std::vector<double> x = {1.0, 5.0, -1.0};
  const auto y = multiply(a, x);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(Reference, SizeMismatchThrows) {
  const sparse::Csr a = sparse::identity(3);
  std::vector<double> x(2), y(3);
  EXPECT_THROW(multiply_into(a, x, y), std::invalid_argument);
}

// ---------------------------------------------------------------- plan ----

TEST(Plan, LocalEntriesPartitionTheMatrix) {
  const sparse::Csr a = sparse::random_square(60, 5, 2);
  const auto d = random_decomposition(a, 5, 3);
  const SpmvPlan plan = build_plan(a, d);
  ASSERT_EQ(plan.numProcs, 5);
  std::size_t total = 0;
  for (const auto& pp : plan.procs) total += pp.rows.size();
  EXPECT_EQ(total, static_cast<std::size_t>(a.nnz()));
}

TEST(Plan, OwnershipListsPartitionVectors) {
  const sparse::Csr a = sparse::random_square(60, 5, 4);
  const auto d = random_decomposition(a, 4, 5);
  const SpmvPlan plan = build_plan(a, d);
  std::vector<int> xSeen(60, 0), ySeen(60, 0);
  for (const auto& pp : plan.procs) {
    for (idx_t j : pp.ownedX) ++xSeen[static_cast<std::size_t>(j)];
    for (idx_t i : pp.ownedY) ++ySeen[static_cast<std::size_t>(i)];
  }
  for (int c : xSeen) EXPECT_EQ(c, 1);
  for (int c : ySeen) EXPECT_EQ(c, 1);
}

TEST(Plan, TrafficMatchesAnalyzer) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const sparse::Csr a = sparse::random_square(80, 6, seed);
    const auto d = random_decomposition(a, 6, seed + 10);
    const SpmvPlan plan = build_plan(a, d);
    const comm::CommStats s = comm::analyze(a, d);
    EXPECT_EQ(plan.total_words(), s.totalWords);
    EXPECT_EQ(plan.total_messages(), s.expandMessages + s.foldMessages);
  }
}

TEST(Plan, RecvPairIndicesPointBack) {
  const sparse::Csr a = sparse::random_square(50, 5, 9);
  const auto d = random_decomposition(a, 4, 11);
  const SpmvPlan plan = build_plan(a, d);
  for (idx_t p = 0; p < plan.numProcs; ++p) {
    for (const Msg& m : plan.procs[static_cast<std::size_t>(p)].xRecvs) {
      const auto& peerSends = plan.procs[static_cast<std::size_t>(m.peer)].xSends;
      ASSERT_LT(static_cast<std::size_t>(m.pairIndex), peerSends.size());
      EXPECT_EQ(peerSends[static_cast<std::size_t>(m.pairIndex)].peer, p);
      EXPECT_EQ(peerSends[static_cast<std::size_t>(m.pairIndex)].ids, m.ids);
    }
    for (const Msg& m : plan.procs[static_cast<std::size_t>(p)].yRecvs) {
      const auto& peerSends = plan.procs[static_cast<std::size_t>(m.peer)].ySends;
      ASSERT_LT(static_cast<std::size_t>(m.pairIndex), peerSends.size());
      EXPECT_EQ(peerSends[static_cast<std::size_t>(m.pairIndex)].peer, p);
    }
  }
}

// ------------------------------------------------------------ executor ----

class ExecutorModels : public ::testing::TestWithParam<idx_t> {};

TEST_P(ExecutorModels, FineGrainMatchesReference) {
  const idx_t K = GetParam();
  const sparse::Csr a = sparse::random_square(120, 6, 21);
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_finegrain(a, K, cfg);
  const SpmvPlan plan = build_plan(a, run.decomp);
  const auto x = random_x(a.num_cols(), 77);
  ExecStats stats;
  const auto y = execute(plan, x, &stats);
  expect_near_vec(y, multiply(a, x));
  const comm::CommStats cs = comm::analyze(a, run.decomp);
  EXPECT_EQ(stats.wordsSent, cs.totalWords);
  EXPECT_EQ(stats.messagesSent, cs.expandMessages + cs.foldMessages);
}

TEST_P(ExecutorModels, RowwiseMatchesReference) {
  const idx_t K = GetParam();
  const sparse::Csr a = sparse::random_square(120, 6, 22);
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_hypergraph1d(a, K, cfg);
  const SpmvPlan plan = build_plan(a, run.decomp);
  const auto x = random_x(a.num_cols(), 78);
  expect_near_vec(execute(plan, x), multiply(a, x));
}

TEST_P(ExecutorModels, CheckerboardMatchesReference) {
  const idx_t K = GetParam();
  const sparse::Csr a = sparse::random_square(120, 6, 23);
  const auto d = model::checkerboard_decompose_k(a, K);
  const SpmvPlan plan = build_plan(a, d);
  const auto x = random_x(a.num_cols(), 79);
  expect_near_vec(execute(plan, x), multiply(a, x));
}

TEST_P(ExecutorModels, ArbitraryDecompositionMatchesReference) {
  // Even a completely random decomposition (no model structure at all) must
  // execute correctly.
  const idx_t K = GetParam();
  const sparse::Csr a = sparse::random_square(100, 5, 24);
  const auto d = random_decomposition(a, K, 25);
  const SpmvPlan plan = build_plan(a, d);
  const auto x = random_x(a.num_cols(), 80);
  expect_near_vec(execute(plan, x), multiply(a, x));
}

INSTANTIATE_TEST_SUITE_P(KSweep, ExecutorModels, ::testing::Values(1, 2, 4, 7, 16));

TEST(Executor, RejectsWrongXSize) {
  const sparse::Csr a = sparse::random_square(40, 4, 30);
  const auto d = random_decomposition(a, 3, 31);
  const SpmvPlan plan = build_plan(a, d);
  std::vector<double> tooShort(39, 1.0);
  EXPECT_THROW(execute(plan, tooShort), std::invalid_argument);
  EXPECT_THROW(execute_mt(plan, tooShort), std::invalid_argument);
}

TEST(Executor, MatrixWithMissingDiagonals) {
  const sparse::Csr a = sparse::random_square(90, 5, 31, /*withDiagonal=*/false);
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_finegrain(a, 6, cfg);
  const SpmvPlan plan = build_plan(a, run.decomp);
  const auto x = random_x(a.num_cols(), 81);
  expect_near_vec(execute(plan, x), multiply(a, x));
}

TEST(Executor, EmptyRowsAndColumns) {
  sparse::Coo coo(6, 6);
  coo.add(0, 0, 2.0);
  coo.add(4, 2, -1.0);
  const sparse::Csr a = to_csr(std::move(coo));
  const auto d = random_decomposition(a, 3, 32);
  const SpmvPlan plan = build_plan(a, d);
  const auto x = random_x(6, 82);
  const auto y = execute(plan, x);
  expect_near_vec(y, multiply(a, x));
  EXPECT_DOUBLE_EQ(y[1], 0.0);  // empty row stays zero
}

// --------------------------------------------------------- MT executor ----

class MtExecutor : public ::testing::TestWithParam<idx_t> {};

TEST_P(MtExecutor, MatchesSerialExecutorBitForBit) {
  const idx_t threads = GetParam();
  const sparse::Csr a = sparse::random_square(150, 6, 41);
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_finegrain(a, 8, cfg);
  const SpmvPlan plan = build_plan(a, run.decomp);
  const auto x = random_x(a.num_cols(), 83);
  ExecStats serialStats, mtStats;
  const auto ySerial = execute(plan, x, &serialStats);
  const auto yMt = execute_mt(plan, x, threads, &mtStats);
  // Identical summation order => bitwise identical results.
  ASSERT_EQ(ySerial.size(), yMt.size());
  for (std::size_t i = 0; i < ySerial.size(); ++i) EXPECT_EQ(ySerial[i], yMt[i]);
  EXPECT_EQ(serialStats.wordsSent, mtStats.wordsSent);
  EXPECT_EQ(serialStats.messagesSent, mtStats.messagesSent);
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, MtExecutor, ::testing::Values(0, 1, 2, 3, 8));

TEST(MtExecutor, RepeatedRunsDeterministic) {
  const sparse::Csr a = sparse::random_square(100, 5, 51);
  const auto d = random_decomposition(a, 6, 52);
  const SpmvPlan plan = build_plan(a, d);
  const auto x = random_x(a.num_cols(), 84);
  const auto y1 = execute_mt(plan, x, 4);
  const auto y2 = execute_mt(plan, x, 4);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_EQ(y1[i], y2[i]);
}

// ------------------------------------------------------------ transpose ----

class TransposeSpmv : public ::testing::TestWithParam<idx_t> {};

TEST_P(TransposeSpmv, MatchesReferenceTransposeProduct) {
  const idx_t K = GetParam();
  const sparse::Csr a = sparse::random_square(140, 6, 91);
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_finegrain(a, K, cfg);
  const SpmvPlan plan = build_transpose_plan(a, run.decomp);
  const auto w = random_x(a.num_rows(), 92);
  const auto z = execute(plan, w);
  const auto zRef = multiply(sparse::transpose(a), w);
  expect_near_vec(z, zRef);
}

INSTANTIATE_TEST_SUITE_P(KSweep, TransposeSpmv, ::testing::Values(1, 2, 4, 8));

TEST(TransposeSpmvProps, SameTotalTrafficAsForward) {
  // With conformal vectors the expand/fold roles swap, so total volume of
  // A^T w equals that of A x — the fine-grain cutsize prices both.
  const sparse::Csr a = sparse::random_square(150, 6, 93);
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_finegrain(a, 8, cfg);
  const comm::CommStats fwd = comm::analyze(a, run.decomp);
  const model::Decomposition dt = transpose_decomposition(a, run.decomp);
  const comm::CommStats bwd = comm::analyze(sparse::transpose(a), dt);
  EXPECT_EQ(fwd.totalWords, bwd.totalWords);
  EXPECT_EQ(fwd.expandWords, bwd.foldWords);
  EXPECT_EQ(fwd.foldWords, bwd.expandWords);
}

TEST(TransposeSpmvProps, DecompositionRemapIsConsistent) {
  // The transpose decomposition owns the same multiset of entries per proc.
  const sparse::Csr a = sparse::random_square(100, 5, 94);
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_finegrain(a, 6, cfg);
  const model::Decomposition dt = transpose_decomposition(a, run.decomp);
  std::vector<idx_t> fwdCount(6, 0), bwdCount(6, 0);
  for (idx_t p : run.decomp.nnzOwner) ++fwdCount[static_cast<std::size_t>(p)];
  for (idx_t p : dt.nnzOwner) ++bwdCount[static_cast<std::size_t>(p)];
  EXPECT_EQ(fwdCount, bwdCount);
  // Spot-check a specific entry: owner of a_ij equals owner of (A^T)_ji.
  const sparse::Csr at = sparse::transpose(a);
  std::size_t e = 0;
  for (idx_t i = 0; i < a.num_rows() && e < 25; ++i) {
    for (idx_t j : a.row_cols(i)) {
      // Locate (j, i) in at's entry order.
      std::size_t pos = static_cast<std::size_t>(at.row_ptr()[static_cast<std::size_t>(j)]);
      for (idx_t c : at.row_cols(j)) {
        if (c == i) break;
        ++pos;
      }
      EXPECT_EQ(dt.nnzOwner[pos], run.decomp.nnzOwner[e]);
      ++e;
      if (e >= 25) break;
    }
  }
}

TEST(TransposeSpmvProps, MtExecutorAgrees) {
  const sparse::Csr a = sparse::random_square(120, 5, 95);
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_finegrain(a, 6, cfg);
  const SpmvPlan plan = build_transpose_plan(a, run.decomp);
  const auto w = random_x(a.num_rows(), 96);
  const auto zs = execute(plan, w);
  const auto zm = execute_mt(plan, w, 4);
  for (std::size_t i = 0; i < zs.size(); ++i) EXPECT_EQ(zs[i], zm[i]);
}

// ----------------------------------------------------------- cost model ----

TEST(CostModel, SerialBaselineAndSpeedup) {
  const sparse::Csr a = sparse::random_square(200, 6, 61);
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_finegrain(a, 8, cfg);
  const comm::CommStats cs = comm::analyze(a, run.decomp);
  const CostEstimate est = estimate_cost(a, run.decomp, cs);
  EXPECT_GT(est.computeSeconds, 0.0);
  EXPECT_GE(est.commSeconds, 0.0);
  EXPECT_NEAR(est.serialSeconds, 2.0 * a.nnz() * 5e-10, 1e-15);
  EXPECT_GT(est.speedup, 0.0);
}

TEST(CostModel, ZeroCommWhenSingleProc) {
  const sparse::Csr a = sparse::random_square(100, 5, 62);
  model::Decomposition d;
  d.numProcs = 1;
  d.nnzOwner.assign(static_cast<std::size_t>(a.nnz()), 0);
  d.xOwner.assign(100, 0);
  d.yOwner.assign(100, 0);
  const comm::CommStats cs = comm::analyze(a, d);
  const CostEstimate est = estimate_cost(a, d, cs);
  EXPECT_DOUBLE_EQ(est.commSeconds, 0.0);
  EXPECT_NEAR(est.speedup, 1.0, 1e-9);
}

TEST(CostModel, ParameterMonotonicity) {
  // Doubling beta doubles the word cost contribution; doubling gamma scales
  // compute; alpha scales the message term.
  const sparse::Csr a = sparse::random_square(150, 6, 65);
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_finegrain(a, 8, cfg);
  const comm::CommStats cs = comm::analyze(a, run.decomp);

  CostParams base;
  const CostEstimate e0 = estimate_cost(a, run.decomp, cs, base);
  CostParams noAlpha = base;
  noAlpha.alpha = 0.0;
  CostParams noBeta = base;
  noBeta.beta = 0.0;
  const CostEstimate eA = estimate_cost(a, run.decomp, cs, noAlpha);
  const CostEstimate eB = estimate_cost(a, run.decomp, cs, noBeta);
  EXPECT_LE(eA.commSeconds, e0.commSeconds);
  EXPECT_LE(eB.commSeconds, e0.commSeconds);
  CostParams doubleGamma = base;
  doubleGamma.gamma = 2.0 * base.gamma;
  const CostEstimate eG = estimate_cost(a, run.decomp, cs, doubleGamma);
  EXPECT_NEAR(eG.computeSeconds, 2.0 * e0.computeSeconds, 1e-15);
  EXPECT_NEAR(eG.serialSeconds, 2.0 * e0.serialSeconds, 1e-15);
}

TEST(CostModel, MoreProcessorsMoreParallelCompute) {
  const sparse::Csr a = sparse::random_square(200, 6, 66);
  part::PartitionConfig cfg;
  const model::ModelRun r4 = model::run_finegrain(a, 4, cfg);
  const model::ModelRun r16 = model::run_finegrain(a, 16, cfg);
  const CostEstimate e4 = estimate_cost(a, r4.decomp, comm::analyze(a, r4.decomp));
  const CostEstimate e16 = estimate_cost(a, r16.decomp, comm::analyze(a, r16.decomp));
  EXPECT_LT(e16.computeSeconds, e4.computeSeconds);
}

TEST(CostModel, LowerVolumeLowerCommTime) {
  // A model decomposition should beat the random decomposition under the
  // cost model on the same matrix/K.
  const sparse::Csr a = sparse::random_square(200, 6, 63);
  part::PartitionConfig cfg;
  const model::ModelRun good = model::run_finegrain(a, 8, cfg);
  const auto bad = random_decomposition(a, 8, 64);
  const CostEstimate goodEst =
      estimate_cost(a, good.decomp, comm::analyze(a, good.decomp));
  const CostEstimate badEst = estimate_cost(a, bad, comm::analyze(a, bad));
  EXPECT_LT(goodEst.commSeconds, badEst.commSeconds);
}

}  // namespace
}  // namespace fghp::spmv
