// Tests for the extended 2D schemes (jagged, hypergraph-orthogonal) and the
// vector-ownership balancer.
#include <gtest/gtest.h>

#include <set>

#include "comm/volume.hpp"
#include "models/checkerboard.hpp"
#include "models/finegrain.hpp"
#include "models/jagged.hpp"
#include "models/orthogonal.hpp"
#include "models/vector_assign.hpp"
#include "spmv/executor.hpp"
#include "spmv/plan.hpp"
#include "spmv/reference.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/testsuite.hpp"
#include "util/rng.hpp"

namespace fghp::model {
namespace {

std::vector<double> random_x(idx_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform01() * 2.0 - 1.0;
  return x;
}

void expect_correct_spmv(const sparse::Csr& a, const Decomposition& d) {
  const spmv::SpmvPlan plan = spmv::build_plan(a, d);
  const auto x = random_x(a.num_cols(), 3);
  const auto y = spmv::execute(plan, x);
  const auto yRef = spmv::multiply(a, x);
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], yRef[i], 1e-9 * (1.0 + std::abs(yRef[i])));
}

// --------------------------------------------------------------- jagged ----

class JaggedGrids : public ::testing::TestWithParam<std::pair<idx_t, idx_t>> {};

TEST_P(JaggedGrids, ValidConformalAndCorrect) {
  const auto [pr, pc] = GetParam();
  const sparse::Csr a = sparse::random_square(150, 6, 5);
  part::PartitionConfig cfg;
  const ModelRun run = run_jagged(a, pr, pc, cfg);
  EXPECT_EQ(run.decomp.numProcs, pr * pc);
  EXPECT_TRUE(symmetric_vectors(run.decomp));
  expect_correct_spmv(a, run.decomp);
}

INSTANTIATE_TEST_SUITE_P(Grids, JaggedGrids,
                         ::testing::Values(std::pair<idx_t, idx_t>{1, 1},
                                           std::pair<idx_t, idx_t>{1, 4},
                                           std::pair<idx_t, idx_t>{4, 1},
                                           std::pair<idx_t, idx_t>{2, 3},
                                           std::pair<idx_t, idx_t>{4, 4}));

TEST(Jagged, StripeStructure) {
  // All nonzeros of a row live inside one grid row (the defining property).
  const sparse::Csr a = sparse::random_square(120, 5, 7);
  part::PartitionConfig cfg;
  const idx_t pr = 3, pc = 2;
  const ModelRun run = run_jagged(a, pr, pc, cfg);
  std::size_t e = 0;
  for (idx_t i = 0; i < a.num_rows(); ++i) {
    std::set<idx_t> gridRows;
    for (idx_t k = 0; k < a.row_size(i); ++k) gridRows.insert(run.decomp.nnzOwner[e++] / pc);
    EXPECT_LE(gridRows.size(), 1u) << "row " << i << " spans stripes";
  }
}

TEST(Jagged, KFactorization) {
  const sparse::Csr a = sparse::random_square(100, 5, 9);
  part::PartitionConfig cfg;
  EXPECT_EQ(run_jagged_k(a, 12, cfg).decomp.numProcs, 12);
  EXPECT_EQ(run_jagged_k(a, 7, cfg).decomp.numProcs, 7);
}

TEST(Jagged, BeatsCartesianCheckerboardOnStructuredMatrix) {
  const sparse::Csr a = sparse::make_matrix("sherman3", 3, 0.3);
  part::PartitionConfig cfg;
  const auto jag = comm::analyze(a, run_jagged_k(a, 16, cfg).decomp).totalWords;
  const auto cb = comm::analyze(a, checkerboard_decompose_k(a, 16)).totalWords;
  EXPECT_LT(jag, cb);
}

// ----------------------------------------------------------- orthogonal ----

class OrthogonalGrids : public ::testing::TestWithParam<std::pair<idx_t, idx_t>> {};

TEST_P(OrthogonalGrids, ValidConformalAndCorrect) {
  const auto [pr, pc] = GetParam();
  const sparse::Csr a = sparse::random_square(150, 6, 11);
  part::PartitionConfig cfg;
  const ModelRun run = run_orthogonal(a, pr, pc, cfg);
  EXPECT_EQ(run.decomp.numProcs, pr * pc);
  EXPECT_TRUE(symmetric_vectors(run.decomp));
  expect_correct_spmv(a, run.decomp);
}

INSTANTIATE_TEST_SUITE_P(Grids, OrthogonalGrids,
                         ::testing::Values(std::pair<idx_t, idx_t>{1, 1},
                                           std::pair<idx_t, idx_t>{2, 2},
                                           std::pair<idx_t, idx_t>{2, 4},
                                           std::pair<idx_t, idx_t>{4, 4}));

TEST(Orthogonal, GridMessageStructure) {
  // Expand messages stay within grid columns; fold within grid rows.
  const sparse::Csr a = sparse::random_square(200, 6, 13);
  part::PartitionConfig cfg;
  const idx_t pr = 3, pc = 3;
  const ModelRun run = run_orthogonal(a, pr, pc, cfg);
  const auto& d = run.decomp;
  // Nonzero (i, j) sits at (rowPart(i), colPart(j)); x_j's owner shares
  // colPart(j), so every x_j transfer stays within one grid column.
  std::size_t e = 0;
  for (idx_t i = 0; i < a.num_rows(); ++i) {
    for (idx_t j : a.row_cols(i)) {
      const idx_t owner = d.xOwner[static_cast<std::size_t>(j)];
      const idx_t user = d.nnzOwner[e++];
      EXPECT_EQ(owner % pc, user % pc) << "expand crosses grid columns";
      EXPECT_EQ(d.yOwner[static_cast<std::size_t>(i)] / pc, user / pc)
          << "fold crosses grid rows";
    }
  }
}

TEST(Orthogonal, BeatsCartesianCheckerboard) {
  const sparse::Csr a = sparse::make_matrix("bcspwr10", 5, 0.3);
  part::PartitionConfig cfg;
  const auto ort = comm::analyze(a, run_orthogonal_k(a, 16, cfg).decomp).totalWords;
  const auto cb = comm::analyze(a, checkerboard_decompose_k(a, 16)).totalWords;
  EXPECT_LT(ort, cb);
}

TEST(Jagged, MatrixWithEmptyRowsAndColumns) {
  sparse::Coo coo(40, 40);
  Rng rng(31);
  for (int e = 0; e < 120; ++e) {
    // Rows/cols 30..39 stay empty.
    coo.add(rng.uniform(0, 29), rng.uniform(0, 29), 1.0);
  }
  const sparse::Csr a = to_csr(std::move(coo));
  part::PartitionConfig cfg;
  const ModelRun run = run_jagged(a, 2, 2, cfg);
  EXPECT_NO_THROW(validate(a, run.decomp));
  EXPECT_TRUE(symmetric_vectors(run.decomp));
  expect_correct_spmv(a, run.decomp);
}

TEST(Orthogonal, MatrixWithEmptyRowsAndColumns) {
  sparse::Coo coo(40, 40);
  Rng rng(33);
  for (int e = 0; e < 120; ++e) {
    coo.add(rng.uniform(0, 29), rng.uniform(0, 29), 1.0);
  }
  const sparse::Csr a = to_csr(std::move(coo));
  part::PartitionConfig cfg;
  const ModelRun run = run_orthogonal(a, 2, 2, cfg);
  EXPECT_NO_THROW(validate(a, run.decomp));
  expect_correct_spmv(a, run.decomp);
}

TEST(Jagged, RejectsRectangularAndBadGrid) {
  const sparse::Csr rect(2, 3, {0, 1, 2}, {0, 1}, {1.0, 1.0});
  part::PartitionConfig cfg;
  EXPECT_THROW(run_jagged(rect, 2, 2, cfg), std::invalid_argument);
  const sparse::Csr sq = sparse::random_square(20, 3, 35);
  EXPECT_THROW(run_jagged(sq, 0, 2, cfg), std::invalid_argument);
  EXPECT_THROW(run_orthogonal(sq, 2, 0, cfg), std::invalid_argument);
}

// -------------------------------------------------------- vector assign ----

TEST(VectorAssign, PreservesTotalVolumeAndSymmetry) {
  const sparse::Csr a = sparse::random_square(150, 6, 17);
  part::PartitionConfig cfg;
  const ModelRun run = model::run_finegrain(a, 8, cfg);
  const comm::CommStats before = comm::analyze(a, run.decomp);

  const VectorAssignResult r = balance_vector_owners(a, run.decomp);
  EXPECT_TRUE(symmetric_vectors(r.decomp));
  const comm::CommStats after = comm::analyze(a, r.decomp);
  EXPECT_EQ(after.totalWords, before.totalWords);
  EXPECT_LE(after.maxProcWords, before.maxProcWords);
  EXPECT_EQ(r.maxProcWordsBefore, before.maxProcWords);
  EXPECT_EQ(r.maxProcWordsAfter, after.maxProcWords);
}

TEST(VectorAssign, ImprovesSkewedDiagonalAssignment) {
  // Force a terrible initial owner map: everything on processor 0 — the
  // optimizer must spread the communication endpoints.
  const sparse::Csr a = sparse::random_square(120, 6, 19);
  part::PartitionConfig cfg;
  ModelRun run = model::run_finegrain(a, 8, cfg);
  // Processor 0 owns every vector entry (still valid, just imbalanced).
  std::fill(run.decomp.xOwner.begin(), run.decomp.xOwner.end(), 0);
  std::fill(run.decomp.yOwner.begin(), run.decomp.yOwner.end(), 0);
  const comm::CommStats before = comm::analyze(a, run.decomp);
  const VectorAssignResult r = balance_vector_owners(a, run.decomp);
  const comm::CommStats after = comm::analyze(a, r.decomp);
  EXPECT_LT(after.maxProcWords, before.maxProcWords);
  // Total volume may only shrink (owners move into the connectivity sets).
  EXPECT_LE(after.totalWords, before.totalWords);
}

TEST(VectorAssign, ExecutesCorrectlyAfterReassignment) {
  const sparse::Csr a = sparse::random_square(130, 5, 23);
  part::PartitionConfig cfg;
  const ModelRun run = model::run_finegrain(a, 6, cfg);
  const VectorAssignResult r = balance_vector_owners(a, run.decomp);
  expect_correct_spmv(a, r.decomp);
}

TEST(VectorAssign, SingleProcessorNoOp) {
  const sparse::Csr a = sparse::random_square(50, 4, 29);
  Decomposition d;
  d.numProcs = 1;
  d.nnzOwner.assign(static_cast<std::size_t>(a.nnz()), 0);
  d.xOwner.assign(50, 0);
  d.yOwner.assign(50, 0);
  const VectorAssignResult r = balance_vector_owners(a, d);
  EXPECT_EQ(r.maxProcWordsAfter, 0);
  EXPECT_EQ(r.decomp.xOwner, d.xOwner);
}

}  // namespace
}  // namespace fghp::model
