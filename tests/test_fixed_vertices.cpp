// Tests for pre-assigned (fixed) vertices — the paper's §3 mechanism for
// reduction problems whose inputs/outputs are pinned to processors — plus
// the V-cycle refinement and the row-net (1D columnwise) model.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "comm/volume.hpp"
#include "hypergraph/builder.hpp"
#include "hypergraph/metrics.hpp"
#include "models/finegrain.hpp"
#include "models/rownet.hpp"
#include "partition/hg/coarsen.hpp"
#include "partition/hg/kway_refine.hpp"
#include "partition/hg/partitioner.hpp"
#include "partition/hg/vcycle.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "util/rng.hpp"

namespace fghp::part {
namespace {

using hg::Hypergraph;
using hg::Partition;

Hypergraph random_hg(idx_t numVerts, idx_t numNets, idx_t maxNetSize, std::uint64_t seed) {
  Rng rng(seed);
  hg::HypergraphBuilder b(numVerts);
  for (idx_t n = 0; n < numNets; ++n) {
    std::set<idx_t> pins;
    const idx_t size = rng.uniform(2, maxNetSize);
    while (static_cast<idx_t>(pins.size()) < size)
      pins.insert(rng.uniform(0, numVerts - 1));
    std::vector<idx_t> pv(pins.begin(), pins.end());
    b.add_net(pv);
  }
  return std::move(b).build();
}

// ----------------------------------------------------- fixed clustering ----

TEST(FixedCoarsen, ClustersNeverMixSides) {
  const Hypergraph h = random_hg(120, 90, 6, 1);
  hgc::FixedSides fixed(120, -1);
  Rng fixRng(2);
  for (idx_t v = 0; v < 120; ++v) {
    if (fixRng.bernoulli(0.3)) fixed[static_cast<std::size_t>(v)] = fixRng.uniform(0, 1);
  }
  for (int algo = 0; algo < 3; ++algo) {
    Rng rng(3);
    hgc::ClusterMap map;
    if (algo == 0) map = hgc::cluster_hcm(h, rng, 100, fixed);
    if (algo == 1) map = hgc::cluster_agglomerative(h, rng, 100, 50, fixed);
    if (algo == 2) map = hgc::cluster_random(h, rng, fixed);
    // No cluster may contain vertices fixed to both sides.
    std::vector<signed char> side(120, -1);
    for (idx_t v = 0; v < 120; ++v) {
      const signed char sv = fixed[static_cast<std::size_t>(v)];
      if (sv < 0) continue;
      auto& slot = side[static_cast<std::size_t>(map[static_cast<std::size_t>(v)])];
      EXPECT_TRUE(slot < 0 || slot == sv) << "algo " << algo;
      slot = sv;
    }
    // contract() must accept it and propagate the pins.
    const auto level = hgc::contract(h, map, fixed);
    ASSERT_EQ(level.coarseFixed.size(),
              static_cast<std::size_t>(level.coarse.num_vertices()));
  }
}

TEST(FixedCoarsen, ContractRejectsMixedCluster) {
  const Hypergraph h = random_hg(4, 3, 3, 5);
  hgc::FixedSides fixed = {0, 1, -1, -1};
  const hgc::ClusterMap map = {0, 0, 1, 2};  // merges vertices fixed to 0 and 1
  EXPECT_THROW(hgc::contract(h, map, fixed), std::invalid_argument);
}

// ---------------------------------------------------- fixed partitioning ----

class FixedPartitionSweep : public ::testing::TestWithParam<idx_t> {};

TEST_P(FixedPartitionSweep, HonorsEveryPin) {
  const idx_t K = GetParam();
  const sparse::Csr a = sparse::random_square(150, 5, 7);
  const model::FineGrainModel m = model::build_finegrain(a);

  std::vector<idx_t> fixedPart(static_cast<std::size_t>(m.h.num_vertices()), kInvalidIdx);
  Rng rng(11);
  idx_t numFixed = 0;
  for (idx_t v = 0; v < m.h.num_vertices(); ++v) {
    if (rng.bernoulli(0.1)) {
      fixedPart[static_cast<std::size_t>(v)] = rng.uniform(0, K - 1);
      ++numFixed;
    }
  }
  ASSERT_GT(numFixed, 0);

  PartitionConfig cfg;
  const HgResult r = partition_hypergraph(m.h, K, cfg, fixedPart);
  for (idx_t v = 0; v < m.h.num_vertices(); ++v) {
    if (fixedPart[static_cast<std::size_t>(v)] != kInvalidIdx) {
      EXPECT_EQ(r.partition.part_of(v), fixedPart[static_cast<std::size_t>(v)])
          << "vertex " << v;
    }
  }
  EXPECT_TRUE(r.partition.complete());
}

INSTANTIATE_TEST_SUITE_P(KSweep, FixedPartitionSweep, ::testing::Values(2, 4, 8, 16));

TEST(FixedPartition, AllFixedIsIdentity) {
  const sparse::Csr a = sparse::random_square(60, 4, 9);
  const model::FineGrainModel m = model::build_finegrain(a);
  const idx_t K = 4;
  std::vector<idx_t> fixedPart(static_cast<std::size_t>(m.h.num_vertices()));
  Rng rng(13);
  for (auto& f : fixedPart) f = rng.uniform(0, K - 1);
  PartitionConfig cfg;
  const HgResult r = partition_hypergraph(m.h, K, cfg, fixedPart);
  EXPECT_EQ(r.partition.assignment(), fixedPart);
}

TEST(FixedPartition, RejectsOutOfRangePin) {
  const sparse::Csr a = sparse::random_square(30, 3, 15);
  const model::FineGrainModel m = model::build_finegrain(a);
  std::vector<idx_t> fixedPart(static_cast<std::size_t>(m.h.num_vertices()), kInvalidIdx);
  fixedPart[0] = 7;  // K is 4
  PartitionConfig cfg;
  EXPECT_THROW(partition_hypergraph(m.h, 4, cfg, fixedPart), std::invalid_argument);
}

TEST(FixedPartition, FreeInstanceUnaffectedByEmptyVector) {
  const sparse::Csr a = sparse::random_square(80, 5, 17);
  const model::FineGrainModel m = model::build_finegrain(a);
  PartitionConfig cfg;
  const HgResult r1 = partition_hypergraph(m.h, 8, cfg);
  const HgResult r2 = partition_hypergraph(m.h, 8, cfg, {});
  EXPECT_EQ(r1.partition.assignment(), r2.partition.assignment());
}

TEST(FixedPartition, KwayRefineAndRebalanceSkipFixed) {
  const Hypergraph h = random_hg(100, 80, 5, 19);
  const idx_t K = 4;
  std::vector<idx_t> fixedPart(100, kInvalidIdx);
  // Vertex 0 pinned to part 3 and stacked into the overloaded part 0 start.
  std::vector<idx_t> assign(100, 0);
  for (idx_t v = 20; v < 100; ++v) assign[static_cast<std::size_t>(v)] = v % K;
  fixedPart[5] = assign[5];
  Partition p(h, K, assign);
  PartitionConfig cfg;
  Rng rng(21);
  hgk::kway_rebalance(h, p, cfg.epsilon, rng, fixedPart);
  hgk::kway_refine(h, p, cfg, rng, fixedPart);
  EXPECT_EQ(p.part_of(5), fixedPart[5]);
}

// ---------------------------------------------- paper's part-vertex trick ----

TEST(FixedPartition, PartVertexEncodingCountsPreAssignedVolume) {
  // The paper's §3: inputs pre-assigned to parts are modeled by adding K
  // zero-weight part vertices, pinning part vertex p into the nets of
  // p's pre-assigned elements, and fixing it to part p. The lambda-1 cut
  // then counts the expand from the pre-assigned owners exactly.
  // Tiny instance: 1 column with 3 nonzeros on 3 different (fixed) parts,
  // x pre-assigned to part 0.
  hg::HypergraphBuilder b(3);              // v0, v1, v2: nonzeros of column j
  const idx_t pv = b.add_vertex(0);        // part vertex for part 0
  b.add_net(std::vector<idx_t>{0, 1, 2, pv});  // column net n_j (+ part pin)
  const Hypergraph h = std::move(b).build();

  const Partition p(h, 3, {0, 1, 2, 0});
  // Lambda = 3 -> volume = 2: part 0 sends x_j to parts 1 and 2.
  EXPECT_EQ(hg::cutsize(h, p, hg::CutMetric::kConnectivity), 2);

  // If all nonzeros sit on the owner's part, no words move.
  const Partition q(h, 3, {0, 0, 0, 0});
  EXPECT_EQ(hg::cutsize(h, q, hg::CutMetric::kConnectivity), 0);
}

TEST(FixedPartition, DecodedVolumeStillEqualsCutsize) {
  // The volume theorem is agnostic to how the partition was obtained —
  // including with pinned vertices.
  const sparse::Csr a = sparse::random_square(100, 5, 51);
  const model::FineGrainModel m = model::build_finegrain(a);
  const idx_t K = 4;
  std::vector<idx_t> fixedPart(static_cast<std::size_t>(m.h.num_vertices()), kInvalidIdx);
  Rng rng(53);
  for (idx_t v = 0; v < m.h.num_vertices(); ++v) {
    if (rng.bernoulli(0.2)) fixedPart[static_cast<std::size_t>(v)] = rng.uniform(0, K - 1);
  }
  PartitionConfig cfg;
  const HgResult r = partition_hypergraph(m.h, K, cfg, fixedPart);
  const model::Decomposition d = model::decode_finegrain(a, m, r.partition);
  EXPECT_EQ(comm::analyze(a, d).totalWords, r.cutsize);
}

TEST(FixedPartition, HeavilyPinnedStillImprovesOnRandomFree) {
  // Even with 30% of vertices pinned randomly, the partitioner should beat
  // a fully random assignment on the free remainder.
  const sparse::Csr a = sparse::random_square(120, 5, 55);
  const model::FineGrainModel m = model::build_finegrain(a);
  const idx_t K = 4;
  Rng rng(57);
  std::vector<idx_t> fixedPart(static_cast<std::size_t>(m.h.num_vertices()), kInvalidIdx);
  std::vector<idx_t> randomAll(static_cast<std::size_t>(m.h.num_vertices()));
  for (idx_t v = 0; v < m.h.num_vertices(); ++v) {
    randomAll[static_cast<std::size_t>(v)] = rng.uniform(0, K - 1);
    if (rng.bernoulli(0.3))
      fixedPart[static_cast<std::size_t>(v)] = randomAll[static_cast<std::size_t>(v)];
  }
  PartitionConfig cfg;
  const HgResult r = partition_hypergraph(m.h, K, cfg, fixedPart);
  const Partition randomP(m.h, K, randomAll);
  EXPECT_LT(r.cutsize, hg::cutsize(m.h, randomP, hg::CutMetric::kConnectivity));
}

// --------------------------------------------------------------- vcycle ----

TEST(Vcycle, GroupedClusteringRespectsGroups) {
  const Hypergraph h = random_hg(90, 70, 6, 23);
  std::vector<idx_t> group(90);
  for (idx_t v = 0; v < 90; ++v) group[static_cast<std::size_t>(v)] = v % 3;
  Rng rng(25);
  const auto map = hgv::cluster_hcm_grouped(h, rng, 100, group);
  std::vector<idx_t> clusterGroup(90, kInvalidIdx);
  for (idx_t v = 0; v < 90; ++v) {
    auto& slot = clusterGroup[static_cast<std::size_t>(map[static_cast<std::size_t>(v)])];
    if (slot == kInvalidIdx) {
      slot = group[static_cast<std::size_t>(v)];
    } else {
      EXPECT_EQ(slot, group[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(Vcycle, NeverWorsensCutsizeAndKeepsBalance) {
  PartitionConfig cfg;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const sparse::Csr a = sparse::random_square(200, 6, seed);
    const model::FineGrainModel m = model::build_finegrain(a);
    const idx_t K = 8;
    // Start from a deliberately mediocre striped partition, rebalanced.
    std::vector<idx_t> assign(static_cast<std::size_t>(m.h.num_vertices()));
    for (std::size_t v = 0; v < assign.size(); ++v) assign[v] = static_cast<idx_t>(v) % K;
    Partition p(m.h, K, assign);
    const weight_t before = hg::cutsize(m.h, p, hg::CutMetric::kConnectivity);
    Rng rng(seed + 31);
    const weight_t gain = hgv::vcycle_refine(m.h, p, cfg, rng);
    const weight_t after = hg::cutsize(m.h, p, hg::CutMetric::kConnectivity);
    EXPECT_EQ(before - after, gain);
    EXPECT_LE(after, before);
    EXPECT_TRUE(hg::is_balanced(m.h, p, cfg.epsilon));
  }
}

TEST(Vcycle, ImprovesStripedPartitionSubstantially) {
  const sparse::Csr a = sparse::stencil2d(30, 30);
  const model::FineGrainModel m = model::build_finegrain(a);
  std::vector<idx_t> assign(static_cast<std::size_t>(m.h.num_vertices()));
  for (std::size_t v = 0; v < assign.size(); ++v) assign[v] = static_cast<idx_t>(v) % 4;
  Partition p(m.h, 4, assign);
  const weight_t before = hg::cutsize(m.h, p, hg::CutMetric::kConnectivity);
  PartitionConfig cfg;
  Rng rng(37);
  hgv::vcycle_refine(m.h, p, cfg, rng);
  const weight_t after = hg::cutsize(m.h, p, hg::CutMetric::kConnectivity);
  EXPECT_LT(static_cast<double>(after), 0.7 * static_cast<double>(before));
}

// --------------------------------------------------------- row-net model ----

TEST(RowNet, StructureMirrorsColnet) {
  sparse::Coo coo(3, 3);
  coo.add(0, 0, 1);
  coo.add(0, 2, 1);
  coo.add(1, 1, 1);
  coo.add(2, 2, 1);
  const sparse::Csr a = to_csr(std::move(coo));
  const Hypergraph h = model::build_rownet_hypergraph(a);
  EXPECT_EQ(h.num_vertices(), 3);  // columns
  EXPECT_EQ(h.num_nets(), 3);      // rows
  // Row 0 has columns {0, 2}.
  std::set<idx_t> n0(h.pins(0).begin(), h.pins(0).end());
  EXPECT_EQ(n0, (std::set<idx_t>{0, 2}));
  // Vertex weight = column nonzero count.
  EXPECT_EQ(h.vertex_weight(2), 2);
}

TEST(RowNet, DecodeColwiseIsConformalAndFoldOnly) {
  const sparse::Csr a = sparse::random_square(150, 6, 41);
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_rownet(a, 8, cfg);
  EXPECT_TRUE(model::symmetric_vectors(run.decomp));
  const comm::CommStats s = comm::analyze(a, run.decomp);
  EXPECT_EQ(s.expandWords, 0);  // columnwise: x is local by construction
  EXPECT_GT(s.foldWords, 0);
}

TEST(RowNet, CutsizeEqualsFoldVolume) {
  // The dual of the column-net volume theorem.
  const sparse::Csr a = sparse::random_square(120, 5, 43);
  const Hypergraph h = model::build_rownet_hypergraph(a);
  Rng rng(45);
  const idx_t K = 6;
  std::vector<idx_t> colPart(static_cast<std::size_t>(a.num_cols()));
  for (auto& p : colPart) p = rng.uniform(0, K - 1);
  const Partition p(h, K, colPart);
  const model::Decomposition d = model::decode_colwise(a, colPart, K);
  EXPECT_EQ(comm::analyze(a, d).foldWords,
            hg::cutsize(h, p, hg::CutMetric::kConnectivity));
}

}  // namespace
}  // namespace fghp::part
