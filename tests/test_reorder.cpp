// Reordering utilities: permutations, bandwidth, RCM — plus the
// permutation-invariance sanity property of the decomposition models.
#include <gtest/gtest.h>

#include <numeric>

#include "comm/volume.hpp"
#include "models/finegrain.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/reorder.hpp"
#include "util/rng.hpp"

namespace fghp::sparse {
namespace {

TEST(Reorder, BandwidthBasics) {
  EXPECT_EQ(bandwidth(identity(5)), 0);
  EXPECT_EQ(bandwidth(banded(10, 3)), 3);
  EXPECT_EQ(bandwidth(dense_square(4)), 3);
  Coo coo(6, 6);
  coo.add(0, 5, 1.0);
  EXPECT_EQ(bandwidth(to_csr(std::move(coo))), 5);
}

TEST(Reorder, PermuteIdentityIsNoOp) {
  const Csr a = random_square(30, 4, 1);
  std::vector<idx_t> id(30);
  std::iota(id.begin(), id.end(), idx_t{0});
  EXPECT_EQ(permute_symmetric(a, id), a);
}

TEST(Reorder, PermuteMovesEntries) {
  Coo coo(3, 3);
  coo.add(0, 1, 7.0);
  coo.add(2, 2, 3.0);
  const Csr a = to_csr(std::move(coo));
  const std::vector<idx_t> perm = {2, 0, 1};  // old i -> new perm[i]
  const Csr b = permute_symmetric(a, perm);
  EXPECT_TRUE(b.has_entry(2, 0));  // (0,1) -> (2,0)
  EXPECT_TRUE(b.has_entry(1, 1));  // (2,2) -> (1,1)
  EXPECT_DOUBLE_EQ(b.row_vals(2)[0], 7.0);
}

TEST(Reorder, PermuteRoundTrip) {
  const Csr a = random_square(50, 5, 3);
  Rng rng(5);
  const std::vector<idx_t> perm = rng.permutation(50);
  std::vector<idx_t> inverse(50);
  for (idx_t i = 0; i < 50; ++i)
    inverse[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = i;
  EXPECT_EQ(permute_symmetric(permute_symmetric(a, perm), inverse), a);
}

TEST(Reorder, PermuteRejectsNonPermutation) {
  const Csr a = identity(3);
  EXPECT_THROW(permute_symmetric(a, {0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(permute_symmetric(a, {0, 1}), std::invalid_argument);
  EXPECT_THROW(permute_symmetric(a, {0, 1, 5}), std::invalid_argument);
}

TEST(Reorder, RcmIsAPermutation) {
  const Csr a = random_square(80, 5, 7);
  const auto perm = rcm_ordering(a);
  std::vector<idx_t> sorted(perm);
  std::sort(sorted.begin(), sorted.end());
  for (idx_t i = 0; i < 80; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Reorder, RcmShrinksBandwidthOfShuffledMesh) {
  // Take a banded mesh, scramble it, and check RCM recovers a small band.
  const Csr mesh = stencil2d(20, 20);
  Rng rng(9);
  const auto scramble = rng.permutation(mesh.num_rows());
  const Csr shuffled = permute_symmetric(mesh, scramble);
  ASSERT_GT(bandwidth(shuffled), 100);  // scrambling destroyed the band
  const Csr restored = permute_symmetric(shuffled, rcm_ordering(shuffled));
  EXPECT_LT(bandwidth(restored), 40);   // mesh optimum is 20
}

TEST(Reorder, RcmHandlesDisconnectedComponents) {
  // Two disjoint paths.
  Coo coo(6, 6);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(4, 5, 1.0);
  coo.add(5, 4, 1.0);
  const Csr a = to_csr(std::move(coo));
  const auto perm = rcm_ordering(a);
  std::vector<idx_t> sorted(perm);
  std::sort(sorted.begin(), sorted.end());
  for (idx_t i = 0; i < 6; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

// ------------------------------------------------------- bipartite RCM ----

void expect_valid_permutation(const std::vector<idx_t>& p) {
  std::vector<idx_t> sorted(p);
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i)
    ASSERT_EQ(sorted[i], static_cast<idx_t>(i));
}

/// Max |rowNew[r] - colNew[c]| over the pattern — the bipartite analogue of
/// matrix bandwidth the RCM sweep is meant to shrink.
idx_t bipartite_bandwidth(const std::vector<idx_t>& rowPtr,
                          const std::vector<idx_t>& colIdx,
                          const BipartiteOrdering& ord) {
  idx_t bw = 0;
  for (std::size_t r = 0; r + 1 < rowPtr.size(); ++r) {
    for (idx_t e = rowPtr[r]; e < rowPtr[r + 1]; ++e) {
      const idx_t rn = ord.rowNew[r];
      const idx_t cn = ord.colNew[static_cast<std::size_t>(colIdx[static_cast<std::size_t>(e)])];
      bw = std::max(bw, rn > cn ? rn - cn : cn - rn);
    }
  }
  return bw;
}

TEST(BipartiteRcm, ProducesValidPermutationsOnRectangularPattern) {
  // 40 rows over 25 columns, random rectangular pattern.
  Rng rng(21);
  std::vector<idx_t> rowPtr = {0};
  std::vector<idx_t> colIdx;
  for (idx_t r = 0; r < 40; ++r) {
    for (int e = 0; e < 3; ++e) colIdx.push_back(rng.uniform(0, 24));
    rowPtr.push_back(static_cast<idx_t>(colIdx.size()));
  }
  const BipartiteOrdering ord = bipartite_rcm(40, 25, rowPtr, colIdx);
  ASSERT_EQ(ord.rowNew.size(), 40u);
  ASSERT_EQ(ord.colNew.size(), 25u);
  expect_valid_permutation(ord.rowNew);
  expect_valid_permutation(ord.colNew);
}

TEST(BipartiteRcm, RecoversLocalityOfShuffledMesh) {
  const Csr mesh = stencil2d(20, 20);
  Rng rng(31);
  const Csr shuffled = permute_symmetric(mesh, rng.permutation(mesh.num_rows()));
  BipartiteOrdering id;
  id.rowNew.resize(static_cast<std::size_t>(shuffled.num_rows()));
  id.colNew.resize(static_cast<std::size_t>(shuffled.num_cols()));
  std::iota(id.rowNew.begin(), id.rowNew.end(), idx_t{0});
  std::iota(id.colNew.begin(), id.colNew.end(), idx_t{0});
  const idx_t before = bipartite_bandwidth(shuffled.row_ptr(), shuffled.col_ind(), id);
  const BipartiteOrdering ord = bipartite_rcm(
      shuffled.num_rows(), shuffled.num_cols(), shuffled.row_ptr(), shuffled.col_ind());
  const idx_t after = bipartite_bandwidth(shuffled.row_ptr(), shuffled.col_ind(), ord);
  ASSERT_GT(before, 100);  // scrambling destroyed the band
  EXPECT_LT(after, 60);    // mesh optimum is ~20 per side
}

TEST(BipartiteRcm, IsolatedColumnsRankLast) {
  // Columns 3 and 7 of 9 appear in no row (the compile pass hands such
  // expand-recv-only slots to the sweep as isolated vertices).
  std::vector<idx_t> rowPtr = {0, 2, 4, 6};
  std::vector<idx_t> colIdx = {0, 1, 2, 4, 5, 6};
  const BipartiteOrdering ord = bipartite_rcm(3, 9, rowPtr, colIdx);
  expect_valid_permutation(ord.colNew);
  // 8 is also isolated: the three unused columns take the last three ranks.
  EXPECT_GE(ord.colNew[3], 6);
  EXPECT_GE(ord.colNew[7], 6);
  EXPECT_GE(ord.colNew[8], 6);
}

TEST(BipartiteRcm, RejectsMalformedInput) {
  const std::vector<idx_t> rowPtr = {0, 1, 2};
  const std::vector<idx_t> colIdx = {0, 1};
  EXPECT_THROW(bipartite_rcm(3, 2, rowPtr, colIdx), std::invalid_argument);
  EXPECT_THROW(bipartite_rcm(2, 2, {0, 1, 3}, colIdx), std::invalid_argument);
  EXPECT_THROW(bipartite_rcm(2, 1, rowPtr, colIdx), std::invalid_argument);
}

TEST(Reorder, ModelVolumeInvariantUnderSymmetricPermutation) {
  // Decomposition quality must not depend on the labeling: partition the
  // permuted matrix with the same seed pipeline and compare volumes within
  // a generous tolerance (tie-breaking differs, optimum does not).
  const Csr a = random_square(150, 5, 11);
  Rng rng(13);
  const Csr b = permute_symmetric(a, rng.permutation(150));
  part::PartitionConfig cfg;
  const auto va =
      comm::analyze(a, model::run_finegrain(a, 8, cfg).decomp).totalWords;
  const auto vb =
      comm::analyze(b, model::run_finegrain(b, 8, cfg).decomp).totalWords;
  EXPECT_NEAR(static_cast<double>(va), static_cast<double>(vb),
              0.35 * static_cast<double>(std::max(va, vb)) + 16.0);
}

}  // namespace
}  // namespace fghp::sparse
