// End-to-end integration tests: the full pipeline (suite matrix -> model ->
// partitioner -> decode -> analyze -> simulate) and the paper's headline
// qualitative claims on reduced-scale instances.
#include <gtest/gtest.h>

#include "comm/volume.hpp"
#include "hypergraph/metrics.hpp"
#include "models/checkerboard.hpp"
#include "models/finegrain.hpp"
#include "models/graph_model.hpp"
#include "models/hypergraph1d.hpp"
#include "partition/hg/partitioner.hpp"
#include "spmv/executor.hpp"
#include "spmv/plan.hpp"
#include "spmv/reference.hpp"
#include "sparse/testsuite.hpp"
#include "util/rng.hpp"

namespace fghp {
namespace {

struct PipelineCase {
  std::string matrix;
  double scale;
  idx_t K;
};

class Pipeline : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(Pipeline, AllModelsEndToEnd) {
  const auto& tc = GetParam();
  const sparse::Csr a = sparse::make_matrix(tc.matrix, 3, tc.scale);
  part::PartitionConfig cfg;
  cfg.seed = 9;

  const auto check = [&](const model::ModelRun& run, const char* label) {
    SCOPED_TRACE(label);
    EXPECT_TRUE(model::symmetric_vectors(run.decomp));
    const comm::CommStats s = comm::analyze(a, run.decomp);
    EXPECT_GE(s.totalWords, 0);
    // Simulate and verify numerically.
    const spmv::SpmvPlan plan = spmv::build_plan(a, run.decomp);
    Rng rng(4);
    std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
    for (auto& v : x) v = rng.uniform01();
    spmv::ExecStats es;
    const auto y = spmv::execute(plan, x, &es);
    const auto yRef = spmv::multiply(a, x);
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_NEAR(y[i], yRef[i], 1e-9 * (1.0 + std::abs(yRef[i])));
    EXPECT_EQ(es.wordsSent, s.totalWords);
  };

  check(model::run_graph_model(a, tc.K, cfg), "graph-1d");
  check(model::run_hypergraph1d(a, tc.K, cfg), "hypergraph-1d");
  check(model::run_finegrain(a, tc.K, cfg), "finegrain-2d");
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Pipeline,
    ::testing::Values(PipelineCase{"sherman3", 0.25, 8}, PipelineCase{"bcspwr10", 0.2, 4},
                      PipelineCase{"ken-11", 0.1, 8}, PipelineCase{"nl", 0.1, 4},
                      PipelineCase{"vibrobox", 0.05, 4}, PipelineCase{"finan512", 0.05, 8}),
    [](const ::testing::TestParamInfo<PipelineCase>& paramInfo) {
      std::string n = paramInfo.param.matrix + "_K" + std::to_string(paramInfo.param.K);
      for (char& c : n)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

TEST(HeadlineClaims, FineGrainBeats1DModelsOnAverage) {
  // Reduced-scale version of Table 2's qualitative outcome: averaged over a
  // few LP-like matrices, fine-grain volume < 1D hypergraph < graph model.
  part::PartitionConfig cfg;
  double graphTotal = 0, hg1dTotal = 0, fgTotal = 0;
  for (const char* name : {"ken-11", "cq9", "cre-d"}) {
    const sparse::Csr a = sparse::make_matrix(name, 5, 0.1);
    const idx_t K = 8;
    graphTotal += static_cast<double>(
        comm::analyze(a, model::run_graph_model(a, K, cfg).decomp).totalWords);
    hg1dTotal += static_cast<double>(
        comm::analyze(a, model::run_hypergraph1d(a, K, cfg).decomp).totalWords);
    fgTotal += static_cast<double>(
        comm::analyze(a, model::run_finegrain(a, K, cfg).decomp).totalWords);
  }
  EXPECT_LT(fgTotal, hg1dTotal);
  EXPECT_LT(hg1dTotal, graphTotal);
}

TEST(HeadlineClaims, FineGrainBeatsCheckerboard) {
  // The intro's point about checkerboard schemes: no explicit volume
  // minimization, so the fine-grain model should beat them comfortably.
  part::PartitionConfig cfg;
  const sparse::Csr a = sparse::make_matrix("sherman3", 7, 0.3);
  const idx_t K = 16;
  const auto fg =
      comm::analyze(a, model::run_finegrain(a, K, cfg).decomp).totalWords;
  const auto cb =
      comm::analyze(a, model::checkerboard_decompose_k(a, K)).totalWords;
  EXPECT_LT(static_cast<double>(fg), 0.9 * static_cast<double>(cb));
}

TEST(HeadlineClaims, ImbalanceStaysBelowThreePercent) {
  // The paper reports < 3% load imbalance for all instances (eps = 0.03).
  part::PartitionConfig cfg;  // epsilon defaults to 0.03
  const sparse::Csr a = sparse::make_matrix("pltexpA4-6", 11, 0.1);
  for (idx_t K : {4, 16}) {
    const model::ModelRun run = model::run_finegrain(a, K, cfg);
    const model::LoadStats loads = model::compute_loads(a, run.decomp);
    EXPECT_LT(loads.percentImbalance, 3.0 + 1e-6) << "K=" << K;
  }
}

TEST(HeadlineClaims, VolumeTheoremAcrossSuite) {
  // cutsize == measured volume on several reduced suite matrices.
  part::PartitionConfig cfg;
  for (const char* name : {"sherman3", "nl", "cre-b"}) {
    const sparse::Csr a = sparse::make_matrix(name, 13, 0.1);
    const model::FineGrainModel m = model::build_finegrain(a);
    const part::HgResult r = part::partition_hypergraph(m.h, 16, cfg);
    const model::Decomposition d = model::decode_finegrain(a, m, r.partition);
    EXPECT_EQ(comm::analyze(a, d).totalWords, r.cutsize) << name;
  }
}

class SuiteTheorem : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteTheorem, CutsizeEqualsVolumeOnEveryGeneratorFamily) {
  // Tiny-scale analog of every suite matrix: every generator code path
  // (stencil, geometric+hubs, block-angular LP with staircase coupling,
  // block-ring) must satisfy the fine-grain volume theorem exactly.
  const sparse::Csr a = sparse::make_matrix(GetParam(), 17, 0.04);
  const model::FineGrainModel m = model::build_finegrain(a);
  part::PartitionConfig cfg;
  const part::HgResult r = part::partition_hypergraph(m.h, 8, cfg);
  const model::Decomposition d = model::decode_finegrain(a, m, r.partition);
  EXPECT_EQ(comm::analyze(a, d).totalWords, r.cutsize);
  EXPECT_TRUE(model::symmetric_vectors(d));
  EXPECT_TRUE(hg::is_balanced(m.h, r.partition, cfg.epsilon));
}

INSTANTIATE_TEST_SUITE_P(AllFourteen, SuiteTheorem,
                         ::testing::ValuesIn(sparse::suite_names()),
                         [](const ::testing::TestParamInfo<std::string>& paramInfo) {
                           std::string n = paramInfo.param;
                           for (char& c : n)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

}  // namespace
}  // namespace fghp
