// Decomposition serialization round-trips, corruption detection (version-2
// checksums), and malformed-input diagnostics.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "models/decomp_io.hpp"
#include "models/finegrain.hpp"
#include "sparse/generators.hpp"
#include "util/error.hpp"

namespace fghp::model {
namespace {

Decomposition sample(const sparse::Csr& a, idx_t K, std::uint64_t seed) {
  part::PartitionConfig cfg;
  cfg.seed = seed;
  return run_finegrain(a, K, cfg).decomp;
}

TEST(DecompIo, RoundTripStream) {
  const sparse::Csr a = sparse::random_square(80, 5, 1);
  const Decomposition d = sample(a, 6, 2);
  std::ostringstream out;
  write_decomposition(out, d);
  std::istringstream in(out.str());
  const Decomposition e = read_decomposition(in);
  EXPECT_EQ(e.numProcs, d.numProcs);
  EXPECT_EQ(e.nnzOwner, d.nnzOwner);
  EXPECT_EQ(e.xOwner, d.xOwner);
  EXPECT_EQ(e.yOwner, d.yOwner);
  EXPECT_NO_THROW(validate(a, e));
}

TEST(DecompIo, RoundTripFile) {
  const sparse::Csr a = sparse::random_square(40, 4, 3);
  const Decomposition d = sample(a, 4, 4);
  const std::string path = ::testing::TempDir() + "/fghp_decomp_roundtrip.txt";
  write_decomposition_file(path, d);
  const Decomposition e = read_decomposition_file(path);
  EXPECT_EQ(e.nnzOwner, d.nnzOwner);
}

TEST(DecompIo, AsymmetricVectorsSurvive) {
  const sparse::Csr a = sparse::random_square(30, 4, 5);
  Decomposition d = sample(a, 3, 6);
  d.yOwner[0] = (d.yOwner[0] + 1) % 3;  // break symmetry deliberately
  std::ostringstream out;
  write_decomposition(out, d);
  std::istringstream in(out.str());
  const Decomposition e = read_decomposition(in);
  EXPECT_EQ(e.yOwner, d.yOwner);
  EXPECT_FALSE(symmetric_vectors(e));
}

Decomposition parse(const std::string& text) {
  std::istringstream in(text);
  return read_decomposition(in);
}

TEST(DecompIo, RejectsMissingBanner) {
  EXPECT_THROW(parse("procs 2\nnnz 0\nvec 0\n"), std::runtime_error);
}

TEST(DecompIo, RejectsBadVersion) {
  EXPECT_THROW(parse("fghp-decomposition 9\nprocs 2\nnnz 0\nvec 0\n"), std::runtime_error);
}

TEST(DecompIo, RejectsOwnerOutOfRange) {
  EXPECT_THROW(parse("fghp-decomposition 1\nprocs 2\nnnz 1\n5\nvec 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse("fghp-decomposition 1\nprocs 2\nnnz 0\nvec 1\n0 7\n"),
               std::runtime_error);
}

TEST(DecompIo, RejectsTruncation) {
  EXPECT_THROW(parse("fghp-decomposition 1\nprocs 2\nnnz 3\n0\n1\n"), std::runtime_error);
}

TEST(DecompIo, ErrorMentionsLine) {
  try {
    parse("fghp-decomposition 1\nprocs 2\nnnz 1\nbogus\nvec 0\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(DecompIo, MissingFileThrows) {
  EXPECT_THROW(read_decomposition_file("/nonexistent/x.decomp"), std::runtime_error);
}

// ------------------------------------------------- corruption detection ----

std::string serialized(const Decomposition& d) {
  std::ostringstream out;
  write_decomposition(out, d);
  return out.str();
}

TEST(DecompIo, WritesVersion2WithChecksum) {
  const sparse::Csr a = sparse::random_square(20, 3, 11);
  const std::string text = serialized(sample(a, 2, 12));
  EXPECT_EQ(text.rfind("fghp-decomposition 2\n", 0), 0u);
  EXPECT_NE(text.find("\nchecksum "), std::string::npos);
}

TEST(DecompIo, BitFlippedOwnerFailsChecksum) {
  const sparse::Csr a = sparse::random_square(20, 3, 13);
  std::string text = serialized(sample(a, 2, 14));
  // Flip one owner digit in the body: 0 <-> 1 keeps the line parseable, so
  // only the checksum can catch it.
  const std::size_t body = text.find("nnz");
  const std::size_t pos = text.find_first_of("01", text.find('\n', body));
  ASSERT_NE(pos, std::string::npos);
  text[pos] = text[pos] == '0' ? '1' : '0';
  try {
    parse(text);
    FAIL() << "expected checksum failure";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST(DecompIo, EditedProcCountFailsChecksum) {
  const sparse::Csr a = sparse::random_square(20, 3, 15);
  std::string text = serialized(sample(a, 4, 16));
  const std::size_t pos = text.find("procs 4");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 7, "procs 8");  // wrong K, individually plausible owners
  EXPECT_THROW(parse(text), FormatError);
}

TEST(DecompIo, WrongChecksumLineRejected) {
  const sparse::Csr a = sparse::random_square(20, 3, 17);
  std::string text = serialized(sample(a, 2, 18));
  const std::size_t pos = text.find("checksum ");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 9] = text[pos + 9] == '0' ? '1' : '0';
  EXPECT_THROW(parse(text), FormatError);
}

TEST(DecompIo, TruncatedVersion2Rejected) {
  const sparse::Csr a = sparse::random_square(20, 3, 19);
  const std::string text = serialized(sample(a, 2, 20));
  // Cut in the middle of the body: both a missing checksum line and missing
  // owners must be flagged.
  EXPECT_THROW(parse(text.substr(0, text.size() / 2)), FormatError);
  // Cut just the checksum line off the end.
  const std::size_t pos = text.find("checksum ");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_THROW(parse(text.substr(0, pos)), FormatError);
}

TEST(DecompIo, CorruptFileRoundTripThroughDisk) {
  const sparse::Csr a = sparse::random_square(30, 4, 21);
  const Decomposition d = sample(a, 3, 22);
  const std::string path = ::testing::TempDir() + "/fghp_decomp_corrupt.txt";
  write_decomposition_file(path, d);
  // Sanity: clean file reads back fine.
  EXPECT_NO_THROW(read_decomposition_file(path));
  // Corrupt one byte on disk.
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  const std::size_t body = text.find("nnz");
  const std::size_t pos = text.find_first_of("0123456789", text.find('\n', body));
  ASSERT_NE(pos, std::string::npos);
  text[pos] = text[pos] == '9' ? '8' : '9';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  }
  EXPECT_THROW(read_decomposition_file(path), FormatError);
}

TEST(DecompIo, Version1WithoutChecksumStillReads) {
  // Files written before the checksum existed must stay loadable.
  const Decomposition d =
      parse("fghp-decomposition 1\nprocs 2\nnnz 2\n0\n1\nvec 2\n0 0\n1 1\n");
  EXPECT_EQ(d.numProcs, 2);
  EXPECT_EQ(d.nnzOwner.size(), 2u);
}

TEST(DecompIo, TypedErrors) {
  EXPECT_THROW(parse("not a banner\n"), FormatError);
  EXPECT_THROW(read_decomposition_file("/nonexistent/x.decomp"), IoError);
}

TEST(DecompIo, ValidateCatchesMatrixMismatch) {
  const sparse::Csr a = sparse::random_square(30, 4, 7);
  const sparse::Csr b = sparse::random_square(31, 4, 8);
  const Decomposition d = sample(a, 4, 9);
  EXPECT_NO_THROW(validate(a, d));
  EXPECT_THROW(validate(b, d), std::invalid_argument);
}

}  // namespace
}  // namespace fghp::model
