// Decomposition serialization round-trips and malformed-input diagnostics.
#include <gtest/gtest.h>

#include <sstream>

#include "models/decomp_io.hpp"
#include "models/finegrain.hpp"
#include "sparse/generators.hpp"

namespace fghp::model {
namespace {

Decomposition sample(const sparse::Csr& a, idx_t K, std::uint64_t seed) {
  part::PartitionConfig cfg;
  cfg.seed = seed;
  return run_finegrain(a, K, cfg).decomp;
}

TEST(DecompIo, RoundTripStream) {
  const sparse::Csr a = sparse::random_square(80, 5, 1);
  const Decomposition d = sample(a, 6, 2);
  std::ostringstream out;
  write_decomposition(out, d);
  std::istringstream in(out.str());
  const Decomposition e = read_decomposition(in);
  EXPECT_EQ(e.numProcs, d.numProcs);
  EXPECT_EQ(e.nnzOwner, d.nnzOwner);
  EXPECT_EQ(e.xOwner, d.xOwner);
  EXPECT_EQ(e.yOwner, d.yOwner);
  EXPECT_NO_THROW(validate(a, e));
}

TEST(DecompIo, RoundTripFile) {
  const sparse::Csr a = sparse::random_square(40, 4, 3);
  const Decomposition d = sample(a, 4, 4);
  const std::string path = ::testing::TempDir() + "/fghp_decomp_roundtrip.txt";
  write_decomposition_file(path, d);
  const Decomposition e = read_decomposition_file(path);
  EXPECT_EQ(e.nnzOwner, d.nnzOwner);
}

TEST(DecompIo, AsymmetricVectorsSurvive) {
  const sparse::Csr a = sparse::random_square(30, 4, 5);
  Decomposition d = sample(a, 3, 6);
  d.yOwner[0] = (d.yOwner[0] + 1) % 3;  // break symmetry deliberately
  std::ostringstream out;
  write_decomposition(out, d);
  std::istringstream in(out.str());
  const Decomposition e = read_decomposition(in);
  EXPECT_EQ(e.yOwner, d.yOwner);
  EXPECT_FALSE(symmetric_vectors(e));
}

Decomposition parse(const std::string& text) {
  std::istringstream in(text);
  return read_decomposition(in);
}

TEST(DecompIo, RejectsMissingBanner) {
  EXPECT_THROW(parse("procs 2\nnnz 0\nvec 0\n"), std::runtime_error);
}

TEST(DecompIo, RejectsBadVersion) {
  EXPECT_THROW(parse("fghp-decomposition 9\nprocs 2\nnnz 0\nvec 0\n"), std::runtime_error);
}

TEST(DecompIo, RejectsOwnerOutOfRange) {
  EXPECT_THROW(parse("fghp-decomposition 1\nprocs 2\nnnz 1\n5\nvec 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse("fghp-decomposition 1\nprocs 2\nnnz 0\nvec 1\n0 7\n"),
               std::runtime_error);
}

TEST(DecompIo, RejectsTruncation) {
  EXPECT_THROW(parse("fghp-decomposition 1\nprocs 2\nnnz 3\n0\n1\n"), std::runtime_error);
}

TEST(DecompIo, ErrorMentionsLine) {
  try {
    parse("fghp-decomposition 1\nprocs 2\nnnz 1\nbogus\nvec 0\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(DecompIo, MissingFileThrows) {
  EXPECT_THROW(read_decomposition_file("/nonexistent/x.decomp"), std::runtime_error);
}

TEST(DecompIo, ValidateCatchesMatrixMismatch) {
  const sparse::Csr a = sparse::random_square(30, 4, 7);
  const sparse::Csr b = sparse::random_square(31, 4, 8);
  const Decomposition d = sample(a, 4, 9);
  EXPECT_NO_THROW(validate(a, d));
  EXPECT_THROW(validate(b, d), std::invalid_argument);
}

}  // namespace
}  // namespace fghp::model
